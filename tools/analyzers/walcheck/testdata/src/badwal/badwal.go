// Package badwal holds one violation of each walcheck rule.
package badwal

import "sync"

type Table struct{ rows []int }

func (t *Table) Insert(v int) { t.rows = append(t.rows, v) }
func (t *Table) Delete(i int) {}
func (t *Table) Len() int     { return len(t.rows) }

type Store struct {
	mu  sync.Mutex
	tab *Table //repro:guarded-by mu
	wal []string
}

func (s *Store) logRecord(op string) error { s.wal = append(s.wal, op); return nil }
func (s *Store) logCommit() error          { s.wal = append(s.wal, "commit"); return nil }

// Insert mutates the guarded table and never touches the WAL.
func (s *Store) Insert(v int) { // want `exported Insert mutates guarded state \(s\.tab\.Insert\) but never calls logRecord`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab.Insert(v)
}

// Remove writes the record but never seals the transaction.
func (s *Store) Remove(i int) error { // want `exported Remove mutates guarded state \(s\.tab\.Delete\) without a logCommit on any path`
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logRecord("remove"); err != nil {
		return err
	}
	s.tab.Delete(i)
	return nil
}

// Merge hides the unlogged mutation behind an intra-package helper.
func (s *Store) Merge(v int) { // want `exported Merge mutates guarded state \(s\.tab\.Insert\) but never calls logRecord`
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(v)
}

func (s *Store) mergeLocked(v int) { s.tab.Insert(v) }

// Reset logs both sides but throws the logRecord error away twice.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logRecord("reset") // want `result of logRecord is discarded`
	_ = s.logRecord("reset-again") // want `result of logRecord is discarded`
	s.tab.Delete(0)
	return s.logCommit()
}

// Package badrelease holds must-call violations releasecheck flags: the
// admission release closure, context cancel funcs, and tickers each leak
// on at least one path.
package badrelease

import (
	"context"
	"time"
)

// limiter mirrors the admission Acquire shape: (func(), error).
type limiter struct{}

func (l *limiter) Acquire(ctx context.Context, tenant string, weight int64) (func(), error) {
	return func() {}, nil
}

func work() error { return nil }

// earlyReturn releases on the slow path but leaks on the fast one. The
// error branch is clean: Acquire documents a nil release on error.
func earlyReturn(ctx context.Context, l *limiter, fast bool) error {
	release, err := l.Acquire(ctx, "t", 1)
	if err != nil {
		return err
	}
	if fast {
		return nil // want `release func "release" may never be called on this path`
	}
	release()
	return nil
}

// spawnWithout defers the release on the synchronous path, but the
// asynchronous path spawns a goroutine that does not take the release
// with it and returns with the slot still held.
func spawnWithout(ctx context.Context, l *limiter, sync bool) error {
	release, err := l.Acquire(ctx, "t", 1)
	if err != nil {
		return err
	}
	if sync {
		defer release()
		return work()
	}
	go func() {
		_ = work()
	}()
	return nil // want `release func "release" may never be called on this path`
}

// discard drops the cancel func on the floor; the derived context can
// never be released.
func discard(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want `context cancel func discarded with the blank identifier`
	return ctx
}

// reassign overwrites a live cancel func; the first derived context
// leaks even though the name is eventually called.
func reassign(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	_ = ctx
	ctx2, cancel := context.WithCancel(parent) // want `context cancel func "cancel" reassigned before being called`
	_ = ctx2
	cancel()
}

// tickLoop reads t.C but never stops the ticker: reading the channel is
// not a Stop, so the ticker goroutine leaks.
func tickLoop(n int) int {
	t := time.NewTicker(time.Second)
	s := 0
	for i := 0; i < n; i++ {
		<-t.C
		s++
	}
	return s // want `ticker "t" may never be stopped on this path`
}

// fallOff leaks by falling off the end of the function; the report
// anchors at the birth site because there is no return statement.
func fallOff(d time.Duration) {
	t := time.NewTicker(d) // want `ticker "t" may never be stopped on this path`
	<-t.C
}

// deferOnlyOneBranch defers the cancel inside one arm of the branch; the
// other arm returns with the obligation live.
func deferOnlyOneBranch(parent context.Context, flag bool) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	if flag {
		defer cancel()
		<-ctx.Done()
		return nil
	}
	return work() // want `context cancel func "cancel" may never be called on this path`
}

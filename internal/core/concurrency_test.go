package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rdfterm"
	"repro/internal/wal"
)

// TestConcurrentReadersWriterStress hammers one store with writers
// mutating through every logged path (insert, repeated insert, delete,
// reify, assertions, blank nodes) while reader goroutines exercise every
// read path — Find, export, invariant checking, network traversal,
// snapshotting — the whole time. Run under -race this proves the RWMutex
// discipline: readers never observe a torn mutation.
//
// The WAL is attached throughout, so it doubles as a serialization
// check: after the dust settles, replaying the log must rebuild a store
// identical to the live one.
func TestConcurrentReadersWriterStress(t *testing.T) {
	f := &wal.BufferFile{}
	log, err := wal.NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDurability(log)
	a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})

	const models = 3
	for m := 0; m < models; m++ {
		if _, err := s.CreateRDFModel(fmt.Sprintf("m%d", m), "", ""); err != nil {
			t.Fatal(err)
		}
	}

	iters := 120
	if testing.Short() {
		iters = 40
	}

	var stop atomic.Bool
	errCh := make(chan error, 16)
	var writers, readers sync.WaitGroup

	// Writers: one per model (the lock serializes them), cycling through
	// every mutation kind.
	for m := 0; m < models; m++ {
		writers.Add(1)
		go func(m int) {
			defer writers.Done()
			model := fmt.Sprintf("m%d", m)
			for i := 0; i < iters && !stop.Load(); i++ {
				sub := fmt.Sprintf("x:s%d", i%17)
				obj := fmt.Sprintf("x:o%d", i%29)
				ts, err := s.NewTripleS(model, sub, "x:p", obj, a)
				if err != nil {
					errCh <- fmt.Errorf("writer %d insert: %w", m, err)
					return
				}
				switch i % 7 {
				case 2:
					if _, err := s.Reify(model, ts.TID); err != nil {
						errCh <- fmt.Errorf("writer %d reify: %w", m, err)
						return
					}
				case 3:
					if _, err := s.NewTripleS(model, "_:b", "x:p", obj, a); err != nil {
						errCh <- fmt.Errorf("writer %d blank: %w", m, err)
						return
					}
				case 4:
					if _, err := s.AssertAboutTriple(model, "x:asserter", "x:says", ts.TID, a); err != nil {
						errCh <- fmt.Errorf("writer %d assert: %w", m, err)
						return
					}
				case 5:
					// Delete decrements the repeated-insert cost or removes
					// the link entirely; both are legal here.
					if err := s.DeleteTriple(model, sub, "x:p", obj, a); err != nil {
						errCh <- fmt.Errorf("writer %d delete: %w", m, err)
						return
					}
				}
			}
		}(m)
	}

	// Readers: every read path, until the writers are done.
	reader := func(id int, step func(i int) error) {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; !stop.Load(); i++ {
				if err := step(i); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", id, err)
					return
				}
			}
		}()
	}
	reader(0, func(i int) error {
		_, err := s.Find(fmt.Sprintf("m%d", i%models), Pattern{})
		return err
	})
	reader(1, func(i int) error {
		s.TotalTriples()
		s.NumValues()
		s.NumNodes()
		if _, err := s.ModelNames(); err != nil {
			return err
		}
		_, err := s.NumTriples(fmt.Sprintf("m%d", i%models))
		return err
	})
	reader(2, func(i int) error {
		if _, _, err := s.IsTriple("m0", "x:s1", "x:p", "x:o1", a); err != nil {
			return err
		}
		if i%4 != 0 {
			return nil
		}
		return s.ExportModel(fmt.Sprintf("m%d", i%models), io.Discard, ExportOptions{})
	})
	reader(3, func(i int) error {
		// Full invariant sweeps hold the read lock for a while; mix them
		// with cheap reads so this reader doesn't dominate the lock.
		if i%8 != 0 {
			s.TotalTriples()
			return nil
		}
		if errs := s.CheckInvariants(); len(errs) > 0 {
			return fmt.Errorf("mid-flight invariants: %v", errs[0])
		}
		return nil
	})
	reader(4, func(i int) error {
		n, err := s.Network()
		if err != nil {
			return err
		}
		hops := 0
		n.Nodes(func(node int64) bool {
			n.OutLinks(node, func(_, _ int64, _ float64) bool { return true })
			hops++
			return hops < 64 // bounded walk; the node set keeps growing
		})
		return nil
	})
	reader(5, func(i int) error {
		// Snapshotting is a read too (the checkpoint image is taken under
		// the read lock).
		if i%4 != 0 {
			s.NumNodes()
			return nil
		}
		return s.Save(io.Discard)
	})

	writers.Wait()
	stop.Store(true)
	readers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	assertInvariants(t, s)

	// The log written under concurrency must replay to the same store.
	rec := recoverImage(t, nil, f.Bytes())
	if got, want := fingerprint(t, rec), fingerprint(t, s); !bytes.Equal(got, want) {
		t.Fatal("WAL written under concurrent load does not replay to the live store")
	}
	if got, want := rec.TotalTriples(), s.TotalTriples(); got != want {
		t.Fatalf("recovered %d triples, live has %d", got, want)
	}
}

// TestDegradedReadsWhileWritesRejected proves the core property the
// supervisor's Degraded mode is built on: when the durability sink is
// broken, mutations are rejected with the typed ErrDurability while
// concurrent readers keep serving consistent results the whole time.
func TestDegradedReadsWhileWritesRejected(t *testing.T) {
	fl := wal.NewFlaky(&wal.BufferFile{})
	log, err := wal.NewLog(fl, true)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDurability(log)
	a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	const seeded = 50
	for i := 0; i < seeded; i++ {
		if _, err := s.NewTripleS("m", fmt.Sprintf("x:s%d", i), "x:p", fmt.Sprintf("x:o%d", i), a); err != nil {
			t.Fatal(err)
		}
	}

	// Break the sink permanently: the store is now effectively read-only.
	fl.FailWrites(1 << 30)

	var stop atomic.Bool
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rows, err := s.Find("m", Pattern{})
				if err != nil {
					errCh <- fmt.Errorf("read while degraded: %w", err)
					return
				}
				if len(rows) != seeded {
					errCh <- fmt.Errorf("read while degraded saw %d rows, want %d", len(rows), seeded)
					return
				}
				for _, row := range rows {
					if _, err := row.GetTriple(); err != nil {
						errCh <- fmt.Errorf("corrupt row while degraded: %w", err)
						return
					}
				}
			}
		}()
	}

	// Writers hammer the broken sink: every attempt must come back as a
	// typed durability error, and none may leak a partial row into what
	// the readers see (the count check above would catch it).
	for i := 0; i < 25; i++ {
		_, err := s.NewTripleS("m", fmt.Sprintf("x:new%d", i), "x:p", "x:o", a)
		if err == nil {
			t.Fatal("mutation against broken WAL succeeded")
		}
		if !errors.Is(err, ErrDurability) {
			t.Fatalf("mutation error %v does not wrap ErrDurability", err)
		}
	}

	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if errs := s.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants violated after degraded churn: %v", errs[0])
	}
}

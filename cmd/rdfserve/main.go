// Command rdfserve is the multi-tenant HTTP query server over the RDF
// object store: SDO_RDF_MATCH pattern queries (POST /query), single-
// pattern finds (GET /find), NDM graph traversals (POST /traverse), and
// batch inserts (POST /insert), with per-request deadlines, weighted
// admission control, result budgets, and health-gated graceful
// degradation. The wire format and every tuning knob are documented in
// SERVING.md.
//
// Usage:
//
//	rdfserve -addr 127.0.0.1:8080 -model data -load data.nt
//	rdfserve -addr :8080 -wal store.wal -snapshot store.snap
//	rdfserve -addr :8080 -wal-dir store.d -snapshot store.snap -wal-soft-bytes 268435456
//	rdfserve -addr :8080 -wal store.wal -chaos-wal-write-rate 0.05
//
// Without -wal/-wal-dir the store is memory-only and always Healthy.
// With -wal (and optionally -snapshot) the store runs under the
// supervisor: recovery, scrubbing, and the health states that gate
// admission (Degraded/Recovering answer 503 + Retry-After; Failed
// answers 503). -wal-dir selects the segmented WAL instead: rotating
// segment files with checkpoint-driven retention and a disk budget —
// crossing -wal-soft-bytes triggers an automatic checkpoint, exhausting
// -wal-hard-bytes (or a real ENOSPC) moves the store to Degraded(disk),
// where writes answer 507 + Retry-After until space is freed. The
// -chaos-wal-* flags wrap the WAL file(s) with a deterministic fault
// injector — writes/syncs fail with the given probability — for
// robustness drills: the server keeps serving reads while the
// supervisor degrades and recovers underneath it.
//
// SIGINT/SIGTERM drain gracefully: new requests get 503 shutting_down,
// in-flight requests get -drain-grace to finish, then their contexts
// are cancelled and the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/reify"
	"repro/internal/server"
	"repro/internal/supervise"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdfserve:", err)
		os.Exit(1)
	}
}

// serveFlags holds every rdfserve knob. newFlagSet is the single place
// they are defined; the knob table in SERVING.md documents the same set,
// and main_test.go fails when either side drifts.
type serveFlags struct {
	addr, model, load *string
	walPath, snapPath *string
	walDir            *string
	segmentBytes      *int64
	softBytes         *int64
	hardBytes         *int64
	ckptInterval      *time.Duration
	ckptWALBytes      *int64
	scrubInterval     *time.Duration
	chaosWrite        *float64
	chaosSync         *float64
	chaosENOSPC       *float64
	chaosSeed         *int64
	maxInflight       *int64
	maxQueue          *int
	queueWait         *time.Duration
	tenantCap         *int64
	traceSample       *float64
	traceSlow         *time.Duration
	traceStore        *int
	defaultTimeout    *time.Duration
	maxTimeout        *time.Duration
	maxRows           *int
	maxBindings       *int
	maxResultBytes    *int64
	degraded          *string
	retryAfter        *time.Duration
	drainGrace        *time.Duration
	shutdownTimeout   *time.Duration
}

func newFlagSet() (*flag.FlagSet, *serveFlags) {
	fs := flag.NewFlagSet("rdfserve", flag.ContinueOnError)
	f := &serveFlags{
		addr:  fs.String("addr", "127.0.0.1:8080", "listen address"),
		model: fs.String("model", "data", "default model for requests that name none (created if missing)"),
		load:  fs.String("load", "", "N-Triples file to bulk-load into the model at startup"),

		walPath:       fs.String("wal", "", "write-ahead log: run under the supervisor with durable mutations"),
		snapPath:      fs.String("snapshot", "", "checkpoint snapshot to load before replaying the WAL"),
		walDir:        fs.String("wal-dir", "", "segmented WAL directory (rotating segments, checkpoint retention, disk budget); mutually exclusive with -wal"),
		segmentBytes:  fs.Int64("wal-segment-bytes", 0, "segment rotation threshold in bytes (0 = 64 MiB default; requires -wal-dir)"),
		softBytes:     fs.Int64("wal-soft-bytes", 0, "soft disk watermark: crossing it triggers an automatic checkpoint (0 disables; requires -wal-dir and -snapshot)"),
		hardBytes:     fs.Int64("wal-hard-bytes", 0, "hard disk budget: appends past it are rejected and the store enters Degraded(disk) (0 disables; requires -wal-dir)"),
		ckptInterval:  fs.Duration("checkpoint-interval", 0, "automatic checkpoint age trigger (0 disables; requires -snapshot)"),
		ckptWALBytes:  fs.Int64("checkpoint-wal-bytes", 0, "automatic checkpoint WAL-size trigger in bytes (0 disables; requires -snapshot)"),
		scrubInterval: fs.Duration("scrub-interval", 0, "background invariant scrub cadence (0 disables; requires -wal/-wal-dir)"),
		chaosWrite:    fs.Float64("chaos-wal-write-rate", 0, "probability each WAL write fails (fault-injection drill; requires -wal)"),
		chaosSync:     fs.Float64("chaos-wal-sync-rate", 0, "probability each WAL sync fails (requires -wal)"),
		chaosENOSPC:   fs.Float64("chaos-wal-enospc-rate", 0, "probability each segment write fails with injected ENOSPC (requires -wal-dir)"),
		chaosSeed:     fs.Int64("chaos-seed", 1, "deterministic seed for the WAL fault injector"),

		traceSample: fs.Float64("trace-sample", 0.01, "probability a fast clean request's trace is retained (slow/errored/rejected traces are always kept)"),
		traceSlow:   fs.Duration("trace-slow", 100*time.Millisecond, "duration past which a request trace is retained as slow"),
		traceStore:  fs.Int("trace-store", 256, "retained-trace ring capacity behind /debug/traces (0 disables tracing entirely)"),

		maxInflight: fs.Int64("max-inflight", 64, "admission capacity in weight units (query/traverse 4, insert 2, find 1)"),
		maxQueue:    fs.Int("max-queue", 128, "admission wait-queue bound (negative = no queueing: reject the moment capacity is full)"),
		queueWait:   fs.Duration("queue-wait", time.Second, "longest a request may wait for admission"),
		tenantCap:   fs.Int64("tenant-cap", 0, "per-tenant in-flight weight cap (X-Tenant header; 0 disables)"),

		defaultTimeout:  fs.Duration("default-timeout", 5*time.Second, "deadline for requests without ?timeout="),
		maxTimeout:      fs.Duration("max-timeout", 30*time.Second, "clamp on client-supplied ?timeout="),
		maxRows:         fs.Int("max-rows", 10000, "result-row cap per response"),
		maxBindings:     fs.Int("max-bindings", 1<<20, "intermediate join-binding budget per query"),
		maxResultBytes:  fs.Int64("max-result-bytes", 8<<20, "encoded response byte budget"),
		degraded:        fs.String("degraded-reads", "reject", "non-Healthy read policy: reject (503 + Retry-After) or serve"),
		retryAfter:      fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503"),
		drainGrace:      fs.Duration("drain-grace", 2*time.Second, "how long shutdown lets in-flight requests finish"),
		shutdownTimeout: fs.Duration("shutdown-timeout", 10*time.Second, "hard bound on the whole shutdown"),
	}
	return fs, f
}

func run(args []string, stdout io.Writer) error {
	fs, f := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr, model, load := f.addr, f.model, f.load
	walPath, snapPath, scrubInterval := f.walPath, f.snapPath, f.scrubInterval
	walDir := f.walDir
	chaosWrite, chaosSync, chaosSeed := f.chaosWrite, f.chaosSync, f.chaosSeed
	maxInflight, maxQueue, queueWait, tenantCap := f.maxInflight, f.maxQueue, f.queueWait, f.tenantCap
	defaultTimeout, maxTimeout := f.defaultTimeout, f.maxTimeout
	maxRows, maxBindings, maxResultBytes := f.maxRows, f.maxBindings, f.maxResultBytes
	degraded, retryAfter := f.degraded, f.retryAfter
	drainGrace, shutdownTimeout := f.drainGrace, f.shutdownTimeout

	var degradedReads server.DegradedReads
	switch *degraded {
	case "reject":
		degradedReads = server.RejectDegraded
	case "serve":
		degradedReads = server.ServeDegraded
	default:
		return fmt.Errorf("-degraded-reads %q: want reject or serve", *degraded)
	}
	durable := *walPath != "" || *walDir != ""
	if *walPath != "" && *walDir != "" {
		return errors.New("-wal and -wal-dir are mutually exclusive")
	}
	if (*snapPath != "" || *scrubInterval > 0) && !durable {
		return errors.New("-snapshot/-scrub-interval require -wal or -wal-dir")
	}
	if (*chaosWrite > 0 || *chaosSync > 0) && *walPath == "" {
		return errors.New("-chaos-wal-write-rate/-chaos-wal-sync-rate require -wal")
	}
	if (*f.segmentBytes > 0 || *f.softBytes > 0 || *f.hardBytes > 0 || *f.chaosENOSPC > 0) && *walDir == "" {
		return errors.New("-wal-segment-bytes/-wal-soft-bytes/-wal-hard-bytes/-chaos-wal-enospc-rate require -wal-dir")
	}
	if (*f.ckptInterval > 0 || *f.ckptWALBytes > 0 || *f.softBytes > 0) && *snapPath == "" {
		return errors.New("-checkpoint-interval/-checkpoint-wal-bytes/-wal-soft-bytes require -snapshot (checkpoints need a target)")
	}

	reg := obs.NewRegistry()

	// Tracer: nil when -trace-store 0, which turns every span call in
	// the request path into a no-op (the nil-instrument discipline obs
	// uses for metrics).
	var tracer *trace.Tracer
	if *f.traceStore > 0 {
		tracer = trace.New(trace.Config{
			SlowThreshold: *f.traceSlow,
			SampleRate:    *f.traceSample,
			Capacity:      *f.traceStore,
		})
	}

	// Backend: supervised (durable, health-gated) with -wal or -wal-dir,
	// bare in-memory store otherwise.
	var backend server.Backend
	if durable {
		cfg := supervise.Config{
			SnapshotPath:  *snapPath,
			WALPath:       *walPath,
			WALDir:        *walDir,
			ScrubInterval: *scrubInterval,
			Obs:           reg,
			Tracer:        tracer,
			Checkpoint: supervise.CheckpointPolicy{
				Interval: *f.ckptInterval,
				WALBytes: *f.ckptWALBytes,
			},
			OnRecover: func(info core.RecoverInfo) {
				if info.Truncated {
					fmt.Fprintf(os.Stderr,
						"rdfserve: warning: WAL had a torn tail (replayed %d records, kept %d bytes): %v\n",
						info.Applied, info.ValidBytes, info.TailErr)
				}
			},
		}
		if *walDir != "" {
			cfg.Segment = wal.DirOptions{
				SegmentBytes: *f.segmentBytes,
				Budget:       wal.Budget{SoftBytes: *f.softBytes, HardBytes: *f.hardBytes},
			}
			if *f.chaosENOSPC > 0 {
				var nextSeed atomic.Int64
				nextSeed.Store(*chaosSeed)
				cfg.Segment.Wrap = func(f0 wal.File) wal.File {
					fl := wal.NewFlaky(f0)
					fl.SetNoSpaceRate(*f.chaosENOSPC, nextSeed.Add(1))
					return fl
				}
				fmt.Fprintf(stdout, "chaos: WAL ENOSPC faults armed (rate %g, seed %d)\n",
					*f.chaosENOSPC, *chaosSeed)
			}
		}
		if *chaosWrite > 0 || *chaosSync > 0 {
			cfg.OpenWAL = func(path string) (*wal.Log, wal.ScanResult, error) {
				return wal.OpenFileWith(path, func(f wal.File) wal.File {
					fl := wal.NewFlaky(f)
					fl.SetErrorRate(*chaosWrite, *chaosSync, *chaosSeed)
					return fl
				})
			}
			fmt.Fprintf(stdout, "chaos: WAL faults armed (write %.2f, sync %.2f, seed %d)\n",
				*chaosWrite, *chaosSync, *chaosSeed)
		}
		sv, err := supervise.Open(cfg)
		if err != nil {
			return fmt.Errorf("opening supervised store: %w", err)
		}
		defer sv.Close()
		backend = sv
	} else {
		st := core.New()
		st.SetMetrics(core.NewMetrics(reg))
		backend = server.StoreBackend{S: st}
	}

	// Ensure the default model exists and load any seed data through the
	// same mutation gate requests use.
	if err := backend.Mutate(func(st *core.Store) error {
		if _, err := st.GetModelID(*model); errors.Is(err, core.ErrNoSuchModel) {
			if _, err := st.CreateRDFModel(*model, "", ""); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("creating model %q: %w", *model, err)
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		var stats reify.Stats
		err = backend.Mutate(func(st *core.Store) error {
			loader := &reify.Loader{Store: st, Model: *model, Policy: reify.DropIncomplete, BatchSize: 1024}
			var lerr error
			stats, lerr = loader.Load(f)
			return lerr
		})
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", *load, err)
		}
		fmt.Fprintf(stdout, "loaded %d triples from %s into %q\n", stats.Read, *load, *model)
	}

	srv, err := server.New(server.Config{
		Backend:        backend,
		DefaultModels:  []string{*model},
		Registry:       reg,
		Tracer:         tracer,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		TenantCap:      *tenantCap,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxRows:        *maxRows,
		MaxBindings:    *maxBindings,
		MaxResultBytes: *maxResultBytes,
		DegradedReads:  degradedReads,
		RetryAfter:     *retryAfter,
		DrainGrace:     *drainGrace,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	fmt.Fprintf(stdout, "serving on http://%s/ (model %q, admin under /debug)\n", ln.Addr(), *model)

	// Serve until SIGINT/SIGTERM, then drain.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-sigCtx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "shutting down: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil {
		return err
	}
	fmt.Fprintln(stdout, "drained; bye")
	return nil
}

package rdfterm

import (
	"fmt"
	"strings"
)

// The functions in this file parse the convenience syntax the paper uses
// in SDO_RDF_TRIPLE_S constructor calls: subjects and predicates like
// 'gov:files' or full URIs, objects that may be URIs, blank nodes,
// unquoted plain literals ('bombing' in Figure 2), or quoted literals
// with language tags or datatypes ('"25"^^xsd:int').

// ParseSubject parses a subject: a URI (full, <wrapped>, or prefixed) or a
// blank node "_:label". Aliases may be nil.
func ParseSubject(s string, aliases *AliasSet) (Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, fmt.Errorf("rdfterm: empty subject")
	}
	if strings.HasPrefix(s, "_:") {
		b := NewBlank(s)
		if err := b.Validate(); err != nil {
			return Term{}, err
		}
		return b, nil
	}
	if strings.HasPrefix(s, `"`) {
		return Term{}, fmt.Errorf("rdfterm: subject cannot be a literal: %s", s)
	}
	return parseURIish(s, aliases)
}

// ParsePredicate parses a predicate, which must be a URI.
func ParsePredicate(s string, aliases *AliasSet) (Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, fmt.Errorf("rdfterm: empty predicate")
	}
	if strings.HasPrefix(s, "_:") || strings.HasPrefix(s, `"`) {
		return Term{}, fmt.Errorf("rdfterm: predicate must be a URI: %s", s)
	}
	return parseURIish(s, aliases)
}

// ParseObject parses an object: URI, blank node, or literal. A quoted
// string may carry @lang or ^^datatype; an unquoted string that does not
// look like a URI is a plain literal (as in the paper's 'bombing').
func ParseObject(s string, aliases *AliasSet) (Term, error) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return Term{}, fmt.Errorf("rdfterm: empty object")
	}
	if strings.HasPrefix(trimmed, "_:") {
		b := NewBlank(trimmed)
		if err := b.Validate(); err != nil {
			return Term{}, err
		}
		return b, nil
	}
	if strings.HasPrefix(trimmed, `"`) {
		return parseQuotedLiteral(trimmed, aliases)
	}
	if strings.HasPrefix(trimmed, "<") {
		return parseURIish(trimmed, aliases)
	}
	if looksLikeURI(trimmed, aliases) {
		return parseURIish(trimmed, aliases)
	}
	// Unquoted, not URI-shaped: a plain literal. Use the original string
	// so literal whitespace is preserved.
	return NewLiteral(s), nil
}

// parseURIish handles <wrapped>, prefixed, and bare URIs.
func parseURIish(s string, aliases *AliasSet) (Term, error) {
	if strings.HasPrefix(s, "<") {
		if !strings.HasSuffix(s, ">") || len(s) < 3 {
			return Term{}, fmt.Errorf("rdfterm: malformed URI %q", s)
		}
		uri := s[1 : len(s)-1]
		if err := checkURIChars(uri); err != nil {
			return Term{}, err
		}
		return NewURI(uri), nil
	}
	if !looksLikeURI(s, aliases) {
		return Term{}, fmt.Errorf("rdfterm: %q is not a URI (no scheme or registered prefix)", s)
	}
	uri := aliases.Expand(s)
	if err := checkURIChars(uri); err != nil {
		return Term{}, err
	}
	return NewURI(uri), nil
}

// checkURIChars rejects characters RFC 3986 forbids raw in URIs and that
// would break re-serialization (angle brackets, quotes, whitespace,
// control characters).
func checkURIChars(uri string) error {
	if i := strings.IndexAny(uri, "<>\" \t\n\r"); i >= 0 {
		return fmt.Errorf("rdfterm: URI %q contains forbidden character %q", uri, uri[i])
	}
	for i := 0; i < len(uri); i++ {
		if uri[i] < 0x20 {
			return fmt.Errorf("rdfterm: URI %q contains control character 0x%02x", uri, uri[i])
		}
	}
	return nil
}

// looksLikeURI reports whether s has a scheme-like "name:" head or a
// registered alias prefix.
func looksLikeURI(s string, aliases *AliasSet) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	head := s[:i]
	if _, ok := aliases.Lookup(head); ok {
		return true
	}
	// RFC 3986 scheme: ALPHA *(ALPHA / DIGIT / "+" / "-" / ".")
	if !isAlpha(head[0]) {
		return false
	}
	for j := 1; j < len(head); j++ {
		c := head[j]
		if !isAlpha(c) && !isDigit(c) && c != '+' && c != '-' && c != '.' {
			return false
		}
	}
	return true
}

func isAlpha(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// parseQuotedLiteral parses "lex", "lex"@lang, "lex"^^<dt>, "lex"^^pfx:dt.
func parseQuotedLiteral(s string, aliases *AliasSet) (Term, error) {
	// Find the closing quote, honoring backslash escapes.
	end := -1
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			end = i
			break
		}
	}
	if end < 0 {
		return Term{}, fmt.Errorf("rdfterm: unterminated literal %q", s)
	}
	lex, err := unescapeLiteral(s[1:end])
	if err != nil {
		return Term{}, err
	}
	rest := s[end+1:]
	switch {
	case rest == "":
		return NewLiteral(lex), nil
	case strings.HasPrefix(rest, "@"):
		lang := rest[1:]
		if lang == "" {
			return Term{}, fmt.Errorf("rdfterm: empty language tag in %q", s)
		}
		return NewLangLiteral(lex, lang), nil
	case strings.HasPrefix(rest, "^^"):
		dt := rest[2:]
		if strings.HasPrefix(dt, "<") && strings.HasSuffix(dt, ">") {
			dt = dt[1 : len(dt)-1]
		} else {
			dt = aliases.Expand(dt)
		}
		if dt == "" {
			return Term{}, fmt.Errorf("rdfterm: empty datatype in %q", s)
		}
		return NewTypedLiteral(lex, dt), nil
	}
	return Term{}, fmt.Errorf("rdfterm: trailing garbage %q after literal", rest)
}

// EscapeLiteral escapes a literal's lexical form for embedding in quotes:
// the inverse of unescapeLiteral (\" \\ \n \r \t).
func EscapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeLiteral processes the N-Triples-style escapes \" \\ \n \r \t.
func unescapeLiteral(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("rdfterm: dangling backslash in literal")
		}
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("rdfterm: unknown escape \\%c in literal", s[i])
		}
	}
	return b.String(), nil
}

// Package trace is a stdlib-only span tracer with tail-based sampling:
// the correlation layer that turns the repo's aggregate metrics (obs)
// and per-query EXPLAIN traces (match.Trace) into per-request span
// trees, so "why was THIS request slow" is answerable across the
// server → admission queue → planner → iterator engine → WAL commit
// path.
//
// Design points, in the repo's established idiom:
//
//   - Nil disables. A nil *Tracer and a nil *Span are no-ops on every
//     method — the same discipline as obs's nil instruments. The
//     disabled hot path is a single nil check; it never reads the
//     clock. (Verified by the disabled-path benchmarks in
//     internal/match and internal/core.)
//   - Tail-based sampling. Whether a trace is retained is decided when
//     its ROOT span ends, not when it starts: traces that were slow
//     (>= Config.SlowThreshold), errored, or force-retained (the
//     server forces rejected and 5xx/507-mapped requests) are always
//     kept; the fast, clean rest is sampled at Config.SampleRate. Head
//     sampling cannot keep "every slow request" without keeping
//     everything — tail sampling can, which is the whole point for
//     tail-latency debugging.
//   - Bounded everything. Retained traces live in a fixed-capacity
//     ring (oldest evicted); each trace records at most MaxSpans spans
//     (the rest are dropped and the trace is marked truncated). A
//     tracer can run forever in a server without growing.
//
// Spans reach the tracer two ways: Start/Child/End around live code
// paths, and AddCompleted for pre-measured phases (a join stage's
// timings are collected by the engine after the fact; re-running the
// pipeline under closures just to get spans would distort the thing
// being measured).
//
// W3C trace-context interop: StartRemote accepts an incoming
// `traceparent` header so an external load balancer's trace ID is
// reused, and Span.Traceparent renders the outgoing form.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config's zero values.
const (
	DefaultSlowThreshold = 100 * time.Millisecond
	DefaultSampleRate    = 0.01
	DefaultCapacity      = 256
	DefaultMaxSpans      = 512
)

// Retention reasons recorded on TraceData.Reason.
const (
	ReasonSlow    = "slow"    // root duration >= SlowThreshold
	ReasonError   = "error"   // a span in the trace failed
	ReasonForced  = "forced"  // Span.Force — rejections, 5xx/507 mappings
	ReasonSampled = "sampled" // probabilistic survivor of SampleRate
)

// Config configures New. Zero fields take the documented defaults.
type Config struct {
	// SlowThreshold is the tail-sampling slowness bar: a trace whose
	// root span runs at least this long is always retained.
	SlowThreshold time.Duration
	// SampleRate is the probability ([0,1]) that a fast, clean,
	// unforced trace is retained anyway — the background sample that
	// keeps the explorer representative, not just pathological.
	SampleRate float64
	// Capacity bounds the retained-trace ring (oldest evicted).
	Capacity int
	// MaxSpans bounds the spans recorded per trace; excess spans are
	// dropped and the trace marked truncated.
	MaxSpans int
}

// SpanData is one finished span on the wire: the JSON element of a
// trace's span list and the unit the tree renderer works from.
type SpanData struct {
	ID       string            `json:"id"`
	Parent   string            `json:"parent,omitempty"` // empty for the root
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Error    bool              `json:"error,omitempty"`
}

// TraceData is one retained trace: the root's identity and timing plus
// every recorded span, in end order (parents may end after children).
type TraceData struct {
	ID        string        `json:"id"`
	Root      string        `json:"root"` // root span name
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Error     bool          `json:"error,omitempty"`
	Reason    string        `json:"reason"`
	Truncated bool          `json:"truncated,omitempty"`
	Spans     []SpanData    `json:"spans"`
}

// RootAttr returns an attribute of the trace's root span ("" when
// absent) — how the explorer filters by tenant without a schema.
func (td *TraceData) RootAttr(key string) string {
	for i := range td.Spans {
		if td.Spans[i].Parent == "" {
			return td.Spans[i].Attrs[key]
		}
	}
	return ""
}

// Tracer mints trace/span IDs, records span trees into per-trace
// buffers, and tail-samples finished traces into a bounded store. A
// nil Tracer is disabled: every method is a no-op and Start returns a
// nil Span.
type Tracer struct {
	cfg Config
	rng atomic.Uint64 // splitmix64 state: IDs and sampling draws

	mu   sync.Mutex
	ring []TraceData    // retained traces, fixed capacity
	byID map[string]int // trace ID -> ring slot
	next int            // ring write cursor
	full bool
}

// New builds a Tracer; zero Config fields take the defaults.
func New(cfg Config) *Tracer {
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	t := &Tracer{
		cfg:  cfg,
		ring: make([]TraceData, cfg.Capacity),
		byID: make(map[string]int, cfg.Capacity),
	}
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		t.rng.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		// crypto/rand failing is a broken platform; fall back to a
		// fixed odd seed rather than refusing to trace.
		t.rng.Store(0x9e3779b97f4a7c15)
	}
	return t
}

// rand64 is an atomic splitmix64 step — cheap, lock-free, good enough
// for span IDs and sampling draws (not security).
func (t *Tracer) rand64() uint64 {
	x := t.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sample draws the probabilistic retention decision.
func (t *Tracer) sample() bool {
	r := t.cfg.SampleRate
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	return float64(t.rand64()>>11)/(1<<53) < r
}

func fmtSpanID(id uint64) string { return fmt.Sprintf("%016x", id) }

// rec is the shared per-trace buffer every span of one trace appends
// into. The root span's End finalizes it through the tail sampler.
type rec struct {
	t  *Tracer
	id string // 32-hex trace ID

	mu        sync.Mutex
	spans     []SpanData
	errored   bool
	forced    bool
	truncated bool
}

// Span is one live span. All methods are nil-safe; End must be called
// on every path (defer-satisfied) — enforced repo-wide by the
// releasecheck analyzer's span obligation.
type Span struct {
	rec    *rec
	id     uint64
	parent uint64 // 0 for the root
	name   string
	start  time.Time

	// Guarded by rec.mu: spans may be touched from the goroutine that
	// created them and marked failed from error paths.
	attrs  map[string]string
	failed bool
	ended  bool
}

type ctxKey struct{}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// WithSpan returns ctx carrying s (unchanged when s is nil).
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// Start opens a span: a child of the span already in ctx, or a new
// root. The returned context carries the new span. A nil Tracer
// returns (ctx, nil) without touching the clock.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := FromContext(ctx); parent != nil {
		c := parent.Child(name)
		return WithSpan(ctx, c), c
	}
	s := t.newRoot(name, "")
	return WithSpan(ctx, s), s
}

// StartRoot opens a root span outside any request context — the entry
// point for background subsystems (WAL flush, recovery, scrub).
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newRoot(name, "")
}

// StartRemote opens a root span continuing an incoming W3C
// traceparent header: the remote trace ID is reused so an external
// load balancer's trace correlates with ours. An empty or malformed
// header starts a fresh trace.
func (t *Tracer) StartRemote(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	traceID, remoteParent, ok := ParseTraceparent(traceparent)
	s := t.newRoot(name, traceID)
	if ok && remoteParent != "" {
		s.SetAttr("remote_parent", remoteParent)
	}
	return WithSpan(ctx, s), s
}

func (t *Tracer) newRoot(name, traceID string) *Span {
	if traceID == "" {
		traceID = fmt.Sprintf("%016x%016x", t.rand64(), t.rand64())
	}
	return &Span{
		rec:   &rec{t: t, id: traceID},
		id:    t.rand64(),
		name:  name,
		start: time.Now(),
	}
}

// Child opens a sub-span of s in the same trace. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		rec:    s.rec,
		id:     s.rec.t.rand64(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// TraceID returns the 32-hex trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.id
}

// SpanID returns the 16-hex span ID ("" for a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return fmtSpanID(s.id)
}

// SetAttr records a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.rec.mu.Unlock()
}

// SetInt records an integer attribute on the span.
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// SetError marks the span (and hence the trace) failed when err is
// non-nil, recording the message.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	msg := err.Error() // outside the lock: Error() is arbitrary caller code
	s.rec.mu.Lock()
	s.failed = true
	s.rec.errored = true
	if s.attrs == nil {
		s.attrs = make(map[string]string, 2)
	}
	s.attrs["error"] = msg
	s.rec.mu.Unlock()
}

// Force pins the trace for retention regardless of duration or
// sampling — the server forces rejected (429) and 5xx/507-mapped
// requests so every shed or failed request is explorable.
func (s *Span) Force() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	s.rec.forced = true
	s.rec.mu.Unlock()
}

// AddCompleted appends an already-measured child span without opening
// an End obligation — for phases timed by the code being traced (join
// stages, InsertBatch phases) where wrapping live spans around the
// hot loop would distort it. attrs is retained, not copied; callers
// pass a fresh map. The returned span is already ended and exists
// only to parent further AddCompleted calls (nil when the trace's
// span budget is exhausted — safe, since a nil parent no-ops too).
func (s *Span) AddCompleted(name string, start time.Time, d time.Duration, attrs map[string]string, failed bool) *Span {
	if s == nil {
		return nil
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	if failed {
		r.errored = true
	}
	if len(r.spans) >= r.t.cfg.MaxSpans {
		r.truncated = true
		return nil
	}
	id := r.t.rand64()
	r.spans = append(r.spans, SpanData{
		ID:       fmtSpanID(id),
		Parent:   fmtSpanID(s.id),
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
		Error:    failed,
	})
	return &Span{rec: r, id: id, parent: s.id, name: name, start: start, ended: true}
}

// End finishes the span. Ending the root finalizes the trace through
// the tail sampler; ending twice is a no-op. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	r := s.rec
	r.mu.Lock()
	if s.ended {
		r.mu.Unlock()
		return
	}
	s.ended = true
	if s.failed {
		r.errored = true
	}
	sd := SpanData{
		ID:       fmtSpanID(s.id),
		Name:     s.name,
		Start:    s.start,
		Duration: d,
		Attrs:    s.attrs,
		Error:    s.failed,
	}
	if s.parent != 0 {
		sd.Parent = fmtSpanID(s.parent)
	}
	if len(r.spans) < r.t.cfg.MaxSpans {
		r.spans = append(r.spans, sd)
	} else {
		r.truncated = true
	}
	if s.parent != 0 {
		r.mu.Unlock()
		return
	}
	// Root: finalize. Snapshot under the lock, sample outside it.
	spans := r.spans
	errored := r.errored
	forced := r.forced
	truncated := r.truncated
	r.mu.Unlock()
	r.t.finish(TraceData{
		ID:        r.id,
		Root:      s.name,
		Start:     s.start,
		Duration:  d,
		Error:     errored,
		Truncated: truncated,
		Spans:     spans,
	}, forced)
}

// finish is the tail-sampling decision plus the bounded store.
func (t *Tracer) finish(td TraceData, forced bool) {
	switch {
	case forced:
		td.Reason = ReasonForced
	case td.Error:
		td.Reason = ReasonError
	case td.Duration >= t.cfg.SlowThreshold:
		td.Reason = ReasonSlow
	case t.sample():
		td.Reason = ReasonSampled
	default:
		return // dropped: fast, clean, unforced, unlucky
	}
	t.mu.Lock()
	slot := t.next
	if t.full {
		delete(t.byID, t.ring[slot].ID)
	}
	t.ring[slot] = td
	t.byID[td.ID] = slot
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Get returns a retained trace by ID.
func (t *Tracer) Get(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	slot, ok := t.byID[id]
	if !ok {
		return TraceData{}, false
	}
	return t.ring[slot], true
}

// Snapshot returns the retained traces, newest first.
func (t *Tracer) Snapshot() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	out := make([]TraceData, 0, n)
	for i := 0; i < n; i++ {
		slot := t.next - 1 - i
		if slot < 0 {
			slot += len(t.ring)
		}
		out = append(out, t.ring[slot])
	}
	return out
}

// Len reports how many traces are currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Package trace mirrors the span API shape releasecheck tracks: the
// analyzer matches a type named Span in a package named trace, with
// births gated on Start/StartRoot/StartRemote/Child. The fixture cannot
// import the real module, so this stub stands in.
package trace

import "context"

type Span struct{}

func (s *Span) End()                           {}
func (s *Span) Finish()                        {}
func (s *Span) Child(name string) *Span        { return &Span{} }
func (s *Span) SetAttr(k, v string)            {}
func (s *Span) SetError(err error)             {}
func (s *Span) AddCompleted(name string) *Span { return &Span{} }

type Tracer struct{}

func (t *Tracer) StartRoot(name string) *Span { return &Span{} }
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
func (t *Tracer) StartRemote(ctx context.Context, name, parent string) (context.Context, *Span) {
	return ctx, &Span{}
}

func FromContext(ctx context.Context) *Span { return nil }

func WithSpan(ctx context.Context, s *Span) context.Context { return ctx }

package ndm

import (
	"container/heap"
	"sort"
)

// KShortestPaths returns up to k loopless paths from source to target in
// ascending cost order (Yen's algorithm) — NDM's multiple-paths analysis.
// It returns fewer than k paths when the graph does not contain them, and
// an empty slice when target is unreachable.
func KShortestPaths(g Graph, source, target int64, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := ShortestPath(g, source, target)
	if err == ErrNoPath || (err != nil && source != target) {
		if err == ErrNoPath {
			return nil, nil
		}
		return nil, err
	}
	paths := []Path{first}
	var candidates pathHeap

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each node in the previous path except the last, branch.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootLinks := prev.Links[:i]
			rootCost := pathCost(g, rootLinks)

			// Mask links used by earlier paths sharing this root, and mask
			// root nodes (except the spur) to keep paths loopless.
			maskedLinks := map[int64]bool{}
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					maskedLinks[p.Links[i]] = true
				}
			}
			maskedNodes := map[int64]bool{}
			for _, n := range rootNodes[:len(rootNodes)-1] {
				maskedNodes[n] = true
			}
			mg := &maskedGraph{g: g, links: maskedLinks, nodes: maskedNodes}
			spur, err := ShortestPath(mg, spurNode, target)
			if err != nil {
				continue // no spur path from here
			}
			total := Path{
				Nodes: append(append([]int64{}, rootNodes[:len(rootNodes)-1]...), spur.Nodes...),
				Links: append(append([]int64{}, rootLinks...), spur.Links...),
				Cost:  rootCost + spur.Cost,
			}
			if !containsPath(paths, total) && !candidates.contains(total) {
				heap.Push(&candidates, total)
			}
		}
		if candidates.Len() == 0 {
			break
		}
		paths = append(paths, heap.Pop(&candidates).(Path))
	}
	sort.SliceStable(paths, func(a, b int) bool { return paths[a].Cost < paths[b].Cost })
	return paths, nil
}

// pathCost sums the costs of the given link IDs by looking them up from
// their start nodes (cost metadata lives on the links).
func pathCost(g Graph, links []int64) float64 {
	if len(links) == 0 {
		return 0
	}
	want := map[int64]bool{}
	for _, l := range links {
		want[l] = true
	}
	total := 0.0
	found := 0
	g.Nodes(func(n int64) bool {
		g.OutLinks(n, func(linkID, _ int64, cost float64) bool {
			if want[linkID] {
				total += cost
				found++
				delete(want, linkID)
			}
			return true
		})
		return found < len(links)
	})
	return total
}

func equalPrefix(nodes, prefix []int64) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

func samePath(a, b Path) bool {
	if len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}

func containsPath(paths []Path, p Path) bool {
	for _, q := range paths {
		if samePath(q, p) {
			return true
		}
	}
	return false
}

type pathHeap []Path

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].Cost < h[j].Cost }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(Path)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

func (h pathHeap) contains(p Path) bool {
	for _, q := range h {
		if samePath(q, p) {
			return true
		}
	}
	return false
}

// maskedGraph hides a set of links and nodes from an underlying graph —
// the temporary removals Yen's algorithm needs.
type maskedGraph struct {
	g     Graph
	links map[int64]bool
	nodes map[int64]bool
}

func (m *maskedGraph) HasNode(n int64) bool {
	return !m.nodes[n] && m.g.HasNode(n)
}

func (m *maskedGraph) Nodes(fn func(int64) bool) {
	m.g.Nodes(func(n int64) bool {
		if m.nodes[n] {
			return true
		}
		return fn(n)
	})
}

func (m *maskedGraph) OutLinks(n int64, fn func(linkID, end int64, cost float64) bool) {
	if m.nodes[n] {
		return
	}
	m.g.OutLinks(n, func(linkID, end int64, cost float64) bool {
		if m.links[linkID] || m.nodes[end] {
			return true
		}
		return fn(linkID, end, cost)
	})
}

func (m *maskedGraph) InLinks(n int64, fn func(linkID, start int64, cost float64) bool) {
	if m.nodes[n] {
		return
	}
	m.g.InLinks(n, func(linkID, start int64, cost float64) bool {
		if m.links[linkID] || m.nodes[start] {
			return true
		}
		return fn(linkID, start, cost)
	})
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Every failure leaves the server as a typed JSON envelope:
//
//	{"error": {"code": "queue_full", "message": "...", "retry_after": "1s", "trace_id": "4bf9..."}}
//
// The HTTP status selects the class (4xx client / 429 admission / 5xx
// availability), the machine-readable code names the exact condition,
// and 429/503 responses carry a Retry-After header so well-behaved
// clients back off instead of hammering a saturated or degraded store.
// trace_id, present whenever the server traces (Config.Tracer), names
// the request's span tree: rejected and 5xx/507-mapped requests are
// force-retained by the tail sampler, so the ID in the envelope is
// fetchable from /debug/traces/{id}. The full catalogue lives in
// SERVING.md.

// Error codes. These are API surface — clients switch on them.
const (
	CodeBadRequest   = "bad_request"   // 400: malformed body, unparsable term, bad param
	CodeUnknownModel = "unknown_model" // 404: named model does not exist
	CodeBudget       = "budget"        // 413: row/binding/byte budget exceeded
	CodeQueueFull    = "queue_full"    // 429: admission queue at capacity
	CodeWaitTimeout  = "wait_timeout"  // 429: queued past the admission wait bound
	CodeTenantLimit  = "tenant_limit"  // 429: per-tenant concurrency cap reached
	CodeInternal     = "internal"      // 500: handler error or recovered panic
	CodeDiskFull     = "disk_full"     // 507: supervisor Degraded(disk) — WAL disk budget exhausted (retryable)
	CodeDegraded     = "degraded"      // 503: supervisor Degraded (retryable)
	CodeRecovering   = "recovering"    // 503: supervisor Recovering (retryable)
	CodeFailed       = "failed"        // 503: supervisor Failed (terminal, no Retry-After)
	CodeShuttingDown = "shutting_down" // 503: server draining (retryable elsewhere)
	CodeDeadline     = "deadline"      // 504: query exceeded its deadline
)

// apiError is a failure with a designated wire representation.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration // > 0 sets the Retry-After header
}

func (e *apiError) Error() string { return fmt.Sprintf("%s (%d %s)", e.msg, e.status, e.code) }

// errBadRequest builds a 400.
func errBadRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	RetryAfter string `json:"retry_after,omitempty"`
	// TraceID correlates the failure with its retained span tree at
	// /debug/traces/{id}; empty when the server runs without a tracer.
	TraceID string `json:"trace_id,omitempty"`
}

// writeError renders an apiError. Must be called before any body bytes
// have been written. traceID ("" when untraced) rides the envelope so
// a client error report carries everything needed to pull the trace.
func writeError(w http.ResponseWriter, e *apiError, traceID string) {
	w.Header().Set("Content-Type", "application/json")
	body := errorBody{Error: errorDetail{Code: e.code, Message: e.msg, TraceID: traceID}}
	if e.retryAfter > 0 {
		secs := int(e.retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		body.Error.RetryAfter = e.retryAfter.String()
	}
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(body)
}

// Package server is the multi-tenant HTTP query surface over the RDF
// store: SDO_RDF_MATCH-style pattern queries, single-pattern finds, and
// NDM graph traversals served from one cancellable read surface, with
// the robustness posture of a store that expects to be overloaded,
// degraded, and shut down while requests are in flight:
//
//   - Deadlines. Every request runs under a context deadline — the
//     client's ?timeout= clamped by the server's maximum, or the
//     server's default. The deadline propagates through the whole read
//     surface (match.MatchContext, core.FindCtx, NDM *Ctx), so an
//     abandoned query releases the store's read lock promptly. Response
//     writes carry a slow-client write deadline on top.
//   - Admission control. A weighted concurrency limiter with a bounded
//     FIFO wait queue fronts every endpoint; over-limit requests are
//     rejected with typed 429s (queue_full, wait_timeout, tenant_limit)
//     rather than queued unboundedly. See Limiter.
//   - Budgets. Result rows are capped (truncated responses say so),
//     join intermediates are bounded (match.ErrBudget → 413), and the
//     response body is assembled under a byte cap, so no single query
//     can exhaust the server's memory.
//   - Graceful degradation. The supervisor's health state gates
//     admission: Degraded/Recovering answer 503 with Retry-After while
//     recovery runs (configurably, reads may keep serving instead),
//     Failed answers 503 without one. Requests admitted before a
//     mid-flight transition run to completion under their deadline —
//     the in-memory image stays readable in every state.
//   - Containment. Handler panics become 500s plus an obs event, never
//     a process crash. Shutdown drains: stop accepting, give in-flight
//     requests a grace period, cancel their contexts, then close.
//
// The obs admin surface (/metrics, /healthz, /events, pprof) mounts
// under /debug. Wire format and tuning knobs are documented in
// SERVING.md.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/supervise"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Backend is the store surface the server queries. *supervise.Supervisor
// implements it; StoreBackend adapts a bare *core.Store for deployments
// without a durability layer (always Healthy).
type Backend interface {
	// Store returns the store for reads. Long queries re-fetch per
	// request — corruption recovery may swap the pointer.
	Store() *core.Store
	// State is the current health state; the server maps it to HTTP.
	State() supervise.State
	// Healthz is the admin /healthz payload.
	Healthz() obs.Health
	// Mutate runs one gated mutation (used by /insert).
	Mutate(func(*core.Store) error) error
}

// StoreBackend adapts a bare, always-Healthy *core.Store.
type StoreBackend struct{ S *core.Store }

func (b StoreBackend) Store() *core.Store                      { return b.S }
func (b StoreBackend) State() supervise.State                  { return supervise.Healthy }
func (b StoreBackend) Healthz() obs.Health                     { return obs.Health{Healthy: true, State: "Healthy"} }
func (b StoreBackend) Mutate(fn func(*core.Store) error) error { return fn(b.S) }

// DegradedReads selects what a read endpoint does when the supervisor
// is not Healthy.
type DegradedReads int

const (
	// RejectDegraded (default) sheds read load with 503 + Retry-After
	// while the store is Degraded/Recovering/Failed, so the recovery
	// loop is not competing with query traffic.
	RejectDegraded DegradedReads = iota
	// ServeDegraded keeps serving reads in every state — the in-memory
	// image is authoritative and safe to read while mutations are
	// rejected. Writes still require Healthy either way.
	ServeDegraded
)

func (d DegradedReads) String() string {
	if d == ServeDegraded {
		return "ServeDegraded"
	}
	return "RejectDegraded"
}

// Config configures New. The zero value of every field takes the
// documented default.
type Config struct {
	// Backend serves the queries (required).
	Backend Backend
	// DefaultModels scopes requests that name no models of their own.
	// Empty means clients must always name their models.
	DefaultModels []string
	// Registry receives the server's metrics and events and backs the
	// /debug admin surface; nil disables instrumentation.
	Registry *obs.Registry
	// Tracer records per-request span trees with tail-based sampling
	// and backs /debug/traces; nil disables tracing with zero overhead
	// (no span, no clock reads, no headers). See internal/trace.
	Tracer *trace.Tracer

	// MaxInflight is the limiter capacity in weight units (default 64).
	// Endpoint weights: query 4, traverse 4, insert 2, find 1.
	MaxInflight int64
	// MaxQueue bounds the admission wait queue (default 128; 0 rejects
	// everything that cannot be admitted immediately).
	MaxQueue int
	// QueueWait bounds how long a request may wait for admission
	// (default 1s; additionally clamped by the request deadline).
	QueueWait time.Duration
	// TenantCap caps one tenant's in-flight weight (X-Tenant header;
	// requests without the header share the "" tenant). 0 disables.
	TenantCap int64

	// DefaultTimeout bounds requests that name no ?timeout= (default 5s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied timeouts (default 30s).
	MaxTimeout time.Duration
	// WriteSlack is the extra budget, past the query deadline, a slow
	// client gets to drain the response before its write deadline fires
	// (default 10s).
	WriteSlack time.Duration

	// MaxRows caps result rows per response (default 10000); responses
	// at the cap set "truncated": true.
	MaxRows int
	// MaxResultBytes caps the encoded response body (default 8 MiB);
	// larger results are rejected with 413 rather than streamed forever.
	MaxResultBytes int64
	// MaxBindings bounds a query's intermediate join bindings (default
	// 1<<20); exceeding it is a 413.
	MaxBindings int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatch caps triples per /insert (default 10000).
	MaxBatch int

	// DegradedReads selects the non-Healthy read policy (see type).
	DegradedReads DegradedReads
	// RetryAfter is the Retry-After hint on 429/503 (default 1s).
	RetryAfter time.Duration
	// DrainGrace is how long Shutdown lets in-flight requests finish
	// before cancelling their contexts (default 2s).
	DrainGrace time.Duration
}

// Server is the HTTP query server. Create with New, serve with Serve or
// mount Handler, stop with Shutdown.
type Server struct {
	cfg Config
	met *Metrics
	lim *Limiter
	mux *http.ServeMux

	baseCtx    context.Context
	cancelBase context.CancelFunc
	draining   atomic.Bool
	inflight   atomic.Int64

	httpMu sync.Mutex
	httpS  *http.Server
}

// New validates the config, applies defaults, and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("server: Config.Backend is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 128
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = time.Second
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.WriteSlack <= 0 {
		cfg.WriteSlack = 10 * time.Second
	}
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = 10000
	}
	if cfg.MaxResultBytes <= 0 {
		cfg.MaxResultBytes = 8 << 20
	}
	if cfg.MaxBindings <= 0 {
		cfg.MaxBindings = 1 << 20
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 2 * time.Second
	}

	//repro:vet-ignore ctxcheck process-lifetime base context: the server outlives any request, and every request derives its own deadline from this root in wrap
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		met:        NewMetrics(cfg.Registry),
		lim:        NewLimiter(cfg.MaxInflight, cfg.MaxQueue, cfg.TenantCap),
		baseCtx:    ctx,
		cancelBase: cancel,
	}
	s.mux = s.buildMux()
	return s, nil
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. The listener's
// requests inherit the server's base context, so Shutdown's cancel
// reaches every in-flight query.
func (s *Server) Serve(ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       60 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
	}
	s.httpMu.Lock()
	s.httpS = hs
	s.httpMu.Unlock()
	err := hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server: new requests are rejected with 503
// shutting_down, listeners stop accepting, in-flight requests get
// DrainGrace to finish, then their contexts are cancelled, and the
// connections close. Returns once every request has completed or ctx
// expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.met.onDrain("begin", s.inflight.Load())

	s.httpMu.Lock()
	hs := s.httpS
	s.httpMu.Unlock()

	// Let in-flight work finish inside the grace window…
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	drained := make(chan struct{})
	go func() {
		for s.inflight.Load() > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-grace.C:
	case <-ctx.Done():
	}

	// …then cancel whatever is still running. Every request context
	// derives from baseCtx, so this reaches each in-flight query's
	// cancellation polls.
	s.met.onDrain("cancel", s.inflight.Load())
	s.cancelBase()

	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	s.met.onDrain("closed", s.inflight.Load())
	return err
}

// endpoint describes one routed handler for the middleware chain.
type endpoint struct {
	name   string
	weight int64
	write  bool
	handle func(ctx context.Context, w http.ResponseWriter, r *http.Request) error
}

// buildMux assembles the routing table.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	// Method-less: a method pattern on "/" would conflict with the
	// method-less /debug mounts under Go 1.22 ServeMux precedence.
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("POST /query", s.wrap(endpoint{name: "query", weight: 4, handle: s.handleQuery}))
	mux.Handle("GET /find", s.wrap(endpoint{name: "find", weight: 1, handle: s.handleFind}))
	mux.Handle("POST /traverse", s.wrap(endpoint{name: "traverse", weight: 4, handle: s.handleTraverse}))
	mux.Handle("POST /insert", s.wrap(endpoint{name: "insert", weight: 2, write: true, handle: s.handleInsert}))

	// Admin surface under /debug: the obs handler serves /metrics,
	// /healthz, and /events relative to its root (strip the prefix) and
	// registers pprof natively at /debug/pprof (no strip — the more
	// specific pattern wins).
	admin := obs.NewHandler(s.cfg.Registry, func() obs.Health { return s.cfg.Backend.Healthz() })
	mux.Handle("/debug/pprof/", admin)
	mux.Handle("/debug/", http.StripPrefix("/debug", admin))

	// Trace explorer: list + single-trace lookup. More specific than
	// the /debug/ mount, so it wins under ServeMux precedence; mounted
	// even without a tracer (it then serves an empty list), so the URL
	// is stable across configurations.
	traces := http.StripPrefix("/debug/traces", trace.NewHandler(s.cfg.Tracer))
	mux.Handle("GET /debug/traces", traces)
	mux.Handle("GET /debug/traces/", traces)
	return mux
}

// wrap is the middleware chain shared by every query endpoint: root
// span, panic containment, drain gate, health gate, deadline derivation,
// slow-client write deadline, admission, and response accounting.
func (s *Server) wrap(ep endpoint) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}

		// Root span: opened before any gate so rejected requests are
		// traced too (and force-retained — a 429/503 postmortem is
		// exactly what the trace store is for). An incoming W3C
		// traceparent continues the caller's trace; either way the
		// response carries X-Trace-Id and a traceparent for the next hop.
		// Nil tracer → nil span → every call below is a no-op.
		spCtx, sp := s.cfg.Tracer.StartRemote(r.Context(), ep.name+".request", r.Header.Get("traceparent"))
		if sp != nil {
			sw.Header().Set("X-Trace-Id", sp.TraceID())
			sw.Header().Set("traceparent", sp.Traceparent())
			sp.SetAttr("method", r.Method)
			sp.SetAttr("path", r.URL.Path)
			if tenant := r.Header.Get("X-Tenant"); tenant != "" {
				sp.SetAttr("tenant", tenant)
			}
		}
		defer func() {
			if v := recover(); v != nil {
				s.met.onPanic(ep.name, v)
				if !sw.wrote {
					writeError(sw, &apiError{status: http.StatusInternalServerError, code: CodeInternal,
						msg: fmt.Sprintf("internal error in %s: %s", ep.name, renderPanic(v))}, sp.TraceID())
				}
			}
			s.met.onResponse(sw.status())
			if sp != nil {
				st := sw.status()
				sp.SetInt("status", int64(st))
				if st == http.StatusTooManyRequests || st >= http.StatusInternalServerError {
					// Rejections and server faults are always retained:
					// they are the traces an operator comes looking for.
					sp.Force()
					if st >= http.StatusInternalServerError {
						sp.SetError(fmt.Errorf("status %d", st))
					}
				}
				sp.End()
			}
		}()

		if s.draining.Load() {
			s.met.onRejected(CodeShuttingDown)
			writeError(sw, &apiError{status: http.StatusServiceUnavailable, code: CodeShuttingDown,
				msg: "server is shutting down", retryAfter: s.cfg.RetryAfter}, sp.TraceID())
			return
		}
		hg := sp.Child("server.health_gate")
		e := s.healthGate(ep.write)
		if e != nil { // typed-nil *apiError must not reach SetError
			hg.SetError(e)
		}
		hg.End()
		if e != nil {
			s.met.onRejected(e.code)
			writeError(sw, e, sp.TraceID())
			return
		}

		// Deadline: client ?timeout= clamped by MaxTimeout, default
		// DefaultTimeout. The span rides the request context from here
		// down, so handler stages attach their own children.
		d, err := s.requestTimeout(r)
		if err != nil {
			writeError(sw, errBadRequest("%v", err), sp.TraceID())
			return
		}
		ctx, cancel := context.WithTimeout(spCtx, d)
		defer cancel()

		// Slow-client write deadline: the response must be fully written
		// within the query deadline plus slack, or the connection is
		// severed — one stalled reader cannot pin a connection (and its
		// admission slot was already released by then, but its buffers
		// and goroutine would linger forever otherwise).
		rc := http.NewResponseController(w)
		rc.SetWriteDeadline(time.Now().Add(d + s.cfg.WriteSlack))

		// Admission: wait at most QueueWait (and never past the request
		// deadline) for a slot.
		waitCtx, waitCancel := context.WithTimeout(ctx, s.cfg.QueueWait)
		t0 := s.met.startTimer()
		aw := sp.Child("server.admission_wait")
		aw.SetInt("weight", ep.weight)
		release, aerr := s.lim.Acquire(waitCtx, r.Header.Get("X-Tenant"), ep.weight)
		aw.SetError(aerr)
		aw.End()
		waitCancel()
		s.met.setQueueDepth(s.lim.Stats().Queued)
		if aerr != nil {
			e := admissionError(aerr, s.cfg.RetryAfter)
			s.met.onRejected(e.code)
			writeError(sw, e, sp.TraceID())
			return
		}
		s.met.onAdmitted(t0, ep.weight)
		s.inflight.Add(1)
		defer func() {
			release()
			s.inflight.Add(-1)
			s.met.onDone(ep.name, t0, ep.weight)
			s.met.setQueueDepth(s.lim.Stats().Queued)
		}()

		if err := ep.handle(ctx, sw, r); err != nil {
			s.writeHandlerError(sw, err, sp.TraceID())
		}
	})
}

// healthGate maps the supervisor state to an admission decision.
// Documented mapping (SERVING.md):
//
//	state           writes              reads (RejectDegraded)  reads (ServeDegraded)
//	Healthy         admitted            admitted                admitted
//	Degraded        503 + Retry-After   503 + Retry-After       admitted
//	Degraded(disk)  507 + Retry-After   507 + Retry-After       admitted
//	Recovering      503 + Retry-After   503 + Retry-After       admitted
//	Failed          503 (terminal)      503 (terminal)          admitted
//
// Degraded(disk) answers 507 Insufficient Storage rather than 503: the
// store is out of WAL disk budget, a condition an automatic checkpoint
// or an operator freeing space clears — retry after Retry-After. A raw
// ENOSPC never reaches a client.
//
// Requests admitted before a transition run to completion under their
// deadline; the gate is checked once at admission.
func (s *Server) healthGate(write bool) *apiError {
	st := s.cfg.Backend.State()
	if st == supervise.Healthy {
		return nil
	}
	if !write && s.cfg.DegradedReads == ServeDegraded {
		return nil
	}
	switch st {
	case supervise.Degraded:
		return &apiError{status: http.StatusServiceUnavailable, code: CodeDegraded,
			msg: "store is degraded (recovery in progress)", retryAfter: s.cfg.RetryAfter}
	case supervise.DegradedDisk:
		return &apiError{status: http.StatusInsufficientStorage, code: CodeDiskFull,
			msg: "store is out of WAL disk budget (checkpoint or free space to recover)", retryAfter: s.cfg.RetryAfter}
	case supervise.Recovering:
		return &apiError{status: http.StatusServiceUnavailable, code: CodeRecovering,
			msg: "store is recovering", retryAfter: s.cfg.RetryAfter}
	default: // Failed: terminal — no Retry-After, clients should fail over.
		return &apiError{status: http.StatusServiceUnavailable, code: CodeFailed,
			msg: "store has failed (recovery exhausted)"}
	}
}

// requestTimeout resolves the request's deadline from ?timeout=.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad timeout %q: must be positive", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// writeHandlerError maps a handler error onto the wire. Client
// disconnects (context.Canceled without a deadline) get no body — the
// connection is gone. traceID ("" when untraced) rides the envelope.
func (s *Server) writeHandlerError(w *statusWriter, err error, traceID string) {
	var e *apiError
	switch {
	case errors.As(err, &e):
	case errors.Is(err, context.DeadlineExceeded):
		e = &apiError{status: http.StatusGatewayTimeout, code: CodeDeadline,
			msg: "query exceeded its deadline"}
	case errors.Is(err, context.Canceled):
		if s.draining.Load() {
			e = &apiError{status: http.StatusServiceUnavailable, code: CodeShuttingDown,
				msg: "query cancelled: server shutting down", retryAfter: s.cfg.RetryAfter}
			break
		}
		return // client went away; nothing to tell it
	case errors.Is(err, match.ErrBudget):
		e = &apiError{status: http.StatusRequestEntityTooLarge, code: CodeBudget, msg: err.Error()}
	case errors.Is(err, core.ErrNoSuchModel):
		e = &apiError{status: http.StatusNotFound, code: CodeUnknownModel, msg: err.Error()}
	case errors.Is(err, supervise.ErrDiskFull), wal.IsNoSpace(err):
		// Before the generic ErrDegraded case: ErrDiskFull wraps it. The
		// IsNoSpace arm catches an in-flight mutation that hit the disk
		// fault directly (budget rejection, real ENOSPC, short write)
		// before the supervisor transitioned — the client gets the same
		// typed, retryable 507, never a raw filesystem error.
		e = &apiError{status: http.StatusInsufficientStorage, code: CodeDiskFull,
			msg: "store is out of WAL disk budget (checkpoint or free space to recover)",
			retryAfter: s.cfg.RetryAfter}
	case errors.Is(err, supervise.ErrDegraded):
		e = &apiError{status: http.StatusServiceUnavailable, code: CodeDegraded,
			msg: err.Error(), retryAfter: s.cfg.RetryAfter}
	case errors.Is(err, supervise.ErrFailed):
		e = &apiError{status: http.StatusServiceUnavailable, code: CodeFailed, msg: err.Error()}
	case errors.Is(err, core.ErrDurability):
		// The write failed at the WAL and the supervisor is about to
		// degrade and recover; retryable, not an internal error.
		e = &apiError{status: http.StatusServiceUnavailable, code: CodeDegraded,
			msg: "mutation failed at the write-ahead log; store is recovering",
			retryAfter: s.cfg.RetryAfter}
	default:
		e = &apiError{status: http.StatusInternalServerError, code: CodeInternal, msg: err.Error()}
	}
	if w.wrote {
		return // body already streaming; too late to change the status
	}
	writeError(w, e, traceID)
}

// admissionError maps limiter rejections to typed 429s.
func admissionError(err error, retryAfter time.Duration) *apiError {
	switch {
	case errors.Is(err, ErrQueueFull):
		return &apiError{status: http.StatusTooManyRequests, code: CodeQueueFull,
			msg: "admission queue full", retryAfter: retryAfter}
	case errors.Is(err, ErrTenantLimit):
		return &apiError{status: http.StatusTooManyRequests, code: CodeTenantLimit,
			msg: "tenant concurrency limit reached", retryAfter: retryAfter}
	default: // ErrWaitTimeout or the request deadline fired while queued
		return &apiError{status: http.StatusTooManyRequests, code: CodeWaitTimeout,
			msg: "timed out waiting for admission", retryAfter: retryAfter}
	}
}

// statusWriter records whether and what the handler wrote, so the panic
// recovery and error paths know if the status line already left.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// renderPanic formats a recovered panic value with a short stack.
func renderPanic(v any) string {
	return fmt.Sprintf("%v\n%s", v, debug.Stack())
}

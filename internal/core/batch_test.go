package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/rdfterm"
	"repro/internal/wal"
)

// batchWorkload builds a batch exercising repeats (cost bump), typed
// literals with distinct canonical forms, language tags, blanks (reused
// within the batch), and implied statements.
func batchWorkload() []BatchTriple {
	uri := rdfterm.NewURI
	return []BatchTriple{
		{Subject: uri("http://g/files"), Predicate: uri("http://g/suspect"), Object: uri("http://id/JohnDoe")},
		{Subject: uri("http://g/files"), Predicate: uri("http://g/suspect"), Object: uri("http://id/JohnDoe")}, // repeat
		{Subject: uri("http://g/files"), Predicate: uri("http://g/caseCount"),
			Object: rdfterm.NewTypedLiteral("01", rdfterm.XSDInt)}, // canonical form differs
		{Subject: uri("http://id/JohnDoe"), Predicate: uri("http://g/alias"),
			Object: rdfterm.NewLangLiteral("Jean Dupont", "fr")},
		{Subject: rdfterm.NewBlank("b1"), Predicate: uri("http://g/knows"), Object: uri("http://id/JohnDoe")},
		{Subject: rdfterm.NewBlank("b1"), Predicate: uri("http://g/age"),
			Object: rdfterm.NewTypedLiteral("44", rdfterm.XSDInt)}, // blank reuse
		{Subject: uri("http://g/x"), Predicate: uri("http://g/said"), Object: uri("http://g/y"), Implied: true},
	}
}

// TestInsertBatchMatchesPerTriple: a batch insert must leave the store
// in exactly the state a per-triple insert sequence would — byte for
// byte, via the snapshot fingerprint.
func TestInsertBatchMatchesPerTriple(t *testing.T) {
	batch := batchWorkload()

	one := New()
	if _, err := one.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	for i, bt := range batch {
		var err error
		if bt.Implied {
			_, err = one.InsertImplied("m", bt.Subject, bt.Predicate, bt.Object)
		} else {
			_, err = one.InsertTerms("m", bt.Subject, bt.Predicate, bt.Object)
		}
		if err != nil {
			t.Fatalf("per-triple insert %d: %v", i, err)
		}
	}

	many := New()
	if _, err := many.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	res, err := many.InsertBatch("m", batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != len(batch) {
		t.Fatalf("got %d result triples, want %d", len(res.Triples), len(batch))
	}
	if res.NewLinks != len(batch)-1 { // one repeat
		t.Fatalf("NewLinks = %d, want %d", res.NewLinks, len(batch)-1)
	}
	if res.Triples[0].TID != res.Triples[1].TID {
		t.Fatal("repeated statement did not share a TID")
	}

	var a, b bytes.Buffer
	if err := one.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := many.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("batch store state differs from per-triple store state")
	}
	if errs := many.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

// TestInsertBatchCostAndContext: repeats bump COST; a direct batch entry
// upgrades an implied statement's context.
func TestInsertBatchCostAndContext(t *testing.T) {
	s := newStoreWithModel(t, "m")
	sub := rdfterm.NewURI("http://g/s")
	prop := rdfterm.NewURI("http://g/p")
	obj := rdfterm.NewURI("http://g/o")
	res, err := s.InsertBatch("m", []BatchTriple{
		{Subject: sub, Predicate: prop, Object: obj, Implied: true},
		{Subject: sub, Predicate: prop, Object: obj}, // upgrade I -> D, cost 2
		{Subject: sub, Predicate: prop, Object: obj}, // cost 3
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.LinkInfo(res.Triples[0].TID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cost != 3 {
		t.Fatalf("COST = %d, want 3", info.Cost)
	}
	if info.Context != ContextDirect {
		t.Fatalf("CONTEXT = %q, want %q", info.Context, ContextDirect)
	}
}

// TestInsertBatchWALReplay: one batch = one WAL commit; replaying the
// log reproduces the batch store exactly.
func TestInsertBatchWALReplay(t *testing.T) {
	f := &wal.BufferFile{}
	log, err := wal.NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDurability(log)
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InsertBatch("m", batchWorkload()); err != nil {
		t.Fatal(err)
	}

	res, err := wal.ScanBytes(f.Bytes())
	if err != nil || res.Truncated {
		t.Fatalf("scan: %v (truncated=%v)", err, res.Truncated)
	}
	rec := New()
	if err := rec.Replay(res.Records); err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := s.Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("replayed store differs from batch-loaded store")
	}
	if errs := rec.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants after replay: %v", errs)
	}
}

// TestInsertBatchErrors: empty batches are no-ops, bad models and bad
// predicates report cleanly with the batch index.
func TestInsertBatchErrors(t *testing.T) {
	s := newStoreWithModel(t, "m")
	if _, err := s.InsertBatch("m", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := s.InsertBatch("nope", batchWorkload()); err == nil {
		t.Fatal("unknown model accepted")
	}
	_, err := s.InsertBatch("m", []BatchTriple{
		{Subject: rdfterm.NewURI("http://a"), Predicate: rdfterm.NewLiteral("notauri"), Object: rdfterm.NewURI("http://b")},
	})
	if err == nil {
		t.Fatal("literal predicate accepted")
	}
}

// TestTermIDCache: the cache survives heavy reuse and stays correct
// across a forced reset (more distinct terms than a tiny cap would hold
// is impractical to test at 1<<20, so exercise correctness via reuse).
func TestTermIDCache(t *testing.T) {
	s := newStoreWithModel(t, "m")
	var batch []BatchTriple
	subj := rdfterm.NewURI("http://hot/subject")
	pred := rdfterm.NewURI("http://hot/predicate")
	for i := 0; i < 200; i++ {
		batch = append(batch, BatchTriple{
			Subject:   subj,
			Predicate: pred,
			Object:    rdfterm.NewURI(fmt.Sprintf("http://obj/%d", i)),
		})
	}
	res, err := s.InsertBatch("m", batch)
	if err != nil {
		t.Fatal(err)
	}
	// All statements share subject and predicate value IDs.
	for _, ts := range res.Triples {
		if ts.SID != res.Triples[0].SID || ts.PID != res.Triples[0].PID {
			t.Fatal("shared terms interned under different VALUE_IDs")
		}
	}
	if n := s.NumValues(); n != 202 {
		t.Fatalf("NumValues = %d, want 202 (1 subject + 1 predicate + 200 objects)", n)
	}
	// Lookups must agree with the interned IDs (cache vs index coherence).
	ts, ok, err := s.IsTripleTerms("m", subj, pred, rdfterm.NewURI("http://obj/7"))
	if err != nil || !ok {
		t.Fatalf("IsTripleTerms: %v ok=%v", err, ok)
	}
	if ts.SID != res.Triples[7].SID {
		t.Fatal("lookup disagrees with interned subject ID")
	}
}

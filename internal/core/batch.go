package core

import (
	"fmt"

	"repro/internal/rdfterm"
)

// Bulk-insert fast path. The per-triple insert path takes the store's
// write lock, updates every index, and pays a WAL commit (an fsync, when
// durable) for every statement; at UniProt scale (§7.1.1, millions of
// triples) that is latency-bound, not bandwidth-bound. InsertBatch
// amortizes all three costs: one lock acquisition, one WAL record group,
// one commit point per batch.

// BatchTriple is one statement queued for InsertBatch.
type BatchTriple struct {
	Subject   rdfterm.Term
	Predicate rdfterm.Term
	Object    rdfterm.Term
	// Implied inserts the triple as an indirect statement (CONTEXT = "I",
	// §5.2) — the base of a reification that was never asserted directly.
	Implied bool
}

// BatchResult reports what a batch did.
type BatchResult struct {
	// Triples holds the storage object for every input statement, in
	// input order (repeated statements share a TID with bumped COST).
	Triples []TripleS
	// NewLinks is the number of new rdf_link$ rows created.
	NewLinks int
}

// InsertBatch inserts a batch of triples under a single write-lock
// acquisition and a single WAL commit point. The batch runs in two
// phases, mirroring the §4.1 pipeline at batch granularity: every
// distinct term across the batch is interned into rdf_value$ first
// (repeats hit the term-ID cache), then the rdf_link$ rows are inserted.
// The WAL sees one record group ending in one Commit, so a crash either
// keeps the whole batch or replays a consistent prefix of it.
//
// On error the store keeps the entries already applied (each is
// individually consistent) and the WAL is left uncommitted; the error
// identifies the failing entry by batch index.
func (s *Store) InsertBatch(model string, batch []BatchTriple) (BatchResult, error) {
	if len(batch) == 0 {
		return BatchResult{}, nil
	}
	t0 := s.met.startTimer()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met.onWriteLockAcquired(t0)
	s.met.onBatch(len(batch))
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return BatchResult{}, err
	}

	// Phase 1: intern. After this loop every VALUE_ID the batch needs
	// exists, so the link phase is pure index-and-insert work.
	interned := make([]internedTriple, len(batch))
	for i, bt := range batch {
		it, err := s.internTripleLocked(mid, bt.Subject, bt.Predicate, bt.Object)
		if err != nil {
			return BatchResult{}, fmt.Errorf("core: batch entry %d: %w", i, err)
		}
		interned[i] = it
	}

	// Phase 2: links.
	res := BatchResult{Triples: make([]TripleS, len(batch))}
	for i, it := range interned {
		context := ContextDirect
		if batch[i].Implied {
			context = ContextIndirect
		}
		ts, created, err := s.insertLinkLocked(mid, it, context)
		if err != nil {
			return res, fmt.Errorf("core: batch entry %d: %w", i, err)
		}
		res.Triples[i] = ts
		if created {
			res.NewLinks++
		}
	}
	s.met.setTriples(s.links.Len())
	return res, s.logCommit()
}

package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", DurationBuckets)
	var ev *EventLog
	if c != nil || g != nil || h != nil || r.Events() != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(1.5)
	ev.Emit("s", "n", nil)
	if c.Value() != 0 || g.Value() != 0 || ev.Len() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if snap := r.Snapshot(); snap.Series() != 0 {
		t.Fatalf("nil registry snapshot has %d series", snap.Series())
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "operations")
	c.Add(5)
	c.Inc()
	c.Add(-9) // counters only go up; negative adds are dropped
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if again := r.Counter("ops_total", "ignored"); again != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryBadNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	r.Counter("bad name!", "")
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound rule: a
// value exactly on a boundary lands in that boundary's bucket, values
// past the last bound land in +Inf, and values below the first bound
// land in the first bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{
		0,    // below first bound -> bucket 0 (le=1)
		1,    // exactly on bound -> bucket 0 (le=1, inclusive)
		1.5,  // -> bucket 1 (le=2)
		2,    // -> bucket 1
		2.01, // -> bucket 2 (le=5)
		5,    // -> bucket 2
		5.01, // -> +Inf
		math.Inf(1),
	} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	snap := h.snapshot()
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	if math.IsNaN(snap.Sum) || math.IsInf(snap.Sum, 0) == false {
		// 0+1+1.5+2+2.01+5+5.01+Inf = +Inf
		t.Fatalf("sum = %v, want +Inf", snap.Sum)
	}
}

func TestHistogramBoundsNormalized(t *testing.T) {
	h := newHistogram("x", "", []float64{5, 1, 5, math.Inf(1), 2, math.NaN()})
	want := []float64{1, 2, 5}
	if len(h.bounds) != len(want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for i, b := range want {
		if h.bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", h.bounds, want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{10, 20, 30})
	// 10 observations uniformly in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	snap := h.snapshot()
	if p50 := snap.Quantile(0.5); p50 != 10 {
		t.Fatalf("p50 = %g, want 10", p50)
	}
	if p100 := snap.Quantile(1); p100 != 20 {
		t.Fatalf("p100 = %g, want 20", p100)
	}
	if empty := (HistogramSnap{Bounds: []float64{1}}).Quantile(0.5); empty != 0 {
		t.Fatalf("empty quantile = %g, want 0", empty)
	}
	// Overflow-only data saturates at the last finite bound.
	h2 := newHistogram("o", "", []float64{1})
	h2.Observe(100)
	if q := h2.snapshot().Quantile(0.99); q != 1 {
		t.Fatalf("overflow quantile = %g, want 1", q)
	}
}

// TestRegistryConcurrency hammers every instrument kind from parallel
// writers while a reader snapshots — run under -race this is the
// lock-free write path's correctness test.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			var sb strings.Builder
			if err := snap.WriteProm(&sb); err != nil {
				t.Error(err)
				return
			}
			if _, err := ParseExposition(strings.NewReader(sb.String())); err != nil {
				t.Errorf("mid-flight exposition unparseable: %v", err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := r.Counter("conc_ops_total", "")
			g := r.Gauge("conc_depth", "")
			h := r.Histogram("conc_lat", "", DurationBuckets)
			ev := r.Events()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.001)
				if i%500 == 0 {
					ev.Emit("test", "tick", map[string]string{"worker": "w"})
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()
	snap := r.Snapshot()
	c, _ := snap.Counter("conc_ops_total")
	if c.Value != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value, workers*iters)
	}
	h, _ := snap.Histogram("conc_lat")
	if h.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*iters)
	}
	sum := int64(0)
	for _, n := range h.Counts {
		sum += n
	}
	if sum != h.Count {
		t.Fatalf("bucket sum %d != count %d", sum, h.Count)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	for i := 0; i < 5; i++ {
		l.Emit("s", "e", map[string]string{"i": string(rune('0' + i))})
	}
	events := l.Snapshot()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	// Oldest two evicted: Seqs 3,4,5 remain, in order.
	for i, want := range []int64{3, 4, 5} {
		if events[i].Seq != want {
			t.Fatalf("event %d Seq = %d, want %d", i, events[i].Seq, want)
		}
	}
	if events[0].Scope != "s" || events[0].Name != "e" {
		t.Fatalf("event fields lost: %+v", events[0])
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Counter("a_total", "")
	snap := r.Snapshot()
	if snap.Counters[0].Name != "a_total" || snap.Counters[1].Name != "z_total" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_value_here\n",
		"name{unterminated=\"x\" 3\n",
		"2name 7\n",
		"# TYPE x wibble\n",
		"x{le=unquoted} 3\n",
		"name not_a_number\n",
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Fatalf("ParseExposition accepted %q", in)
		}
	}
	// Histogram whose +Inf bucket disagrees with _count.
	in := "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"
	if _, err := ParseExposition(strings.NewReader(in)); err == nil {
		t.Fatal("ParseExposition accepted inconsistent histogram")
	}
}

// TestEventLogConcurrentWrapAround hammers a ring at exact capacity
// from many writers and checks the wrap-around invariants: the ring
// never holds more than its capacity, the retained window is the
// *newest* contiguous run of sequence numbers (the latest event is
// never lost to an older writer racing the wrap), and a snapshot is
// strictly ordered with no duplicates or gaps.
func TestEventLogConcurrentWrapAround(t *testing.T) {
	const (
		capacity = 64
		workers  = 8
		perW     = 1000
	)
	l := NewEventLog(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fields := map[string]string{"worker": strconv.Itoa(w)}
			for i := 0; i < perW; i++ {
				l.Emit("test", "wrap", fields)
			}
		}(w)
	}
	wg.Wait()

	if got := l.Len(); got != capacity {
		t.Fatalf("Len = %d, want exactly %d after wrap", got, capacity)
	}
	events := l.Snapshot()
	if len(events) != capacity {
		t.Fatalf("snapshot holds %d events, want %d", len(events), capacity)
	}
	const total = workers * perW
	// The retained window must be the newest `capacity` sequence
	// numbers, contiguous and in order: total-capacity+1 .. total.
	for i, ev := range events {
		want := int64(total - capacity + 1 + i)
		if ev.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d (window must be the newest contiguous run)", i, ev.Seq, want)
		}
		if ev.Scope != "test" || ev.Name != "wrap" || ev.Fields["worker"] == "" {
			t.Fatalf("event %d lost payload across wrap: %+v", i, ev)
		}
	}
	if last := events[capacity-1].Seq; last != total {
		t.Fatalf("latest event Seq = %d, want %d (last emit must never be evicted by an older racer)", last, total)
	}
}

// TestParseExpositionLabelEscapes feeds the strict parser
// exotic-but-legal label values: escaped quotes, escaped backslashes
// (including a trailing one), escaped newlines, commas and spaces
// inside quoted values, and the +Inf bucket boundary. All must parse,
// and labelValue must still find keys around them.
func TestParseExpositionLabelEscapes(t *testing.T) {
	in := strings.Join([]string{
		`# TYPE exotic_total counter`,
		`exotic_total{msg="say \"hi\", ok",path="C:\\tmp\\x"} 1`,
		`exotic_total{msg="line1\nline2",trailer="x\\"} 2`,
		`exotic_total{a="comma, inside",b="spaced out value"} 3`,
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{tag="q\"uoted",le="0.5"} 4`,
		`lat_seconds_bucket{tag="q\"uoted",le="+Inf"} 4`,
		`lat_seconds_sum{tag="q\"uoted"} 1.5`,
		`lat_seconds_count{tag="q\"uoted"} 4`,
		``,
	}, "\n")
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseExposition rejected legal escapes: %v", err)
	}
	if got := len(exp.Samples); got != 7 {
		t.Fatalf("parsed %d samples, want 7", got)
	}
	// Escaped quote and comma inside one value must not split the pair.
	if v := labelValue(exp.Samples[0].Labels, "msg"); v != `say "hi", ok` {
		t.Fatalf("msg = %q, want escaped quotes and comma preserved", v)
	}
	if v := labelValue(exp.Samples[0].Labels, "path"); v != `C:\\tmp\\x` {
		t.Fatalf("path = %q (raw backslash escapes must survive extraction)", v)
	}
	// A second key after an escape-heavy first value must still resolve.
	if v := labelValue(exp.Samples[1].Labels, "trailer"); v != `x\\` {
		t.Fatalf("trailer = %q, want the trailing-backslash value", v)
	}
	if v := labelValue(exp.Samples[2].Labels, "b"); v != "spaced out value" {
		t.Fatalf("b = %q, want spaces preserved", v)
	}
	// The histogram consistency pass must find le despite the escaped
	// quote in the neighbouring label.
	if v := labelValue(exp.Samples[3].Labels, "le"); v != "0.5" {
		t.Fatalf("le = %q, want 0.5 next to an escaped-quote label", v)
	}
}

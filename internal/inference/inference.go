// Package inference implements the paper's SDO_RDF_INFERENCE package
// (§6.1): user-defined rulebases, the Oracle-supplied RDFS entailment
// rulebase, and rules indexes that pre-compute inferred triples so that
// SDO_RDF_MATCH can query them.
//
// A rules index materializes the fixpoint of the rules over the selected
// models into a hidden model (rdfsix_<name> in the store); match queries
// that name the rulebases read base and inferred triples together.
package inference

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdfterm"
)

// Rule is one inference rule: IF the antecedent patterns all match (and
// the filter passes) THEN the consequent pattern holds. This mirrors the
// paper's rule rows (Figure 8):
//
//	('intel_rule', '(?x gov:terrorAction "bombing")', null,
//	 '(gov:files gov:terrorSuspect ?x)', aliases)
type Rule struct {
	Name       string
	Antecedent string // one or more '(s p o)' patterns
	Filter     string // optional filter expression over antecedent vars
	Consequent string // exactly one '(s p o)' pattern
	Aliases    []rdfterm.Alias
}

// Rulebase is a named collection of rules (CREATE_RULEBASE + inserts into
// the rdfr_<name> table).
type Rulebase struct {
	name  string
	rules []Rule
}

// Name returns the rulebase name.
func (rb *Rulebase) Name() string { return rb.name }

// Rules returns a copy of the rules.
func (rb *Rulebase) Rules() []Rule { return append([]Rule(nil), rb.rules...) }

// RDFSRulebaseName is the reserved name of the built-in RDFS rulebase
// ("The RDFS rulebase is Oracle-supplied", §6.1).
const RDFSRulebaseName = "RDFS"

// Sentinel errors.
var (
	ErrNoSuchRulebase = fmt.Errorf("inference: no such rulebase")
	ErrNoRulesIndex   = fmt.Errorf("inference: no rules index for this models+rulebases combination")
)

// Catalog owns rulebases and rules indexes for one store — the engine's
// SDO_RDF_INFERENCE package state.
type Catalog struct {
	mu        sync.Mutex
	store     *core.Store
	rulebases map[string]*Rulebase
	indexes   map[string]*RulesIndex // by index name
	byScope   map[string]string      // scope key -> index name
}

// NewCatalog creates an inference catalog over a store, with the built-in
// RDFS rulebase preregistered.
func NewCatalog(store *core.Store) *Catalog {
	c := &Catalog{
		store:     store,
		rulebases: make(map[string]*Rulebase),
		indexes:   make(map[string]*RulesIndex),
		byScope:   make(map[string]string),
	}
	c.rulebases[RDFSRulebaseName] = &Rulebase{name: RDFSRulebaseName, rules: rdfsRules()}
	return c
}

// CreateRulebase is SDO_RDF_INFERENCE.CREATE_RULEBASE (Figure 8).
func (c *Catalog) CreateRulebase(name string) (*Rulebase, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("inference: empty rulebase name")
	}
	if _, dup := c.rulebases[name]; dup {
		return nil, fmt.Errorf("inference: rulebase %q already exists", name)
	}
	rb := &Rulebase{name: name}
	c.rulebases[name] = rb
	return rb, nil
}

// Rulebase returns a rulebase by name.
func (c *Catalog) Rulebase(name string) (*Rulebase, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rb, ok := c.rulebases[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchRulebase, name)
	}
	return rb, nil
}

// AddRule appends a rule to a rulebase (the paper's INSERT INTO
// mdsys.rdfr_<rulebase>). The rule's patterns are validated eagerly.
func (c *Catalog) AddRule(rulebase string, r Rule) error {
	rb, err := c.Rulebase(rulebase)
	if err != nil {
		return err
	}
	if r.Name == "" {
		return fmt.Errorf("inference: rule needs a name")
	}
	aliases := rdfterm.Default().With(r.Aliases...)
	if _, err := match.ParseQuery(r.Antecedent, aliases); err != nil {
		return fmt.Errorf("inference: rule %s antecedent: %w", r.Name, err)
	}
	cons, err := match.ParseQuery(r.Consequent, aliases)
	if err != nil {
		return fmt.Errorf("inference: rule %s consequent: %w", r.Name, err)
	}
	if len(cons) != 1 {
		return fmt.Errorf("inference: rule %s must have exactly one consequent pattern", r.Name)
	}
	if _, err := match.ParseFilter(r.Filter); err != nil {
		return fmt.Errorf("inference: rule %s filter: %w", r.Name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rb.rules = append(rb.rules, r)
	return nil
}

// scopeKey canonicalizes a models+rulebases combination.
func scopeKey(models, rulebases []string) string {
	m := append([]string{}, models...)
	r := append([]string{}, rulebases...)
	sort.Strings(m)
	sort.Strings(r)
	return strings.Join(m, ",") + "|" + strings.Join(r, ",")
}

// ResolveIndex implements match.RulebaseResolver: it returns the hidden
// model of the rules index previously created for exactly this
// models+rulebases combination.
func (c *Catalog) ResolveIndex(models, rulebases []string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name, ok := c.byScope[scopeKey(models, rulebases)]
	if !ok {
		return "", fmt.Errorf("%w: models %v, rulebases %v", ErrNoRulesIndex, models, rulebases)
	}
	return c.indexes[name].indexModel, nil
}

// RulesIndex is a materialized inference result — CREATE_RULES_INDEX
// (Figure 8). Inferred triples live in a hidden store model.
type RulesIndex struct {
	name       string
	models     []string
	rulebases  []string
	indexModel string
	inferred   int
}

// Name returns the index name.
func (ix *RulesIndex) Name() string { return ix.name }

// InferredCount returns the number of materialized inferred triples.
func (ix *RulesIndex) InferredCount() int { return ix.inferred }

// IndexModel returns the hidden model holding the inferred triples.
func (ix *RulesIndex) IndexModel() string { return ix.indexModel }

// CreateRulesIndex is SDO_RDF_INFERENCE.CREATE_RULES_INDEX (Figure 8): it
// computes the fixpoint of the given rulebases over the given models and
// materializes the *new* triples (those not present in any source model)
// into a hidden model.
func (c *Catalog) CreateRulesIndex(name string, models, rulebases []string) (*RulesIndex, error) {
	if name == "" {
		return nil, fmt.Errorf("inference: empty index name")
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("inference: rules index needs at least one model")
	}
	c.mu.Lock()
	if _, dup := c.indexes[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("inference: rules index %q already exists", name)
	}
	var rbs []*Rulebase
	for _, rb := range rulebases {
		b, ok := c.rulebases[rb]
		if !ok {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrNoSuchRulebase, rb)
		}
		rbs = append(rbs, b)
	}
	c.mu.Unlock()

	indexModel := "rdfsix_" + strings.ToLower(name)
	if _, err := c.store.CreateRDFModel(indexModel, "", ""); err != nil {
		return nil, err
	}
	ix := &RulesIndex{name: name, models: models, rulebases: rulebases, indexModel: indexModel}
	if err := c.populate(ix, rbs); err != nil {
		_ = c.store.DropRDFModel(indexModel)
		return nil, err
	}
	c.mu.Lock()
	c.indexes[name] = ix
	c.byScope[scopeKey(models, rulebases)] = name
	c.mu.Unlock()
	return ix, nil
}

// DropRulesIndex removes a rules index and its materialized triples.
func (c *Catalog) DropRulesIndex(name string) error {
	c.mu.Lock()
	ix, ok := c.indexes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: index %q", ErrNoRulesIndex, name)
	}
	delete(c.indexes, name)
	delete(c.byScope, scopeKey(ix.models, ix.rulebases))
	c.mu.Unlock()
	return c.store.DropRDFModel(ix.indexModel)
}

// Rebuild recomputes a rules index after base-model updates (Oracle
// requires the same).
func (c *Catalog) Rebuild(name string) error {
	c.mu.Lock()
	ix, ok := c.indexes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: index %q", ErrNoRulesIndex, name)
	}
	var rbs []*Rulebase
	for _, rb := range ix.rulebases {
		rbs = append(rbs, c.rulebases[rb])
	}
	c.mu.Unlock()
	if err := c.store.DropRDFModel(ix.indexModel); err != nil {
		return err
	}
	if _, err := c.store.CreateRDFModel(ix.indexModel, "", ""); err != nil {
		return err
	}
	ix.inferred = 0
	return c.populate(ix, rbs)
}

// populate runs the rules to fixpoint. Each round evaluates every rule's
// antecedent over base models + already-inferred triples, inserting new
// consequents into the index model; it stops when a round adds nothing.
func (c *Catalog) populate(ix *RulesIndex, rbs []*Rulebase) error {
	scope := append(append([]string{}, ix.models...), ix.indexModel)
	const maxRounds = 64
	// Per-rule memo of consequent instances already emitted or found to
	// exist: later rounds re-derive everything derived earlier, so the
	// memo saves re-checking each instance against the store every round.
	memo := map[string]map[string]bool{}
	for _, rb := range rbs {
		for _, rule := range rb.rules {
			memo[rb.name+"/"+rule.Name] = map[string]bool{}
		}
	}
	for round := 0; round < maxRounds; round++ {
		added := 0
		for _, rb := range rbs {
			for _, rule := range rb.rules {
				n, err := c.applyRule(ix, scope, rule, memo[rb.name+"/"+rule.Name])
				if err != nil {
					return fmt.Errorf("inference: rule %s/%s: %w", rb.name, rule.Name, err)
				}
				added += n
			}
		}
		if added == 0 {
			return nil
		}
		ix.inferred += added
	}
	return fmt.Errorf("inference: rules index %s did not converge in %d rounds", ix.name, maxRounds)
}

// applyRule evaluates one rule over the scope and inserts new consequent
// instances, returning how many new triples were materialized.
func (c *Catalog) applyRule(ix *RulesIndex, scope []string, rule Rule, emitted map[string]bool) (int, error) {
	aliases := rdfterm.Default().With(rule.Aliases...)
	rs, err := match.Match(c.store, rule.Antecedent, match.Options{
		Models:  scope,
		Aliases: aliases,
		Filter:  rule.Filter,
	})
	if err != nil {
		return 0, err
	}
	consPats, err := match.ParseQuery(rule.Consequent, aliases)
	if err != nil {
		return 0, err
	}
	cons := consPats[0]
	added := 0
	// Rules like rdf1 derive the same consequent from thousands of
	// bindings (and every later round re-derives the earlier rounds'
	// output); the memo dedupes instances before the comparatively
	// expensive store-existence checks.
	for i := 0; i < rs.Len(); i++ {
		binding := map[string]rdfterm.Term{}
		for _, v := range rs.Vars {
			t, _ := rs.Get(i, v)
			binding[v] = t
		}
		sub, ok := instantiate(cons.S, binding)
		if !ok {
			continue
		}
		prop, ok := instantiate(cons.P, binding)
		if !ok {
			continue
		}
		obj, ok := instantiate(cons.O, binding)
		if !ok {
			continue
		}
		// Structural validity: literal subjects/predicates cannot be
		// asserted (rdf1-style rules can bind odd combinations).
		if sub.Kind == rdfterm.Literal || prop.Kind != rdfterm.URI {
			continue
		}
		key := sub.String() + "\x00" + prop.String() + "\x00" + obj.String()
		if emitted[key] {
			continue
		}
		emitted[key] = true
		// Skip triples already present in any scope model (base or index):
		// the rules index stores only genuinely new inferences.
		exists := false
		for _, m := range scope {
			if _, ok, err := c.store.IsTripleTerms(m, sub, prop, obj); err != nil {
				return added, err
			} else if ok {
				exists = true
				break
			}
		}
		if exists {
			continue
		}
		if _, err := c.store.InsertTerms(ix.indexModel, sub, prop, obj); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// instantiate substitutes a binding into a consequent position; it fails
// when a variable is unbound.
func instantiate(pt match.PatternTerm, b map[string]rdfterm.Term) (rdfterm.Term, bool) {
	if !pt.IsVar() {
		return pt.Term, true
	}
	t, ok := b[pt.Var]
	return t, ok
}

var _ match.RulebaseResolver = (*Catalog)(nil)

// Package framework is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that the repository's custom vet
// passes need. The container this repo builds in has no module proxy
// access, so the real x/tools module cannot be vendored; everything here
// is stdlib-only (go/ast, go/types, go/importer).
//
// The shape mirrors go/analysis deliberately — Analyzer{Name, Doc, Run},
// Pass with Fset/Files/Pkg/TypesInfo and Reportf — so the passes can be
// ported to the real framework by swapping the import if x/tools ever
// becomes available.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //repro:vet-ignore suppression comments.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run executes the pass over one package.
	Run func(*Pass) error
	// SkipTestFiles suppresses diagnostics positioned in _test.go files.
	// The lock and WAL contracts bind the production code; white-box
	// tests single-thread the store and are exempt.
	SkipTestFiles bool
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

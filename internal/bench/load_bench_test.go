package bench

// Load-path benchmark: the cost of bulk inserting into the central
// schema with all indexes maintained (the §7.3 "set-up cost" analogue).

import "testing"

func BenchmarkLoadOracle20k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := LoadOracle(20000, 500, 1); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// Streamlined reification (§5): instead of the four-triple reification
// quad, one triple <DBUri(linkID), rdf:type, rdf:Statement> is stored —
// 25% of the naïve storage (§7.3) — and the DBUri points directly at the
// reified triple's row.

// Reify is the reification constructor SDO_RDF_TRIPLE_S(model_name,
// rdf_t_id) (§5): it generates the triple <DBUri, rdf:type, rdf:Statement>
// for the triple identified by linkID. Reifying an already-reified triple
// is idempotent (the existing reification triple's COST is bumped, like
// any repeated insert).
func (s *Store) Reify(model string, linkID int64) (TripleS, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return TripleS{}, err
	}
	// The reified triple must exist somewhere in the store; its DBUri is a
	// direct row pointer.
	if _, err := s.getTripleSLocked(linkID); err != nil {
		return TripleS{}, err
	}
	ts, err := s.reifyLocked(mid, linkID)
	if err != nil {
		return TripleS{}, err
	}
	return ts, s.logCommit()
}

func (s *Store) reifyLocked(modelID, linkID int64) (TripleS, error) {
	ts, _, err := s.insertLocked(modelID,
		rdfterm.NewURI(DBUri(linkID)),
		rdfterm.NewURI(rdfterm.RDFType),
		rdfterm.NewURI(rdfterm.RDFStatement),
		ContextDirect)
	return ts, err
}

// AssertAboutTriple is the assertion constructor SDO_RDF_TRIPLE_S(
// model_name, subject, property, rdf_t_id) (§5): it reifies the triple
// identified by rdf_t_id (if not already reified) and asserts
// <subject, property, DBUri(rdf_t_id)> — e.g. Figure 7's
// <gov:MI5, gov:source, R>.
func (s *Store) AssertAboutTriple(model, subject, property string, linkID int64, aliases *rdfterm.AliasSet) (TripleS, error) {
	sub, err := parseSubjectDB(subject, aliases)
	if err != nil {
		return TripleS{}, err
	}
	prop, err := rdfterm.ParsePredicate(property, aliases)
	if err != nil {
		return TripleS{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return TripleS{}, err
	}
	if _, err := s.getTripleSLocked(linkID); err != nil {
		return TripleS{}, err
	}
	if !s.isReifiedLocked(mid, linkID) {
		if _, err := s.reifyLocked(mid, linkID); err != nil {
			return TripleS{}, err
		}
	}
	ts, _, err := s.insertLocked(mid, sub, prop, rdfterm.NewURI(DBUri(linkID)), ContextDirect)
	if err != nil {
		return TripleS{}, err
	}
	return ts, s.logCommit()
}

// AssertImplied is the assertion constructor SDO_RDF_TRIPLE_S(model_name,
// reif_sub, reif_prop, subject, property, object) (§5, §5.2): it asserts a
// statement about a base triple that need not previously exist. A base
// triple inserted this way is an *implied* statement (CONTEXT = "I"); if
// it already exists as a fact its context is untouched, and if it is later
// asserted directly its context upgrades to "D".
func (s *Store) AssertImplied(model, reifSub, reifProp, subject, property, object string, aliases *rdfterm.AliasSet) (TripleS, error) {
	rs, err := parseSubjectDB(reifSub, aliases)
	if err != nil {
		return TripleS{}, err
	}
	rp, err := rdfterm.ParsePredicate(reifProp, aliases)
	if err != nil {
		return TripleS{}, err
	}
	sub, err := parseSubjectDB(subject, aliases)
	if err != nil {
		return TripleS{}, err
	}
	prop, err := rdfterm.ParsePredicate(property, aliases)
	if err != nil {
		return TripleS{}, err
	}
	obj, err := parseObjectDB(object, aliases)
	if err != nil {
		return TripleS{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return TripleS{}, err
	}
	// Insert (or find) the base triple as an indirect statement.
	base, _, err := s.insertLocked(mid, sub, prop, obj, ContextIndirect)
	if err != nil {
		return TripleS{}, err
	}
	if !s.isReifiedLocked(mid, base.TID) {
		if _, err := s.reifyLocked(mid, base.TID); err != nil {
			return TripleS{}, err
		}
	}
	ts, _, err := s.insertLocked(mid, rs, rp, rdfterm.NewURI(DBUri(base.TID)), ContextDirect)
	if err != nil {
		return TripleS{}, err
	}
	return ts, s.logCommit()
}

// IsReified reports whether the given triple is reified in the model —
// the paper's SDO_RDF.IS_REIFIED() (Figure 11). It is a constant number of
// index lookups: resolve the triple to its LINK_ID, then look for the
// single <DBUri, rdf:type, rdf:Statement> row.
func (s *Store) IsReified(model, subject, property, object string, aliases *rdfterm.AliasSet) (bool, error) {
	sub, err := parseSubjectDB(subject, aliases)
	if err != nil {
		return false, err
	}
	prop, err := rdfterm.ParsePredicate(property, aliases)
	if err != nil {
		return false, err
	}
	obj, err := parseObjectDB(object, aliases)
	if err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return false, err
	}
	ts, ok, err := s.isTripleTermsLocked(mid, sub, prop, obj)
	if err != nil || !ok {
		return false, err
	}
	return s.isReifiedLocked(mid, ts.TID), nil
}

// IsReifiedByID reports whether LINK_ID is reified in the model.
func (s *Store) IsReifiedByID(model string, linkID int64) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return false, err
	}
	return s.isReifiedLocked(mid, linkID), nil
}

// isReifiedLocked searches for the DBUri reification row. (Read-only; safe
// with or without s.mu.)
func (s *Store) isReifiedLocked(modelID, linkID int64) bool {
	sid, ok := s.lookupValueIDLocked(rdfterm.NewURI(DBUri(linkID)))
	if !ok {
		return false
	}
	pid, ok := s.lookupValueIDLocked(rdfterm.NewURI(rdfterm.RDFType))
	if !ok {
		return false
	}
	oid, ok := s.lookupValueIDLocked(rdfterm.NewURI(rdfterm.RDFStatement))
	if !ok {
		return false
	}
	return s.linkMSPO.Contains(reldb.Key{reldb.Int(modelID), reldb.Int(sid), reldb.Int(pid), reldb.Int(oid)})
}

// Assertions returns the assertions made about a reified triple in a
// model: all triples whose object is the DBUri of linkID (e.g. Figure 7's
// <gov:MI5, gov:source, R>), excluding the rdf:type reification row
// itself.
func (s *Store) Assertions(model string, linkID int64) ([]Triple, error) {
	dburi := rdfterm.NewURI(DBUri(linkID))
	ts, err := s.Find(model, Pattern{Object: &dburi})
	if err != nil {
		return nil, err
	}
	var out []Triple
	for _, t := range ts {
		tr, err := t.GetTriple()
		if err != nil {
			return nil, err
		}
		if tr.Property.Value == rdfterm.RDFType && tr.Object.Value == rdfterm.RDFStatement {
			continue
		}
		out = append(out, tr)
	}
	return out, nil
}

// ReifiedCount returns the number of reified statements in a model: the
// count of <?, rdf:type, rdf:Statement> rows whose subject is a DBUri.
func (s *Store) ReifiedCount(model string) (int, error) {
	typ := rdfterm.NewURI(rdfterm.RDFType)
	stmt := rdfterm.NewURI(rdfterm.RDFStatement)
	ts, err := s.Find(model, Pattern{Predicate: &typ, Object: &stmt})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, t := range ts {
		sub, err := t.GetSubject()
		if err != nil {
			return 0, err
		}
		if _, ok := ParseDBUri(sub); ok {
			n++
		}
	}
	return n, nil
}

// Package match implements the paper's SDO_RDF_MATCH table function (§6.1
// and [23]): an SQL-accessible, SPARQL-like query scheme over one or more
// RDF models, with namespace aliases, an optional filter expression, and
// optional rulebase inference (resolved through a precomputed rules
// index — see internal/inference).
package match

import (
	"fmt"
	"strings"

	"repro/internal/rdfterm"
)

// PatternTerm is one position of a triple pattern: either a variable
// (?name) or a concrete term.
type PatternTerm struct {
	Var  string // non-empty for variables, without the '?'
	Term rdfterm.Term
}

// IsVar reports whether the position is a variable.
func (p PatternTerm) IsVar() bool { return p.Var != "" }

// String renders the pattern term in reparseable query syntax.
func (p PatternTerm) String() string {
	if p.IsVar() {
		return "?" + p.Var
	}
	t := p.Term
	switch t.Kind {
	case rdfterm.Literal:
		s := `"` + rdfterm.EscapeLiteral(t.Value) + `"`
		if t.Language != "" {
			s += "@" + t.Language
		}
		if t.Datatype != "" {
			s += "^^<" + t.Datatype + ">"
		}
		return s
	case rdfterm.Blank:
		return "_:" + t.Value
	default:
		return "<" + t.Value + ">"
	}
}

// TriplePattern is one parenthesized (s p o) group of a query.
type TriplePattern struct {
	S, P, O PatternTerm
}

// String renders the pattern.
func (t TriplePattern) String() string {
	return "(" + t.S.String() + " " + t.P.String() + " " + t.O.String() + ")"
}

// Vars returns the distinct variable names of the pattern, in position
// order.
func (t TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, pt := range []PatternTerm{t.S, t.P, t.O} {
		if pt.IsVar() && !seen[pt.Var] {
			seen[pt.Var] = true
			out = append(out, pt.Var)
		}
	}
	return out
}

// ParseQuery parses a query string of one or more parenthesized triple
// patterns, e.g.
//
//	(?x gov:terrorAction "bombing") (gov:files gov:terrorSuspect ?x)
//
// Prefixed names are expanded through aliases.
func ParseQuery(query string, aliases *rdfterm.AliasSet) ([]TriplePattern, error) {
	p := &patParser{s: query, aliases: aliases}
	var pats []TriplePattern
	for {
		p.skipWS()
		if p.eof() {
			break
		}
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		pats = append(pats, pat)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("match: empty query")
	}
	return pats, nil
}

type patParser struct {
	s       string
	pos     int
	aliases *rdfterm.AliasSet
}

func (p *patParser) eof() bool { return p.pos >= len(p.s) }

func (p *patParser) skipWS() {
	for !p.eof() && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

func (p *patParser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("match: col %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

func (p *patParser) pattern() (TriplePattern, error) {
	if p.eof() || p.s[p.pos] != '(' {
		return TriplePattern{}, p.errorf("expected '('")
	}
	p.pos++
	s, err := p.term(subjectPos)
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.term(predicatePos)
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.term(objectPos)
	if err != nil {
		return TriplePattern{}, err
	}
	p.skipWS()
	if p.eof() || p.s[p.pos] != ')' {
		return TriplePattern{}, p.errorf("expected ')'")
	}
	p.pos++
	return TriplePattern{S: s, P: pr, O: o}, nil
}

type termPos int

const (
	subjectPos termPos = iota
	predicatePos
	objectPos
)

func (p *patParser) term(pos termPos) (PatternTerm, error) {
	p.skipWS()
	if p.eof() {
		return PatternTerm{}, p.errorf("unexpected end of query")
	}
	switch c := p.s[p.pos]; {
	case c == '?':
		return p.variable()
	case c == '"':
		if pos != objectPos {
			return PatternTerm{}, p.errorf("literal only allowed in object position")
		}
		return p.quoted()
	case c == '<':
		end := strings.IndexByte(p.s[p.pos:], '>')
		if end < 0 {
			return PatternTerm{}, p.errorf("unterminated URI")
		}
		raw := p.s[p.pos : p.pos+end+1]
		p.pos += end + 1
		t, err := rdfterm.ParseObject(raw, p.aliases)
		if err != nil {
			return PatternTerm{}, err
		}
		return PatternTerm{Term: t}, nil
	default:
		return p.word(pos)
	}
}

func (p *patParser) variable() (PatternTerm, error) {
	start := p.pos + 1
	i := start
	for i < len(p.s) && isVarChar(p.s[i]) {
		i++
	}
	if i == start {
		return PatternTerm{}, p.errorf("empty variable name")
	}
	p.pos = i
	return PatternTerm{Var: p.s[start:i]}, nil
}

func isVarChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// quoted parses "lex" with optional @lang / ^^type suffix, delegating to
// rdfterm's literal parsing.
func (p *patParser) quoted() (PatternTerm, error) {
	// Find the end of the literal token: closing quote plus suffix up to
	// whitespace or ')'.
	i := p.pos + 1
	for i < len(p.s) {
		if p.s[i] == '\\' {
			i += 2
			continue
		}
		if p.s[i] == '"' {
			break
		}
		i++
	}
	if i >= len(p.s) {
		return PatternTerm{}, p.errorf("unterminated literal")
	}
	i++ // past the quote
	for i < len(p.s) && p.s[i] != ' ' && p.s[i] != '\t' && p.s[i] != ')' {
		i++
	}
	raw := p.s[p.pos:i]
	p.pos = i
	t, err := rdfterm.ParseObject(raw, p.aliases)
	if err != nil {
		return PatternTerm{}, err
	}
	return PatternTerm{Term: t}, nil
}

// word parses an unquoted token: variable-free URI (prefixed or absolute),
// blank node, or bare literal word (object position only).
func (p *patParser) word(pos termPos) (PatternTerm, error) {
	start := p.pos
	i := start
	for i < len(p.s) && p.s[i] != ' ' && p.s[i] != '\t' && p.s[i] != ')' && p.s[i] != '(' {
		i++
	}
	raw := p.s[start:i]
	p.pos = i
	if raw == "" {
		return PatternTerm{}, p.errorf("empty term")
	}
	var (
		t   rdfterm.Term
		err error
	)
	switch pos {
	case subjectPos:
		t, err = rdfterm.ParseSubject(raw, p.aliases)
	case predicatePos:
		t, err = rdfterm.ParsePredicate(raw, p.aliases)
	default:
		t, err = rdfterm.ParseObject(raw, p.aliases)
	}
	if err != nil {
		return PatternTerm{}, err
	}
	return PatternTerm{Term: t}, nil
}

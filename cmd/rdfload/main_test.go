package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

const sample = `
<http://gov/files> <http://gov/terrorSuspect> <http://id/JohnDoe> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://gov/files> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate> <http://gov/terrorSuspect> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#object> <http://id/JohnDoe> .
<http://gov/MI5> <http://gov/source> _:r1 .
`

func TestRunLoadsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.nt")
	if err := os.WriteFile(path, []byte(sample), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-model", "test", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"read:                 6 triples",
		"quads folded:         1",
		"assertions rewritten: 1",
		"reified statements:   1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "read:                 1 triples") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "explode"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent/file.nt"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunParseError(t *testing.T) {
	if err := run(nil, strings.NewReader("garbage\n"), &strings.Builder{}); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestRunSaveSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "out.snap")
	var out strings.Builder
	err := run([]string{"-model", "m", "-save", snap},
		strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Errorf("output:\n%s", out.String())
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st.NumTriples("m"); n != 1 {
		t.Fatalf("snapshot triples = %d", n)
	}
}

const xmlSample = `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
        xmlns:gov="http://gov#">
  <rdf:Description rdf:about="http://gov/files">
    <gov:terrorSuspect rdf:ID="claim1" rdf:resource="http://id/JohnDoe"/>
  </rdf:Description>
</rdf:RDF>`

func TestRunXMLFormat(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-format", "xml", "-base", "http://base", "-model", "m"},
		strings.NewReader(xmlSample), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// The rdf:ID reification quad (4 triples) plus the base statement are
	// read; the quad folds to one DBUri row.
	for _, want := range []string{
		"read:                 5 triples",
		"quads folded:         1",
		"stored rows:          2",
		"reified statements:   1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunXMLBadFormatAndParse(t *testing.T) {
	if err := run([]string{"-format", "weird"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-format", "xml"}, strings.NewReader("<unclosed>"), &strings.Builder{}); err == nil {
		t.Fatal("bad XML accepted")
	}
}

package supervise

import (
	"context"
	"os"
	"time"

	"repro/internal/trace"
)

// Automatic checkpointing. The policy loop turns the manual-only
// Checkpoint into the segmented WAL's retention engine: without it an
// rdfserve left running would grow its log without bound and the disk
// budget would only ever be hit, never relieved. Two trigger classes:
//
//   - Policy (CheckpointPolicy): every Poll the loop asks "has Interval
//     elapsed since the last checkpoint?" or "has the WAL grown past
//     WALBytes?" — either with at least one mutation since the last
//     checkpoint — and checkpoints when so.
//   - Pressure (Segment.Budget.SoftBytes): the Dir's soft-watermark
//     callback pokes ckptWake and the loop checkpoints immediately,
//     ahead of the poll cadence, so retention lands before the hard
//     budget starts rejecting appends.
//
// The loop only acts while Healthy: during a Degraded(disk) episode the
// recovery loop owns space reclamation (its rebaseline checkpoints), and
// during other episodes a checkpoint would persist a suspect image.

// defaultCheckpointPoll is the policy evaluation cadence when
// CheckpointPolicy.Poll is unset.
const defaultCheckpointPoll = time.Second

// checkpointLoop evaluates the checkpoint policy until Close.
func (sv *Supervisor) checkpointLoop() {
	defer sv.wg.Done()
	poll := sv.cfg.Checkpoint.Poll
	if poll <= 0 {
		poll = defaultCheckpointPoll
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		urgent := false
		select {
		case <-sv.stop:
			return
		case <-t.C:
		case <-sv.ckptWake:
			urgent = true
		}
		if sv.State() != Healthy {
			continue // recovery owns the store (and, for disk, the space)
		}
		if !sv.checkpointDue(urgent) {
			continue
		}
		t0 := sv.met.startTimer()
		sp := sv.cfg.Tracer.StartRoot("supervise.checkpoint")
		if urgent {
			sp.SetAttr("trigger", "soft-watermark")
		} else {
			sp.SetAttr("trigger", "policy")
		}
		err := sv.CheckpointCtx(trace.WithSpan(context.Background(), sp))
		sp.SetError(err)
		sp.End()
		if err != nil {
			// Checkpoint already degraded the supervisor; the recovery
			// loop takes over from here.
			sv.met.onAutoCheckpointError(urgent, err)
			continue
		}
		sv.met.onAutoCheckpoint(urgent, t0)
	}
}

// checkpointDue decides whether to checkpoint now. urgent (the soft
// disk watermark fired) bypasses the policy thresholds but still
// requires something new to persist — a checkpoint with no mutations
// since the last one cannot shrink the log further.
func (sv *Supervisor) checkpointDue(urgent bool) bool {
	sv.mu.Lock()
	dirty, last, dir := sv.dirty, sv.lastCkpt, sv.dir
	sv.mu.Unlock()
	if dirty == 0 {
		return false
	}
	if urgent {
		return true
	}
	p := sv.cfg.Checkpoint
	if p.Interval > 0 && time.Since(last) >= p.Interval {
		return true
	}
	if p.WALBytes > 0 {
		if dir != nil {
			return dir.Size() >= p.WALBytes
		}
		if fi, err := os.Stat(sv.cfg.WALPath); err == nil && fi.Size() >= p.WALBytes {
			return true
		}
	}
	return false
}

package match

import (
	"testing"

	"repro/internal/rdfterm"
)

// FuzzParseQuery checks the pattern parser never panics and that accepted
// queries render back to reparseable text.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`(?s ?p ?o)`,
		`(?x gov:terrorAction "bombing") (gov:files gov:terrorSuspect ?x)`,
		`(<http://a> <http://p> "lit with spaces")`,
		`(_:b1 rdf:type rdf:Statement)`,
		`(?s gov:p "25"^^xsd:int)`,
		`(?s gov:p "hi"@en)`,
		`()`, `(`, `)`, `(?s`, `(? ? ?)`, "(?a rdf:type ?b)(?b rdf:type ?c)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	aliases := rdfterm.Default().With(rdfterm.Alias{Prefix: "gov", Namespace: "http://gov#"})
	f.Fuzz(func(t *testing.T, input string) {
		pats, err := ParseQuery(input, aliases)
		if err != nil {
			return
		}
		for _, p := range pats {
			// Rendered patterns must reparse to the same structure.
			again, err := ParseQuery(p.String(), aliases)
			if err != nil {
				t.Fatalf("rendered pattern %q failed to reparse: %v", p.String(), err)
			}
			if len(again) != 1 || again[0].String() != p.String() {
				t.Fatalf("round trip changed pattern: %q -> %q", p.String(), again[0].String())
			}
		}
	})
}

// FuzzParseFilter checks the filter compiler never panics and accepted
// filters evaluate without panicking on empty and populated bindings.
func FuzzParseFilter(f *testing.F) {
	seeds := []string{
		`?x = "a"`, `?x != ?y`, `?x < 5 AND ?y > 3`, `NOT (?x = "a" OR ?y = "b")`,
		`LIKE(?x, "pre%")`, ``, `garbage`, `?x =`, `5 < 6`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		fe, err := ParseFilter(input)
		if err != nil {
			return
		}
		fe.Eval(nil)
		fe.Eval(map[string]rdfterm.Term{
			"x": rdfterm.NewLiteral("a"),
			"y": rdfterm.NewLiteral("5"),
		})
	})
}

package core

import (
	"context"
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// LinkIDs is the bare ID tuple of one rdf_link$ row, as seen by the
// streaming query engine: the join columns only, no term text. CanonID is
// the CANON_END_NODE_ID (object joins match on canonical form, §6), OID
// the original END_NODE_ID used for display.
type LinkIDs struct {
	TID     int64 // LINK_ID
	SID     int64 // START_NODE_ID
	PID     int64 // P_VALUE_ID
	OID     int64 // END_NODE_ID
	CanonID int64 // CANON_END_NODE_ID
}

// ReadTx is a consistent read snapshot of the store: every method runs
// under the one store read lock held by ReadView, so a whole multi-pattern
// query sees a single snapshot and pays a single lock acquisition instead
// of one per probe. Methods carry the *Locked suffix per the repo's lock
// contract: they assume s.mu is held (read mode) and must only reach the
// store through other *Locked helpers, never through the locking entry
// points.
type ReadTx struct {
	s   *Store
	ctx context.Context
	// scanned counts rows visited across all scans in the view; the
	// context is polled every cancelEvery increments (see find.go).
	scanned int
}

// ReadView runs fn against a consistent snapshot of the store, holding the
// read lock for the duration. fn must not call locking Store methods (the
// RWMutex is not reentrant) — it reaches the data through the ReadTx. The
// lock is released when fn returns, so fn should honor tx cancellation
// promptly and must not retain the ReadTx.
func (s *Store) ReadView(ctx context.Context, fn func(tx *ReadTx) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: read view: %w", err)
	}
	t0 := s.met.startTimer()
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.met.onReadLockAcquired(t0)
	return fn(&ReadTx{s: s, ctx: ctx})
}

// tickLocked advances the scan row counter and polls the context every
// cancelEvery rows, so a runaway scan releases the read lock promptly
// after a cancel or deadline.
func (tx *ReadTx) tickLocked() error {
	tx.scanned++
	if tx.scanned%cancelEvery == 0 {
		if err := tx.ctx.Err(); err != nil {
			return fmt.Errorf("core: read view: %w", err)
		}
	}
	return nil
}

// ModelIDLocked resolves a model name within the snapshot.
func (tx *ReadTx) ModelIDLocked(name string) (int64, error) {
	return tx.s.getModelIDLocked(name)
}

// SubjectIDLocked resolves a term used in subject position to its
// VALUE_ID. Literals cannot be subjects (§3), and a term that is not
// interned matches nothing; both report false. Blank labels resolve
// model-scoped.
func (tx *ReadTx) SubjectIDLocked(mid int64, t rdfterm.Term) (int64, bool) {
	if t.Kind == rdfterm.Literal {
		return 0, false
	}
	return tx.s.lookupResolvedIDLocked(mid, t)
}

// PredicateIDLocked resolves a term used in predicate position. Only URIs
// can be predicates; anything else matches nothing.
func (tx *ReadTx) PredicateIDLocked(t rdfterm.Term) (int64, bool) {
	if t.Kind != rdfterm.URI {
		return 0, false
	}
	return tx.s.lookupValueIDLocked(t)
}

// ObjectCanonIDLocked resolves a term used in object position to the
// VALUE_ID of its canonical form (what CANON_END_NODE_ID stores), so
// "+025"^^xsd:int matches triples stored as "25"^^xsd:int.
func (tx *ReadTx) ObjectCanonIDLocked(mid int64, t rdfterm.Term) (int64, bool) {
	return tx.s.lookupCanonIDLocked(mid, t)
}

// ValueLocked reconstructs the term stored under a VALUE_ID.
func (tx *ReadTx) ValueLocked(id int64) (rdfterm.Term, error) {
	return tx.s.getValueLocked(id)
}

// ContainsLinkLocked reports whether the model holds a link with exactly
// these IDs — a single probe of the unique MSPO index, the Contains half
// of the engine's Next/Contains duality.
func (tx *ReadTx) ContainsLinkLocked(mid, sid, pid, canonID int64) bool {
	return tx.s.linkMSPO.Contains(reldb.Key{
		reldb.Int(mid), reldb.Int(sid), reldb.Int(pid), reldb.Int(canonID),
	})
}

// CollectLinksLocked appends to dst the ID tuples of every link in model
// mid matching (sid, pid, canonID), where 0 means unconstrained, and
// returns the grown slice. Index selection mirrors findModelLocked: MSPO
// prefix when the subject is bound, the predicate index when only the
// predicate is, the object index when only the object is, and a
// partition-pruned scan otherwise. Residual components the chosen prefix
// cannot guarantee are checked here, so callers get exact matches. The
// scan polls the view's context every cancelEvery rows.
func (tx *ReadTx) CollectLinksLocked(dst []LinkIDs, mid, sid, pid, canonID int64) ([]LinkIDs, error) {
	s := tx.s
	var tickErr error
	// add extracts the ID tuple from a live rdf_link$ row, applying the
	// residual checks the index prefix does not already guarantee. It runs
	// under the links table lock (ScanPrefixRows/ScanPartition callback),
	// reading the row without retaining it.
	add := func(r reldb.Row, checkP, checkO bool) bool {
		if tickErr = tx.tickLocked(); tickErr != nil {
			return false
		}
		if checkP && r[lcPValueID].Int64() != pid {
			return true
		}
		if checkO && r[lcCanonEndNodeID].Int64() != canonID {
			return true
		}
		dst = append(dst, LinkIDs{
			TID:     r[lcLinkID].Int64(),
			SID:     r[lcStartNodeID].Int64(),
			PID:     r[lcPValueID].Int64(),
			OID:     r[lcEndNodeID].Int64(),
			CanonID: r[lcCanonEndNodeID].Int64(),
		})
		return true
	}

	switch {
	case sid != 0:
		// MSPO prefix covers (M,S), plus P if bound, plus O if both P and
		// O are bound; the only possible residual is O with P unbound.
		prefix := reldb.Key{reldb.Int(mid), reldb.Int(sid)}
		if pid != 0 {
			prefix = append(prefix, reldb.Int(pid))
			if canonID != 0 {
				prefix = append(prefix, reldb.Int(canonID))
			}
		}
		s.linkMSPO.ScanPrefixRows(prefix, func(_ reldb.Key, _ reldb.RowID, r reldb.Row) bool {
			return add(r, false, pid == 0 && canonID != 0)
		})
	case pid != 0 && canonID != 0:
		// Predicate and object both bound, but no (M,P,O) index exists:
		// either prefix works with a residual check on the other column.
		// Choose the shorter expected scan — the predicate's link count
		// versus the model's average per-object fanout — from the cached
		// planner statistics. Stale statistics only cost speed, never
		// correctness: the residual check keeps matches exact either way.
		ps := tx.PlanStatsLocked(mid)
		avgObj := float64(ps.Triples) / float64(max(1, ps.DistinctObjects))
		if avgObj < float64(ps.Pred(pid).Count) {
			s.linkMO.ScanPrefixRows(reldb.Key{reldb.Int(mid), reldb.Int(canonID)}, func(_ reldb.Key, _ reldb.RowID, r reldb.Row) bool {
				return add(r, true, false)
			})
		} else {
			s.linkMP.ScanPrefixRows(reldb.Key{reldb.Int(mid), reldb.Int(pid)}, func(_ reldb.Key, _ reldb.RowID, r reldb.Row) bool {
				return add(r, false, true)
			})
		}
	case pid != 0:
		// MP prefix covers (M,P); nothing else is bound.
		s.linkMP.ScanPrefixRows(reldb.Key{reldb.Int(mid), reldb.Int(pid)}, func(_ reldb.Key, _ reldb.RowID, r reldb.Row) bool {
			return add(r, false, false)
		})
	case canonID != 0:
		// MO prefix covers (M,O-canon); nothing else is bound.
		s.linkMO.ScanPrefixRows(reldb.Key{reldb.Int(mid), reldb.Int(canonID)}, func(_ reldb.Key, _ reldb.RowID, r reldb.Row) bool {
			return add(r, false, false)
		})
	default:
		if err := s.links.ScanPartition(mid, func(_ reldb.RowID, r reldb.Row) bool {
			if r == nil {
				return true
			}
			return add(r, false, false)
		}); err != nil {
			return dst, err
		}
	}
	return dst, tickErr
}

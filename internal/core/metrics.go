package core

import (
	"time"

	"repro/internal/obs"
)

// Metrics instruments the store against an obs registry. A nil *Metrics
// is the disabled state: every hook is a nil-receiver no-op, so the
// uninstrumented hot path pays one branch and never calls time.Now.
//
// The lock-wait histograms time only the acquisition of s.mu (how long a
// caller queued behind writers/readers), not the critical section — they
// answer "is the store lock contended", which is the question the single
// global RWMutex design raises.
type Metrics struct {
	batches     *obs.Counter
	batchSize   *obs.Histogram
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	lockWaitW   *obs.Histogram
	lockWaitR   *obs.Histogram

	checkpoints   *obs.Counter
	checkpointDur *obs.Histogram
	replayRecords *obs.Counter
	replayDur     *obs.Histogram

	triples  *obs.Gauge
	ndmSteps *obs.Counter
}

// NewMetrics registers the store metric families on reg. Returns nil
// when reg is nil, which disables instrumentation end to end.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		batches:     reg.Counter("core_insert_batches_total", "InsertBatch calls"),
		batchSize:   reg.Histogram("core_insert_batch_triples", "triples per InsertBatch call", obs.CountBuckets),
		cacheHits:   reg.Counter("core_term_cache_hits_total", "term interning resolved from the term-ID cache"),
		cacheMisses: reg.Counter("core_term_cache_misses_total", "term interning that missed the term-ID cache"),
		lockWaitW:   reg.Histogram("core_write_lock_wait_seconds", "time spent acquiring the store write lock", obs.DurationBuckets),
		lockWaitR:   reg.Histogram("core_read_lock_wait_seconds", "time spent acquiring the store read lock", obs.DurationBuckets),

		checkpoints:   reg.Counter("core_checkpoints_total", "completed checkpoints (snapshot + WAL reset)"),
		checkpointDur: reg.Histogram("core_checkpoint_seconds", "checkpoint duration", obs.DurationBuckets),
		replayRecords: reg.Counter("core_replay_records_total", "WAL records applied during recovery replay"),
		replayDur:     reg.Histogram("core_replay_seconds", "recovery replay duration", obs.DurationBuckets),

		triples:  reg.Gauge("core_triples", "rdf_link$ rows across all models"),
		ndmSteps: reg.Counter("ndm_traversal_steps_total", "graph elements visited by NDM traversals (nodes enumerated plus links expanded)"),
	}
}

// SetMetrics attaches instrumentation to the store. Like SetDurability,
// call before the store is shared across goroutines: the field is read
// by lock-wait timing before s.mu is acquired, so attach-before-share is
// the synchronization.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
}

// startTimer returns now, or the zero time when metrics are disabled so
// the paired Histogram.ObserveSince is a no-op.
func (m *Metrics) startTimer() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *Metrics) onWriteLockAcquired(t0 time.Time) {
	if m == nil {
		return
	}
	m.lockWaitW.ObserveSince(t0)
}

func (m *Metrics) onReadLockAcquired(t0 time.Time) {
	if m == nil {
		return
	}
	m.lockWaitR.ObserveSince(t0)
}

func (m *Metrics) onBatch(size int) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.batchSize.Observe(float64(size))
}

func (m *Metrics) onCacheHit() {
	if m == nil {
		return
	}
	m.cacheHits.Inc()
}

func (m *Metrics) onCacheMiss() {
	if m == nil {
		return
	}
	m.cacheMisses.Inc()
}

func (m *Metrics) onCheckpoint(t0 time.Time) {
	if m == nil {
		return
	}
	m.checkpoints.Inc()
	m.checkpointDur.ObserveSince(t0)
}

func (m *Metrics) onReplay(records int, t0 time.Time) {
	if m == nil {
		return
	}
	m.replayRecords.Add(int64(records))
	m.replayDur.ObserveSince(t0)
}

func (m *Metrics) setTriples(n int) {
	if m == nil {
		return
	}
	m.triples.Set(int64(n))
}

func (m *Metrics) onTraversalSteps(n int) {
	if m == nil {
		return
	}
	m.ndmSteps.Add(int64(n))
}

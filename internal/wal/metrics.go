package wal

import (
	"time"

	"repro/internal/obs"
)

// Metrics instruments a Log (and optionally a GroupLog) against an obs
// registry. A nil *Metrics is the disabled state: every hook below is a
// nil-receiver no-op, so the uninstrumented hot path costs one branch
// and never calls time.Now. Attach with SetMetrics before the log is
// shared across goroutines.
type Metrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	fsyncErrors *obs.Counter
	fsyncLat    *obs.Histogram
	resets      *obs.Counter

	groupFlushes    *obs.Counter
	groupFlushErrs  *obs.Counter
	groupCommitsPer *obs.Histogram
	groupBuffered   *obs.Gauge
}

// NewMetrics registers the WAL metric families on reg. Returns nil when
// reg is nil, which disables instrumentation end to end.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		appends:     reg.Counter("wal_appends_total", "records appended to the WAL"),
		appendBytes: reg.Counter("wal_append_bytes_total", "framed bytes appended to the WAL"),
		fsyncs:      reg.Counter("wal_fsyncs_total", "fsync calls on the WAL file"),
		fsyncErrors: reg.Counter("wal_fsync_errors_total", "failed fsync calls on the WAL file"),
		fsyncLat:    reg.Histogram("wal_fsync_seconds", "WAL fsync latency", obs.DurationBuckets),
		resets:      reg.Counter("wal_resets_total", "checkpoint truncations of the WAL"),

		groupFlushes:    reg.Counter("wal_group_flushes_total", "group-commit flushes (write + fsync batches)"),
		groupFlushErrs:  reg.Counter("wal_group_flush_errors_total", "group-commit flushes that failed and latched an error"),
		groupCommitsPer: reg.Histogram("wal_group_commits_per_flush", "commits acknowledged per group flush", obs.CountBuckets),
		groupBuffered:   reg.Gauge("wal_group_buffered_commits", "commits currently buffered in memory (max loss on crash)"),
	}
}

// startTimer returns now, or the zero time when metrics are disabled so
// the paired Histogram.ObserveSince is a no-op.
func (m *Metrics) startTimer() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *Metrics) onAppend(bytes int) {
	if m == nil {
		return
	}
	m.appends.Inc()
	m.appendBytes.Add(int64(bytes))
}

func (m *Metrics) onFsync(t0 time.Time) {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
	m.fsyncLat.ObserveSince(t0)
}

func (m *Metrics) onFsyncError() {
	if m == nil {
		return
	}
	m.fsyncErrors.Inc()
}

func (m *Metrics) onReset() {
	if m == nil {
		return
	}
	m.resets.Inc()
}

func (m *Metrics) onGroupFlush(commits int) {
	if m == nil {
		return
	}
	m.groupFlushes.Inc()
	m.groupCommitsPer.Observe(float64(commits))
	m.groupBuffered.Set(0)
}

func (m *Metrics) onGroupFlushError() {
	if m == nil {
		return
	}
	m.groupFlushErrs.Inc()
}

func (m *Metrics) setBuffered(n int) {
	if m == nil {
		return
	}
	m.groupBuffered.Set(int64(n))
}

package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrNotWAL reports a file whose header is not the WAL magic — a wrong
// file passed to recovery, as opposed to a damaged log.
var ErrNotWAL = errors.New("wal: not a WAL file (bad magic)")

// ScanResult is the outcome of reading a log.
type ScanResult struct {
	// Records holds every verified record, in append order.
	Records []Record
	// ValidBytes is the length of the verified prefix (header included);
	// a recovering writer truncates the file to this length.
	ValidBytes int64
	// Truncated reports that bytes after the verified prefix were
	// discarded (torn write or corruption at the tail).
	Truncated bool
	// TailErr describes why scanning stopped when Truncated is set.
	TailErr error
}

// Scan reads records from r until EOF or the first damaged frame. A
// short, torn, or checksum-failing tail is not an error: scanning stops,
// the damage is reported via Truncated/TailErr, and everything before it
// is returned. Only a bad magic header or a read failure of the medium
// itself is a hard error.
func Scan(r io.Reader) (ScanResult, error) {
	br := &prefixReader{r: r}
	var res ScanResult

	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Shorter than a header: an empty or torn-at-birth log.
			res.Truncated = br.n > 0
			if res.Truncated {
				res.TailErr = fmt.Errorf("wal: truncated header (%d bytes)", br.n)
			}
			return res, nil
		}
		return res, err
	}
	if string(magic) != Magic {
		return res, fmt.Errorf("%w: %q", ErrNotWAL, magic)
	}
	res.ValidBytes = int64(len(Magic))

	hdr := make([]byte, frameHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF {
				return res, nil // clean end on a frame boundary
			}
			if err == io.ErrUnexpectedEOF {
				res.Truncated = true
				res.TailErr = fmt.Errorf("wal: torn frame header at offset %d", res.ValidBytes)
				return res, nil
			}
			return res, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordLen {
			res.Truncated = true
			res.TailErr = fmt.Errorf("wal: implausible record length %d at offset %d", length, res.ValidBytes)
			return res, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.Truncated = true
				res.TailErr = fmt.Errorf("wal: torn record payload at offset %d", res.ValidBytes)
				return res, nil
			}
			return res, err
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			res.Truncated = true
			res.TailErr = fmt.Errorf("wal: checksum mismatch at offset %d (record %d): got %08x, want %08x",
				res.ValidBytes, len(res.Records), got, sum)
			return res, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// Checksum passed but the payload is not decodable: a format
			// mismatch, not a torn write. Stop here too, but surface it.
			res.Truncated = true
			res.TailErr = fmt.Errorf("wal: record %d at offset %d: %w", len(res.Records), res.ValidBytes, err)
			return res, nil
		}
		res.Records = append(res.Records, rec)
		res.ValidBytes += int64(frameHeaderLen) + int64(length)
	}
}

// ScanFile scans a WAL file on disk (read-only).
func ScanFile(path string) (ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return ScanResult{}, err
	}
	defer f.Close()
	return Scan(f)
}

// ScanBytes scans an in-memory log image.
func ScanBytes(b []byte) (ScanResult, error) {
	return Scan(bytes.NewReader(b))
}

// prefixReader counts bytes consumed, for header diagnostics.
type prefixReader struct {
	r io.Reader
	n int64
}

func (p *prefixReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	p.n += int64(n)
	return n, err
}

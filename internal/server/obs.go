package server

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// Metrics instruments the server against an obs registry: admission
// (in-flight weight, queue depth, typed rejection counters), per-
// endpoint latency histograms, response-class counters, and recovered
// panics. nil disables instrumentation (the hooks are nil-receiver
// no-ops), keeping the uninstrumented hot path free of clock reads.
type Metrics struct {
	inflight       *obs.Gauge
	inflightReqs   *obs.Gauge
	queueDepth     *obs.Gauge
	admitted       *obs.Counter
	rejectedFull   *obs.Counter
	rejectedWait   *obs.Counter
	rejectedTenant *obs.Counter
	rejectedHealth *obs.Counter
	rejectedDrain  *obs.Counter
	responses2xx   *obs.Counter
	responses4xx   *obs.Counter
	responses5xx   *obs.Counter
	deadlines      *obs.Counter
	panics         *obs.Counter
	truncated      *obs.Counter
	waitDur        *obs.Histogram
	queryDur       *obs.Histogram
	findDur        *obs.Histogram
	traverseDur    *obs.Histogram
	insertDur      *obs.Histogram
	events         *obs.EventLog
}

// NewMetrics registers the server metric families on reg. Returns nil
// when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		inflight:       reg.Gauge("server_inflight_weight", "admitted weight units currently executing"),
		inflightReqs:   reg.Gauge("server_inflight_requests", "requests currently executing"),
		queueDepth:     reg.Gauge("server_queue_depth", "requests waiting for admission"),
		admitted:       reg.Counter("server_admitted_total", "requests admitted past the limiter"),
		rejectedFull:   reg.Counter("server_rejected_queue_full_total", "requests rejected: admission queue full (429)"),
		rejectedWait:   reg.Counter("server_rejected_wait_timeout_total", "requests rejected: admission wait expired (429)"),
		rejectedTenant: reg.Counter("server_rejected_tenant_total", "requests rejected: per-tenant cap (429)"),
		rejectedHealth: reg.Counter("server_rejected_health_total", "requests rejected: store not Healthy (503)"),
		rejectedDrain:  reg.Counter("server_rejected_drain_total", "requests rejected: server draining (503)"),
		responses2xx:   reg.Counter("server_responses_2xx_total", "successful responses"),
		responses4xx:   reg.Counter("server_responses_4xx_total", "client-error responses (400/404/413/429)"),
		responses5xx:   reg.Counter("server_responses_5xx_total", "server-error responses (500/503/504)"),
		deadlines:      reg.Counter("server_deadline_exceeded_total", "queries that hit their deadline (504)"),
		panics:         reg.Counter("server_panics_recovered_total", "handler panics converted to 500s"),
		truncated:      reg.Counter("server_truncated_results_total", "responses truncated by the row budget"),
		waitDur:        reg.Histogram("server_admission_wait_seconds", "time spent queued for admission", obs.DurationBuckets),
		queryDur:       reg.Histogram("server_query_seconds", "POST /query latency", obs.DurationBuckets),
		findDur:        reg.Histogram("server_find_seconds", "GET /find latency", obs.DurationBuckets),
		traverseDur:    reg.Histogram("server_traverse_seconds", "POST /traverse latency", obs.DurationBuckets),
		insertDur:      reg.Histogram("server_insert_seconds", "POST /insert latency", obs.DurationBuckets),
		events:         reg.Events(),
	}
}

// startTimer returns now, or the zero time when metrics are disabled.
func (m *Metrics) startTimer() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// onAdmitted records one admission grant and its queue wait.
func (m *Metrics) onAdmitted(t0 time.Time, weight int64) {
	if m == nil {
		return
	}
	m.admitted.Inc()
	m.inflight.Add(weight)
	m.inflightReqs.Add(1)
	m.waitDur.ObserveSince(t0)
}

// onDone unwinds the in-flight series and records endpoint latency.
func (m *Metrics) onDone(endpoint string, t0 time.Time, weight int64) {
	if m == nil {
		return
	}
	m.inflight.Add(-weight)
	m.inflightReqs.Add(-1)
	var h *obs.Histogram
	switch endpoint {
	case "query":
		h = m.queryDur
	case "find":
		h = m.findDur
	case "traverse":
		h = m.traverseDur
	case "insert":
		h = m.insertDur
	}
	h.ObserveSince(t0)
}

// onRejected counts one typed rejection.
func (m *Metrics) onRejected(code string) {
	if m == nil {
		return
	}
	switch code {
	case CodeQueueFull:
		m.rejectedFull.Inc()
	case CodeWaitTimeout:
		m.rejectedWait.Inc()
	case CodeTenantLimit:
		m.rejectedTenant.Inc()
	case CodeDegraded, CodeRecovering, CodeFailed:
		m.rejectedHealth.Inc()
	case CodeShuttingDown:
		m.rejectedDrain.Inc()
	}
}

// onResponse buckets the final status code.
func (m *Metrics) onResponse(status int) {
	if m == nil {
		return
	}
	switch {
	case status >= 500:
		m.responses5xx.Inc()
	case status >= 400:
		m.responses4xx.Inc()
	default:
		m.responses2xx.Inc()
	}
	if status == 504 {
		m.deadlines.Inc()
	}
}

// onTruncated counts a row-budget truncation.
func (m *Metrics) onTruncated() {
	if m == nil {
		return
	}
	m.truncated.Inc()
}

// setQueueDepth mirrors the limiter's queue into the gauge.
func (m *Metrics) setQueueDepth(n int) {
	if m == nil {
		return
	}
	m.queueDepth.Set(int64(n))
}

// onPanic records a recovered handler panic with its endpoint and a
// rendering of the panic value.
func (m *Metrics) onPanic(endpoint string, v any) {
	if m == nil {
		return
	}
	m.panics.Inc()
	m.events.Emit("server", "panic", map[string]string{
		"endpoint": endpoint,
		"value":    truncateString(renderPanic(v), 256),
	})
}

// onDrain records the shutdown sequence milestones.
func (m *Metrics) onDrain(phase string, inflight int64) {
	if m == nil {
		return
	}
	m.events.Emit("server", "drain", map[string]string{
		"phase":    phase,
		"inflight": strconv.FormatInt(inflight, 10),
	})
}

func truncateString(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

package match

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestTraceThreePatternJoin pins the EXPLAIN contract on the chain
// store: plan order starts from the selective type probe, stages appear
// in execution order, and candidate/binding counts reflect the data.
func TestTraceThreePatternJoin(t *testing.T) {
	s := chainStore(t, 100)
	var tr Trace
	rs, err := Match(s, threeJoinQuery, Options{
		Models: []string{"g"}, Aliases: govAliases(), Trace: &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("join returned %d rows", rs.Len())
	}
	// Pattern 2 (?z gov:type "target") is 2-bound and must run first.
	if len(tr.PlanOrder) != 3 || tr.PlanOrder[0] != 2 {
		t.Fatalf("PlanOrder = %v, want [2 ...]", tr.PlanOrder)
	}
	if len(tr.Stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(tr.Stages))
	}
	first := tr.Stages[0]
	if first.Index != 2 || first.InBindings != 1 || first.Candidates != 1 || first.OutBindings != 1 {
		t.Fatalf("first stage = %+v, want index 2, in=1, candidates=1, out=1", first)
	}
	for i, st := range tr.Stages {
		if st.Pattern == "" {
			t.Fatalf("stage %d has empty pattern text", i)
		}
		if st.Duration < 0 {
			t.Fatalf("stage %d has negative duration", i)
		}
	}
	if tr.Rows != 1 || tr.Total <= 0 || tr.Query != threeJoinQuery {
		t.Fatalf("trace summary = rows %d total %v query %q", tr.Rows, tr.Total, tr.Query)
	}

	var sb strings.Builder
	tr.Format(&sb)
	out := sb.String()
	// The cost planner starts from the selective type probe, then chains
	// through the connected patterns: 2 -> 1 -> 0.
	for _, want := range []string{"plan: 2 -> 1 -> 0 (cost)", "stage 1: #2", "candidates=1", "est=", "total "} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

// TestMatchMetricsAndSlowQuery: an instrumented query populates the
// match_* series, and a query over the (zero-effective) threshold lands
// in the event log with structured fields.
func TestMatchMetricsAndSlowQuery(t *testing.T) {
	s := chainStore(t, 50)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	_, err := Match(s, threeJoinQuery, Options{
		Models: []string{"g"}, Aliases: govAliases(),
		Metrics: met, SlowQuery: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if c, ok := snap.Counter("match_queries_total"); !ok || c.Value != 1 {
		t.Fatalf("match_queries_total = %+v", c)
	}
	if c, ok := snap.Counter("match_slow_queries_total"); !ok || c.Value != 1 {
		t.Fatalf("match_slow_queries_total = %+v", c)
	}
	if h, ok := snap.Histogram("match_stage_seconds"); !ok || h.Count != 3 {
		t.Fatalf("match_stage_seconds count = %+v", h)
	}
	if h, ok := snap.Histogram("match_stage_candidates"); !ok || h.Count != 3 {
		t.Fatalf("match_stage_candidates count = %+v", h)
	}
	events := reg.Events().Snapshot()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1 slow_query", len(events))
	}
	ev := events[0]
	if ev.Scope != "match" || ev.Name != "slow_query" {
		t.Fatalf("event = %+v", ev)
	}
	for _, k := range []string{"query", "plan", "stages", "rows", "total"} {
		if ev.Fields[k] == "" {
			t.Fatalf("slow_query event missing field %q: %+v", k, ev.Fields)
		}
	}
	if ev.Fields["plan"] != "2,1,0" {
		t.Fatalf("slow_query plan = %q, want 2,1,0", ev.Fields["plan"])
	}
	if ev.Fields["planner"] != "cost" {
		t.Fatalf("slow_query planner = %q, want cost", ev.Fields["planner"])
	}
}

// TestUntracedMatchUnchanged: a plain Match (no trace, no metrics, no
// threshold) must behave exactly as before — this is the disabled path
// the overhead benchmark compares against.
func TestUntracedMatchUnchanged(t *testing.T) {
	s := chainStore(t, 20)
	rs, err := Match(s, threeJoinQuery, Options{Models: []string{"g"}, Aliases: govAliases()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
}

// BenchmarkThreePatternJoinTraced is the enabled-path counterpart of
// BenchmarkThreePatternJoin: comparing the two quantifies the cost of
// per-stage timing plus metrics on the join hot path.
func BenchmarkThreePatternJoinTraced(b *testing.B) {
	s := chainStore(b, 1000)
	met := NewMetrics(obs.NewRegistry())
	var tr Trace
	opts := Options{Models: []string{"g"}, Aliases: govAliases(), Trace: &tr, Metrics: met}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := Match(s, threeJoinQuery, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatalf("join returned %d rows", rs.Len())
		}
	}
}

// BenchmarkThreePatternJoinNilTracer is the disabled-path tracing
// benchmark: MatchContext through a context that carries no span (the
// nil-Tracer wiring — StartRoot on a nil Tracer yields a nil Span and
// WithSpan drops it). Every span hook on the join hot path must reduce
// to a one-branch nil check, so this must track
// BenchmarkThreePatternJoin within noise.
func BenchmarkThreePatternJoinNilTracer(b *testing.B) {
	s := chainStore(b, 1000)
	var tr *trace.Tracer // nil: tracing disabled
	ctx := trace.WithSpan(context.Background(), tr.StartRoot("bench"))
	opts := Options{Models: []string{"g"}, Aliases: govAliases()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := MatchContext(ctx, s, threeJoinQuery, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatalf("join returned %d rows", rs.Len())
		}
	}
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/wal"
)

// Crash-point matrix for the group-commit bulk-load path. The record
// stream a GroupLog emits is byte-identical to a plain Log's (frames are
// only buffered, never reordered), so the golden image, record stream,
// and per-commit fingerprints from the fault-free plain run remain the
// ground truth. What changes under group commit is *when* bytes reach
// the file: only at sync points, in one large write. A crash therefore
// loses up to SyncEvery-1 whole commits — but whatever survives must
// still be a prefix of the golden history, replay to a consistent store,
// and, on a commit boundary, equal the golden store byte for byte.

// groupWorkload is the WAL crash workload extended with batch inserts,
// so the matrix covers InsertBatch's two-phase record groups too.
func groupWorkload() []walOp {
	ops := walWorkload()
	ops = append(ops,
		walOp{"batch insert", func(s *Store) error {
			_, err := s.InsertBatch("gov", batchWorkload())
			return err
		}},
		walOp{"batch repeat", func(s *Store) error {
			// Re-run part of the batch: pure cost bumps, no new links.
			_, err := s.InsertBatch("gov", batchWorkload()[:3])
			return err
		}},
	)
	return ops
}

// TestWALGroupCommitCrashMatrix drives every fault offset of the
// group-commit log image through fail-stop, short-write, and bit-flip
// faults at SyncEvery=3, proving batched durability keeps the
// synced-prefix-is-consistent property.
func TestWALGroupCommitCrashMatrix(t *testing.T) {
	const syncEvery = 3
	ops := groupWorkload()
	img, golden, commits := goldenRun(t, ops)

	stride := 1
	if testing.Short() {
		stride = 17
	}
	byteOffsets := func() []int {
		var offs []int
		for c := 0; c <= len(img); c += stride {
			offs = append(offs, c)
		}
		if offs[len(offs)-1] != len(img) {
			offs = append(offs, len(img))
		}
		return offs
	}
	matrix := []struct {
		mode    wal.FaultMode
		offsets []int
	}{
		{wal.FailStop, frameBoundaries(img)},
		{wal.ShortWrite, byteOffsets()},
		{wal.CorruptByte, byteOffsets()},
	}

	cases := 0
	for _, m := range matrix {
		for _, cut := range m.offsets {
			cases++
			label := fmt.Sprintf("group/%s@%d", m.mode, cut)

			ff := &wal.FaultFile{FailAt: int64(cut), Mode: m.mode}
			log, err := wal.NewLog(ff, true)
			if err == nil {
				g := wal.Group(log, wal.GroupOptions{SyncEvery: syncEvery})
				live := New()
				live.SetDurability(g)
				for _, op := range ops {
					if err := op.do(live); err != nil {
						break
					}
				}
				// The crash strikes before the final flush: buffered
				// commits die with the process, which is exactly the
				// group-commit durability tradeoff under test.
			}
			surviving := ff.Bytes()

			res, err := wal.ScanBytes(surviving)
			if err != nil {
				if m.mode == wal.CorruptByte && cut < len(wal.Magic) && errors.Is(err, wal.ErrNotWAL) {
					continue
				}
				t.Fatalf("%s: scan: %v", label, err)
			}
			if !recordsArePrefix(res.Records, golden) {
				t.Fatalf("%s: recovered %d records are not a golden prefix", label, len(res.Records))
			}
			rec := New()
			if err := rec.Replay(res.Records); err != nil {
				t.Fatalf("%s: replay: %v", label, err)
			}
			if errs := rec.CheckInvariants(); len(errs) > 0 {
				t.Fatalf("%s: invariants after recovery: %v", label, errs)
			}
			if want, ok := commits[len(res.Records)]; ok {
				if got := fingerprint(t, rec); !bytes.Equal(got, want) {
					t.Fatalf("%s: recovered store differs from golden store at commit with %d records",
						label, len(res.Records))
				}
				if _, err := rec.NewTripleS("post", "gov:s", "gov:p", "gov:o", govAliases()); err == nil {
					t.Fatalf("%s: insert into missing model succeeded", label)
				}
				if _, err := rec.CreateRDFModel("post", "", ""); err != nil {
					t.Fatalf("%s: store not writable after recovery: %v", label, err)
				}
				if _, err := rec.InsertBatch("post", batchWorkload()); err != nil {
					t.Fatalf("%s: batch insert after recovery: %v", label, err)
				}
				if errs := rec.CheckInvariants(); len(errs) > 0 {
					t.Fatalf("%s: invariants after post-recovery batch: %v", label, errs)
				}
			}
		}
	}

	// Sanity: a fault-free group run with a final flush lands the full
	// golden image.
	bf := &wal.BufferFile{}
	log, err := wal.NewLog(bf, true)
	if err != nil {
		t.Fatal(err)
	}
	g := wal.Group(log, wal.GroupOptions{SyncEvery: syncEvery})
	clean := New()
	clean.SetDurability(g)
	for _, op := range ops {
		if err := op.do(clean); err != nil {
			t.Fatalf("clean group run, op %q: %v", op.name, err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf.Bytes(), img) {
		t.Fatal("group-commit log image differs from plain log image")
	}
	t.Logf("group crash matrix: %d fault points over a %d-byte log (%d records, SyncEvery=%d)",
		cases, len(img), len(golden), syncEvery)
}

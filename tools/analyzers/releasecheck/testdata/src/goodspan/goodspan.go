// Package goodspan holds span lifecycles releasecheck must accept:
// deferred and per-branch Ends, the Finish spelling, escapes that move
// ownership, and the borrowed/pre-ended handles that birth no
// obligation at all.
package goodspan

import (
	"context"
	"time"

	"goodspan/trace"
)

func work() error { return nil }

// deferEnd is the canonical request shape: End deferred at the birth
// site, attributes set along the way.
func deferEnd(tr *trace.Tracer, ctx context.Context) error {
	ctx, sp := tr.Start(ctx, "request")
	defer sp.End()
	sp.SetAttr("tenant", "acme")
	_ = ctx
	return work()
}

// perBranchEnd ends explicitly on every path, with an error recorded on
// the failure branch first.
func perBranchEnd(tr *trace.Tracer) error {
	sp := tr.StartRoot("flush")
	if err := work(); err != nil {
		sp.SetError(err)
		sp.End()
		return err
	}
	sp.End()
	return nil
}

// finishSpelling: Finish is an accepted alias for End.
func finishSpelling(tr *trace.Tracer) {
	sp := tr.StartRoot("scrub")
	sp.Finish()
}

// deferredClosure ends the span inside a deferred cleanup closure — the
// serving stack's finalizer idiom.
func deferredClosure(tr *trace.Tracer, ctx context.Context) error {
	_, sp := tr.StartRemote(ctx, "request", "00-aa-bb-01")
	defer func() {
		sp.SetAttr("status", "200")
		sp.End()
	}()
	return work()
}

// escapes move the End to the receiver: as an argument, a return value,
// and a struct store.
func escapeArg(tr *trace.Tracer, ctx context.Context) context.Context {
	sp := tr.StartRoot("detached")
	return trace.WithSpan(ctx, sp)
}

func escapeReturn(tr *trace.Tracer) *trace.Span {
	sp := tr.StartRoot("handle")
	return sp
}

type holder struct{ sp *trace.Span }

func escapeStore(tr *trace.Tracer) *holder {
	sp := tr.StartRoot("held")
	return &holder{sp: sp}
}

// borrowed spans from FromContext are owned by the request that made
// them; reading and annotating one births no obligation.
func borrowed(ctx context.Context) {
	sp := trace.FromContext(ctx)
	sp.SetAttr("phase", "encode")
}

// preEnded handles from AddCompleted arrive already closed; dropping
// one is fine.
func preEnded(tr *trace.Tracer) {
	sp := tr.StartRoot("batch")
	defer sp.End()
	done := sp.AddCompleted("batch.intern")
	_ = done
}

// childPassed hands the child to a helper, which owns its End; the root
// keeps its deferred one. A ticker rides along to prove the kinds stay
// independent.
func childPassed(tr *trace.Tracer) {
	sp := tr.StartRoot("query")
	defer sp.End()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	annotate(sp.Child("query.stage"))
	<-t.C
}

func annotate(sp *trace.Span) {
	sp.SetAttr("rows", "3")
	sp.End()
}

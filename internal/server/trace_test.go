package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// retainAll traces everything: an hour-long slow threshold would retain
// nothing, so sample at 1.0 instead.
func retainAll() *trace.Tracer {
	return trace.New(trace.Config{SlowThreshold: time.Hour, SampleRate: 1})
}

func TestTraceHeaderAndRetention(t *testing.T) {
	tr := retainAll()
	s := newTestServer(t, func(c *Config) { c.Tracer = tr })

	rr := do(t, s.Handler(), "POST", "/query", map[string]any{
		"query": "(?s <http://x#p> ?o)",
	}, nil)
	wantStatus(t, rr, 200)
	id := rr.Header().Get("X-Trace-Id")
	if len(id) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", id)
	}
	if tp := rr.Header().Get("traceparent"); !strings.HasPrefix(tp, "00-"+id+"-") {
		t.Fatalf("traceparent = %q, want prefix 00-%s-", tp, id)
	}

	td, ok := tr.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	if td.Root != "query.request" {
		t.Fatalf("root = %q, want query.request", td.Root)
	}
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"server.health_gate", "server.admission_wait",
		"server.body_decode", "server.response_encode", "match.query"} {
		if !names[want] {
			t.Fatalf("span %q missing from trace (have %v)", want, names)
		}
	}
	if got := td.RootAttr("status"); got != "200" {
		t.Fatalf("status attr = %q, want 200", got)
	}
}

func TestTraceContinuesRemoteTraceparent(t *testing.T) {
	tr := retainAll()
	s := newTestServer(t, func(c *Config) { c.Tracer = tr })
	remote := "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"

	rr := do(t, s.Handler(), "GET", "/find?s=%3Chttp%3A%2F%2Fx%23a%3E", nil,
		map[string]string{"traceparent": remote})
	wantStatus(t, rr, 200)
	if id := rr.Header().Get("X-Trace-Id"); id != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("X-Trace-Id = %q, want the remote trace id", id)
	}
	td, ok := tr.Get("0123456789abcdef0123456789abcdef")
	if !ok {
		t.Fatal("remote-continued trace not retained")
	}
	if got := td.RootAttr("remote_parent"); got != "00f067aa0ba902b7" {
		t.Fatalf("remote_parent = %q", got)
	}
}

func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	tr := retainAll()
	s := newTestServer(t, func(c *Config) { c.Tracer = tr })

	rr := do(t, s.Handler(), "POST", "/query", map[string]any{"query": ""}, nil)
	wantStatus(t, rr, 400)
	var env struct {
		Error struct {
			Code    string `json:"code"`
			TraceID string `json:"trace_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeBadRequest {
		t.Fatalf("code = %q", env.Error.Code)
	}
	if env.Error.TraceID != rr.Header().Get("X-Trace-Id") {
		t.Fatalf("envelope trace_id %q != header %q", env.Error.TraceID, rr.Header().Get("X-Trace-Id"))
	}
}

func TestRejectedRequestForceRetained(t *testing.T) {
	// Sample rate 0 and an unreachable slow threshold: only forced
	// retention can keep a trace, and a 429 must force it.
	tr := trace.New(trace.Config{SlowThreshold: time.Hour, SampleRate: 0})
	s := newTestServer(t, func(c *Config) {
		c.Tracer = tr
		c.MaxQueue = -1 // no queueing: over-limit rejects immediately
		c.TenantCap = 1
	})

	// Hold the only tenant slot, then collide with it.
	release, err := s.lim.Acquire(t.Context(), "acme", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rr := do(t, s.Handler(), "GET", "/find?s=%3Chttp%3A%2F%2Fx%23a%3E", nil,
		map[string]string{"X-Tenant": "acme"})
	wantStatus(t, rr, http.StatusTooManyRequests)

	id := rr.Header().Get("X-Trace-Id")
	td, ok := tr.Get(id)
	if !ok {
		t.Fatalf("rejected trace %s not force-retained", id)
	}
	if td.Reason != trace.ReasonForced {
		t.Fatalf("reason = %q, want forced", td.Reason)
	}
	if got := td.RootAttr("tenant"); got != "acme" {
		t.Fatalf("tenant attr = %q", got)
	}
	// And a clean request under SampleRate 0 must NOT be retained.
	ok2 := do(t, s.Handler(), "GET", "/find?s=%3Chttp%3A%2F%2Fx%23a%3E", nil,
		map[string]string{"X-Tenant": "beta"})
	wantStatus(t, ok2, 200)
	if _, found := tr.Get(ok2.Header().Get("X-Trace-Id")); found {
		t.Fatal("unsampled clean request was retained")
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	tr := retainAll()
	s := newTestServer(t, func(c *Config) { c.Tracer = tr })

	rr := do(t, s.Handler(), "POST", "/query", map[string]any{
		"query": "(?s <http://x#p> ?o)",
	}, nil)
	wantStatus(t, rr, 200)
	id := rr.Header().Get("X-Trace-Id")

	list := do(t, s.Handler(), "GET", "/debug/traces", nil, nil)
	wantStatus(t, list, 200)
	var lst struct {
		Retained int `json:"retained"`
		Traces   []struct {
			ID string `json:"id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &lst); err != nil {
		t.Fatal(err)
	}
	if lst.Retained < 1 {
		t.Fatalf("retained = %d, want >= 1", lst.Retained)
	}

	one := do(t, s.Handler(), "GET", "/debug/traces/"+id, nil, nil)
	wantStatus(t, one, 200)
	var td trace.TraceData
	if err := json.Unmarshal(one.Body.Bytes(), &td); err != nil {
		t.Fatal(err)
	}
	if td.ID != id || len(td.Spans) == 0 {
		t.Fatalf("single-trace lookup: id=%q spans=%d", td.ID, len(td.Spans))
	}

	miss := do(t, s.Handler(), "GET", "/debug/traces/"+strings.Repeat("f", 32), nil, nil)
	wantStatus(t, miss, 404)
}

func TestNilTracerServesEmptyExplorerAndNoHeaders(t *testing.T) {
	s := newTestServer(t, nil) // no tracer
	rr := do(t, s.Handler(), "POST", "/query", map[string]any{
		"query": "(?s <http://x#p> ?o)",
	}, nil)
	wantStatus(t, rr, 200)
	if id := rr.Header().Get("X-Trace-Id"); id != "" {
		t.Fatalf("untraced server set X-Trace-Id %q", id)
	}
	list := do(t, s.Handler(), "GET", "/debug/traces", nil, nil)
	wantStatus(t, list, 200)
	var lst struct {
		Retained int `json:"retained"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &lst); err != nil {
		t.Fatal(err)
	}
	if lst.Retained != 0 {
		t.Fatalf("retained = %d, want 0", lst.Retained)
	}
}

func TestInsertTraceRecordsCorePhases(t *testing.T) {
	tr := retainAll()
	s := newTestServer(t, func(c *Config) { c.Tracer = tr })
	triples := []map[string]string{{
		"s": "<http://x#new>", "p": "<http://x#p>", "o": fmt.Sprintf("%q", "v"),
	}}
	rr := do(t, s.Handler(), "POST", "/insert", map[string]any{
		"model": "m", "triples": triples,
	}, nil)
	wantStatus(t, rr, 200)
	td, ok := tr.Get(rr.Header().Get("X-Trace-Id"))
	if !ok {
		t.Fatal("insert trace not retained")
	}
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"core.insert_batch", "core.intern", "core.links"} {
		if !names[want] {
			t.Fatalf("span %q missing (have %v)", want, names)
		}
	}
}

package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// Example walks the paper's §4.3 recipe: an application table with an
// SDO_RDF_TRIPLE_S column, a model, and inserts through the constructor.
func Example() {
	store := core.New()
	aliases := rdfterm.Default().With(
		rdfterm.Alias{Prefix: "gov", Namespace: "http://www.us.gov#"},
		rdfterm.Alias{Prefix: "id", Namespace: "http://www.us.id#"},
	)
	appDB := reldb.NewDatabase("APP")
	ciadata, err := core.CreateApplicationTable(appDB, store, "ciadata",
		reldb.Column{Name: "ID", Kind: reldb.KindInt})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.CreateRDFModel("cia", "ciadata", "triple"); err != nil {
		log.Fatal(err)
	}
	ts, err := ciadata.InsertTriple([]reldb.Value{reldb.Int(1)},
		"cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", aliases)
	if err != nil {
		log.Fatal(err)
	}
	tr, _ := ts.GetTriple()
	fmt.Println(tr)
	fmt.Println(ts)
	// Output:
	// <http://www.us.gov#files, http://www.us.gov#terrorSuspect, http://www.us.id#JohnDoe>
	// SDO_RDF_TRIPLE_S (2051, 7, 1068, 1069, 1070)
}

// ExampleStore_Reify shows the streamlined reification of §5: one stored
// row whose subject is a DBUri pointing at the reified triple.
func ExampleStore_Reify() {
	store := core.New()
	store.CreateRDFModel("m", "", "")
	ts, _ := store.NewTripleS("m", "http://gov/files", "http://gov/suspect", "http://id/JohnDoe", nil)
	reif, _ := store.Reify("m", ts.TID)
	sub, _ := reif.GetSubject()
	fmt.Println(sub)
	ok, _ := store.IsReified("m", "http://gov/files", "http://gov/suspect", "http://id/JohnDoe", nil)
	fmt.Println("reified:", ok)
	// Output:
	// /ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=2051]
	// reified: true
}

// ExampleStore_AssertImplied shows §5.2's implied statements: the base
// triple is stored with CONTEXT=I until asserted as fact.
func ExampleStore_AssertImplied() {
	store := core.New()
	store.CreateRDFModel("m", "", "")
	a := rdfterm.Default().With(rdfterm.Alias{Prefix: "gov", Namespace: "http://gov#"})
	store.AssertImplied("m", "gov:Interpol", "gov:source",
		"gov:files", "gov:suspect", "gov:JohnDoeJr", a)
	ts, _, _ := store.IsTriple("m", "gov:files", "gov:suspect", "gov:JohnDoeJr", a)
	info, _ := store.LinkInfo(ts.TID)
	fmt.Println("context before:", info.Context)
	store.NewTripleS("m", "gov:files", "gov:suspect", "gov:JohnDoeJr", a)
	info, _ = store.LinkInfo(ts.TID)
	fmt.Println("context after:", info.Context)
	// Output:
	// context before: I
	// context after: D
}

package supervise

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/rdfterm"
	"repro/internal/wal"
)

// TestTransitionsRouteToEventLog: every state change lands in the obs
// event log with structured fields (state, rootCause, attempt), and the
// supervisor series track the fault lifecycle.
func TestTransitionsRouteToEventLog(t *testing.T) {
	reg := obs.NewRegistry()
	sv, fo, _, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.Obs = reg
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Trip a transient durability fault; the next attempt heals it.
	fo.current().FailWrites(1)
	if err := insert(sv, "m", "x:s", "x:p", "x:o"); err == nil {
		t.Fatal("mutation against broken WAL succeeded")
	}
	waitState(t, sv, Healthy, 2*time.Second)

	events := reg.Events().Snapshot()
	var sawDegraded, sawRecovered bool
	for _, ev := range events {
		if ev.Scope != "supervise" || ev.Name != "transition" {
			continue
		}
		for _, k := range []string{"from", "to", "state", "attempt"} {
			if ev.Fields[k] == "" {
				t.Fatalf("transition event missing field %q: %+v", k, ev.Fields)
			}
		}
		switch {
		case ev.Fields["to"] == "Degraded" && ev.Fields["from"] == "Healthy":
			sawDegraded = true
			if ev.Fields["rootCause"] == "" {
				t.Fatalf("Healthy→Degraded event has no rootCause: %+v", ev.Fields)
			}
		case ev.Fields["to"] == "Healthy":
			sawRecovered = true
			// The recovery event still names the fault it recovered from.
			if ev.Fields["rootCause"] == "" {
				t.Fatalf("→Healthy event has no rootCause: %+v", ev.Fields)
			}
		}
	}
	if !sawDegraded || !sawRecovered {
		t.Fatalf("event log missing degrade/recover transitions: %+v", events)
	}

	snap := reg.Snapshot()
	if c, ok := snap.Counter("supervise_degraded_total"); !ok || c.Value < 1 {
		t.Fatalf("supervise_degraded_total = %+v", c)
	}
	if c, ok := snap.Counter("supervise_recovery_attempts_total"); !ok || c.Value < 1 {
		t.Fatalf("supervise_recovery_attempts_total = %+v", c)
	}
	if c, ok := snap.Counter("supervise_recoveries_total"); !ok || c.Value < 1 {
		t.Fatalf("supervise_recoveries_total = %+v", c)
	}
	if g, ok := snap.Gauge("supervise_state"); !ok || g.Value != int64(Healthy) {
		t.Fatalf("supervise_state = %+v, want Healthy", g)
	}
}

// TestScrubFindingsRouteToEventLog: a sweep with violations is counted,
// logged as a structured event, and escalates with the ScrubError as
// the transition's root cause.
func TestScrubFindingsRouteToEventLog(t *testing.T) {
	reg := obs.NewRegistry()
	sv, _, _, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.Obs = reg
		cfg.ScrubInterval = 5 * time.Millisecond
		cfg.Backoff.Initial = time.Hour // keep Degraded stable once tripped
		cfg.Scrub = func(context.Context, *core.Store, int) (core.ScrubReport, error) {
			return core.ScrubReport{Links: 7, Violations: []error{errFake}}, nil
		}
		cfg.Verify = func(*core.Store) []error { return []error{errFake} }
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && sv.State() == Healthy {
		time.Sleep(time.Millisecond)
	}
	if sv.State() == Healthy {
		t.Fatal("scrub violations did not escalate")
	}

	var sawScrub, sawCause bool
	for _, ev := range reg.Events().Snapshot() {
		if ev.Scope != "supervise" {
			continue
		}
		if ev.Name == "scrub_violations" {
			sawScrub = true
			if ev.Fields["violations"] != "1" || ev.Fields["links"] != "7" || ev.Fields["first"] == "" {
				t.Fatalf("scrub_violations fields = %+v", ev.Fields)
			}
		}
		if ev.Name == "transition" && ev.Fields["to"] == "Degraded" && ev.Fields["rootCause"] != "" {
			sawCause = true
		}
	}
	if !sawScrub || !sawCause {
		t.Fatal("scrub findings or escalation cause missing from event log")
	}
	snap := reg.Snapshot()
	if c, ok := snap.Counter("supervise_scrub_violations_total"); !ok || c.Value < 1 {
		t.Fatalf("supervise_scrub_violations_total = %+v", c)
	}
	if h, ok := snap.Histogram("supervise_scrub_seconds"); !ok || h.Count < 1 {
		t.Fatalf("supervise_scrub_seconds = %+v", h)
	}
}

var errFake = &fakeViolation{}

type fakeViolation struct{}

func (*fakeViolation) Error() string { return "fabricated dangling link" }

// TestAdminEndpointEndToEnd wires one registry through every subsystem
// — WAL, store, match, supervisor — serves it over the admin handler,
// and asserts the ISSUE's acceptance shape: a parseable exposition with
// at least 20 families spanning all four prefixes, and a /healthz that
// flips to 503 once the store is forced out of Healthy.
func TestAdminEndpointEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	walMet := wal.NewMetrics(reg)
	sv, fo, _, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.Obs = reg
		cfg.Backoff.Initial = time.Hour // first failed attempt parks in Degraded
		inner := cfg.OpenWAL
		cfg.OpenWAL = func(path string) (*wal.Log, wal.ScanResult, error) {
			log, res, err := inner(path)
			if err == nil {
				log.SetMetrics(walMet)
			}
			return log, res, err
		}
	})
	sv.Store().SetMetrics(core.NewMetrics(reg))

	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sub, err := rdfterm.ParseSubject("x:s", testAliases())
	if err != nil {
		t.Fatal(err)
	}
	pred, err := rdfterm.ParsePredicate("x:p", testAliases())
	if err != nil {
		t.Fatal(err)
	}
	obj, err := rdfterm.ParseObject("x:o", testAliases())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.InsertBatch("m", []core.BatchTriple{{Subject: sub, Predicate: pred, Object: obj}}); err != nil {
		t.Fatal(err)
	}
	if _, err := match.Match(sv.Store(), `(?s ?p ?o)`, match.Options{
		Models: []string{"m"}, Aliases: testAliases(), Metrics: match.NewMetrics(reg),
	}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.NewHandler(reg, func() obs.Health { return sv.Healthz() }))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics unparseable: %v", err)
	}
	if exp.Families() < 20 {
		t.Fatalf("exposition has %d families, want >= 20", exp.Families())
	}
	for _, prefix := range []string{"wal_", "core_", "match_", "supervise_"} {
		if !exp.HasPrefix(prefix) {
			t.Fatalf("exposition missing %s* series (families: %v)", prefix, exp.Types)
		}
	}

	// Healthy first.
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy /healthz: %s", resp.Status)
	}

	// Force a fault and keep recovery from healing it (reopen refused,
	// hour-long backoff): the supervisor parks in Degraded.
	fo.refuseNext(1000)
	fo.current().FailWrites(1000)
	if err := insert(sv, "m", "x:s2", "x:p", "x:o2"); err == nil {
		t.Fatal("mutation against broken WAL succeeded")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := sv.State(); st == Degraded {
			break
		}
		time.Sleep(time.Millisecond)
	}

	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("degraded /healthz: %s, want 503", resp.Status)
	}
	var h obs.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Healthy || h.State == "Healthy" || h.Reason == "" {
		t.Fatalf("degraded payload = %+v", h)
	}
}

package repro

// Benchmarks regenerating the paper's tables and figures (§7), one
// Benchmark* family per artifact, plus ablations of the design decisions
// called out in DESIGN.md §5. Dataset sizes default to 10k triples (the
// paper's smallest point); cmd/benchrepro runs the full sweep.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/jena"
	"repro/internal/match"
	"repro/internal/rdfterm"
	"repro/internal/uniprot"
)

// datasets are built once per size and shared across benchmarks.
var (
	dsMu     sync.Mutex
	dsOracle = map[int]*bench.OracleDataset{}
	dsJena   = map[int]*bench.Jena2Dataset{}
)

func oracleDS(b *testing.B, size int) *bench.OracleDataset {
	b.Helper()
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsOracle[size]; ok {
		return d
	}
	d, err := bench.LoadOracle(size, uniprot.PaperReifiedCount(size), 1)
	if err != nil {
		b.Fatal(err)
	}
	dsOracle[size] = d
	return d
}

func jenaDS(b *testing.B, size int) *bench.Jena2Dataset {
	b.Helper()
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsJena[size]; ok {
		return d
	}
	d, err := bench.LoadJena2(size, uniprot.PaperReifiedCount(size), 1)
	if err != nil {
		b.Fatal(err)
	}
	dsJena[size] = d
	return d
}

// --- Experiment I (§7.1.3, Figure 9): flat tables vs. member functions ---

func BenchmarkExpI_MemberFunctions_10k(b *testing.B) {
	d := oracleDS(b, 10_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := d.App.QueryBySubject(d.SubIdx, uniprot.ProbeSubject)
		if err != nil || len(rows) != uniprot.ProbeRows {
			b.Fatalf("rows = %d, err = %v", len(rows), err)
		}
	}
}

func BenchmarkExpI_FlatTables_10k(b *testing.B) {
	d := oracleDS(b, 10_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := d.Store.FlatQueryBySubject(d.Model, uniprot.ProbeSubject)
		if err != nil || len(rows) != uniprot.ProbeRows {
			b.Fatalf("rows = %d, err = %v", len(rows), err)
		}
	}
}

// --- Experiment II (Table 1, Figure 10): Jena2 vs. RDF objects ---

func benchTable1RDF(b *testing.B, size int) {
	d := oracleDS(b, size)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := d.App.QueryBySubject(d.SubIdx, uniprot.ProbeSubject)
		if err != nil || len(rows) != uniprot.ProbeRows {
			b.Fatalf("rows = %d, err = %v", len(rows), err)
		}
	}
}

func benchTable1Jena(b *testing.B, size int) {
	d := jenaDS(b, size)
	sub := rdfterm.NewURI(uniprot.ProbeSubject)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := d.Store.Find(d.Model, &sub, nil, nil)
		if err != nil || len(rows) != uniprot.ProbeRows {
			b.Fatalf("rows = %d, err = %v", len(rows), err)
		}
	}
}

func BenchmarkTable1_RDFObjects_10k(b *testing.B)  { benchTable1RDF(b, 10_000) }
func BenchmarkTable1_RDFObjects_100k(b *testing.B) { benchTable1RDF(b, 100_000) }
func BenchmarkTable1_Jena2_10k(b *testing.B)       { benchTable1Jena(b, 10_000) }
func BenchmarkTable1_Jena2_100k(b *testing.B)      { benchTable1Jena(b, 100_000) }

// --- Experiment III (Table 2, Figure 11): IS_REIFIED ---

func benchTable2RDF(b *testing.B, size int, wantTrue bool) {
	d := oracleDS(b, size)
	obj := uniprot.ProbeSeeAlso
	if !wantTrue {
		obj = uniprot.NonReifiedProbeObject
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := d.Store.IsReified(d.Model, uniprot.ProbeSubject, uniprot.SeeAlso, obj, nil)
		if err != nil || got != wantTrue {
			b.Fatalf("IsReified = %v, %v", got, err)
		}
	}
}

func benchTable2Jena(b *testing.B, size int, wantTrue bool) {
	d := jenaDS(b, size)
	probe := bench.ProbeStatement()
	if !wantTrue {
		probe = bench.NonReifiedStatement()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := d.Store.IsReified(d.Model, probe)
		if err != nil || got != wantTrue {
			b.Fatalf("IsReified = %v, %v", got, err)
		}
	}
}

func BenchmarkTable2_RDFObjects_10k_true(b *testing.B)   { benchTable2RDF(b, 10_000, true) }
func BenchmarkTable2_RDFObjects_10k_false(b *testing.B)  { benchTable2RDF(b, 10_000, false) }
func BenchmarkTable2_RDFObjects_100k_true(b *testing.B)  { benchTable2RDF(b, 100_000, true) }
func BenchmarkTable2_RDFObjects_100k_false(b *testing.B) { benchTable2RDF(b, 100_000, false) }
func BenchmarkTable2_Jena2_10k_true(b *testing.B)        { benchTable2Jena(b, 10_000, true) }
func BenchmarkTable2_Jena2_10k_false(b *testing.B)       { benchTable2Jena(b, 10_000, false) }
func BenchmarkTable2_Jena2_100k_true(b *testing.B)       { benchTable2Jena(b, 100_000, true) }
func BenchmarkTable2_Jena2_100k_false(b *testing.B)      { benchTable2Jena(b, 100_000, false) }

// --- §7.3: reification storage and lookup, streamlined vs. quad ---

func BenchmarkReificationStorage_Streamlined(b *testing.B) {
	st := core.New()
	if _, err := st.CreateRDFModel("m", "", ""); err != nil {
		b.Fatal(err)
	}
	tids := make([]int64, b.N)
	for i := 0; i < b.N; i++ {
		ts, err := st.InsertTerms("m",
			rdfterm.NewURI(fmt.Sprintf("http://s/%d", i)),
			rdfterm.NewURI("http://p"),
			rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		tids[i] = ts.TID
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := st.Reify("m", tids[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "rows/reification")
}

func BenchmarkReificationStorage_QuadBaseline(b *testing.B) {
	js := jena.NewJena2Store()
	if err := js.CreateModel("m"); err != nil {
		b.Fatal(err)
	}
	q := jena.NewQuadReifier(js, "m")
	stmts := make([]jena.Statement, b.N)
	for i := 0; i < b.N; i++ {
		stmts[i] = jena.Statement{
			Subject:   rdfterm.NewURI(fmt.Sprintf("http://s/%d", i)),
			Predicate: rdfterm.NewURI("http://p"),
			Object:    rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)),
		}
		if err := js.Add("m", stmts[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Reify(stmts[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(4, "rows/reification")
}

// --- Figure 8: inference query over the IC models ---

func BenchmarkFigure8InferenceQuery(b *testing.B) {
	store := core.New()
	govAliases := []rdfterm.Alias{
		{Prefix: "gov", Namespace: "http://www.us.gov#"},
		{Prefix: "id", Namespace: "http://www.us.id#"},
	}
	aliases := rdfterm.Default().With(govAliases...)
	for _, m := range []string{"cia", "dhs", "fbi"} {
		if _, err := store.CreateRDFModel(m, "", ""); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range [][4]string{
		{"cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe"},
		{"cia", "gov:files", "gov:terrorSuspect", "id:JaneDoe"},
		{"dhs", "id:JimDoe", "gov:terrorAction", "bombing"},
		{"dhs", "gov:files", "gov:terrorSuspect", "id:JohnDoe"},
		{"fbi", "id:JohnDoe", "gov:enteredCountry", "June-20-2000"},
		{"fbi", "gov:files", "gov:terrorSuspect", "id:JohnDoe"},
	} {
		if _, err := store.NewTripleS(r[0], r[1], r[2], r[3], aliases); err != nil {
			b.Fatal(err)
		}
	}
	cat := inference.NewCatalog(store)
	if _, err := cat.CreateRulebase("intel_rb"); err != nil {
		b.Fatal(err)
	}
	if err := cat.AddRule("intel_rb", inference.Rule{
		Name:       "intel_rule",
		Antecedent: `(?x gov:terrorAction "bombing")`,
		Consequent: `(gov:files gov:terrorSuspect ?x)`,
		Aliases:    govAliases,
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := cat.CreateRulesIndex("rix", []string{"cia", "dhs", "fbi"},
		[]string{inference.RDFSRulebaseName, "intel_rb"}); err != nil {
		b.Fatal(err)
	}
	opts := match.Options{
		Models:    []string{"cia", "dhs", "fbi"},
		Rulebases: []string{inference.RDFSRulebaseName, "intel_rb"},
		Resolver:  cat,
		Aliases:   aliases,
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := match.Match(store, `(gov:files gov:terrorSuspect ?name)`, opts)
		if err != nil || rs.Len() < 3 {
			b.Fatalf("rows = %d, err = %v", rs.Len(), err)
		}
	}
}

// --- §7.2: function-based index ablation ---

func BenchmarkFunctionBasedIndex_Indexed(b *testing.B) {
	d := oracleDS(b, 10_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.App.QueryBySubject(d.SubIdx, uniprot.ProbeSubject); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionBasedIndex_Unindexed(b *testing.B) {
	d := oracleDS(b, 10_000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.App.UnindexedQueryBySubject(uniprot.ProbeSubject); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: value interning (central rdf_value$) vs. Jena2's
// denormalized text columns — insert throughput of each design. ---

func BenchmarkAblationInterning_OracleInsert(b *testing.B) {
	st := core.New()
	if _, err := st.CreateRDFModel("m", "", ""); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := st.InsertTerms("m",
			rdfterm.NewURI(fmt.Sprintf("http://s/%d", i%1000)),
			rdfterm.NewURI("http://p"),
			rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInterning_Jena2Insert(b *testing.B) {
	js := jena.NewJena2Store()
	if err := js.CreateModel("m"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := js.Add("m", jena.Statement{
			Subject:   rdfterm.NewURI(fmt.Sprintf("http://s/%d", i%1000)),
			Predicate: rdfterm.NewURI("http://p"),
			Object:    rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: partition pruning — full-model scan when the store holds
// ten models vs. the same data in one unpartitioned pile. ---

func buildPartitionedStore(b *testing.B, models, perModel int) *core.Store {
	b.Helper()
	st := core.New()
	for m := 0; m < models; m++ {
		name := fmt.Sprintf("m%d", m)
		if _, err := st.CreateRDFModel(name, "", ""); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < perModel; i++ {
			_, err := st.InsertTerms(name,
				rdfterm.NewURI(fmt.Sprintf("http://s/%d/%d", m, i)),
				rdfterm.NewURI("http://p"),
				rdfterm.NewURI(fmt.Sprintf("http://o/%d", i)))
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	return st
}

func BenchmarkAblationPartitioning_PrunedScan(b *testing.B) {
	st := buildPartitionedStore(b, 10, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := st.Find("m5", core.Pattern{})
		if err != nil || len(got) != 2000 {
			b.Fatalf("rows = %d, err = %v", len(got), err)
		}
	}
}

func BenchmarkAblationPartitioning_SinglePileScan(b *testing.B) {
	st := buildPartitionedStore(b, 1, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := st.Find("m0", core.Pattern{})
		if err != nil || len(got) != 20000 {
			b.Fatalf("rows = %d, err = %v", len(got), err)
		}
	}
}

// --- Ablation: canonical object IDs — lookups with non-canonical lexical
// forms still hit the index (vs. a scan under lexical-only matching). ---

func BenchmarkAblationCanonical_Lookup(b *testing.B) {
	st := core.New()
	if _, err := st.CreateRDFModel("m", "", ""); err != nil {
		b.Fatal(err)
	}
	sub := rdfterm.NewURI("http://s")
	prop := rdfterm.NewURI("http://p")
	for i := 0; i < 10000; i++ {
		_, err := st.InsertTerms("m",
			rdfterm.NewURI(fmt.Sprintf("http://s%d", i)), prop,
			rdfterm.NewTypedLiteral(fmt.Sprintf("%d", i), rdfterm.XSDInt))
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, err := st.InsertTerms("m", sub, prop, rdfterm.NewTypedLiteral("42", rdfterm.XSDInt)); err != nil {
		b.Fatal(err)
	}
	nonCanon := rdfterm.NewTypedLiteral("+042", rdfterm.XSDInt)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, ok, err := st.IsTripleTerms("m", sub, prop, nonCanon)
		if err != nil || !ok {
			b.Fatalf("IsTriple = %v, %v", ok, err)
		}
	}
}

// --- Ablation: rules index (materialized) vs. inferring at query time ---

func BenchmarkAblationRulesIndex_Materialized(b *testing.B) {
	store, cat, opts := figure8Setup(b)
	_ = store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := match.Match(store, `(gov:files gov:terrorSuspect ?name)`, opts)
		if err != nil || rs.Len() < 3 {
			b.Fatalf("rows = %d, err = %v", rs.Len(), err)
		}
	}
	_ = cat
}

func BenchmarkAblationRulesIndex_BuildPerQuery(b *testing.B) {
	store, cat, opts := figure8Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rebuild the index, then query — the cost a system pays without
		// precomputed inference.
		if err := cat.Rebuild("rix"); err != nil {
			b.Fatal(err)
		}
		rs, err := match.Match(store, `(gov:files gov:terrorSuspect ?name)`, opts)
		if err != nil || rs.Len() < 3 {
			b.Fatalf("rows = %d, err = %v", rs.Len(), err)
		}
	}
}

func figure8Setup(b *testing.B) (*core.Store, *inference.Catalog, match.Options) {
	b.Helper()
	store := core.New()
	govAliases := []rdfterm.Alias{
		{Prefix: "gov", Namespace: "http://www.us.gov#"},
		{Prefix: "id", Namespace: "http://www.us.id#"},
	}
	aliases := rdfterm.Default().With(govAliases...)
	for _, m := range []string{"cia", "dhs", "fbi"} {
		if _, err := store.CreateRDFModel(m, "", ""); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range [][4]string{
		{"cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe"},
		{"cia", "gov:files", "gov:terrorSuspect", "id:JaneDoe"},
		{"dhs", "id:JimDoe", "gov:terrorAction", "bombing"},
		{"fbi", "id:JohnDoe", "gov:enteredCountry", "June-20-2000"},
	} {
		if _, err := store.NewTripleS(r[0], r[1], r[2], r[3], aliases); err != nil {
			b.Fatal(err)
		}
	}
	cat := inference.NewCatalog(store)
	if _, err := cat.CreateRulebase("intel_rb"); err != nil {
		b.Fatal(err)
	}
	if err := cat.AddRule("intel_rb", inference.Rule{
		Name:       "intel_rule",
		Antecedent: `(?x gov:terrorAction "bombing")`,
		Consequent: `(gov:files gov:terrorSuspect ?x)`,
		Aliases:    govAliases,
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := cat.CreateRulesIndex("rix", []string{"cia", "dhs", "fbi"}, []string{"intel_rb"}); err != nil {
		b.Fatal(err)
	}
	return store, cat, match.Options{
		Models:    []string{"cia", "dhs", "fbi"},
		Rulebases: []string{"intel_rb"},
		Resolver:  cat,
		Aliases:   aliases,
	}
}

// --- Ablation: normalized (Jena1) vs. denormalized (Jena2) find — the
// §3.1 trade-off ("a three-way join was required for find operations" vs.
// "the number of required table joins is reduced at query time"). ---

func buildJenaPair(b *testing.B, n int) (*jena.Jena1Store, *jena.Jena2Store) {
	b.Helper()
	j1 := jena.NewJena1Store()
	j2 := jena.NewJena2Store()
	if err := j2.CreateModel("m"); err != nil {
		b.Fatal(err)
	}
	triples, _, err := uniprot.Generate(uniprot.Config{Triples: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, tr := range triples {
		st := jena.Statement{Subject: tr.T.Subject, Predicate: tr.T.Predicate, Object: tr.T.Object}
		if err := j1.Add(st); err != nil {
			b.Fatal(err)
		}
		if err := j2.Add("m", st); err != nil {
			b.Fatal(err)
		}
	}
	return j1, j2
}

func BenchmarkAblationNormalization_Jena1Find(b *testing.B) {
	j1, _ := buildJenaPair(b, 10_000)
	sub := rdfterm.NewURI(uniprot.ProbeSubject)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := j1.Find(&sub, nil, nil)
		if err != nil || len(rows) != uniprot.ProbeRows {
			b.Fatalf("rows = %d, err = %v", len(rows), err)
		}
	}
}

func BenchmarkAblationNormalization_Jena2Find(b *testing.B) {
	_, j2 := buildJenaPair(b, 10_000)
	sub := rdfterm.NewURI(uniprot.ProbeSubject)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := j2.Find("m", &sub, nil, nil)
		if err != nil || len(rows) != uniprot.ProbeRows {
			b.Fatalf("rows = %d, err = %v", len(rows), err)
		}
	}
}

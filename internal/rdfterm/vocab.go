package rdfterm

import (
	"strconv"
	"strings"
)

// Well-known namespaces.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
)

// RDF built-in vocabulary used by reification (§2, §5) and containers.
const (
	RDFType      = RDFNS + "type"
	RDFStatement = RDFNS + "Statement"
	RDFSubject   = RDFNS + "subject"
	RDFPredicate = RDFNS + "predicate"
	RDFObject    = RDFNS + "object"
	RDFBag       = RDFNS + "Bag"
	RDFSeq       = RDFNS + "Seq"
	RDFAlt       = RDFNS + "Alt"
	RDFList      = RDFNS + "List"
	RDFFirst     = RDFNS + "first"
	RDFRest      = RDFNS + "rest"
	RDFNil       = RDFNS + "nil"
	RDFValue     = RDFNS + "value"
	RDFProperty  = RDFNS + "Property"
	RDFXMLLit    = RDFNS + "XMLLiteral"
)

// RDFS vocabulary used by the built-in RDFS rulebase (§6.1).
const (
	RDFSSubClassOf    = RDFSNS + "subClassOf"
	RDFSSubPropertyOf = RDFSNS + "subPropertyOf"
	RDFSDomain        = RDFSNS + "domain"
	RDFSRange         = RDFSNS + "range"
	RDFSResource      = RDFSNS + "Resource"
	RDFSClass         = RDFSNS + "Class"
	RDFSLiteral       = RDFSNS + "Literal"
	RDFSDatatype      = RDFSNS + "Datatype"
	RDFSMember        = RDFSNS + "member"
	RDFSContainerMP   = RDFSNS + "ContainerMembershipProperty"
	RDFSSeeAlso       = RDFSNS + "seeAlso"
	RDFSLabel         = RDFSNS + "label"
	RDFSComment       = RDFSNS + "comment"
	RDFSIsDefinedBy   = RDFSNS + "isDefinedBy"
)

// XSD datatypes with canonicalization support.
const (
	XSDString   = XSDNS + "string"
	XSDBoolean  = XSDNS + "boolean"
	XSDInteger  = XSDNS + "integer"
	XSDInt      = XSDNS + "int"
	XSDLong     = XSDNS + "long"
	XSDShort    = XSDNS + "short"
	XSDByte     = XSDNS + "byte"
	XSDDecimal  = XSDNS + "decimal"
	XSDFloat    = XSDNS + "float"
	XSDDouble   = XSDNS + "double"
	XSDDate     = XSDNS + "date"
	XSDTime     = XSDNS + "time"
	XSDDateTime = XSDNS + "dateTime"
)

// IsMembershipProperty reports whether the URI is an rdf:_n container
// membership property, returning n when it is. These map to LINK_TYPE
// RDF_MEMBER in rdf_link$ (§4).
func IsMembershipProperty(uri string) (int, bool) {
	rest, ok := strings.CutPrefix(uri, RDFNS+"_")
	if !ok || rest == "" {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// MembershipProperty returns the rdf:_n membership property URI.
func MembershipProperty(n int) string {
	return RDFNS + "_" + strconv.Itoa(n)
}

// LinkType classifies a predicate URI into the rdf_link$ LINK_TYPE codes
// (§4): RDF_TYPE for rdf:type, RDF_MEMBER for rdf:_n, RDF_* for any other
// term of the RDF built-in vocabulary, STANDARD otherwise.
func LinkType(predicate string) string {
	if predicate == RDFType {
		return "RDF_TYPE"
	}
	if _, ok := IsMembershipProperty(predicate); ok {
		return "RDF_MEMBER"
	}
	if strings.HasPrefix(predicate, RDFNS) {
		return "RDF_*"
	}
	return "STANDARD"
}

package load

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ntriples"
)

// genNT builds a deterministic N-Triples document with n statements,
// sprinkled with comments and blank lines.
func genNT(n int) string {
	var b strings.Builder
	b.WriteString("# header comment\n\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<http://s/%d> <http://p/%d> \"obj %d\" .\n", i%97, i%7, i)
		if i%50 == 25 {
			b.WriteString("# interleaved comment\n")
		}
	}
	return b.String()
}

// TestParseMatchesSerial: the parallel parser must produce exactly the
// serial reader's triple sequence, for various worker/chunk geometries.
func TestParseMatchesSerial(t *testing.T) {
	doc := genNT(1203)
	want, err := ntriples.NewReader(strings.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{Workers: 1},
		{Workers: 2, ChunkLines: 7},
		{Workers: 4, ChunkLines: 1},
		{Workers: 8, ChunkLines: 64},
		{}, // GOMAXPROCS workers, default chunking
	} {
		got, err := Parse(strings.NewReader(doc), opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%+v: %d triples, want %d", opt, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%+v: triple %d = %v, want %v (order not preserved?)", opt, i, got[i], want[i])
			}
		}
	}
}

// TestRunBatchSizes: sink sees full batches then the remainder, in order.
func TestRunBatchSizes(t *testing.T) {
	doc := genNT(1000)
	var sizes []int
	seen := 0
	n, err := Run(strings.NewReader(doc), Options{Workers: 4, BatchSize: 300, ChunkLines: 11},
		func(batch []ntriples.Triple) error {
			sizes = append(sizes, len(batch))
			for _, tr := range batch {
				want := fmt.Sprintf("obj %d", seen)
				if tr.Object.Value != want {
					t.Fatalf("triple %d out of order: %q != %q", seen, tr.Object.Value, want)
				}
				seen++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || seen != 1000 {
		t.Fatalf("delivered %d/%d triples, want 1000", n, seen)
	}
	for i, s := range sizes[:len(sizes)-1] {
		if s != 300 {
			t.Fatalf("batch %d has %d triples, want 300", i, s)
		}
	}
	if last := sizes[len(sizes)-1]; last != 100 {
		t.Fatalf("final batch has %d triples, want 100", last)
	}
}

// TestParseErrorPosition: a syntax error must carry its original input
// line number and cancel the pipeline; the earliest error wins.
func TestParseErrorPosition(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&b, "<http://s/%d> <http://p> <http://o> .\n", i)
	}
	b.WriteString("this is not a triple\n") // line 101
	for i := 0; i < 100; i++ {
		b.WriteString("also garbage\n") // later errors must not win
	}
	for _, workers := range []int{1, 4} {
		_, err := Parse(strings.NewReader(b.String()), Options{Workers: workers, ChunkLines: 10})
		var perr *ntriples.ParseError
		if !errors.As(err, &perr) {
			t.Fatalf("workers=%d: error %v is not a ParseError", workers, err)
		}
		if perr.Line != 101 {
			t.Fatalf("workers=%d: error at line %d, want 101", workers, perr.Line)
		}
	}
}

// TestSinkErrorCancels: a sink failure stops the pipeline promptly.
func TestSinkErrorCancels(t *testing.T) {
	boom := errors.New("sink full")
	calls := 0
	_, err := Run(strings.NewReader(genNT(5000)), Options{Workers: 4, BatchSize: 100},
		func([]ntriples.Triple) error {
			calls++
			if calls == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if calls != 3 {
		t.Fatalf("sink called %d times after failure, want 3", calls)
	}
}

// errReader fails after a few bytes, simulating a broken input stream.
type errReader struct {
	data string
	off  int
}

func (e *errReader) Read(p []byte) (int, error) {
	if e.off >= len(e.data) {
		return 0, errors.New("stream torn")
	}
	n := copy(p, e.data[e.off:])
	e.off += n
	return n, nil
}

// TestScannerErrorPropagates: an input I/O error surfaces from Run.
func TestScannerErrorPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(&errReader{data: genNT(100)}, Options{Workers: workers},
			func([]ntriples.Triple) error { return nil })
		if err == nil || err == io.EOF {
			t.Fatalf("workers=%d: stream error lost: %v", workers, err)
		}
	}
}

// TestBulkLoad: the streaming fast path must load the same store state
// as per-triple inserts.
func TestBulkLoad(t *testing.T) {
	doc := genNT(777)
	fast := core.New()
	if _, err := fast.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	n, err := BulkLoad(fast, "m", strings.NewReader(doc), Options{Workers: 4, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if n != 777 {
		t.Fatalf("loaded %d triples, want 777", n)
	}

	slow := core.New()
	if _, err := slow.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	ts, err := ntriples.NewReader(strings.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		if _, err := slow.InsertTerms("m", tr.Subject, tr.Predicate, tr.Object); err != nil {
			t.Fatal(err)
		}
	}
	nf, _ := fast.NumTriples("m")
	ns, _ := slow.NumTriples("m")
	if nf != ns {
		t.Fatalf("bulk store has %d triples, per-triple store has %d", nf, ns)
	}
	if fast.NumValues() != slow.NumValues() || fast.NumNodes() != slow.NumNodes() {
		t.Fatalf("value/node counts diverge: %d/%d vs %d/%d",
			fast.NumValues(), fast.NumNodes(), slow.NumValues(), slow.NumNodes())
	}
}

// Command rdfload bulk-loads an N-Triples file into the RDF object store,
// folding reification quads into the streamlined DBUri representation
// (§5) — the reproduction of the paper's Java bulk-load API.
//
// The store is memory-resident; rdfload demonstrates the load pipeline and
// prints the resulting storage statistics (rows, values, nodes, reified
// statements, contexts).
//
// Usage:
//
//	rdfload -model name [-policy drop|insert|report] [-keep-orig] file.nt
//	cat file.nt | rdfload -model name
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/ntriples"
	"repro/internal/rdfxml"
	"repro/internal/reify"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdfload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdfload", flag.ContinueOnError)
	model := fs.String("model", "data", "RDF model (graph) name to load into")
	policy := fs.String("policy", "drop", "incomplete-quad policy: drop, insert, or report")
	keepOrig := fs.Bool("keep-orig", false, "store original quad-resource URIs alongside DBUris")
	save := fs.String("save", "", "write a store snapshot to this file after loading (readable by rdfquery -snapshot)")
	format := fs.String("format", "nt", "input format: nt (N-Triples) or xml (RDF/XML)")
	base := fs.String("base", "", "base URI for resolving rdf:ID in RDF/XML input")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	store := core.New()
	if _, err := store.CreateRDFModel(*model, "", ""); err != nil {
		return err
	}
	loader := &reify.Loader{
		Store:            store,
		Model:            *model,
		KeepOriginalURIs: *keepOrig,
		Report:           os.Stderr,
	}
	switch *policy {
	case "drop":
		loader.Policy = reify.DropIncomplete
	case "insert":
		loader.Policy = reify.InsertIncomplete
	case "report":
		loader.Policy = reify.ReportIncomplete
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	var stats reify.Stats
	var err error
	switch *format {
	case "nt":
		stats, err = loader.Load(in)
	case "xml":
		var parsed []ntriples.Triple
		parsed, err = rdfxml.Parse(in, rdfxml.Options{Base: *base})
		if err == nil {
			stats, err = loader.LoadTriples(parsed)
		}
	default:
		return fmt.Errorf("unknown format %q (want nt or xml)", *format)
	}
	if err != nil {
		return err
	}
	triples, err := store.NumTriples(*model)
	if err != nil {
		return err
	}
	reified, err := store.ReifiedCount(*model)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "read:                 %d triples\n", stats.Read)
	fmt.Fprintf(stdout, "base inserted:        %d\n", stats.Inserted)
	fmt.Fprintf(stdout, "quads folded:         %d (4 input triples -> 1 stored row each)\n", stats.QuadsFolded)
	fmt.Fprintf(stdout, "assertions rewritten: %d\n", stats.AssertionsRewritten)
	fmt.Fprintf(stdout, "incomplete quads:     %d (%s)\n", stats.Incomplete, *policy)
	fmt.Fprintf(stdout, "stored rows:          %d in rdf_link$ (model %q)\n", triples, *model)
	fmt.Fprintf(stdout, "distinct values:      %d in rdf_value$\n", store.NumValues())
	fmt.Fprintf(stdout, "graph nodes:          %d in rdf_node$\n", store.NumNodes())
	fmt.Fprintf(stdout, "reified statements:   %d\n", reified)
	if stats.Read > 0 && stats.QuadsFolded > 0 {
		saved := 3 * stats.QuadsFolded
		fmt.Fprintf(stdout, "rows saved by DBUri reification: %d (%.0f%% of quad storage)\n",
			saved, 100*float64(stats.QuadsFolded)/float64(4*stats.QuadsFolded))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := store.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "snapshot written to %s\n", *save)
	}
	return nil
}

// Package goodwal exercises the durable-mutation shapes walcheck must
// accept: record+commit inline, logging delegated to a helper, read-only
// exported methods, and a justified replay exemption.
package goodwal

import "sync"

type Table struct{ rows []int }

func (t *Table) Insert(v int) { t.rows = append(t.rows, v) }
func (t *Table) Delete(i int) {}
func (t *Table) Len() int     { return len(t.rows) }

type Store struct {
	mu  sync.Mutex
	tab *Table //repro:guarded-by mu
	wal []string
}

func (s *Store) logRecord(op string) error { s.wal = append(s.wal, op); return nil }
func (s *Store) logCommit() error          { s.wal = append(s.wal, "commit"); return nil }

// Insert follows the contract inline: record, mutate, commit.
func (s *Store) Insert(v int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.logRecord("insert"); err != nil {
		return err
	}
	s.tab.Insert(v)
	return s.logCommit()
}

// Remove delegates both the mutation and the logging to a helper; the
// transitive walk must find them there.
func (s *Store) Remove(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.removeLocked(i)
}

func (s *Store) removeLocked(i int) error {
	if err := s.logRecord("remove"); err != nil {
		return err
	}
	s.tab.Delete(i)
	return s.logCommit()
}

// Len reads guarded state without mutating; no WAL obligation.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tab.Len()
}

// Replay re-applies operations that are already durable in the WAL;
// logging them again would duplicate every record on the next recovery.
//
//repro:vet-ignore walcheck replay applies records already present in the WAL; re-logging would duplicate them on the next recovery
func (s *Store) Replay(ops []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range ops {
		s.tab.Insert(v)
	}
}

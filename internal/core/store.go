package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
	"repro/internal/wal"
)

// Sentinel errors.
var (
	// ErrNoSuchModel reports an operation on a model name or ID that has
	// not been created.
	ErrNoSuchModel = errors.New("core: no such RDF model")
	// ErrDuplicateModel reports CreateRDFModel with a name already in use.
	ErrDuplicateModel = errors.New("core: model already exists")
	// ErrNoSuchTriple reports a lookup of a triple that is not stored.
	ErrNoSuchTriple = errors.New("core: no such triple")
	// ErrNoSuchValue reports a dangling VALUE_ID reference.
	ErrNoSuchValue = errors.New("core: no such value")
)

// Store is the central RDF schema: "there is one universe for all RDF data
// in the database" (§1). All models share the global rdf_value$ and
// rdf_link$ tables; application tables hold only SDO_RDF_TRIPLE_S ID
// objects pointing into the store.
type Store struct {
	db *reldb.Database

	models *reldb.Table //repro:guarded-by mu
	values *reldb.Table //repro:guarded-by mu
	nodes  *reldb.Table //repro:guarded-by mu
	links  *reldb.Table //repro:guarded-by mu
	blanks *reldb.Table //repro:guarded-by mu

	modelPK   *reldb.Index //repro:guarded-by mu
	modelName *reldb.Index //repro:guarded-by mu
	valuePK   *reldb.Index //repro:guarded-by mu
	valueText *reldb.Index //repro:guarded-by mu
	nodePK    *reldb.Index //repro:guarded-by mu
	linkPK    *reldb.Index //repro:guarded-by mu
	linkMSPO  *reldb.Index //repro:guarded-by mu
	linkMP    *reldb.Index //repro:guarded-by mu
	linkMO    *reldb.Index //repro:guarded-by mu
	linkStart *reldb.Index //repro:guarded-by mu
	linkEnd   *reldb.Index //repro:guarded-by mu
	blankPK   *reldb.Index //repro:guarded-by mu

	valueSeq *reldb.Sequence //repro:guarded-by mu
	linkSeq  *reldb.Sequence //repro:guarded-by mu
	modelSeq *reldb.Sequence //repro:guarded-by mu
	blankSeq *reldb.Sequence //repro:guarded-by mu

	// termIDs caches term → VALUE_ID so hot terms (repeated subjects and
	// predicates during bulk load) skip the function-index lookup.
	// rdf_value$ rows are never deleted or rewritten, so entries cannot go
	// stale; the cache is only bounded (see termCacheMax). Entries are
	// added only under the write lock; readers holding RLock may consult
	// it because RWMutex excludes writers while any reader is in.
	termIDs map[string]int64 //repro:guarded-by mu

	// mu serializes multi-table mutations (value interning + link insert),
	// keeping cross-table invariants atomic. Readers hold the read lock:
	// the underlying tables and indexes are not safe for concurrent
	// access, so every public read path takes RLock and every mutation
	// takes Lock. Internal *Locked helpers assume the caller holds one of
	// the two and must not re-lock (RWMutex is not reentrant).
	mu sync.RWMutex

	// dur, when non-nil, receives every logical mutation as a WAL record
	// (see durability.go). nil — the default — costs nothing.
	dur Durability

	// met, when non-nil, receives instrumentation hooks (see metrics.go).
	// Deliberately NOT guarded-by mu: lock-wait timing reads it before
	// acquiring the lock, so the synchronization is attach-before-share
	// (SetMetrics), exactly like dur.
	met *Metrics

	// stats caches per-model planner statistics (see stats.go).
	// Deliberately NOT guarded-by mu: the cache has its own leaf mutex and
	// the pointer is attach-before-share (set once in New), exactly like
	// met.
	stats *planStatsCache
}

// New creates a fresh central schema (the MDSYS schema of the paper) and
// returns the store. Sequence bases echo the paper's examples: value IDs
// from 1068, link IDs from 2051, model IDs from 7 (Figure 6).
func New() *Store {
	db := reldb.NewDatabase("MDSYS")
	s := &Store{db: db, stats: &planStatsCache{byModel: map[int64]*PlanStats{}}}
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("core: building central schema: %v", err))
		}
	}
	var err error
	s.models, err = db.CreateTable(modelSchema())
	must(err)
	s.values, err = db.CreateTable(valueSchema())
	must(err)
	s.nodes, err = db.CreateTable(nodeSchema())
	must(err)
	s.links, err = db.CreatePartitionedTable(linkSchema(), "MODEL_ID")
	must(err)
	s.blanks, err = db.CreateTable(blankNodeSchema())
	must(err)

	s.modelPK, err = s.models.CreateIndex(idxModelPK, true, "MODEL_ID")
	must(err)
	s.modelName, err = s.models.CreateIndex(idxModelName, true, "MODEL_NAME")
	must(err)
	s.valuePK, err = s.values.CreateIndex(idxValuePK, true, "VALUE_ID")
	must(err)
	// Uniqueness of text entries must consider the full text (long values
	// live in LONG_VALUE) plus the type columns, so it is a function-based
	// index over the reassembled key.
	s.valueText, err = s.values.CreateFunctionIndex(idxValueText, true, valueTextKey)
	must(err)
	s.nodePK, err = s.nodes.CreateIndex(idxNodePK, true, "NODE_ID")
	must(err)
	s.linkPK, err = s.links.CreateIndex(idxLinkPK, true, "LINK_ID")
	must(err)
	s.linkMSPO, err = s.links.CreateIndex(idxLinkMSPO, true,
		"MODEL_ID", "START_NODE_ID", "P_VALUE_ID", "CANON_END_NODE_ID")
	must(err)
	s.linkMP, err = s.links.CreateIndex(idxLinkMP, false, "MODEL_ID", "P_VALUE_ID")
	must(err)
	s.linkMO, err = s.links.CreateIndex(idxLinkMO, false, "MODEL_ID", "CANON_END_NODE_ID")
	must(err)
	s.linkStart, err = s.links.CreateIndex(idxLinkStart, false, "START_NODE_ID")
	must(err)
	s.linkEnd, err = s.links.CreateIndex(idxLinkEnd, false, "END_NODE_ID")
	must(err)
	s.blankPK, err = s.blanks.CreateIndex(idxBlankPK, true, "MODEL_ID", "ORIG_NAME")
	must(err)

	s.valueSeq, err = db.CreateSequence("rdf_value_seq", 1068)
	must(err)
	s.linkSeq, err = db.CreateSequence("rdf_link_seq", 2051)
	must(err)
	s.modelSeq, err = db.CreateSequence("rdf_model_seq", 7)
	must(err)
	s.blankSeq, err = db.CreateSequence("rdf_blank_seq", 1)
	must(err)
	return s
}

// valueTextKey builds the uniqueness key for a rdf_value$ row: value type,
// full text (LONG_VALUE when present, else VALUE_NAME), literal type, and
// language tag.
func valueTextKey(r reldb.Row) reldb.Key {
	text := r[vcValueName]
	if !r[vcLongValue].IsNull() {
		text = r[vcLongValue]
	}
	lit, lang := r[vcLiteralType], r[vcLanguageType]
	if lit.IsNull() {
		lit = reldb.String_("")
	}
	if lang.IsNull() {
		lang = reldb.String_("")
	}
	return reldb.Key{r[vcValueType], text, lit, lang}
}

// termKey builds the same key shape as valueTextKey directly from a term,
// for lookups without materializing a row.
func termKey(t rdfterm.Term) reldb.Key {
	return reldb.Key{
		reldb.String_(t.ValueType()),
		reldb.String_(t.Lexical()),
		reldb.String_(t.Datatype),
		reldb.String_(t.Language),
	}
}

// Database exposes the underlying schema for the flat-table experiments
// (Experiment I queries rdf_value$ and rdf_link$ directly).
func (s *Store) Database() *reldb.Database { return s.db }

// --- model management (§4.3) ---

// CreateRDFModel registers a new RDF graph, recording the owning
// application table/column names (informational, as in the paper's
// SDO_RDF.CREATE_RDF_MODEL), and creates the rdfm_<model> view over
// rdf_link$ restricted to the model's partition.
func (s *Store) CreateRDFModel(name, tableName, columnName string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return 0, fmt.Errorf("core: empty model name")
	}
	if s.modelName.Contains(reldb.Key{reldb.String_(name)}) {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateModel, name)
	}
	id := s.modelSeq.Next()
	if err := s.addModelLocked(id, name, tableName, columnName); err != nil {
		return 0, err
	}
	if err := s.logRecord(wal.Record{
		Type: wal.TypeCreateModel, ModelID: id, Name: name,
		TableName: tableName, ColumnName: columnName,
	}); err != nil {
		return 0, err
	}
	return id, s.logCommit()
}

// addModelLocked inserts the rdf_model$ row and creates the model view —
// shared by CreateRDFModel and WAL replay. Caller holds s.mu.
func (s *Store) addModelLocked(id int64, name, tableName, columnName string) error {
	tn, cn := reldb.Null(), reldb.Null()
	if tableName != "" {
		tn = reldb.String_(tableName)
	}
	if columnName != "" {
		cn = reldb.String_(columnName)
	}
	if _, err := s.models.Insert(reldb.Row{reldb.Int(id), reldb.String_(name), tn, cn}); err != nil {
		return err
	}
	// Model view: a live window onto this model's rdf_link$ partition
	// (§4.3 — "a view of the rdf_link$ table that contains only data for
	// the model").
	mid := id
	_, err := s.db.CreateView("rdfm_"+strings.ToLower(name), s.links, func(r reldb.Row) bool {
		return r[lcModelID].Int64() == mid
	})
	return err
}

// GetModelID resolves a model name (the paper's SDO_RDF.GET_MODEL_ID).
func (s *Store) GetModelID(name string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getModelIDLocked(name)
}

// getModelIDLocked resolves a model name. Caller holds s.mu (either mode).
func (s *Store) getModelIDLocked(name string) (int64, error) {
	rid, ok := s.modelName.LookupOne(reldb.Key{reldb.String_(name)})
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchModel, name)
	}
	r, err := s.models.Get(rid)
	if err != nil {
		return 0, err
	}
	return r[mcModelID].Int64(), nil
}

// ModelNames returns the names of all models, sorted by model ID. A
// catalog row the index points at but the table cannot produce is
// corruption, not an empty result, and is reported as an error.
func (s *Store) ModelNames() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	var scanErr error
	s.modelPK.Scan(nil, nil, func(k reldb.Key, rid reldb.RowID) bool {
		r, err := s.models.Get(rid)
		if err != nil {
			scanErr = fmt.Errorf("core: model catalog row %v (id %v) unreadable: %w", rid, k, err)
			return false
		}
		names = append(names, r[mcModelName].Str())
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return names, nil
}

// ModelView returns the rdfm_<model> view.
func (s *Store) ModelView(name string) (*reldb.View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.View("rdfm_" + strings.ToLower(name))
}

// DropRDFModel removes a model: its links, its blank-node mappings, its
// catalog row, and its view. Shared rdf_value$ entries are retained (they
// may be referenced by other models); orphaned rdf_node$ entries are
// cleaned up.
func (s *Store) DropRDFModel(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.getModelIDLocked(name)
	if err != nil {
		return err
	}
	if err := s.dropModelLocked(id, name); err != nil {
		return err
	}
	if err := s.logRecord(wal.Record{Type: wal.TypeDropModel, ModelID: id, Name: name}); err != nil {
		return err
	}
	return s.logCommit()
}

// dropModelLocked removes the model's links, blank mappings, catalog row,
// view, and newly orphaned nodes — shared by DropRDFModel and WAL replay.
// Caller holds s.mu.
func (s *Store) dropModelLocked(id int64, name string) error {
	// Collect node IDs referenced by this model's links before deleting.
	touched := map[int64]bool{}
	s.links.ScanPartition(id, func(_ reldb.RowID, r reldb.Row) bool {
		touched[r[lcStartNodeID].Int64()] = true
		touched[r[lcEndNodeID].Int64()] = true
		return true
	})
	if _, err := s.links.TruncatePartition(id); err != nil && !errors.Is(err, reldb.ErrNoSuchPartition) {
		return err
	}
	for nodeID := range touched {
		s.removeNodeIfOrphanLocked(nodeID)
	}
	// Blank-node mappings for this model.
	var blankRows []reldb.RowID
	s.blankPK.ScanPrefix(reldb.Key{reldb.Int(id)}, func(_ reldb.Key, rid reldb.RowID) bool {
		blankRows = append(blankRows, rid)
		return true
	})
	for _, rid := range blankRows {
		if err := s.blanks.Delete(rid); err != nil {
			return err
		}
	}
	if rid, ok := s.modelPK.LookupOne(reldb.Key{reldb.Int(id)}); ok {
		if err := s.models.Delete(rid); err != nil {
			return err
		}
	}
	return s.db.DropView("rdfm_" + strings.ToLower(name))
}

// NumTriples returns the number of stored triples (links) in one model.
func (s *Store) NumTriples(model string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, err := s.getModelIDLocked(model)
	if err != nil {
		return 0, err
	}
	return s.links.PartitionLen(id), nil
}

// TotalTriples returns the number of links across all models.
func (s *Store) TotalTriples() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.links.Len()
}

// NumValues returns the number of distinct text values stored.
func (s *Store) NumValues() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.values.Len()
}

// NumNodes returns the number of distinct graph nodes (subjects/objects).
func (s *Store) NumNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nodes.Len()
}

// Package obs is the runtime observability layer: a stdlib-only metrics
// registry (atomic counters, gauges, fixed-bucket histograms), a
// structured event log (ring buffer), and an embeddable admin HTTP
// surface (Prometheus-text /metrics, JSON /healthz and /events, pprof).
//
// Design constraints, in order:
//
//  1. Zero overhead when disabled. Every instrument is nil-safe: a nil
//     *Counter/*Gauge/*Histogram/*EventLog is a no-op, and a nil
//     *Registry hands out nil instruments. Packages hold instrument
//     pointers in a metrics struct whose methods check the struct
//     pointer for nil once — the disabled hot path is a single
//     predictable branch, no time.Now(), no map lookups, no locks
//     (verified by benchmark, see DESIGN.md §7).
//  2. Lock-free on the write path. Counter.Add and Histogram.Observe
//     are atomic operations on pre-registered state; registration (the
//     only locked operation) happens once at attach time, never per
//     observation.
//  3. Snapshot-on-read. Exposition walks a point-in-time copy, so a
//     scrape never blocks a writer and never sees a torn histogram
//     (bucket counts are read after count/sum, making the usual
//     monotonicity guarantees hold per-series).
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// nameRE validates metric names (Prometheus exposition identifier).
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing metric. A nil Counter is a valid
// no-op instrument.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Add increments the counter by n (n < 0 is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil Gauge is a valid
// no-op instrument.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry owns a process's instruments. The zero value is not usable;
// create with NewRegistry. A nil *Registry is valid everywhere and hands
// out nil instruments, so callers thread a single pointer through the
// stack and pay nothing when it is nil.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	events *EventLog
}

// DefaultEventCapacity is the event ring size NewRegistry allocates.
const DefaultEventCapacity = 512

// NewRegistry creates an empty registry with an event log of
// DefaultEventCapacity.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
		events: NewEventLog(DefaultEventCapacity),
	}
}

// Events returns the registry's event log (nil for a nil registry).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// checkName panics on a malformed metric name or a name already
// registered as a different kind — both are programmer errors caught the
// first time the instrument is built.
func (r *Registry) checkName(name, kind string) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	taken := func(ok bool, as string) {
		if ok && as != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s", name, as))
		}
	}
	_, isC := r.counts[name]
	_, isG := r.gauges[name]
	_, isH := r.hists[name]
	taken(isC, "counter")
	taken(isG, "gauge")
	taken(isH, "histogram")
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	if c, ok := r.counts[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counts[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// instrument and ignore bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := newHistogram(name, help, bounds)
	r.hists[name] = h
	return h
}

// Snapshot captures every instrument's current value, sorted by name.
// Safe to call concurrently with writers; each series is internally
// consistent (histogram count >= sum of buckets read, never less).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counts := make([]*Counter, 0, len(r.counts))
	for _, c := range r.counts {
		counts = append(counts, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var snap Snapshot
	for _, c := range counts {
		snap.Counters = append(snap.Counters, CounterSnap{Name: c.name, Help: c.help, Value: c.v.Load()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: g.name, Help: g.help, Value: g.v.Load()})
	}
	for _, h := range hists {
		snap.Histograms = append(snap.Histograms, h.snapshot())
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// Snapshot is a point-in-time copy of a registry's instruments.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name  string
	Help  string
	Value int64
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name  string
	Help  string
	Value int64
}

// Series returns the number of metric families in the snapshot.
func (s Snapshot) Series() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Histogram looks up a histogram snapshot by name.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// Counter looks up a counter snapshot by name.
func (s Snapshot) Counter(name string) (CounterSnap, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c, true
		}
	}
	return CounterSnap{}, false
}

// Gauge looks up a gauge snapshot by name.
func (s Snapshot) Gauge(name string) (GaugeSnap, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g, true
		}
	}
	return GaugeSnap{}, false
}

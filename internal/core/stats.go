package core

import (
	"context"
	"sync"

	"repro/internal/reldb"
)

// PredStats summarizes one predicate within one model: how many links use
// it and how many distinct subjects / distinct canonical objects those
// links touch. These are the per-predicate histograms a relational
// optimizer would keep on rdf_link$ (§7), driving the match planner's
// selectivity estimates.
type PredStats struct {
	Count            int
	DistinctSubjects int
	DistinctObjects  int
}

// PlanStats summarizes one model's rdf_link$ partition for the query
// planner: total link count, model-wide distinct subject / canonical
// object cardinalities, and per-predicate PredStats. A PlanStats is
// immutable once built; staleness is handled by rebuilding a fresh one.
type PlanStats struct {
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
	Preds            map[int64]PredStats

	// builtLen is the total rdf_link$ size at build time; the cache
	// rebuilds when the live size drifts more than 1/8 from it. The total
	// (not the partition length) is the staleness proxy because it is
	// O(1) to read, where a partition length costs a full partition walk
	// — too expensive to pay on every query.
	builtLen int
}

// Pred returns the stats for one predicate VALUE_ID (zero stats when the
// predicate does not occur in the model).
func (ps *PlanStats) Pred(pid int64) PredStats {
	if ps == nil {
		return PredStats{}
	}
	return ps.Preds[pid]
}

// planStatsCache holds per-model PlanStats behind its own leaf mutex. It
// is deliberately NOT guarded by Store.mu: queries consult it while
// holding the store read lock, and two readers may race to install a
// rebuilt entry (idempotent — both build from the same locked snapshot).
// The cache pointer itself is attach-before-share: set once in New, like
// Store.met.
type planStatsCache struct {
	mu      sync.Mutex
	byModel map[int64]*PlanStats
}

// statsDriftDenom: cached PlanStats are reused while the partition size
// stays within 1/statsDriftDenom of the size they were built at.
const statsDriftDenom = 8

// PlanStatsLocked returns planner statistics for one model, building or
// rebuilding them from a single partition scan when absent or stale. The
// returned PlanStats is immutable — callers may keep it for the duration
// of a query without re-checking. Caller holds s.mu (either mode), so the
// build scans a consistent snapshot.
func (tx *ReadTx) PlanStatsLocked(mid int64) *PlanStats {
	s := tx.s
	cur := s.links.Len()
	s.stats.mu.Lock()
	ps := s.stats.byModel[mid]
	s.stats.mu.Unlock()
	if ps != nil {
		drift := cur - ps.builtLen
		if drift < 0 {
			drift = -drift
		}
		if drift*statsDriftDenom <= ps.builtLen {
			return ps
		}
	}
	ps = s.buildPlanStatsLocked(mid)
	s.stats.mu.Lock()
	s.stats.byModel[mid] = ps
	s.stats.mu.Unlock()
	return ps
}

// buildPlanStatsLocked computes PlanStats in one pass over the model's
// rdf_link$ partition. The distinct-ID sets are transient build state;
// only their cardinalities are retained. Caller holds s.mu (either mode).
func (s *Store) buildPlanStatsLocked(mid int64) *PlanStats {
	ps := &PlanStats{Preds: map[int64]PredStats{}}
	type predSets struct {
		count int
		subj  map[int64]struct{}
		obj   map[int64]struct{}
	}
	per := map[int64]*predSets{}
	subjAll := map[int64]struct{}{}
	objAll := map[int64]struct{}{}
	_ = s.links.ScanPartition(mid, func(_ reldb.RowID, r reldb.Row) bool {
		if r == nil {
			return true
		}
		sid := r[lcStartNodeID].Int64()
		pid := r[lcPValueID].Int64()
		oid := r[lcCanonEndNodeID].Int64()
		ps.Triples++
		subjAll[sid] = struct{}{}
		objAll[oid] = struct{}{}
		pp := per[pid]
		if pp == nil {
			pp = &predSets{subj: map[int64]struct{}{}, obj: map[int64]struct{}{}}
			per[pid] = pp
		}
		pp.count++
		pp.subj[sid] = struct{}{}
		pp.obj[oid] = struct{}{}
		return true
	})
	for pid, pp := range per {
		ps.Preds[pid] = PredStats{
			Count:            pp.count,
			DistinctSubjects: len(pp.subj),
			DistinctObjects:  len(pp.obj),
		}
	}
	ps.DistinctSubjects = len(subjAll)
	ps.DistinctObjects = len(objAll)
	ps.builtLen = s.links.Len()
	return ps
}

// PlanStatistics returns the planner statistics for a model — the public,
// self-locking view of PlanStatsLocked, for tools and tests.
func (s *Store) PlanStatistics(ctx context.Context, model string) (PlanStats, error) {
	var out PlanStats
	err := s.ReadView(ctx, func(tx *ReadTx) error {
		mid, err := tx.ModelIDLocked(model)
		if err != nil {
			return err
		}
		out = *tx.PlanStatsLocked(mid)
		return nil
	})
	return out, err
}

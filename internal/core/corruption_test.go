package core

// Regression tests for error paths that used to be swallowed: scans that
// hit an index entry whose table row cannot be produced must report the
// divergence, not return a silently shorter answer. The tests manufacture
// the divergence white-box, by pointing a store table at an empty
// replacement from a different database so the intact indexes dangle.

import (
	"strings"
	"testing"

	"repro/internal/reldb"
)

// severedModels swaps s.models for an empty table so every modelPK rowid
// dangles.
func severedModels(t *testing.T, s *Store) {
	t.Helper()
	other := reldb.NewDatabase("SCRATCH")
	tbl, err := other.CreateTable(modelSchema())
	if err != nil {
		t.Fatal(err)
	}
	s.models = tbl
}

// severedValues swaps s.values for an empty table so every valuePK rowid
// dangles while the index still claims the IDs exist.
func severedValues(t *testing.T, s *Store) {
	t.Helper()
	other := reldb.NewDatabase("SCRATCH")
	tbl, err := other.CreateTable(valueSchema())
	if err != nil {
		t.Fatal(err)
	}
	s.values = tbl
}

func TestModelNamesSurfacesCatalogCorruption(t *testing.T) {
	s := newStoreWithModel(t, "m")
	if names, err := s.ModelNames(); err != nil || len(names) != 1 {
		t.Fatalf("healthy ModelNames = %v, %v", names, err)
	}
	severedModels(t, s)
	names, err := s.ModelNames()
	if err == nil {
		t.Fatalf("ModelNames on corrupt catalog returned %v with no error", names)
	}
	if !strings.Contains(err.Error(), "unreadable") {
		t.Fatalf("ModelNames error %q does not describe the unreadable row", err)
	}
}

func TestModelStatisticsSurfacesUnreadableValues(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	ts, err := s.NewTripleS("m", "gov:s", "gov:p", "gov:o", a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reify("m", ts.TID); err != nil {
		t.Fatal(err)
	}
	if stats, err := s.ModelStatistics("m"); err != nil || stats.Reified != 1 {
		t.Fatalf("healthy ModelStatistics = %+v, %v", stats, err)
	}
	severedValues(t, s)
	if stats, err := s.ModelStatistics("m"); err == nil {
		t.Fatalf("ModelStatistics with unreadable values returned %+v with no error", stats)
	}
}

func TestCheckInvariantsReportsUnreadableValues(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	if _, err := s.NewTripleS("m", "gov:s", "gov:p", "gov:o", a); err != nil {
		t.Fatal(err)
	}
	if errs := s.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("healthy store has violations: %v", errs)
	}
	severedValues(t, s)
	errs := s.CheckInvariants()
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "indexed in rdf_value$ but unreadable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("invariant sweep did not report the index/table divergence: %v", errs)
	}
}

package rdfxml

import (
	"strings"
	"testing"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
)

func parse(t *testing.T, doc string, opts Options) []ntriples.Triple {
	t.Helper()
	ts, err := Parse(strings.NewReader(doc), opts)
	if err != nil {
		t.Fatalf("Parse: %v\ndoc:\n%s", err, doc)
	}
	return ts
}

// has reports whether a triple (by lexical match) is present.
func has(ts []ntriples.Triple, s, p, o string) bool {
	for _, t := range ts {
		if t.Subject.Lexical() == s && t.Predicate.Value == p && t.Object.Lexical() == o {
			return true
		}
	}
	return false
}

const up = "http://purl.uniprot.org/core/"

func TestParseTypedNodeWithProperties(t *testing.T) {
	doc := `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:up="http://purl.uniprot.org/core/"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#">
  <up:Protein rdf:about="urn:lsid:uniprot.org:uniprot:P93259">
    <up:mnemonic>CALM_PROBE</up:mnemonic>
    <rdfs:seeAlso rdf:resource="urn:lsid:uniprot.org:smart:SM00101"/>
    <up:mass rdf:datatype="http://www.w3.org/2001/XMLSchema#int">16838</up:mass>
    <rdfs:label xml:lang="en">calmodulin</rdfs:label>
  </up:Protein>
</rdf:RDF>`
	ts := parse(t, doc, Options{})
	if len(ts) != 5 {
		t.Fatalf("parsed %d triples, want 5:\n%v", len(ts), ts)
	}
	sub := "urn:lsid:uniprot.org:uniprot:P93259"
	if !has(ts, sub, rdfterm.RDFType, up+"Protein") {
		t.Error("typed node rdf:type missing")
	}
	if !has(ts, sub, up+"mnemonic", "CALM_PROBE") {
		t.Error("text literal missing")
	}
	if !has(ts, sub, rdfterm.RDFSSeeAlso, "urn:lsid:uniprot.org:smart:SM00101") {
		t.Error("rdf:resource missing")
	}
	for _, tr := range ts {
		if tr.Predicate.Value == up+"mass" {
			if tr.Object.Datatype != rdfterm.XSDInt || tr.Object.Value != "16838" {
				t.Errorf("typed literal = %v", tr.Object)
			}
		}
		if tr.Predicate.Value == rdfterm.RDFSNS+"label" {
			if tr.Object.Language != "en" {
				t.Errorf("lang literal = %v", tr.Object)
			}
		}
	}
}

func TestParseDescriptionAndNesting(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:ex="http://ex#">
  <rdf:Description rdf:about="http://a">
    <ex:knows>
      <rdf:Description rdf:about="http://b">
        <ex:name>Bee</ex:name>
      </rdf:Description>
    </ex:knows>
  </rdf:Description>
</rdf:RDF>`
	ts := parse(t, doc, Options{})
	if !has(ts, "http://a", "http://ex#knows", "http://b") {
		t.Errorf("nested node triple missing: %v", ts)
	}
	if !has(ts, "http://b", "http://ex#name", "Bee") {
		t.Errorf("inner literal missing: %v", ts)
	}
	if len(ts) != 2 {
		t.Fatalf("parsed %d, want 2", len(ts))
	}
}

func TestParseBlankNodes(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:ex="http://ex#">
  <rdf:Description rdf:nodeID="b1">
    <ex:p rdf:nodeID="b2"/>
  </rdf:Description>
  <rdf:Description>
    <ex:q>anon subject</ex:q>
  </rdf:Description>
</rdf:RDF>`
	ts := parse(t, doc, Options{})
	if len(ts) != 2 {
		t.Fatalf("parsed %d, want 2: %v", len(ts), ts)
	}
	if ts[0].Subject != rdfterm.NewBlank("b1") || ts[0].Object != rdfterm.NewBlank("b2") {
		t.Errorf("nodeID triple = %v", ts[0])
	}
	if ts[1].Subject.Kind != rdfterm.Blank {
		t.Errorf("anonymous description subject = %v", ts[1].Subject)
	}
}

func TestParseRdfIDSubjectAndBase(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:ex="http://ex#">
  <rdf:Description rdf:ID="thing">
    <ex:p rdf:resource="other"/>
  </rdf:Description>
</rdf:RDF>`
	ts := parse(t, doc, Options{Base: "http://base"})
	if !has(ts, "http://base#thing", "http://ex#p", "http://base/other") {
		t.Errorf("resolved triple missing: %v", ts)
	}
}

// TestParseStatementReification: rdf:ID on a property element emits the
// reification quad (§2's vocabulary) — which reify.Loader then folds.
func TestParseStatementReification(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:gov="http://gov#">
  <rdf:Description rdf:about="http://gov/files">
    <gov:terrorSuspect rdf:ID="claim1" rdf:resource="http://id/JohnDoe"/>
  </rdf:Description>
</rdf:RDF>`
	ts := parse(t, doc, Options{Base: "http://base"})
	if len(ts) != 5 { // base + 4 quad rows
		t.Fatalf("parsed %d, want 5: %v", len(ts), ts)
	}
	r := "http://base#claim1"
	if !has(ts, "http://gov/files", "http://gov#terrorSuspect", "http://id/JohnDoe") {
		t.Error("base triple missing")
	}
	if !has(ts, r, rdfterm.RDFType, rdfterm.RDFStatement) ||
		!has(ts, r, rdfterm.RDFSubject, "http://gov/files") ||
		!has(ts, r, rdfterm.RDFPredicate, "http://gov#terrorSuspect") ||
		!has(ts, r, rdfterm.RDFObject, "http://id/JohnDoe") {
		t.Errorf("reification quad incomplete: %v", ts)
	}
}

func TestParseContainers(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <rdf:Bag rdf:about="http://class/students">
    <rdf:li rdf:resource="http://s/1"/>
    <rdf:li rdf:resource="http://s/2"/>
    <rdf:li rdf:resource="http://s/3"/>
  </rdf:Bag>
</rdf:RDF>`
	ts := parse(t, doc, Options{})
	if !has(ts, "http://class/students", rdfterm.RDFType, rdfterm.RDFBag) {
		t.Error("bag type missing")
	}
	for i := 1; i <= 3; i++ {
		if !has(ts, "http://class/students", rdfterm.MembershipProperty(i), "http://s/"+string(rune('0'+i))) {
			t.Errorf("member %d missing: %v", i, ts)
		}
	}
}

func TestParsePropertyAttributes(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:ex="http://ex#">
  <rdf:Description rdf:about="http://a" ex:name="Ann" ex:city="Boston"/>
</rdf:RDF>`
	ts := parse(t, doc, Options{})
	if !has(ts, "http://a", "http://ex#name", "Ann") || !has(ts, "http://a", "http://ex#city", "Boston") {
		t.Errorf("property attributes missing: %v", ts)
	}
}

func TestParseParseTypeResource(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:ex="http://ex#">
  <rdf:Description rdf:about="http://a">
    <ex:address rdf:parseType="Resource">
      <ex:street>Main St</ex:street>
      <ex:zip>02134</ex:zip>
    </ex:address>
  </rdf:Description>
</rdf:RDF>`
	ts := parse(t, doc, Options{})
	if len(ts) != 3 {
		t.Fatalf("parsed %d, want 3: %v", len(ts), ts)
	}
	var inner rdfterm.Term
	for _, tr := range ts {
		if tr.Predicate.Value == "http://ex#address" {
			inner = tr.Object
		}
	}
	if inner.Kind != rdfterm.Blank {
		t.Fatalf("parseType=Resource object = %v", inner)
	}
	if !has(ts, inner.Lexical(), "http://ex#street", "Main St") {
		t.Errorf("inner property missing: %v", ts)
	}
}

func TestParseParseTypeLiteral(t *testing.T) {
	doc := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                  xmlns:ex="http://ex#">
  <rdf:Description rdf:about="http://a">
    <ex:markup rdf:parseType="Literal">text with <b>bold</b> inside</ex:markup>
  </rdf:Description>
</rdf:RDF>`
	ts := parse(t, doc, Options{})
	if len(ts) != 1 {
		t.Fatalf("parsed %d: %v", len(ts), ts)
	}
	obj := ts[0].Object
	if obj.Datatype != rdfterm.RDFXMLLit {
		t.Fatalf("datatype = %q", obj.Datatype)
	}
	if !strings.Contains(obj.Value, "<b>bold</b>") {
		t.Fatalf("XMLLiteral = %q", obj.Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		// duplicate rdf:ID
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
		   <rdf:Description rdf:ID="x"/><rdf:Description rdf:ID="x"/>
		 </rdf:RDF>`,
		// multiple subject attributes
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
		   <rdf:Description rdf:about="http://a" rdf:nodeID="b"/>
		 </rdf:RDF>`,
		// unsupported parseType
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:ex="http://ex#">
		   <rdf:Description rdf:about="http://a"><ex:p rdf:parseType="Collection"/></rdf:Description>
		 </rdf:RDF>`,
		// malformed XML
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"><unclosed>`,
	}
	for i, doc := range bad {
		if _, err := Parse(strings.NewReader(doc), Options{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParseRootlessNodeElement(t *testing.T) {
	// A document whose root is itself a typed node element.
	doc := `<up:Protein xmlns:up="http://purl.uniprot.org/core/"
            xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
            rdf:about="urn:p1"><up:mnemonic>M</up:mnemonic></up:Protein>`
	ts := parse(t, doc, Options{})
	if len(ts) != 2 {
		t.Fatalf("parsed %d: %v", len(ts), ts)
	}
	if !has(ts, "urn:p1", rdfterm.RDFType, up+"Protein") {
		t.Error("type triple missing")
	}
}

package wal

import (
	"bytes"
	"errors"
)

// Fault injection for crash testing. A FaultFile stands in for the WAL's
// backing file and misbehaves at a configured byte offset, modelling the
// three ways a crash interacts with an append-only log:
//
//   - FailStop: the write that would reach the offset fails atomically —
//     the process dies between appends, the file ends on a frame boundary
//     of whatever had been written.
//   - ShortWrite: the write tears mid-frame at the offset — the classic
//     torn write of a crash during write(2).
//   - CorruptByte: the byte at the offset is bit-flipped but writing
//     continues — latent media corruption that only the checksum catches.
//
// The crash-point matrix test in internal/core drives every offset of a
// recorded workload through each mode and proves recovery.

// FaultMode selects the misbehavior.
type FaultMode int

// The fault modes.
const (
	FailStop FaultMode = iota
	ShortWrite
	CorruptByte
)

// String names the mode for test labels.
func (m FaultMode) String() string {
	switch m {
	case FailStop:
		return "FailStop"
	case ShortWrite:
		return "ShortWrite"
	case CorruptByte:
		return "CorruptByte"
	default:
		return "FaultMode(?)"
	}
}

// ErrInjected is returned by a tripped FaultFile.
var ErrInjected = errors.New("wal: injected fault")

// FaultFile is an in-memory File that injects a fault at byte FailAt.
type FaultFile struct {
	// FailAt is the global byte offset (counting every byte ever written,
	// header included) at which the fault fires.
	FailAt int64
	// Mode selects what happens at FailAt.
	Mode FaultMode

	buf     bytes.Buffer
	written int64
	tripped bool
}

// Write appends p, injecting the configured fault when the write crosses
// FailAt.
func (f *FaultFile) Write(p []byte) (int, error) {
	if f.tripped {
		return 0, ErrInjected
	}
	end := f.written + int64(len(p))
	if end <= f.FailAt || f.Mode == CorruptByte {
		if f.Mode == CorruptByte && f.written <= f.FailAt && f.FailAt < end {
			// Flip one bit at the fault offset, then carry on as if the
			// write succeeded — silent corruption.
			q := append([]byte(nil), p...)
			q[f.FailAt-f.written] ^= 0x01
			p = q
		}
		f.buf.Write(p)
		f.written = end
		return len(p), nil
	}
	f.tripped = true
	switch f.Mode {
	case FailStop:
		// Nothing of this write lands.
		return 0, ErrInjected
	default: // ShortWrite
		n := int(f.FailAt - f.written)
		f.buf.Write(p[:n])
		f.written += int64(n)
		return n, ErrInjected
	}
}

// Sync fails once the fault has fired (the kernel would have no file to
// flush to), succeeds otherwise.
func (f *FaultFile) Sync() error {
	if f.tripped {
		return ErrInjected
	}
	return nil
}

// Close is a no-op so post-mortem Bytes() still works.
func (f *FaultFile) Close() error { return nil }

// Bytes returns the surviving file image — what recovery gets to read.
func (f *FaultFile) Bytes() []byte { return f.buf.Bytes() }

// Written returns the number of bytes durably written.
func (f *FaultFile) Written() int64 { return f.written }

// BufferFile is a plain in-memory File with no faults, used to record a
// golden log image in tests.
type BufferFile struct {
	bytes.Buffer
}

// Sync is a no-op for an in-memory file.
func (b *BufferFile) Sync() error { return nil }

// Close is a no-op.
func (b *BufferFile) Close() error { return nil }

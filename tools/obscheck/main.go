// Command obscheck scrapes a running admin endpoint and fails when the
// exposition is unparseable or thinner than expected — the CI gate for
// the -admin surface.
//
// Usage:
//
//	obscheck -base http://127.0.0.1:9090 [-min-series 20] [-prefixes wal_,core_] [-series wal_disk_bytes,wal_segments]
//
// It GETs /metrics, parses it with the strict Prometheus-text parser
// the admin handler's golden test uses, and checks the family count,
// per-subsystem prefixes, and any exact family names demanded with
// -series; then GETs /healthz and requires a well-formed
// JSON health payload. Exit status 0 means the endpoint serves what a
// scraper needs.
//
// With -trace it additionally validates the /debug/traces explorer of a
// full rdfserve: the list must be well-formed JSON, every listed trace
// must be retrievable by its ID with a parseable span tree, and with
// -trace-min-retained N the store must hold at least N traces — the CI
// server-smoke job demands >= 1 after its slow-query burst, proving
// tail sampling retained something worth debugging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	base := fs.String("base", "http://127.0.0.1:9090", "admin endpoint base URL")
	minSeries := fs.Int("min-series", 20, "minimum metric families /metrics must expose")
	prefixes := fs.String("prefixes", "", "comma-separated series prefixes that must be present (e.g. wal_,core_)")
	series := fs.String("series", "", "comma-separated exact family names that must be present (e.g. wal_disk_bytes,wal_segments)")
	wait := fs.Duration("wait", 10*time.Second, "keep retrying the first scrape this long (endpoint may still be starting)")
	checkTraces := fs.Bool("trace", false, "also validate the /debug/traces explorer (list JSON, per-ID lookup)")
	minRetained := fs.Int("trace-min-retained", 0, "with -trace, minimum retained traces the store must hold")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exp, err := scrape(*base+"/metrics", *wait)
	if err != nil {
		return err
	}
	if got := exp.Families(); got < *minSeries {
		return fmt.Errorf("/metrics exposes %d families, want >= %d", got, *minSeries)
	}
	if *prefixes != "" {
		for _, p := range strings.Split(*prefixes, ",") {
			if p = strings.TrimSpace(p); p != "" && !exp.HasPrefix(p) {
				return fmt.Errorf("/metrics has no %s* series", p)
			}
		}
	}
	if *series != "" {
		for _, name := range strings.Split(*series, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			if _, ok := exp.Types[name]; !ok {
				return fmt.Errorf("/metrics has no %s family", name)
			}
		}
	}

	resp, err := http.Get(*base + "/healthz")
	if err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	defer resp.Body.Close()
	var h obs.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("/healthz is not valid JSON: %w", err)
	}
	if h.State == "" {
		return fmt.Errorf("/healthz payload has no state: %+v", h)
	}
	if *checkTraces {
		retained, err := checkTraceExplorer(*base, *minRetained)
		if err != nil {
			return err
		}
		fmt.Printf("ok: %d families, healthz %s (%s), %d traces retained\n",
			exp.Families(), resp.Status, h.State, retained)
		return nil
	}
	fmt.Printf("ok: %d families, healthz %s (%s)\n", exp.Families(), resp.Status, h.State)
	return nil
}

// checkTraceExplorer validates the trace explorer: a well-formed list,
// at least minRetained retained traces, and every listed ID retrievable
// as a parseable span tree. The explorer is a sibling of /metrics and
// /healthz under the same base — rdfserve serves all three under
// /debug, so the -base used for the scrape works unchanged.
func checkTraceExplorer(base string, minRetained int) (int, error) {
	resp, err := http.Get(base + "/traces")
	if err != nil {
		return 0, fmt.Errorf("/debug/traces: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/debug/traces: status %s", resp.Status)
	}
	var list struct {
		Retained int `json:"retained"`
		Traces   []struct {
			ID       string `json:"id"`
			Root     string `json:"root"`
			Reason   string `json:"reason"`
			Duration int64  `json:"duration_ns"`
			Spans    int    `json:"span_count"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return 0, fmt.Errorf("/debug/traces is not valid JSON: %w", err)
	}
	if list.Retained < minRetained {
		return list.Retained, fmt.Errorf("/debug/traces retains %d traces, want >= %d", list.Retained, minRetained)
	}
	for _, t := range list.Traces {
		if t.ID == "" || t.Root == "" || t.Reason == "" {
			return list.Retained, fmt.Errorf("/debug/traces lists a malformed summary: %+v", t)
		}
		one, err := http.Get(base + "/traces/" + t.ID)
		if err != nil {
			return list.Retained, fmt.Errorf("/debug/traces/%s: %w", t.ID, err)
		}
		var td struct {
			ID    string `json:"id"`
			Spans []struct {
				ID   string `json:"id"`
				Name string `json:"name"`
			} `json:"spans"`
		}
		derr := json.NewDecoder(one.Body).Decode(&td)
		one.Body.Close()
		if one.StatusCode != http.StatusOK {
			return list.Retained, fmt.Errorf("/debug/traces/%s: status %s (listed but not retrievable)", t.ID, one.Status)
		}
		if derr != nil {
			return list.Retained, fmt.Errorf("/debug/traces/%s is not valid JSON: %w", t.ID, derr)
		}
		if td.ID != t.ID || len(td.Spans) == 0 {
			return list.Retained, fmt.Errorf("/debug/traces/%s: id=%q with %d spans", t.ID, td.ID, len(td.Spans))
		}
		for _, sp := range td.Spans {
			if sp.ID == "" || sp.Name == "" {
				return list.Retained, fmt.Errorf("/debug/traces/%s has a malformed span: %+v", t.ID, sp)
			}
		}
	}
	return list.Retained, nil
}

// scrape GETs and strictly parses the exposition, retrying until the
// endpoint answers or the wait budget runs out.
func scrape(url string, wait time.Duration) (*obs.Exposition, error) {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(url)
		if err == nil {
			exp, perr := obs.ParseExposition(resp.Body)
			resp.Body.Close()
			if perr != nil {
				return nil, fmt.Errorf("%s unparseable: %w", url, perr)
			}
			return exp, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%s unreachable: %w", url, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

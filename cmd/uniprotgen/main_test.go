package main

import (
	"strings"
	"testing"

	"repro/internal/ntriples"
	"repro/internal/rdfxml"
	"repro/internal/uniprot"
)

func TestGenerateBase(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-triples", "200", "-reified", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	ts, err := ntriples.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 200 {
		t.Fatalf("emitted %d triples", len(ts))
	}
}

func TestGenerateQuads(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-triples", "200", "-reified", "10", "-quads"}, &out); err != nil {
		t.Fatal(err)
	}
	ts, err := ntriples.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 200+4*10 {
		t.Fatalf("emitted %d triples, want 240", len(ts))
	}
	// The probe statement's quad is present.
	var hasProbeQuadSubject bool
	for _, tr := range ts {
		if tr.Predicate.Value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#object" &&
			tr.Object.Value == uniprot.ProbeSeeAlso {
			hasProbeQuadSubject = true
		}
	}
	if !hasProbeQuadSubject {
		t.Fatal("probe quad missing")
	}
}

func TestDefaultReifiedCount(t *testing.T) {
	var out strings.Builder
	// -reified defaults to the paper's count for the size.
	if err := run([]string{"-triples", "10000"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out.String(), "\n")
	if lines != 10000 {
		t.Fatalf("emitted %d lines", lines)
	}
}

func TestBadArgs(t *testing.T) {
	if err := run([]string{"-triples", "3"}, &strings.Builder{}); err == nil {
		t.Fatal("tiny dataset accepted")
	}
}

func TestGenerateXMLFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-triples", "100", "-reified", "5", "-format", "xml"}, &out); err != nil {
		t.Fatal(err)
	}
	ts, err := rdfxml.Parse(strings.NewReader(out.String()), rdfxml.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 100 {
		t.Fatalf("XML corpus parsed to %d triples", len(ts))
	}
	if err := run([]string{"-format", "weird"}, &strings.Builder{}); err == nil {
		t.Fatal("bad format accepted")
	}
}

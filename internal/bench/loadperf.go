package bench

// Bulk-load throughput measurement (Experiment I's "set-up cost" angle,
// §7.3): how fast triples move from N-Triples text into the central
// schema, per-triple vs the batched fast path, with and without a WAL.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ntriples"
	"repro/internal/reify"
	"repro/internal/uniprot"
	"repro/internal/wal"

	"repro/internal/core"
)

// LoadConfig describes one bulk-load measurement.
type LoadConfig struct {
	// Triples is the corpus size.
	Triples int
	// WAL enables write-ahead logging during the load.
	WAL bool
	// Batch is the Loader batch size; 0 or 1 is the per-triple path.
	Batch int
	// Workers follows reify.Loader semantics: 0 or 1 serial, < 0 all CPUs.
	Workers int
	// SyncEvery > 1 wraps the WAL in group commit (fsync every N commits).
	SyncEvery int
	// Trials is the number of timed runs averaged; < 1 means 1.
	Trials int
}

// LoadResult is a completed measurement.
type LoadResult struct {
	Config        LoadConfig
	Seconds       float64
	TriplesPerSec float64
}

// GenerateNT renders a deterministic UniProt-like corpus (§7.1) as
// N-Triples text for load benchmarking.
func GenerateNT(triples int, seed int64) (string, error) {
	var b strings.Builder
	_, err := uniprot.Stream(uniprot.Config{Triples: triples, Seed: seed},
		func(t ntriples.Triple, _ bool) error {
			b.WriteString(t.String())
			b.WriteByte('\n')
			return nil
		})
	return b.String(), err
}

// MeasureLoad loads doc into a fresh store per the config, Trials times,
// and reports the mean wall-clock throughput. The timed region covers
// parsing, insertion, and (under WAL) making every record durable — the
// group-commit buffer is flushed inside the clock. WAL files are created
// under dir and removed afterwards.
func MeasureLoad(cfg LoadConfig, doc string, dir string) (LoadResult, error) {
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	var total time.Duration
	for i := 0; i < trials; i++ {
		st := core.New()
		if _, err := st.CreateRDFModel("bench", "", ""); err != nil {
			return LoadResult{}, err
		}
		var log *wal.Log
		var group *wal.GroupLog
		var walFile string
		if cfg.WAL {
			walFile = filepath.Join(dir, fmt.Sprintf("load-%d.wal", i))
			var err error
			log, _, err = wal.OpenFile(walFile)
			if err != nil {
				return LoadResult{}, err
			}
			if cfg.SyncEvery > 1 {
				group = wal.Group(log, wal.GroupOptions{SyncEvery: cfg.SyncEvery})
				st.SetDurability(group)
			} else {
				st.SetDurability(log)
			}
		}
		loader := &reify.Loader{
			Store:     st,
			Model:     "bench",
			Workers:   cfg.Workers,
			BatchSize: cfg.Batch,
		}
		start := time.Now()
		_, err := loader.Load(strings.NewReader(doc))
		if err == nil && group != nil {
			err = group.Flush()
		}
		total += time.Since(start)
		if log != nil {
			if group != nil {
				group.Close()
			} else {
				log.Close()
			}
			os.Remove(walFile)
		}
		if err != nil {
			return LoadResult{}, err
		}
	}
	secs := total.Seconds() / float64(trials)
	return LoadResult{
		Config:        cfg,
		Seconds:       secs,
		TriplesPerSec: float64(cfg.Triples) / secs,
	}, nil
}

// Command rdfbench is the load generator and chaos harness for
// rdfserve. It drives thousands of concurrent connections through the
// HTTP query surface with a mixed read/write workload and verifies the
// robustness contract end to end:
//
//   - zero corrupt reads: sentinel triples inserted before the run are
//     re-read continuously; any response that returns a sentinel with
//     the wrong value counts as corruption (the run fails),
//   - over-limit requests are rejected with typed 429/503 envelopes,
//     never hung: every request completes within the client-side hang
//     budget or the run fails,
//   - graceful drain: shutdown fires while load is still running, and
//     every in-flight request must terminate within its deadline.
//
// Two modes:
//
//	rdfbench -base http://127.0.0.1:8080        # drive a running server
//	rdfbench -conns 1000 -duration 10s          # self-serve chaos drill
//
// Without -base, rdfbench starts an in-process rdfserve-equivalent over
// a supervised store whose WAL is wrapped with a deterministic fault
// injector (-chaos-wal-write-rate), so the bench exercises the
// Degraded/Recovering 503 paths and WAL recovery under fire, then
// shuts the server down mid-load to verify the drain contract. With
// -segmented-wal (or any of the -wal-*-bytes / -chaos-wal-enospc-rate
// knobs) the store runs on the segmented WAL instead: rotation, disk
// budgets, automatic checkpoints, and the Degraded(disk) 507 path under
// injected ENOSPC. Results
// (p50/p99 latency per endpoint, status and rejection tallies,
// corruption and hang counts) print as a table and, with -json, land
// in a machine-readable report (BENCH_6.json in CI).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/supervise"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdfbench:", err)
		os.Exit(1)
	}
}

const (
	numSentinels = 64
	numChain     = 16
)

type config struct {
	base         string
	conns        int
	duration     time.Duration
	model        string
	jsonPath     string
	chaosRate    float64
	chaosSeed    int64
	burst        int
	inflight     int64
	hangSlack    time.Duration
	segmented    bool
	segmentBytes int64
	softBytes    int64
	hardBytes    int64
	enospcRate   float64
}

// newFlagSet defines every rdfbench knob in one place; the knob table
// in SERVING.md documents the same set, and main_test.go fails when
// either side drifts.
func newFlagSet() (*flag.FlagSet, *config) {
	fs := flag.NewFlagSet("rdfbench", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.base, "base", "", "base URL of a running rdfserve (empty = self-serve chaos mode)")
	fs.IntVar(&cfg.conns, "conns", 1000, "concurrent connections")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "steady-state load duration")
	fs.StringVar(&cfg.model, "model", "bench", "model name")
	fs.StringVar(&cfg.jsonPath, "json", "", "write the machine-readable report to this file")
	fs.Float64Var(&cfg.chaosRate, "chaos-wal-write-rate", 0.02, "self-serve: probability each WAL write fails")
	fs.Int64Var(&cfg.chaosSeed, "chaos-seed", 1, "self-serve: fault injector seed")
	fs.BoolVar(&cfg.segmented, "segmented-wal", false, "self-serve: segmented WAL directory instead of a single log file")
	fs.Int64Var(&cfg.segmentBytes, "wal-segment-bytes", 0, "self-serve: segment rotation threshold in bytes (0 = 64 MiB default; implies -segmented-wal)")
	fs.Int64Var(&cfg.softBytes, "wal-soft-bytes", 0, "self-serve: soft disk watermark triggering automatic checkpoints (implies -segmented-wal)")
	fs.Int64Var(&cfg.hardBytes, "wal-hard-bytes", 0, "self-serve: hard disk budget — writes past it answer 507 until recovery frees segments (implies -segmented-wal)")
	fs.Float64Var(&cfg.enospcRate, "chaos-wal-enospc-rate", 0, "self-serve: probability each segment write fails with injected ENOSPC (implies -segmented-wal)")
	fs.IntVar(&cfg.burst, "burst", 256, "size of the synchronized heavy-query burst that must overflow admission")
	fs.Int64Var(&cfg.inflight, "max-inflight", 32, "self-serve: server admission capacity (small, so the burst rejects)")
	fs.DurationVar(&cfg.hangSlack, "hang-slack", 15*time.Second, "client-side hang budget past the server's max timeout")
	return fs, cfg
}

func run(args []string, stdout io.Writer) error {
	fs, cfgp := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := *cfgp
	if cfg.conns < 1 {
		return errors.New("-conns must be >= 1")
	}
	if cfg.segmentBytes > 0 || cfg.softBytes > 0 || cfg.hardBytes > 0 || cfg.enospcRate > 0 {
		cfg.segmented = true
	}

	b := newBench(cfg)
	if cfg.base == "" {
		stop, injected, err := b.startSelfServe(stdout)
		if err != nil {
			return err
		}
		defer stop()
		b.injectedFailures = injected
	}
	if err := b.prepare(); err != nil {
		return err
	}
	if b.armChaos != nil {
		// Faults arm only after the seed data is durably in: the drill
		// is about serving under faults, not about seeding the store.
		b.armChaos()
	}
	b.steadyState(stdout)
	b.burstPhase(stdout)
	if cfg.base == "" {
		if err := b.tracePhase(stdout); err != nil {
			return err
		}
		if err := b.drainPhase(stdout); err != nil {
			return err
		}
	}
	return b.report(stdout)
}

// bench holds the run's shared state and counters.
type bench struct {
	cfg    config
	client *http.Client
	srv    *server.Server // self-serve only
	sup    *supervise.Supervisor

	mu        sync.Mutex
	latencies map[string][]time.Duration // endpoint -> samples
	statuses  map[int]int64
	codes     map[string]int64
	slowest   []slowSample // ten slowest requests with their trace IDs

	corrupt  atomic.Int64
	hung     atomic.Int64
	netErrs  atomic.Int64
	requests atomic.Int64

	burstRejected    int64
	burstOK          int64
	drainResult      *drainReport
	traceResult      *traceReport
	injectedFailures func() (int, int)
	armChaos         func()
}

// traceReport is the self-serve trace-retention verification: after the
// chaos run, /debug/traces must hold at least one slow or errored trace
// and a retained trace must be retrievable by its ID.
type traceReport struct {
	Retained     int    `json:"retained"`
	VerifiedID   string `json:"verified_id,omitempty"`
	LookupStatus int    `json:"lookup_status"`
}

type drainReport struct {
	InflightAtDrain int64 `json:"inflight_at_drain"`
	Completed       int64 `json:"completed"`
	Hung            int64 `json:"hung"`
	Rejected503     int64 `json:"rejected_shutting_down"`
	DrainMS         int64 `json:"drain_ms"`
}

func newBench(cfg config) *bench {
	return &bench{
		cfg: cfg,
		client: &http.Client{
			Timeout: 30*time.Second + cfg.hangSlack,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.conns + cfg.burst,
				MaxIdleConnsPerHost: cfg.conns + cfg.burst,
				MaxConnsPerHost:     0,
			},
		},
		latencies: map[string][]time.Duration{},
		statuses:  map[int]int64{},
		codes:     map[string]int64{},
	}
}

// startSelfServe boots an in-process server over a supervised store
// with WAL fault injection, in a temp dir.
func (b *bench) startSelfServe(stdout io.Writer) (stop func(), injected func() (int, int), err error) {
	dir, err := os.MkdirTemp("", "rdfbench-*")
	if err != nil {
		return nil, nil, err
	}

	var flakyMu sync.Mutex
	var flakies []*wal.FlakyFile
	var armed bool // faults arm after the seed insert (armChaos)
	scfg := supervise.Config{
		SnapshotPath: filepath.Join(dir, "bench.snap"),
		Obs:          obs.NewRegistry(),
	}
	if b.cfg.segmented {
		scfg.WALDir = filepath.Join(dir, "bench.wal.d")
		scfg.Segment = wal.DirOptions{
			SegmentBytes: b.cfg.segmentBytes,
			Budget:       wal.Budget{SoftBytes: b.cfg.softBytes, HardBytes: b.cfg.hardBytes},
		}
		if b.cfg.enospcRate > 0 {
			var seq int64
			scfg.Segment.Wrap = func(f wal.File) wal.File {
				fl := wal.NewFlaky(f)
				flakyMu.Lock()
				seq++
				if armed {
					fl.SetNoSpaceRate(b.cfg.enospcRate, b.cfg.chaosSeed+seq)
				}
				flakies = append(flakies, fl)
				flakyMu.Unlock()
				return fl
			}
			b.armChaos = func() {
				flakyMu.Lock()
				defer flakyMu.Unlock()
				armed = true
				for i, fl := range flakies {
					fl.SetNoSpaceRate(b.cfg.enospcRate, b.cfg.chaosSeed+int64(i)+1)
				}
			}
		}
	} else {
		scfg.WALPath = filepath.Join(dir, "bench.wal")
	}
	if b.cfg.chaosRate > 0 && !b.cfg.segmented {
		scfg.OpenWAL = func(path string) (*wal.Log, wal.ScanResult, error) {
			return wal.OpenFileWith(path, func(f wal.File) wal.File {
				fl := wal.NewFlaky(f)
				flakyMu.Lock()
				if armed {
					fl.SetErrorRate(b.cfg.chaosRate, 0, b.cfg.chaosSeed)
				}
				flakies = append(flakies, fl)
				flakyMu.Unlock()
				return fl
			})
		}
		b.armChaos = func() {
			flakyMu.Lock()
			defer flakyMu.Unlock()
			armed = true
			for _, fl := range flakies {
				fl.SetErrorRate(b.cfg.chaosRate, 0, b.cfg.chaosSeed)
			}
		}
	}
	sup, err := supervise.Open(scfg)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	b.sup = sup

	srv, err := server.New(server.Config{
		Backend:       sup,
		DefaultModels: []string{b.cfg.model},
		Registry:      scfg.Obs,
		// Tail-sampling defaults: the chaos run's injected faults and
		// the burst's slow joins must land in the retained set, which
		// tracePhase verifies through /debug/traces.
		Tracer:      trace.New(trace.Config{SlowThreshold: 100 * time.Millisecond, SampleRate: 0.01}),
		MaxInflight: b.cfg.inflight,
		MaxQueue:    64,
		QueueWait:   200 * time.Millisecond,
		DrainGrace:  time.Second,
	})
	if err != nil {
		sup.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	b.srv = srv
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sup.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	go srv.Serve(ln)
	b.cfg.base = "http://" + ln.Addr().String()
	if b.cfg.segmented {
		fmt.Fprintf(stdout, "self-serve: %s (segmented WAL, ENOSPC rate %.2f, capacity %d)\n",
			b.cfg.base, b.cfg.enospcRate, b.cfg.inflight)
	} else {
		fmt.Fprintf(stdout, "self-serve: %s (chaos write rate %.2f, capacity %d)\n",
			b.cfg.base, b.cfg.chaosRate, b.cfg.inflight)
	}

	injected = func() (int, int) {
		flakyMu.Lock()
		defer flakyMu.Unlock()
		var w, s int
		for _, f := range flakies {
			fw, fs := f.InjectedFailures()
			w += fw
			s += fs
		}
		return w, s
	}
	stop = func() {
		sup.Close()
		os.RemoveAll(dir)
	}
	return stop, injected, nil
}

// prepare creates the model, the sentinel triples whose values every
// read phase re-verifies, and a small edge chain for /traverse.
func (b *bench) prepare() error {
	triples := make([]map[string]string, 0, numSentinels+numChain)
	for i := 0; i < numSentinels; i++ {
		triples = append(triples, map[string]string{
			"s": fmt.Sprintf("<urn:bench:sentinel:%d>", i),
			"p": "<urn:bench:p>",
			"o": sentinelValue(i),
		})
	}
	for i := 0; i < numChain; i++ {
		triples = append(triples, map[string]string{
			"s": fmt.Sprintf("<urn:bench:n%d>", i),
			"p": "<urn:bench:edge>",
			"o": fmt.Sprintf("<urn:bench:n%d>", i+1),
		})
	}
	// Join fodder for the burst phase: two all-to-all 30-wide layers, so
	// the burst's 2-hop join expands to 27k intermediate bindings and
	// each query is slow enough that a synchronized burst overflows the
	// admission queue instead of draining through it.
	for layer := 0; layer < 2; layer++ {
		for i := 0; i < 30; i++ {
			for j := 0; j < 30; j++ {
				triples = append(triples, map[string]string{
					"s": fmt.Sprintf("<urn:bench:j%d:%d>", layer, i),
					"p": "<urn:bench:join>",
					"o": fmt.Sprintf("<urn:bench:j%d:%d>", layer+1, j),
				})
			}
		}
	}
	// Join-shape fodder for the steady-state join mix: a selective
	// 3-pattern chain (one "target"-typed leaf among 40) and a star hub
	// with two 12-wide spoke fans — the shapes the cost planner reorders,
	// so the serving path exercises statistics and plan caching under
	// concurrent writes.
	for i := 0; i < 40; i++ {
		typ := `"noise"`
		if i == 20 {
			typ = `"target"`
		}
		triples = append(triples,
			map[string]string{"s": fmt.Sprintf("<urn:bench:cr%d>", i), "p": "<urn:bench:cp1>", "o": fmt.Sprintf("<urn:bench:cm%d>", i)},
			map[string]string{"s": fmt.Sprintf("<urn:bench:cm%d>", i), "p": "<urn:bench:cp2>", "o": fmt.Sprintf("<urn:bench:cl%d>", i)},
			map[string]string{"s": fmt.Sprintf("<urn:bench:cl%d>", i), "p": "<urn:bench:ctype>", "o": typ},
		)
	}
	for i := 0; i < 12; i++ {
		triples = append(triples,
			map[string]string{"s": "<urn:bench:hub>", "p": "<urn:bench:hp1>", "o": fmt.Sprintf("<urn:bench:ha%d>", i)},
			map[string]string{"s": "<urn:bench:hub>", "p": "<urn:bench:hp2>", "o": fmt.Sprintf("<urn:bench:hb%d>", i)},
		)
	}
	triples = append(triples, map[string]string{"s": "<urn:bench:hub>", "p": "<urn:bench:ctype>", "o": `"hub"`})
	body := map[string]any{"model": b.cfg.model, "create_model": true, "triples": triples}
	// The seed insert must land; under chaos the first attempts may hit
	// injected WAL faults, so retry through the degraded episodes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, respBody, _, err := b.do("POST", "/insert", body, "")
		if err == nil && status == 200 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("seed insert never landed (last status %d, err %v, body %s)", status, err, respBody)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func sentinelValue(i int) string { return fmt.Sprintf("%q", fmt.Sprintf("sval-%d", i)) }

// do issues one request and returns (status, body, latency). The
// response's X-Trace-Id (empty when the server traces nothing) lands in
// b.lastTrace bookkeeping via record.
func (b *bench) do(method, path string, body any, tenant string) (int, []byte, time.Duration, error) {
	status, data, _, lat, err := b.doTraced(method, path, body, tenant)
	return status, data, lat, err
}

// doTraced is do plus the response's X-Trace-Id.
func (b *bench) doTraced(method, path string, body any, tenant string) (int, []byte, string, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		bb, err := json.Marshal(body)
		if err != nil {
			return 0, nil, "", 0, err
		}
		rd = bytes.NewReader(bb)
	}
	req, err := http.NewRequest(method, b.cfg.base+path, rd)
	if err != nil {
		return 0, nil, "", 0, err
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	t0 := time.Now()
	resp, err := b.client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		return 0, nil, "", lat, err
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, traceID, time.Since(t0), err
	}
	return resp.StatusCode, data, traceID, time.Since(t0), nil
}

// slowSample is one of the run's slowest requests, with the trace ID an
// operator needs to pull its span tree from /debug/traces.
type slowSample struct {
	Endpoint  string  `json:"endpoint"`
	Status    int     `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
	TraceID   string  `json:"trace_id,omitempty"`
	lat       time.Duration
}

// record books one completed request into the tallies.
func (b *bench) record(endpoint string, status int, bodyBytes []byte, lat time.Duration, err error) {
	b.recordTraced(endpoint, status, bodyBytes, "", lat, err)
}

// recordTraced is record plus slowest-request bookkeeping: the ten
// slowest requests keep their trace IDs for the final report.
func (b *bench) recordTraced(endpoint string, status int, bodyBytes []byte, traceID string, lat time.Duration, err error) {
	b.requests.Add(1)
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			b.hung.Add(1) // the server let a request exceed the hang budget
		} else {
			b.netErrs.Add(1)
		}
		return
	}
	b.mu.Lock()
	b.statuses[status]++
	if status != 200 {
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if json.Unmarshal(bodyBytes, &env) == nil && env.Error.Code != "" {
			b.codes[env.Error.Code]++
		}
	}
	b.latencies[endpoint] = append(b.latencies[endpoint], lat)
	b.slowest = append(b.slowest, slowSample{
		Endpoint: endpoint, Status: status, TraceID: traceID,
		LatencyMS: float64(lat.Microseconds()) / 1000, lat: lat,
	})
	if len(b.slowest) > 10 {
		sort.Slice(b.slowest, func(i, j int) bool { return b.slowest[i].lat > b.slowest[j].lat })
		b.slowest = b.slowest[:10]
	}
	b.mu.Unlock()
}

// verifySentinel checks one sentinel read for corruption.
func (b *bench) verifySentinel(i int, status int, body []byte) {
	if status != 200 {
		return // rejected (degraded/admission) — not a corruption
	}
	var resp struct {
		Triples []struct {
			O string `json:"o"`
		} `json:"triples"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || len(resp.Triples) == 0 {
		b.corrupt.Add(1)
		return
	}
	for _, t := range resp.Triples {
		if t.O != sentinelValue(i) {
			b.corrupt.Add(1)
			return
		}
	}
}

// steadyState drives the mixed workload: sentinel finds (verified),
// pattern queries, traversals, and inserts that keep tripping the WAL
// fault injector.
func (b *bench) steadyState(stdout io.Writer) {
	fmt.Fprintf(stdout, "steady state: %d connections for %s\n", b.cfg.conns, b.cfg.duration)
	stopAt := time.Now().Add(b.cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < b.cfg.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			tenant := fmt.Sprintf("t%d", w%8)
			seq := 0
			for time.Now().Before(stopAt) {
				seq++
				switch r := rng.Float64(); {
				case r < 0.55: // verified sentinel read
					i := rng.Intn(numSentinels)
					// Name the model explicitly: against an external
					// rdfserve the default model is not ours.
					status, body, tid, lat, err := b.doTraced("GET",
						fmt.Sprintf("/find?model=%s&s=%%3Curn%%3Abench%%3Asentinel%%3A%d%%3E",
							url.QueryEscape(b.cfg.model), i), nil, tenant)
					b.recordTraced("find", status, body, tid, lat, err)
					if err == nil {
						b.verifySentinel(i, status, body)
					}
				case r < 0.72: // pattern query
					status, body, tid, lat, err := b.doTraced("POST", "/query", map[string]any{
						"query": "(?s <urn:bench:p> ?o)", "limit": 100,
						"models": []string{b.cfg.model},
					}, tenant)
					b.recordTraced("query", status, body, tid, lat, err)
				case r < 0.80: // join-heavy query (selective chain / star)
					q := `(?x <urn:bench:cp1> ?y) (?y <urn:bench:cp2> ?z) (?z <urn:bench:ctype> "target")`
					if seq%2 == 0 {
						q = `(?h <urn:bench:ctype> "hub") (?h <urn:bench:hp1> ?a) (?h <urn:bench:hp2> ?b)`
					}
					status, body, tid, lat, err := b.doTraced("POST", "/query", map[string]any{
						"query": q, "limit": 200,
						"models": []string{b.cfg.model},
					}, tenant)
					b.recordTraced("query", status, body, tid, lat, err)
				case r < 0.90: // graph traversal
					status, body, tid, lat, err := b.doTraced("POST", "/traverse", map[string]any{
						"op": "shortest_path", "source": "<urn:bench:n0>",
						"target": fmt.Sprintf("<urn:bench:n%d>", numChain),
						"models": []string{b.cfg.model},
					}, tenant)
					b.recordTraced("traverse", status, body, tid, lat, err)
				default: // write — the chaos trigger
					status, body, tid, lat, err := b.doTraced("POST", "/insert", map[string]any{
						"model": b.cfg.model,
						"triples": []map[string]string{{
							"s": fmt.Sprintf("<urn:bench:w%d:%d>", w, seq),
							"p": "<urn:bench:wp>",
							"o": fmt.Sprintf("%q", fmt.Sprintf("v%d", seq)),
						}},
					}, tenant)
					b.recordTraced("insert", status, body, tid, lat, err)
				}
			}
		}(w)
	}
	wg.Wait()
}

// burstPhase fires a synchronized burst of heavy queries sized past the
// admission capacity: the overflow MUST come back as typed 429/503,
// and nothing may hang.
func (b *bench) burstPhase(stdout io.Writer) {
	if b.srv != nil {
		fmt.Fprintf(stdout, "burst: %d simultaneous heavy queries (capacity %d weight units)\n",
			b.cfg.burst, b.cfg.inflight)
	} else {
		fmt.Fprintf(stdout, "burst: %d simultaneous heavy queries\n", b.cfg.burst)
	}
	start := make(chan struct{})
	var warm sync.WaitGroup
	var wg sync.WaitGroup
	var ok, rejected int64
	for i := 0; i < b.cfg.burst; i++ {
		wg.Add(1)
		warm.Add(1)
		go func() {
			defer wg.Done()
			// Pre-establish this goroutine's connection so the burst
			// arrives simultaneously instead of spread across dials.
			b.do("GET", "/healthz", nil, "")
			warm.Done()
			<-start
			status, body, tid, lat, err := b.doTraced("POST", "/query", map[string]any{
				"query":    "(?a <urn:bench:join> ?b) (?b <urn:bench:join> ?c)",
				"order_by": []string{"a", "c"}, "limit": 10000,
				"models": []string{b.cfg.model},
			}, "")
			b.recordTraced("query", status, body, tid, lat, err)
			switch {
			case err == nil && status == 200:
				atomic.AddInt64(&ok, 1)
			case err == nil && (status == 429 || status == 503 || status == 507):
				// 507 joins the typed-rejection family: under disk-pressure
				// chaos the burst can land while the store is Degraded(disk).
				atomic.AddInt64(&rejected, 1)
			}
		}()
	}
	warm.Wait()
	close(start)
	wg.Wait()
	b.burstOK, b.burstRejected = ok, rejected
	fmt.Fprintf(stdout, "burst: %d served, %d rejected with typed 429/503\n", ok, rejected)
}

// tracePhase verifies trace retention end to end (self-serve only, runs
// before drain closes the server): the chaos run's slow and errored
// requests must have left at least one retained trace in /debug/traces,
// and a retained trace must be retrievable by its ID.
func (b *bench) tracePhase(stdout io.Writer) error {
	status, body, _, err := b.do("GET", "/debug/traces?limit=5", nil, "")
	if err != nil || status != 200 {
		return fmt.Errorf("trace check: GET /debug/traces: status %d, err %v", status, err)
	}
	var list struct {
		Retained int `json:"retained"`
		Traces   []struct {
			ID string `json:"id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return fmt.Errorf("trace check: decoding list: %w", err)
	}
	tr := &traceReport{Retained: list.Retained}
	b.traceResult = tr
	if list.Retained == 0 || len(list.Traces) == 0 {
		return errors.New("trace check: chaos run retained no traces — tail sampling never kept a slow/errored request")
	}
	id := list.Traces[0].ID
	status, body, _, err = b.do("GET", "/debug/traces/"+id, nil, "")
	tr.LookupStatus = status
	if err != nil || status != 200 {
		return fmt.Errorf("trace check: GET /debug/traces/%s: status %d, err %v", id, status, err)
	}
	var td struct {
		ID    string            `json:"id"`
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(body, &td); err != nil || td.ID != id || len(td.Spans) == 0 {
		return fmt.Errorf("trace check: trace %s lookup returned id=%q spans=%d (err %v)", id, td.ID, len(td.Spans), err)
	}
	tr.VerifiedID = id
	fmt.Fprintf(stdout, "traces: %d retained, %s retrievable by ID (%d spans)\n", list.Retained, id, len(td.Spans))
	return nil
}

// drainPhase shuts the in-process server down while load is still
// running and verifies every in-flight request terminates promptly.
func (b *bench) drainPhase(stdout io.Writer) error {
	fmt.Fprintln(stdout, "drain: shutting down under load")
	var dr drainReport
	stop := make(chan struct{})
	var drainStarted atomic.Bool
	var wg sync.WaitGroup
	var outstanding atomic.Int64
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				outstanding.Add(1)
				status, body, lat, err := b.do("GET",
					fmt.Sprintf("/find?s=%%3Curn%%3Abench%%3Asentinel%%3A%d%%3E", w%numSentinels), nil, "")
				outstanding.Add(-1)
				if err != nil && drainStarted.Load() {
					// The listener is closing connections; a dial or
					// reuse failure here is the expected end of this
					// worker, not a server fault.
					return
				}
				b.record("find", status, body, lat, err)
				if err == nil && status == 503 {
					var env struct {
						Error struct {
							Code string `json:"code"`
						} `json:"error"`
					}
					if json.Unmarshal(body, &env) == nil && env.Error.Code == "shutting_down" {
						atomic.AddInt64(&dr.Rejected503, 1)
						return // the server is draining; this worker is done
					}
				}
			}
		}(w)
	}
	time.Sleep(200 * time.Millisecond) // let the workers get in flight
	dr.InflightAtDrain = outstanding.Load()

	t0 := time.Now()
	drainStarted.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := b.srv.Shutdown(sctx)
	dr.DrainMS = time.Since(t0).Milliseconds()
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(45 * time.Second):
		dr.Hung = outstanding.Load()
	}
	dr.Completed = dr.InflightAtDrain - dr.Hung
	b.drainResult = &dr
	fmt.Fprintf(stdout, "drain: %d in flight at shutdown, drained in %dms, %d hung\n",
		dr.InflightAtDrain, dr.DrainMS, dr.Hung)
	if err != nil {
		return fmt.Errorf("shutdown under load: %w", err)
	}
	if dr.Hung > 0 {
		return fmt.Errorf("%d requests hung through shutdown", dr.Hung)
	}
	return nil
}

// ---- reporting ----

type endpointStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

type report struct {
	Bench       string                   `json:"bench"`
	Base        string                   `json:"base"`
	Conns       int                      `json:"conns"`
	DurationS   float64                  `json:"duration_s"`
	Requests    int64                    `json:"requests"`
	Endpoints   map[string]endpointStats `json:"endpoints"`
	Statuses    map[string]int64         `json:"statuses"`
	ErrorCodes  map[string]int64         `json:"error_codes"`
	BurstOK     int64                    `json:"burst_served"`
	BurstReject int64                    `json:"burst_rejected"`
	Corrupt     int64                    `json:"corrupt_reads"`
	Hung        int64                    `json:"hung_requests"`
	NetErrs     int64                    `json:"transport_errors"`
	InjectedWAL int                      `json:"injected_wal_write_failures"`
	Slowest     []slowSample             `json:"slowest_requests,omitempty"`
	Traces      *traceReport             `json:"traces,omitempty"`
	Drain       *drainReport             `json:"drain,omitempty"`
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func (b *bench) report(stdout io.Writer) error {
	rep := report{
		Bench:       "server_chaos",
		Base:        b.cfg.base,
		Conns:       b.cfg.conns,
		DurationS:   b.cfg.duration.Seconds(),
		Requests:    b.requests.Load(),
		Endpoints:   map[string]endpointStats{},
		Statuses:    map[string]int64{},
		ErrorCodes:  b.codes,
		BurstOK:     b.burstOK,
		BurstReject: b.burstRejected,
		Corrupt:     b.corrupt.Load(),
		Hung:        b.hung.Load(),
		NetErrs:     b.netErrs.Load(),
		Traces:      b.traceResult,
		Drain:       b.drainResult,
	}
	sort.Slice(b.slowest, func(i, j int) bool { return b.slowest[i].lat > b.slowest[j].lat })
	rep.Slowest = b.slowest
	if b.injectedFailures != nil {
		rep.InjectedWAL, _ = b.injectedFailures()
	}
	for st, n := range b.statuses {
		rep.Statuses[fmt.Sprintf("%d", st)] = n
	}
	for ep, lats := range b.latencies {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.Endpoints[ep] = endpointStats{
			Count: len(lats),
			P50MS: float64(percentile(lats, 0.50).Microseconds()) / 1000,
			P99MS: float64(percentile(lats, 0.99).Microseconds()) / 1000,
			MaxMS: float64(percentile(lats, 1.0).Microseconds()) / 1000,
		}
	}

	fmt.Fprintf(stdout, "\n%-10s %10s %10s %10s %10s\n", "endpoint", "count", "p50 ms", "p99 ms", "max ms")
	eps := make([]string, 0, len(rep.Endpoints))
	for ep := range rep.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		s := rep.Endpoints[ep]
		fmt.Fprintf(stdout, "%-10s %10d %10.2f %10.2f %10.2f\n", ep, s.Count, s.P50MS, s.P99MS, s.MaxMS)
	}
	fmt.Fprintf(stdout, "statuses: %v\nerror codes: %v\n", rep.Statuses, rep.ErrorCodes)
	fmt.Fprintf(stdout, "requests %d, corrupt reads %d, hung %d, transport errors %d, injected WAL faults %d\n",
		rep.Requests, rep.Corrupt, rep.Hung, rep.NetErrs, rep.InjectedWAL)
	if len(rep.Slowest) > 0 {
		fmt.Fprintf(stdout, "\nslowest requests (trace IDs fetchable from %s/debug/traces/{id} while the server runs):\n", rep.Base)
		for _, s := range rep.Slowest {
			id := s.TraceID
			if id == "" {
				id = "-" // server ran without tracing, or the trace was not sampled
			}
			fmt.Fprintf(stdout, "  %-10s %4d %10.2fms  %s\n", s.Endpoint, s.Status, s.LatencyMS, id)
		}
	}

	if b.cfg.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(b.cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", b.cfg.jsonPath)
	}

	if rep.Corrupt > 0 {
		return fmt.Errorf("CORRUPT READS: %d sentinel reads returned wrong data", rep.Corrupt)
	}
	if rep.Hung > 0 {
		return fmt.Errorf("%d requests exceeded the hang budget", rep.Hung)
	}
	if b.cfg.burst > int(b.cfg.inflight) && rep.BurstReject == 0 && b.cfg.base == "" {
		return errors.New("burst exceeded capacity but nothing was rejected — admission control is not engaging")
	}
	fmt.Fprintln(stdout, "PASS: zero corrupt reads, zero hung requests")
	return nil
}

package match

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
)

// Differential tests: the streaming engine under every planner must
// return the exact same result multiset as the materializing engine
// running the patterns in naive text order. The two engines share no
// join code — one walks ID rows under a read view, the other
// materializes term bindings per stage — so agreement is strong evidence
// both are right.

// resultKeys canonicalizes a result set into a sorted multiset of row
// strings (per-variable Term.String, \x1f-joined).
func resultKeys(rs *ResultSet) []string {
	keys := make([]string, 0, rs.Len())
	for _, row := range rs.Rows {
		parts := make([]string, len(row))
		for i, t := range row {
			parts[i] = t.String()
		}
		keys = append(keys, strings.Join(parts, "\x1f"))
	}
	sort.Strings(keys)
	return keys
}

// diffCase runs one (store, query, options) case on the naive
// materializing oracle and on every other engine/planner combination,
// requiring identical variable lists and row multisets.
func diffCase(t *testing.T, s *core.Store, models []string, query string, base Options) {
	t.Helper()
	base.Models = models
	if base.Aliases == nil {
		base.Aliases = govAliases()
	}
	oracle := base
	oracle.Engine = EngineMaterialize
	oracle.Planner = PlannerNaive
	want, err := Match(s, query, oracle)
	if err != nil {
		t.Fatalf("oracle failed on %q: %v", query, err)
	}
	wantKeys := resultKeys(want)
	combos := []struct {
		name string
		eng  Engine
		pl   Planner
	}{
		{"streaming/cost", EngineStreaming, PlannerCost},
		{"streaming/heuristic", EngineStreaming, PlannerHeuristic},
		{"streaming/naive", EngineStreaming, PlannerNaive},
		{"materialize/heuristic", EngineMaterialize, PlannerHeuristic},
	}
	for _, c := range combos {
		opts := base
		opts.Engine = c.eng
		opts.Planner = c.pl
		got, err := Match(s, query, opts)
		if err != nil {
			t.Fatalf("%s failed on %q: %v", c.name, query, err)
		}
		if !equalStrings(got.Vars, want.Vars) {
			t.Fatalf("%s on %q: Vars = %v, oracle %v", c.name, query, got.Vars, want.Vars)
		}
		gotKeys := resultKeys(got)
		if !equalStrings(gotKeys, wantKeys) {
			t.Fatalf("%s on %q: %d rows, oracle %d\n got: %v\nwant: %v",
				c.name, query, len(gotKeys), len(wantKeys), gotKeys, wantKeys)
		}
		if got.Truncated != want.Truncated {
			t.Fatalf("%s on %q: Truncated = %v, oracle %v", c.name, query, got.Truncated, want.Truncated)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialCorpus sweeps the fixture stores with the query corpus
// (including the parser fuzz seeds that are valid queries) across all
// engine/planner combinations.
func TestDifferentialCorpus(t *testing.T) {
	ic := icStore(t)
	icModels := []string{"cia", "dhs", "fbi"}
	chain := chainStore(t, 40)
	inv := invStore(t, 25)
	join := buildJoinStore(t, 4, 0)

	icQueries := []string{
		// Fuzz seeds / corpus queries that parse.
		`(?s ?p ?o)`,
		`(?x gov:terrorAction "bombing") (gov:files gov:terrorSuspect ?x)`,
		`(_:b1 rdf:type rdf:Statement)`,
		`(?s gov:p "25"^^xsd:int)`,
		`(?s gov:p "hi"@en)`,
		"(?a rdf:type ?b)(?b rdf:type ?c)",
		// Shapes from the paper's running example.
		`(gov:files gov:terrorSuspect ?name)`,
		`(?who gov:enteredCountry ?when) (gov:files gov:terrorSuspect ?who)`,
		`(?s ?p ?o) (?s ?p2 ?o2)`,
		`(?s gov:terrorSuspect ?o) (?s ?p ?o)`,
		// Repeated variable: (?x p ?x) style self-join.
		`(?x ?p ?x)`,
		// Unmatchable concrete terms (empty-collapse path).
		`(?x gov:nosuch ?y)`,
		`(gov:files gov:terrorSuspect ?x) (?x gov:nosuch ?y)`,
	}
	for _, q := range icQueries {
		diffCase(t, ic, icModels, q, Options{})
	}

	chainQueries := []string{
		threeJoinQuery,
		`(?z gov:type "target") (?y gov:p2 ?z) (?x gov:p1 ?y)`,
		`(?x gov:p1 ?y) (?y gov:p2 ?z)`,
		`(?z gov:type ?kind)`,
		`(?a gov:p1 ?b) (?c gov:p2 ?d)`, // cross product, 40x40 rows
	}
	for _, q := range chainQueries {
		diffCase(t, chain, []string{"g"}, q, Options{})
	}

	diffCase(t, inv, []string{"g"}, inversionQuery, Options{})

	diffCase(t, join, []string{"big"},
		`(?a <http://x#p> ?b) (?b <http://x#p> ?c) (?c <http://x#p> ?d)`, Options{})
}

// TestDifferentialModifiers exercises filter, distinct, order-by, and
// limit across the combinations — the projection paths diverge most
// between the engines (ID-keyed vs string-keyed DISTINCT, early
// termination vs post-hoc truncation).
func TestDifferentialModifiers(t *testing.T) {
	ic := icStore(t)
	icModels := []string{"cia", "dhs", "fbi"}
	chain := chainStore(t, 40)

	// DISTINCT collapses the per-model union duplicates.
	diffCase(t, ic, icModels, `(gov:files gov:terrorSuspect ?name)`, Options{Distinct: true})
	diffCase(t, ic, icModels, `(?s ?p ?o)`, Options{Distinct: true})
	// Filter over bound and unbound variables.
	diffCase(t, ic, icModels, `(?s gov:terrorSuspect ?name)`, Options{
		Filter: `?name != "nobody"`,
	})
	diffCase(t, ic, icModels, `(?s ?p ?o)`, Options{
		Filter: `?o = "bombing"`,
	})
	diffCase(t, ic, icModels, `(?s gov:terrorSuspect ?name)`, Options{
		Filter: `?missing = "x"`, // names a variable the query never binds
	})
	// ORDER BY with and without LIMIT: deterministic top-N on both engines.
	diffCase(t, chain, []string{"g"}, `(?x gov:p1 ?y)`, Options{
		OrderBy: []string{"x", "y"},
	})
	diffCase(t, chain, []string{"g"}, `(?x gov:p1 ?y) (?y gov:p2 ?z)`, Options{
		OrderBy: []string{"z"}, Limit: 7,
	})
	diffCase(t, ic, icModels, `(?s ?p ?o)`, Options{
		Distinct: true, OrderBy: []string{"s", "p", "o"}, Limit: 5,
	})

	// LIMIT without ORDER BY: which rows survive is engine-dependent, so
	// compare counts and containment in the full result instead.
	full, err := Match(chain, `(?x gov:p1 ?y)`, Options{Models: []string{"g"}, Aliases: govAliases()})
	if err != nil {
		t.Fatal(err)
	}
	fullSet := map[string]bool{}
	for _, k := range resultKeys(full) {
		fullSet[k] = true
	}
	for _, eng := range []Engine{EngineStreaming, EngineMaterialize} {
		rs, err := Match(chain, `(?x gov:p1 ?y)`, Options{
			Models: []string{"g"}, Aliases: govAliases(), Limit: 6, Engine: eng,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rs.Len() != 6 || !rs.Truncated {
			t.Fatalf("engine %d: limit rows = %d truncated = %v", eng, rs.Len(), rs.Truncated)
		}
		for _, k := range resultKeys(rs) {
			if !fullSet[k] {
				t.Fatalf("engine %d: limited result contains row not in full result: %q", eng, k)
			}
		}
	}
}

// TestDifferentialFuzzSeeds replays the stored FuzzParseQuery corpus
// inputs that parse as valid queries through the differential harness —
// regressions found by fuzzing stay fixed on both engines.
func TestDifferentialFuzzSeeds(t *testing.T) {
	ic := icStore(t)
	icModels := []string{"cia", "dhs", "fbi"}
	seeds := []string{
		`(?s ?p ?o)`,
		`(?x gov:terrorAction "bombing") (gov:files gov:terrorSuspect ?x)`,
		`(<http://a> <http://p> "lit with spaces")`,
		`(_:b1 rdf:type rdf:Statement)`,
		`(?s gov:p "25"^^xsd:int)`,
		`(?s gov:p "hi"@en)`,
		"(?a rdf:type ?b)(?b rdf:type ?c)",
	}
	a := govAliases()
	for _, q := range seeds {
		if _, err := ParseQuery(q, a); err != nil {
			continue
		}
		diffCase(t, ic, icModels, q, Options{})
	}
}

package reldb

import (
	"fmt"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name     string
	Kind     Kind
	Nullable bool
}

// Schema is an ordered list of columns.
type Schema struct {
	cols    []Column
	byName  map[string]int
	tabName string
}

// NewSchema builds a schema. Column names are case-insensitive and must be
// unique; NewSchema panics on duplicates because schemas are always
// programmer-defined constants in this engine.
func NewSchema(table string, cols ...Column) *Schema {
	s := &Schema{cols: cols, byName: make(map[string]int, len(cols)), tabName: table}
	for i, c := range cols {
		key := strings.ToUpper(c.Name)
		if _, dup := s.byName[key]; dup {
			panic(fmt.Sprintf("reldb: duplicate column %q in table %q", c.Name, table))
		}
		s.byName[key] = i
	}
	return s
}

// Table returns the table name the schema was declared for.
func (s *Schema) Table() string { return s.tabName }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToUpper(name)]; ok {
		return i
	}
	return -1
}

// MustColumnIndex is ColumnIndex but panics on unknown names; schema
// references in this codebase are compile-time constants, so a miss is a
// programming error.
func (s *Schema) MustColumnIndex(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("reldb: no column %q in table %q", name, s.tabName))
	}
	return i
}

// Validate checks that a row matches the schema: correct arity, and each
// cell either NULL (if the column is nullable) or of the column's kind.
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.cols) {
		return fmt.Errorf("%w: table %s expects %d columns, row has %d",
			ErrSchemaMismatch, s.tabName, len(s.cols), len(r))
	}
	for i, v := range r {
		c := s.cols[i]
		if v.IsNull() {
			if !c.Nullable {
				return fmt.Errorf("%w: column %s.%s is NOT NULL",
					ErrSchemaMismatch, s.tabName, c.Name)
			}
			continue
		}
		if v.Kind() != c.Kind {
			return fmt.Errorf("%w: column %s.%s expects %s, got %s",
				ErrSchemaMismatch, s.tabName, c.Name, c.Kind, v.Kind())
		}
	}
	return nil
}

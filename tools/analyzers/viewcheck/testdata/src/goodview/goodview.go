// Package goodview holds the shapes viewcheck must accept: closures
// that reach the store only through *Locked methods, scan loops that
// poll cancellation (via tickLocked, a tick helper, or the context),
// synchronous helpers that borrow the ReadTx, and locking calls safely
// outside any view.
package goodview

import (
	"context"
	"sync"
)

type Store struct {
	mu sync.RWMutex
}

type ReadTx struct {
	s   *Store
	ctx context.Context
}

func (s *Store) ReadView(ctx context.Context, fn func(tx *ReadTx) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(&ReadTx{s: s, ctx: ctx})
}

func (s *Store) Insert(k string) error { s.mu.Lock(); defer s.mu.Unlock(); return nil }

func (tx *ReadTx) tickLocked() error { return tx.ctx.Err() }

func (tx *ReadTx) ModelIDLocked(name string) (int64, error) { return 0, nil }

func (tx *ReadTx) ContainsLinkLocked(mid, sid int64) bool { return false }

func (tx *ReadTx) ValueLocked(id int64) (string, error) { return "", nil }

// lockedOnly reaches the store exclusively through the transaction.
func lockedOnly(ctx context.Context, s *Store) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		id, err := tx.ModelIDLocked("m")
		if err != nil {
			return err
		}
		_, err = tx.ValueLocked(id)
		return err
	})
}

// polledScan ticks every iteration, so cancellation interrupts the scan.
func polledScan(ctx context.Context, s *Store, names []string) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		for _, n := range names {
			if err := tx.tickLocked(); err != nil {
				return err
			}
			if _, err := tx.ModelIDLocked(n); err != nil {
				return err
			}
		}
		return nil
	})
}

// ctxPolled polls the view context directly instead of tickLocked.
func ctxPolled(ctx context.Context, s *Store, ids []int64) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				return err
			}
			tx.ContainsLinkLocked(id, id)
		}
		return nil
	})
}

// borrow passes the ReadTx to a synchronous helper — ordinary use, the
// helper finishes before the closure returns.
func borrow(ctx context.Context, s *Store) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		return resolve(tx, "m")
	})
}

func resolve(tx *ReadTx, name string) error {
	_, err := tx.ModelIDLocked(name)
	return err
}

// iterator mirrors the streaming engine: the ReadTx sits in a field and
// the method's loop polls through a local tick helper.
type iterator struct {
	tx      *ReadTx
	ctx     context.Context
	ids     []int64
	scanned int
}

func (it *iterator) tick() error {
	it.scanned++
	if it.scanned%64 == 0 {
		return it.ctx.Err()
	}
	return nil
}

func (it *iterator) drain() (int, error) {
	n := 0
	for _, id := range it.ids {
		if err := it.tick(); err != nil {
			return n, err
		}
		if it.tx.ContainsLinkLocked(id, id) {
			n++
		}
	}
	return n, nil
}

// outsideView may call locking entry points freely: no lock is held.
func outsideView(s *Store) error {
	if err := s.Insert("a"); err != nil {
		return err
	}
	return s.Insert("b")
}

// resultStore copies a value computed from the transaction into an outer
// variable — the whole point of a read view; only the tx itself may not
// escape.
func resultStore(ctx context.Context, s *Store) (int64, error) {
	var out int64
	err := s.ReadView(ctx, func(tx *ReadTx) error {
		id, err := tx.ModelIDLocked("m")
		out = id
		return err
	})
	return out, err
}

// localAlias keeps a closure-local alias of the transaction — it dies
// with the closure, so nothing escapes.
func localAlias(ctx context.Context, s *Store) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		view := tx
		_, err := view.ModelIDLocked("m")
		return err
	})
}

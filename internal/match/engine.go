package match

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rdfterm"
)

// runStreaming executes the query on the streaming iterator engine. The
// plan, the whole pipeline, and term materialization run inside a single
// core.ReadView — one read-lock acquisition and one consistent snapshot
// for every stage's probes. ORDER BY sorts outside the view (terms are
// already materialized by then).
func runStreaming(ctx context.Context, store *core.Store, scope []string, pats []TriplePattern, vars []string, filter *FilterExpr, opts Options, traced bool, trace *Trace) (*ResultSet, error) {
	varIdx := make(map[string]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	rs := &ResultSet{Vars: vars}
	err := store.ReadView(ctx, func(tx *core.ReadTx) error {
		mids := make([]int64, len(scope))
		for i, m := range scope {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("match: %w", err)
			}
			mid, err := tx.ModelIDLocked(m)
			if err != nil {
				return err
			}
			mids[i] = mid
		}
		plan := buildPlan(tx, mids, pats, varIdx, len(vars), opts.Planner)
		if traced {
			trace.Planner = plan.planner
			trace.PlanOrder = trace.PlanOrder[:0]
			for _, sp := range plan.stages {
				trace.PlanOrder = append(trace.PlanOrder, sp.pi)
			}
		}
		if plan.empty {
			// Some pattern cannot match in any scoped model: the whole
			// conjunction is empty, no stage runs.
			return nil
		}

		var it iterator = &unitIter{nv: len(vars)}
		joins := make([]*joinIter, len(plan.stages))
		for i := range plan.stages {
			j := newJoinIter(ctx, tx, it, &plan.stages[i], mids, len(vars), opts.MaxBindings, traced)
			joins[i] = j
			it = j
		}

		// Terms are materialized once per distinct VALUE_ID per query.
		terms := map[int64]rdfterm.Term{}
		lookupTerm := func(id int64) (rdfterm.Term, error) {
			if t, ok := terms[id]; ok {
				return t, nil
			}
			t, err := tx.ValueLocked(id)
			if err != nil {
				return rdfterm.Term{}, err
			}
			terms[id] = t
			return t, nil
		}
		// The filter sees display terms through a lookup closure over the
		// current row; a variable the filter names but the query does not
		// bind fails the row, as before.
		var cur row
		var lookErr error
		look := func(name string) (rdfterm.Term, bool) {
			i, ok := varIdx[name]
			if !ok {
				return rdfterm.Term{}, false
			}
			id := cur[2*i+1]
			if id == 0 {
				return rdfterm.Term{}, false
			}
			t, err := lookupTerm(id)
			if err != nil {
				lookErr = err
				return rdfterm.Term{}, false
			}
			return t, true
		}

		// DISTINCT keys on display IDs — interning makes the ID uniquely
		// determine the term — encoded into a reused scratch buffer
		// instead of the old \x00-joined Term.String build. The map is
		// pre-sized from Limit when one is set.
		var emitted map[string]struct{}
		var keyBuf []byte
		if opts.Distinct {
			size := 64
			if opts.Limit > 0 && opts.Limit < 1<<16 {
				size = opts.Limit
			}
			emitted = make(map[string]struct{}, size)
			keyBuf = make([]byte, 0, 8*len(vars))
		}

		polled := 0
		for {
			r, ok, err := it.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			polled++
			if polled%cancelEvery == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("match: %w", err)
				}
			}
			cur = r
			if !filter.EvalFunc(look) {
				if lookErr != nil {
					return lookErr
				}
				continue
			}
			if lookErr != nil {
				return lookErr
			}
			if opts.Distinct {
				keyBuf = keyBuf[:0]
				for i := range vars {
					id := uint64(r[2*i+1])
					keyBuf = append(keyBuf,
						byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
						byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
				}
				if _, dup := emitted[string(keyBuf)]; dup {
					continue
				}
				emitted[string(keyBuf)] = struct{}{}
			}
			// Without ORDER BY the cap terminates the whole pipeline
			// early — upstream stages stop scanning; with it the full set
			// is collected and sorted first so the cap returns the true
			// top-N (truncation happens after the sort, outside the view).
			if opts.Limit > 0 && len(opts.OrderBy) == 0 && len(rs.Rows) == opts.Limit {
				rs.Truncated = true
				break
			}
			trow := make([]rdfterm.Term, len(vars))
			for i := range vars {
				if id := r[2*i+1]; id != 0 {
					t, err := lookupTerm(id)
					if err != nil {
						return err
					}
					trow[i] = t
				}
			}
			rs.Rows = append(rs.Rows, trow)
		}
		if traced {
			for _, j := range joins {
				trace.Stages = append(trace.Stages, StageTrace{
					Index:       j.sp.pi,
					Pattern:     pats[j.sp.pi].String(),
					InBindings:  j.inCount,
					Candidates:  j.candCount,
					OutBindings: j.outCount,
					EstRows:     j.sp.est,
					Duration:    j.self,
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(opts.OrderBy) > 0 {
		if err := rs.sortBy(opts.OrderBy); err != nil {
			return nil, err
		}
		if opts.Limit > 0 && len(rs.Rows) > opts.Limit {
			rs.Rows = rs.Rows[:opts.Limit]
			rs.Truncated = true
		}
	}
	return rs, nil
}

package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/uniprot"
)

func TestTimeReturnsMean(t *testing.T) {
	calls := 0
	d := Time(func() { calls++ })
	if calls != Trials+1 { // warm-up + trials
		t.Fatalf("calls = %d", calls)
	}
	if d < 0 {
		t.Fatalf("duration = %v", d)
	}
}

func TestSecondsFormat(t *testing.T) {
	if got := Seconds(0); got != "0.00" {
		t.Errorf("Seconds(0) = %q", got)
	}
	if got := Seconds(1500 * time.Millisecond); got != "1.50" {
		t.Errorf("Seconds(1.5s) = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"A", "BB"}}
	tb.Add("1", "2")
	out := tb.String()
	for _, want := range []string{"T\n", "A", "BB", "--", "1", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFmtTriples(t *testing.T) {
	cases := map[int]string{
		10_000:    "10 k",
		100_000:   "100 k",
		1_000_000: "1 M",
		5_000_000: "5 M",
		1234:      "1234",
	}
	for in, want := range cases {
		if got := fmtTriples(in); got != want {
			t.Errorf("fmtTriples(%d) = %q, want %q", in, got, want)
		}
	}
}

func loadSmall(t *testing.T) (*OracleDataset, *Jena2Dataset) {
	t.Helper()
	o, err := LoadOracle(2000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	j, err := LoadJena2(2000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	return o, j
}

func TestLoadersAgree(t *testing.T) {
	o, j := loadSmall(t)
	if o.Reified != j.Reified {
		t.Fatalf("reified counts differ: oracle %d, jena2 %d", o.Reified, j.Reified)
	}
	n, err := o.Store.NumTriples(o.Model)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle stores base triples + one reification row each.
	if n != o.Triples+o.Reified {
		t.Fatalf("oracle rows = %d, want %d", n, o.Triples+o.Reified)
	}
	jn, _ := j.Store.Len(j.Model)
	if jn != j.Triples {
		t.Fatalf("jena2 rows = %d, want %d", jn, j.Triples)
	}
}

func TestRunExperimentI(t *testing.T) {
	o, _ := loadSmall(t)
	r, err := RunExperimentI(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsReturned != uniprot.ProbeRows {
		t.Fatalf("rows = %d, want %d", r.RowsReturned, uniprot.ProbeRows)
	}
	out := TableExpI([]ExpIResult{r}).String()
	if !strings.Contains(out, "24") {
		t.Errorf("table:\n%s", out)
	}
}

func TestRunExperimentII(t *testing.T) {
	o, j := loadSmall(t)
	r, err := RunExperimentII(o, j)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowsReturned != uniprot.ProbeRows {
		t.Fatalf("rows = %d, want %d (the paper's Table 1 row count)", r.RowsReturned, uniprot.ProbeRows)
	}
	_ = TableExpII([]ExpIIResult{r})
}

func TestRunExperimentIII(t *testing.T) {
	o, j := loadSmall(t)
	r, err := RunExperimentIII(o, j)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reified != 100 {
		t.Fatalf("reified = %d", r.Reified)
	}
	out := TableExpIII([]ExpIIIResult{r}).String()
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Errorf("table:\n%s", out)
	}
}

func TestRunReificationStorage(t *testing.T) {
	r, err := RunReificationStorage(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.OracleRows != 50 {
		t.Errorf("oracle rows = %d, want 50", r.OracleRows)
	}
	if r.QuadRows != 200 {
		t.Errorf("quad rows = %d, want 200", r.QuadRows)
	}
	if r.Ratio != 0.25 { // §7.3: "25% of the storage"
		t.Errorf("ratio = %v, want 0.25", r.Ratio)
	}
	_ = TableReifStorage(r)
}

func TestRunIndexAblation(t *testing.T) {
	o, _ := loadSmall(t)
	r, err := RunIndexAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	// With 2000 rows the full scan must be slower than the index lookup.
	if r.Unindexed < r.Indexed {
		t.Logf("warning: unindexed %v faster than indexed %v at this size", r.Unindexed, r.Indexed)
	}
	_ = TableIndexAblation([]IndexAblationResult{r})
}

func TestRunStorageComparison(t *testing.T) {
	results, err := RunStorageComparison(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]StorageResult{}
	for _, r := range results {
		if r.TextBytes <= 0 || r.Rows <= 0 {
			t.Fatalf("empty result %+v", r)
		}
		byName[r.Design] = r
	}
	oracle := byName["RDF objects (central rdf_value$)"]
	j1 := byName["Jena1 (normalized)"]
	j2 := byName["Jena2 (denormalized)"]
	// §3.1's claim: the denormalized design stores more text than the
	// normalized ones; interning matches Jena1's single-copy storage.
	if j2.TextBytes <= j1.TextBytes {
		t.Errorf("Jena2 text %d <= Jena1 text %d", j2.TextBytes, j1.TextBytes)
	}
	if j2.TextBytes <= oracle.TextBytes {
		t.Errorf("Jena2 text %d <= oracle text %d", j2.TextBytes, oracle.TextBytes)
	}
	// Interned designs should be within ~2x of each other.
	if oracle.TextBytes > 2*j1.TextBytes {
		t.Errorf("oracle text %d far above Jena1 %d", oracle.TextBytes, j1.TextBytes)
	}
	out := TableStorage(results).String()
	if !strings.Contains(out, "Jena2") {
		t.Errorf("table:\n%s", out)
	}
}

func TestFmtInt64(t *testing.T) {
	cases := map[int64]string{
		0: "0", 12: "12", 1234: "1,234", 1234567: "1,234,567", -5000: "-5,000",
	}
	for in, want := range cases {
		if got := fmtInt64(in); got != want {
			t.Errorf("fmtInt64(%d) = %q, want %q", in, got, want)
		}
	}
}

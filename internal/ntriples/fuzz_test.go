package ntriples

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that every successfully
// parsed triple survives a serialize→parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<http://a> <http://p> <http://b> .`,
		`<http://a> <http://p> "lit" .`,
		`<http://a> <http://p> "l"@en .`,
		`<http://a> <http://p> "1"^^<http://www.w3.org/2001/XMLSchema#int> .`,
		`_:b1 <http://p> _:b2 .`,
		`# comment`,
		`<http://a> <http://p> "esc\t\n\"\\" .`,
		`<http://a> <http://p> "A\U0001F600" .`,
		`<http://a <http://p> "x" .`,
		`<> <> <> .`,
		"<http://a>\t<http://p>\t\"x\"\t.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		triples, err := NewReader(strings.NewReader(input)).ReadAll()
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, tr := range triples {
			// Round trip must preserve the triple exactly.
			again, err := NewReader(strings.NewReader(tr.String() + "\n")).ReadAll()
			if err != nil {
				t.Fatalf("reserialized triple failed to parse: %v (%q)", err, tr.String())
			}
			if len(again) != 1 || again[0] != tr {
				t.Fatalf("round trip changed triple: %v -> %v", tr, again)
			}
		}
	})
}

# Convenience targets for the reproduction. Everything is stdlib-only Go;
# `go build ./...` with Go >= 1.22 is the only real requirement.

GO ?= go

# Pinned versions for the external linters CI installs. Locally, targets
# degrade to a notice when the tool is absent (the repo builds offline);
# set LINT_STRICT=1 — CI does — to make a missing tool a failure.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3
LINT_STRICT ?=

.PHONY: all build vet test race cover bench bench-join-check fuzz \
	experiments examples clean lint analyzers staticcheck govulncheck \
	fuzz-smoke chaos chaos-disk server-smoke lint-race

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full lint gate: stock go vet, the repo's contract analyzers (lockcheck,
# walcheck, errwrapcheck, viewcheck, releasecheck, ctxcheck via go vet
# -vettool), staticcheck, govulncheck.
lint: vet analyzers staticcheck govulncheck

# Build the bundled analyzer binary and drive it through the vet protocol
# so package enumeration and caching match stock go vet. The standalone
# -summary run afterwards prints the per-analyzer diagnostic counts
# (zeros included), so the gate's coverage is visible in the log.
analyzers:
	$(GO) build -o bin/repro-vet ./tools/analyzers/cmd/repro-vet
	$(GO) vet -vettool=$(CURDIR)/bin/repro-vet ./...
	./bin/repro-vet -summary ./...

# Race-enabled tests for the packages the flow-aware analyzers guard:
# the admission/release paths (server), the supervisor state machine,
# and the ReadView-scoped query engine. The race build tag also widens
# timing budgets in latency-sensitive tests (see internal/match).
lint-race:
	$(GO) test -race -count=1 ./internal/server ./internal/supervise ./internal/match

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif [ -n "$(LINT_STRICT)" ]; then \
		echo "staticcheck not installed (want $(STATICCHECK_VERSION)); LINT_STRICT set" >&2; exit 1 ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))" ; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... ; \
	elif [ -n "$(LINT_STRICT)" ]; then \
		echo "govulncheck not installed (want $(GOVULNCHECK_VERSION)); LINT_STRICT set" >&2; exit 1 ; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))" ; \
	fi

test:
	$(GO) test ./...

# Supervisor fault-injection stress under the race detector: concurrent
# writers/readers/scrubber driven through injected WAL faults, asserting
# the full Healthy→Degraded→Recovering→Healthy cycle, no corrupt reads,
# and zero loss of acknowledged commits.
chaos:
	$(GO) test -race -count=3 -run 'TestChaosCycle|TestDurabilityFault|TestDegradedReads' \
		./internal/supervise/ ./internal/core/ -v

# Disk-pressure chaos for the segmented WAL: the crash-point matrix over
# every byte of a multi-segment run, checkpoint crash windows, the
# supervisor-level ENOSPC chaos cycle (injected no-space and partial
# writes under concurrent load, asserting zero acked-commit loss and
# automatic return to Healthy), then an end-to-end rdfbench drill
# against a live segmented-WAL rdfserve with ENOSPC faults armed —
# every injected fault must surface as a typed 507/503, never a 500.
chaos-disk:
	$(GO) test -race -count=1 -run 'TestDirCrashMatrix|TestDirCheckpointCrashWindows' \
		./internal/core/ -v
	$(GO) test -race -count=1 -run 'TestChaosDiskENOSPC|TestHardBudgetDegradesAndSelfHeals|TestDiskRecoveryNeverReachesFailed' \
		./internal/supervise/ -v
	$(GO) run ./cmd/rdfbench -conns 32 -duration 3s -burst 64 \
		-wal-segment-bytes 4096 -wal-soft-bytes 65536 -chaos-wal-enospc-rate 0.01

race:
	$(GO) test -race ./...

# Serving-layer smoke: a short self-serve chaos bench (mixed multi-
# tenant load with WAL fault injection, a synchronized burst far above
# admission capacity, drain under load — rdfbench fails on any corrupt
# read, hung request, or an unrejected burst), then the server package
# under the race detector.
server-smoke:
	$(GO) run ./cmd/rdfbench -conns 200 -duration 3s -burst 96 -max-inflight 16
	$(GO) test -race -count=1 ./internal/server/

cover:
	$(GO) test -cover ./...

# One benchmark family per paper table/figure, plus ablations.
bench:
	$(GO) test -bench=. -benchmem .

# Join-planner regression gate: re-run the 3-pattern chain join at the
# CI size recorded in BENCH_3.json and fail when the streaming-vs-
# materializing speedup drops below 70% of the committed baseline. The
# ratio (not absolute throughput) is compared, so the gate holds across
# machines.
bench-join-check:
	$(GO) run ./cmd/benchjoin -check BENCH_3.json

# Short fuzz passes over every fuzz target (regression corpora run in
# plain `make test` already).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ntriples
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/rdfxml
	$(GO) test -fuzz=FuzzParseObject -fuzztime=30s ./internal/rdfterm
	$(GO) test -fuzz=FuzzCanonical -fuzztime=30s ./internal/rdfterm
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=30s ./internal/match
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/match

# CI smoke slice of the fuzz targets: the parser-facing surfaces only,
# ~30s each, enough to catch fresh panics without owning a CI lane for
# an hour.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseObject -fuzztime=30s ./internal/rdfterm
	$(GO) test -fuzz=FuzzCanonical -fuzztime=30s ./internal/rdfterm
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/rdfxml
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=30s ./internal/match
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/match

# Regenerate the paper's evaluation tables (10k + 100k by default; pass
# SIZES=10000,100000,1000000,5000000 for the full sweep).
SIZES ?= 10000,100000
experiments:
	$(GO) run ./cmd/benchrepro -sizes $(SIZES)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/intelligence
	$(GO) run ./examples/uniprot -triples 10000
	$(GO) run ./examples/network
	$(GO) run ./examples/provenance

clean:
	$(GO) clean ./...

package main

import (
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sizes", "500", "-reifn", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Experiment I",
		"Table 1. Query times on the UniProt datasets",
		"Table 2. IS_REIFIED() query times",
		"Reification storage",
		"Function-based indexing",
		"Rows", "true", "false", "0.25",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sizes", "500", "-exp", "4", "-reifn", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Reification storage") {
		t.Errorf("output:\n%s", got)
	}
	if strings.Contains(got, "Table 1") {
		t.Error("exp 4 also ran experiment 2")
	}
}

func TestRunBadSizes(t *testing.T) {
	for _, sizes := range []string{"abc", "5", "-1", ""} {
		if err := run([]string{"-sizes", sizes}, &strings.Builder{}); err == nil {
			t.Errorf("sizes %q accepted", sizes)
		}
	}
}

func TestRunRDFOnlySystems(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-sizes", "500", "-exp", "3", "-systems", "rdf"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Table 2") {
		t.Errorf("output:\n%s", got)
	}
	// Jena2 columns are dashed out.
	if !strings.Contains(got, "-") {
		t.Errorf("skipped Jena2 columns not marked:\n%s", got)
	}
	if strings.Contains(got, "Jena2 baseline in") {
		t.Error("Jena2 dataset loaded despite -systems rdf")
	}
}

// Package badlock holds one violation of each lockcheck rule; the
// // want comments are the analyzer's expected findings.
package badlock

import "sync"

type Table struct{ n int }

func (t *Table) Insert(v int) { t.n++ }
func (t *Table) Len() int     { return t.n }

type Store struct {
	mu  sync.RWMutex
	tab *Table //repro:guarded-by mu
	seq int64  //repro:guarded-by mu
}

// Exported method reading guarded state with no lock at all.
func (s *Store) Count() int {
	return s.tab.Len() // want `exported Count accesses guarded field s\.tab without holding s\.mu`
}

// Unexported helper doing the same should either lock or rename.
func (s *Store) bump() {
	s.seq++ // want `unexported bump accesses guarded field s\.seq without acquiring s\.mu`
}

// A *Locked helper must not acquire the lock it documents as held.
func (s *Store) addLocked(v int) {
	s.mu.Lock() // want `addLocked Locks s\.mu, but \*Locked helpers run with the lock already held`
	s.tab.Insert(v)
	s.mu.Unlock() // want `addLocked Unlocks s\.mu, but \*Locked helpers run with the lock already held`
}

// ...nor call a public method that acquires it.
func (s *Store) refreshLocked() {
	s.Reload() // want `refreshLocked calls Reload, which acquires the lock the \*Locked contract says is already held`
}

func (s *Store) Reload() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tab.Insert(0)
}

func (s *Store) insertLocked(v int) { s.tab.Insert(v) }

// Calling a *Locked helper requires the lock at the call site.
func (s *Store) Add(v int) {
	s.insertLocked(v) // want `Add calls insertLocked without holding s\.mu`
}

// Calling a locking method while already holding the lock self-deadlocks.
func (s *Store) Reindex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Reload() // want `Reindex calls Reload while holding s\.mu`
}

// The early return leaks the write lock.
func (s *Store) Risky(v int) bool {
	s.mu.Lock()
	if v < 0 {
		return false // want `Risky returns while holding s\.mu with no deferred unlock`
	}
	s.tab.Insert(v)
	s.mu.Unlock()
	return true
}

// RWMutex is not reentrant; a second Lock blocks forever.
func (s *Store) Twice() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `Twice Locks s\.mu twice; RWMutex is not reentrant`
}

// A deferred acquire runs at return, after the work it meant to guard.
func (s *Store) DeferAcquire() {
	defer s.mu.Lock() // want `DeferAcquire defers a Lock of s\.mu; deferred acquires run at return and deadlock`
}

// A goroutine outlives the spawner's critical section, so the lock held
// at the go statement does not cover the closure body.
func (s *Store) Async() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.tab.Insert(1) // want `exported Async accesses guarded field s\.tab without holding s\.mu`
	}()
}

package core

import (
	"fmt"
	"io"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
	"repro/internal/wal"
)

// Crash recovery: a store's durable state is a snapshot (checkpoint)
// plus the WAL records appended since. Recover rebuilds the store by
// loading the snapshot (or starting fresh) and replaying the log's
// verified prefix; a torn or corrupted tail is reported, not fatal,
// because the prefix before it is a consistent commit boundary.

// RecoverInfo summarizes a recovery.
type RecoverInfo struct {
	// Applied is the number of WAL records replayed.
	Applied int
	// ValidBytes is the verified WAL prefix length (see wal.ScanResult).
	ValidBytes int64
	// Truncated reports that a damaged tail was discarded.
	Truncated bool
	// TailErr describes the damage when Truncated is set.
	TailErr error
	// Segments is the number of retained WAL segments (segmented
	// recovery only; 0 for a single-file WAL).
	Segments int
	// Retired is the number of segments below the snapshot's watermark
	// deleted at open — an interrupted checkpoint's retention, finished.
	Retired int
}

// Recover rebuilds a store from an optional snapshot reader (nil for
// none) and a WAL reader. The WAL must have been written against the
// snapshot it is paired with (a checkpoint truncates the log).
func Recover(snap io.Reader, log io.Reader) (*Store, RecoverInfo, error) {
	var s *Store
	var err error
	if snap != nil {
		if s, err = Load(snap); err != nil {
			return nil, RecoverInfo{}, err
		}
	} else {
		s = New()
	}
	res, err := wal.Scan(log)
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	if err := s.Replay(res.Records); err != nil {
		return nil, RecoverInfo{}, err
	}
	return s, RecoverInfo{
		Applied:    len(res.Records),
		ValidBytes: res.ValidBytes,
		Truncated:  res.Truncated,
		TailErr:    res.TailErr,
	}, nil
}

// Replay applies WAL records to the store in order. Records carry the
// IDs assigned before the crash, so sequences are advanced past them and
// derived state (rdf_node$, indexes, model views) is rebuilt by the same
// code paths as live mutations. Replay does not re-log: attach a
// durability sink after recovery.
//
//repro:vet-ignore walcheck replay applies records already durable in the WAL; re-logging them would duplicate every record on the next recovery
func (s *Store) Replay(records []wal.Record) error {
	t0 := s.met.startTimer()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range records {
		if err := s.applyLocked(r); err != nil {
			return fmt.Errorf("core: replaying WAL record %d (%s): %w", i, r.Type, err)
		}
	}
	s.met.onReplay(len(records), t0)
	s.met.setTriples(s.links.Len())
	return nil
}

// applyLocked applies one logical mutation record. Caller holds s.mu.
func (s *Store) applyLocked(r wal.Record) error {
	switch r.Type {
	case wal.TypeCreateModel:
		if err := s.addModelLocked(r.ModelID, r.Name, r.TableName, r.ColumnName); err != nil {
			return err
		}
		s.modelSeq.AdvanceTo(r.ModelID + 1)
		return nil

	case wal.TypeDropModel:
		return s.dropModelLocked(r.ModelID, r.Name)

	case wal.TypeInternValue:
		if err := s.insertValueRowLocked(r.ValueID, termFromRecord(r)); err != nil {
			return err
		}
		s.valueSeq.AdvanceTo(r.ValueID + 1)
		return nil

	case wal.TypeInsertLink:
		reif := "N"
		if r.Reif {
			reif = "Y"
		}
		row := reldb.Row{
			reldb.Int(r.LinkID), reldb.Int(r.StartID), reldb.Int(r.PropID),
			reldb.Int(r.EndID), reldb.Int(r.CanonID), reldb.String_(r.LinkType),
			reldb.Int(r.Cost), reldb.String_(r.Context), reldb.String_(reif),
			reldb.Int(r.ModelID),
		}
		if _, err := s.links.Insert(row); err != nil {
			return err
		}
		if err := s.internNodeLocked(r.StartID); err != nil {
			return err
		}
		if err := s.internNodeLocked(r.EndID); err != nil {
			return err
		}
		s.linkSeq.AdvanceTo(r.LinkID + 1)
		return nil

	case wal.TypeUpdateLink:
		rid, ok := s.linkPK.LookupOne(reldb.Key{reldb.Int(r.LinkID)})
		if !ok {
			return fmt.Errorf("%w: LINK_ID %d", ErrNoSuchTriple, r.LinkID)
		}
		if err := s.links.UpdateColumn(rid, "COST", reldb.Int(r.Cost)); err != nil {
			return err
		}
		return s.links.UpdateColumn(rid, "CONTEXT", reldb.String_(r.Context))

	case wal.TypeDeleteLink:
		rid, ok := s.linkPK.LookupOne(reldb.Key{reldb.Int(r.LinkID)})
		if !ok {
			return fmt.Errorf("%w: LINK_ID %d", ErrNoSuchTriple, r.LinkID)
		}
		row, err := s.links.Get(rid)
		if err != nil {
			return err
		}
		if err := s.links.Delete(rid); err != nil {
			return err
		}
		s.removeNodeIfOrphanLocked(row[lcStartNodeID].Int64())
		s.removeNodeIfOrphanLocked(row[lcEndNodeID].Int64())
		return nil

	case wal.TypeBlankNode:
		_, err := s.blanks.Insert(reldb.Row{
			reldb.Int(r.ModelID), reldb.String_(r.Name), reldb.Int(r.ValueID),
		})
		return err

	case wal.TypeSeqAdvance:
		switch r.Seq {
		case wal.SeqValue:
			s.valueSeq.AdvanceTo(r.SeqValue)
		case wal.SeqLink:
			s.linkSeq.AdvanceTo(r.SeqValue)
		case wal.SeqModel:
			s.modelSeq.AdvanceTo(r.SeqValue)
		case wal.SeqBlank:
			s.blankSeq.AdvanceTo(r.SeqValue)
		default:
			return fmt.Errorf("core: unknown sequence %d in WAL", r.Seq)
		}
		return nil

	default:
		return fmt.Errorf("core: unknown WAL record type %d", r.Type)
	}
}

// termFromRecord rebuilds the interned term from a TypeInternValue
// record (the inverse of the record built in internValueLocked).
func termFromRecord(r wal.Record) rdfterm.Term {
	switch r.ValueType {
	case rdfterm.VTUri:
		return rdfterm.NewURI(r.Text)
	case rdfterm.VTBlank:
		return rdfterm.NewBlank(r.Text)
	default:
		return rdfterm.Term{
			Kind:     rdfterm.Literal,
			Value:    r.Text,
			Datatype: r.LiteralType,
			Language: r.Language,
		}
	}
}

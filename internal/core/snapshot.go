package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/reldb"
)

// Typed snapshot errors, so tools can distinguish "wrong format version"
// from "damaged file" and print actionable messages.
var (
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version.
	ErrSnapshotVersion = errors.New("core: unsupported snapshot version")
	// ErrSnapshotCorrupt reports a snapshot that fails to decode or whose
	// decoded content cannot be rebuilt into a consistent store.
	ErrSnapshotCorrupt = errors.New("core: snapshot corrupt")
)

// Snapshot persistence: Save serializes the central schema's logical
// content (catalog, values, links, blank-node mappings, sequence
// positions) with encoding/gob; Load rebuilds a store — including all
// indexes and the rdf_node$ table, which are derived state — from a
// snapshot. This gives the otherwise memory-resident engine a
// stop/restart story for the CLI tools. It is not a WAL — a snapshot is
// a point-in-time image taken under the store lock — but it is the WAL's
// checkpoint format: durable state = snapshot + the internal/wal records
// appended since the snapshot was taken (see recover.go), and taking a
// snapshot lets the log be truncated.

// snapshotVersion guards format evolution.
const snapshotVersion = 1

type snapshot struct {
	Version int
	Models  []snapModel
	Values  []snapValue
	Links   []snapLink
	Blanks  []snapBlank
	// Next sequence values.
	ValueSeq, LinkSeq, ModelSeq, BlankSeq int64
	// WALSeq is the segmented-WAL watermark: the snapshot contains every
	// mutation from segments numbered below it, so recovery replays only
	// segments >= WALSeq and may delete the rest. 0 (the value decoded
	// from snapshots written before the field existed — gob tolerates the
	// addition, so no version bump) means "replay everything".
	WALSeq int64
}

type snapModel struct {
	ID                int64
	Name              string
	TableName, Column string
}

type snapValue struct {
	ID          int64
	Name        string
	Type        string
	LiteralType string
	Language    string
	LongValue   string
	HasLong     bool
}

type snapLink struct {
	ID, Start, P, End, Canon int64
	LinkType                 string
	Cost                     int64
	Context                  string
	Reif                     bool
	Model                    int64
}

type snapBlank struct {
	Model    int64
	OrigName string
	ValueID  int64
}

// Save writes a snapshot of the whole store. It takes the read lock, so
// concurrent readers proceed while the checkpoint image is taken.
func (s *Store) Save(w io.Writer) error {
	return s.SaveAt(w, 0)
}

// SaveAt is Save recording walSeq as the segmented-WAL watermark: the
// snapshot asserts it contains every mutation from segments below
// walSeq. Single-file checkpoints pass 0.
func (s *Store) SaveAt(w io.Writer, walSeq int64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{
		Version:  snapshotVersion,
		WALSeq:   walSeq,
		ValueSeq: s.valueSeq.Current(),
		LinkSeq:  s.linkSeq.Current(),
		ModelSeq: s.modelSeq.Current(),
		BlankSeq: s.blankSeq.Current(),
	}
	s.models.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		m := snapModel{ID: r[mcModelID].Int64(), Name: r[mcModelName].Str()}
		if !r[mcTableName].IsNull() {
			m.TableName = r[mcTableName].Str()
		}
		if !r[mcColumnName].IsNull() {
			m.Column = r[mcColumnName].Str()
		}
		snap.Models = append(snap.Models, m)
		return true
	})
	s.values.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		v := snapValue{
			ID:   r[vcValueID].Int64(),
			Name: r[vcValueName].Str(),
			Type: r[vcValueType].Str(),
		}
		if !r[vcLiteralType].IsNull() {
			v.LiteralType = r[vcLiteralType].Str()
		}
		if !r[vcLanguageType].IsNull() {
			v.Language = r[vcLanguageType].Str()
		}
		if !r[vcLongValue].IsNull() {
			v.LongValue = r[vcLongValue].Str()
			v.HasLong = true
		}
		snap.Values = append(snap.Values, v)
		return true
	})
	s.links.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		snap.Links = append(snap.Links, snapLink{
			ID:       r[lcLinkID].Int64(),
			Start:    r[lcStartNodeID].Int64(),
			P:        r[lcPValueID].Int64(),
			End:      r[lcEndNodeID].Int64(),
			Canon:    r[lcCanonEndNodeID].Int64(),
			LinkType: r[lcLinkType].Str(),
			Cost:     r[lcCost].Int64(),
			Context:  r[lcContext].Str(),
			Reif:     r[lcReifLink].Str() == "Y",
			Model:    r[lcModelID].Int64(),
		})
		return true
	})
	s.blanks.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		snap.Blanks = append(snap.Blanks, snapBlank{
			Model:    r[0].Int64(),
			OrigName: r[1].Str(),
			ValueID:  r[2].Int64(),
		})
		return true
	})
	return gob.NewEncoder(w).Encode(snap)
}

// Load reads a snapshot into a fresh store. Model views and all indexes
// are rebuilt; rdf_node$ is re-derived from the live links.
func Load(r io.Reader) (*Store, error) {
	s, _, err := LoadAt(r)
	return s, err
}

// LoadAt is Load returning also the snapshot's segmented-WAL watermark
// (0 for single-file snapshots and snapshots predating the field).
func LoadAt(r io.Reader) (*Store, int64, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, 0, fmt.Errorf("%w: reading stream: %v", ErrSnapshotCorrupt, err)
	}
	if snap.Version != snapshotVersion {
		return nil, 0, fmt.Errorf("%w: got version %d, want %d", ErrSnapshotVersion, snap.Version, snapshotVersion)
	}
	s := New()
	s.mu.Lock()
	defer s.mu.Unlock()

	// Rebuild errors below mean the decoded content violates the schema
	// (duplicate IDs, bad rows): the stream decoded but is not a valid
	// snapshot, so classify as corruption.
	corrupt := func(section string, err error) error {
		return fmt.Errorf("%w: rebuilding %s: %v", ErrSnapshotCorrupt, section, err)
	}
	for _, m := range snap.Models {
		tn, cn := reldb.Null(), reldb.Null()
		if m.TableName != "" {
			tn = reldb.String_(m.TableName)
		}
		if m.Column != "" {
			cn = reldb.String_(m.Column)
		}
		if _, err := s.models.Insert(reldb.Row{reldb.Int(m.ID), reldb.String_(m.Name), tn, cn}); err != nil {
			return nil, 0, corrupt("rdf_model$", err)
		}
		mid := m.ID
		if _, err := s.db.CreateView("rdfm_"+strings.ToLower(m.Name), s.links, func(row reldb.Row) bool {
			return row[lcModelID].Int64() == mid
		}); err != nil {
			return nil, 0, corrupt("model views", err)
		}
	}
	for _, v := range snap.Values {
		lit, lang, long := reldb.Null(), reldb.Null(), reldb.Null()
		if v.LiteralType != "" {
			lit = reldb.String_(v.LiteralType)
		}
		if v.Language != "" {
			lang = reldb.String_(v.Language)
		}
		if v.HasLong {
			long = reldb.String_(v.LongValue)
		}
		row := reldb.Row{reldb.Int(v.ID), reldb.String_(v.Name), reldb.String_(v.Type), lit, lang, long}
		if _, err := s.values.Insert(row); err != nil {
			return nil, 0, corrupt("rdf_value$", err)
		}
	}
	for _, l := range snap.Links {
		reif := "N"
		if l.Reif {
			reif = "Y"
		}
		row := reldb.Row{
			reldb.Int(l.ID), reldb.Int(l.Start), reldb.Int(l.P), reldb.Int(l.End),
			reldb.Int(l.Canon), reldb.String_(l.LinkType), reldb.Int(l.Cost),
			reldb.String_(l.Context), reldb.String_(reif), reldb.Int(l.Model),
		}
		if _, err := s.links.Insert(row); err != nil {
			return nil, 0, corrupt("rdf_link$", err)
		}
		if err := s.internNodeLocked(l.Start); err != nil {
			return nil, 0, corrupt("rdf_node$", err)
		}
		if err := s.internNodeLocked(l.End); err != nil {
			return nil, 0, corrupt("rdf_node$", err)
		}
	}
	for _, b := range snap.Blanks {
		if _, err := s.blanks.Insert(reldb.Row{reldb.Int(b.Model), reldb.String_(b.OrigName), reldb.Int(b.ValueID)}); err != nil {
			return nil, 0, corrupt("rdf_blank_node$", err)
		}
	}
	// Restore sequence positions (New() starts them at the paper's bases;
	// advance to the snapshot's positions).
	s.valueSeq.AdvanceTo(snap.ValueSeq)
	s.linkSeq.AdvanceTo(snap.LinkSeq)
	s.modelSeq.AdvanceTo(snap.ModelSeq)
	s.blankSeq.AdvanceTo(snap.BlankSeq)
	return s, snap.WALSeq, nil
}

package rdfxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
)

// Write serializes triples as RDF/XML: one rdf:Description per subject
// (in first-appearance order), property elements per triple. Predicates
// are split into namespace + local name; predicates whose URI cannot be
// split (no '#' or '/' before a NCName tail) are rejected.
//
// The writer emits the subset the parser accepts, so Parse(Write(x))
// round-trips any triple set whose blank labels are valid NCNames.
func Write(w io.Writer, triples []ntriples.Triple) error {
	type prop struct {
		pred string
		obj  rdfterm.Term
	}
	order := []string{}
	bySubject := map[string][]prop{}
	subjTerm := map[string]rdfterm.Term{}
	for _, t := range triples {
		if t.Predicate.Kind != rdfterm.URI {
			return fmt.Errorf("rdfxml: non-URI predicate %v", t.Predicate)
		}
		key := t.Subject.String()
		if _, seen := bySubject[key]; !seen {
			order = append(order, key)
			subjTerm[key] = t.Subject
		}
		bySubject[key] = append(bySubject[key], prop{pred: t.Predicate.Value, obj: t.Object})
	}

	// Collect namespaces for the used predicates.
	nsPrefix := map[string]string{rdfNS: "rdf"}
	var nsOrder []string
	addNS := func(uri string) (string, string, error) {
		ns, local, err := splitPredicate(uri)
		if err != nil {
			return "", "", err
		}
		if _, ok := nsPrefix[ns]; !ok {
			nsPrefix[ns] = fmt.Sprintf("ns%d", len(nsPrefix))
			nsOrder = append(nsOrder, ns)
		}
		return nsPrefix[ns], local, nil
	}
	type line struct {
		prefix, local string
		obj           rdfterm.Term
	}
	outBySubject := map[string][]line{}
	for key, props := range bySubject {
		for _, p := range props {
			prefix, local, err := addNS(p.pred)
			if err != nil {
				return err
			}
			outBySubject[key] = append(outBySubject[key], line{prefix: prefix, local: local, obj: p.obj})
		}
	}
	sort.Strings(nsOrder)

	var b strings.Builder
	b.WriteString(`<rdf:RDF xmlns:rdf="` + rdfNS + `"`)
	for _, ns := range nsOrder {
		fmt.Fprintf(&b, "\n         xmlns:%s=%q", nsPrefix[ns], ns)
	}
	b.WriteString(">\n")
	for _, key := range order {
		subj := subjTerm[key]
		switch subj.Kind {
		case rdfterm.URI:
			fmt.Fprintf(&b, "  <rdf:Description rdf:about=%q>\n", subj.Value)
		case rdfterm.Blank:
			fmt.Fprintf(&b, "  <rdf:Description rdf:nodeID=%q>\n", subj.Value)
		default:
			return fmt.Errorf("rdfxml: literal subject %v", subj)
		}
		for _, l := range outBySubject[key] {
			tag := l.prefix + ":" + l.local
			switch {
			case l.obj.Kind == rdfterm.URI:
				fmt.Fprintf(&b, "    <%s rdf:resource=%q/>\n", tag, l.obj.Value)
			case l.obj.Kind == rdfterm.Blank:
				fmt.Fprintf(&b, "    <%s rdf:nodeID=%q/>\n", tag, l.obj.Value)
			case l.obj.Datatype != "":
				fmt.Fprintf(&b, "    <%s rdf:datatype=%q>%s</%s>\n", tag, l.obj.Datatype, xmlEscape(l.obj.Value), tag)
			case l.obj.Language != "":
				fmt.Fprintf(&b, "    <%s xml:lang=%q>%s</%s>\n", tag, l.obj.Language, xmlEscape(l.obj.Value), tag)
			default:
				fmt.Fprintf(&b, "    <%s>%s</%s>\n", tag, xmlEscape(l.obj.Value), tag)
			}
		}
		b.WriteString("  </rdf:Description>\n")
	}
	b.WriteString("</rdf:RDF>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// splitPredicate separates a predicate URI into namespace and local name:
// the local part is the longest NCName-ish tail after the last '#' or '/'.
func splitPredicate(uri string) (string, string, error) {
	cut := strings.LastIndexAny(uri, "#/")
	if cut < 0 || cut == len(uri)-1 {
		return "", "", fmt.Errorf("rdfxml: cannot derive a QName for predicate %q", uri)
	}
	local := uri[cut+1:]
	if !isNCName(local) {
		return "", "", fmt.Errorf("rdfxml: predicate local name %q is not an XML name", local)
	}
	return uri[:cut+1], local, nil
}

func isNCName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		digit := c >= '0' && c <= '9'
		if i == 0 && !alpha {
			return false
		}
		if !alpha && !digit && c != '-' && c != '.' {
			return false
		}
	}
	return true
}

func xmlEscape(s string) string {
	var b strings.Builder
	xml.EscapeText(&b, []byte(s))
	return b.String()
}

package rdfterm

import (
	"fmt"
	"sort"
	"strings"
)

// Alias is a namespace alias — the engine's SDO_RDF_ALIAS(prefix, ns)
// (Figure 8): occurrences of "prefix:rest" expand to ns+rest.
type Alias struct {
	Prefix    string
	Namespace string
}

// AliasSet resolves prefixed names. The zero value has no aliases; Default
// returns a set preloaded with rdf:, rdfs:, xsd:, and owl:.
type AliasSet struct {
	byPrefix map[string]string
}

// NewAliasSet builds a set from the given aliases, later entries
// overriding earlier ones with the same prefix.
func NewAliasSet(aliases ...Alias) *AliasSet {
	s := &AliasSet{byPrefix: make(map[string]string, len(aliases))}
	for _, a := range aliases {
		s.byPrefix[a.Prefix] = a.Namespace
	}
	return s
}

// Default returns an alias set with the W3C standard prefixes registered.
func Default() *AliasSet {
	return NewAliasSet(
		Alias{Prefix: "rdf", Namespace: RDFNS},
		Alias{Prefix: "rdfs", Namespace: RDFSNS},
		Alias{Prefix: "xsd", Namespace: XSDNS},
		Alias{Prefix: "owl", Namespace: OWLNS},
	)
}

// With returns a new set containing the receiver's aliases plus the given
// ones (which take precedence). The receiver is not modified; a nil
// receiver is treated as empty.
func (s *AliasSet) With(aliases ...Alias) *AliasSet {
	out := &AliasSet{byPrefix: make(map[string]string)}
	if s != nil {
		for p, ns := range s.byPrefix {
			out.byPrefix[p] = ns
		}
	}
	for _, a := range aliases {
		out.byPrefix[a.Prefix] = a.Namespace
	}
	return out
}

// Lookup returns the namespace registered for prefix.
func (s *AliasSet) Lookup(prefix string) (string, bool) {
	if s == nil {
		return "", false
	}
	ns, ok := s.byPrefix[prefix]
	return ns, ok
}

// Expand rewrites "prefix:rest" to namespace+rest when the prefix is
// registered; other strings pass through unchanged.
func (s *AliasSet) Expand(name string) string {
	if s == nil {
		return name
	}
	i := strings.IndexByte(name, ':')
	if i <= 0 {
		return name
	}
	if ns, ok := s.byPrefix[name[:i]]; ok {
		return ns + name[i+1:]
	}
	return name
}

// Compact rewrites a full URI to its shortest registered prefixed form,
// for display; unmatched URIs pass through.
func (s *AliasSet) Compact(uri string) string {
	if s == nil {
		return uri
	}
	best := ""
	bestPrefix := ""
	for p, ns := range s.byPrefix {
		if strings.HasPrefix(uri, ns) && len(ns) > len(best) {
			best, bestPrefix = ns, p
		}
	}
	if best == "" {
		return uri
	}
	return bestPrefix + ":" + uri[len(best):]
}

// Prefixes returns the registered prefixes, sorted.
func (s *AliasSet) Prefixes() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.byPrefix))
	for p := range s.byPrefix {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Validate rejects aliases with empty prefixes or namespaces and prefixes
// containing ':'.
func (a Alias) Validate() error {
	if a.Prefix == "" || a.Namespace == "" {
		return fmt.Errorf("rdfterm: alias needs prefix and namespace, got (%q,%q)", a.Prefix, a.Namespace)
	}
	if strings.ContainsRune(a.Prefix, ':') {
		return fmt.Errorf("rdfterm: alias prefix %q must not contain ':'", a.Prefix)
	}
	return nil
}

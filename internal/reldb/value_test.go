package reldb

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() not null")
	}
	if Int(42).Int64() != 42 {
		t.Fatal("Int round-trip failed")
	}
	if Float(2.5).Float64() != 2.5 {
		t.Fatal("Float round-trip failed")
	}
	if String_("abc").Str() != "abc" {
		t.Fatal("String round-trip failed")
	}
	if !Bool(true).BoolVal() || Bool(false).BoolVal() {
		t.Fatal("Bool round-trip failed")
	}
}

func TestValueAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64 on string value did not panic")
		}
	}()
	_ = String_("x").Int64()
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"7":     Int(7),
		"1.5":   Float(1.5),
		"hi":    String_("hi"),
		"TRUE":  Bool(true),
		"FALSE": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(5), Int(5), 0},
		{String_("a"), String_("b"), -1},
		{Float(1.5), Float(1.5), 0},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1},       // NULL sorts first
		{Null(), String_(""), -1},  // NULL before any kind
		{Int(9), String_("0"), -1}, // cross-kind: by kind tag
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); sign(got) != c.want {
			t.Errorf("Compare(%v,%v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); sign(got) != -c.want {
			t.Errorf("Compare(%v,%v) = %d, want sign %d", c.b, c.a, got, -c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestKeyCompareLexicographic(t *testing.T) {
	a := Key{Int(1), String_("a")}
	b := Key{Int(1), String_("b")}
	c := Key{Int(2)}
	prefix := Key{Int(1)}
	if a.Compare(b) >= 0 {
		t.Fatal("(1,a) should sort before (1,b)")
	}
	if b.Compare(c) >= 0 {
		t.Fatal("(1,b) should sort before (2)")
	}
	if prefix.Compare(a) >= 0 {
		t.Fatal("prefix (1) should sort before (1,a)")
	}
	if a.Compare(a) != 0 {
		t.Fatal("key not equal to itself")
	}
}

// Property: Value.Compare is antisymmetric and transitive-consistent for
// integer values (spot-check of total order laws).
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(x, y int64) bool {
		a, b := Int(x), Int(y)
		return sign(a.Compare(b)) == -sign(b.Compare(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyEncodeInjective(t *testing.T) {
	// encodeKey must be collision-free: two different keys never encode to
	// the same string.
	f := func(a1, a2, b1, b2 string) bool {
		ka := Key{String_(a1), String_(a2)}
		kb := Key{String_(b1), String_(b2)}
		if ka.Compare(kb) == 0 {
			return encodeKey(ka) == encodeKey(kb)
		}
		return encodeKey(ka) != encodeKey(kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), String_("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].Int64() != 1 {
		t.Fatal("Clone did not copy")
	}
}

package core

import (
	"sort"
	"testing"

	"repro/internal/ndm"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// TestFlatQueryMatchesMemberFunctions asserts the Experiment I equivalence
// at the correctness level: the three-way join over the storage tables
// and the member-function path return identical rows.
func TestFlatQueryMatchesMemberFunctions(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	at := newAppTable(t, s, "app")
	rows := [][3]string{
		{"gov:p1", "gov:seeAlso", "gov:x1"},
		{"gov:p1", "gov:seeAlso", "gov:x2"},
		{"gov:p1", "gov:mass", `"42"^^xsd:int`},
		{"gov:p1", "gov:label", `"a protein"`},
		{"gov:p2", "gov:seeAlso", "gov:x1"},
	}
	for i, r := range rows {
		if _, err := at.InsertTriple([]reldb.Value{reldb.Int(int64(i))}, "m", r[0], r[1], r[2], a); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := at.CreateSubjectIndex("sub")
	if err != nil {
		t.Fatal(err)
	}
	subject := "http://www.us.gov#p1"

	member, err := at.QueryBySubject(idx, subject)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := s.FlatQueryBySubject("m", subject)
	if err != nil {
		t.Fatal(err)
	}
	unindexed, err := at.UnindexedQueryBySubject(subject)
	if err != nil {
		t.Fatal(err)
	}
	bySubText, err := s.FindBySubjectText("m", subject)
	if err != nil {
		t.Fatal(err)
	}
	canon := func(ts []Triple) []string {
		out := make([]string, len(ts))
		for i, tr := range ts {
			out[i] = tr.String()
		}
		sort.Strings(out)
		return out
	}
	want := canon(member)
	if len(want) != 4 {
		t.Fatalf("member rows = %d", len(want))
	}
	for name, got := range map[string][]Triple{
		"flat": flat, "unindexed": unindexed, "findBySubjectText": bySubText,
	} {
		g := canon(got)
		if len(g) != len(want) {
			t.Fatalf("%s rows = %d, want %d", name, len(g), len(want))
		}
		for i := range want {
			if g[i] != want[i] {
				t.Fatalf("%s row %d = %s, want %s", name, i, g[i], want[i])
			}
		}
	}
	// Unknown subject: all paths return empty.
	flat, _ = s.FlatQueryBySubject("m", "http://nope")
	if len(flat) != 0 {
		t.Fatalf("flat unknown subject rows = %d", len(flat))
	}
	if _, err := s.FlatQueryBySubject("ghost", subject); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestInsertImpliedDirectly(t *testing.T) {
	s := newStoreWithModel(t, "m")
	ts, err := s.InsertImplied("m",
		rdfterm.NewURI("http://s"), rdfterm.NewURI("http://p"), rdfterm.NewURI("http://o"))
	if err != nil {
		t.Fatal(err)
	}
	info, _ := s.LinkInfo(ts.TID)
	if info.Context != ContextIndirect {
		t.Fatalf("CONTEXT = %s", info.Context)
	}
	// Existing fact keeps its context.
	fact, _ := s.InsertTerms("m", rdfterm.NewURI("http://s2"), rdfterm.NewURI("http://p"), rdfterm.NewURI("http://o"))
	again, err := s.InsertImplied("m", rdfterm.NewURI("http://s2"), rdfterm.NewURI("http://p"), rdfterm.NewURI("http://o"))
	if err != nil || again.TID != fact.TID {
		t.Fatalf("implied reinsert = %v, %v", again, err)
	}
	info, _ = s.LinkInfo(fact.TID)
	if info.Context != ContextDirect {
		t.Fatalf("fact downgraded to %s", info.Context)
	}
}

func TestNetworkNodesAndInLinks(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	s.NewTripleS("m", "gov:a", "gov:p", "gov:c", a)
	s.NewTripleS("m", "gov:b", "gov:p", "gov:c", a)
	net, err := s.Network("m")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	net.Nodes(func(int64) bool { count++; return true })
	if count != 3 { // a, b, c
		t.Fatalf("network nodes = %d", count)
	}
	// Early stop.
	count = 0
	net.Nodes(func(int64) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	cID, _ := net.NodeID(rdfterm.NewURI("http://www.us.gov#c"))
	in, out := ndm.Degree(net, cID)
	if in != 2 || out != 0 {
		t.Fatalf("degree(c) = (%d,%d)", in, out)
	}
	var starts []string
	net.InLinks(cID, func(_, start int64, cost float64) bool {
		term, err := net.NodeTerm(start)
		if err != nil {
			t.Fatal(err)
		}
		if cost != 1 {
			t.Fatalf("link cost = %g", cost)
		}
		starts = append(starts, term.Value)
		return true
	})
	if len(starts) != 2 {
		t.Fatalf("InLinks = %v", starts)
	}
	// InLinks early stop.
	n := 0
	net.InLinks(cID, func(_, _ int64, _ float64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("InLinks early stop visited %d", n)
	}
}

func TestApplicationTableAccessor(t *testing.T) {
	s := newStoreWithModel(t, "m")
	at := newAppTable(t, s, "t")
	if at.Table() == nil || at.Table().Name() != "t" {
		t.Fatal("Table accessor wrong")
	}
	// InsertTriple propagates constructor errors.
	if _, err := at.InsertTriple([]reldb.Value{reldb.Int(1)}, "ghost", "gov:a", "gov:p", "gov:b", govAliases()); err == nil {
		t.Fatal("missing model accepted")
	}
}

package core

import (
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// ApplicationTable models the paper's user-defined tables with an
// SDO_RDF_TRIPLE_S column (§4.3):
//
//	CREATE TABLE ciadata (id NUMBER, triple SDO_RDF_TRIPLE_S);
//
// The object column is stored as its five ID components; member functions
// work on rows read back because the table re-binds them to the store.
type ApplicationTable struct {
	store *Store
	table *reldb.Table
	// userCols is the number of leading user columns before the five
	// TripleS ID columns.
	userCols int
}

// tripleSColumns returns the five storage columns of the object type.
func tripleSColumns() []reldb.Column {
	return []reldb.Column{
		{Name: "RDF_T_ID", Kind: reldb.KindInt},
		{Name: "RDF_M_ID", Kind: reldb.KindInt},
		{Name: "RDF_S_ID", Kind: reldb.KindInt},
		{Name: "RDF_P_ID", Kind: reldb.KindInt},
		{Name: "RDF_O_ID", Kind: reldb.KindInt},
	}
}

// CreateApplicationTable creates a table with the given user columns plus
// one SDO_RDF_TRIPLE_S column, in the given database (the application's
// schema, distinct from the store's central schema).
func CreateApplicationTable(db *reldb.Database, store *Store, name string, userCols ...reldb.Column) (*ApplicationTable, error) {
	cols := append(append([]reldb.Column{}, userCols...), tripleSColumns()...)
	tb, err := db.CreateTable(reldb.NewSchema(name, cols...))
	if err != nil {
		return nil, err
	}
	return &ApplicationTable{store: store, table: tb, userCols: len(userCols)}, nil
}

// Table exposes the underlying reldb table (for scans and index creation).
func (a *ApplicationTable) Table() *reldb.Table { return a.table }

// Len returns the number of rows.
func (a *ApplicationTable) Len() int { return a.table.Len() }

// Insert appends a row of user values plus the triple object.
func (a *ApplicationTable) Insert(userValues []reldb.Value, ts TripleS) (reldb.RowID, error) {
	if len(userValues) != a.userCols {
		return 0, fmt.Errorf("core: table %s expects %d user columns, got %d",
			a.table.Name(), a.userCols, len(userValues))
	}
	if ts.IsZero() {
		return 0, fmt.Errorf("core: inserting zero TripleS into %s", a.table.Name())
	}
	row := append(append(reldb.Row{}, userValues...),
		reldb.Int(ts.TID), reldb.Int(ts.MID), reldb.Int(ts.SID), reldb.Int(ts.PID), reldb.Int(ts.OID))
	return a.table.Insert(row)
}

// Get returns the user values and the re-bound TripleS of a row.
func (a *ApplicationTable) Get(id reldb.RowID) ([]reldb.Value, TripleS, error) {
	r, err := a.table.Get(id)
	if err != nil {
		return nil, TripleS{}, err
	}
	user, ts := a.split(r)
	return user, ts, nil
}

func (a *ApplicationTable) split(r reldb.Row) ([]reldb.Value, TripleS) {
	u := a.userCols
	ts := a.store.ReconstructTripleS(
		r[u].Int64(), r[u+1].Int64(), r[u+2].Int64(), r[u+3].Int64(), r[u+4].Int64())
	return append([]reldb.Value{}, r[:u]...), ts
}

// Scan visits every row with its re-bound triple object.
func (a *ApplicationTable) Scan(fn func(id reldb.RowID, user []reldb.Value, ts TripleS) bool) {
	a.table.Scan(func(id reldb.RowID, r reldb.Row) bool {
		user, ts := a.split(r)
		return fn(id, user, ts)
	})
}

// Function-based indexes (§7.2): CREATE INDEX … ON t (triple.GET_SUBJECT())
// becomes an index whose key function calls the member function.

// CreateSubjectIndex builds the §7.2 up5m_sub_fbidx equivalent.
func (a *ApplicationTable) CreateSubjectIndex(name string) (*reldb.Index, error) {
	return a.createMemberIndex(name, func(ts TripleS) (string, error) { return ts.GetSubject() })
}

// CreatePropertyIndex builds the §7.2 up5m_prop_fbidx equivalent.
func (a *ApplicationTable) CreatePropertyIndex(name string) (*reldb.Index, error) {
	return a.createMemberIndex(name, func(ts TripleS) (string, error) { return ts.GetProperty() })
}

// CreateObjectIndex builds the §7.2 up5m_obj_fbidx equivalent
// (TO_CHAR(triple.GET_OBJECT())).
func (a *ApplicationTable) CreateObjectIndex(name string) (*reldb.Index, error) {
	return a.createMemberIndex(name, func(ts TripleS) (string, error) { return ts.GetObject() })
}

func (a *ApplicationTable) createMemberIndex(name string, get func(TripleS) (string, error)) (*reldb.Index, error) {
	return a.table.CreateFunctionIndex(name, false, func(r reldb.Row) reldb.Key {
		_, ts := a.split(r)
		text, err := get(ts)
		if err != nil {
			// A dangling reference indexes as NULL rather than failing the
			// whole index build.
			return reldb.Key{reldb.Null()}
		}
		return reldb.Key{reldb.String_(text)}
	})
}

// QueryBySubject is the Experiment II "RDF objects" query (Figure 10):
//
//	SELECT u.triple.GET_TRIPLE() FROM <table> u
//	WHERE u.triple.GET_SUBJECT() = :subject
//
// using the function-based subject index.
func (a *ApplicationTable) QueryBySubject(idx *reldb.Index, subject string) ([]Triple, error) {
	var out []Triple
	var firstErr error
	for _, rid := range idx.Lookup(reldb.Key{reldb.String_(subject)}) {
		r, err := a.table.Get(rid)
		if err != nil {
			continue
		}
		_, ts := a.split(r)
		tr, err := ts.GetTriple()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out = append(out, tr)
	}
	return out, firstErr
}

// InsertTriple is the one-call convenience mirroring the paper's
//
//	INSERT INTO ciadata VALUES (1, SDO_RDF_TRIPLE_S('cia', s, p, o));
//
// it builds the storage object (inserting into the central schema) and
// appends the application row.
func (a *ApplicationTable) InsertTriple(userValues []reldb.Value, model, subject, property, object string, aliases *rdfterm.AliasSet) (TripleS, error) {
	ts, err := a.store.NewTripleS(model, subject, property, object, aliases)
	if err != nil {
		return TripleS{}, err
	}
	if _, err := a.Insert(userValues, ts); err != nil {
		return TripleS{}, err
	}
	return ts, nil
}

package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Segmented log: a Dir manages a directory of numbered segment files
//
//	wal-000001.log, wal-000002.log, ...
//
// each carrying the same Magic header and CRC-framed records as a
// single-file Log. Appends go to the highest-numbered (current) segment;
// when it would grow past SegmentBytes the Dir rotates: the current
// segment is fsynced, a fresh one is created, and writes continue there.
// Because rotation syncs before the next segment exists, every non-final
// segment ends on a frame boundary — recovery therefore tolerates a torn
// tail only in the final segment and reports damage anywhere else as
// ErrSegmentCorrupt rather than silently truncating history.
//
// Retention is deletion, not truncation: a checkpoint rotates, records
// the new segment number as a watermark inside the snapshot, and then
// removes every older segment (RemoveBelow). Recovery finishes an
// interrupted removal by deleting segments below the snapshot's
// watermark before replaying, so every crash window between "snapshot
// durable" and "old segments gone" converges to the same state.
//
// On top sits a byte budget for the directory: crossing Budget.SoftBytes
// fires OnSoft (the supervisor's cue to checkpoint), and an append that
// would cross Budget.HardBytes is rejected with ErrNoSpace before it
// touches the disk — the same typed family a real ENOSPC from the
// filesystem is classified into by IsNoSpace.

// ErrNoSpace reports an append rejected by the Dir's hard byte budget.
// It is in the same fault family as a filesystem ENOSPC: IsNoSpace
// matches both, and the supervisor degrades to read-only disk-pressure
// mode on either.
var ErrNoSpace = errors.New("wal: disk budget exhausted")

// ErrSegmentCorrupt reports damage in a non-final segment. Rotation
// syncs a segment before creating its successor, so only the final
// segment may legitimately end mid-frame; a torn, truncated, or
// unreadable earlier segment means history is gone and replay cannot
// be trusted.
var ErrSegmentCorrupt = errors.New("wal: non-final segment damaged")

// IsNoSpace reports whether err is a disk-space exhaustion fault: the
// Dir's own budget rejection (ErrNoSpace), a filesystem ENOSPC, or a
// short write (the form ENOSPC takes mid-write(2)).
func IsNoSpace(err error) bool {
	return errors.Is(err, ErrNoSpace) ||
		errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, io.ErrShortWrite)
}

// Budget bounds the WAL directory's total size.
type Budget struct {
	// SoftBytes, when positive, is the watermark at which OnSoft fires
	// (once per crossing): the supervisor's cue to checkpoint and free
	// segments before the hard limit is reached.
	SoftBytes int64
	// HardBytes, when positive, is the ceiling: an append that would push
	// the directory past it is rejected with ErrNoSpace.
	HardBytes int64
}

// DirOptions configure a segmented WAL directory.
type DirOptions struct {
	// SegmentBytes is the rotation threshold: an append that would grow
	// the current segment past it first rotates to a fresh segment.
	// 0 means the 64 MiB default. A single append larger than the
	// threshold still lands (in a segment of its own).
	SegmentBytes int64
	// Budget bounds the directory's total size; the zero value disables
	// both watermarks.
	Budget Budget
	// Wrap, when non-nil, interposes on every segment file the Dir
	// appends to (fault injection: wrap the real *os.File in a
	// FlakyFile). Recovery scanning always reads the raw files.
	Wrap func(File) File
	// OnSoft is called (outside the Dir's lock) when an append first
	// pushes the directory past Budget.SoftBytes; it re-arms once
	// retention brings the total back under the watermark.
	OnSoft func(totalBytes int64)
}

// DefaultSegmentBytes is the rotation threshold used when
// DirOptions.SegmentBytes is zero.
const DefaultSegmentBytes int64 = 64 << 20

// DirScanResult is the outcome of opening a segmented WAL: the replayable
// records plus what recovery found and repaired on the way.
type DirScanResult struct {
	// Records holds every verified record across all retained segments,
	// in append order.
	Records []Record
	// Segments is the number of retained segment files (current included).
	Segments int
	// StartSeq and Seq are the first and current (last) segment numbers.
	StartSeq, Seq int64
	// TotalBytes is the directory's size after tail repair.
	TotalBytes int64
	// Truncated reports that the final segment had a torn tail, now
	// discarded; TailErr says why scanning stopped.
	Truncated bool
	TailErr   error
	// Removed is the number of segments below the watermark that were
	// deleted at open — an interrupted checkpoint's retention, finished.
	Removed int
}

// Dir is a segmented write-ahead log. It satisfies the same
// Append/Commit contract as Log (core.Durability) and the Reset
// contract of a checkpoint target, so the store and supervisor cannot
// tell the difference — except that space is reclaimed by deleting
// whole segments instead of truncating a live file.
type Dir struct {
	mu   sync.Mutex
	path string
	opts DirOptions

	seq   int64 // current (append) segment number
	start int64 // oldest retained segment number
	f     File  // wrapped sink for the current segment
	size  int64 // bytes in the current segment (header included)
	prev  int64 // bytes across retained non-current segments

	buf       []byte   // scratch frame buffer, reused across appends
	met       *Metrics // nil when instrumentation is disabled
	softFired bool     // soft watermark crossed; re-arms below the mark
	poisoned  error    // torn write could not be rolled back; see writeLocked
	closed    bool
}

// segmentName renders the file name for segment seq.
func segmentName(seq int64) string {
	return fmt.Sprintf("wal-%06d.log", seq)
}

// parseSegmentName extracts the sequence number from a segment file
// name, reporting ok=false for files that are not segments.
func parseSegmentName(name string) (int64, bool) {
	const pre, suf = "wal-", ".log"
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	seq, err := strconv.ParseInt(name[len(pre):len(name)-len(suf)], 10, 64)
	if err != nil || seq < 1 || segmentName(seq) != name {
		return 0, false
	}
	return seq, true
}

// OpenDir opens (or creates) a segmented WAL in dir. fromSeq is the
// snapshot's watermark: segments numbered below it describe state the
// snapshot already contains and are deleted before replay (finishing any
// retention a crash interrupted); pass 0 when there is no snapshot.
//
// The retained segments are scanned in order. Damage in any non-final
// segment is ErrSegmentCorrupt; a torn tail in the final segment is
// repaired (truncated) and reported via the DirScanResult, after which
// the Dir appends from the verified end.
func OpenDir(dir string, fromSeq int64, opts DirOptions) (*Dir, DirScanResult, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, DirScanResult{}, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, DirScanResult{}, err
	}
	var seqs []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	var res DirScanResult
	// Finish any interrupted retention: the snapshot at watermark fromSeq
	// already holds everything below it.
	retained := seqs[:0]
	for _, seq := range seqs {
		if seq < fromSeq {
			if err := os.Remove(filepath.Join(dir, segmentName(seq))); err != nil {
				return nil, DirScanResult{}, fmt.Errorf("wal: removing stale segment %s: %w", segmentName(seq), err)
			}
			res.Removed++
			continue
		}
		retained = append(retained, seq)
	}
	seqs = retained

	d := &Dir{path: dir, opts: opts}
	if len(seqs) == 0 {
		// Fresh directory (or everything was below the watermark): start a
		// new segment at the watermark so replay ordering stays monotone.
		seq := fromSeq
		if seq < 1 {
			seq = 1
		}
		if err := d.createSegmentLocked(seq); err != nil {
			return nil, DirScanResult{}, err
		}
		d.start = seq
		res.Segments, res.StartSeq, res.Seq, res.TotalBytes = 1, seq, seq, d.size
		d.updateGaugesLocked()
		return d, res, nil
	}

	// A gap in the retained sequence means a whole segment of history is
	// missing — replay past it would silently skip committed mutations.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			return nil, DirScanResult{}, fmt.Errorf("%w: segment %s missing (have %s then %s)",
				ErrSegmentCorrupt, segmentName(seqs[i-1]+1), segmentName(seqs[i-1]), segmentName(seqs[i]))
		}
	}
	if fromSeq > 0 && seqs[0] != fromSeq {
		return nil, DirScanResult{}, fmt.Errorf("%w: snapshot watermark is %s but the oldest segment is %s",
			ErrSegmentCorrupt, segmentName(fromSeq), segmentName(seqs[0]))
	}

	for i, seq := range seqs {
		name := segmentName(seq)
		path := filepath.Join(dir, name)
		final := i == len(seqs)-1
		if !final {
			sres, err := ScanFile(path)
			if err != nil {
				return nil, DirScanResult{}, fmt.Errorf("%w: %s: %v", ErrSegmentCorrupt, name, err)
			}
			if sres.Truncated {
				return nil, DirScanResult{}, fmt.Errorf("%w: %s: %v", ErrSegmentCorrupt, name, sres.TailErr)
			}
			if sres.ValidBytes < int64(len(Magic)) {
				return nil, DirScanResult{}, fmt.Errorf("%w: %s: empty segment before the final one", ErrSegmentCorrupt, name)
			}
			res.Records = append(res.Records, sres.Records...)
			d.prev += sres.ValidBytes
			continue
		}
		// Final segment: tolerate (and repair) a torn tail, then keep it
		// open for appends from the verified end.
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, DirScanResult{}, err
		}
		sres, err := Scan(f)
		if err != nil {
			f.Close()
			return nil, DirScanResult{}, fmt.Errorf("wal: %s: %w", name, err)
		}
		if err := f.Truncate(sres.ValidBytes); err != nil {
			f.Close()
			return nil, DirScanResult{}, err
		}
		if _, err := f.Seek(sres.ValidBytes, io.SeekStart); err != nil {
			f.Close()
			return nil, DirScanResult{}, err
		}
		sink := File(f)
		if opts.Wrap != nil {
			sink = opts.Wrap(f)
		}
		d.f, d.seq, d.size = sink, seq, sres.ValidBytes
		if sres.ValidBytes < int64(len(Magic)) {
			// The crash tore even the header off (a segment created but
			// never written): rewrite it so appends have a valid file.
			if _, err := sink.Write([]byte(Magic)); err != nil {
				sink.Close()
				return nil, DirScanResult{}, fmt.Errorf("wal: rewriting header of %s: %w", name, err)
			}
			d.size = int64(len(Magic))
		}
		res.Records = append(res.Records, sres.Records...)
		res.Truncated, res.TailErr = sres.Truncated, sres.TailErr
	}
	d.start = seqs[0]
	res.Segments = len(seqs)
	res.StartSeq, res.Seq = seqs[0], d.seq
	res.TotalBytes = d.prev + d.size
	d.softFired = opts.Budget.SoftBytes > 0 && res.TotalBytes >= opts.Budget.SoftBytes
	d.updateGaugesLocked()
	return d, res, nil
}

// createSegmentLocked creates segment seq with a fresh header and makes
// it the current sink. Caller holds d.mu (or owns d exclusively).
func (d *Dir) createSegmentLocked(seq int64) error {
	f, err := os.OpenFile(filepath.Join(d.path, segmentName(seq)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	sink := File(f)
	if d.opts.Wrap != nil {
		sink = d.opts.Wrap(f)
	}
	if _, err := sink.Write([]byte(Magic)); err != nil {
		sink.Close()
		os.Remove(filepath.Join(d.path, segmentName(seq)))
		return fmt.Errorf("wal: writing header of %s: %w", segmentName(seq), err)
	}
	d.f, d.seq, d.size = sink, seq, int64(len(Magic))
	return nil
}

// SetMetrics attaches instrumentation. Call before the Dir is shared.
func (d *Dir) SetMetrics(m *Metrics) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met = m
	d.updateGaugesLocked()
}

// updateGaugesLocked refreshes the segment-count and disk-bytes gauges.
func (d *Dir) updateGaugesLocked() {
	d.met.setDiskUsage(int(d.seq-d.start+1), d.prev+d.size)
}

// rotateLocked syncs and retires the current segment and starts the
// next. On failure the current segment stays active. Caller holds d.mu.
func (d *Dir) rotateLocked() error {
	if err := d.f.Sync(); err != nil {
		d.met.onFsyncError()
		return fmt.Errorf("wal: rotate: syncing %s: %w", segmentName(d.seq), err)
	}
	old, oldSize := d.f, d.size
	if err := d.createSegmentLocked(d.seq + 1); err != nil {
		// d.f/d.seq/d.size are untouched: the old segment remains current.
		return fmt.Errorf("wal: rotate: %w", err)
	}
	old.Close()
	d.prev += oldSize
	d.met.onRotate()
	d.updateGaugesLocked()
	return nil
}

// writeLocked rotates if the write would overflow the segment, enforces
// the hard budget, and writes b to the current segment. It returns
// whether the soft watermark was crossed by this write (the caller fires
// OnSoft after unlocking). Caller holds d.mu.
func (d *Dir) writeLocked(b []byte) (fireSoft bool, err error) {
	if d.closed {
		return false, errors.New("wal: append on closed dir")
	}
	if d.poisoned != nil {
		return false, d.poisoned
	}
	if d.size > int64(len(Magic)) && d.size+int64(len(b)) > d.opts.SegmentBytes {
		if err := d.rotateLocked(); err != nil {
			return false, err
		}
	}
	if hard := d.opts.Budget.HardBytes; hard > 0 && d.prev+d.size+int64(len(b)) > hard {
		d.met.onBudgetReject()
		return false, fmt.Errorf("%w: %d bytes + %d-byte append exceeds the %d-byte hard budget",
			ErrNoSpace, d.prev+d.size, len(b), hard)
	}
	pre := d.size
	n, werr := d.f.Write(b)
	if n > 0 {
		d.size += int64(n)
		d.updateGaugesLocked()
	}
	if werr != nil {
		if n > 0 {
			// A prefix of the frame landed (the shape ENOSPC takes
			// mid-write(2)). Roll the segment back to the pre-write frame
			// boundary: if a later append continued past the tear, a
			// subsequent rotation would fossilize it mid-segment, which
			// recovery rightly refuses as ErrSegmentCorrupt. When the
			// rollback itself fails the Dir poisons instead — every further
			// append is refused until the supervisor replaces the Dir
			// (reopening repairs the torn tail on disk).
			if rerr := d.rollbackLocked(pre); rerr != nil {
				d.poisoned = fmt.Errorf("wal: %s: torn write not rolled back (%v) after: %w",
					segmentName(d.seq), rerr, werr)
			}
		}
		return false, werr
	}
	if soft := d.opts.Budget.SoftBytes; soft > 0 && !d.softFired && d.prev+d.size >= soft {
		d.softFired = true
		d.met.onSoftWatermark()
		fireSoft = true
	}
	return fireSoft, nil
}

// rollbackLocked truncates the current segment back to size pre after a
// torn write, restoring the invariant that the write offset sits on a
// frame boundary. Caller holds d.mu.
func (d *Dir) rollbackLocked(pre int64) error {
	tf, ok := d.f.(truncatable)
	if !ok {
		return fmt.Errorf("sink %T does not support truncation", d.f)
	}
	if err := tf.Truncate(pre); err != nil {
		return err
	}
	if _, err := tf.Seek(pre, io.SeekStart); err != nil {
		return err
	}
	d.size = pre
	d.updateGaugesLocked()
	return nil
}

// Append frames and writes one record to the current segment, rotating
// first when the segment is full. The write is buffered by the OS until
// Commit; a crash before Commit may tear the final segment's tail, which
// recovery detects and truncates.
func (d *Dir) Append(r Record) error {
	d.mu.Lock()
	d.buf = appendFrame(d.buf[:0], &r)
	frame := len(d.buf)
	fire, err := d.writeLocked(d.buf)
	total := d.prev + d.size
	if err == nil {
		d.met.onAppend(frame)
	}
	d.mu.Unlock()
	if fire && d.opts.OnSoft != nil {
		d.opts.OnSoft(total)
	}
	if err != nil {
		return fmt.Errorf("wal: append %s: %w", r.Type, err)
	}
	return nil
}

// writeRaw writes already-framed bytes — the flush path of a GroupLog,
// which frames records itself. The whole batch lands in one segment
// (rotation happens before, never inside, a batch).
func (d *Dir) writeRaw(b []byte) error {
	d.mu.Lock()
	fire, err := d.writeLocked(b)
	total := d.prev + d.size
	d.mu.Unlock()
	if fire && d.opts.OnSoft != nil {
		d.opts.OnSoft(total)
	}
	return err
}

// Commit makes all appended records durable (fsync of the current
// segment; older segments were synced when they were rotated away).
func (d *Dir) Commit() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t0 := d.met.startTimer()
	if err := d.f.Sync(); err != nil {
		d.met.onFsyncError()
		return fmt.Errorf("wal: sync %s: %w", segmentName(d.seq), err)
	}
	d.met.onFsync(t0)
	return nil
}

// Rotate forces a segment boundary and returns the new current segment
// number — the checkpoint protocol's first step: everything the snapshot
// will contain now lives in segments below the returned number.
func (d *Dir) Rotate() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, errors.New("wal: rotate on closed dir")
	}
	if err := d.rotateLocked(); err != nil {
		return 0, err
	}
	return d.seq, nil
}

// RemoveBelow deletes every retained segment numbered below seq (the
// current segment is never deleted) and returns how many were removed —
// the checkpoint protocol's final step, after the snapshot recording seq
// as its watermark is durable.
func (d *Dir) RemoveBelow(seq int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, errors.New("wal: remove on closed dir")
	}
	removed := 0
	for s := d.start; s < seq && s < d.seq; s++ {
		path := filepath.Join(d.path, segmentName(s))
		st, err := os.Stat(path)
		if err != nil {
			return removed, fmt.Errorf("wal: retention: %w", err)
		}
		if err := os.Remove(path); err != nil {
			return removed, fmt.Errorf("wal: retention: %w", err)
		}
		d.prev -= st.Size()
		d.start = s + 1
		removed++
	}
	if removed > 0 {
		d.met.onRetire(removed)
		d.updateGaugesLocked()
	}
	if soft := d.opts.Budget.SoftBytes; soft > 0 && d.prev+d.size < soft {
		d.softFired = false
	}
	return removed, nil
}

// Reset is the single-file checkpoint contract mapped onto segments:
// rotate, then delete everything below the new segment. Prefer
// core.CheckpointDir, which also records the watermark in the snapshot
// so a crash between snapshot and retention cannot double-replay.
func (d *Dir) Reset() error {
	seq, err := d.Rotate()
	if err != nil {
		return err
	}
	if _, err := d.RemoveBelow(seq); err != nil {
		return err
	}
	d.met.onReset()
	return nil
}

// Seq returns the current (append) segment number.
func (d *Dir) Seq() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Segments returns the number of retained segment files.
func (d *Dir) Segments() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.seq - d.start + 1)
}

// Size returns the directory's total bytes across retained segments.
func (d *Dir) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.prev + d.size
}

// Path returns the directory the segments live in.
func (d *Dir) Path() string { return d.path }

// Close syncs and closes the current segment.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

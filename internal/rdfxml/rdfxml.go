// Package rdfxml parses the RDF/XML syntax — the format the UniProt dump
// of §7.1.1 was distributed in, and the input the paper's Java bulk-load
// API read. It implements the commonly used subset of the W3C RDF/XML
// recommendation:
//
//   - rdf:RDF roots, rdf:Description nodes, typed node elements;
//   - rdf:about / rdf:ID / rdf:nodeID subjects and anonymous blanks;
//   - property elements with rdf:resource, rdf:nodeID, nested node
//     elements, rdf:parseType="Resource", plain/typed/lang literals;
//   - property attributes on node elements;
//   - rdf:li container membership (expanded to rdf:_n);
//   - rdf:ID on property elements — statement reification, emitted as the
//     four-triple quad so reify.Loader can fold it into the streamlined
//     DBUri representation.
//
// Out of scope (rejected or ignored with an error where ambiguity would
// corrupt data): rdf:parseType="Collection", rdf:aboutEach, xml:base
// processing beyond the Base option, and XMLLiteral canonicalization.
package rdfxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
)

// Options configure parsing.
type Options struct {
	// Base resolves rdf:ID values ("#name" fragments) and relative URIs.
	Base string
}

// Parse reads an RDF/XML document and returns its triples. Reified
// statements (rdf:ID on property elements) are returned as explicit
// reification quads.
func Parse(r io.Reader, opts Options) ([]ntriples.Triple, error) {
	p := &parser{
		dec:  xml.NewDecoder(r),
		base: opts.Base,
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.out, nil
}

const rdfNS = rdfterm.RDFNS

type parser struct {
	dec      *xml.Decoder
	base     string
	out      []ntriples.Triple
	blankSeq int
	idsSeen  map[string]bool
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("rdfxml: %s", fmt.Sprintf(format, args...))
}

func (p *parser) emit(s, pred, o rdfterm.Term) {
	p.out = append(p.out, ntriples.Triple{Subject: s, Predicate: pred, Object: o})
}

func (p *parser) freshBlank() rdfterm.Term {
	p.blankSeq++
	return rdfterm.NewBlank(fmt.Sprintf("genid%d", p.blankSeq))
}

// run consumes the document: find the root, then parse node elements. A
// root named rdf:RDF holds node elements; any other root is itself a node
// element.
func (p *parser) run() error {
	for {
		tok, err := p.dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if start.Name.Space == rdfNS && start.Name.Local == "RDF" {
			if err := p.nodeElements(start.End()); err != nil {
				return err
			}
			continue
		}
		if _, err := p.nodeElement(start); err != nil {
			return err
		}
	}
}

// nodeElements parses children of rdf:RDF until its end tag.
func (p *parser) nodeElements(end xml.EndElement) error {
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if _, err := p.nodeElement(t); err != nil {
				return err
			}
		case xml.EndElement:
			if t.Name == end.Name {
				return nil
			}
		}
	}
}

// attr fetches an rdf: attribute from a start element.
func rdfAttr(start xml.StartElement, local string) (string, bool) {
	for _, a := range start.Attr {
		if a.Name.Space == rdfNS && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

func xmlLang(start xml.StartElement) string {
	for _, a := range start.Attr {
		if a.Name.Local == "lang" && (a.Name.Space == "xml" || a.Name.Space == "http://www.w3.org/XML/1998/namespace") {
			return a.Value
		}
	}
	return ""
}

// resolve applies the base to fragment/relative references.
func (p *parser) resolve(ref string) string {
	if ref == "" {
		return p.base
	}
	if strings.Contains(ref, ":") || p.base == "" {
		return ref // absolute (scheme present) or no base to resolve against
	}
	if strings.HasPrefix(ref, "#") {
		return p.base + ref
	}
	return p.base + "/" + ref
}

// nodeElement parses one node element and returns its subject term.
func (p *parser) nodeElement(start xml.StartElement) (rdfterm.Term, error) {
	subj, err := p.subjectOf(start)
	if err != nil {
		return rdfterm.Term{}, err
	}
	// Typed node element: the element name is the type.
	if !(start.Name.Space == rdfNS && start.Name.Local == "Description") {
		p.emit(subj, rdfterm.NewURI(rdfterm.RDFType), rdfterm.NewURI(start.Name.Space+start.Name.Local))
	}
	// Property attributes (non-rdf, non-xml attributes are literal
	// statements).
	lang := xmlLang(start)
	for _, a := range start.Attr {
		if a.Name.Space == rdfNS || a.Name.Space == "xmlns" || a.Name.Local == "xmlns" ||
			a.Name.Space == "xml" || a.Name.Space == "http://www.w3.org/XML/1998/namespace" {
			continue
		}
		if a.Name.Space == "" {
			// Unqualified non-xmlns attribute: not a property.
			continue
		}
		obj := rdfterm.NewLiteral(a.Value)
		if lang != "" {
			obj = rdfterm.NewLangLiteral(a.Value, lang)
		}
		p.emit(subj, rdfterm.NewURI(a.Name.Space+a.Name.Local), obj)
	}
	// Property elements.
	liCounter := 0
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return rdfterm.Term{}, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := p.propertyElement(subj, t, lang, &liCounter); err != nil {
				return rdfterm.Term{}, err
			}
		case xml.EndElement:
			return subj, nil
		}
	}
}

// subjectOf derives the subject term from rdf:about / rdf:ID / rdf:nodeID.
func (p *parser) subjectOf(start xml.StartElement) (rdfterm.Term, error) {
	about, hasAbout := rdfAttr(start, "about")
	id, hasID := rdfAttr(start, "ID")
	nodeID, hasNode := rdfAttr(start, "nodeID")
	n := 0
	for _, b := range []bool{hasAbout, hasID, hasNode} {
		if b {
			n++
		}
	}
	if n > 1 {
		return rdfterm.Term{}, p.errorf("element %s has multiple subject attributes", start.Name.Local)
	}
	switch {
	case hasAbout:
		return rdfterm.NewURI(p.resolve(about)), nil
	case hasID:
		if err := p.checkID(id); err != nil {
			return rdfterm.Term{}, err
		}
		return rdfterm.NewURI(p.resolve("#" + id)), nil
	case hasNode:
		return rdfterm.NewBlank(nodeID), nil
	default:
		return p.freshBlank(), nil
	}
}

// checkID enforces rdf:ID uniqueness per document.
func (p *parser) checkID(id string) error {
	if p.idsSeen == nil {
		p.idsSeen = map[string]bool{}
	}
	if p.idsSeen[id] {
		return p.errorf("duplicate rdf:ID %q", id)
	}
	p.idsSeen[id] = true
	return nil
}

// propertyElement parses one property element of subj.
func (p *parser) propertyElement(subj rdfterm.Term, start xml.StartElement, inheritedLang string, liCounter *int) error {
	prop := start.Name.Space + start.Name.Local
	if start.Name.Space == rdfNS && start.Name.Local == "li" {
		*liCounter++
		prop = rdfterm.MembershipProperty(*liCounter)
	}
	lang := xmlLang(start)
	if lang == "" {
		lang = inheritedLang
	}
	reifyID, hasReify := rdfAttr(start, "ID")
	if hasReify {
		if err := p.checkID(reifyID); err != nil {
			return err
		}
	}
	datatype, hasDatatype := rdfAttr(start, "datatype")
	resource, hasResource := rdfAttr(start, "resource")
	nodeID, hasNodeID := rdfAttr(start, "nodeID")
	parseType, hasParseType := rdfAttr(start, "parseType")

	record := func(obj rdfterm.Term) {
		p.emit(subj, rdfterm.NewURI(prop), obj)
		if hasReify {
			r := rdfterm.NewURI(p.resolve("#" + reifyID))
			p.emit(r, rdfterm.NewURI(rdfterm.RDFType), rdfterm.NewURI(rdfterm.RDFStatement))
			p.emit(r, rdfterm.NewURI(rdfterm.RDFSubject), subj)
			p.emit(r, rdfterm.NewURI(rdfterm.RDFPredicate), rdfterm.NewURI(prop))
			p.emit(r, rdfterm.NewURI(rdfterm.RDFObject), obj)
		}
	}

	switch {
	case hasResource:
		record(rdfterm.NewURI(p.resolve(resource)))
		return p.skipToEnd(start)
	case hasNodeID:
		record(rdfterm.NewBlank(nodeID))
		return p.skipToEnd(start)
	case hasParseType && parseType == "Resource":
		// Anonymous node whose property elements follow inline.
		blank := p.freshBlank()
		record(blank)
		inner := 0
		for {
			tok, err := p.dec.Token()
			if err != nil {
				return err
			}
			switch t := tok.(type) {
			case xml.StartElement:
				if err := p.propertyElement(blank, t, lang, &inner); err != nil {
					return err
				}
			case xml.EndElement:
				return nil
			}
		}
	case hasParseType && parseType == "Literal":
		raw, err := p.rawInner(start)
		if err != nil {
			return err
		}
		record(rdfterm.NewTypedLiteral(raw, rdfterm.RDFXMLLit))
		return nil
	case hasParseType:
		return p.errorf("unsupported rdf:parseType %q", parseType)
	}

	// Otherwise: text literal or one nested node element.
	var text strings.Builder
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			// Nested node element is the object; trailing text ignored.
			obj, err := p.nodeElement(t)
			if err != nil {
				return err
			}
			record(obj)
			return p.skipToEnd(start)
		case xml.EndElement:
			lex := text.String()
			switch {
			case hasDatatype:
				record(rdfterm.NewTypedLiteral(lex, datatype))
			case lang != "":
				record(rdfterm.NewLangLiteral(lex, lang))
			default:
				record(rdfterm.NewLiteral(lex))
			}
			return nil
		}
	}
}

// skipToEnd discards tokens until the matching end element (the element's
// content after an object has been determined).
func (p *parser) skipToEnd(start xml.StartElement) error {
	depth := 0
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return err
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil
			}
			depth--
		}
	}
}

// rawInner re-serializes the inner XML of a parseType="Literal" property.
func (p *parser) rawInner(start xml.StartElement) (string, error) {
	var b strings.Builder
	depth := 0
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			b.WriteByte('<')
			b.WriteString(t.Name.Local)
			for _, a := range t.Attr {
				fmt.Fprintf(&b, " %s=%s", a.Name.Local, strconv.Quote(a.Value))
			}
			b.WriteByte('>')
		case xml.EndElement:
			if depth == 0 {
				return b.String(), nil
			}
			depth--
			b.WriteString("</")
			b.WriteString(t.Name.Local)
			b.WriteByte('>')
		case xml.CharData:
			b.Write(t)
		}
	}
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/wal"
)

// Segment crash matrix: the single-file matrix (walcrash_test.go) driven
// through a segmented wal.Dir with a rotation threshold small enough
// that the workload spans many segments — so the injected crashes land
// inside segment bodies, on rotation boundaries (the old segment's last
// frame, the new segment's header write), and everywhere between. The
// property is the same: whatever survives on disk recovers to a
// consistent store holding a prefix of the golden history, with commit
// boundaries reproducing the golden store exactly. Corruption that
// violates the segmented invariant (damage in a non-final segment) must
// be *detected* (typed ErrSegmentCorrupt), never silently replayed.

// crashSegmentBytes forces rotation every few records.
const crashSegmentBytes = 128

// dirInjector injects one fault at a global byte offset counted across
// every segment the Dir writes, in creation order — the segmented
// equivalent of wal.FaultFile's FailAt. It also swallows fsyncs (the
// matrix reads files back through the page cache; real fsyncs would
// dominate the runtime at thousands of cases).
type dirInjector struct {
	mu      sync.Mutex
	failAt  int64
	mode    wal.FaultMode
	written int64
	tripped bool
	open    []wal.File // inner files, for cleanup after an abandoned crash
}

func (inj *dirInjector) wrap(f wal.File) wal.File {
	inj.mu.Lock()
	inj.open = append(inj.open, f)
	inj.mu.Unlock()
	return &dirFaultFile{inj: inj, inner: f}
}

// closeAll releases the abandoned post-crash file handles.
func (inj *dirInjector) closeAll() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, f := range inj.open {
		f.Close()
	}
	inj.open = nil
}

type dirFaultFile struct {
	inj   *dirInjector
	inner wal.File
}

func (f *dirFaultFile) Write(p []byte) (int, error) {
	inj := f.inj
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.tripped {
		return 0, wal.ErrInjected
	}
	end := inj.written + int64(len(p))
	if end <= inj.failAt || inj.mode == wal.CorruptByte {
		if inj.mode == wal.CorruptByte && inj.written <= inj.failAt && inj.failAt < end {
			q := append([]byte(nil), p...)
			q[inj.failAt-inj.written] ^= 0x01
			p = q
		}
		n, err := f.inner.Write(p)
		inj.written += int64(n)
		return n, err
	}
	inj.tripped = true
	switch inj.mode {
	case wal.FailStop:
		return 0, wal.ErrInjected
	default: // ShortWrite: a prefix lands, then the crash
		n := int(inj.failAt - inj.written)
		if n > 0 {
			m, _ := f.inner.Write(p[:n])
			inj.written += int64(m)
			n = m
		}
		return n, wal.ErrInjected
	}
}

func (f *dirFaultFile) Sync() error {
	f.inj.mu.Lock()
	defer f.inj.mu.Unlock()
	if f.inj.tripped {
		return wal.ErrInjected
	}
	return nil // skip the real fsync; see dirInjector
}

func (f *dirFaultFile) Close() error { return f.inner.Close() }

// goldenDirRun records the workload through a fault-free segmented WAL
// and returns the total bytes written through the sinks (the matrix's
// offset space).
func goldenDirRun(t *testing.T, dir string, ops []walOp) int64 {
	t.Helper()
	inj := &dirInjector{failAt: 1 << 62}
	d, _, err := wal.OpenDir(dir, 0, wal.DirOptions{SegmentBytes: crashSegmentBytes, Wrap: inj.wrap})
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDurability(d)
	for _, op := range ops {
		if err := op.do(s); err != nil {
			t.Fatalf("golden dir run, op %q: %v", op.name, err)
		}
	}
	assertInvariants(t, s)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Segments() < 4 {
		t.Fatalf("workload spans only %d segments; shrink crashSegmentBytes", d.Segments())
	}
	return inj.written
}

// TestDirCrashMatrix kills the writer at every sampled global byte
// offset — including across segment rotations — and proves recovery.
func TestDirCrashMatrix(t *testing.T) {
	ops := walWorkload()

	// The single-file golden run supplies the record stream and the
	// commit-boundary fingerprints; the ops are deterministic, so the
	// segmented run emits the identical records.
	_, golden, commits := goldenRun(t, ops)
	goldenBytes := goldenDirRun(t, t.TempDir(), ops)

	stride := 3
	if testing.Short() {
		stride = 17
	}
	var offsets []int64
	for c := int64(0); c <= goldenBytes; c += int64(stride) {
		offsets = append(offsets, c)
	}

	cases := 0
	for _, mode := range []wal.FaultMode{wal.FailStop, wal.ShortWrite, wal.CorruptByte} {
		for _, cut := range offsets {
			cases++
			label := fmt.Sprintf("%s@%d", mode, cut)
			dir := t.TempDir()

			// The crash run: first WAL error is the process dying.
			inj := &dirInjector{failAt: cut, mode: mode}
			d, _, err := wal.OpenDir(dir, 0, wal.DirOptions{SegmentBytes: crashSegmentBytes, Wrap: inj.wrap})
			if err == nil {
				live := New()
				live.SetDurability(d)
				for _, op := range ops {
					if err := op.do(live); err != nil {
						break
					}
				}
			}
			inj.closeAll()

			// Recover from the surviving directory with plain options.
			d2, res, err := wal.OpenDir(dir, 0, wal.DirOptions{SegmentBytes: crashSegmentBytes})
			if err != nil {
				// The only acceptable open failure is *detected* damage from
				// silent corruption: a flipped byte in a non-final segment
				// (or in a segment header) must be refused, not replayed.
				if mode == wal.CorruptByte &&
					(errors.Is(err, wal.ErrSegmentCorrupt) || errors.Is(err, wal.ErrNotWAL)) {
					continue
				}
				t.Fatalf("%s: recovery open: %v", label, err)
			}
			d2.Close()
			if !recordsArePrefix(res.Records, golden) {
				t.Fatalf("%s: recovered %d records are not a golden prefix", label, len(res.Records))
			}
			rec := New()
			if err := rec.Replay(res.Records); err != nil {
				t.Fatalf("%s: replay: %v", label, err)
			}
			if errs := rec.CheckInvariants(); len(errs) > 0 {
				t.Fatalf("%s: invariants after recovery: %v", label, errs)
			}
			if want, ok := commits[len(res.Records)]; ok {
				if got := fingerprint(t, rec); !bytes.Equal(got, want) {
					t.Fatalf("%s: recovered store differs from golden at commit with %d records",
						label, len(res.Records))
				}
				if _, err := rec.CreateRDFModel("post", "", ""); err != nil {
					t.Fatalf("%s: store not writable after recovery: %v", label, err)
				}
			}
		}
	}
	t.Logf("segment crash matrix: %d fault points over %d bytes across segments (%d records)",
		cases, goldenBytes, len(golden))
}

// TestDirCheckpointCrashWindows walks a crash through every step of the
// segmented checkpoint protocol (rotate → snapshot-with-watermark →
// retention) and proves each window converges to the same store.
func TestDirCheckpointCrashWindows(t *testing.T) {
	ops := walWorkload()

	// Build the pre-checkpoint state and capture its fingerprint.
	setup := func(t *testing.T) (dir, snap string, d *wal.Dir, s *Store, want []byte) {
		t.Helper()
		base := t.TempDir()
		dir, snap = filepath.Join(base, "wal"), filepath.Join(base, "snap.gob")
		d, _, err := wal.OpenDir(dir, 0, wal.DirOptions{SegmentBytes: crashSegmentBytes})
		if err != nil {
			t.Fatal(err)
		}
		s = New()
		s.SetDurability(d)
		for _, op := range ops {
			if err := op.do(s); err != nil {
				t.Fatal(err)
			}
		}
		return dir, snap, d, s, fingerprint(t, s)
	}

	// recoverAndCompare recovers from disk and checks the store matches.
	recoverAndCompare := func(t *testing.T, label, snap, dir string, want []byte) RecoverInfo {
		t.Helper()
		st, d, info, err := RecoverDir(snap, dir, wal.DirOptions{SegmentBytes: crashSegmentBytes})
		if err != nil {
			t.Fatalf("%s: recover: %v", label, err)
		}
		defer d.Close()
		if errs := st.CheckInvariants(); len(errs) > 0 {
			t.Fatalf("%s: invariants: %v", label, errs)
		}
		if got := fingerprint(t, st); !bytes.Equal(got, want) {
			t.Fatalf("%s: recovered store differs from pre-crash store", label)
		}
		// Still writable through the recovered Dir.
		st.SetDurability(d)
		if _, err := st.CreateRDFModel("post", "", ""); err != nil {
			t.Fatalf("%s: not writable after recovery: %v", label, err)
		}
		return info
	}

	t.Run("after-rotate", func(t *testing.T) {
		dir, snap, d, _, want := setup(t)
		if _, err := d.Rotate(); err != nil {
			t.Fatal(err)
		}
		d.Close() // crash before the snapshot lands: no snapshot file at all
		info := recoverAndCompare(t, "after-rotate", snap, dir, want)
		if info.Retired != 0 {
			t.Errorf("retired %d segments with no snapshot watermark", info.Retired)
		}
		if info.Applied == 0 {
			t.Error("nothing replayed; the pre-checkpoint segments are gone")
		}
	})

	t.Run("after-snapshot-before-retention", func(t *testing.T) {
		dir, snap, d, s, want := setup(t)
		seq, err := d.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveFileAt(snap, seq); err != nil {
			t.Fatal(err)
		}
		d.Close() // crash before RemoveBelow: stale segments linger
		info := recoverAndCompare(t, "after-snapshot", snap, dir, want)
		if info.Retired == 0 {
			t.Error("recovery did not finish the interrupted retention")
		}
		if info.Applied != 0 {
			t.Errorf("replayed %d records the snapshot already contains", info.Applied)
		}
	})

	t.Run("mid-retention", func(t *testing.T) {
		dir, snap, d, s, want := setup(t)
		seq, err := d.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveFileAt(snap, seq); err != nil {
			t.Fatal(err)
		}
		d.Close()
		// Retention got through some of the stale segments before dying.
		removed := 0
		for i := int64(1); i < seq && removed < 2; i++ {
			if err := os.Remove(filepath.Join(dir, fmt.Sprintf("wal-%06d.log", i))); err == nil {
				removed++
			}
		}
		if removed == 0 {
			t.Fatal("no stale segments to half-remove")
		}
		recoverAndCompare(t, "mid-retention", snap, dir, want)
	})

	t.Run("completed", func(t *testing.T) {
		dir, snap, d, s, want := setup(t)
		if err := CheckpointDir(s, snap, d); err != nil {
			t.Fatal(err)
		}
		d.Close()
		info := recoverAndCompare(t, "completed", snap, dir, want)
		if info.Applied != 0 || info.Retired != 0 {
			t.Errorf("clean checkpoint left work for recovery: %+v", info)
		}
	})

	t.Run("post-checkpoint-mutations", func(t *testing.T) {
		dir, snap, d, s, _ := setup(t)
		if err := CheckpointDir(s, snap, d); err != nil {
			t.Fatal(err)
		}
		a := govAliases()
		if _, err := s.NewTripleS("gov", "gov:late", "gov:p", "gov:o", a); err != nil {
			t.Fatal(err)
		}
		want := fingerprint(t, s)
		d.Close()
		info := recoverAndCompare(t, "post-checkpoint", snap, dir, want)
		if info.Applied == 0 {
			t.Error("post-checkpoint mutations were not replayed")
		}
	})
}

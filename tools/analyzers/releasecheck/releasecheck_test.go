package releasecheck

import (
	"testing"

	"repro/tools/analyzers/framework"
)

func TestReleasecheck(t *testing.T) {
	framework.RunTest(t, "testdata", Analyzer, "badrelease", "goodrelease", "badspan", "goodspan")
}

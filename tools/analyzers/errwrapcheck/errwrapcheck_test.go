package errwrapcheck

import (
	"testing"

	"repro/tools/analyzers/framework"
)

func TestErrwrapcheck(t *testing.T) {
	framework.RunTest(t, "testdata", Analyzer, "badwrap", "goodwrap")
}

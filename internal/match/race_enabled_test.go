//go:build race

package match

// raceEnabled widens the cancel-latency budgets when the race detector
// instruments the build (everything runs several times slower, and CI
// machines are shared). The semantic assertions are identical in both
// builds; only the latency budget changes.
const raceEnabled = true

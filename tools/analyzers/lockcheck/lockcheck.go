// Package lockcheck enforces the store's locking contract over structs
// with //repro:guarded-by annotations (see repro/tools/analyzers/guard):
//
//  1. A function reaching a guarded field through a receiver or
//     parameter must hold the guard mutex at that point. Exported
//     methods must lock; unexported helpers may instead document the
//     caller-holds-the-lock contract by taking the *Locked name suffix.
//  2. *Locked helpers run with the lock already held, so they must not
//     Lock/RLock/Unlock/RUnlock the guard mutex themselves (sync.RWMutex
//     is not reentrant) and must not call a locking method.
//  3. Calling a *Locked helper requires the lock to be held at the call
//     site; calling a locking (public) method while the lock is held is
//     a guaranteed self-deadlock.
//  4. A manually paired Lock/Unlock must not leak across an early
//     return: returning while the mutex is held without a deferred
//     unlock is flagged.
//
// The pass tracks lock state linearly through each function body,
// following if/for/switch structure; function literals are analyzed with
// the state at their definition point (go statements with an empty
// state, since the goroutine runs after the caller releases the lock).
// Locals are exempt: a store constructed inside the function is not yet
// shared, so New()-style builders need no lock.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/guard"
)

// Analyzer is the lockcheck pass.
var Analyzer = &framework.Analyzer{
	Name:          "lockcheck",
	Doc:           "check that guarded store state is only touched under its guard mutex",
	Run:           run,
	SkipTestFiles: true,
}

func run(pass *framework.Pass) error {
	g := guard.Collect(pass)
	if len(g.Guarded) == 0 {
		return nil
	}
	c := &checker{pass: pass, g: g, locking: map[*types.Func]bool{}}

	// Phase 1: which methods acquire their receiver's guard mutex?
	// (These are the "locking methods" a *Locked helper must not call.)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && c.acquiresReceiverMutex(fd) {
				c.locking[fn] = true
			}
		}
	}

	// Phase 2: per-function contract checks.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass    *framework.Pass
	g       *guard.Info
	locking map[*types.Func]bool

	// Per-function state:
	fn       *ast.FuncDecl
	enforced map[types.Object]bool // receiver + parameters of fn
	isLocked bool                  // fn has the *Locked suffix
}

// lockState tracks, per mutex expression ("s.mu", "n.store.mu"), whether
// the mutex is held and whether an unlock has been deferred.
type lockState map[string]lockMode

type lockMode struct {
	held     bool
	deferred bool
	// inherited marks a lock held at a function literal's definition
	// point: the closure may rely on it for accesses, but returning from
	// the closure does not leak it (the enclosing function still owns the
	// unlock).
	inherited bool
}

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// inherit clones st, marking held locks as owned by an enclosing scope.
func (st lockState) inherit() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		if v.held {
			v.inherited = true
		}
		out[k] = v
	}
	return out
}

// acquiresReceiverMutex reports whether fd's body contains a direct
// Lock/RLock of a guard mutex rooted at fd's receiver.
func (c *checker) acquiresReceiverMutex(fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	recv := receiverObj(c.pass, fd)
	if recv == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, mutexExpr := c.mutexOp(call)
		if op != "Lock" && op != "RLock" {
			return true
		}
		if root := guard.RootIdent(mutexExpr); root != nil && c.pass.TypesInfo.Uses[root] == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

// mutexOp recognizes <expr>.mu.Lock()/RLock()/Unlock()/RUnlock() where mu
// is a guard mutex field, returning the operation name and the mutex
// expression ("" when the call is not a guard-mutex operation).
func (c *checker) mutexOp(call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	mutexSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fld := guard.FieldSel(c.pass, mutexSel)
	if fld == nil || !c.g.Mutexes[fld] {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}

func receiverObj(pass *framework.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// checkFunc applies the contract to one function declaration.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.fn = fd
	c.isLocked = strings.HasSuffix(fd.Name.Name, "Locked")
	c.enforced = map[types.Object]bool{}
	if recv := receiverObj(c.pass, fd); recv != nil {
		c.enforced[recv] = true
	}
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
				c.enforced[obj] = true
			}
		}
	}
	if c.isLocked {
		c.checkLockedHelper(fd)
		return
	}
	c.walkStmts(fd.Body.List, lockState{})
}

// checkLockedHelper enforces rule 2: no mutex operations, no calls to
// locking methods. Guarded accesses are free (the caller holds the lock).
func (c *checker) checkLockedHelper(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, mutexExpr := c.mutexOp(call); op != "" {
			if root := guard.RootIdent(mutexExpr); root != nil && c.enforced[c.pass.TypesInfo.Uses[root]] {
				c.pass.Reportf(call.Pos(),
					"%s %ss %s, but *Locked helpers run with the lock already held (RWMutex is not reentrant)",
					fd.Name.Name, op, guard.Render(mutexExpr))
			}
			return true
		}
		if fn, base := c.lockingMethodCall(call); fn != nil {
			if root := guard.RootIdent(base); root != nil && c.enforced[c.pass.TypesInfo.Uses[root]] {
				c.pass.Reportf(call.Pos(),
					"%s calls %s, which acquires the lock the *Locked contract says is already held",
					fd.Name.Name, fn.Name())
			}
		}
		return true
	})
}

// lockingMethodCall resolves a call to a method known to acquire its
// receiver's guard mutex, returning the method and receiver expression.
func (c *checker) lockingMethodCall(call *ast.CallExpr) (*types.Func, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || !c.locking[fn] {
		return nil, nil
	}
	return fn, sel.X
}

// lockedHelperCall resolves a call to a *Locked-suffixed method on a
// guard-annotated struct.
func (c *checker) lockedHelperCall(call *ast.CallExpr) (*types.Func, ast.Expr, *types.TypeName) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, nil
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, nil, nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || !strings.HasSuffix(fn.Name(), "Locked") {
		return nil, nil, nil
	}
	tn := guard.NamedOf(s.Recv())
	if tn == nil || c.g.ByType[tn] == nil {
		return nil, nil, nil
	}
	return fn, sel.X, tn
}

// mutexKeyForBase builds the lock-state key guarding an access through
// base (e.g. base "s.links" rendered from its X "s" + mutex name "mu" →
// "s.mu").
func (c *checker) mutexKeyFor(baseExpr ast.Expr, tn *types.TypeName) string {
	return guard.Render(baseExpr) + "." + c.g.MutexName[tn]
}

// enforceableRoot reports whether the selector chain is rooted at a
// receiver or parameter of the current function (locals are exempt: a
// locally constructed store is not shared yet).
func (c *checker) enforceableRoot(e ast.Expr) bool {
	root := guard.RootIdent(e)
	if root == nil {
		return false
	}
	return c.enforced[c.pass.TypesInfo.Uses[root]]
}

// --- statement walking with lock-state tracking ---

// walkStmts walks a statement list, updating st in place, and reports
// whether the list always terminates (return / branch) before falling
// off the end.
func (c *checker) walkStmts(stmts []ast.Stmt, st lockState) bool {
	for _, s := range stmts {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st lockState) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if op, mutexExpr := c.mutexOp(call); op != "" {
				c.applyMutexOp(op, mutexExpr, call, st, false)
				return false
			}
		}
		c.scanExpr(x.X, st)
	case *ast.DeferStmt:
		if op, mutexExpr := c.mutexOp(x.Call); op != "" {
			c.applyMutexOp(op, mutexExpr, x.Call, st, true)
			return false
		}
		c.scanExpr(x.Call, st)
	case *ast.GoStmt:
		// The goroutine runs on its own schedule; analyze its body with
		// no lock held rather than inheriting the spawner's state.
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(lit.Body.List, lockState{})
			for _, arg := range x.Call.Args {
				c.scanExpr(arg, st)
			}
		} else {
			c.scanExpr(x.Call, st)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.scanExpr(r, st)
		}
		for key, mode := range st {
			if mode.held && !mode.deferred && !mode.inherited {
				c.pass.Reportf(x.Pos(),
					"%s returns while holding %s with no deferred unlock; an early return leaks the lock",
					c.fn.Name.Name, strings.TrimSuffix(key, ""))
			}
		}
		return true
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			c.scanExpr(e, st)
		}
		for _, e := range x.Lhs {
			c.scanExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(v, st)
					}
				}
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.scanExpr(x.Cond, st)
		thenSt := st.clone()
		thenTerm := c.walkStmts(x.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = c.walkStmt(x.Else, elseSt)
		}
		c.merge(st, thenSt, thenTerm, elseSt, elseTerm)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return c.walkStmts(x.List, st)
	case *ast.ForStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			c.scanExpr(x.Cond, st)
		}
		bodySt := st.clone()
		c.walkStmts(x.Body.List, bodySt)
		if x.Post != nil {
			c.walkStmt(x.Post, bodySt)
		}
		// The loop may run zero times; keep the pre-loop state.
	case *ast.RangeStmt:
		c.scanExpr(x.X, st)
		bodySt := st.clone()
		c.walkStmts(x.Body.List, bodySt)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			c.scanExpr(x.Tag, st)
		}
		c.walkCases(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, st)
		}
		c.walkStmt(x.Assign, st)
		c.walkCases(x.Body, st)
	case *ast.SelectStmt:
		c.walkCases(x.Body, st)
	case *ast.LabeledStmt:
		return c.walkStmt(x.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto end this path through the list.
		return true
	case *ast.SendStmt:
		c.scanExpr(x.Chan, st)
		c.scanExpr(x.Value, st)
	case *ast.IncDecStmt:
		c.scanExpr(x.X, st)
	}
	return false
}

// walkCases walks switch/select clause bodies, each from a clone of the
// entry state.
func (c *checker) walkCases(body *ast.BlockStmt, st lockState) {
	for _, clause := range body.List {
		caseSt := st.clone()
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.scanExpr(e, caseSt)
			}
			c.walkStmts(cl.Body, caseSt)
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm, caseSt)
			}
			c.walkStmts(cl.Body, caseSt)
		}
	}
}

// merge folds branch exit states back into st. A terminating branch
// contributes nothing (control never falls through it); when both
// branches fall through with disagreeing lock states the walker keeps
// the "not held" view — the access rule then stays strict on the paths
// it can still prove.
func (c *checker) merge(st, thenSt lockState, thenTerm bool, elseSt lockState, elseTerm bool) {
	switch {
	case thenTerm && elseTerm:
	case thenTerm:
		replace(st, elseSt)
	case elseTerm:
		replace(st, thenSt)
	default:
		for key := range union(thenSt, elseSt) {
			a, b := thenSt[key], elseSt[key]
			if a == b {
				st[key] = a
			} else {
				delete(st, key)
			}
		}
	}
}

func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func union(a, b lockState) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// applyMutexOp updates the lock state for a guard-mutex operation.
func (c *checker) applyMutexOp(op string, mutexExpr ast.Expr, call *ast.CallExpr, st lockState, isDefer bool) {
	if !c.enforceableRoot(mutexExpr) {
		return
	}
	key := guard.Render(mutexExpr)
	switch op {
	case "Lock", "RLock":
		if isDefer {
			// defer s.mu.Lock() is always a bug; flag it as a leak.
			c.pass.Reportf(call.Pos(), "%s defers a %s of %s; deferred acquires run at return and deadlock", c.fn.Name.Name, op, key)
			return
		}
		if mode := st[key]; mode.held {
			c.pass.Reportf(call.Pos(), "%s %ss %s twice; RWMutex is not reentrant", c.fn.Name.Name, op, key)
		}
		st[key] = lockMode{held: true}
	case "Unlock", "RUnlock":
		if isDefer {
			mode := st[key]
			mode.deferred = true
			st[key] = mode
			return
		}
		mode := st[key]
		mode.held = false
		st[key] = mode
	}
}

// scanExpr checks accesses inside an expression against the current lock
// state: guarded field reads, *Locked helper calls, and calls to locking
// methods. Function literals are walked with the state at their
// definition point.
func (c *checker) scanExpr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(x.Body.List, st.inherit())
			return false
		case *ast.CallExpr:
			c.checkCall(x, st)
		case *ast.SelectorExpr:
			c.checkGuardedAccess(x, st)
		}
		return true
	})
}

// checkGuardedAccess flags guarded field reads outside the lock.
func (c *checker) checkGuardedAccess(sel *ast.SelectorExpr, st lockState) {
	fld := guard.FieldSel(c.pass, sel)
	if fld == nil {
		return
	}
	mu, ok := c.g.Guarded[fld]
	if !ok || mu == nil {
		return
	}
	if !c.enforceableRoot(sel.X) {
		return
	}
	key := guard.Render(sel.X) + "." + mu.Name()
	if st[key].held {
		return
	}
	access := guard.Render(sel.X) + "." + fld.Name()
	if ast.IsExported(c.fn.Name.Name) {
		c.pass.Reportf(sel.Pos(),
			"exported %s accesses guarded field %s without holding %s",
			c.fn.Name.Name, access, key)
	} else {
		c.pass.Reportf(sel.Pos(),
			"unexported %s accesses guarded field %s without acquiring %s; hold the lock or take the *Locked suffix to document the caller-holds contract",
			c.fn.Name.Name, access, key)
	}
}

// checkCall flags *Locked helper calls made without the lock and locking
// method calls made with it.
func (c *checker) checkCall(call *ast.CallExpr, st lockState) {
	if fn, base, tn := c.lockedHelperCall(call); fn != nil && c.enforceableRoot(base) {
		key := c.mutexKeyFor(base, tn)
		if !st[key].held {
			c.pass.Reportf(call.Pos(),
				"%s calls %s without holding %s; *Locked helpers require the lock",
				c.fn.Name.Name, fn.Name(), key)
		}
		return
	}
	if fn, base := c.lockingMethodCall(call); fn != nil && c.enforceableRoot(base) {
		tn := guard.NamedOf(c.pass.TypesInfo.Types[base].Type)
		if tn == nil || c.g.MutexName[tn] == "" {
			return
		}
		key := c.mutexKeyFor(base, tn)
		if st[key].held {
			c.pass.Reportf(call.Pos(),
				"%s calls %s while holding %s; %s acquires the same lock and would deadlock",
				c.fn.Name.Name, fn.Name(), key, fn.Name())
		}
	}
}

package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdfterm"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := newStoreWithModel(t, "cia", "dhs")
	a := govAliases()
	base, _ := s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a) // COST=2
	s.NewTripleS("dhs", "_:b1", "gov:p", `"25"^^xsd:int`, a)
	long := strings.Repeat("L", rdfterm.LongLiteralThreshold+10)
	s.InsertTerms("cia", rdfterm.NewURI("http://s"), rdfterm.NewURI("http://p"), rdfterm.NewLiteral(long))
	s.AssertAboutTriple("cia", "gov:MI5", "gov:source", base.TID, a)
	s.AssertImplied("cia", "gov:Interpol", "gov:source", "gov:a", "gov:b2", "gov:c", a)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same counts.
	for _, m := range []string{"cia", "dhs"} {
		n1, _ := s.NumTriples(m)
		n2, _ := loaded.NumTriples(m)
		if n1 != n2 {
			t.Fatalf("model %s: %d != %d triples after reload", m, n1, n2)
		}
	}
	if s.NumValues() != loaded.NumValues() {
		t.Fatalf("values %d != %d", s.NumValues(), loaded.NumValues())
	}
	if s.NumNodes() != loaded.NumNodes() {
		t.Fatalf("nodes %d != %d", s.NumNodes(), loaded.NumNodes())
	}
	// Same IDs: the reloaded store resolves the original TripleS.
	re := loaded.ReconstructTripleS(base.TID, base.MID, base.SID, base.PID, base.OID)
	sub, err := re.GetSubject()
	if err != nil || sub != "http://www.us.gov#files" {
		t.Fatalf("reloaded GetSubject = %q, %v", sub, err)
	}
	// COST, CONTEXT, reification survive.
	info, err := loaded.LinkInfo(base.TID)
	if err != nil || info.Cost != 2 {
		t.Fatalf("reloaded COST = %d, %v", info.Cost, err)
	}
	if ok, _ := loaded.IsReifiedByID("cia", base.TID); !ok {
		t.Fatal("reification lost in snapshot")
	}
	implied, okT, _ := loaded.IsTriple("cia", "gov:a", "gov:b2", "gov:c", a)
	if !okT {
		t.Fatal("implied triple lost")
	}
	info, _ = loaded.LinkInfo(implied.TID)
	if info.Context != ContextIndirect {
		t.Fatalf("implied CONTEXT = %s", info.Context)
	}
	// Blank mappings survive: reusing _:b1 in dhs maps to the same node.
	before, _, _ := s.IsTriple("dhs", "_:b1", "gov:p", `"25"^^xsd:int`, a)
	after, okB, _ := loaded.IsTriple("dhs", "_:b1", "gov:p", `"25"^^xsd:int`, a)
	if !okB || after.SID != before.SID {
		t.Fatalf("blank mapping lost: %v vs %v", after, before)
	}
	// Long literal text survives.
	if _, ok, _ := loaded.IsTripleTerms("cia",
		rdfterm.NewURI("http://s"), rdfterm.NewURI("http://p"), rdfterm.NewLiteral(long)); !ok {
		t.Fatal("long literal lost")
	}
	// Model views were rebuilt.
	v, err := loaded.ModelView("cia")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := loaded.NumTriples("cia")
	if v.Len() != want {
		t.Fatalf("view rows = %d, want %d", v.Len(), want)
	}
	// Sequences continue past snapshot values: a new insert gets fresh IDs.
	ts, err := loaded.NewTripleS("cia", "gov:new", "gov:p", "gov:o", a)
	if err != nil {
		t.Fatal(err)
	}
	if ts.TID <= base.TID {
		t.Fatalf("new LINK_ID %d not past snapshot max", ts.TID)
	}
	// Invariants hold on the reloaded store.
	for _, err := range loaded.CheckInvariants() {
		t.Error(err)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := New()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalTriples() != 0 || loaded.NumValues() != 0 {
		t.Fatal("empty store reloaded non-empty")
	}
	// Fresh model IDs continue from the paper's base.
	id, err := loaded.CreateRDFModel("m", "", "")
	if err != nil || id != 7 {
		t.Fatalf("first model ID after reload = %d, %v", id, err)
	}
}

func TestLoadGarbage(t *testing.T) {
	_, err := Load(strings.NewReader("not a gob stream"))
	if err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("garbage error %v is not ErrSnapshotCorrupt", err)
	}
}

// TestLoadTypedErrors pins the sentinel classification: callers (the CLI
// tools in particular) branch on errors.Is to print actionable messages.
func TestLoadTypedErrors(t *testing.T) {
	t.Run("version mismatch", func(t *testing.T) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snapshot{Version: snapshotVersion + 1}); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&buf)
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("future-version error %v is not ErrSnapshotVersion", err)
		}
		if errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("version mismatch misclassified as corruption: %v", err)
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		s := newStoreWithModel(t, "m")
		if _, err := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", govAliases()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		_, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncated-stream error %v is not ErrSnapshotCorrupt", err)
		}
	})
	t.Run("inconsistent content", func(t *testing.T) {
		// Decodes fine but cannot be rebuilt: duplicate model IDs.
		snap := snapshot{
			Version: snapshotVersion,
			Models: []snapModel{
				{ID: 7, Name: "a"},
				{ID: 7, Name: "b"},
			},
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&buf)
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("duplicate-ID error %v is not ErrSnapshotCorrupt", err)
		}
	})
}

// Property: snapshot round-trips preserve counts and invariants for random
// operation sequences.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
		for _, m := range []string{"m0", "m1"} {
			if _, err := s.CreateRDFModel(m, "", ""); err != nil {
				return false
			}
		}
		term := func() string { return fmt.Sprintf("x:t%d", rng.Intn(10)) }
		var tids []int64
		for i := 0; i < int(nops)%40+10; i++ {
			m := fmt.Sprintf("m%d", rng.Intn(2))
			switch rng.Intn(4) {
			case 0, 1:
				ts, err := s.NewTripleS(m, term(), term(), term(), a)
				if err != nil {
					return false
				}
				tids = append(tids, ts.TID)
			case 2:
				if len(tids) > 0 {
					_, _ = s.Reify(m, tids[rng.Intn(len(tids))])
				}
			case 3:
				if _, err := s.NewTripleS(m, "_:b"+fmt.Sprint(rng.Intn(3)), term(), term(), a); err != nil {
					return false
				}
			}
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		if loaded.TotalTriples() != s.TotalTriples() ||
			loaded.NumValues() != s.NumValues() ||
			loaded.NumNodes() != s.NumNodes() {
			return false
		}
		return len(loaded.CheckInvariants()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package rdfxml

import (
	"strings"
	"testing"

	"repro/internal/rdfterm"
)

// FuzzParse checks the RDF/XML parser never panics and that every
// accepted document yields structurally valid terms.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"/>`,
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:ex="http://ex#">
		   <rdf:Description rdf:about="http://a"><ex:p>text</ex:p></rdf:Description>
		 </rdf:RDF>`,
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:ex="http://ex#">
		   <rdf:Description rdf:about="http://a"><ex:p rdf:ID="r" rdf:resource="http://b"/></rdf:Description>
		 </rdf:RDF>`,
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
		   <rdf:Bag><rdf:li rdf:resource="http://x"/></rdf:Bag>
		 </rdf:RDF>`,
		`<a><b></b></a>`,
		`not xml at all`,
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:ex="http://ex#">
		   <rdf:Description><ex:p rdf:parseType="Resource"><ex:q>1</ex:q></ex:p></rdf:Description>
		 </rdf:RDF>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		ts, err := Parse(strings.NewReader(doc), Options{Base: "http://base"})
		if err != nil {
			return
		}
		for _, tr := range ts {
			if tr.Subject.Kind == rdfterm.Literal {
				t.Fatalf("literal subject produced: %v", tr)
			}
			if tr.Predicate.Kind != rdfterm.URI {
				t.Fatalf("non-URI predicate produced: %v", tr)
			}
			for _, term := range []rdfterm.Term{tr.Subject, tr.Predicate, tr.Object} {
				if term.IsZero() {
					t.Fatalf("zero term produced: %v", tr)
				}
			}
		}
	})
}

// Package walcheck enforces the store's durability contract: an exported
// method of a guard-annotated struct (see repro/tools/analyzers/guard)
// that mutates a guarded table — calling Insert, Update, UpdateColumn,
// Delete, or TruncatePartition on a //repro:guarded-by field, directly
// or through intra-package helpers — must, somewhere in the same call
// graph, append a WAL record (logRecord) and seal it (logCommit).
// Otherwise a crash after the in-memory mutation loses the change, which
// is exactly the failure the write-ahead log exists to prevent.
//
// The pass also flags discarded logRecord errors: a WAL append that
// fails and is ignored silently downgrades the store to best-effort
// durability, so `s.logRecord(...)` as a bare statement or assigned to
// blank is reported.
//
// Replay-style code that re-applies records already present in the WAL
// is the intended exemption; it carries a justified //repro:vet-ignore.
package walcheck

import (
	"go/ast"
	"go/types"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/guard"
)

// Analyzer is the walcheck pass.
var Analyzer = &framework.Analyzer{
	Name:          "walcheck",
	Doc:           "check that guarded-table mutations reach logRecord+logCommit and that logRecord errors are handled",
	Run:           run,
	SkipTestFiles: true,
}

// mutators are the table methods that change durable state.
var mutators = map[string]bool{
	"Insert":            true,
	"Update":            true,
	"UpdateColumn":      true,
	"Delete":            true,
	"TruncatePartition": true,
}

// funcFacts summarizes one function body for the call-graph walk.
type funcFacts struct {
	decl *ast.FuncDecl
	// mutation is a rendered example like "s.links.Insert" ("" when the
	// body performs no guarded-table mutation).
	mutation    string
	logsRecord  bool
	logsCommit  bool
	calls      []*types.Func // intra-package callees
	onGuarded  bool          // method on a guard-annotated struct
	isExported bool
}

func run(pass *framework.Pass) error {
	g := guard.Collect(pass)
	if len(g.Guarded) == 0 {
		return nil
	}
	w := &walker{pass: pass, g: g, facts: map[*types.Func]*funcFacts{}}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			w.facts[fn] = w.collect(fd)
		}
	}

	for fn, facts := range w.facts {
		if !facts.onGuarded || !facts.isExported {
			continue
		}
		mutation, record, commit := w.closure(fn, map[*types.Func]bool{})
		if mutation == "" {
			continue
		}
		switch {
		case !record:
			w.pass.Reportf(facts.decl.Name.Pos(),
				"exported %s mutates guarded state (%s) but never calls logRecord; write the WAL record before the in-memory mutation",
				fn.Name(), mutation)
		case !commit:
			w.pass.Reportf(facts.decl.Name.Pos(),
				"exported %s mutates guarded state (%s) without a logCommit on any path; the WAL transaction is never sealed",
				fn.Name(), mutation)
		}
	}
	return nil
}

type walker struct {
	pass  *framework.Pass
	g     *guard.Info
	facts map[*types.Func]*funcFacts
}

// collect scans one function body for mutations, log calls, intra-package
// callees, and discarded logRecord errors.
func (w *walker) collect(fd *ast.FuncDecl) *funcFacts {
	facts := &funcFacts{decl: fd, isExported: ast.IsExported(fd.Name.Name)}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tn := guard.NamedOf(w.pass.TypesInfo.Types[fd.Recv.List[0].Type].Type); tn != nil && w.g.ByType[tn] != nil {
			facts.onGuarded = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && w.isLogCall(call, "logRecord") {
				w.pass.Reportf(call.Pos(),
					"result of logRecord is discarded; a failed WAL append must abort the mutation, not be ignored")
			}
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				if call, ok := x.Rhs[0].(*ast.CallExpr); ok && w.isLogCall(call, "logRecord") && allBlank(x.Lhs) {
					w.pass.Reportf(call.Pos(),
						"result of logRecord is discarded; a failed WAL append must abort the mutation, not be ignored")
				}
			}
		case *ast.CallExpr:
			w.collectCall(facts, x)
		}
		return true
	})
	return facts
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// collectCall classifies one call: guarded-table mutation, WAL log call,
// or intra-package callee.
func (w *walker) collectCall(facts *funcFacts, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := w.pass.TypesInfo.Uses[fun].(*types.Func); ok && fn.Pkg() == w.pass.Pkg {
			facts.calls = append(facts.calls, fn)
		}
	case *ast.SelectorExpr:
		if s, ok := w.pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.MethodVal {
			fn, _ := s.Obj().(*types.Func)
			if fn == nil {
				return
			}
			switch {
			case w.isLogMethod(fn, s.Recv()):
				if fn.Name() == "logRecord" {
					facts.logsRecord = true
				} else {
					facts.logsCommit = true
				}
			case mutators[fn.Name()] && w.guardedReceiver(fun.X):
				if facts.mutation == "" {
					facts.mutation = guard.Render(fun.X) + "." + fn.Name()
				}
			case fn.Pkg() == w.pass.Pkg:
				facts.calls = append(facts.calls, fn)
			}
		} else if fn, ok := w.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() == w.pass.Pkg {
			// Package-qualified call (rare inside one package, but cheap).
			facts.calls = append(facts.calls, fn)
		}
	}
}

// isLogCall reports whether call invokes the named WAL method of a
// guard-annotated struct.
func (w *walker) isLogCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	fn, _ := s.Obj().(*types.Func)
	return fn != nil && fn.Name() == name && w.isLogMethod(fn, s.Recv())
}

// isLogMethod reports whether fn is logRecord/logCommit on a marked struct.
func (w *walker) isLogMethod(fn *types.Func, recv types.Type) bool {
	if fn.Name() != "logRecord" && fn.Name() != "logCommit" {
		return false
	}
	tn := guard.NamedOf(recv)
	return tn != nil && w.g.ByType[tn] != nil
}

// guardedReceiver reports whether the method receiver expression selects
// a //repro:guarded-by field.
func (w *walker) guardedReceiver(x ast.Expr) bool {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fld := guard.FieldSel(w.pass, sel)
	if fld == nil {
		return false
	}
	_, guarded := w.g.Guarded[fld]
	return guarded
}

// closure computes the transitive (mutation, logsRecord, logsCommit)
// facts of fn over the intra-package call graph. Cycles are broken by
// the visiting set; package call graphs are small enough that the walk
// runs un-memoized per exported root (memoizing under a cycle guard
// would cache incomplete views).
func (w *walker) closure(fn *types.Func, visiting map[*types.Func]bool) (string, bool, bool) {
	facts, ok := w.facts[fn]
	if !ok || visiting[fn] {
		return "", false, false
	}
	visiting[fn] = true
	mutation, record, commit := facts.mutation, facts.logsRecord, facts.logsCommit
	for _, callee := range facts.calls {
		m, r, c := w.closure(callee, visiting)
		if mutation == "" {
			mutation = m
		}
		record = record || r
		commit = commit || c
	}
	delete(visiting, fn)
	return mutation, record, commit
}

package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments. A diagnostic may be silenced with
//
//	//repro:vet-ignore <analyzer> <justification>
//
// placed on the flagged line, on the line above it, or in the doc
// comment of the flagged declaration. The justification is mandatory:
// a suppression without one is itself reported, so every exemption in
// the tree carries its reason next to the code it excuses.
const ignoreDirective = "repro:vet-ignore"

// suppression is one parsed //repro:vet-ignore comment.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Pos
	// fromLine..toLine is the line range the suppression covers: the
	// comment group's own lines plus the line immediately after it.
	file             string
	fromLine, toLine int
}

// collectSuppressions parses every vet-ignore directive in the files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				name, reason, _ := strings.Cut(rest, " ")
				start := fset.Position(cg.Pos())
				end := fset.Position(cg.End())
				out = append(out, suppression{
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
					file:     start.Filename,
					fromLine: start.Line,
					toLine:   end.Line + 1,
				})
			}
		}
	}
	return out
}

// matches reports whether the suppression covers a diagnostic from the
// named analyzer at pos.
func (s suppression) matches(fset *token.FileSet, d Diagnostic) bool {
	if s.analyzer != d.Analyzer {
		return false
	}
	p := fset.Position(d.Pos)
	return p.Filename == s.file && p.Line >= s.fromLine && p.Line <= s.toLine
}

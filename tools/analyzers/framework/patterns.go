package framework

import (
	"os"
	"path/filepath"
	"strings"
)

// ExpandPatterns resolves "./..." style patterns and plain directories
// into the set of package directories containing Go files, skipping
// testdata trees, hidden and underscore directories, and nested modules.
// Relative patterns are anchored at root.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = root
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base {
				if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
					return filepath.SkipDir
				}
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

package core

import (
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// maxValueNameLen caps the VALUE_NAME column; longer literal text spills
// into LONG_VALUE (§4: "long-literals are text values that exceed 4000
// characters").
const maxValueNameLen = rdfterm.LongLiteralThreshold

// termCacheMax bounds the term → VALUE_ID cache. When the cap is hit the
// whole map is dropped (values remain in the store; only the shortcut is
// lost) rather than tracking recency — bulk loads touch terms in bursts,
// so a full reset costs one warm-up pass.
const termCacheMax = 1 << 20

// termCacheKey flattens a term into the cache key. The components are
// separated by NUL, which cannot occur inside a validated term.
func termCacheKey(t rdfterm.Term) string {
	return t.ValueType() + "\x00" + t.Lexical() + "\x00" + t.Datatype + "\x00" + t.Language
}

// cacheTermIDLocked records a term's VALUE_ID for later lookups. Caller
// holds s.mu for writing (readers only ever read the map).
func (s *Store) cacheTermIDLocked(key string, id int64) {
	if s.termIDs == nil || len(s.termIDs) >= termCacheMax {
		s.termIDs = make(map[string]int64, 1024)
	}
	s.termIDs[key] = id
}

// lookupValueIDLocked returns the VALUE_ID for a term, or (0,false) when the
// text value is not interned yet.
func (s *Store) lookupValueIDLocked(t rdfterm.Term) (int64, bool) {
	if id, ok := s.termIDs[termCacheKey(t)]; ok {
		return id, true
	}
	rid, ok := s.valueText.LookupOne(termKey(t))
	if !ok {
		return 0, false
	}
	r, err := s.values.Get(rid)
	if err != nil {
		return 0, false
	}
	return r[vcValueID].Int64(), true
}

// internValueLocked returns the VALUE_ID for a term, inserting a new
// rdf_value$ row when the text value is first seen. Caller holds s.mu
// for writing.
func (s *Store) internValueLocked(t rdfterm.Term) (int64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	key := termCacheKey(t)
	if id, ok := s.termIDs[key]; ok {
		s.met.onCacheHit()
		return id, nil
	}
	s.met.onCacheMiss()
	if id, ok := s.lookupValueIDLocked(t); ok {
		s.cacheTermIDLocked(key, id)
		return id, nil
	}
	id := s.valueSeq.Next()
	if err := s.insertValueRowLocked(id, t); err != nil {
		return 0, err
	}
	if err := s.logRecord(valueRecord(id, t.Lexical(), t.ValueType(), t.Datatype, t.Language)); err != nil {
		return 0, err
	}
	s.cacheTermIDLocked(key, id)
	return id, nil
}

// insertValueRowLocked inserts the rdf_value$ row for a term under an
// already-assigned VALUE_ID (splitting long literals into LONG_VALUE) —
// shared by internValueLocked and WAL replay. Caller holds s.mu.
func (s *Store) insertValueRowLocked(id int64, t rdfterm.Term) error {
	name := t.Lexical()
	long := reldb.Null()
	if t.IsLong() {
		long = reldb.String_(name)
		name = name[:maxValueNameLen]
	}
	lit, lang := reldb.Null(), reldb.Null()
	if t.Datatype != "" {
		lit = reldb.String_(t.Datatype)
	}
	if t.Language != "" {
		lang = reldb.String_(t.Language)
	}
	row := reldb.Row{
		reldb.Int(id),
		reldb.String_(name),
		reldb.String_(t.ValueType()),
		lit,
		lang,
		long,
	}
	_, err := s.values.Insert(row)
	return err
}

// GetValue reconstructs the term stored under a VALUE_ID.
func (s *Store) GetValue(valueID int64) (rdfterm.Term, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getValueLocked(valueID)
}

// getValueLocked is GetValue for callers already holding s.mu.
func (s *Store) getValueLocked(valueID int64) (rdfterm.Term, error) {
	rid, ok := s.valuePK.LookupOne(reldb.Key{reldb.Int(valueID)})
	if !ok {
		return rdfterm.Term{}, fmt.Errorf("%w: VALUE_ID %d", ErrNoSuchValue, valueID)
	}
	r, err := s.values.Get(rid)
	if err != nil {
		return rdfterm.Term{}, err
	}
	return rowToTerm(r), nil
}

// rowToTerm rebuilds a term from an rdf_value$ row.
func rowToTerm(r reldb.Row) rdfterm.Term {
	text := r[vcValueName].Str()
	if !r[vcLongValue].IsNull() {
		text = r[vcLongValue].Str()
	}
	switch r[vcValueType].Str() {
	case rdfterm.VTUri:
		return rdfterm.NewURI(text)
	case rdfterm.VTBlank:
		return rdfterm.NewBlank(text)
	default:
		t := rdfterm.Term{Kind: rdfterm.Literal, Value: text}
		if !r[vcLiteralType].IsNull() {
			t.Datatype = r[vcLiteralType].Str()
		}
		if !r[vcLanguageType].IsNull() {
			t.Language = r[vcLanguageType].Str()
		}
		return t
	}
}

// internNodeLocked records a value ID in rdf_node$ if not present — graph
// nodes (subjects/objects) are "stored only once, regardless of the number
// of times they participate in triples" (§4). Caller holds s.mu.
func (s *Store) internNodeLocked(valueID int64) error {
	if s.nodePK.Contains(reldb.Key{reldb.Int(valueID)}) {
		return nil
	}
	_, err := s.nodes.Insert(reldb.Row{reldb.Int(valueID), reldb.Bool(true)})
	return err
}

// removeNodeIfOrphanLocked removes the rdf_node$ entry when no link in any
// model still references the node as subject or object (§4: "the nodes
// attached to this link are not removed if there are other links connected
// to them"). Caller holds s.mu.
func (s *Store) removeNodeIfOrphanLocked(valueID int64) {
	k := reldb.Key{reldb.Int(valueID)}
	if s.linkStart.Contains(k) || s.linkEnd.Contains(k) {
		return
	}
	if rid, ok := s.nodePK.LookupOne(k); ok {
		// Delete errors cannot occur here (row just located); ignore to
		// keep deletion best-effort like Oracle's deferred cleanup.
		_ = s.nodes.Delete(rid)
	}
}

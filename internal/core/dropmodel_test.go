package core

import (
	"testing"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// hasNode reports whether a URI term's VALUE_ID is present in rdf_node$.
func hasNode(s *Store, term string) bool {
	t, err := rdfterm.ParseObject(term, govAliases())
	if err != nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	vid, ok := s.lookupValueIDLocked(t)
	if !ok {
		return false
	}
	return s.nodePK.Contains(reldb.Key{reldb.Int(vid)})
}

// TestDropModelKeepsSharedNodes drops a model and checks rdf_node$
// cleanup honors cross-model sharing: a node still used as subject or
// object by another model's links survives; a node used only by the
// dropped model is removed (§4: nodes are stored once and dropped when
// orphaned).
func TestDropModelKeepsSharedNodes(t *testing.T) {
	s := newStoreWithModel(t, "keep", "doomed")
	a := govAliases()
	mustInsert := func(model, sub, prop, obj string) {
		t.Helper()
		if _, err := s.NewTripleS(model, sub, prop, obj, a); err != nil {
			t.Fatal(err)
		}
	}
	mustInsert("keep", "gov:shared", "gov:p", "gov:keepOnly")
	mustInsert("doomed", "gov:shared", "gov:p", "gov:doomedOnly")
	mustInsert("doomed", "gov:alsoDoomed", "gov:p", "gov:shared")

	for _, n := range []string{"gov:shared", "gov:keepOnly", "gov:doomedOnly", "gov:alsoDoomed"} {
		if !hasNode(s, n) {
			t.Fatalf("node %s missing before drop", n)
		}
	}
	before := s.NumNodes()

	if err := s.DropRDFModel("doomed"); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, s)

	if !hasNode(s, "gov:shared") {
		t.Error("gov:shared is still used by model keep but was removed from rdf_node$")
	}
	if !hasNode(s, "gov:keepOnly") {
		t.Error("gov:keepOnly belongs to the surviving model but was removed")
	}
	for _, n := range []string{"gov:doomedOnly", "gov:alsoDoomed"} {
		if hasNode(s, n) {
			t.Errorf("node %s was only used by the dropped model but survived", n)
		}
	}
	if got, want := s.NumNodes(), before-2; got != want {
		t.Errorf("NumNodes after drop = %d, want %d", got, want)
	}
	// The values themselves remain interned (rdf_value$ is append-only
	// apart from drops of exclusive blank mappings); only the node set
	// shrinks. The surviving model's triples are untouched.
	if n, err := s.NumTriples("keep"); err != nil || n != 1 {
		t.Fatalf("NumTriples(keep) = %d, %v; want 1", n, err)
	}
}

// TestDropModelRemovesBlankMappings checks a dropped model's blank-node
// mappings go with it while another model's mappings stay usable.
func TestDropModelRemovesBlankMappings(t *testing.T) {
	s := newStoreWithModel(t, "keep", "doomed")
	a := govAliases()
	if _, err := s.NewTripleS("keep", "_:x", "gov:p", "gov:a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTripleS("doomed", "_:x", "gov:p", "gov:b", a); err != nil {
		t.Fatal(err)
	}
	keepBlank, _, err := s.IsTriple("keep", "_:x", "gov:p", "gov:a", a)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DropRDFModel("doomed"); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, s)
	// The same label still resolves to the same blank node in "keep":
	// inserting through _:x again bumps the existing link's cost rather
	// than allocating a new blank.
	again, _, err := s.IsTriple("keep", "_:x", "gov:p", "gov:a", a)
	if err != nil {
		t.Fatal(err)
	}
	if again.SID != keepBlank.SID {
		t.Fatalf("blank _:x in keep resolved to VALUE_ID %d after drop, was %d", again.SID, keepBlank.SID)
	}
}

package bench

// Bulk-load throughput measurement (Experiment I's "set-up cost" angle,
// §7.3): how fast triples move from N-Triples text into the central
// schema, per-triple vs the batched fast path, with and without a WAL.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ntriples"
	"repro/internal/obs"
	"repro/internal/reify"
	"repro/internal/uniprot"
	"repro/internal/wal"

	"repro/internal/core"
)

// LoadConfig describes one bulk-load measurement.
type LoadConfig struct {
	// Triples is the corpus size.
	Triples int
	// WAL enables write-ahead logging during the load.
	WAL bool
	// Batch is the Loader batch size; 0 or 1 is the per-triple path.
	Batch int
	// Workers follows reify.Loader semantics: 0 or 1 serial, < 0 all CPUs.
	Workers int
	// SyncEvery > 1 wraps the WAL in group commit (fsync every N commits).
	SyncEvery int
	// Trials is the number of timed runs averaged; < 1 means 1.
	Trials int
}

// LoadResult is a completed measurement.
type LoadResult struct {
	Config        LoadConfig
	Seconds       float64
	TriplesPerSec float64
}

// GenerateNT renders a deterministic UniProt-like corpus (§7.1) as
// N-Triples text for load benchmarking.
func GenerateNT(triples int, seed int64) (string, error) {
	var b strings.Builder
	_, err := uniprot.Stream(uniprot.Config{Triples: triples, Seed: seed},
		func(t ntriples.Triple, _ bool) error {
			b.WriteString(t.String())
			b.WriteByte('\n')
			return nil
		})
	return b.String(), err
}

// MeasureLoad loads doc into a fresh store per the config, Trials times,
// and reports the mean wall-clock throughput. The timed region covers
// parsing, insertion, and (under WAL) making every record durable — the
// group-commit buffer is flushed inside the clock. WAL files are created
// under dir and removed afterwards. Timed trials run uninstrumented;
// use CollectMetrics for the observability companion numbers.
func MeasureLoad(cfg LoadConfig, doc string, dir string) (LoadResult, error) {
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	var total time.Duration
	for i := 0; i < trials; i++ {
		walFile := filepath.Join(dir, fmt.Sprintf("load-%d.wal", i))
		elapsed, err := loadOnce(cfg, doc, walFile, nil)
		if err != nil {
			return LoadResult{}, err
		}
		total += elapsed
	}
	secs := total.Seconds() / float64(trials)
	return LoadResult{
		Config:        cfg,
		Seconds:       secs,
		TriplesPerSec: float64(cfg.Triples) / secs,
	}, nil
}

// loadOnce runs one bulk load per the config into a fresh store and
// returns the wall time of the timed region (parse, insert, flush). A
// non-nil registry instruments the store and WAL for the run.
func loadOnce(cfg LoadConfig, doc, walFile string, reg *obs.Registry) (time.Duration, error) {
	st := core.New()
	if _, err := st.CreateRDFModel("bench", "", ""); err != nil {
		return 0, err
	}
	st.SetMetrics(core.NewMetrics(reg))
	var log *wal.Log
	var group *wal.GroupLog
	if cfg.WAL {
		var err error
		log, _, err = wal.OpenFile(walFile)
		if err != nil {
			return 0, err
		}
		if cfg.SyncEvery > 1 {
			group = wal.Group(log, wal.GroupOptions{SyncEvery: cfg.SyncEvery})
			st.SetDurability(group)
			group.SetMetrics(wal.NewMetrics(reg))
		} else {
			st.SetDurability(log)
			log.SetMetrics(wal.NewMetrics(reg))
		}
	}
	loader := &reify.Loader{
		Store:     st,
		Model:     "bench",
		Workers:   cfg.Workers,
		BatchSize: cfg.Batch,
	}
	start := time.Now()
	_, err := loader.Load(strings.NewReader(doc))
	if err == nil && group != nil {
		err = group.Flush()
	}
	elapsed := time.Since(start)
	if log != nil {
		if group != nil {
			group.Close()
		} else {
			log.Close()
		}
		os.Remove(walFile)
	}
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}

// LoadMetrics is the observability companion to a LoadResult: the
// metric snapshot of one instrumented (untimed) run of the same
// configuration, so BENCH reports carry the durability and batching
// behavior behind the throughput number.
type LoadMetrics struct {
	// Fsyncs and the latency percentiles describe the WAL sync schedule
	// (zero when the configuration runs without a WAL).
	Fsyncs          int64   `json:"fsyncs"`
	FsyncP50Seconds float64 `json:"fsync_p50_seconds"`
	FsyncP99Seconds float64 `json:"fsync_p99_seconds"`
	// BatchSizeMean is the mean triples per InsertBatch call.
	BatchSizeMean float64 `json:"batch_size_mean"`
	// CacheHitRate is term-intern cache hits / (hits + misses).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CommitsPerFlushMean is the mean commits amortized per group-commit
	// flush (zero without group commit).
	CommitsPerFlushMean float64 `json:"commits_per_flush_mean"`
}

// CollectMetrics runs one instrumented load of the configuration and
// summarizes its registry snapshot. It is a separate, untimed run so
// MeasureLoad's throughput numbers stay comparable across builds with
// and without instrumentation attached.
func CollectMetrics(cfg LoadConfig, doc string, dir string) (LoadMetrics, error) {
	reg := obs.NewRegistry()
	if _, err := loadOnce(cfg, doc, filepath.Join(dir, "load-metrics.wal"), reg); err != nil {
		return LoadMetrics{}, err
	}
	snap := reg.Snapshot()
	var lm LoadMetrics
	if c, ok := snap.Counter("wal_fsyncs_total"); ok {
		lm.Fsyncs = c.Value
	}
	if h, ok := snap.Histogram("wal_fsync_seconds"); ok && h.Count > 0 {
		lm.FsyncP50Seconds = h.Quantile(0.50)
		lm.FsyncP99Seconds = h.Quantile(0.99)
	}
	if h, ok := snap.Histogram("core_insert_batch_triples"); ok {
		lm.BatchSizeMean = h.Mean()
	}
	hits, _ := snap.Counter("core_term_cache_hits_total")
	misses, _ := snap.Counter("core_term_cache_misses_total")
	if total := hits.Value + misses.Value; total > 0 {
		lm.CacheHitRate = float64(hits.Value) / float64(total)
	}
	if h, ok := snap.Histogram("wal_group_commits_per_flush"); ok {
		lm.CommitsPerFlushMean = h.Mean()
	}
	return lm, nil
}

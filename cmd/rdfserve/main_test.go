package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// knobTable renders the flag set as the markdown table SERVING.md embeds
// between the knob-table markers. Generated from flag.VisitAll so the
// table and the binary cannot disagree: the test below fails when either
// a flag or its documented default/help text drifts.
func knobTable(fs *flag.FlagSet) string {
	var b strings.Builder
	b.WriteString("| Flag | Default | Description |\n")
	b.WriteString("|------|---------|-------------|\n")
	fs.VisitAll(func(f *flag.Flag) {
		def := ""
		if f.DefValue != "" {
			def = "`" + f.DefValue + "`"
		}
		fmt.Fprintf(&b, "| `-%s` | %s | %s |\n", f.Name, def, f.Usage)
	})
	return strings.TrimSpace(b.String())
}

// extractKnobTable pulls the block between the named begin/end markers.
func extractKnobTable(t *testing.T, doc, name string) string {
	t.Helper()
	begin := "<!-- knob-table:" + name + ":begin -->"
	end := "<!-- knob-table:" + name + ":end -->"
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("SERVING.md is missing the %s / %s markers", begin, end)
	}
	return strings.TrimSpace(doc[i+len(begin) : j])
}

// diffKnobTables reports per-flag mismatches between the documented and
// generated tables, in both directions.
func diffKnobTables(t *testing.T, got, want, tool string) {
	t.Helper()
	parse := func(s string) map[string]string {
		rows := map[string]string{}
		for _, line := range strings.Split(s, "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "| `-") {
				continue
			}
			cells := strings.SplitN(strings.Trim(line, "|"), "|", 3)
			if len(cells) != 3 {
				continue
			}
			name := strings.Trim(strings.TrimSpace(cells[0]), "`")
			rows[name] = line
		}
		return rows
	}
	gotRows, wantRows := parse(got), parse(want)
	for name, row := range wantRows {
		doc, ok := gotRows[name]
		switch {
		case !ok:
			t.Errorf("%s flag %s is not documented in SERVING.md; add the row:\n  %s", tool, name, row)
		case doc != row:
			t.Errorf("%s flag %s drifted:\n  documented: %s\n  actual:     %s", tool, name, doc, row)
		}
	}
	for name, row := range gotRows {
		if _, ok := wantRows[name]; !ok {
			t.Errorf("SERVING.md documents %s flag %s which the binary does not define; drop the row:\n  %s", tool, name, row)
		}
	}
}

// TestServingKnobTableInSync keeps the SERVING.md rdfserve knob table
// byte-identical to what the binary's flag set produces: every flag
// documented, every documented flag real, defaults and help text exact.
func TestServingKnobTableInSync(t *testing.T) {
	fs, _ := newFlagSet()
	want := knobTable(fs)
	data, err := os.ReadFile(filepath.Join("..", "..", "SERVING.md"))
	if err != nil {
		t.Fatalf("reading SERVING.md: %v", err)
	}
	got := extractKnobTable(t, string(data), "rdfserve")
	if got != want {
		diffKnobTables(t, got, want, "rdfserve")
		t.Fatalf("SERVING.md rdfserve knob table out of sync; regenerate it as:\n%s", want)
	}
}

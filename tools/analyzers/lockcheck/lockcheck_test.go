package lockcheck

import (
	"testing"

	"repro/tools/analyzers/framework"
)

func TestLockcheck(t *testing.T) {
	framework.RunTest(t, "testdata", Analyzer, "badlock", "goodlock")
}

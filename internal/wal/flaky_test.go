package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestFlakyFileCountedFaults: FailWrites(n)/FailSyncs(n) fail exactly the
// next n calls and then succeed, with failing writes landing nothing.
func TestFlakyFileCountedFaults(t *testing.T) {
	f := NewFlaky(nil)
	if _, err := f.Write([]byte("ok1")); err != nil {
		t.Fatalf("unarmed write failed: %v", err)
	}
	f.FailWrites(2)
	for i := 0; i < 2; i++ {
		if n, err := f.Write([]byte("lost")); !errors.Is(err, ErrInjected) || n != 0 {
			t.Fatalf("armed write %d: n=%d err=%v, want 0, ErrInjected", i, n, err)
		}
	}
	if _, err := f.Write([]byte("ok2")); err != nil {
		t.Fatalf("write after faults drained: %v", err)
	}
	if got := string(f.Bytes()); got != "ok1ok2" {
		t.Fatalf("image %q, want %q (failed writes must land nothing)", got, "ok1ok2")
	}

	f.FailSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync: %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after fault drained: %v", err)
	}
	w, s := f.InjectedFailures()
	if w != 2 || s != 1 {
		t.Fatalf("InjectedFailures = (%d,%d), want (2,1)", w, s)
	}
}

// TestFlakyFileErrorRate: the rated mode fails a deterministic subset of
// calls; successes still append, failures never do.
func TestFlakyFileErrorRate(t *testing.T) {
	f := NewFlaky(nil)
	f.SetErrorRate(0.5, 0, 42)
	var ok int
	for i := 0; i < 200; i++ {
		if _, err := f.Write([]byte("x")); err == nil {
			ok++
		} else if !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	fails, _ := f.InjectedFailures()
	if ok+fails != 200 {
		t.Fatalf("ok %d + fails %d != 200", ok, fails)
	}
	if ok == 0 || fails == 0 {
		t.Fatalf("rate 0.5 produced ok=%d fails=%d; both should occur", ok, fails)
	}
	if len(f.Bytes()) != ok {
		t.Fatalf("image holds %d bytes, %d writes succeeded", len(f.Bytes()), ok)
	}
}

// TestFlakyFileWrapsRealFile: through OpenFileWith, injected failures
// leave the on-disk image a valid WAL holding exactly the acknowledged
// records.
func TestFlakyFileWrapsRealFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flaky.wal")
	var ff *FlakyFile
	log, _, err := OpenFileWith(path, func(f File) File {
		ff = NewFlaky(f)
		return ff
	})
	if err != nil {
		t.Fatal(err)
	}
	good := Record{Type: TypeInternValue, ValueID: 1068, Text: "http://a", ValueType: "UR"}
	if err := log.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := log.Commit(); err != nil {
		t.Fatal(err)
	}
	ff.FailWrites(1)
	if err := log.Append(Record{Type: TypeInternValue, ValueID: 1069, Text: "lost", ValueType: "UR"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("append through armed fault: %v, want ErrInjected", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("atomic write failure must not tear the log: %v", res.TailErr)
	}
	if len(res.Records) != 1 || res.Records[0].Text != "http://a" {
		t.Fatalf("disk holds %d records %+v, want just the acknowledged one", len(res.Records), res.Records)
	}
}

// TestGroupLogReopen: a latched flush error rejects every later operation
// with the original error — including operations racing the failure —
// until Reopen clears the latch, after which the group commits again.
func TestGroupLogReopen(t *testing.T) {
	ff := NewFlaky(nil)
	l, err := NewLog(ff, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 1})
	rec := Record{Type: TypeInternValue, ValueID: 1068, Text: "http://a", ValueType: "UR"}
	if err := g.Append(rec); err != nil {
		t.Fatal(err)
	}
	ff.FailWrites(1)
	first := g.Commit()
	if !errors.Is(first, ErrInjected) {
		t.Fatalf("commit through armed fault: %v, want ErrInjected", first)
	}

	// Pre-Reopen waiters: every operation issued while the latch is set
	// must see the original flush error, not success and not a new one.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				errs[i] = g.Append(rec)
			} else {
				errs[i] = g.Commit()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("pre-Reopen op %d: err = %v, want the latched flush error", i, err)
		}
		if err.Error() != first.Error() {
			t.Fatalf("pre-Reopen op %d: %q, want the original %q", i, err, first)
		}
	}
	if g.Err() == nil {
		t.Fatal("latch not visible through Err()")
	}

	// Recovery: restart the log (checkpoint stands in for the snapshot the
	// real supervisor writes first), then clear the latch.
	ff2 := NewFlaky(nil)
	l2, err := NewLog(ff2, true)
	if err != nil {
		t.Fatal(err)
	}
	g.Reopen(l2)
	if g.Err() != nil {
		t.Fatalf("latch survives Reopen: %v", g.Err())
	}
	if err := g.Append(rec); err != nil {
		t.Fatalf("append after Reopen: %v", err)
	}
	if err := g.Commit(); err != nil {
		t.Fatalf("commit after Reopen: %v", err)
	}
	res, err := Scan(bytes.NewReader(ff2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("reopened log holds %d records, want 1 (stale pre-fault buffer must be discarded)", len(res.Records))
	}
}

package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/rdfterm"
)

// TestPlanStatisticsCounts: a small known dataset must produce exact
// counts, per-predicate histograms, and distinct cardinalities.
func TestPlanStatisticsCounts(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	// p1: 3 links, 2 distinct subjects, 3 distinct objects.
	s.NewTripleS("m", "gov:s1", "gov:p1", "gov:o1", a)
	s.NewTripleS("m", "gov:s1", "gov:p1", "gov:o2", a)
	s.NewTripleS("m", "gov:s2", "gov:p1", "gov:o3", a)
	// p2: 2 links, 2 distinct subjects, 1 distinct object.
	s.NewTripleS("m", "gov:s1", "gov:p2", `"common"`, a)
	s.NewTripleS("m", "gov:s3", "gov:p2", `"common"`, a)

	ps, err := s.PlanStatistics(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Triples != 5 {
		t.Fatalf("Triples = %d, want 5", ps.Triples)
	}
	if ps.DistinctSubjects != 3 {
		t.Fatalf("DistinctSubjects = %d, want 3 (s1,s2,s3)", ps.DistinctSubjects)
	}
	if ps.DistinctObjects != 4 {
		t.Fatalf("DistinctObjects = %d, want 4 (o1,o2,o3,common)", ps.DistinctObjects)
	}
	if len(ps.Preds) != 2 {
		t.Fatalf("Preds has %d entries, want 2", len(ps.Preds))
	}
	var pid1, pid2 int64
	err = s.ReadView(context.Background(), func(tx *ReadTx) error {
		var ok bool
		if pid1, ok = tx.PredicateIDLocked(rdfterm.NewURI("http://www.us.gov#p1")); !ok {
			t.Fatal("p1 not interned")
		}
		if pid2, ok = tx.PredicateIDLocked(rdfterm.NewURI("http://www.us.gov#p2")); !ok {
			t.Fatal("p2 not interned")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := ps.Pred(pid1); st.Count != 3 || st.DistinctSubjects != 2 || st.DistinctObjects != 3 {
		t.Fatalf("p1 stats = %+v, want {3 2 3}", st)
	}
	if st := ps.Pred(pid2); st.Count != 2 || st.DistinctSubjects != 2 || st.DistinctObjects != 1 {
		t.Fatalf("p2 stats = %+v, want {2 2 1}", st)
	}
	// Unknown predicate: zero stats, not a panic.
	if st := ps.Pred(999999); st.Count != 0 {
		t.Fatalf("unknown pid stats = %+v, want zero", st)
	}
}

// TestPlanStatisticsCanonicalObjects: distinct objects count canonical
// forms — "025"^^int and "25"^^int are one object, not two.
func TestPlanStatisticsCanonicalObjects(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	s.NewTripleS("m", "gov:s1", "gov:p", `"25"^^xsd:int`, a)
	s.NewTripleS("m", "gov:s2", "gov:p", `"025"^^xsd:int`, a)
	ps, err := s.PlanStatistics(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Triples != 2 || ps.DistinctObjects != 1 {
		t.Fatalf("stats = {Triples %d, DistinctObjects %d}, want {2, 1}", ps.Triples, ps.DistinctObjects)
	}
}

// TestPlanStatisticsEmptyAndMissing: an empty model yields zero stats;
// an unknown model yields the usual no-such-model error.
func TestPlanStatisticsEmptyAndMissing(t *testing.T) {
	s := newStoreWithModel(t, "m")
	ps, err := s.PlanStatistics(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Triples != 0 || ps.DistinctSubjects != 0 || len(ps.Preds) != 0 {
		t.Fatalf("empty model stats = %+v, want zeros", ps)
	}
	if _, err := s.PlanStatistics(context.Background(), "nope"); err == nil {
		t.Fatal("PlanStatistics on unknown model succeeded")
	}
}

// TestPlanStatsCacheStaleness: the cache serves the same snapshot while
// the store grows less than 1/8, and rebuilds once drift crosses the
// threshold.
func TestPlanStatsCacheStaleness(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	for i := 0; i < 64; i++ {
		s.NewTripleS("m", fmt.Sprintf("gov:s%d", i), "gov:p", fmt.Sprintf("gov:o%d", i), a)
	}
	ps1, err := s.PlanStatistics(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if ps1.Triples != 64 {
		t.Fatalf("Triples = %d, want 64", ps1.Triples)
	}
	// Grow by 4 (6.25% < 12.5%): cache must serve the stale snapshot.
	for i := 0; i < 4; i++ {
		s.NewTripleS("m", fmt.Sprintf("gov:t%d", i), "gov:p", fmt.Sprintf("gov:u%d", i), a)
	}
	ps2, err := s.PlanStatistics(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Triples != 64 {
		t.Fatalf("within drift: Triples = %d, want cached 64", ps2.Triples)
	}
	// Grow past the 1/8 threshold: rebuild.
	for i := 4; i < 16; i++ {
		s.NewTripleS("m", fmt.Sprintf("gov:t%d", i), "gov:p", fmt.Sprintf("gov:u%d", i), a)
	}
	ps3, err := s.PlanStatistics(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if ps3.Triples != 80 {
		t.Fatalf("past drift: Triples = %d, want rebuilt 80", ps3.Triples)
	}
}

// TestReadViewCancellation: a canceled context fails the view up front,
// and a scan inside the view aborts once the poll notices the cancel.
func TestReadViewCancellation(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	for i := 0; i < 2000; i++ {
		s.NewTripleS("m", fmt.Sprintf("gov:s%d", i), "gov:p", fmt.Sprintf("gov:o%d", i), a)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.ReadView(ctx, func(tx *ReadTx) error { return nil }); err == nil {
		t.Fatal("ReadView accepted a canceled context")
	}
	// Cancel mid-view: the next CollectLinksLocked scan must return the
	// context error instead of completing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	err := s.ReadView(ctx2, func(tx *ReadTx) error {
		mid, err := tx.ModelIDLocked("m")
		if err != nil {
			return err
		}
		cancel2()
		_, err = tx.CollectLinksLocked(nil, mid, 0, 0, 0)
		return err
	})
	if err == nil {
		t.Fatal("scan under canceled context completed")
	}
	if context.Cause(ctx2) == nil {
		t.Fatal("test bug: ctx2 not canceled")
	}
}

// TestCollectLinksIndexPaths: every index-selection branch of
// CollectLinksLocked — MSPO full, MSPO with residual object, MP, MP with
// residual, MO, and the partition scan — must return exact matches.
func TestCollectLinksIndexPaths(t *testing.T) {
	s := newStoreWithModel(t, "m", "other")
	a := govAliases()
	s.NewTripleS("m", "gov:s1", "gov:p1", "gov:o1", a)
	s.NewTripleS("m", "gov:s1", "gov:p2", "gov:o1", a)
	s.NewTripleS("m", "gov:s1", "gov:p2", "gov:o2", a)
	s.NewTripleS("m", "gov:s2", "gov:p1", "gov:o2", a)
	// A decoy in another model: partition pruning must hide it.
	s.NewTripleS("other", "gov:s1", "gov:p1", "gov:o1", a)

	ctx := context.Background()
	err := s.ReadView(ctx, func(tx *ReadTx) error {
		mid, err := tx.ModelIDLocked("m")
		if err != nil {
			return err
		}
		id := func(u string) int64 {
			v, ok := tx.SubjectIDLocked(mid, rdfterm.NewURI("http://www.us.gov#"+u))
			if !ok {
				t.Fatalf("%s not interned", u)
			}
			return v
		}
		pidOf := func(u string) int64 {
			v, ok := tx.PredicateIDLocked(rdfterm.NewURI("http://www.us.gov#" + u))
			if !ok {
				t.Fatalf("%s not interned", u)
			}
			return v
		}
		s1, s2 := id("s1"), id("s2")
		p1, p2 := pidOf("p1"), pidOf("p2")
		o1, ok := tx.ObjectCanonIDLocked(mid, rdfterm.NewURI("http://www.us.gov#o1"))
		if !ok {
			t.Fatal("o1 not interned")
		}
		count := func(sid, pid, canon int64) int {
			got, err := tx.CollectLinksLocked(nil, mid, sid, pid, canon)
			if err != nil {
				t.Fatal(err)
			}
			return len(got)
		}
		cases := []struct {
			name            string
			sid, pid, canon int64
			want            int
		}{
			{"MSPO full (s1,p2,o2)", s1, p2, -1, 1}, // canon filled below
			{"MSPO subject only (s1)", s1, 0, 0, 3},
			{"MSPO s+p (s1,p2)", s1, p2, 0, 2},
			{"MSPO residual object (s1,?,o1)", s1, 0, o1, 2},
			{"MP (p1)", 0, p1, 0, 2},
			{"MP residual (p1,o1)", 0, p1, o1, 1},
			{"MO (o1)", 0, 0, o1, 2},
			{"partition scan (all)", 0, 0, 0, 4},
			{"no match (s2,p2)", s2, p2, 0, 0},
		}
		o2, ok := tx.ObjectCanonIDLocked(mid, rdfterm.NewURI("http://www.us.gov#o2"))
		if !ok {
			t.Fatal("o2 not interned")
		}
		cases[0].canon = o2
		for _, c := range cases {
			if got := count(c.sid, c.pid, c.canon); got != c.want {
				t.Errorf("%s: %d links, want %d", c.name, got, c.want)
			}
		}
		// Contains: exact probe hits and misses.
		if !tx.ContainsLinkLocked(mid, s1, p1, o1) {
			t.Error("ContainsLinkLocked missed (s1,p1,o1)")
		}
		if tx.ContainsLinkLocked(mid, s2, p2, o1) {
			t.Error("ContainsLinkLocked found nonexistent (s2,p2,o1)")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

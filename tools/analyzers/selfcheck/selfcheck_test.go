// Package selfcheck is the meta-test behind the "repo is clean" claim:
// it runs every contract analyzer over every package of the live module
// and asserts zero diagnostics, so a violation introduced anywhere in
// the tree fails `go test ./...` even before make lint or CI runs. The
// long variant also builds the repro-vet binary and drives it through
// `go vet -vettool` to prove the vet protocol wiring works end to end.
package selfcheck

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/tools/analyzers/ctxcheck"
	"repro/tools/analyzers/errwrapcheck"
	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/lockcheck"
	"repro/tools/analyzers/releasecheck"
	"repro/tools/analyzers/viewcheck"
	"repro/tools/analyzers/walcheck"
)

var analyzers = []*framework.Analyzer{
	lockcheck.Analyzer,
	walcheck.Analyzer,
	errwrapcheck.Analyzer,
	viewcheck.Analyzer,
	releasecheck.Analyzer,
	ctxcheck.Analyzer,
}

// TestRepositoryIsClean loads each package of the module in-process and
// runs every contract analyzer over it.
func TestRepositoryIsClean(t *testing.T) {
	root, modPath, err := framework.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := framework.ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("package enumeration found only %d directories; the sweep is not covering the module", len(dirs))
	}
	loader := framework.NewLoader(root, modPath)
	for _, dir := range dirs {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			t.Errorf("loading %s: %v", dir, err)
			continue
		}
		diags, err := framework.RunPackage(pkg, analyzers)
		if err != nil {
			t.Errorf("analyzing %s: %v", pkg.Path, err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s", framework.FormatRel(pkg.Fset, root, d))
		}
	}
}

// TestVetToolProtocol builds repro-vet and runs it under the real go vet
// driver. Skipped in -short runs (the race CI job) because it shells out
// to the toolchain and rebuilds the world's export data.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("exec test skipped in -short mode")
	}
	root, _, err := framework.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "repro-vet")
	build := exec.Command("go", "build", "-o", bin, "./tools/analyzers/cmd/repro-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building repro-vet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	vet.Env = os.Environ()
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported diagnostics or failed: %v\n%s", err, out)
	}
}

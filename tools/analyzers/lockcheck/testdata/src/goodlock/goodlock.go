// Package goodlock exercises the patterns lockcheck must accept: defer
// unlocks, manual unlock on every path, *Locked helpers, constructors on
// unshared locals, goroutines that lock for themselves, and multi-level
// receiver chains. The analyzer must stay silent on this package.
package goodlock

import "sync"

type Table struct{ n int }

func (t *Table) Insert(v int) { t.n++ }
func (t *Table) Len() int     { return t.n }

type Store struct {
	mu  sync.RWMutex
	tab *Table //repro:guarded-by mu
	seq int64  //repro:guarded-by mu
}

// New touches guarded fields on a local the caller cannot see yet.
func New() *Store {
	s := &Store{tab: &Table{}}
	s.seq = 1
	return s
}

// Len uses the canonical RLock + defer shape.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tab.Len()
}

// Insert pairs the lock manually but unlocks on every return path.
func (s *Store) Insert(v int) bool {
	s.mu.Lock()
	if v < 0 {
		s.mu.Unlock()
		return false
	}
	s.insertLocked(v)
	s.mu.Unlock()
	return true
}

// insertLocked documents the caller-holds-the-lock contract by name.
func (s *Store) insertLocked(v int) {
	s.tab.Insert(v)
	s.seq++
}

// Snapshot reads several guarded fields inside one critical section.
func (s *Store) Snapshot() (int, int64) {
	s.mu.RLock()
	n := s.tab.Len()
	seq := s.seq
	s.mu.RUnlock()
	return n, seq
}

// Refresh spawns a goroutine that acquires the lock for itself.
func (s *Store) Refresh() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.tab.Insert(0)
	}()
}

// Use calls a locking method from an unlocked context.
func Use(s *Store) {
	s.Insert(4)
}

// Collect snapshots under a manually paired lock; the early return
// inside the scan callback leaves the closure, not Collect, so it does
// not leak the lock Collect owns.
func (s *Store) Collect(limit int) []int {
	s.mu.RLock()
	var out []int
	walk(s.tab.Len(), func(v int) bool {
		if v >= limit {
			return false
		}
		out = append(out, v)
		return true
	})
	s.mu.RUnlock()
	return out
}

func walk(n int, fn func(int) bool) {
	for i := 0; i < n; i++ {
		if !fn(i) {
			return
		}
	}
}

type Network struct{ store *Store }

// Grow reaches the guarded field through a two-level chain; the lock
// state is tracked per rendered base, so n.store.mu covers n.store.tab.
func (n *Network) Grow(v int) {
	n.store.mu.Lock()
	defer n.store.mu.Unlock()
	n.store.tab.Insert(v)
}

// Probe is a nil-safe instrument in the shape of the obs package:
// methods are nil-receiver no-ops so a disabled probe costs one branch.
type Probe struct{ n int64 }

func (p *Probe) start() int64 {
	if p == nil {
		return 0
	}
	return 1
}

func (p *Probe) observe(t0 int64) {
	if p == nil {
		return
	}
	p.n += t0
}

// Ring is an event buffer in the shape of the obs event log: the ring
// and cursor are guarded, appends go through a *Locked helper.
type Ring struct {
	mu   sync.Mutex
	buf  []int //repro:guarded-by mu
	next int   //repro:guarded-by mu
	// met is deliberately unannotated: lock-wait timing reads it before
	// mu is acquired, so attach-before-share is the synchronization.
	met *Probe
}

// Emit times the lock acquisition itself: the probe read and the timer
// start must precede the Lock, which is exactly why met carries no
// guarded-by annotation.
func (r *Ring) Emit(v int) {
	t0 := r.met.start()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.met.observe(t0)
	r.emitLocked(v)
}

func (r *Ring) emitLocked(v int) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.next%len(r.buf)] = v
	r.next++
}

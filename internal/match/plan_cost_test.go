package match

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

// Golden plan tests for the cost-based planner: a known stats fixture
// must produce a known iterator order, observable through
// Trace.PlanOrder and Trace.Planner.

// planFor runs the query traced and returns the chosen order and planner.
func planFor(t *testing.T, s *core.Store, query string, opts Options) ([]int, string, *Trace) {
	t.Helper()
	var tr Trace
	opts.Trace = &tr
	if len(opts.Models) == 0 {
		opts.Models = []string{"g"}
	}
	if opts.Aliases == nil {
		opts.Aliases = govAliases()
	}
	if _, err := Match(s, query, opts); err != nil {
		t.Fatal(err)
	}
	return tr.PlanOrder, tr.Planner, &tr
}

// TestCostPlanChain: on the chain fixture the cost planner starts from
// the selective 2-bound type probe and then walks the connected chain —
// 2 -> 1 -> 0, not the heuristic's 2 -> 0 -> 1 (which would pick the
// disconnected first pattern and cross-product).
func TestCostPlanChain(t *testing.T) {
	s := chainStore(t, 100)
	order, planner, tr := planFor(t, s, threeJoinQuery, Options{})
	if !reflect.DeepEqual(order, []int{2, 1, 0}) {
		t.Fatalf("cost plan = %v, want [2 1 0]", order)
	}
	if planner != "cost" {
		t.Fatalf("planner = %q, want cost", planner)
	}
	for i, st := range tr.Stages {
		if st.EstRows < 0 {
			t.Fatalf("stage %d EstRows = %v, want an estimate", i, st.EstRows)
		}
	}
}

// invStore builds the selectivity-inversion fixture: n chains
// (s_i p1 m_i)(m_i p2 "common") where EVERY p2 object is the same
// literal, plus a single (s_0 type "rare"). The two 2-bound patterns in
// the query look identical to the boundness heuristic, but statistics
// show p2="common" matches n rows while type="rare" matches one.
func invStore(t *testing.T, n int) *core.Store {
	t.Helper()
	s := core.New()
	if _, err := s.CreateRDFModel("g", "", ""); err != nil {
		t.Fatal(err)
	}
	a := govAliases()
	ins := func(sub, p, o string) {
		t.Helper()
		if _, err := s.NewTripleS("g", sub, p, o, a); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		ins(fmt.Sprintf("gov:s%d", i), "gov:p1", fmt.Sprintf("gov:m%d", i))
		ins(fmt.Sprintf("gov:m%d", i), "gov:p2", `"common"`)
	}
	ins("gov:s0", "gov:type", `"rare"`)
	return s
}

const inversionQuery = `(?s gov:p1 ?m) (?m gov:p2 "common") (?s gov:type "rare")`

// TestCostPlanSelectivityInversion: the heuristic ties the two 2-bound
// patterns and keeps text order (pattern 1 first — the unselective one);
// the cost planner sees count(type)=1 vs count(p2)/distinct-objects=n
// and starts from the rare probe, then chains through ?s.
func TestCostPlanSelectivityInversion(t *testing.T) {
	s := invStore(t, 50)
	order, planner, _ := planFor(t, s, inversionQuery, Options{})
	if planner != "cost" {
		t.Fatalf("planner = %q, want cost", planner)
	}
	if !reflect.DeepEqual(order, []int{2, 0, 1}) {
		t.Fatalf("cost plan = %v, want [2 0 1]", order)
	}
	horder, hplanner, _ := planFor(t, s, inversionQuery, Options{Planner: PlannerHeuristic})
	if hplanner != "heuristic" || !reflect.DeepEqual(horder, []int{1, 2, 0}) {
		t.Fatalf("heuristic plan = %v (%s), want [1 2 0]", horder, hplanner)
	}
	// Both plans return the same single row.
	rs, err := Match(s, inversionQuery, Options{Models: []string{"g"}, Aliases: govAliases()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d, want 1", rs.Len())
	}
}

// TestCostPlanFallbackEmptyStats: a model with no triples has no
// statistics; the cost planner must fall back to the heuristic rather
// than divide by zero or order arbitrarily.
func TestCostPlanFallbackEmptyStats(t *testing.T) {
	s := core.New()
	if _, err := s.CreateRDFModel("g", "", ""); err != nil {
		t.Fatal(err)
	}
	order, planner, _ := planFor(t, s, `(?s ?p ?o) (?s gov:p1 ?o)`, Options{})
	if planner != "heuristic" {
		t.Fatalf("planner = %q, want heuristic fallback on empty stats", planner)
	}
	if !reflect.DeepEqual(order, []int{1, 0}) {
		t.Fatalf("fallback plan = %v, want [1 0]", order)
	}
}

// TestPlannerNaiveKeepsTextOrder: PlannerNaive must execute patterns in
// query-text order on both engines — it is the differential baseline.
func TestPlannerNaiveKeepsTextOrder(t *testing.T) {
	s := chainStore(t, 20)
	for _, eng := range []Engine{EngineStreaming, EngineMaterialize} {
		order, planner, _ := planFor(t, s, threeJoinQuery, Options{Planner: PlannerNaive, Engine: eng})
		if planner != "naive" || !reflect.DeepEqual(order, []int{0, 1, 2}) {
			t.Fatalf("engine %d: naive plan = %v (%s), want [0 1 2]", eng, order, planner)
		}
	}
}

// TestPlannerHeuristicOption: explicitly requesting the boundness
// heuristic on the streaming engine reproduces planOrder's choice.
func TestPlannerHeuristicOption(t *testing.T) {
	s := chainStore(t, 20)
	order, planner, _ := planFor(t, s, threeJoinQuery, Options{Planner: PlannerHeuristic})
	if planner != "heuristic" || !reflect.DeepEqual(order, []int{2, 0, 1}) {
		t.Fatalf("heuristic plan = %v (%s), want [2 0 1]", order, planner)
	}
}

// TestEmptyCollapse: a pattern whose concrete term resolves in no scoped
// model makes the whole conjunction empty — the planner collapses the
// query and no stage executes (Trace.Stages stays empty).
func TestEmptyCollapse(t *testing.T) {
	s := chainStore(t, 20)
	var tr Trace
	rs, err := Match(s, `(?x gov:nosuchpred ?y) (?x gov:p1 ?z)`, Options{
		Models: []string{"g"}, Aliases: govAliases(), Trace: &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("rows = %d, want 0", rs.Len())
	}
	if len(tr.Stages) != 0 {
		t.Fatalf("empty-collapsed query ran %d stages, want 0", len(tr.Stages))
	}
	if len(rs.Vars) != 3 {
		t.Fatalf("Vars = %v, want x,y,z reported even for an empty result", rs.Vars)
	}
	// An unresolvable literal object collapses the same way.
	rs, err = Match(s, `(?z gov:type "no-such-type") (?y gov:p2 ?z)`, Options{
		Models: []string{"g"}, Aliases: govAliases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("rows = %d, want 0", rs.Len())
	}
}

// TestEstRowsMaterializeUnestimated: the materializing engine does not
// cost plans; its stages must carry EstRows = -1 so Format omits est=.
func TestEstRowsMaterializeUnestimated(t *testing.T) {
	s := chainStore(t, 20)
	_, _, tr := planFor(t, s, threeJoinQuery, Options{Engine: EngineMaterialize})
	if len(tr.Stages) == 0 {
		t.Fatal("no stages traced")
	}
	for i, st := range tr.Stages {
		if st.EstRows != -1 {
			t.Fatalf("stage %d EstRows = %v, want -1 on the materializing engine", i, st.EstRows)
		}
	}
}

// TestCostPlanMultiModelStats: statistics aggregate across the scoped
// models, so a probe selective in the union is still chosen first when
// the qualifying triples live in a different model than the chains.
func TestCostPlanMultiModelStats(t *testing.T) {
	s := core.New()
	a := govAliases()
	for _, m := range []string{"m1", "m2"} {
		if _, err := s.CreateRDFModel(m, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	ins := func(m, sub, p, o string) {
		t.Helper()
		if _, err := s.NewTripleS(m, sub, p, o, a); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		ins("m1", fmt.Sprintf("gov:root%d", i), "gov:p1", fmt.Sprintf("gov:mid%d", i))
		ins("m1", fmt.Sprintf("gov:mid%d", i), "gov:p2", fmt.Sprintf("gov:leaf%d", i))
	}
	ins("m2", "gov:leaf7", "gov:type", `"target"`)
	var tr Trace
	rs, err := Match(s, threeJoinQuery, Options{
		Models: []string{"m1", "m2"}, Aliases: govAliases(), Trace: &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d, want 1", rs.Len())
	}
	if tr.Planner != "cost" || len(tr.PlanOrder) != 3 || tr.PlanOrder[0] != 2 {
		t.Fatalf("plan = %v (%s), want type probe first", tr.PlanOrder, tr.Planner)
	}
}

package trace

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// seedTraces retains three traces: a slow one for tenant acme, an
// errored one for tenant beta, and a fast sampled one with no tenant.
// Returns the tracer plus the slow trace's ID.
func seedTraces(t *testing.T) (*Tracer, string) {
	t.Helper()
	tr := New(Config{SlowThreshold: 10 * time.Millisecond, SampleRate: 1})

	slow := tr.StartRoot("query.request")
	slow.SetAttr("tenant", "acme")
	c := slow.Child("match.query")
	time.Sleep(15 * time.Millisecond)
	c.End()
	slow.End()

	bad := tr.StartRoot("insert.request")
	bad.SetAttr("tenant", "beta")
	bad.SetError(errors.New("wal: boom"))
	bad.End()

	fast := tr.StartRoot("find.request")
	fast.End()

	if tr.Len() != 3 {
		t.Fatalf("seed retained %d traces, want 3", tr.Len())
	}
	return tr, slow.TraceID()
}

func getJSON(t *testing.T, h *httptest.Server, path string, into any) int {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 200 {
		dec := json.NewDecoder(resp.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHandlerListAndFilters(t *testing.T) {
	tr, slowID := seedTraces(t)
	srv := httptest.NewServer(NewHandler(tr))
	defer srv.Close()

	var list traceList
	if code := getJSON(t, srv, "/", &list); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if list.Retained != 3 || len(list.Traces) != 3 {
		t.Fatalf("list = %+v", list)
	}
	// Newest first: find.request landed last.
	if list.Traces[0].Root != "find.request" {
		t.Fatalf("list not newest-first: %+v", list.Traces)
	}

	if getJSON(t, srv, "/?min_ms=10", &list); len(list.Traces) != 1 || list.Traces[0].ID != slowID {
		t.Fatalf("min_ms filter: %+v", list.Traces)
	}
	if getJSON(t, srv, "/?error=true", &list); len(list.Traces) != 1 || list.Traces[0].Root != "insert.request" {
		t.Fatalf("error filter: %+v", list.Traces)
	}
	if getJSON(t, srv, "/?tenant=acme", &list); len(list.Traces) != 1 || list.Traces[0].Tenant != "acme" {
		t.Fatalf("tenant filter: %+v", list.Traces)
	}
	if getJSON(t, srv, "/?limit=2", &list); len(list.Traces) != 2 || list.Retained != 3 {
		t.Fatalf("limit: %+v", list)
	}
	if code := getJSON(t, srv, "/?min_ms=junk", &list); code != 400 {
		t.Fatalf("bad min_ms status %d", code)
	}
}

func TestHandlerSingleTrace(t *testing.T) {
	tr, slowID := seedTraces(t)
	srv := httptest.NewServer(NewHandler(tr))
	defer srv.Close()

	var td TraceData
	if code := getJSON(t, srv, "/"+slowID, &td); code != 200 {
		t.Fatalf("single status %d", code)
	}
	if td.ID != slowID || len(td.Spans) != 2 || td.Reason != ReasonSlow {
		t.Fatalf("single trace = %+v", td)
	}

	if code := getJSON(t, srv, "/"+strings.Repeat("0", 32), &td); code != 404 {
		t.Fatalf("missing trace status %d", code)
	}

	resp, err := srv.Client().Get(srv.URL + "/" + slowID + "?format=text")
	if err != nil {
		t.Fatalf("text form: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read text: %v", err)
	}
	if !strings.Contains(string(body), "match.query") {
		t.Fatalf("text tree missing child span:\n%s", body)
	}
}

func TestHandlerNilTracer(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil))
	defer srv.Close()
	var list traceList
	if code := getJSON(t, srv, "/", &list); code != 200 || list.Retained != 0 {
		t.Fatalf("nil tracer list: code=%d %+v", code, list)
	}
	var td TraceData
	if code := getJSON(t, srv, "/"+strings.Repeat("a", 32), &td); code != 404 {
		t.Fatalf("nil tracer lookup status %d", code)
	}
}

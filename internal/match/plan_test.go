package match

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

func mustParse(t testing.TB, q string) []TriplePattern {
	t.Helper()
	pats, err := ParseQuery(q, govAliases())
	if err != nil {
		t.Fatal(err)
	}
	return pats
}

// TestPlanOrderMostSelectiveFirst: planOrder must run patterns with more
// concrete terms first, keeping input order among equally-bound patterns.
func TestPlanOrderMostSelectiveFirst(t *testing.T) {
	cases := []struct {
		query string
		want  []int
	}{
		// Fully unbound last, two-bound patterns first in input order.
		{`(?s ?p ?o) (gov:files gov:terrorSuspect ?x) (?x gov:terrorAction "bombing")`, []int{1, 2, 0}},
		// Fully bound beats everything.
		{`(?a ?b ?c) (gov:files gov:terrorSuspect id:JohnDoe)`, []int{1, 0}},
		// Strictly decreasing boundness, given in increasing order: reversed.
		{`(?a ?b ?c) (?x gov:terrorAction ?y) (?x gov:terrorAction "bombing") (gov:files gov:terrorSuspect id:JohnDoe)`, []int{3, 2, 1, 0}},
		// All ties (one bound term each): stable, input order preserved.
		{`(?a gov:p1 ?b) (?b gov:p2 ?c) (?c gov:p3 ?d)`, []int{0, 1, 2}},
		// Mixed ties: the two 2-bound patterns keep their relative order.
		{`(?x gov:terrorAction "bombing") (?s ?p ?o) (gov:files gov:terrorSuspect ?y) (?z gov:p1 ?w)`, []int{0, 2, 3, 1}},
		// Single pattern.
		{`(?s gov:p1 ?o)`, []int{0}},
	}
	for _, c := range cases {
		pats := mustParse(t, c.query)
		got := planOrder(pats)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("planOrder(%s) = %v, want %v", c.query, got, c.want)
		}
	}
}

// TestPlanOrderBoundnessOnly: a variable repeated across positions does
// not count as bound — only concrete terms do.
func TestPlanOrderBoundnessOnly(t *testing.T) {
	pats := mustParse(t, `(?x ?p ?x) (?x gov:p1 ?y)`)
	if got := planOrder(pats); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Fatalf("planOrder = %v, want [1 0] (repeated variable is not a bound term)", got)
	}
}

// chainStore builds a store shaped for a 3-pattern join: chains
// root -p1-> mid -p2-> leaf, with exactly one chain ending in a
// "target"-typed leaf — the selective probe a good plan starts from.
func chainStore(tb testing.TB, chains int) *core.Store {
	tb.Helper()
	s := core.New()
	if _, err := s.CreateRDFModel("g", "", ""); err != nil {
		tb.Fatal(err)
	}
	a := govAliases()
	ins := func(sub, p, o string) {
		tb.Helper()
		if _, err := s.NewTripleS("g", sub, p, o, a); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < chains; i++ {
		ins(fmt.Sprintf("gov:root%d", i), "gov:p1", fmt.Sprintf("gov:mid%d", i))
		ins(fmt.Sprintf("gov:mid%d", i), "gov:p2", fmt.Sprintf("gov:leaf%d", i))
		if i == chains/2 {
			ins(fmt.Sprintf("gov:leaf%d", i), "gov:type", `"target"`)
		} else {
			ins(fmt.Sprintf("gov:leaf%d", i), "gov:type", `"noise"`)
		}
	}
	return s
}

const threeJoinQuery = `(?x gov:p1 ?y) (?y gov:p2 ?z) (?z gov:type "target")`

// TestThreePatternJoin: the planner must start from the 2-bound type
// probe, so the join finds the single qualifying chain.
func TestThreePatternJoin(t *testing.T) {
	s := chainStore(t, 100)
	rs, err := Match(s, threeJoinQuery, Options{Models: []string{"g"}, Aliases: govAliases()})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("join returned %d rows, want 1", rs.Len())
	}
	x, _ := rs.Get(0, "x")
	if x.Value != "http://www.us.gov#root50" {
		t.Fatalf("?x = %v, want root50", x)
	}
}

// BenchmarkThreePatternJoin measures the left-deep join over a 3-pattern
// chain query on 3000 triples (1000 chains, one selective).
func BenchmarkThreePatternJoin(b *testing.B) {
	s := chainStore(b, 1000)
	opts := Options{Models: []string{"g"}, Aliases: govAliases()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := Match(s, threeJoinQuery, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatalf("join returned %d rows", rs.Len())
		}
	}
}

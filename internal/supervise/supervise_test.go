package supervise

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rdfterm"
	"repro/internal/wal"
)

func testAliases() *rdfterm.AliasSet {
	return rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
}

// flakyOpener is an OpenWAL hook that wraps every opened WAL file in a
// FlakyFile and keeps a handle to the current one so tests can inject
// faults mid-run. It can also refuse opens entirely (failOpens), to make
// recovery attempts themselves fail.
type flakyOpener struct {
	mu        sync.Mutex
	cur       *wal.FlakyFile
	failOpens int
	opens     int
}

func (fo *flakyOpener) open(path string) (*wal.Log, wal.ScanResult, error) {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	fo.opens++
	if fo.failOpens > 0 {
		fo.failOpens--
		return nil, wal.ScanResult{}, fmt.Errorf("%w: injected open refusal", wal.ErrInjected)
	}
	var fl *wal.FlakyFile
	log, res, err := wal.OpenFileWith(path, func(f wal.File) wal.File {
		fl = wal.NewFlaky(f)
		return fl
	})
	if err != nil {
		return nil, res, err
	}
	fo.cur = fl
	return log, res, nil
}

func (fo *flakyOpener) current() *wal.FlakyFile {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return fo.cur
}

func (fo *flakyOpener) refuseNext(n int) {
	fo.mu.Lock()
	defer fo.mu.Unlock()
	fo.failOpens = n
}

// recorder captures the transition sequence.
type recorder struct {
	mu  sync.Mutex
	seq []Transition
}

func (r *recorder) note(tr Transition) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq = append(r.seq, tr)
}

func (r *recorder) transitions() []Transition {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Transition(nil), r.seq...)
}

// hasEdge reports whether the sequence contains a From→To transition.
func (r *recorder) hasEdge(from, to State) bool {
	for _, tr := range r.transitions() {
		if tr.From == from && tr.To == to {
			return true
		}
	}
	return false
}

func waitState(t *testing.T, sv *Supervisor, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if sv.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("state = %v after %v, want %v (health: %+v)", sv.State(), within, want, sv.Health())
}

func insert(sv *Supervisor, model, s, p, o string) error {
	return sv.Mutate(func(st *core.Store) error {
		_, err := st.NewTripleS(model, s, p, o, testAliases())
		return err
	})
}

func openTestSupervisor(t *testing.T, mutate func(*Config)) (*Supervisor, *flakyOpener, *recorder, string) {
	t.Helper()
	dir := t.TempDir()
	fo := &flakyOpener{}
	rec := &recorder{}
	cfg := Config{
		SnapshotPath: filepath.Join(dir, "store.snap"),
		WALPath:      filepath.Join(dir, "store.wal"),
		OpenWAL:      fo.open,
		OnTransition: rec.note,
		Backoff:      Backoff{Initial: time.Millisecond, Max: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.1},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return sv, fo, rec, dir
}

func TestLifecycleAndRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		SnapshotPath: filepath.Join(dir, "store.snap"),
		WALPath:      filepath.Join(dir, "store.wal"),
	}
	sv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sv.State() != Healthy {
		t.Fatalf("fresh supervisor state = %v", sv.State())
	}
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := insert(sv, "m", "x:s", "x:p", "x:o"); err != nil {
		t.Fatal(err)
	}
	if err := sv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := insert(sv, "m", "x:s2", "x:p", "x:o2"); err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Mutate(func(*core.Store) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Mutate after Close = %v", err)
	}

	// Restart: snapshot + WAL tail both survive.
	sv2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sv2.Close()
	got, err := sv2.Find(context.Background(), "m", core.Pattern{})
	if err != nil || len(got) != 2 {
		t.Fatalf("after restart Find = %d triples, %v", len(got), err)
	}
}

func TestDurabilityFaultDegradesThenRecovers(t *testing.T) {
	sv, fo, rec, _ := openTestSupervisor(t, nil)
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := insert(sv, "m", "x:pre", "x:p", "x:pre"); err != nil {
		t.Fatal(err)
	}

	// Break the sink: the next append fails, the mutation is rejected,
	// and the supervisor degrades.
	fo.current().FailWrites(1)
	err := insert(sv, "m", "x:broken", "x:p", "x:broken")
	if err == nil {
		t.Fatal("mutation against broken WAL succeeded")
	}
	if !errors.Is(err, core.ErrDurability) {
		t.Fatalf("mutation error %v does not wrap core.ErrDurability", err)
	}

	// Degraded: mutations rejected with the typed sentinel, reads serve.
	// Recovery may already have healed the store (the fault was
	// transient); only assert the read path and the transition record.
	if err := insert(sv, "m", "x:while", "x:p", "x:degraded"); err != nil {
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("mutation while degraded = %v, want ErrDegraded", err)
		}
	}
	if got, err := sv.Find(context.Background(), "m", core.Pattern{}); err != nil || len(got) == 0 {
		t.Fatalf("read while degraded = %d rows, %v", len(got), err)
	}

	// The transient fault heals on the next attempt: reopen succeeds.
	waitState(t, sv, Healthy, 2*time.Second)
	for _, edge := range [][2]State{{Healthy, Degraded}, {Degraded, Recovering}, {Recovering, Healthy}} {
		if !rec.hasEdge(edge[0], edge[1]) {
			t.Fatalf("transition %v→%v missing from %+v", edge[0], edge[1], rec.transitions())
		}
	}
	if sv.Health().Recoveries == 0 {
		t.Fatal("recovery not counted")
	}

	// Fully functional again.
	if err := insert(sv, "m", "x:post", "x:p", "x:post"); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryBackoffThenFailedTerminal(t *testing.T) {
	sv, fo, rec, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.Backoff.MaxAttempts = 3
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := insert(sv, "m", "x:s", "x:p", "x:o"); err != nil {
		t.Fatal(err)
	}

	// Break the sink AND refuse every reopen: recovery exhausts its
	// attempt budget and the supervisor fails terminally.
	fo.refuseNext(1000)
	fo.current().FailWrites(1000)
	if err := insert(sv, "m", "x:s2", "x:p", "x:o2"); err == nil {
		t.Fatal("mutation against broken WAL succeeded")
	}
	waitState(t, sv, Failed, 2*time.Second)
	if !rec.hasEdge(Recovering, Failed) {
		t.Fatalf("no Recovering→Failed edge in %+v", rec.transitions())
	}

	// Terminal: mutations report ErrFailed, reads still serve.
	if err := insert(sv, "m", "x:s3", "x:p", "x:o3"); !errors.Is(err, ErrFailed) {
		t.Fatalf("mutation while failed = %v, want ErrFailed", err)
	}
	if got, err := sv.Find(context.Background(), "m", core.Pattern{}); err != nil || len(got) == 0 {
		t.Fatalf("read while failed = %d rows, %v", len(got), err)
	}

	// Failed is sticky even if the sink heals.
	fo.refuseNext(0)
	time.Sleep(20 * time.Millisecond)
	if sv.State() != Failed {
		t.Fatalf("state left Failed: %v", sv.State())
	}
}

func TestScrubberEscalatesAndRecoveryRebuildsFromDisk(t *testing.T) {
	// The injected scrubber reports a fabricated violation once; the
	// injected verifier condemns the current in-memory store, forcing the
	// rebuild-from-disk path, and passes the rebuilt store.
	var (
		mu        sync.Mutex
		badReport bool
		condemned *core.Store
	)
	sv, _, rec, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.ScrubInterval = 2 * time.Millisecond
		cfg.Scrub = func(ctx context.Context, st *core.Store, slice int) (core.ScrubReport, error) {
			mu.Lock()
			defer mu.Unlock()
			rep, err := st.ScrubPass(ctx, slice)
			if badReport {
				badReport = false
				condemned = st
				rep.Violations = append(rep.Violations, errors.New("fabricated: node 7 unused by any link"))
			}
			return rep, err
		}
		cfg.Verify = func(st *core.Store) []error {
			mu.Lock()
			defer mu.Unlock()
			if st == condemned {
				return []error{errors.New("fabricated: still corrupt")}
			}
			return st.CheckInvariants()
		}
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := insert(sv, "m", "x:s", "x:p", "x:o"); err != nil {
		t.Fatal(err)
	}
	// Make the durable image current, then condemn memory.
	if err := sv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := sv.Store()
	mu.Lock()
	badReport = true
	mu.Unlock()

	waitState(t, sv, Healthy, 2*time.Second)
	// Wait until the scrub-triggered degradation has happened AND healed.
	deadline := time.Now().Add(2 * time.Second)
	for !rec.hasEdge(Healthy, Degraded) || sv.State() != Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("scrub escalation/recovery incomplete: %+v", rec.transitions())
		}
		time.Sleep(time.Millisecond)
	}
	var scrubErr *ScrubError
	foundScrubReason := false
	for _, tr := range rec.transitions() {
		if tr.To == Degraded && errors.As(tr.Reason, &scrubErr) {
			foundScrubReason = true
		}
	}
	if !foundScrubReason {
		t.Fatalf("no Degraded transition carries a *ScrubError: %+v", rec.transitions())
	}

	// The store was rebuilt from disk: new pointer, same data.
	after := sv.Store()
	if after == before {
		t.Fatal("store pointer unchanged; rebuild-from-disk did not run")
	}
	got, err := sv.Find(context.Background(), "m", core.Pattern{})
	if err != nil || len(got) != 1 {
		t.Fatalf("rebuilt store Find = %d rows, %v", len(got), err)
	}
	if err := insert(sv, "m", "x:s2", "x:p", "x:o2"); err != nil {
		t.Fatal(err)
	}
	if sv.Health().Scrubs == 0 {
		t.Fatal("completed scrubs not counted")
	}
}

// A transient failure of a recovery attempt must not change how the
// fault is classified: if the scrubber condemned memory, every attempt
// has to keep treating disk as the authority. The buggy alternative —
// classifying from the latest attempt error — would flip to the
// durability path after one refused WAL reopen and checkpoint the
// condemned in-memory image over the good snapshot.
func TestCorruptionRecoverySurvivesTransientAttemptFailure(t *testing.T) {
	var (
		mu        sync.Mutex
		badReport bool
		condemned *core.Store
	)
	sv, fo, rec, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.ScrubInterval = 2 * time.Millisecond
		cfg.Scrub = func(ctx context.Context, st *core.Store, slice int) (core.ScrubReport, error) {
			mu.Lock()
			defer mu.Unlock()
			rep, err := st.ScrubPass(ctx, slice)
			if badReport {
				badReport = false
				condemned = st
				rep.Violations = append(rep.Violations, errors.New("fabricated: node 7 unused by any link"))
			}
			return rep, err
		}
		cfg.Verify = func(st *core.Store) []error {
			mu.Lock()
			defer mu.Unlock()
			if st == condemned {
				return []error{errors.New("fabricated: still corrupt")}
			}
			return st.CheckInvariants()
		}
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := insert(sv, "m", "x:s", "x:p", "x:o"); err != nil {
		t.Fatal(err)
	}
	if err := sv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := sv.Store()

	// Condemn memory AND make the first recovery attempt fail on the WAL
	// reopen, so recovery needs at least two attempts.
	mu.Lock()
	badReport = true
	mu.Unlock()
	fo.refuseNext(1)

	// Wait for the scrub-triggered degradation to happen AND heal.
	deadline := time.Now().Add(2 * time.Second)
	for !rec.hasEdge(Healthy, Degraded) || sv.State() != Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("scrub escalation/recovery incomplete: %+v", rec.transitions())
		}
		time.Sleep(time.Millisecond)
	}
	// Disk must have stayed the authority across the failed attempt: the
	// store was rebuilt from snapshot+WAL (new pointer), not re-baselined
	// from the condemned memory image (same pointer).
	after := sv.Store()
	if after == before {
		t.Fatal("store pointer unchanged: failed attempt reclassified corruption as a durability fault and re-baselined condemned memory")
	}
	got, err := sv.Find(context.Background(), "m", core.Pattern{})
	if err != nil || len(got) != 1 {
		t.Fatalf("rebuilt store Find = %d rows, %v", len(got), err)
	}
}

// A background sweep that fails outright (not a cancellation) means the
// store could not be verified; the supervisor must escalate instead of
// silently skipping the sweep.
func TestScrubErrorEscalates(t *testing.T) {
	injected := errors.New("injected: scrub I/O failure")
	var (
		mu        sync.Mutex
		scrubFail bool
	)
	sv, _, rec, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.ScrubInterval = 2 * time.Millisecond
		cfg.Scrub = func(ctx context.Context, st *core.Store, slice int) (core.ScrubReport, error) {
			mu.Lock()
			defer mu.Unlock()
			if scrubFail {
				scrubFail = false
				return core.ScrubReport{}, injected
			}
			return st.ScrubPass(ctx, slice)
		}
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := insert(sv, "m", "x:s", "x:p", "x:o"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	scrubFail = true
	mu.Unlock()

	// The failed sweep degrades the store with the sweep error as cause;
	// memory is fine, so rebaseline recovery heals it.
	deadline := time.Now().Add(2 * time.Second)
	for !rec.hasEdge(Healthy, Degraded) || sv.State() != Healthy {
		if time.Now().After(deadline) {
			t.Fatalf("scrub-error escalation/recovery incomplete: %+v", rec.transitions())
		}
		time.Sleep(time.Millisecond)
	}
	found := false
	for _, tr := range rec.transitions() {
		if tr.To == Degraded && errors.Is(tr.Reason, injected) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Degraded transition wraps the injected scrub error: %+v", rec.transitions())
	}
	if err := insert(sv, "m", "x:s2", "x:p", "x:o2"); err != nil {
		t.Fatal(err)
	}
}

func TestQueryTimeout(t *testing.T) {
	sv, _, _, _ := openTestSupervisor(t, func(cfg *Config) {
		cfg.QueryTimeout = time.Nanosecond
	})
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("m", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	batch := make([]core.BatchTriple, 2000)
	for i := range batch {
		batch[i] = core.BatchTriple{
			Subject:   rdfterm.NewURI(fmt.Sprintf("http://x#s%d", i)),
			Predicate: rdfterm.NewURI("http://x#p"),
			Object:    rdfterm.NewURI(fmt.Sprintf("http://x#o%d", i)),
		}
	}
	if _, err := sv.InsertBatch("m", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Find(context.Background(), "m", core.Pattern{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Find under 1ns budget = %v, want DeadlineExceeded", err)
	}
}

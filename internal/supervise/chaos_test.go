package supervise

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestChaosCycle drives concurrent writers, readers, and a background
// scrubber through injected WAL faults and asserts the acceptance
// criteria from the issue:
//
//   - the full Healthy → Degraded → Recovering → Healthy cycle is
//     observed (at least once; typically several times),
//   - readers never see a corrupt result, in any health state,
//   - every acknowledged commit survives to a post-mortem recovery from
//     the on-disk image alone.
func TestChaosCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	dir := t.TempDir()
	fo := &flakyOpener{}
	rec := &recorder{}
	sv, err := Open(Config{
		SnapshotPath:  filepath.Join(dir, "store.snap"),
		WALPath:       filepath.Join(dir, "store.wal"),
		OpenWAL:       fo.open,
		OnTransition:  rec.note,
		ScrubInterval: 5 * time.Millisecond,
		ScrubSlice:    64,
		Backoff:       Backoff{Initial: time.Millisecond, Max: 5 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Mutate(func(st *core.Store) error {
		_, err := st.CreateRDFModel("chaos", "", "")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		readers  = 2
		duration = 1500 * time.Millisecond
	)
	var (
		acked   sync.Map // subject URI -> true, only for acknowledged commits
		ackedN  atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		readErr atomic.Value // first corrupt-read description, if any
	)

	// Writers: insert unique triples through the supervisor; record a
	// subject as acked only when Mutate returned nil.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				subj := fmt.Sprintf("x:w%d_%d", w, i)
				err := insert(sv, "chaos", subj, "x:p", fmt.Sprintf("x:o%d", i))
				if err == nil {
					acked.Store("http://x#"+strings.TrimPrefix(subj, "x:"), true)
					ackedN.Add(1)
					continue
				}
				// Rejections must carry a typed reason, never panic or
				// silently half-apply. Brief pause before retrying.
				if !errors.Is(err, ErrDegraded) && !errors.Is(err, core.ErrDurability) {
					readErr.CompareAndSwap(nil, fmt.Sprintf("writer %d: untyped rejection: %v", w, err))
					return
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}

	// Readers: full-model scans must succeed in every health state, and
	// every row must resolve to a well-formed triple in the chaos model.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := sv.Find(context.Background(), "chaos", core.Pattern{})
				if err != nil {
					readErr.CompareAndSwap(nil, fmt.Sprintf("reader %d: Find failed: %v", r, err))
					return
				}
				for _, row := range rows {
					tr, err := row.GetTriple()
					if err != nil {
						readErr.CompareAndSwap(nil, fmt.Sprintf("reader %d: corrupt row: %v", r, err))
						return
					}
					if !strings.HasPrefix(tr.Subject.Value, "http://x#") || tr.Property.Value == "" || tr.Object.Value == "" {
						readErr.CompareAndSwap(nil, fmt.Sprintf("reader %d: malformed triple %v", r, tr))
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(r)
	}

	// Chaos: while the store is healthy, periodically trip the current
	// WAL file so in-flight appends or syncs fail.
	wg.Add(1)
	faults := 0
	go func() {
		defer wg.Done()
		tick := time.NewTicker(40 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if sv.State() != Healthy {
				continue
			}
			if fl := fo.current(); fl != nil {
				fl.FailWrites(1 + faults%3)
				faults++
			}
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if msg := readErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if faults == 0 {
		t.Fatal("chaos goroutine never injected a fault")
	}
	t.Logf("chaos: %d faults injected, %d commits acknowledged, %d recoveries",
		faults, ackedN.Load(), sv.Health().Recoveries)

	// The full health cycle was exercised.
	for _, edge := range [][2]State{{Healthy, Degraded}, {Degraded, Recovering}, {Recovering, Healthy}} {
		if !rec.hasEdge(edge[0], edge[1]) {
			t.Fatalf("transition %v→%v never observed; transitions: %+v", edge[0], edge[1], rec.transitions())
		}
	}
	if ackedN.Load() == 0 {
		t.Fatal("no commit was ever acknowledged")
	}

	// Settle: let the final recovery land, then make everything durable
	// and shut down.
	waitState(t, sv, Healthy, 5*time.Second)
	if err := sv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sv.Close(); err != nil {
		t.Fatal(err)
	}

	// Post-mortem: recover from the on-disk image alone. Every
	// acknowledged commit must be present and invariants must hold.
	st, log, _, err := core.RecoverFiles(filepath.Join(dir, "store.snap"), filepath.Join(dir, "store.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if errs := st.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("recovered store violates invariants: %v", errs[0])
	}
	rows, err := st.Find("chaos", core.Pattern{})
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[string]bool, len(rows))
	for _, row := range rows {
		subj, err := row.GetSubject()
		if err != nil {
			t.Fatalf("recovered row unreadable: %v", err)
		}
		present[subj] = true
	}
	lost := 0
	acked.Range(func(k, _ interface{}) bool {
		if !present[k.(string)] {
			lost++
			if lost <= 5 {
				t.Errorf("acknowledged commit lost after recovery: %s", k)
			}
		}
		return true
	})
	if lost > 0 {
		t.Fatalf("%d acknowledged commit(s) lost (of %d)", lost, ackedN.Load())
	}
}

package jena

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdfterm"
)

func st(s, p, o string) Statement {
	var obj rdfterm.Term
	if strings.HasPrefix(o, "lit:") {
		obj = rdfterm.NewLiteral(o[4:])
	} else {
		obj = rdfterm.NewURI(o)
	}
	return Statement{
		Subject:   rdfterm.NewURI(s),
		Predicate: rdfterm.NewURI(p),
		Object:    obj,
	}
}

func TestEncodeDecodeTerm(t *testing.T) {
	terms := []rdfterm.Term{
		rdfterm.NewURI("http://a"),
		rdfterm.NewBlank("b1"),
		rdfterm.NewLiteral("plain"),
		rdfterm.NewLiteral("with :: colons"),
		rdfterm.NewLangLiteral("hi", "en"),
		rdfterm.NewTypedLiteral("5", rdfterm.XSDInt),
	}
	for _, in := range terms {
		out, err := decodeTerm(encodeTerm(in))
		if err != nil || !out.Equal(in) {
			t.Errorf("round trip %v -> %v (%v)", in, out, err)
		}
	}
	for _, bad := range []string{"", "Xv::x", "Lv::only-two::parts"} {
		if _, err := decodeTerm(bad); err == nil {
			t.Errorf("decodeTerm(%q) accepted", bad)
		}
	}
}

// Property: encode is injective over distinct terms.
func TestQuickEncodeInjective(t *testing.T) {
	f := func(a, b string, langA bool) bool {
		ta := rdfterm.NewLiteral(a)
		tb := rdfterm.NewLiteral(b)
		if langA {
			ta = rdfterm.NewLangLiteral(a, "en")
		}
		if ta.Equal(tb) {
			return encodeTerm(ta) == encodeTerm(tb)
		}
		return encodeTerm(ta) != encodeTerm(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJena2AddFind(t *testing.T) {
	j := NewJena2Store()
	if err := j.CreateModel("m"); err != nil {
		t.Fatal(err)
	}
	if err := j.CreateModel("m"); err == nil {
		t.Fatal("duplicate model accepted")
	}
	stmts := []Statement{
		st("http://s1", "http://p1", "http://o1"),
		st("http://s1", "http://p2", "lit:value"),
		st("http://s2", "http://p2", "http://o1"),
	}
	for _, s := range stmts {
		if err := j.Add("m", s); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := j.Len("m"); n != 3 {
		t.Fatalf("Len = %d", n)
	}
	sub := rdfterm.NewURI("http://s1")
	got, err := j.Find("m", &sub, nil, nil)
	if err != nil || len(got) != 2 {
		t.Fatalf("Find(s1) = %d, %v", len(got), err)
	}
	pred := rdfterm.NewURI("http://p2")
	got, _ = j.Find("m", nil, &pred, nil)
	if len(got) != 2 {
		t.Fatalf("Find(p2) = %d", len(got))
	}
	obj := rdfterm.NewLiteral("value")
	got, _ = j.Find("m", nil, nil, &obj)
	if len(got) != 1 {
		t.Fatalf("Find(obj) = %d", len(got))
	}
	got, _ = j.Find("m", nil, nil, nil)
	if len(got) != 3 {
		t.Fatalf("Find(all) = %d", len(got))
	}
	ok, _ := j.Contains("m", stmts[0])
	if !ok {
		t.Fatal("Contains false for stored statement")
	}
	ok, _ = j.Contains("m", st("http://s9", "http://p1", "http://o1"))
	if ok {
		t.Fatal("Contains true for absent statement")
	}
	if _, err := j.Find("ghost", nil, nil, nil); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := j.Add("m", Statement{Subject: sub, Predicate: rdfterm.NewLiteral("x"), Object: sub}); err == nil {
		t.Fatal("literal predicate accepted")
	}
}

func TestJena2Reification(t *testing.T) {
	j := NewJena2Store()
	j.CreateModel("m")
	base := st("http://s", "http://p", "http://o")
	j.Add("m", base)
	ok, _ := j.IsReified("m", base)
	if ok {
		t.Fatal("IsReified before Reify")
	}
	uri1, err := j.Reify("m", base)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ = j.IsReified("m", base)
	if !ok {
		t.Fatal("IsReified false after Reify")
	}
	// Idempotent: same statement yields the same URI, one row.
	uri2, _ := j.Reify("m", base)
	if uri1 != uri2 {
		t.Fatalf("re-reify changed URI: %q vs %q", uri1, uri2)
	}
	if n, _ := j.ReifiedCount("m"); n != 1 {
		t.Fatalf("ReifiedCount = %d", n)
	}
	// Property-class row is one row per reification (Jena2's optimized
	// scheme), not four.
	other := st("http://s2", "http://p", "http://o")
	j.Add("m", other)
	j.Reify("m", other)
	if n, _ := j.ReifiedCount("m"); n != 2 {
		t.Fatalf("ReifiedCount = %d", n)
	}
}

func TestJena2PropertyTable(t *testing.T) {
	j := NewJena2Store()
	j.CreateModel("m")
	dcTitle := "http://purl.org/dc/elements/1.1/title"
	if err := j.CreatePropertyTable("m", dcTitle); err != nil {
		t.Fatal(err)
	}
	if err := j.CreatePropertyTable("m", dcTitle); err == nil {
		t.Fatal("duplicate property table accepted")
	}
	j.Add("m", st("http://doc1", dcTitle, "lit:Title One"))
	j.Add("m", st("http://doc1", "http://other", "lit:x"))
	j.Add("m", st("http://doc2", dcTitle, "lit:Title Two"))

	// Finds see property-table rows.
	sub := rdfterm.NewURI("http://doc1")
	got, err := j.Find("m", &sub, nil, nil)
	if err != nil || len(got) != 2 {
		t.Fatalf("Find(doc1) = %d, %v", len(got), err)
	}
	pred := rdfterm.NewURI(dcTitle)
	got, _ = j.Find("m", nil, &pred, nil)
	if len(got) != 2 {
		t.Fatalf("Find(dc:title) = %d", len(got))
	}
	for _, s := range got {
		if s.Predicate.Value != dcTitle {
			t.Errorf("wrong predicate %v", s.Predicate)
		}
	}
	obj := rdfterm.NewLiteral("Title Two")
	got, _ = j.Find("m", nil, nil, &obj)
	if len(got) != 1 || got[0].Subject.Value != "http://doc2" {
		t.Fatalf("Find(obj) = %v", got)
	}
	if n, _ := j.Len("m"); n != 3 {
		t.Fatalf("Len with property table = %d", n)
	}
}

func TestJena1AddFind(t *testing.T) {
	j := NewJena1Store()
	stmts := []Statement{
		st("http://s1", "http://p1", "http://o1"),
		st("http://s1", "http://p2", "lit:v"),
		st("http://s2", "http://p2", "lit:v"),
	}
	for _, s := range stmts {
		if err := j.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d", j.Len())
	}
	// Normalization: "lit:v" stored once, URIs s1/p1/p2/o1/s2 stored once.
	res, lits := j.ValueCounts()
	if res != 5 || lits != 1 {
		t.Fatalf("ValueCounts = (%d,%d), want (5,1)", res, lits)
	}
	sub := rdfterm.NewURI("http://s1")
	got, err := j.Find(&sub, nil, nil)
	if err != nil || len(got) != 2 {
		t.Fatalf("Find(s1) = %d, %v", len(got), err)
	}
	// Full statement lookup.
	got, _ = j.Find(&stmts[1].Subject, &stmts[1].Predicate, &stmts[1].Object)
	if len(got) != 1 || !got[0].Object.Equal(rdfterm.NewLiteral("v")) {
		t.Fatalf("exact find = %v", got)
	}
	// Absent value short-circuits.
	ghost := rdfterm.NewURI("http://ghost")
	got, _ = j.Find(&ghost, nil, nil)
	if len(got) != 0 {
		t.Fatalf("ghost find = %v", got)
	}
	obj := rdfterm.NewLiteral("v")
	got, _ = j.Find(nil, nil, &obj)
	if len(got) != 2 {
		t.Fatalf("Find(obj lit) = %d", len(got))
	}
	// A URI with the same text as a literal does not collide.
	uriObj := rdfterm.NewURI("v")
	got, _ = j.Find(nil, nil, &uriObj)
	if len(got) != 0 {
		t.Fatalf("URI/literal collision: %v", got)
	}
}

// TestJena1Jena2Agree cross-checks both baselines return the same result
// sets for the same data.
func TestJena1Jena2Agree(t *testing.T) {
	j1 := NewJena1Store()
	j2 := NewJena2Store()
	j2.CreateModel("m")
	stmts := []Statement{
		st("http://a", "http://p", "http://b"),
		st("http://a", "http://q", "lit:1"),
		st("http://b", "http://p", "http://c"),
		st("http://c", "http://p", "lit:1"),
	}
	for _, s := range stmts {
		if err := j1.Add(s); err != nil {
			t.Fatal(err)
		}
		if err := j2.Add("m", s); err != nil {
			t.Fatal(err)
		}
	}
	queries := []struct{ sub, pred, obj *rdfterm.Term }{
		{sub: termPtr(rdfterm.NewURI("http://a"))},
		{pred: termPtr(rdfterm.NewURI("http://p"))},
		{obj: termPtr(rdfterm.NewLiteral("1"))},
		{},
	}
	for qi, q := range queries {
		r1, err := j1.Find(q.sub, q.pred, q.obj)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := j2.Find("m", q.sub, q.pred, q.obj)
		if err != nil {
			t.Fatal(err)
		}
		if canon(r1) != canon(r2) {
			t.Errorf("query %d: jena1 %v != jena2 %v", qi, r1, r2)
		}
	}
}

func termPtr(t rdfterm.Term) *rdfterm.Term { return &t }

func canon(sts []Statement) string {
	var parts []string
	for _, s := range sts {
		parts = append(parts, encodeTerm(s.Subject)+"|"+encodeTerm(s.Predicate)+"|"+encodeTerm(s.Object))
	}
	strSort(parts)
	return strings.Join(parts, ";")
}

func strSort(s []string) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}

func TestQuadReifier(t *testing.T) {
	j := NewJena2Store()
	j.CreateModel("m")
	q := NewQuadReifier(j, "m")
	base := st("http://s", "http://p", "http://o")
	j.Add("m", base)
	before, _ := j.Len("m")

	ok, _ := q.IsReified(base)
	if ok {
		t.Fatal("IsReified before Reify")
	}
	r, err := q.Reify(base)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := j.Len("m")
	if after-before != 4 {
		t.Fatalf("quad reification stored %d rows, want 4", after-before)
	}
	if r.Kind != rdfterm.URI {
		t.Fatalf("reification resource = %v", r)
	}
	ok, err = q.IsReified(base)
	if err != nil || !ok {
		t.Fatalf("IsReified = %v, %v", ok, err)
	}
	// A statement sharing only the subject is not reified.
	ok, _ = q.IsReified(st("http://s", "http://p", "http://other"))
	if ok {
		t.Fatal("partial quad matched")
	}
	ok, _ = q.IsReified(st("http://s", "http://p2", "http://o"))
	if ok {
		t.Fatal("partial quad matched on predicate")
	}
	if q.StoredTriples() != 4 {
		t.Fatalf("StoredTriples = %d", q.StoredTriples())
	}
}

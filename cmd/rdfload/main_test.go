package main

import (
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wal"
)

const sample = `
<http://gov/files> <http://gov/terrorSuspect> <http://id/JohnDoe> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://gov/files> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate> <http://gov/terrorSuspect> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#object> <http://id/JohnDoe> .
<http://gov/MI5> <http://gov/source> _:r1 .
`

func TestRunLoadsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.nt")
	if err := os.WriteFile(path, []byte(sample), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-model", "test", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"read:                 6 triples",
		"quads folded:         1",
		"assertions rewritten: 1",
		"reified statements:   1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStdin(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "read:                 1 triples") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "explode"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent/file.nt"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunParseError(t *testing.T) {
	if err := run(nil, strings.NewReader("garbage\n"), &strings.Builder{}); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestRunSaveSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "out.snap")
	var out strings.Builder
	err := run([]string{"-model", "m", "-save", snap},
		strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snapshot written") {
		t.Errorf("output:\n%s", out.String())
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st.NumTriples("m"); n != 1 {
		t.Fatalf("snapshot triples = %d", n)
	}
}

const xmlSample = `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
        xmlns:gov="http://gov#">
  <rdf:Description rdf:about="http://gov/files">
    <gov:terrorSuspect rdf:ID="claim1" rdf:resource="http://id/JohnDoe"/>
  </rdf:Description>
</rdf:RDF>`

func TestRunXMLFormat(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-format", "xml", "-base", "http://base", "-model", "m"},
		strings.NewReader(xmlSample), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// The rdf:ID reification quad (4 triples) plus the base statement are
	// read; the quad folds to one DBUri row.
	for _, want := range []string{
		"read:                 5 triples",
		"quads folded:         1",
		"stored rows:          2",
		"reified statements:   1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunXMLBadFormatAndParse(t *testing.T) {
	if err := run([]string{"-format", "weird"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-format", "xml"}, strings.NewReader("<unclosed>"), &strings.Builder{}); err == nil {
		t.Fatal("bad XML accepted")
	}
}

func TestRunWALDurableLoad(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")

	// First load writes through the WAL.
	var out strings.Builder
	err := run([]string{"-model", "m", "-wal", walPath},
		strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}

	// Second invocation replays the log and keeps loading into the same
	// model — the resumed-load path.
	out.Reset()
	err = run([]string{"-model", "m", "-wal", walPath},
		strings.NewReader("<http://c> <http://p> <http://d> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed") {
		t.Errorf("second run did not report WAL replay:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stored rows:          2") {
		t.Errorf("second run should see both triples:\n%s", out.String())
	}

	// Recover directly from the log and check both loads survived.
	res, err := wal.ScanFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	st := core.New()
	if err := st.Replay(res.Records); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.NumTriples("m"); n != 2 {
		t.Fatalf("recovered store has %d triples, want 2", n)
	}
}

func TestRunWALCheckpointOnSave(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")
	snap := filepath.Join(dir, "store.snap")

	var out strings.Builder
	err := run([]string{"-model", "m", "-wal", walPath, "-save", snap},
		strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "checkpointed") {
		t.Errorf("no checkpoint message:\n%s", out.String())
	}
	// After the checkpoint the log is empty; the snapshot holds the data.
	res, err := wal.ScanFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("WAL still has %d records after checkpoint", len(res.Records))
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st.NumTriples("m"); n != 1 {
		t.Fatalf("snapshot has %d triples, want 1", n)
	}
}

func TestRunWALRejectsNonWAL(t *testing.T) {
	dir := t.TempDir()
	notWAL := filepath.Join(dir, "bogus.wal")
	if err := os.WriteFile(notWAL, []byte("this is not a log at all"), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-model", "m", "-wal", notWAL},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "not a WAL") {
		t.Fatalf("err = %v, want not-a-WAL error", err)
	}
}

func TestRunWALContinueAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")
	snap := filepath.Join(dir, "store.snap")

	// Load + checkpoint, then keep loading with the snapshot passed back
	// in: the post-checkpoint log must apply cleanly on top of it.
	var out strings.Builder
	err := run([]string{"-model", "m", "-wal", walPath, "-save", snap},
		strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-model", "m", "-snapshot", snap, "-wal", walPath},
		strings.NewReader("<http://c> <http://p> <http://d> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loaded checkpoint snapshot") {
		t.Errorf("no checkpoint message:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stored rows:          2") {
		t.Errorf("second load should see both triples:\n%s", out.String())
	}

	// Recovery = snapshot + post-checkpoint records.
	sf, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	lf, err := os.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	st, info, err := core.Recover(sf, lf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated {
		t.Fatalf("unexpected torn tail: %v", info.TailErr)
	}
	if n, _ := st.NumTriples("m"); n != 2 {
		t.Fatalf("recovered store has %d triples, want 2", n)
	}
}

func TestRunFastPathFlagsMatchSerial(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.nt")
	if err := os.WriteFile(path, []byte(sample), 0o600); err != nil {
		t.Fatal(err)
	}
	var serial, fast strings.Builder
	if err := run([]string{"-model", "test", "-batch", "1", "-workers", "1", path},
		strings.NewReader(""), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-model", "test", "-batch", "2", "-workers", "4", path},
		strings.NewReader(""), &fast); err != nil {
		t.Fatal(err)
	}
	if serial.String() != fast.String() {
		t.Fatalf("fast-path output differs from serial:\n--- serial ---\n%s--- fast ---\n%s",
			serial.String(), fast.String())
	}
}

func TestRunWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")

	// Group commit (-sync-every 8) buffers commits, but the final Flush
	// before exit makes the whole load durable.
	var out strings.Builder
	doc := "<http://a> <http://p> <http://b> .\n<http://c> <http://p> <http://d> .\n<http://e> <http://p> <http://f> .\n"
	err := run([]string{"-model", "m", "-wal", walPath, "-sync-every", "8", "-batch", "2"},
		strings.NewReader(doc), &out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wal.ScanFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	st := core.New()
	if err := st.Replay(res.Records); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.NumTriples("m"); n != 3 {
		t.Fatalf("recovered store has %d triples, want 3", n)
	}

	// Checkpoint under group commit: the buffered tail must be flushed
	// before the snapshot is written and the log truncated.
	snap := filepath.Join(dir, "store.snap")
	out.Reset()
	err = run([]string{"-model", "m", "-wal", walPath, "-sync-every", "4", "-save", snap},
		strings.NewReader("<http://g> <http://p> <http://h> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	res, err = wal.ScanFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("WAL still has %d records after checkpoint", len(res.Records))
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err = core.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st.NumTriples("m"); n != 4 {
		t.Fatalf("snapshot has %d triples, want 4", n)
	}
}

func TestRunRejectsBadFastPathFlags(t *testing.T) {
	if err := run([]string{"-batch", "0"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("-batch 0 accepted")
	}
	if err := run([]string{"-sync-every", "0"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Fatal("-sync-every 0 accepted")
	}
}

// TestRunAdminEndpoint drives the full admin path: a durable load with
// -admin serving the registry, scraped over HTTP while the endpoint
// lingers, with the exposition strictly parsed and checked for the
// store and WAL series the load must have produced.
func TestRunAdminEndpoint(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "store.wal")
	// Reserve a port, free it, and hand it to -admin. (A small window
	// exists where another process could grab it; tests tolerate that
	// by failing loudly rather than flaking silently.)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-model", "m", "-wal", walPath, "-sync-every", "4",
			"-admin", addr, "-admin-linger", "5s",
		}, strings.NewReader("<http://a> <http://p> <http://b> .\n"), &strings.Builder{})
	}()

	// Poll /metrics until the lingering endpoint answers.
	var exp *obs.Exposition
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			exp, err = obs.ParseExposition(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("/metrics unparseable: %v", err)
			}
			if exp.HasPrefix("wal_") {
				break // load finished; WAL counters are final
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("admin endpoint never served WAL metrics (err %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, prefix := range []string{"core_", "wal_"} {
		if !exp.HasPrefix(prefix) {
			t.Errorf("exposition missing %s* series", prefix)
		}
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/healthz = %s, want 200", resp.Status)
	}
	// The command is still lingering; don't wait the full 5s here.
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	default:
	}
}

func TestRunAdminBadAddr(t *testing.T) {
	err := run([]string{"-admin", "definitely-not-an-address:xyz"},
		strings.NewReader(""), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "-admin") {
		t.Fatalf("bad -admin addr error = %v", err)
	}
}

// TestRunWALDirDurableLoad mirrors TestRunWALDurableLoad over the
// segmented WAL: load, resume (replaying segments), checkpoint with
// -save (snapshot watermark + retention), resume again from snapshot +
// surviving segments.
func TestRunWALDirDurableLoad(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal.d")
	snap := filepath.Join(dir, "store.snap")

	// Tiny segments so even this little load rotates.
	var out strings.Builder
	err := run([]string{"-model", "m", "-wal-dir", walDir, "-wal-segment-bytes", "64"},
		strings.NewReader("<http://a> <http://p> <http://b> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v (err %v)", segs, err)
	}

	// Resume: replay the segments, keep loading, checkpoint via -save.
	out.Reset()
	err = run([]string{"-model", "m", "-wal-dir", walDir, "-wal-segment-bytes", "64", "-save", snap},
		strings.NewReader("<http://c> <http://p> <http://d> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed") {
		t.Errorf("second run did not report segment replay:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stored rows:          2") {
		t.Errorf("second run should see both triples:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stale segments retired") {
		t.Errorf("-save did not checkpoint the directory:\n%s", out.String())
	}

	// Continue from snapshot + retained segments; everything survives.
	out.Reset()
	err = run([]string{"-model", "m", "-wal-dir", walDir, "-snapshot", snap, "-wal-segment-bytes", "64"},
		strings.NewReader("<http://e> <http://p> <http://f> .\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "stored rows:          3") {
		t.Errorf("third run should see all three triples:\n%s", out.String())
	}

	// Recover from disk alone.
	st, d, _, err := core.RecoverDir(snap, walDir, wal.DirOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if n, _ := st.NumTriples("m"); n != 3 {
		t.Fatalf("recovered store has %d triples, want 3", n)
	}
}

// TestRunWALDirExclusiveFlags pins the flag validation.
func TestRunWALDirExclusiveFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-wal", "a.wal", "-wal-dir", "b.d"}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
	err = run([]string{"-wal-hard-bytes", "1024"}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "require -wal-dir") {
		t.Fatalf("err = %v, want require--wal-dir error", err)
	}
}

package wal

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// groupRecords is a small mixed record workload for group-commit tests.
func groupRecords() []Record {
	return []Record{
		{Type: TypeCreateModel, ModelID: 7, Name: "m"},
		{Type: TypeInternValue, ValueID: 1068, Text: "http://a", ValueType: "UR"},
		{Type: TypeInternValue, ValueID: 1069, Text: "lit", ValueType: "PL", Language: "en"},
		{Type: TypeInsertLink, LinkID: 2051, ModelID: 7, StartID: 1068, PropID: 1069,
			EndID: 1068, CanonID: 1068, LinkType: "RDF_MEMBER", Cost: 1, Context: "D"},
		{Type: TypeUpdateLink, LinkID: 2051, Cost: 2, Context: "D"},
		{Type: TypeSeqAdvance, Seq: SeqBlank, SeqValue: 3},
		{Type: TypeDeleteLink, LinkID: 2051},
	}
}

// TestGroupLogSameImage: a GroupLog must produce byte-identical log
// images to a plain Log for the same record stream.
func TestGroupLogSameImage(t *testing.T) {
	recs := groupRecords()

	plain := &BufferFile{}
	l, err := NewLog(plain, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	grouped := &BufferFile{}
	gl, err := NewLog(grouped, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(gl, GroupOptions{SyncEvery: 3})
	for _, r := range recs {
		if err := g.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), grouped.Bytes()) {
		t.Fatalf("group image (%d bytes) differs from plain image (%d bytes)",
			grouped.Len(), plain.Len())
	}
	res, err := ScanBytes(grouped.Bytes())
	if err != nil || res.Truncated {
		t.Fatalf("scan: %v (truncated=%v)", err, res.Truncated)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(res.Records), len(recs))
	}
}

// TestGroupLogBuffersUntilThreshold: commits below SyncEvery stay in
// memory; the SyncEvery-th lands everything at once.
func TestGroupLogBuffersUntilThreshold(t *testing.T) {
	f := &BufferFile{}
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 3})
	header := f.Len()

	for i := 0; i < 2; i++ {
		if err := g.Append(Record{Type: TypeDeleteLink, LinkID: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != header {
		t.Fatalf("bytes written before threshold: %d", f.Len()-header)
	}
	if got := g.Buffered(); got != 2 {
		t.Fatalf("Buffered() = %d, want 2", got)
	}
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if f.Len() == header {
		t.Fatal("threshold commit wrote nothing")
	}
	res, err := ScanBytes(f.Bytes())
	if err != nil || res.Truncated || len(res.Records) != 3 {
		t.Fatalf("scan after group flush: %v records=%d truncated=%v", err, len(res.Records), res.Truncated)
	}
	if got := g.Buffered(); got != 0 {
		t.Fatalf("Buffered() after flush = %d, want 0", got)
	}
}

// TestGroupLogIntervalFlush: with an Interval, a lone commit becomes
// durable without reaching SyncEvery.
func TestGroupLogIntervalFlush(t *testing.T) {
	f := &BufferFile{}
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 1000, Interval: 5 * time.Millisecond})
	defer g.Close()
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.Buffered() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced the pending commit")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := ScanBytes(f.Bytes())
	if err != nil || len(res.Records) != 1 {
		t.Fatalf("scan after interval flush: %v records=%d", err, len(res.Records))
	}
}

// TestGroupLogLatchesFlushError: after a failed flush the in-memory
// store is ahead of the log; every later operation must keep failing.
func TestGroupLogLatchesFlushError(t *testing.T) {
	ff := &FaultFile{FailAt: int64(len(Magic)), Mode: FailStop}
	l, err := NewLog(ff, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 2})
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatalf("buffered commit should not touch the file: %v", err)
	}
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err == nil {
		t.Fatal("flush over a dead file succeeded")
	}
	if err := g.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("error not latched on Commit: %v", err)
	}
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 3}); !errors.Is(err, ErrInjected) {
		t.Fatalf("error not latched on Append: %v", err)
	}
	if err := g.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("error not latched on Flush: %v", err)
	}
}

// TestGroupLogCloseFlushes: Close must land buffered commits before
// closing the file.
func TestGroupLogCloseFlushes(t *testing.T) {
	f := &BufferFile{}
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 100, Interval: time.Hour})
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanBytes(f.Bytes())
	if err != nil || len(res.Records) != 1 {
		t.Fatalf("scan after Close: %v records=%d", err, len(res.Records))
	}
}

// TestGroupLogLatchRaces: the flush-error latch and Reopen are exercised
// under -race with concurrent appenders. Appenders hammer Append/Commit
// while the "supervisor" goroutine injects flush failures and Reopens
// onto fresh sinks, repeatedly. The invariants:
//
//   - no data race (the point of running under -race);
//   - an appender either succeeds or gets the latched error — never a
//     partial/torn state;
//   - after the final Reopen onto a healthy sink, appends succeed and
//     the sink's image is scannable.
func TestGroupLogLatchRaces(t *testing.T) {
	f := NewFlaky(nil)
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 4})

	const appenders = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := Record{Type: TypeDeleteLink, LinkID: int64(id*1_000_000 + i)}
				if err := g.Append(r); err != nil {
					continue // latched; wait for Reopen
				}
				g.Commit() // may latch; next iteration observes it
			}
		}(a)
	}

	// Supervisor side: fault, observe the latch, recover, repeat.
	for cycle := 0; cycle < 20; cycle++ {
		f.FailSyncs(1)
		// Drive commits until the latch trips (the appenders' commits may
		// trip it first; either way Err() goes non-nil).
		for i := 0; g.Err() == nil && i < 1000; i++ {
			g.Append(Record{Type: TypeDeleteLink, LinkID: int64(-cycle)})
			g.Commit()
		}
		if g.Err() == nil {
			t.Fatalf("cycle %d: latch never tripped", cycle)
		}
		// Checkpoint-equivalent: fresh sink, then unlatch.
		f = NewFlaky(nil)
		nl, err := NewLog(f, true)
		if err != nil {
			t.Fatal(err)
		}
		g.Reopen(nl)
	}
	close(stop)
	wg.Wait()

	// The final sink is healthy: appends flush and the image scans clean.
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 7}); err != nil {
		t.Fatalf("append after final reopen: %v", err)
	}
	if err := g.Flush(); err != nil {
		t.Fatalf("flush after final reopen: %v", err)
	}
	res, err := ScanBytes(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("healthy sink image torn: %v", res.TailErr)
	}

	// Idle-sink guard: the latch must reject both Append and Commit with
	// the same error instance semantics while tripped.
	f2 := NewFlaky(nil)
	l2, err := NewLog(f2, true)
	if err != nil {
		t.Fatal(err)
	}
	g2 := Group(l2, GroupOptions{SyncEvery: 1})
	f2.FailSyncs(1)
	g2.Append(Record{Type: TypeDeleteLink, LinkID: 1})
	if err := g2.Commit(); err == nil {
		t.Fatal("failing sync did not latch")
	}
	if aerr := g2.Append(Record{Type: TypeDeleteLink, LinkID: 2}); !errors.Is(aerr, g2.Err()) {
		t.Fatalf("Append error %v does not match latched %v", aerr, g2.Err())
	}
	g2.Close()
	g.Close()
}

// TestGroupLogReopenSinkSwapsToDir: ReopenSink rebinds a GroupLog from a
// single-file Log to a segmented Dir — the supervisor's upgrade path —
// and the post-swap records land in segments.
func TestGroupLogReopenSinkSwapsToDir(t *testing.T) {
	bf := &BufferFile{}
	l, err := NewLog(bf, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 2})
	g.Append(Record{Type: TypeDeleteLink, LinkID: 1})
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	d, _, err := OpenDir(dir, 0, DirOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	g.ReopenSink(d)
	for i := 10; i < 50; i++ {
		if err := g.Append(Record{Type: TypeDeleteLink, LinkID: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil { // closes the Dir
		t.Fatal(err)
	}
	_, res, err := OpenDir(dir, 0, DirOptions{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 40 {
		t.Fatalf("dir replayed %d records after sink swap, want 40", len(res.Records))
	}
	if res.Segments < 2 {
		t.Errorf("sink swap never rotated: %d segments", res.Segments)
	}
}

// Package badview violates the ReadView contract in every way viewcheck
// knows: reentrant locking calls, ReadTx escapes through globals,
// fields, channels, goroutines and returns, and snapshot scan loops that
// never poll cancellation.
package badview

import (
	"context"
	"sync"
)

// The store/view shape mirrors internal/core: a ReadView method whose
// closure receives a *ReadTx, locking entry points without the Locked
// suffix, and *Locked snapshot accessors.
type Store struct {
	mu sync.RWMutex
}

type ReadTx struct {
	s   *Store
	ctx context.Context
}

func (s *Store) ReadView(ctx context.Context, fn func(tx *ReadTx) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(&ReadTx{s: s, ctx: ctx})
}

func (s *Store) Insert(k string) error { s.mu.Lock(); defer s.mu.Unlock(); return nil }

func (s *Store) Find(k string) (int64, bool) { s.mu.RLock(); defer s.mu.RUnlock(); return 0, false }

func (tx *ReadTx) tickLocked() error { return tx.ctx.Err() }

func (tx *ReadTx) ModelIDLocked(name string) (int64, error) { return 0, nil }

func (tx *ReadTx) ContainsLinkLocked(mid, sid int64) bool { return false }

var leaked *ReadTx

type holder struct{ tx *ReadTx }

type txErr struct{ tx *ReadTx }

func (e *txErr) Error() string { return "boom" }

// reentrant calls locking entry points while the read lock is held.
func reentrant(ctx context.Context, s *Store) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		if _, ok := s.Find("x"); ok { // want `call to locking Store.Find inside a ReadView closure`
			return s.Insert("y") // want `call to locking Store.Insert inside a ReadView closure`
		}
		return nil
	})
}

// nested opens a view inside a view: ReadView is itself a locking entry
// point, and the RWMutex is not reentrant.
func nested(ctx context.Context, s *Store) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		return s.ReadView(ctx, func(inner *ReadTx) error { // want `call to locking Store.ReadView inside a ReadView closure`
			return nil
		})
	})
}

// escapes leaks the ReadTx through every door.
func escapes(ctx context.Context, s *Store, ch chan *ReadTx, h *holder) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		leaked = tx // want `ReadTx escapes the ReadView closure: assigned to "leaked"`
		h.tx = tx   // want `ReadTx escapes the ReadView closure: stored through h.tx`
		ch <- tx    // want `ReadTx escapes the ReadView closure: sent on a channel`
		go func() { // want `ReadTx escapes the ReadView closure: captured by a spawned goroutine`
			_ = tx.tickLocked()
		}()
		return nil
	})
}

var collected []*ReadTx

// appends stashes the ReadTx in an outer slice: append stores its
// arguments, unlike an ordinary synchronous call.
func appends(ctx context.Context, s *Store) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		collected = append(collected, tx) // want `ReadTx escapes the ReadView closure: assigned to "collected"`
		return nil
	})
}

// returnsTx smuggles the ReadTx out inside the returned error value.
func returnsTx(ctx context.Context, s *Store) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		return &txErr{tx: tx} // want `ReadTx escapes the ReadView closure: returned to the caller`
	})
}

// unpolledScan loops over snapshot probes without ever polling
// cancellation: a cancelled query would hold the read lock to the end.
func unpolledScan(ctx context.Context, s *Store, names []string) error {
	return s.ReadView(ctx, func(tx *ReadTx) error {
		for _, n := range names { // want `loop probes the snapshot via ReadTx.ModelIDLocked without polling cancellation`
			if _, err := tx.ModelIDLocked(n); err != nil {
				return err
			}
		}
		return nil
	})
}

// iterator shows the rule is package-wide: the ReadTx lives in a struct
// field and the unpolled loop sits in an ordinary method.
type iterator struct {
	tx  *ReadTx
	ids []int64
}

func (it *iterator) drain() int {
	n := 0
	for _, id := range it.ids { // want `loop probes the snapshot via ReadTx.ContainsLinkLocked without polling cancellation`
		if it.tx.ContainsLinkLocked(id, id) {
			n++
		}
	}
	return n
}

package inference

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdfterm"
)

func govAliases() []rdfterm.Alias {
	return []rdfterm.Alias{
		{Prefix: "gov", Namespace: "http://www.us.gov#"},
		{Prefix: "id", Namespace: "http://www.us.id#"},
	}
}

func aliasSet() *rdfterm.AliasSet {
	return rdfterm.Default().With(govAliases()...)
}

func icStore(t *testing.T) *core.Store {
	t.Helper()
	s := core.New()
	a := aliasSet()
	for _, m := range []string{"cia", "dhs", "fbi"} {
		if _, err := s.CreateRDFModel(m, m+"data", "triple"); err != nil {
			t.Fatal(err)
		}
	}
	ins := func(m, sub, p, o string) {
		t.Helper()
		if _, err := s.NewTripleS(m, sub, p, o, a); err != nil {
			t.Fatal(err)
		}
	}
	ins("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe")
	ins("cia", "gov:files", "gov:terrorSuspect", "id:JaneDoe")
	ins("dhs", "id:JimDoe", "gov:terrorAction", "bombing")
	ins("dhs", "gov:files", "gov:terrorSuspect", "id:JohnDoe")
	ins("fbi", "id:JohnDoe", "gov:enteredCountry", "June-20-2000")
	ins("fbi", "gov:files", "gov:terrorSuspect", "id:JohnDoe")
	return s
}

func TestCreateRulebaseAndRules(t *testing.T) {
	s := core.New()
	c := NewCatalog(s)
	rb, err := c.CreateRulebase("intel_rb")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Name() != "intel_rb" {
		t.Fatalf("Name = %q", rb.Name())
	}
	if _, err := c.CreateRulebase("intel_rb"); err == nil {
		t.Fatal("duplicate rulebase accepted")
	}
	if _, err := c.CreateRulebase(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.Rulebase(RDFSRulebaseName); err != nil {
		t.Fatal("built-in RDFS rulebase missing")
	}
	if _, err := c.Rulebase("nope"); !errors.Is(err, ErrNoSuchRulebase) {
		t.Fatalf("missing rulebase: %v", err)
	}
	err = c.AddRule("intel_rb", Rule{
		Name:       "intel_rule",
		Antecedent: `(?x gov:terrorAction "bombing")`,
		Consequent: `(gov:files gov:terrorSuspect ?x)`,
		Aliases:    govAliases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rb.Rules()); got != 1 {
		t.Fatalf("rules = %d", got)
	}
	// Bad rules rejected eagerly.
	bad := []Rule{
		{Name: "", Antecedent: "(?x ?p ?y)", Consequent: "(?x ?p ?y)"},
		{Name: "r", Antecedent: "garbage", Consequent: "(?x ?p ?y)"},
		{Name: "r", Antecedent: "(?x ?p ?y)", Consequent: "garbage"},
		{Name: "r", Antecedent: "(?x ?p ?y)", Consequent: "(?x ?p ?y) (?x ?p ?y)"},
		{Name: "r", Antecedent: "(?x ?p ?y)", Consequent: "(?x ?p ?y)", Filter: "?x >< 2"},
	}
	for i, r := range bad {
		if err := c.AddRule("intel_rb", r); err == nil {
			t.Errorf("bad rule %d accepted", i)
		}
	}
	if err := c.AddRule("missing_rb", Rule{Name: "r", Antecedent: "(?x ?p ?y)", Consequent: "(?x ?p ?y)"}); err == nil {
		t.Error("rule on missing rulebase accepted")
	}
}

// TestFigure8Inference reproduces the paper's Figure 8 end-to-end: the
// intel_rule makes JimDoe a suspect; the query over all three models plus
// the rules index returns JohnDoe, JaneDoe, and JimDoe.
func TestFigure8Inference(t *testing.T) {
	s := icStore(t)
	c := NewCatalog(s)
	if _, err := c.CreateRulebase("intel_rb"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRule("intel_rb", Rule{
		Name:       "intel_rule",
		Antecedent: `(?x gov:terrorAction "bombing")`,
		Consequent: `(gov:files gov:terrorSuspect ?x)`,
		Aliases:    govAliases(),
	}); err != nil {
		t.Fatal(err)
	}
	ix, err := c.CreateRulesIndex("rdfs_rix_intel",
		[]string{"cia", "dhs", "fbi"},
		[]string{RDFSRulebaseName, "intel_rb"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.InferredCount() == 0 {
		t.Fatal("no triples inferred")
	}
	rs, err := match.Match(s, `(gov:files gov:terrorSuspect ?name)`, match.Options{
		Models:    []string{"cia", "dhs", "fbi"},
		Rulebases: []string{RDFSRulebaseName, "intel_rb"},
		Resolver:  c,
		Aliases:   aliasSet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for i := 0; i < rs.Len(); i++ {
		v, _ := rs.Get(i, "name")
		names[v.Value] = true
	}
	for _, want := range []string{
		"http://www.us.id#JohnDoe",
		"http://www.us.id#JaneDoe",
		"http://www.us.id#JimDoe", // inferred!
	} {
		if !names[want] {
			t.Errorf("missing %s in %v", want, names)
		}
	}
	// JimDoe's suspect triple is inferred, not asserted in any base model.
	a := aliasSet()
	for _, m := range []string{"cia", "dhs", "fbi"} {
		if _, ok, _ := s.IsTriple(m, "gov:files", "gov:terrorSuspect", "id:JimDoe", a); ok {
			t.Errorf("inferred triple leaked into base model %s", m)
		}
	}
	if _, ok, _ := s.IsTriple(ix.IndexModel(), "gov:files", "gov:terrorSuspect", "id:JimDoe", a); !ok {
		t.Error("inferred triple missing from index model")
	}
}

func TestRulesIndexScopeResolution(t *testing.T) {
	s := icStore(t)
	c := NewCatalog(s)
	if _, err := c.CreateRulesIndex("ix1", []string{"cia"}, []string{RDFSRulebaseName}); err != nil {
		t.Fatal(err)
	}
	// Exact scope resolves regardless of argument order.
	if _, err := c.ResolveIndex([]string{"cia"}, []string{"RDFS"}); err != nil {
		t.Fatal(err)
	}
	// Different scope does not resolve.
	if _, err := c.ResolveIndex([]string{"cia", "dhs"}, []string{"RDFS"}); !errors.Is(err, ErrNoRulesIndex) {
		t.Fatalf("wrong scope resolved: %v", err)
	}
	// Duplicate index name rejected; missing rulebase rejected.
	if _, err := c.CreateRulesIndex("ix1", []string{"cia"}, nil); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := c.CreateRulesIndex("ix2", []string{"cia"}, []string{"ghost"}); !errors.Is(err, ErrNoSuchRulebase) {
		t.Errorf("ghost rulebase: %v", err)
	}
	if _, err := c.CreateRulesIndex("ix3", nil, nil); err == nil {
		t.Error("no models accepted")
	}
	if _, err := c.CreateRulesIndex("", []string{"cia"}, nil); err == nil {
		t.Error("empty name accepted")
	}
}

func TestRDFSSubClassReasoning(t *testing.T) {
	s := core.New()
	s.CreateRDFModel("onto", "", "")
	ex := []rdfterm.Alias{{Prefix: "ex", Namespace: "http://ex#"}}
	a := rdfterm.Default().With(ex...)
	ins := func(sub, p, o string) {
		t.Helper()
		if _, err := s.NewTripleS("onto", sub, p, o, a); err != nil {
			t.Fatal(err)
		}
	}
	// Class hierarchy: Dog ⊂ Mammal ⊂ Animal; rex is a Dog.
	ins("ex:Dog", "rdfs:subClassOf", "ex:Mammal")
	ins("ex:Mammal", "rdfs:subClassOf", "ex:Animal")
	ins("ex:rex", "rdf:type", "ex:Dog")
	// Property hierarchy: hasPet ⊂ likes; domain/range.
	ins("ex:hasPet", "rdfs:subPropertyOf", "ex:likes")
	ins("ex:hasPet", "rdfs:domain", "ex:Person")
	ins("ex:hasPet", "rdfs:range", "ex:Animal")
	ins("ex:alice", "ex:hasPet", "ex:rex")

	c := NewCatalog(s)
	if _, err := c.CreateRulesIndex("onto_ix", []string{"onto"}, []string{RDFSRulebaseName}); err != nil {
		t.Fatal(err)
	}
	q := func(query string) int {
		t.Helper()
		rs, err := match.Match(s, query, match.Options{
			Models:    []string{"onto"},
			Rulebases: []string{RDFSRulebaseName},
			Resolver:  c,
			Aliases:   a,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs.Len()
	}
	// rdfs9+rdfs11: rex is a Mammal and an Animal.
	if n := q(`(ex:rex rdf:type ex:Mammal)`); n != 1 {
		t.Errorf("rex Mammal rows = %d", n)
	}
	if n := q(`(ex:rex rdf:type ex:Animal)`); n != 1 {
		t.Errorf("rex Animal rows = %d", n)
	}
	// rdfs11: Dog ⊂ Animal.
	if n := q(`(ex:Dog rdfs:subClassOf ex:Animal)`); n != 1 {
		t.Errorf("Dog subClassOf Animal rows = %d", n)
	}
	// rdfs7: alice likes rex.
	if n := q(`(ex:alice ex:likes ex:rex)`); n != 1 {
		t.Errorf("alice likes rex rows = %d", n)
	}
	// rdfs2: alice is a Person (domain).
	if n := q(`(ex:alice rdf:type ex:Person)`); n != 1 {
		t.Errorf("alice Person rows = %d", n)
	}
	// rdfs3: rex is an Animal (range) — already covered; check via range.
	if n := q(`(ex:rex rdf:type ex:Animal)`); n != 1 {
		t.Errorf("rex Animal (range) rows = %d", n)
	}
	// rdf1: hasPet is a Property.
	if n := q(`(ex:hasPet rdf:type rdf:Property)`); n != 1 {
		t.Errorf("hasPet Property rows = %d", n)
	}
	// Non-entailed facts stay absent.
	if n := q(`(ex:rex rdf:type ex:Person)`); n != 0 {
		t.Errorf("rex Person rows = %d, want 0", n)
	}
}

func TestRuleWithFilter(t *testing.T) {
	s := core.New()
	s.CreateRDFModel("m", "", "")
	ex := []rdfterm.Alias{{Prefix: "ex", Namespace: "http://ex#"}}
	a := rdfterm.Default().With(ex...)
	s.NewTripleS("m", "ex:a", "ex:score", `"90"^^xsd:int`, a)
	s.NewTripleS("m", "ex:b", "ex:score", `"40"^^xsd:int`, a)
	c := NewCatalog(s)
	c.CreateRulebase("grade")
	if err := c.AddRule("grade", Rule{
		Name:       "pass",
		Antecedent: `(?x ex:score ?s)`,
		Filter:     `?s >= 50`,
		Consequent: `(?x ex:status ex:passed)`,
		Aliases:    ex,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRulesIndex("gix", []string{"m"}, []string{"grade"}); err != nil {
		t.Fatal(err)
	}
	rs, err := match.Match(s, `(?x ex:status ex:passed)`, match.Options{
		Models: []string{"m"}, Rulebases: []string{"grade"}, Resolver: c, Aliases: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("passed rows = %d, want 1", rs.Len())
	}
	x, _ := rs.Get(0, "x")
	if x.Value != "http://ex#a" {
		t.Errorf("?x = %v", x)
	}
}

func TestTransitiveClosureConvergence(t *testing.T) {
	// A chain a1 ⊂ a2 ⊂ … ⊂ a12 must fully close under rdfs11.
	s := core.New()
	s.CreateRDFModel("chain", "", "")
	a := rdfterm.Default()
	for i := 0; i < 12; i++ {
		sub := "http://c#a" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		obj := "http://c#a" + string(rune('0'+(i+1)/10)) + string(rune('0'+(i+1)%10))
		if _, err := s.NewTripleS("chain", sub, "rdfs:subClassOf", obj, a); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCatalog(s)
	if _, err := c.CreateRulesIndex("cix", []string{"chain"}, []string{RDFSRulebaseName}); err != nil {
		t.Fatal(err)
	}
	rs, err := match.Match(s, `(<http://c#a00> rdfs:subClassOf <http://c#a12>)`, match.Options{
		Models: []string{"chain"}, Rulebases: []string{RDFSRulebaseName}, Resolver: c, Aliases: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("closure rows = %d, want 1", rs.Len())
	}
}

func TestDropAndRebuildRulesIndex(t *testing.T) {
	s := icStore(t)
	c := NewCatalog(s)
	c.CreateRulebase("intel_rb")
	c.AddRule("intel_rb", Rule{
		Name:       "intel_rule",
		Antecedent: `(?x gov:terrorAction "bombing")`,
		Consequent: `(gov:files gov:terrorSuspect ?x)`,
		Aliases:    govAliases(),
	})
	ix, err := c.CreateRulesIndex("rix", []string{"dhs"}, []string{"intel_rb"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.InferredCount() != 1 {
		t.Fatalf("inferred = %d, want 1 (JimDoe)", ix.InferredCount())
	}
	// New base data requires Rebuild to show up.
	a := aliasSet()
	s.NewTripleS("dhs", "id:NewGuy", "gov:terrorAction", "bombing", a)
	if err := c.Rebuild("rix"); err != nil {
		t.Fatal(err)
	}
	rs, err := match.Match(s, `(gov:files gov:terrorSuspect ?x)`, match.Options{
		Models: []string{"dhs"}, Rulebases: []string{"intel_rb"}, Resolver: c, Aliases: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 { // JohnDoe (base) + JimDoe + NewGuy (inferred)
		t.Fatalf("rows after rebuild = %d, want 3", rs.Len())
	}
	if err := c.DropRulesIndex("rix"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveIndex([]string{"dhs"}, []string{"intel_rb"}); !errors.Is(err, ErrNoRulesIndex) {
		t.Fatalf("resolve after drop: %v", err)
	}
	if err := c.DropRulesIndex("rix"); !errors.Is(err, ErrNoRulesIndex) {
		t.Fatalf("double drop: %v", err)
	}
	if err := c.Rebuild("rix"); !errors.Is(err, ErrNoRulesIndex) {
		t.Fatalf("rebuild after drop: %v", err)
	}
}

// Soundness property: everything inferred by the rules index is derivable
// — spot-check that the index contains no triples about entities never
// mentioned in the rules or data.
func TestInferenceNoGarbage(t *testing.T) {
	s := icStore(t)
	c := NewCatalog(s)
	ix, err := c.CreateRulesIndex("g", []string{"cia"}, []string{RDFSRulebaseName})
	if err != nil {
		t.Fatal(err)
	}
	found, err := s.Find(ix.IndexModel(), core.Pattern{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range found {
		tr, _ := ts.GetTriple()
		// Only rdf1/rdfs6-style derivations are possible from cia's data:
		// every derived triple must mention gov:terrorSuspect or RDF/RDFS
		// vocabulary.
		ok := tr.Subject.Value == "http://www.us.gov#terrorSuspect" ||
			tr.Property.Value == rdfterm.RDFSSubPropertyOf ||
			tr.Property.Value == rdfterm.RDFType
		if !ok {
			t.Errorf("unexpected inferred triple %v", tr)
		}
	}
}

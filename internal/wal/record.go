// Package wal implements a write-ahead log of the store's logical
// mutations: an append-only sequence of length-prefixed, CRC32-checksummed
// records. The paper's Oracle deployment gets redo logging and crash
// recovery from the database engine; this package supplies the equivalent
// for the memory-resident reproduction. Any prefix of the record stream
// describes a consistent store state, so recovery after a crash replays
// the longest verifiable prefix and truncates a torn or corrupted tail.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Type discriminates logical mutation records.
type Type uint8

// Record types, one per logical mutation of the central schema.
const (
	// TypeCreateModel registers a model in rdf_model$ (plus its view).
	TypeCreateModel Type = iota + 1
	// TypeDropModel removes a model: links, blank mappings, catalog row,
	// view, and orphaned nodes (replay re-runs the drop logic).
	TypeDropModel
	// TypeInternValue inserts a new rdf_value$ row for a term.
	TypeInternValue
	// TypeInsertLink inserts a new rdf_link$ row (nodes are derived state
	// and re-interned on replay).
	TypeInsertLink
	// TypeUpdateLink sets a link's COST and CONTEXT to absolute values
	// (repeated insert, context upgrade, or reference-count decrement).
	TypeUpdateLink
	// TypeDeleteLink removes a link row (and orphaned nodes, on replay).
	TypeDeleteLink
	// TypeBlankNode records a rdf_blank_node$ mapping from a user label to
	// its model-scoped internal value.
	TypeBlankNode
	// TypeSeqAdvance moves a sequence forward so replayed stores never
	// re-issue IDs consumed before the crash.
	TypeSeqAdvance

	maxType = TypeSeqAdvance
)

// String names the record type for diagnostics.
func (t Type) String() string {
	switch t {
	case TypeCreateModel:
		return "CreateModel"
	case TypeDropModel:
		return "DropModel"
	case TypeInternValue:
		return "InternValue"
	case TypeInsertLink:
		return "InsertLink"
	case TypeUpdateLink:
		return "UpdateLink"
	case TypeDeleteLink:
		return "DeleteLink"
	case TypeBlankNode:
		return "BlankNode"
	case TypeSeqAdvance:
		return "SeqAdvance"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Seq identifies one of the store's ID sequences in a TypeSeqAdvance
// record.
type Seq uint8

// The store's four sequences.
const (
	SeqValue Seq = iota + 1
	SeqLink
	SeqModel
	SeqBlank
)

// Record is one logical mutation. Only the fields relevant to the record
// Type are encoded; the rest stay zero.
type Record struct {
	Type Type

	// Model records (and BlankNode, which reuses ModelID + Name for the
	// original user label).
	ModelID    int64
	Name       string
	TableName  string
	ColumnName string

	// Value records: the interned term.
	ValueID     int64
	Text        string
	ValueType   string // rdfterm VT* code
	LiteralType string
	Language    string

	// Link records.
	LinkID   int64
	StartID  int64
	PropID   int64
	EndID    int64
	CanonID  int64
	LinkType string
	Cost     int64
	Context  string
	Reif     bool

	// Sequence records.
	Seq      Seq
	SeqValue int64
}

// ErrBadRecord reports a payload that passed its checksum but does not
// decode — a format/version mismatch rather than a torn write.
var ErrBadRecord = errors.New("wal: malformed record payload")

// appendPayload encodes the record body (without framing) onto dst.
func appendPayload(dst []byte, r *Record) []byte {
	dst = append(dst, byte(r.Type))
	switch r.Type {
	case TypeCreateModel:
		dst = binary.AppendVarint(dst, r.ModelID)
		dst = appendString(dst, r.Name)
		dst = appendString(dst, r.TableName)
		dst = appendString(dst, r.ColumnName)
	case TypeDropModel:
		dst = binary.AppendVarint(dst, r.ModelID)
		dst = appendString(dst, r.Name)
	case TypeInternValue:
		dst = binary.AppendVarint(dst, r.ValueID)
		dst = appendString(dst, r.Text)
		dst = appendString(dst, r.ValueType)
		dst = appendString(dst, r.LiteralType)
		dst = appendString(dst, r.Language)
	case TypeInsertLink:
		dst = binary.AppendVarint(dst, r.LinkID)
		dst = binary.AppendVarint(dst, r.ModelID)
		dst = binary.AppendVarint(dst, r.StartID)
		dst = binary.AppendVarint(dst, r.PropID)
		dst = binary.AppendVarint(dst, r.EndID)
		dst = binary.AppendVarint(dst, r.CanonID)
		dst = appendString(dst, r.LinkType)
		dst = binary.AppendVarint(dst, r.Cost)
		dst = appendString(dst, r.Context)
		dst = appendBool(dst, r.Reif)
	case TypeUpdateLink:
		dst = binary.AppendVarint(dst, r.LinkID)
		dst = binary.AppendVarint(dst, r.Cost)
		dst = appendString(dst, r.Context)
	case TypeDeleteLink:
		dst = binary.AppendVarint(dst, r.LinkID)
	case TypeBlankNode:
		dst = binary.AppendVarint(dst, r.ModelID)
		dst = appendString(dst, r.Name)
		dst = binary.AppendVarint(dst, r.ValueID)
	case TypeSeqAdvance:
		dst = append(dst, byte(r.Seq))
		dst = binary.AppendVarint(dst, r.SeqValue)
	}
	return dst
}

// decodePayload is the inverse of appendPayload.
func decodePayload(p []byte) (Record, error) {
	d := payloadDecoder{buf: p}
	var r Record
	r.Type = Type(d.byte())
	if r.Type == 0 || r.Type > maxType {
		return Record{}, fmt.Errorf("%w: unknown type %d", ErrBadRecord, r.Type)
	}
	switch r.Type {
	case TypeCreateModel:
		r.ModelID = d.varint()
		r.Name = d.string()
		r.TableName = d.string()
		r.ColumnName = d.string()
	case TypeDropModel:
		r.ModelID = d.varint()
		r.Name = d.string()
	case TypeInternValue:
		r.ValueID = d.varint()
		r.Text = d.string()
		r.ValueType = d.string()
		r.LiteralType = d.string()
		r.Language = d.string()
	case TypeInsertLink:
		r.LinkID = d.varint()
		r.ModelID = d.varint()
		r.StartID = d.varint()
		r.PropID = d.varint()
		r.EndID = d.varint()
		r.CanonID = d.varint()
		r.LinkType = d.string()
		r.Cost = d.varint()
		r.Context = d.string()
		r.Reif = d.bool()
	case TypeUpdateLink:
		r.LinkID = d.varint()
		r.Cost = d.varint()
		r.Context = d.string()
	case TypeDeleteLink:
		r.LinkID = d.varint()
	case TypeBlankNode:
		r.ModelID = d.varint()
		r.Name = d.string()
		r.ValueID = d.varint()
	case TypeSeqAdvance:
		r.Seq = Seq(d.byte())
		r.SeqValue = d.varint()
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.buf) != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing bytes after %s", ErrBadRecord, len(d.buf), r.Type)
	}
	return r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// payloadDecoder consumes a payload buffer, latching the first error so
// call sites stay linear.
type payloadDecoder struct {
	buf []byte
	err error
}

func (d *payloadDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: short payload", ErrBadRecord)
	}
}

func (d *payloadDecoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *payloadDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *payloadDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *payloadDecoder) string() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *payloadDecoder) bool() bool { return d.byte() != 0 }

package ndm

import (
	"errors"
	"math/rand"
	"testing"
)

func TestHasCycleOnDAG(t *testing.T) {
	// Diamond: 1→2, 1→3, 2→4, 3→4 — no cycle.
	net := buildNet(t, 4, [][3]int64{{1, 2, 1}, {1, 3, 1}, {2, 4, 1}, {3, 4, 1}})
	if got, _ := HasCycle(net); got {
		t.Fatal("DAG reported cyclic")
	}
	order, err := TopologicalOrder(net)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int64]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range [][2]int64{{1, 2}, {1, 3}, {2, 4}, {3, 4}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("order %v violates edge %v", order, e)
		}
	}
}

func TestHasCycleDetectsLoop(t *testing.T) {
	net := buildNet(t, 3, [][3]int64{{1, 2, 1}, {2, 3, 1}, {3, 1, 1}})
	got, node := HasCycle(net)
	if !got {
		t.Fatal("cycle not detected")
	}
	if node < 1 || node > 3 {
		t.Fatalf("cycle node = %d", node)
	}
	if _, err := TopologicalOrder(net); !errors.Is(err, ErrCycle) {
		t.Fatalf("TopologicalOrder = %v", err)
	}
}

func TestHasCycleSelfLoop(t *testing.T) {
	net := buildNet(t, 1, [][3]int64{{1, 1, 1}})
	if got, _ := HasCycle(net); !got {
		t.Fatal("self-loop not detected")
	}
}

func TestTopologicalOrderEmptyAndDisconnected(t *testing.T) {
	net := buildNet(t, 3, nil)
	order, err := TopologicalOrder(net)
	if err != nil || len(order) != 3 {
		t.Fatalf("order = %v, %v", order, err)
	}
	// Deterministic: ascending IDs for independent nodes.
	if order[0] != 1 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

// Property-style: random DAGs (edges only from lower to higher IDs) are
// never reported cyclic and always topologically sortable; adding a back
// edge makes them cyclic.
func TestRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(15)
		var links [][3]int64
		for i := 0; i < n*2; i++ {
			a := rng.Intn(n-1) + 1
			b := a + 1 + rng.Intn(n-a)
			links = append(links, [3]int64{int64(a), int64(b), 1})
		}
		net := buildNet(t, n, links)
		if got, _ := HasCycle(net); got {
			t.Fatal("acyclic graph reported cyclic")
		}
		order, err := TopologicalOrder(net)
		if err != nil || len(order) != n {
			t.Fatalf("order = %v, %v", order, err)
		}
		// Close a cycle using some existing edge's endpoints reversed.
		e := links[rng.Intn(len(links))]
		if _, err := net.AddLink("", e[1], e[0], 1); err != nil {
			t.Fatal(err)
		}
		if got, _ := HasCycle(net); !got {
			t.Fatal("cycle not detected after adding back edge")
		}
	}
}

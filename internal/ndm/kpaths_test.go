package ndm

import (
	"math/rand"
	"testing"
)

func TestKShortestPathsBasic(t *testing.T) {
	// Three distinct routes 1→4: via 2 (cost 2), via 3 (cost 4), direct
	// (cost 10).
	net := buildNet(t, 4, [][3]int64{
		{1, 2, 1}, {2, 4, 1},
		{1, 3, 2}, {3, 4, 2},
		{1, 4, 10},
	})
	paths, err := KShortestPaths(net, 1, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(paths))
	}
	wantCosts := []float64{2, 4, 10}
	for i, p := range paths {
		if p.Cost != wantCosts[i] {
			t.Errorf("path %d cost = %g, want %g (%+v)", i, p.Cost, wantCosts[i], p)
		}
		if p.Nodes[0] != 1 || p.Nodes[len(p.Nodes)-1] != 4 {
			t.Errorf("path %d endpoints wrong: %+v", i, p)
		}
	}
}

func TestKShortestPathsFewerThanK(t *testing.T) {
	net := buildNet(t, 3, [][3]int64{{1, 2, 1}, {2, 3, 1}})
	paths, err := KShortestPaths(net, 1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
}

func TestKShortestPathsUnreachable(t *testing.T) {
	net := buildNet(t, 3, [][3]int64{{1, 2, 1}})
	paths, err := KShortestPaths(net, 1, 3, 2)
	if err != nil || len(paths) != 0 {
		t.Fatalf("paths = %v, %v", paths, err)
	}
	if paths, _ := KShortestPaths(net, 1, 2, 0); paths != nil {
		t.Fatal("k=0 returned paths")
	}
}

func TestKShortestPathsLoopless(t *testing.T) {
	// Graph with a cycle 2→3→2; paths must not revisit nodes.
	net := buildNet(t, 4, [][3]int64{
		{1, 2, 1}, {2, 3, 1}, {3, 2, 1}, {3, 4, 1}, {2, 4, 5},
	})
	paths, err := KShortestPaths(net, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		seen := map[int64]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("path revisits node %d: %+v", n, p)
			}
			seen[n] = true
		}
	}
	if len(paths) != 2 { // 1-2-3-4 (3) and 1-2-4 (6)
		t.Fatalf("paths = %d, want 2", len(paths))
	}
}

// Property-style: the first path of KShortestPaths equals ShortestPath and
// costs are non-decreasing, on random graphs.
func TestKShortestPathsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(8)
		var links [][3]int64
		for i := 0; i < n*3; i++ {
			links = append(links, [3]int64{
				int64(rng.Intn(n) + 1), int64(rng.Intn(n) + 1), int64(rng.Intn(5) + 1)})
		}
		net := buildNet(t, n, links)
		src, dst := int64(1), int64(n)
		paths, err := KShortestPaths(net, src, dst, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			continue
		}
		sp, err := ShortestPath(net, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if paths[0].Cost != sp.Cost {
			t.Fatalf("first k-path cost %g != shortest %g", paths[0].Cost, sp.Cost)
		}
		for i := 1; i < len(paths); i++ {
			if paths[i].Cost < paths[i-1].Cost {
				t.Fatalf("costs decrease: %g after %g", paths[i].Cost, paths[i-1].Cost)
			}
			if samePath(paths[i], paths[i-1]) {
				t.Fatalf("duplicate path returned")
			}
		}
	}
}

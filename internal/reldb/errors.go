package reldb

import "errors"

// Sentinel errors returned by the engine. Callers match them with
// errors.Is.
var (
	// ErrSchemaMismatch reports a row that does not fit its table's schema.
	ErrSchemaMismatch = errors.New("reldb: schema mismatch")
	// ErrUniqueViolation reports an insert or update that would duplicate a
	// key in a unique index.
	ErrUniqueViolation = errors.New("reldb: unique constraint violation")
	// ErrNoSuchRow reports an operation addressed to a row ID that does not
	// exist or has been deleted.
	ErrNoSuchRow = errors.New("reldb: no such row")
	// ErrNoSuchTable reports a lookup of an unknown table name.
	ErrNoSuchTable = errors.New("reldb: no such table")
	// ErrNoSuchIndex reports a lookup of an unknown index name.
	ErrNoSuchIndex = errors.New("reldb: no such index")
	// ErrDuplicateObject reports creation of a table, index, view, or
	// sequence whose name is already taken.
	ErrDuplicateObject = errors.New("reldb: object already exists")
	// ErrNoSuchPartition reports a partition-scoped operation on a
	// partition key with no rows.
	ErrNoSuchPartition = errors.New("reldb: no such partition")
)

package jena

import (
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// Jena1Store is the Jena1 normalized design (§3.1): a statement table of
// ID references and separate resource/literal tables storing each text
// value once. Space-efficient, but every find is a three-way join.
type Jena1Store struct {
	db        *reldb.Database
	stmts     *reldb.Table // SUBJ_ID, PROP_ID, OBJ_ID, OBJ_IS_LIT
	resources *reldb.Table // ID, URI (also blank nodes, prefixed)
	literals  *reldb.Table // ID, VALUE (encoded)

	stmtSub  *reldb.Index
	stmtProp *reldb.Index
	stmtObj  *reldb.Index
	stmtSPO  *reldb.Index
	resPK    *reldb.Index
	resURI   *reldb.Index
	litPK    *reldb.Index
	litVal   *reldb.Index

	resSeq *reldb.Sequence
	litSeq *reldb.Sequence
}

// NewJena1Store creates an empty Jena1-style store. Unlike Jena2, Jena1
// used a single statement table for all data ("the single statement table
// did not scale for large datasets", §3.1).
func NewJena1Store() *Jena1Store {
	db := reldb.NewDatabase("JENA1")
	j := &Jena1Store{db: db}
	must := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("jena1: %v", err))
		}
	}
	var err error
	j.stmts, err = db.CreateTable(reldb.NewSchema("jena1_stmt",
		reldb.Column{Name: "SUBJ_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "PROP_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "OBJ_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "OBJ_IS_LIT", Kind: reldb.KindBool},
	))
	must(err)
	j.resources, err = db.CreateTable(reldb.NewSchema("jena1_res",
		reldb.Column{Name: "ID", Kind: reldb.KindInt},
		reldb.Column{Name: "URI", Kind: reldb.KindString},
	))
	must(err)
	j.literals, err = db.CreateTable(reldb.NewSchema("jena1_lit",
		reldb.Column{Name: "ID", Kind: reldb.KindInt},
		reldb.Column{Name: "VAL", Kind: reldb.KindString},
	))
	must(err)
	j.stmtSub, err = j.stmts.CreateIndex("sub", false, "SUBJ_ID")
	must(err)
	j.stmtProp, err = j.stmts.CreateIndex("prop", false, "PROP_ID")
	must(err)
	j.stmtObj, err = j.stmts.CreateIndex("obj", false, "OBJ_ID", "OBJ_IS_LIT")
	must(err)
	j.stmtSPO, err = j.stmts.CreateIndex("spo", false, "SUBJ_ID", "PROP_ID", "OBJ_ID", "OBJ_IS_LIT")
	must(err)
	j.resPK, err = j.resources.CreateIndex("pk", true, "ID")
	must(err)
	j.resURI, err = j.resources.CreateIndex("uri", true, "URI")
	must(err)
	j.litPK, err = j.literals.CreateIndex("pk", true, "ID")
	must(err)
	j.litVal, err = j.literals.CreateIndex("val", true, "VAL")
	must(err)
	j.resSeq, err = db.CreateSequence("res_seq", 1)
	must(err)
	j.litSeq, err = db.CreateSequence("lit_seq", 1)
	must(err)
	return j
}

// internResource returns the ID of a URI/blank term, interning on first
// use ("text values were only stored once", §3.1).
func (j *Jena1Store) internResource(t rdfterm.Term) (int64, error) {
	enc := encodeTerm(t)
	if rid, ok := j.resURI.LookupOne(reldb.Key{reldb.String_(enc)}); ok {
		r, err := j.resources.Get(rid)
		if err != nil {
			return 0, err
		}
		return r[0].Int64(), nil
	}
	id := j.resSeq.Next()
	if _, err := j.resources.Insert(reldb.Row{reldb.Int(id), reldb.String_(enc)}); err != nil {
		return 0, err
	}
	return id, nil
}

func (j *Jena1Store) internLiteral(t rdfterm.Term) (int64, error) {
	enc := encodeTerm(t)
	if rid, ok := j.litVal.LookupOne(reldb.Key{reldb.String_(enc)}); ok {
		r, err := j.literals.Get(rid)
		if err != nil {
			return 0, err
		}
		return r[0].Int64(), nil
	}
	id := j.litSeq.Next()
	if _, err := j.literals.Insert(reldb.Row{reldb.Int(id), reldb.String_(enc)}); err != nil {
		return 0, err
	}
	return id, nil
}

// Add inserts a statement.
func (j *Jena1Store) Add(st Statement) error {
	if st.Predicate.Kind != rdfterm.URI {
		return fmt.Errorf("jena1: predicate must be a URI")
	}
	sid, err := j.internResource(st.Subject)
	if err != nil {
		return err
	}
	pid, err := j.internResource(st.Predicate)
	if err != nil {
		return err
	}
	var oid int64
	isLit := st.Object.Kind == rdfterm.Literal
	if isLit {
		oid, err = j.internLiteral(st.Object)
	} else {
		oid, err = j.internResource(st.Object)
	}
	if err != nil {
		return err
	}
	_, err = j.stmts.Insert(reldb.Row{reldb.Int(sid), reldb.Int(pid), reldb.Int(oid), reldb.Bool(isLit)})
	return err
}

// lookupResource resolves a term to its ID without interning.
func (j *Jena1Store) lookupTerm(t rdfterm.Term) (int64, bool, bool) {
	isLit := t.Kind == rdfterm.Literal
	var ix *reldb.Index
	var tb *reldb.Table
	if isLit {
		ix, tb = j.litVal, j.literals
	} else {
		ix, tb = j.resURI, j.resources
	}
	rid, ok := ix.LookupOne(reldb.Key{reldb.String_(encodeTerm(t))})
	if !ok {
		return 0, isLit, false
	}
	r, err := tb.Get(rid)
	if err != nil {
		return 0, isLit, false
	}
	return r[0].Int64(), isLit, true
}

// Find returns statements matching the pattern — the §3.1 three-way join:
// constrained terms are resolved against the value tables, matching
// statement rows located by index, and each result row joined back to the
// resource/literal tables to materialize the text.
func (j *Jena1Store) Find(sub, pred, obj *rdfterm.Term) ([]Statement, error) {
	var (
		sid, pid, oid int64
		objIsLit      bool
	)
	if sub != nil {
		id, _, ok := j.lookupTerm(*sub)
		if !ok {
			return nil, nil
		}
		sid = id
	}
	if pred != nil {
		id, _, ok := j.lookupTerm(*pred)
		if !ok {
			return nil, nil
		}
		pid = id
	}
	if obj != nil {
		id, isLit, ok := j.lookupTerm(*obj)
		if !ok {
			return nil, nil
		}
		oid, objIsLit = id, isLit
	}

	var it reldb.Iterator
	switch {
	case sub != nil && pred != nil && obj != nil:
		it = reldb.NewIndexEq(j.stmts, j.stmtSPO,
			reldb.Key{reldb.Int(sid), reldb.Int(pid), reldb.Int(oid), reldb.Bool(objIsLit)})
	case sub != nil:
		it = reldb.NewIndexEq(j.stmts, j.stmtSub, reldb.Key{reldb.Int(sid)})
	case pred != nil:
		it = reldb.NewIndexEq(j.stmts, j.stmtProp, reldb.Key{reldb.Int(pid)})
	case obj != nil:
		it = reldb.NewIndexEq(j.stmts, j.stmtObj, reldb.Key{reldb.Int(oid), reldb.Bool(objIsLit)})
	default:
		it = reldb.NewTableScan(j.stmts)
	}

	var out []Statement
	for {
		r, ok := it.Next()
		if !ok {
			return out, nil
		}
		if sub != nil && r[0].Int64() != sid {
			continue
		}
		if pred != nil && r[1].Int64() != pid {
			continue
		}
		if obj != nil && (r[2].Int64() != oid || r[3].BoolVal() != objIsLit) {
			continue
		}
		st, err := j.materialize(r)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

// materialize joins a statement row back to the value tables.
func (j *Jena1Store) materialize(r reldb.Row) (Statement, error) {
	s, err := j.resourceByID(r[0].Int64())
	if err != nil {
		return Statement{}, err
	}
	p, err := j.resourceByID(r[1].Int64())
	if err != nil {
		return Statement{}, err
	}
	var o rdfterm.Term
	if r[3].BoolVal() {
		o, err = j.literalByID(r[2].Int64())
	} else {
		o, err = j.resourceByID(r[2].Int64())
	}
	if err != nil {
		return Statement{}, err
	}
	return Statement{Subject: s, Predicate: p, Object: o}, nil
}

func (j *Jena1Store) resourceByID(id int64) (rdfterm.Term, error) {
	rid, ok := j.resPK.LookupOne(reldb.Key{reldb.Int(id)})
	if !ok {
		return rdfterm.Term{}, fmt.Errorf("jena1: dangling resource %d", id)
	}
	r, err := j.resources.Get(rid)
	if err != nil {
		return rdfterm.Term{}, err
	}
	return decodeTerm(r[1].Str())
}

func (j *Jena1Store) literalByID(id int64) (rdfterm.Term, error) {
	rid, ok := j.litPK.LookupOne(reldb.Key{reldb.Int(id)})
	if !ok {
		return rdfterm.Term{}, fmt.Errorf("jena1: dangling literal %d", id)
	}
	r, err := j.literals.Get(rid)
	if err != nil {
		return rdfterm.Term{}, err
	}
	return decodeTerm(r[1].Str())
}

// Len returns the number of statements.
func (j *Jena1Store) Len() int { return j.stmts.Len() }

// ValueCounts returns (resources, literals) — for storage comparisons.
func (j *Jena1Store) ValueCounts() (int, int) {
	return j.resources.Len(), j.literals.Len()
}

// TextBytes sums the stored text of the value tables ("this design was
// efficient on space, because text values were only stored once", §3.1).
func (j *Jena1Store) TextBytes() int64 {
	var total int64
	count := func(t *reldb.Table, col int) {
		t.Scan(func(_ reldb.RowID, r reldb.Row) bool {
			total += int64(len(r[col].Str()))
			return true
		})
	}
	count(j.resources, 1)
	count(j.literals, 1)
	return total
}

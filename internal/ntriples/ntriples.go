// Package ntriples implements a streaming reader and writer for the
// N-Triples serialization of RDF. It is the input format of the bulk
// loader (cmd/rdfload) and the UniProt-like dataset generator — the
// reproduction's stand-in for the RDF files the paper loads (§7.1.1).
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"

	"repro/internal/rdfterm"
)

// Triple is one parsed statement.
type Triple struct {
	Subject   rdfterm.Term
	Predicate rdfterm.Term
	Object    rdfterm.Term
}

// String renders the triple in N-Triples syntax (without the trailing
// newline).
func (t Triple) String() string {
	return FormatTerm(t.Subject) + " " + FormatTerm(t.Predicate) + " " + FormatTerm(t.Object) + " ."
}

// ParseError describes a syntax error with its position.
type ParseError struct {
	Line int
	Col  int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Reader parses N-Triples from an io.Reader, one triple per Next call.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// MaxLineLen is the longest supported input line (long literals).
const MaxLineLen = 16 * 1024 * 1024

// NewReader wraps r. Lines up to MaxLineLen are supported.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineLen)
	return &Reader{sc: sc}
}

// Next returns the next triple, or io.EOF when the input is exhausted.
func (r *Reader) Next() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		t, ok, err := ParseLine(r.sc.Text(), r.line)
		if err != nil {
			return Triple{}, err
		}
		if !ok {
			continue
		}
		return t, nil
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ParseLine parses one N-Triples line. ok is false for blank and comment
// lines (no triple, no error). lineNo is reported in parse errors — the
// parallel bulk loader (internal/load) parses lines out of band and needs
// positions to survive the fan-out.
func ParseLine(line string, lineNo int) (t Triple, ok bool, err error) {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") {
		return Triple{}, false, nil
	}
	r := &Reader{line: lineNo}
	t, err = r.parseLine(trimmed)
	if err != nil {
		return Triple{}, false, err
	}
	return t, true, nil
}

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (r *Reader) parseLine(line string) (Triple, error) {
	p := &lineParser{s: line, line: r.line}
	if !utf8.ValidString(line) {
		return Triple{}, p.errorf("invalid UTF-8")
	}
	subj, err := p.term(true)
	if err != nil {
		return Triple{}, err
	}
	if subj.Kind == rdfterm.Literal {
		return Triple{}, p.errorf("subject cannot be a literal")
	}
	pred, err := p.term(false)
	if err != nil {
		return Triple{}, err
	}
	if pred.Kind != rdfterm.URI {
		return Triple{}, p.errorf("predicate must be a URI")
	}
	obj, err := p.term(true)
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if p.pos >= len(p.s) || p.s[p.pos] != '.' {
		return Triple{}, p.errorf("expected '.' terminator")
	}
	p.pos++
	p.skipWS()
	if p.pos != len(p.s) {
		return Triple{}, p.errorf("trailing content after '.'")
	}
	return Triple{Subject: subj, Predicate: pred, Object: obj}, nil
}

func (p *lineParser) errorf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

// term parses one term. allowLiteral permits literals (objects only).
func (p *lineParser) term(allowLiteral bool) (rdfterm.Term, error) {
	p.skipWS()
	if p.pos >= len(p.s) {
		return rdfterm.Term{}, p.errorf("unexpected end of line")
	}
	switch p.s[p.pos] {
	case '<':
		return p.uri()
	case '_':
		return p.blank()
	case '"':
		if !allowLiteral {
			return rdfterm.Term{}, p.errorf("literal not allowed here")
		}
		return p.literal()
	}
	return rdfterm.Term{}, p.errorf("unexpected character %q", p.s[p.pos])
}

func (p *lineParser) uri() (rdfterm.Term, error) {
	end := strings.IndexByte(p.s[p.pos:], '>')
	if end < 0 {
		return rdfterm.Term{}, p.errorf("unterminated URI")
	}
	raw := p.s[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if raw == "" {
		return rdfterm.Term{}, p.errorf("empty URI")
	}
	val, err := unescape(raw, false)
	if err != nil {
		return rdfterm.Term{}, p.errorf("%v", err)
	}
	return rdfterm.NewURI(val), nil
}

func (p *lineParser) blank() (rdfterm.Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return rdfterm.Term{}, p.errorf("malformed blank node")
	}
	start := p.pos + 2
	i := start
	for i < len(p.s) && isLabelChar(p.s[i]) {
		i++
	}
	if i == start {
		return rdfterm.Term{}, p.errorf("empty blank node label")
	}
	label := p.s[start:i]
	p.pos = i
	return rdfterm.NewBlank(label), nil
}

func isLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

func (p *lineParser) literal() (rdfterm.Term, error) {
	// Scan to the closing quote, honoring escapes.
	i := p.pos + 1
	for i < len(p.s) {
		if p.s[i] == '\\' {
			i += 2
			continue
		}
		if p.s[i] == '"' {
			break
		}
		i++
	}
	if i >= len(p.s) {
		return rdfterm.Term{}, p.errorf("unterminated literal")
	}
	lex, err := unescape(p.s[p.pos+1:i], true)
	if err != nil {
		return rdfterm.Term{}, p.errorf("%v", err)
	}
	p.pos = i + 1
	// Optional @lang or ^^<datatype>.
	if p.pos < len(p.s) && p.s[p.pos] == '@' {
		start := p.pos + 1
		j := start
		for j < len(p.s) && (isAlphaNum(p.s[j]) || p.s[j] == '-') {
			j++
		}
		if j == start {
			return rdfterm.Term{}, p.errorf("empty language tag")
		}
		p.pos = j
		return rdfterm.NewLangLiteral(lex, p.s[start:j]), nil
	}
	if strings.HasPrefix(p.s[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.s) || p.s[p.pos] != '<' {
			return rdfterm.Term{}, p.errorf("datatype must be a URI")
		}
		dt, err := p.uri()
		if err != nil {
			return rdfterm.Term{}, err
		}
		return rdfterm.NewTypedLiteral(lex, dt.Value), nil
	}
	return rdfterm.NewLiteral(lex), nil
}

func isAlphaNum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// unescape handles N-Triples escapes. inLiteral additionally allows the
// control escapes \n \r \t \" \\; both forms allow \uXXXX and \UXXXXXXXX.
func unescape(s string, inLiteral bool) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling backslash")
		}
		switch s[i] {
		case 'u', 'U':
			n := 4
			if s[i] == 'U' {
				n = 8
			}
			if i+n >= len(s) {
				return "", fmt.Errorf("truncated \\%c escape", s[i])
			}
			var r rune
			for k := 1; k <= n; k++ {
				d := hexVal(s[i+k])
				if d < 0 {
					return "", fmt.Errorf("bad hex digit in \\%c escape", s[i])
				}
				r = r<<4 | rune(d)
			}
			if !utf8.ValidRune(r) {
				return "", fmt.Errorf("invalid code point in escape")
			}
			b.WriteRune(r)
			i += n
		case 'n':
			if !inLiteral {
				return "", fmt.Errorf(`\n escape outside literal`)
			}
			b.WriteByte('\n')
		case 'r':
			if !inLiteral {
				return "", fmt.Errorf(`\r escape outside literal`)
			}
			b.WriteByte('\r')
		case 't':
			if !inLiteral {
				return "", fmt.Errorf(`\t escape outside literal`)
			}
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// --- writing ---

// FormatTerm renders a term in N-Triples syntax.
func FormatTerm(t rdfterm.Term) string {
	switch t.Kind {
	case rdfterm.URI:
		return "<" + escapeURI(t.Value) + ">"
	case rdfterm.Blank:
		return "_:" + t.Value
	case rdfterm.Literal:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Language != "" {
			s += "@" + t.Language
		}
		if t.Datatype != "" {
			s += "^^<" + escapeURI(t.Datatype) + ">"
		}
		return s
	}
	return ""
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeURI(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '>':
			b.WriteString(`\u003E`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Writer serializes triples.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple.
func (w *Writer) Write(t Triple) error {
	if _, err := w.w.WriteString(t.String()); err != nil {
		return err
	}
	return w.w.WriteByte('\n')
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Frame layout: every record is framed as
//
//	uint32 LE  payload length
//	uint32 LE  CRC32 (IEEE) of the payload
//	payload    (type byte + type-specific fields, see record.go)
//
// preceded once, at file offset 0, by the 8-byte magic header. The frame
// is self-verifying: a reader accepts a record only when the full payload
// is present and its checksum matches, so a crash mid-write leaves a
// detectable torn tail rather than silent corruption.
const (
	// Magic identifies a WAL file (8 bytes, includes format version).
	Magic = "RDFWAL1\n"
	// frameHeaderLen is the per-record framing overhead.
	frameHeaderLen = 8
	// MaxRecordLen bounds a single record payload; a length prefix above
	// it is treated as tail corruption, not an allocation request.
	MaxRecordLen = 1 << 24
)

// File is the sink a Log appends to. *os.File satisfies it; tests inject
// fault-injection implementations (see faultfs.go).
type File interface {
	io.Writer
	// Sync makes previous writes durable (fsync for real files).
	Sync() error
	Close() error
}

// truncatable is implemented by files that support checkpoint truncation
// (Reset) — *os.File in particular.
type truncatable interface {
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// Log appends mutation records to a File. Append is not durable until
// Commit; the store calls Commit at the end of each public mutation.
// Methods are safe for concurrent use, though the store already
// serializes appends under its write lock.
type Log struct {
	mu  sync.Mutex
	f   File
	buf []byte   // scratch frame buffer, reused across appends
	met *Metrics // nil when instrumentation is disabled
}

// SetMetrics attaches instrumentation. Call before the log is shared;
// a nil m (or never calling) leaves the log uninstrumented.
func (l *Log) SetMetrics(m *Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = m
}

// NewLog wraps an already-positioned File. When fresh is true the magic
// header is written first (the file must be empty).
func NewLog(f File, fresh bool) (*Log, error) {
	l := &Log{f: f}
	if fresh {
		if _, err := f.Write([]byte(Magic)); err != nil {
			return nil, fmt.Errorf("wal: writing header: %w", err)
		}
	}
	return l, nil
}

// OpenFile opens (or creates) a WAL at path for appending. Existing
// records are scanned with torn-tail tolerance: the caller replays
// the returned ScanResult's records, and the file itself is truncated to
// the verified prefix so subsequent appends extend valid data.
func OpenFile(path string) (*Log, ScanResult, error) {
	return OpenFileWith(path, nil)
}

// OpenFileWith is OpenFile with an injection seam: when wrap is non-nil
// the Log appends through wrap(f) instead of the raw *os.File. Fault
// tests wrap the real file in a FlakyFile so the on-disk image stays
// genuine while writes and syncs misbehave on demand. Scanning and
// torn-tail truncation happen on the raw file, before wrapping.
func OpenFileWith(path string, wrap func(File) File) (*Log, ScanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, ScanResult{}, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	sink := File(f)
	if wrap != nil {
		sink = wrap(f)
	}
	if st.Size() == 0 {
		l, err := NewLog(sink, true)
		if err != nil {
			sink.Close()
			return nil, ScanResult{}, err
		}
		return l, ScanResult{ValidBytes: int64(len(Magic))}, nil
	}
	res, err := Scan(f)
	if err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	// Drop any torn tail so the next frame starts on a clean boundary.
	if err := f.Truncate(res.ValidBytes); err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	if _, err := f.Seek(res.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, ScanResult{}, err
	}
	return &Log{f: sink}, res, nil
}

// appendFrame encodes one record, framed and checksummed, onto dst.
func appendFrame(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = appendPayload(dst, r)
	payload := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(payload))
	return dst
}

// Append frames and writes one record. The write is buffered by the OS
// until Commit; a crash before Commit may tear the frame, which recovery
// detects and truncates.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = appendFrame(l.buf[:0], &r)
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append %s: %w", r.Type, err)
	}
	l.met.onAppend(len(l.buf))
	return nil
}

// writeRaw writes already-framed bytes to the underlying file — the flush
// path of a GroupLog, which frames records itself.
func (l *Log) writeRaw(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.f.Write(b)
	return err
}

// Commit makes all appended records durable.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	t0 := l.met.startTimer()
	if err := l.f.Sync(); err != nil {
		l.met.onFsyncError()
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.met.onFsync(t0)
	return nil
}

// Reset truncates the log back to its header — the checkpoint step after
// the store's state has been captured in a snapshot. It fails when the
// underlying File does not support truncation.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.f.(truncatable)
	if !ok {
		return fmt.Errorf("wal: underlying file %T does not support Reset", l.f)
	}
	if err := t.Truncate(int64(len(Magic))); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := t.Seek(int64(len(Magic)), io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.met.onReset()
	return l.f.Sync()
}

// Close syncs and closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Package errwrapcheck keeps the store's sentinel errors matchable.
// Callers are promised `errors.Is(err, core.ErrNoSuchModel)` works across
// every layer; that only holds if each wrap site uses %w. A fmt.Errorf
// that formats a package-level error sentinel with %v or %s flattens it
// to text and silently breaks the contract, so this pass flags exactly
// that: a constant format string whose %v/%s argument resolves to a
// package-level variable of type error.
//
// Locals and struct fields are not sentinels (nobody matches against
// them by identity), and non-constant format strings are skipped.
package errwrapcheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"repro/tools/analyzers/framework"
)

// Analyzer is the errwrapcheck pass.
var Analyzer = &framework.Analyzer{
	Name: "errwrapcheck",
	Doc:  "check that package sentinel errors are wrapped with %w, not flattened with %v/%s",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isFmtErrorf(pass, call) {
				checkErrorf(pass, call)
			}
			return true
		})
	}
	return nil
}

// isFmtErrorf resolves the callee to fmt.Errorf.
func isFmtErrorf(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Errorf" {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

func checkErrorf(pass *framework.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	for _, v := range formatVerbs(format) {
		if v.c != 'v' && v.c != 's' {
			continue
		}
		argPos := 1 + v.arg
		if argPos < 1 || argPos >= len(call.Args) {
			continue
		}
		arg := call.Args[argPos]
		if sentinel := sentinelVar(pass, arg); sentinel != nil {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf formats sentinel %s with %%%c; use %%w so errors.Is/errors.As can unwrap it",
				sentinel.Name(), v.c)
		}
	}
}

// sentinelVar resolves e to a package-level variable of type error, nil
// otherwise.
func sentinelVar(pass *framework.Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorInterface) {
		return nil
	}
	return v
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// verb is one conversion in a format string: the verb rune and the
// zero-based operand index it consumes.
type verb struct {
	c   rune
	arg int
}

// formatVerbs scans a Printf-style format string, tracking the operand
// index through flags, *-widths, and explicit [n] argument indexes.
func formatVerbs(format string) []verb {
	var out []verb
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		for i < len(format) && strings.IndexByte("+-# 0", format[i]) >= 0 {
			i++
		}
		// width / precision, each possibly '*' (which consumes an operand)
		for {
			if i < len(format) && format[i] == '*' {
				arg++
				i++
			}
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				break
			}
			if n, err := strconv.Atoi(format[i+1 : i+j]); err == nil && n >= 1 {
				arg = n - 1
			}
			i += j + 1
		}
		if i >= len(format) {
			break
		}
		out = append(out, verb{c: rune(format[i]), arg: arg})
		arg++
		i++
	}
	return out
}

package core

import (
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// CheckInvariants validates the cross-table invariants of the central
// schema and returns every violation found. It exists for tests (notably
// the property tests that hammer the store with random operation
// sequences) and for diagnostics; a healthy store returns an empty slice.
//
// Invariants checked:
//
//  1. every link's START/P/END/CANON value IDs resolve in rdf_value$;
//  2. rdf_node$ holds exactly the set of VALUE_IDs used as a subject or
//     object by at least one live link ("nodes are stored only once" and
//     removed when orphaned, §4);
//  3. every link's COST >= 1;
//  4. (MODEL_ID, START, P, CANON) is unique across live links;
//  5. every link's MODEL_ID exists in rdf_model$;
//  6. CONTEXT is D or I; REIF_LINK is Y or N; LINK_TYPE matches the
//     predicate's vocabulary classification;
//  7. every rdf_blank_node$ mapping points at a BN-typed value.
func (s *Store) CheckInvariants() []error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var errs []error
	addf := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// Collect live link facts.
	usedNodes := map[int64]bool{}
	seenMSPO := map[string]int64{}
	s.links.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		linkID := r[lcLinkID].Int64()
		modelID := r[lcModelID].Int64()
		sid, pid, oid, cid := r[lcStartNodeID].Int64(), r[lcPValueID].Int64(), r[lcEndNodeID].Int64(), r[lcCanonEndNodeID].Int64()

		for _, pair := range [][2]int64{{sid, 1}, {pid, 2}, {oid, 3}, {cid, 4}} {
			if !s.valuePK.Contains(reldb.Key{reldb.Int(pair[0])}) {
				addf("link %d: dangling VALUE_ID %d (pos %d)", linkID, pair[0], pair[1])
			}
		}
		usedNodes[sid] = true
		usedNodes[oid] = true

		if cost := r[lcCost].Int64(); cost < 1 {
			addf("link %d: COST = %d < 1", linkID, cost)
		}
		key := fmt.Sprintf("%d|%d|%d|%d", modelID, sid, pid, cid)
		if other, dup := seenMSPO[key]; dup {
			addf("links %d and %d: duplicate (MODEL,S,P,CANON)", other, linkID)
		}
		seenMSPO[key] = linkID

		if !s.modelPK.Contains(reldb.Key{reldb.Int(modelID)}) {
			addf("link %d: MODEL_ID %d not in rdf_model$", linkID, modelID)
		}
		if ctx := r[lcContext].Str(); ctx != ContextDirect && ctx != ContextIndirect {
			addf("link %d: CONTEXT %q", linkID, ctx)
		}
		if rf := r[lcReifLink].Str(); rf != "Y" && rf != "N" {
			addf("link %d: REIF_LINK %q", linkID, rf)
		}
		if prop, err := s.getValueLocked(pid); err == nil {
			if want := rdfterm.LinkType(prop.Value); r[lcLinkType].Str() != want {
				addf("link %d: LINK_TYPE %q, predicate implies %q", linkID, r[lcLinkType].Str(), want)
			}
		} else if s.valuePK.Contains(reldb.Key{reldb.Int(pid)}) {
			// The wholly-missing case is already reported as a dangling
			// VALUE_ID above; an indexed-but-unreadable row is a distinct
			// index/table divergence and must not be swallowed.
			addf("link %d: predicate VALUE_ID %d indexed in rdf_value$ but unreadable: %v", linkID, pid, err)
		}
		return true
	})

	// rdf_node$ must equal the used-node set.
	nodeSet := map[int64]bool{}
	s.nodes.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		nodeSet[r[0].Int64()] = true
		return true
	})
	for n := range usedNodes {
		if !nodeSet[n] {
			addf("node %d used by links but missing from rdf_node$", n)
		}
	}
	for n := range nodeSet {
		if !usedNodes[n] {
			addf("node %d in rdf_node$ but unused by any link", n)
		}
	}

	// Blank mappings point at BN values.
	s.blanks.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		vid := r[2].Int64()
		term, err := s.getValueLocked(vid)
		if err != nil {
			addf("blank mapping (%d,%q): dangling VALUE_ID %d", r[0].Int64(), r[1].Str(), vid)
			return true
		}
		if term.Kind != rdfterm.Blank {
			addf("blank mapping (%d,%q): VALUE_ID %d is %s, not BN", r[0].Int64(), r[1].Str(), vid, term.Kind)
		}
		return true
	})
	return errs
}

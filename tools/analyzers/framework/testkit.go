package framework

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Testkit: an analysistest-style fixture runner. Fixture packages live
// under <analyzer>/testdata/src/<pkg> (the go tool never builds testdata
// trees, so deliberately broken code is safe there). Expected findings
// are marked in the fixture source with trailing comments:
//
//	s.tab.Insert(v) // want `accesses guarded field`
//
// Each backquoted or double-quoted string after "want" is a regexp that
// must match exactly one diagnostic on that line; diagnostics with no
// matching expectation, and expectations with no matching diagnostic,
// fail the test.

// expectation is one `// want` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// RunTest loads each fixture package and checks the analyzer's
// diagnostics against the // want comments.
func RunTest(t *testing.T, testdata string, a *Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		loader := NewLoader(dir, pkgName)
		pkg, err := loader.Load(dir, pkgName)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgName, err)
		}
		diags, err := RunPackage(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgName, err)
		}
		expects, err := parseExpectations(pkg)
		if err != nil {
			t.Fatalf("fixture %s: %v", pkgName, err)
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			matched := false
			for _, e := range expects {
				if !e.hit && e.file == p.Filename && e.line == p.Line && e.re.MatchString(d.Message) {
					e.hit = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s", pkgName, Format(pkg.Fset, d))
			}
		}
		for _, e := range expects {
			if !e.hit {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
					pkgName, e.file, e.line, e.re)
			}
		}
	}
}

// parseExpectations extracts // want comments from the fixture files.
func parseExpectations(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				patterns, err := parseWantPatterns(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", p.Filename, p.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", p.Filename, p.Line, pat, err)
					}
					out = append(out, &expectation{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// parseWantPatterns splits `"re1" "re2"` / backquoted variants.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want pattern must be quoted, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %w", raw, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}

package core

import (
	"context"
	"fmt"

	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// Pattern is a triple pattern for Find: nil components are wildcards.
// Object constraints match on canonical form (CANON_END_NODE_ID), so
// "01"^^xsd:int finds triples stored as "1"^^xsd:int.
type Pattern struct {
	Subject   *rdfterm.Term
	Predicate *rdfterm.Term
	Object    *rdfterm.Term
}

// P returns a pointer to a term, for building patterns inline.
func P(t rdfterm.Term) *rdfterm.Term { return &t }

// cancelEvery is how many scanned rows a read path processes between
// context checks. Small enough that cancellation lands within a fraction
// of a millisecond on any pattern shape, large enough that the check is
// invisible in scan throughput.
const cancelEvery = 256

// Find returns every triple in the model matching the pattern, choosing
// the best available index: (M,S[,P[,O]]) prefix on the unique MSPO index,
// (M,P) on the predicate index, (M,O-canon) on the object index, falling
// back to a partition-pruned scan for fully unbound patterns.
func (s *Store) Find(model string, pat Pattern) ([]TripleS, error) {
	return s.FindCtx(context.Background(), model, pat)
}

// FindCtx is Find with cancellation: the scan aborts (returning ctx.Err
// wrapped) as soon as ctx is done, checking every cancelEvery rows, so a
// runaway query releases the read lock promptly after a cancel or
// deadline.
func (s *Store) FindCtx(ctx context.Context, model string, pat Pattern) ([]TripleS, error) {
	t0 := s.met.startTimer()
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.met.onReadLockAcquired(t0)
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return nil, err
	}
	return s.findModelLocked(ctx, mid, pat)
}

// FindModels runs Find over several models, concatenating results — the
// multi-model scope of SDO_RDF_MATCH (§6.1). The whole call holds one
// read lock: all model names are resolved up front (an unknown model
// fails before any scanning), and a concurrent writer cannot commit
// between the per-model scans, so the result is a consistent snapshot
// across every model in the list.
func (s *Store) FindModels(models []string, pat Pattern) ([]TripleS, error) {
	return s.FindModelsCtx(context.Background(), models, pat)
}

// FindModelsCtx is FindModels with cancellation (see FindCtx).
func (s *Store) FindModelsCtx(ctx context.Context, models []string, pat Pattern) ([]TripleS, error) {
	t0 := s.met.startTimer()
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.met.onReadLockAcquired(t0)
	mids := make([]int64, len(models))
	for i, m := range models {
		mid, err := s.getModelIDLocked(m)
		if err != nil {
			return nil, err
		}
		mids[i] = mid
	}
	var out []TripleS
	for _, mid := range mids {
		ts, err := s.findModelLocked(ctx, mid, pat)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// findModelLocked executes the pattern match with s.mu held (either mode).
// The scan polls ctx every cancelEvery rows and aborts with a wrapped
// ctx.Err() when it fires.
func (s *Store) findModelLocked(ctx context.Context, mid int64, pat Pattern) ([]TripleS, error) {
	// Resolve constrained term IDs; a constrained term that is not interned
	// matches nothing.
	var sid, pid, oid int64
	if pat.Subject != nil {
		var ok bool
		if sid, ok = s.lookupResolvedIDLocked(mid, *pat.Subject); !ok {
			return nil, nil
		}
	}
	if pat.Predicate != nil {
		var ok bool
		if pid, ok = s.lookupValueIDLocked(*pat.Predicate); !ok {
			return nil, nil
		}
	}
	if pat.Object != nil {
		var ok bool
		if oid, ok = s.lookupCanonIDLocked(mid, *pat.Object); !ok {
			return nil, nil
		}
	}

	// scanned counts rows across the index scan and the fetch loop; the
	// context is polled every cancelEvery increments.
	scanned := 0
	var ctxErr error
	tick := func() bool {
		scanned++
		if scanned%cancelEvery == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = fmt.Errorf("core: find: %w", err)
				return false
			}
		}
		return true
	}

	// collectIDs fetches each candidate row and applies only the residual
	// checks — the components the index prefix does NOT already guarantee.
	// A component baked into the scanned key prefix is equal on every row
	// the scan returns, so re-checking it per row is pure overhead.
	var out []TripleS
	collectIDs := func(ids []reldb.RowID, checkS, checkP, checkO bool) error {
		for _, rid := range ids {
			if !tick() {
				return ctxErr
			}
			r, err := s.links.Get(rid)
			if err != nil {
				continue // row deleted since index snapshot
			}
			if checkS && r[lcStartNodeID].Int64() != sid {
				continue
			}
			if checkP && r[lcPValueID].Int64() != pid {
				continue
			}
			if checkO && r[lcCanonEndNodeID].Int64() != oid {
				continue
			}
			out = append(out, s.tripleSFromRow(r))
		}
		return nil
	}

	switch {
	case pat.Subject != nil:
		// MSPO prefix covers (M,S), plus P if bound, plus O if P and O are
		// both bound. The only possible residual is O when P is unbound
		// (the prefix cannot skip the P column to reach O).
		prefix := reldb.Key{reldb.Int(mid), reldb.Int(sid)}
		if pat.Predicate != nil {
			prefix = append(prefix, reldb.Int(pid))
			if pat.Object != nil {
				prefix = append(prefix, reldb.Int(oid))
			}
		}
		var ids []reldb.RowID
		s.linkMSPO.ScanPrefix(prefix, func(_ reldb.Key, rid reldb.RowID) bool {
			ids = append(ids, rid)
			return tick()
		})
		if ctxErr != nil {
			return nil, ctxErr
		}
		return out, collectIDs(ids, false, false, pat.Predicate == nil && pat.Object != nil)
	case pat.Predicate != nil:
		// MP prefix covers (M,P); O is residual. S is unbound here (the
		// MSPO branch would have taken it).
		var ids []reldb.RowID
		s.linkMP.ScanPrefix(reldb.Key{reldb.Int(mid), reldb.Int(pid)}, func(_ reldb.Key, rid reldb.RowID) bool {
			ids = append(ids, rid)
			return tick()
		})
		if ctxErr != nil {
			return nil, ctxErr
		}
		return out, collectIDs(ids, false, false, pat.Object != nil)
	case pat.Object != nil:
		// MO prefix covers (M,O-canon); nothing else is bound.
		var ids []reldb.RowID
		s.linkMO.ScanPrefix(reldb.Key{reldb.Int(mid), reldb.Int(oid)}, func(_ reldb.Key, rid reldb.RowID) bool {
			ids = append(ids, rid)
			return tick()
		})
		if ctxErr != nil {
			return nil, ctxErr
		}
		return out, collectIDs(ids, false, false, false)
	default:
		err := s.links.ScanPartition(mid, func(_ reldb.RowID, r reldb.Row) bool {
			out = append(out, s.tripleSFromRow(r))
			return tick()
		})
		if ctxErr != nil {
			return nil, ctxErr
		}
		return out, err
	}
}

// FindBySubjectText is the paper's Experiment II query shape: all triples
// of a model whose subject text equals subject. It exercises the member-
// function access path (value lookup → link index prefix scan).
func (s *Store) FindBySubjectText(model, subject string) ([]Triple, error) {
	return s.FindBySubjectTextCtx(context.Background(), model, subject)
}

// FindBySubjectTextCtx is FindBySubjectText with cancellation (see
// FindCtx).
func (s *Store) FindBySubjectTextCtx(ctx context.Context, model, subject string) ([]Triple, error) {
	ts, err := s.FindCtx(ctx, model, Pattern{Subject: P(rdfterm.NewURI(subject))})
	if err != nil {
		return nil, err
	}
	out := make([]Triple, 0, len(ts))
	for _, t := range ts {
		tr, err := t.GetTriple()
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

//go:build !race

package match

// raceEnabled is false in uninstrumented builds; see race_enabled_test.go.
const raceEnabled = false

package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdfterm"
)

func govAliases() *rdfterm.AliasSet {
	return rdfterm.Default().With(
		rdfterm.Alias{Prefix: "gov", Namespace: "http://www.us.gov#"},
		rdfterm.Alias{Prefix: "id", Namespace: "http://www.us.id#"},
	)
}

func newStoreWithModel(t *testing.T, models ...string) *Store {
	t.Helper()
	s := New()
	for _, m := range models {
		if _, err := s.CreateRDFModel(m, m+"data", "triple"); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestCreateModel(t *testing.T) {
	s := New()
	id, err := s.CreateRDFModel("cia", "ciadata", "triple")
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 { // first model ID in the paper's examples (Figure 6)
		t.Errorf("first model ID = %d, want 7", id)
	}
	got, err := s.GetModelID("cia")
	if err != nil || got != id {
		t.Fatalf("GetModelID = %d, %v", got, err)
	}
	if _, err := s.CreateRDFModel("cia", "x", "y"); !errors.Is(err, ErrDuplicateModel) {
		t.Fatalf("duplicate model: %v", err)
	}
	if _, err := s.GetModelID("nsa"); !errors.Is(err, ErrNoSuchModel) {
		t.Fatalf("missing model: %v", err)
	}
	if _, err := s.CreateRDFModel("", "x", "y"); err == nil {
		t.Fatal("empty model name accepted")
	}
	if names, err := s.ModelNames(); err != nil || len(names) != 1 || names[0] != "cia" {
		t.Fatalf("ModelNames = %v, %v", names, err)
	}
	if _, err := s.ModelView("cia"); err != nil {
		t.Fatalf("model view missing: %v", err)
	}
}

func TestInsertTripleBasics(t *testing.T) {
	s := newStoreWithModel(t, "cia")
	a := govAliases()
	ts, err := s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	if err != nil {
		t.Fatal(err)
	}
	if ts.TID != 2051 { // first LINK_ID in the paper's examples
		t.Errorf("first LINK_ID = %d, want 2051", ts.TID)
	}
	if ts.SID != 1068 { // first VALUE_ID in the paper's examples
		t.Errorf("first VALUE_ID = %d, want 1068", ts.SID)
	}
	tr, err := ts.GetTriple()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Subject.Value != "http://www.us.gov#files" {
		t.Errorf("subject = %v", tr.Subject)
	}
	sub, _ := ts.GetSubject()
	prop, _ := ts.GetProperty()
	obj, _ := ts.GetObject()
	if sub != "http://www.us.gov#files" || prop != "http://www.us.gov#terrorSuspect" || obj != "http://www.us.id#JohnDoe" {
		t.Errorf("member functions = %q %q %q", sub, prop, obj)
	}
	n, _ := s.NumTriples("cia")
	if n != 1 {
		t.Errorf("NumTriples = %d", n)
	}
	if _, err := s.NewTripleS("nope", "gov:a", "gov:b", "c", a); !errors.Is(err, ErrNoSuchModel) {
		t.Fatalf("insert into missing model: %v", err)
	}
}

// TestFigure3GraphShape verifies the node-reuse/link-per-triple structure
// of Figure 3: three triples S1-P1-O1, S1-P2-O2, S2-P2-O2 yield 4 nodes
// and 3 links; P's are not nodes.
func TestFigure3GraphShape(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := rdfterm.NewAliasSet(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
	for _, tr := range [][3]string{
		{"x:S1", "x:P1", "x:O1"},
		{"x:S1", "x:P2", "x:O2"},
		{"x:S2", "x:P2", "x:O2"},
	} {
		if _, err := s.NewTripleS("m", tr[0], tr[1], tr[2], a); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := s.NumTriples("m"); got != 3 {
		t.Errorf("links = %d, want 3", got)
	}
	if got := s.NumNodes(); got != 4 { // S1 S2 O1 O2
		t.Errorf("nodes = %d, want 4", got)
	}
	if got := s.NumValues(); got != 6 { // S1 S2 O1 O2 P1 P2
		t.Errorf("values = %d, want 6", got)
	}
}

// TestFigure6SharedIDs reproduces the Figure 2/6 scenario: the repeated
// triple across CIA/DHS/FBI shares value IDs but gets distinct link IDs.
func TestFigure6SharedIDs(t *testing.T) {
	s := newStoreWithModel(t, "cia", "dhs", "fbi")
	a := govAliases()
	cia1, err := s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	if err != nil {
		t.Fatal(err)
	}
	cia2, _ := s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JaneDoe", a)
	dhs1, _ := s.NewTripleS("dhs", "id:JimDoe", "gov:terrorAction", "bombing", a)
	dhs2, _ := s.NewTripleS("dhs", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	fbi1, _ := s.NewTripleS("fbi", "id:JohnDoe", "gov:enteredCountry", "June-20-2000", a)
	fbi2, _ := s.NewTripleS("fbi", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)

	// The repeated triple shares S/P/O value IDs across all three models
	// (paper: "each member of the IC will have the same subject ID,
	// predicate ID, and object ID for the repeated triple").
	for _, ts := range []TripleS{dhs2, fbi2} {
		if ts.SID != cia1.SID || ts.PID != cia1.PID || ts.OID != cia1.OID {
			t.Errorf("value IDs not shared: %v vs %v", ts, cia1)
		}
	}
	// But every model stores its own link (new link per triple insert).
	ids := map[int64]bool{}
	for _, ts := range []TripleS{cia1, cia2, dhs1, dhs2, fbi1, fbi2} {
		if ids[ts.TID] {
			t.Errorf("duplicate LINK_ID %d across models", ts.TID)
		}
		ids[ts.TID] = true
	}
	// Model IDs differ.
	if cia1.MID == dhs2.MID || dhs2.MID == fbi2.MID {
		t.Error("model IDs not distinct")
	}
	// Figure 6's concrete IDs: subject 1068, predicate 1070, object 1069?
	// The paper lists (1068, 1070, 1069); our interning order is subject,
	// predicate, object → (1068, 1069, 1070). Only stability matters.
	if cia1.SID != 1068 {
		t.Errorf("subject VALUE_ID = %d, want 1068", cia1.SID)
	}
}

func TestDuplicateInsertBumpsCost(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	first, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	second, err := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	if err != nil {
		t.Fatal(err)
	}
	if second.TID != first.TID {
		t.Fatalf("duplicate insert created new link %d != %d", second.TID, first.TID)
	}
	info, _ := s.LinkInfo(first.TID)
	if info.Cost != 2 {
		t.Errorf("COST = %d, want 2", info.Cost)
	}
	if n, _ := s.NumTriples("m"); n != 1 {
		t.Errorf("NumTriples = %d, want 1", n)
	}
}

func TestDeleteTripleCostAndNodeCleanup(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a) // COST=2
	s.NewTripleS("m", "gov:a", "gov:p2", "gov:c", a)

	// First delete just decrements COST.
	if err := s.DeleteTriple("m", "gov:a", "gov:p", "gov:b", a); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.NumTriples("m"); n != 2 {
		t.Fatalf("NumTriples after cost decrement = %d", n)
	}
	// Second delete removes the link; node b becomes orphaned, node a
	// stays (still used by the second triple).
	if err := s.DeleteTriple("m", "gov:a", "gov:p", "gov:b", a); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.NumTriples("m"); n != 1 {
		t.Fatalf("NumTriples after delete = %d", n)
	}
	if s.NumNodes() != 2 { // a and c
		t.Errorf("nodes after delete = %d, want 2", s.NumNodes())
	}
	if err := s.DeleteTriple("m", "gov:a", "gov:p", "gov:b", a); !errors.Is(err, ErrNoSuchTriple) {
		t.Fatalf("delete of absent triple: %v", err)
	}
	// Values are never removed (shared across models).
	if s.NumValues() < 5 {
		t.Errorf("values = %d", s.NumValues())
	}
}

func TestIsTriple(t *testing.T) {
	s := newStoreWithModel(t, "m", "other")
	a := govAliases()
	want, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	got, ok, err := s.IsTriple("m", "gov:a", "gov:p", "gov:b", a)
	if err != nil || !ok || got.TID != want.TID {
		t.Fatalf("IsTriple = %v, %v, %v", got, ok, err)
	}
	// Same triple, different model: not present (model scoping).
	if _, ok, _ := s.IsTriple("other", "gov:a", "gov:p", "gov:b", a); ok {
		t.Fatal("triple leaked across models")
	}
	if _, ok, _ := s.IsTriple("m", "gov:a", "gov:p", "gov:zzz", a); ok {
		t.Fatal("absent triple found")
	}
}

func TestBlankNodeModelScoping(t *testing.T) {
	s := newStoreWithModel(t, "m1", "m2")
	a := govAliases()
	t1, _ := s.NewTripleS("m1", "_:b1", "gov:p", "gov:x", a)
	t2, _ := s.NewTripleS("m1", "_:b1", "gov:q", "gov:y", a)
	t3, _ := s.NewTripleS("m2", "_:b1", "gov:p", "gov:x", a)
	if t1.SID != t2.SID {
		t.Error("same blank label in one model must share a node")
	}
	if t1.SID == t3.SID {
		t.Error("same blank label in different models must not share a node")
	}
	sub, _ := t1.GetSubject()
	if !strings.HasPrefix(sub, "_:") {
		t.Errorf("blank subject text = %q", sub)
	}
	// IsTriple resolves the user label through rdf_blank_node$.
	if _, ok, _ := s.IsTriple("m1", "_:b1", "gov:p", "gov:x", a); !ok {
		t.Error("IsTriple failed to resolve blank label")
	}
	if _, ok, _ := s.IsTriple("m2", "_:b2", "gov:p", "gov:x", a); ok {
		t.Error("unknown blank label matched")
	}
}

func TestLongLiteralStorage(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	long := strings.Repeat("s", rdfterm.LongLiteralThreshold+500)
	ts, err := s.InsertTerms("m", rdfterm.NewURI("http://s"), rdfterm.NewURI("http://p"), rdfterm.NewLiteral(long))
	if err != nil {
		t.Fatal(err)
	}
	// GET_OBJECT returns the full text (the CLOB behaviour).
	obj, err := ts.GetObject()
	if err != nil || obj != long {
		t.Fatalf("GetObject len = %d, want %d (err %v)", len(obj), len(long), err)
	}
	term, _ := s.GetValue(ts.OID)
	if term.ValueType() != rdfterm.VTPlainLong {
		t.Errorf("value type = %s, want PLL", term.ValueType())
	}
	// Long values participate in dedup: same long literal interns once.
	ts2, _ := s.InsertTerms("m", rdfterm.NewURI("http://s2"), rdfterm.NewURI("http://p"), rdfterm.NewLiteral(long))
	if ts2.OID != ts.OID {
		t.Error("long literal interned twice")
	}
	_ = a
}

func TestCanonicalObjectMatching(t *testing.T) {
	s := newStoreWithModel(t, "m")
	// Store "1"^^xsd:int; then "01"^^xsd:int should be the SAME triple
	// (canonical object matching via CANON_END_NODE_ID).
	one := rdfterm.NewTypedLiteral("1", rdfterm.XSDInt)
	paddedOne := rdfterm.NewTypedLiteral("01", rdfterm.XSDInt)
	sub, prop := rdfterm.NewURI("http://s"), rdfterm.NewURI("http://p")
	t1, err := s.InsertTerms("m", sub, prop, one)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.InsertTerms("m", sub, prop, paddedOne)
	if err != nil {
		t.Fatal(err)
	}
	if t2.TID != t1.TID {
		t.Errorf("canonically equal objects stored as different triples")
	}
	// IsTripleTerms matches either lexical form.
	if _, ok, _ := s.IsTripleTerms("m", sub, prop, paddedOne); !ok {
		t.Error("IsTriple failed on canonically equal form")
	}
	// A canonically different value is a different triple.
	t3, _ := s.InsertTerms("m", sub, prop, rdfterm.NewTypedLiteral("2", rdfterm.XSDInt))
	if t3.TID == t1.TID {
		t.Error("different values unified")
	}
	info, _ := s.LinkInfo(t1.TID)
	if info.CanonEndID != info.EndNodeID {
		// "1" is already canonical, so CANON == END here.
		t.Errorf("canon id %d != end id %d for canonical input", info.CanonEndID, info.EndNodeID)
	}
}

func TestLinkTypes(t *testing.T) {
	s := newStoreWithModel(t, "m")
	cases := []struct {
		prop string
		want string
	}{
		{rdfterm.RDFType, "RDF_TYPE"},
		{rdfterm.MembershipProperty(3), "RDF_MEMBER"},
		{rdfterm.RDFSubject, "RDF_*"},
		{"http://example.org/p", "STANDARD"},
	}
	for i, c := range cases {
		ts, err := s.InsertTerms("m",
			rdfterm.NewURI(fmt.Sprintf("http://s%d", i)),
			rdfterm.NewURI(c.prop),
			rdfterm.NewURI("http://o"))
		if err != nil {
			t.Fatal(err)
		}
		info, _ := s.LinkInfo(ts.TID)
		if info.LinkType != c.want {
			t.Errorf("LINK_TYPE(%s) = %s, want %s", c.prop, info.LinkType, c.want)
		}
		if info.Context != ContextDirect {
			t.Errorf("CONTEXT = %s, want D", info.Context)
		}
	}
}

func TestModelViewShowsOnlyModelRows(t *testing.T) {
	s := newStoreWithModel(t, "m1", "m2")
	a := govAliases()
	s.NewTripleS("m1", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m1", "gov:a", "gov:p", "gov:c", a)
	s.NewTripleS("m2", "gov:a", "gov:p", "gov:d", a)
	v, err := s.ModelView("m1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("m1 view rows = %d, want 2", v.Len())
	}
}

func TestDropRDFModel(t *testing.T) {
	s := newStoreWithModel(t, "m1", "m2")
	a := govAliases()
	s.NewTripleS("m1", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m1", "_:x", "gov:p", "gov:c", a)
	shared, _ := s.NewTripleS("m2", "gov:a", "gov:p", "gov:b", a)
	if err := s.DropRDFModel("m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetModelID("m1"); !errors.Is(err, ErrNoSuchModel) {
		t.Fatalf("model survived drop: %v", err)
	}
	// m2's copy is intact, including shared nodes.
	tr, err := shared.GetTriple()
	if err != nil || tr.Subject.Value != "http://www.us.gov#a" {
		t.Fatalf("m2 triple damaged: %v %v", tr, err)
	}
	if _, ok, _ := s.IsTriple("m2", "gov:a", "gov:p", "gov:b", a); !ok {
		t.Fatal("m2 triple lost")
	}
	// Node c was only in m1; it must be gone. Nodes a,b survive via m2.
	if s.NumNodes() != 2 {
		t.Errorf("nodes after drop = %d, want 2", s.NumNodes())
	}
	if err := s.DropRDFModel("m1"); !errors.Is(err, ErrNoSuchModel) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestGetTripleByIDAndErrors(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	ts, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	tr, err := s.GetTripleByID(ts.TID)
	if err != nil || tr.Property.Value != "http://www.us.gov#p" {
		t.Fatalf("GetTripleByID = %v, %v", tr, err)
	}
	if _, err := s.GetTripleByID(999999); !errors.Is(err, ErrNoSuchTriple) {
		t.Fatalf("missing link: %v", err)
	}
	if _, err := s.GetValue(999999); !errors.Is(err, ErrNoSuchValue) {
		t.Fatalf("missing value: %v", err)
	}
	var zero TripleS
	if _, err := zero.GetTriple(); err == nil {
		t.Fatal("zero TripleS GetTriple succeeded")
	}
	if _, err := zero.GetSubject(); err == nil {
		t.Fatal("zero TripleS GetSubject succeeded")
	}
}

func TestFind(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	s.NewTripleS("m", "gov:s1", "gov:p1", "gov:o1", a)
	s.NewTripleS("m", "gov:s1", "gov:p2", "gov:o2", a)
	s.NewTripleS("m", "gov:s2", "gov:p2", "gov:o2", a)
	s.NewTripleS("m", "gov:s2", "gov:p2", `"lit"`, a)

	sub := rdfterm.NewURI("http://www.us.gov#s1")
	prop := rdfterm.NewURI("http://www.us.gov#p2")
	obj := rdfterm.NewURI("http://www.us.gov#o2")
	lit := rdfterm.NewLiteral("lit")

	cases := []struct {
		pat  Pattern
		want int
	}{
		{Pattern{}, 4},
		{Pattern{Subject: &sub}, 2},
		{Pattern{Predicate: &prop}, 3},
		{Pattern{Object: &obj}, 2},
		{Pattern{Object: &lit}, 1},
		{Pattern{Subject: &sub, Predicate: &prop}, 1},
		{Pattern{Subject: &sub, Predicate: &prop, Object: &obj}, 1},
		{Pattern{Predicate: &prop, Object: &obj}, 2},
		{Pattern{Subject: P(rdfterm.NewURI("http://nope"))}, 0},
	}
	for i, c := range cases {
		got, err := s.Find("m", c.pat)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != c.want {
			t.Errorf("case %d: Find returned %d, want %d", i, len(got), c.want)
		}
	}
	if _, err := s.Find("nope", Pattern{}); !errors.Is(err, ErrNoSuchModel) {
		t.Fatalf("Find on missing model: %v", err)
	}
}

func TestFindModels(t *testing.T) {
	s := newStoreWithModel(t, "cia", "dhs")
	a := govAliases()
	s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	s.NewTripleS("dhs", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	prop := rdfterm.NewURI("http://www.us.gov#terrorSuspect")
	all, err := s.FindModels([]string{"cia", "dhs"}, Pattern{Predicate: &prop})
	if err != nil || len(all) != 2 {
		t.Fatalf("FindModels = %d, %v", len(all), err)
	}
}

func TestPredicateMustBeURI(t *testing.T) {
	s := newStoreWithModel(t, "m")
	_, err := s.InsertTerms("m", rdfterm.NewURI("http://s"), rdfterm.NewLiteral("p"), rdfterm.NewURI("http://o"))
	if err == nil {
		t.Fatal("literal predicate accepted")
	}
}

func TestReconstructTripleS(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	ts, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	re := s.ReconstructTripleS(ts.TID, ts.MID, ts.SID, ts.PID, ts.OID)
	sub, err := re.GetSubject()
	if err != nil || sub != "http://www.us.gov#a" {
		t.Fatalf("reconstructed GetSubject = %q, %v", sub, err)
	}
	if re.IsZero() {
		t.Fatal("reconstructed TripleS is zero")
	}
}

func TestValueRow(t *testing.T) {
	s := newStoreWithModel(t, "m")
	ts, err := s.InsertTerms("m",
		rdfterm.NewURI("http://s"),
		rdfterm.NewURI("http://p"),
		rdfterm.NewLangLiteral("bonjour", "fr"))
	if err != nil {
		t.Fatal(err)
	}
	term, err := s.GetValue(ts.OID)
	if err != nil {
		t.Fatal(err)
	}
	if term.Language != "fr" || term.Value != "bonjour" {
		t.Errorf("lang literal round trip = %v", term)
	}
	typed, _ := s.InsertTerms("m",
		rdfterm.NewURI("http://s"),
		rdfterm.NewURI("http://p2"),
		rdfterm.NewTypedLiteral("2000-06-20", rdfterm.XSDDate))
	term, _ = s.GetValue(typed.OID)
	if term.Datatype != rdfterm.XSDDate {
		t.Errorf("typed literal round trip = %v", term)
	}
}

func TestTripleString(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	ts, _ := s.NewTripleS("m", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	tr, _ := ts.GetTriple()
	if got := tr.String(); !strings.Contains(got, "terrorSuspect") {
		t.Errorf("Triple.String = %q", got)
	}
	if got := ts.String(); !strings.HasPrefix(got, "SDO_RDF_TRIPLE_S (") {
		t.Errorf("TripleS.String = %q", got)
	}
}

// The store's COST column doubles as the NDM link cost; check totals are
// visible through reldb directly (Experiment I's flat query path).
func TestFlatTableAccess(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	links := s.Database().MustTable(TableLink)
	if links.Len() != 1 {
		t.Fatalf("rdf_link$ rows = %d", links.Len())
	}
	values := s.Database().MustTable(TableValue)
	if values.Len() != 3 {
		t.Fatalf("rdf_value$ rows = %d", values.Len())
	}
}

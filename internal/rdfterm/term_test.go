package rdfterm

import (
	"strings"
	"testing"
)

func TestConstructorsAndValueTypes(t *testing.T) {
	long := strings.Repeat("x", LongLiteralThreshold+1)
	cases := []struct {
		term Term
		want string
	}{
		{NewURI("http://example.org/a"), VTUri},
		{NewBlank("b1"), VTBlank},
		{NewBlank("_:b1"), VTBlank}, // prefix stripped
		{NewLiteral("hello"), VTPlain},
		{NewLangLiteral("hello", "en"), VTPlainLang},
		{NewTypedLiteral("25", XSDInt), VTTyped},
		{NewLiteral(long), VTPlainLong},
		{NewLangLiteral(long, "en"), VTPlainLong},
		{NewTypedLiteral(long, XSDString), VTTypedLong},
	}
	for _, c := range cases {
		if got := c.term.ValueType(); got != c.want {
			t.Errorf("ValueType(%s) = %s, want %s", c.term, got, c.want)
		}
		if err := c.term.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", c.term, err)
		}
	}
	if NewBlank("_:b1").Value != "b1" {
		t.Error("NewBlank did not strip prefix")
	}
}

func TestLongLiteralBoundary(t *testing.T) {
	exact := strings.Repeat("x", LongLiteralThreshold)
	if NewLiteral(exact).IsLong() {
		t.Error("literal of exactly 4000 chars should not be long")
	}
	if !NewLiteral(exact + "x").IsLong() {
		t.Error("literal of 4001 chars should be long")
	}
	if NewURI(exact + "xxxx").IsLong() {
		t.Error("URIs are never long literals")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Term{
		{},           // zero
		NewURI(""),   // empty URI
		NewBlank(""), // empty label
		{Kind: Literal, Value: "x", Language: "en", Datatype: XSDString}, // both
		{Kind: URI, Value: "u", Language: "en"},                          // URI with lang
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%#v) accepted malformed term", b)
		}
	}
}

func TestLexicalAndString(t *testing.T) {
	if got := NewBlank("b1").Lexical(); got != "_:b1" {
		t.Errorf("blank Lexical = %q", got)
	}
	if got := NewURI("u:a").Lexical(); got != "u:a" {
		t.Errorf("URI Lexical = %q", got)
	}
	if got := NewLangLiteral("hi", "en").String(); got != `"hi"@en` {
		t.Errorf("String = %q", got)
	}
	if got := NewTypedLiteral("1", XSDInt).String(); got != `"1"^^<`+XSDInt+`>` {
		t.Errorf("String = %q", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	terms := []Term{
		NewURI("a"), NewURI("b"), NewBlank("a"),
		NewLiteral("a"), NewLangLiteral("a", "en"), NewTypedLiteral("a", XSDInt),
	}
	for i, a := range terms {
		for j, b := range terms {
			c1, c2 := a.Compare(b), b.Compare(a)
			if (i == j) != (c1 == 0) {
				t.Errorf("Compare(%s,%s) = %d", a, b, c1)
			}
			if c1 != -c2 && !(c1 == 0 && c2 == 0) {
				t.Errorf("Compare not antisymmetric for %s,%s", a, b)
			}
		}
	}
}

func TestVocabLinkType(t *testing.T) {
	cases := map[string]string{
		RDFType:                    "RDF_TYPE",
		MembershipProperty(1):      "RDF_MEMBER",
		MembershipProperty(42):     "RDF_MEMBER",
		RDFSubject:                 "RDF_*",
		RDFPredicate:               "RDF_*",
		"http://example.org/p":     "STANDARD",
		RDFSSeeAlso:                "STANDARD", // rdfs:, not rdf:
		RDFNS + "_0":               "RDF_*",    // not a valid member index
		RDFNS + "_abc":             "RDF_*",
		"http://www.us.gov#source": "STANDARD",
	}
	for uri, want := range cases {
		if got := LinkType(uri); got != want {
			t.Errorf("LinkType(%s) = %s, want %s", uri, got, want)
		}
	}
}

func TestIsMembershipProperty(t *testing.T) {
	if n, ok := IsMembershipProperty(MembershipProperty(7)); !ok || n != 7 {
		t.Errorf("round trip = (%d,%v)", n, ok)
	}
	for _, bad := range []string{RDFNS + "_", RDFNS + "_0", RDFNS + "_-1", RDFNS + "_x", RDFType} {
		if _, ok := IsMembershipProperty(bad); ok {
			t.Errorf("IsMembershipProperty(%q) = true", bad)
		}
	}
}

func TestAliasExpandCompact(t *testing.T) {
	s := Default().With(Alias{Prefix: "gov", Namespace: "http://www.us.gov#"})
	if got := s.Expand("gov:files"); got != "http://www.us.gov#files" {
		t.Errorf("Expand = %q", got)
	}
	if got := s.Expand("rdf:type"); got != RDFType {
		t.Errorf("Expand(rdf:type) = %q", got)
	}
	if got := s.Expand("unknown:x"); got != "unknown:x" {
		t.Errorf("Expand(unknown) = %q", got)
	}
	if got := s.Expand("noColon"); got != "noColon" {
		t.Errorf("Expand(noColon) = %q", got)
	}
	if got := s.Compact("http://www.us.gov#files"); got != "gov:files" {
		t.Errorf("Compact = %q", got)
	}
	if got := s.Compact("http://other/x"); got != "http://other/x" {
		t.Errorf("Compact(unmatched) = %q", got)
	}
}

func TestAliasWithDoesNotMutate(t *testing.T) {
	base := Default()
	base.With(Alias{Prefix: "g", Namespace: "http://g#"})
	if _, ok := base.Lookup("g"); ok {
		t.Error("With mutated the receiver")
	}
	var nilSet *AliasSet
	if got := nilSet.Expand("rdf:type"); got != "rdf:type" {
		t.Errorf("nil set Expand = %q", got)
	}
	derived := nilSet.With(Alias{Prefix: "g", Namespace: "http://g#"})
	if got := derived.Expand("g:x"); got != "http://g#x" {
		t.Errorf("With on nil set = %q", got)
	}
}

func TestAliasValidate(t *testing.T) {
	if err := (Alias{Prefix: "a", Namespace: "http://a#"}).Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Alias{{}, {Prefix: "a"}, {Namespace: "n"}, {Prefix: "a:b", Namespace: "n"}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted bad alias", bad)
		}
	}
}

func TestAliasPrefixes(t *testing.T) {
	got := Default().Prefixes()
	want := []string{"owl", "rdf", "rdfs", "xsd"}
	if len(got) != len(want) {
		t.Fatalf("Prefixes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Prefixes = %v, want %v", got, want)
		}
	}
}

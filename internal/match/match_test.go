package match

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rdfterm"
)

func govAliases() *rdfterm.AliasSet {
	return rdfterm.Default().With(
		rdfterm.Alias{Prefix: "gov", Namespace: "http://www.us.gov#"},
		rdfterm.Alias{Prefix: "id", Namespace: "http://www.us.id#"},
	)
}

func icStore(t *testing.T) *core.Store {
	t.Helper()
	s := core.New()
	a := govAliases()
	for _, m := range []string{"cia", "dhs", "fbi"} {
		if _, err := s.CreateRDFModel(m, m+"data", "triple"); err != nil {
			t.Fatal(err)
		}
	}
	ins := func(m, sub, p, o string) {
		t.Helper()
		if _, err := s.NewTripleS(m, sub, p, o, a); err != nil {
			t.Fatal(err)
		}
	}
	// Figure 2 data.
	ins("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe")
	ins("cia", "gov:files", "gov:terrorSuspect", "id:JaneDoe")
	ins("dhs", "id:JimDoe", "gov:terrorAction", "bombing")
	ins("dhs", "gov:files", "gov:terrorSuspect", "id:JohnDoe")
	ins("fbi", "id:JohnDoe", "gov:enteredCountry", "June-20-2000")
	ins("fbi", "gov:files", "gov:terrorSuspect", "id:JohnDoe")
	return s
}

func TestParseQuery(t *testing.T) {
	a := govAliases()
	pats, err := ParseQuery(`(?x gov:terrorAction "bombing") (gov:files gov:terrorSuspect ?x)`, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 {
		t.Fatalf("parsed %d patterns", len(pats))
	}
	if pats[0].S.Var != "x" || pats[0].P.Term.Value != "http://www.us.gov#terrorAction" {
		t.Errorf("pattern 0 = %v", pats[0])
	}
	if pats[0].O.Term.Kind != rdfterm.Literal || pats[0].O.Term.Value != "bombing" {
		t.Errorf("pattern 0 object = %v", pats[0].O)
	}
	if got := pats[1].String(); got != "(<http://www.us.gov#files> <http://www.us.gov#terrorSuspect> ?x)" {
		t.Errorf("String = %q", got)
	}
	if vars := pats[0].Vars(); len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestParseQueryForms(t *testing.T) {
	a := govAliases()
	good := []string{
		`(?s ?p ?o)`,
		`(<http://a> <http://p> "lit with spaces")`,
		`(?s rdf:type rdf:Statement)`,
		`(_:b1 gov:p ?o)`,
		`(?s gov:p "25"^^xsd:int)`,
		`(?s gov:p "hi"@en)`,
		"(?a gov:p ?b)\n(?b gov:q ?c)",
	}
	for _, q := range good {
		if _, err := ParseQuery(q, a); err != nil {
			t.Errorf("ParseQuery(%q): %v", q, err)
		}
	}
	bad := []string{
		``, `()`, `(?s gov:p)`, `(?s gov:p ?o`, `?s gov:p ?o)`,
		`(?s "lit" ?o)`,    // literal predicate
		`("lit" gov:p ?o)`, // literal subject
		`(? gov:p ?o)`,     // empty var
		`(?s gov:p "unterminated)`,
	}
	for _, q := range bad {
		if _, err := ParseQuery(q, a); err == nil {
			t.Errorf("ParseQuery(%q) accepted", q)
		}
	}
}

func TestMatchSinglePattern(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(gov:files gov:terrorSuspect ?name)`, Options{
		Models:  []string{"cia", "dhs", "fbi"},
		Aliases: govAliases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// cia: JohnDoe, JaneDoe; dhs: JohnDoe; fbi: JohnDoe → 4 rows (per-model
	// union keeps duplicates, like the SQL table function).
	if rs.Len() != 4 {
		t.Fatalf("rows = %d, want 4", rs.Len())
	}
	names := map[string]int{}
	for i := 0; i < rs.Len(); i++ {
		term, ok := rs.Get(i, "name")
		if !ok {
			t.Fatal("missing ?name binding")
		}
		names[term.Value]++
	}
	if names["http://www.us.id#JohnDoe"] != 3 || names["http://www.us.id#JaneDoe"] != 1 {
		t.Fatalf("names = %v", names)
	}
}

func TestMatchJoin(t *testing.T) {
	s := icStore(t)
	// Who entered the country and is a terror suspect?
	rs, err := Match(s, `(gov:files gov:terrorSuspect ?x) (?x gov:enteredCountry ?d)`, Options{
		Models:  []string{"cia", "dhs", "fbi"},
		Aliases: govAliases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// JohnDoe is a suspect in 3 models, entered once → 3 joined rows.
	if rs.Len() != 3 {
		t.Fatalf("rows = %d, want 3", rs.Len())
	}
	d, _ := rs.Get(0, "d")
	if d.Value != "June-20-2000" {
		t.Errorf("?d = %v", d)
	}
	if rs.Col("x") < 0 || rs.Col("nope") != -1 {
		t.Error("Col lookup wrong")
	}
}

func TestMatchVariablePredicate(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(id:JohnDoe ?p ?o)`, Options{
		Models:  []string{"fbi"},
		Aliases: govAliases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("rows = %d", rs.Len())
	}
	p, _ := rs.Get(0, "p")
	if p.Value != "http://www.us.gov#enteredCountry" {
		t.Errorf("?p = %v", p)
	}
}

func TestMatchRepeatedVariable(t *testing.T) {
	s := core.New()
	s.CreateRDFModel("m", "", "")
	a := govAliases()
	s.NewTripleS("m", "gov:a", "gov:knows", "gov:a", a) // self-loop
	s.NewTripleS("m", "gov:a", "gov:knows", "gov:b", a)
	rs, err := Match(s, `(?x gov:knows ?x)`, Options{Models: []string{"m"}, Aliases: a})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("self-loop rows = %d, want 1", rs.Len())
	}
}

func TestMatchFilter(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(gov:files gov:terrorSuspect ?name)`, Options{
		Models:  []string{"cia"},
		Aliases: govAliases(),
		Filter:  `?name != "http://www.us.id#JohnDoe"`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("filtered rows = %d", rs.Len())
	}
	name, _ := rs.Get(0, "name")
	if name.Value != "http://www.us.id#JaneDoe" {
		t.Errorf("name = %v", name)
	}
}

func TestMatchFilterLike(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(?s gov:terrorSuspect ?name)`, Options{
		Models:  []string{"cia"},
		Aliases: govAliases(),
		Filter:  `LIKE(?name, "%Jane%")`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("LIKE rows = %d", rs.Len())
	}
}

func TestMatchCanonicalLiteral(t *testing.T) {
	s := core.New()
	s.CreateRDFModel("m", "", "")
	a := govAliases()
	if _, err := s.NewTripleS("m", "gov:a", "gov:age", `"25"^^xsd:int`, a); err != nil {
		t.Fatal(err)
	}
	// Query with a non-canonical lexical form.
	rs, err := Match(s, `(?s gov:age "+025"^^xsd:int)`, Options{Models: []string{"m"}, Aliases: a})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("canonical match rows = %d, want 1", rs.Len())
	}
}

func TestMatchErrors(t *testing.T) {
	s := icStore(t)
	if _, err := Match(s, `(?s ?p ?o)`, Options{}); err == nil {
		t.Error("no models accepted")
	}
	if _, err := Match(s, `(?s ?p ?o)`, Options{Models: []string{"missing"}}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := Match(s, `bad query`, Options{Models: []string{"cia"}}); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := Match(s, `(?s ?p ?o)`, Options{Models: []string{"cia"}, Filter: "?s ~~ 3"}); err == nil {
		t.Error("bad filter accepted")
	}
	if _, err := Match(s, `(?s ?p ?o)`, Options{Models: []string{"cia"}, Rulebases: []string{"RDFS"}}); err == nil {
		t.Error("rulebases without resolver accepted")
	}
}

func TestMatchNoResults(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(gov:nothing gov:matches ?x)`, Options{
		Models: []string{"cia"}, Aliases: govAliases(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("rows = %d", rs.Len())
	}
	// Vars are still reported.
	if len(rs.Vars) != 1 || rs.Vars[0] != "x" {
		t.Fatalf("Vars = %v", rs.Vars)
	}
}

func TestMatchStringsAndProjectionOrder(t *testing.T) {
	s := icStore(t)
	rs, err := Match(s, `(?who gov:terrorAction ?what)`, Options{
		Models: []string{"dhs"}, Aliases: govAliases(),
	})
	if err != nil || rs.Len() != 1 {
		t.Fatalf("rs = %v, %v", rs, err)
	}
	if strings.Join(rs.Vars, ",") != "who,what" {
		t.Fatalf("Vars = %v", rs.Vars)
	}
	row := rs.Strings(0)
	if row[0] != "http://www.us.id#JimDoe" || row[1] != "bombing" {
		t.Fatalf("Strings = %v", row)
	}
}

func TestPlanOrderPrefersBoundPatterns(t *testing.T) {
	a := govAliases()
	pats, _ := ParseQuery(`(?x ?p ?y) (gov:files gov:terrorSuspect ?x)`, a)
	order := planOrder(pats)
	if order[0] != 1 {
		t.Fatalf("planOrder = %v, want bound pattern first", order)
	}
}

func TestFilterEval(t *testing.T) {
	bind := func(pairs ...string) map[string]rdfterm.Term {
		m := map[string]rdfterm.Term{}
		for i := 0; i+1 < len(pairs); i += 2 {
			m[pairs[i]] = rdfterm.NewLiteral(pairs[i+1])
		}
		return m
	}
	cases := []struct {
		expr string
		b    map[string]rdfterm.Term
		want bool
	}{
		{`?x = "a"`, bind("x", "a"), true},
		{`?x = "a"`, bind("x", "b"), false},
		{`?x != "a"`, bind("x", "b"), true},
		{`?x <> "a"`, bind("x", "b"), true},
		{`?x < "5"`, bind("x", "10"), false}, // numeric: 10 > 5
		{`?x > "5"`, bind("x", "10"), true},
		{`?x <= "10"`, bind("x", "10"), true},
		{`?x >= "11"`, bind("x", "10"), false},
		{`?x < "b"`, bind("x", "a"), true}, // string compare
		{`?x = "a" AND ?y = "b"`, bind("x", "a", "y", "b"), true},
		{`?x = "a" AND ?y = "c"`, bind("x", "a", "y", "b"), false},
		{`?x = "z" OR ?y = "b"`, bind("x", "a", "y", "b"), true},
		{`NOT ?x = "a"`, bind("x", "b"), true},
		{`(?x = "a" OR ?x = "b") AND NOT ?x = "b"`, bind("x", "a"), true},
		{`LIKE(?x, "pre%")`, bind("x", "prefix"), true},
		{`LIKE(?x, "%fix")`, bind("x", "prefix"), true},
		{`LIKE(?x, "%efi%")`, bind("x", "prefix"), true},
		{`LIKE(?x, "exact")`, bind("x", "exact"), true},
		{`LIKE(?x, "pre%")`, bind("x", "nope"), false},
		{`?x = "a"`, bind(), false}, // unbound var → false
		{`?x = ?y`, bind("x", "a", "y", "a"), true},
		{`5 < 6`, bind(), true},
		{``, bind(), true}, // empty filter accepts
	}
	for _, c := range cases {
		f, err := ParseFilter(c.expr)
		if err != nil {
			t.Errorf("ParseFilter(%q): %v", c.expr, err)
			continue
		}
		if got := f.Eval(c.b); got != c.want {
			t.Errorf("Eval(%q, %v) = %v, want %v", c.expr, c.b, got, c.want)
		}
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		`?x ~~ "a"`, `?x =`, `= "a"`, `(?x = "a"`, `?x = "a" AND`,
		`LIKE(?x)`, `LIKE ?x, "a")`, `? = "a"`, `?x = "unterminated`,
		`?x = "a" garbage`,
	}
	for _, expr := range bad {
		if _, err := ParseFilter(expr); err == nil {
			t.Errorf("ParseFilter(%q) accepted", expr)
		}
	}
}

// Cross-check: a 2-pattern join computed by Match equals a nested-loop
// reference implementation over Find.
func TestMatchAgainstReferenceJoin(t *testing.T) {
	s := icStore(t)
	a := govAliases()
	rs, err := Match(s, `(gov:files gov:terrorSuspect ?x) (?x gov:enteredCountry ?d)`, Options{
		Models: []string{"cia", "dhs", "fbi"}, Aliases: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: enumerate all suspects, then all enteredCountry rows.
	suspects, _ := s.FindModels([]string{"cia", "dhs", "fbi"}, core.Pattern{
		Subject:   core.P(rdfterm.NewURI("http://www.us.gov#files")),
		Predicate: core.P(rdfterm.NewURI("http://www.us.gov#terrorSuspect")),
	})
	var want []string
	for _, ts := range suspects {
		obj, _ := ts.GetObject()
		entered, _ := s.FindModels([]string{"cia", "dhs", "fbi"}, core.Pattern{
			Subject:   core.P(rdfterm.NewURI(obj)),
			Predicate: core.P(rdfterm.NewURI("http://www.us.gov#enteredCountry")),
		})
		for _, e := range entered {
			d, _ := e.GetObject()
			want = append(want, obj+"|"+d)
		}
	}
	var got []string
	for i := 0; i < rs.Len(); i++ {
		row := rs.Strings(i)
		got = append(got, row[0]+"|"+row[1])
	}
	sort.Strings(want)
	sort.Strings(got)
	if strings.Join(want, ";") != strings.Join(got, ";") {
		t.Fatalf("match = %v, reference = %v", got, want)
	}
}

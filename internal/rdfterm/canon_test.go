package rdfterm

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestCanonicalIntegers(t *testing.T) {
	cases := map[string]string{
		"25":                             "25",
		"+25":                            "25",
		"025":                            "25",
		"-007":                           "-7",
		"0":                              "0",
		"-0":                             "0",
		" 12 ":                           "12",
		"123456789012345678901234567890": "123456789012345678901234567890",
	}
	for in, want := range cases {
		got := Canonical(NewTypedLiteral(in, XSDInt))
		if got.Value != want {
			t.Errorf("Canonical(%q^^xsd:int) = %q, want %q", in, got.Value, want)
		}
	}
}

func TestCanonicalDecimal(t *testing.T) {
	cases := map[string]string{
		"2.50":  "2.5",
		"2":     "2.0",
		"+2.0":  "2.0",
		"-0.50": "-0.5",
		".5":    "0.5",
	}
	for in, want := range cases {
		got := Canonical(NewTypedLiteral(in, XSDDecimal))
		if got.Value != want {
			t.Errorf("Canonical(%q^^xsd:decimal) = %q, want %q", in, got.Value, want)
		}
	}
	// Exponent form is not valid xsd:decimal; term passes through.
	if got := Canonical(NewTypedLiteral("1e2", XSDDecimal)); got.Value != "1e2" {
		t.Errorf("invalid decimal changed: %q", got.Value)
	}
}

func TestCanonicalFloat(t *testing.T) {
	cases := map[string]string{
		"100":  "1.0E2",
		"1.5":  "1.5E0",
		"0.15": "1.5E-1",
		"0":    "0.0E0", // ParseFloat(0) → 0E+00
		"-2e3": "-2.0E3",
		"NaN":  "NaN",
		"INF":  "INF",
		"+INF": "INF",
		"-INF": "-INF",
	}
	for in, want := range cases {
		got := Canonical(NewTypedLiteral(in, XSDDouble))
		if got.Value != want {
			t.Errorf("Canonical(%q^^xsd:double) = %q, want %q", in, got.Value, want)
		}
	}
}

func TestCanonicalBoolean(t *testing.T) {
	cases := map[string]string{"true": "true", "false": "false", "1": "true", "0": "false"}
	for in, want := range cases {
		got := Canonical(NewTypedLiteral(in, XSDBoolean))
		if got.Value != want {
			t.Errorf("Canonical(%q^^xsd:boolean) = %q, want %q", in, got.Value, want)
		}
	}
	if got := Canonical(NewTypedLiteral("yes", XSDBoolean)); got.Value != "yes" {
		t.Error("invalid boolean should pass through unchanged")
	}
}

func TestCanonicalLanguageTagLowercased(t *testing.T) {
	got := Canonical(NewLangLiteral("Hello", "EN"))
	if got.Language != "en" || got.Value != "Hello" {
		t.Errorf("Canonical lang literal = %v", got)
	}
}

func TestCanonicalPassThrough(t *testing.T) {
	// URIs, blanks, plain literals, unsupported datatypes: unchanged.
	for _, term := range []Term{
		NewURI("http://a"),
		NewBlank("b"),
		NewLiteral("  keep spaces  "),
		NewTypedLiteral("raw", "http://example.org/customType"),
		NewTypedLiteral("<x/>", RDFXMLLit),
	} {
		if got := Canonical(term); got != term {
			t.Errorf("Canonical(%v) = %v, want unchanged", term, got)
		}
	}
}

func TestCanonicalDateTimeUppercased(t *testing.T) {
	got := Canonical(NewTypedLiteral("2000-06-20t10:00:00z", XSDDateTime))
	if got.Value != "2000-06-20T10:00:00Z" {
		t.Errorf("dateTime canonical = %q", got.Value)
	}
}

// Property: canonicalization is idempotent.
func TestQuickCanonicalIdempotent(t *testing.T) {
	f := func(n int64, dtPick uint8) bool {
		dts := []string{XSDInt, XSDInteger, XSDDecimal, XSDDouble, XSDBoolean, XSDString}
		dt := dts[int(dtPick)%len(dts)]
		term := NewTypedLiteral(strconv.FormatInt(n, 10), dt)
		once := Canonical(term)
		twice := Canonical(once)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: canonical integer parsing agrees with strconv for int64 range.
func TestQuickCanonicalIntMatchesStrconv(t *testing.T) {
	f := func(n int64) bool {
		got := Canonical(NewTypedLiteral(strconv.FormatInt(n, 10), XSDInteger))
		return got.Value == strconv.FormatInt(n, 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: two lexically different forms of the same integer canonicalize
// to the same term (the CANON_END_NODE_ID unification the store needs).
func TestQuickCanonicalUnifiesInts(t *testing.T) {
	f := func(n int32) bool {
		a := Canonical(NewTypedLiteral(strconv.FormatInt(int64(n), 10), XSDInt))
		pad := "+0"
		if n < 0 {
			pad = "-0"
		}
		abs := int64(n)
		if abs < 0 {
			abs = -abs
		}
		b := Canonical(NewTypedLiteral(pad+strconv.FormatInt(abs, 10), XSDInt))
		if n == 0 {
			// "-00" canonicalizes to "0" too.
			return a == b
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package match

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/rdfterm"
)

// ErrBudget is the sentinel for a query that exceeded its caller-imposed
// resource budget (Options.MaxBindings). The query is aborted rather
// than truncated: a partial join result is not a prefix of the true
// result, so serving it would be silently wrong. Callers select the
// class with errors.Is(err, ErrBudget); the full chain names the budget
// that was blown.
var ErrBudget = errors.New("match: query budget exceeded")

// RulebaseResolver resolves (models, rulebases) to the name of the hidden
// model holding the precomputed inferred triples — the rules index of
// §6.1 ("a rules index pre-computes triples that can be inferred from
// applying the rulebases"). internal/inference.Catalog implements it.
type RulebaseResolver interface {
	ResolveIndex(models, rulebases []string) (string, error)
}

// Options configure a Match call, mirroring the SDO_RDF_MATCH arguments
// (§6.1): models, rulebases, aliases, filter.
type Options struct {
	// Models to query (at least one).
	Models []string
	// Rulebases to apply; requires Resolver and a previously created rules
	// index covering exactly these models and rulebases.
	Rulebases []string
	// Resolver locates the rules index (nil when Rulebases is empty).
	Resolver RulebaseResolver
	// Aliases expand prefixed names in the query (rdf:, rdfs:, xsd:, owl:
	// are always available on top of these).
	Aliases *rdfterm.AliasSet
	// Filter is an optional boolean expression over the query variables.
	Filter string
	// Distinct drops duplicate result rows (the per-model union otherwise
	// repeats a binding found in several models, like the SQL table
	// function does).
	Distinct bool
	// OrderBy sorts results by the named variables (lexical order of the
	// bound terms), applied after Filter and Distinct.
	OrderBy []string
	// Trace, when non-nil, is filled with the EXPLAIN-style execution
	// record (plan order, per-stage candidates and timings).
	Trace *Trace
	// Metrics, when non-nil, records query/stage series and receives
	// slow-query events (see NewMetrics).
	Metrics *Metrics
	// SlowQuery, when positive, is the threshold above which a completed
	// query is counted and logged as slow (requires Metrics for the event
	// to land anywhere).
	SlowQuery time.Duration
	// Limit, when positive, caps the number of result rows. Rows beyond
	// the cap are dropped and ResultSet.Truncated is set. With OrderBy
	// the full result is sorted first, so the cap returns the true top-N.
	Limit int
	// MaxBindings, when positive, bounds the intermediate binding set a
	// join stage may produce. A query whose join explodes past the bound
	// is aborted with an ErrBudget error instead of exhausting memory —
	// the admission price of serving untrusted queries.
	MaxBindings int
}

// ResultSet holds match results: Vars in first-occurrence order, one term
// per variable per row.
type ResultSet struct {
	Vars []string
	Rows [][]rdfterm.Term
	// Truncated reports that Options.Limit dropped rows beyond the cap.
	Truncated bool
}

// Col returns the column index of a variable, or -1.
func (r *ResultSet) Col(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// Get returns the binding of variable v in row i.
func (r *ResultSet) Get(i int, v string) (rdfterm.Term, bool) {
	c := r.Col(v)
	if c < 0 || i < 0 || i >= len(r.Rows) {
		return rdfterm.Term{}, false
	}
	return r.Rows[i][c], true
}

// Strings returns row i as lexical strings.
func (r *ResultSet) Strings(i int) []string {
	out := make([]string, len(r.Vars))
	for c, t := range r.Rows[i] {
		out[c] = t.Lexical()
	}
	return out
}

// Len returns the number of rows.
func (r *ResultSet) Len() int { return len(r.Rows) }

// Match is SDO_RDF_MATCH (§6.1): it evaluates the conjunctive triple
// patterns of query over the given models (plus the rules index's inferred
// triples when rulebases are requested), applies the filter, and returns
// the variable bindings.
func Match(store *core.Store, query string, opts Options) (*ResultSet, error) {
	return MatchContext(context.Background(), store, query, opts)
}

// cancelEvery is how many intermediate bindings the join loop processes
// between context checks (the per-pattern scans underneath poll on their
// own cadence via core.FindCtx).
const cancelEvery = 256

// MatchContext is Match with cancellation: the join loop polls ctx
// between bindings and each index scan polls it internally, so a
// combinatorial join aborts promptly — releasing the store's read lock —
// once the deadline passes or the caller cancels.
func MatchContext(ctx context.Context, store *core.Store, query string, opts Options) (*ResultSet, error) {
	if len(opts.Models) == 0 {
		return nil, fmt.Errorf("match: at least one model is required")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("match: %w", err)
	}
	aliases := rdfterm.Default()
	if opts.Aliases != nil {
		aliases = rdfterm.Default().With()
		for _, p := range opts.Aliases.Prefixes() {
			ns, _ := opts.Aliases.Lookup(p)
			aliases = aliases.With(rdfterm.Alias{Prefix: p, Namespace: ns})
		}
	}
	pats, err := ParseQuery(query, aliases)
	if err != nil {
		return nil, err
	}
	filter, err := ParseFilter(opts.Filter)
	if err != nil {
		return nil, err
	}
	scope := append([]string{}, opts.Models...)
	if len(opts.Rulebases) > 0 {
		if opts.Resolver == nil {
			return nil, fmt.Errorf("match: rulebases given without a resolver (create a rules index first)")
		}
		idxModel, err := opts.Resolver.ResolveIndex(opts.Models, opts.Rulebases)
		if err != nil {
			return nil, err
		}
		scope = append(scope, idxModel)
	}
	// Verify models exist up front for a clean error.
	for _, m := range scope {
		if _, err := store.GetModelID(m); err != nil {
			return nil, err
		}
	}

	// Left-deep join over patterns, most-selective-first: patterns with
	// more concrete terms run earlier (cheap heuristic planner).
	//
	// Tracing, metrics, and the slow-query log share one gate: when none
	// is requested the loop takes the untimed path and never calls
	// time.Now (the "zero overhead when disabled" budget, DESIGN.md §7).
	order := planOrder(pats)
	traced := opts.Trace != nil || opts.Metrics != nil || opts.SlowQuery > 0
	var trace *Trace
	var queryStart time.Time
	if traced {
		trace = opts.Trace
		if trace == nil {
			trace = &Trace{}
		}
		trace.Query = query
		trace.PlanOrder = append(trace.PlanOrder[:0], order...)
		trace.Stages = trace.Stages[:0]
		queryStart = time.Now()
	}
	bindings := []map[string]rdfterm.Term{{}}
	polled := 0
	for _, pi := range order {
		pat := pats[pi]
		var stageStart time.Time
		if traced {
			stageStart = time.Now()
		}
		candidates := 0
		var next []map[string]rdfterm.Term
		for _, b := range bindings {
			polled++
			if polled%cancelEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("match: %w", err)
				}
			}
			matches, n, err := findPattern(ctx, store, scope, pat, b)
			if err != nil {
				return nil, err
			}
			candidates += n
			next = append(next, matches...)
			if opts.MaxBindings > 0 && len(next) > opts.MaxBindings {
				return nil, fmt.Errorf("%w: stage %d produced %d intermediate bindings (max %d)",
					ErrBudget, pi, len(next), opts.MaxBindings)
			}
		}
		if traced {
			trace.Stages = append(trace.Stages, StageTrace{
				Index:       pi,
				Pattern:     pat.String(),
				InBindings:  len(bindings),
				Candidates:  candidates,
				OutBindings: len(next),
				Duration:    time.Since(stageStart),
			})
		}
		bindings = next
		if len(bindings) == 0 {
			break
		}
	}

	// Project variables in first-occurrence (textual) order.
	var vars []string
	seen := map[string]bool{}
	for _, pat := range pats {
		for _, v := range pat.Vars() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	rs := &ResultSet{Vars: vars}
	emitted := map[string]bool{}
	for _, b := range bindings {
		if !filter.Eval(b) {
			continue
		}
		row := make([]rdfterm.Term, len(vars))
		for i, v := range vars {
			row[i] = b[v]
		}
		if opts.Distinct {
			key := rowKey(row)
			if emitted[key] {
				continue
			}
			emitted[key] = true
		}
		// Without ORDER BY the cap short-circuits projection; with it the
		// full set must be collected and sorted first so the cap returns
		// the true top-N (truncation happens below, after the sort).
		if opts.Limit > 0 && len(opts.OrderBy) == 0 && len(rs.Rows) == opts.Limit {
			rs.Truncated = true
			break
		}
		rs.Rows = append(rs.Rows, row)
	}
	if len(opts.OrderBy) > 0 {
		if err := rs.sortBy(opts.OrderBy); err != nil {
			return nil, err
		}
		if opts.Limit > 0 && len(rs.Rows) > opts.Limit {
			rs.Rows = rs.Rows[:opts.Limit]
			rs.Truncated = true
		}
	}
	if traced {
		trace.Rows = rs.Len()
		trace.Total = time.Since(queryStart)
		opts.Metrics.onQuery(trace)
		if opts.SlowQuery > 0 && trace.Total >= opts.SlowQuery {
			opts.Metrics.onSlowQuery(trace)
		}
	}
	return rs, nil
}

// rowKey encodes a result row collision-free for DISTINCT.
func rowKey(row []rdfterm.Term) string {
	var b strings.Builder
	for _, t := range row {
		b.WriteString(t.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// sortBy orders rows by the named variables.
func (r *ResultSet) sortBy(vars []string) error {
	cols := make([]int, len(vars))
	for i, v := range vars {
		c := r.Col(v)
		if c < 0 {
			return fmt.Errorf("match: ORDER BY unknown variable ?%s", v)
		}
		cols[i] = c
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		for _, c := range cols {
			if cmp := r.Rows[a][c].Compare(r.Rows[b][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return nil
}

// planOrder returns pattern indexes sorted by decreasing boundness
// (number of concrete terms), stable for equal counts. Variables bound by
// earlier patterns make later ones selective at execution time, so this
// is a reasonable static order without statistics.
func planOrder(pats []TriplePattern) []int {
	order := make([]int, len(pats))
	for i := range order {
		order[i] = i
	}
	bound := func(p TriplePattern) int {
		n := 0
		for _, pt := range []PatternTerm{p.S, p.P, p.O} {
			if !pt.IsVar() {
				n++
			}
		}
		return n
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bound(pats[order[a]]) > bound(pats[order[b]])
	})
	return order
}

// findPattern evaluates one pattern under a partial binding, returning
// the extended bindings plus the number of candidate triples the store
// produced before unification (the stage's scan volume, for tracing).
func findPattern(ctx context.Context, store *core.Store, models []string, pat TriplePattern, b map[string]rdfterm.Term) ([]map[string]rdfterm.Term, int, error) {
	resolve := func(pt PatternTerm) *rdfterm.Term {
		if !pt.IsVar() {
			t := pt.Term
			return &t
		}
		if t, ok := b[pt.Var]; ok {
			t := t
			return &t
		}
		return nil
	}
	cp := core.Pattern{
		Subject:   resolve(pat.S),
		Predicate: resolve(pat.P),
		Object:    resolve(pat.O),
	}
	// Literal subjects can never match (RDF subjects are URIs/blanks).
	if cp.Subject != nil && cp.Subject.Kind == rdfterm.Literal {
		return nil, 0, nil
	}
	if cp.Predicate != nil && cp.Predicate.Kind != rdfterm.URI {
		return nil, 0, nil
	}
	candidates := 0
	var out []map[string]rdfterm.Term
	for _, model := range models {
		found, err := store.FindCtx(ctx, model, cp)
		if err != nil {
			return nil, candidates, err
		}
		candidates += len(found)
		for _, ts := range found {
			tr, err := ts.GetTriple()
			if err != nil {
				return nil, candidates, err
			}
			nb := unify(pat, tr, b)
			if nb != nil {
				out = append(out, nb)
			}
		}
	}
	return out, candidates, nil
}

// unify extends binding b with the pattern's variables bound to the
// triple's terms, returning nil on conflict (same variable, different
// term — e.g. (?x p ?x) against <a p b>).
func unify(pat TriplePattern, tr core.Triple, b map[string]rdfterm.Term) map[string]rdfterm.Term {
	nb := make(map[string]rdfterm.Term, len(b)+3)
	for k, v := range b {
		nb[k] = v
	}
	bind := func(pt PatternTerm, t rdfterm.Term) bool {
		if !pt.IsVar() {
			return true // concrete terms were matched by Find
		}
		if old, ok := nb[pt.Var]; ok {
			// Compare canonically so 01^^int unifies with 1^^int.
			return rdfterm.Canonical(old).Equal(rdfterm.Canonical(t))
		}
		nb[pt.Var] = t
		return true
	}
	if !bind(pat.S, tr.Subject) || !bind(pat.P, tr.Property) || !bind(pat.O, tr.Object) {
		return nil
	}
	return nb
}

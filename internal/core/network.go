package core

import (
	"context"

	"repro/internal/ndm"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// RDFNetwork exposes the store's rdf_link$/rdf_node$ tables as an NDM
// directed logical network (§1, §4): nodes are VALUE_IDs of subjects and
// objects, links are triples, and link cost is the COST column. With a
// model filter the network is restricted to selected models; with none it
// spans the whole store — "analysis … across all applications in the
// database or on selected applications" (§1).
type RDFNetwork struct {
	store  *Store
	models map[int64]bool // nil = all models
	ctx    context.Context
}

// Network returns the NDM view of the given models (all models when none
// are named).
func (s *Store) Network(models ...string) (*RDFNetwork, error) {
	n := &RDFNetwork{store: s, ctx: context.Background()}
	if len(models) > 0 {
		n.models = make(map[int64]bool, len(models))
		for _, m := range models {
			id, err := s.GetModelID(m)
			if err != nil {
				return nil, err
			}
			n.models[id] = true
		}
	}
	return n, nil
}

// WithContext returns a view of the network whose traversals stop once
// ctx is done: Nodes/OutLinks/InLinks simply stop visiting, so any NDM
// analysis running over the view winds down instead of walking the rest
// of the graph. Pair with the ndm package's *Ctx analysis entry points,
// which additionally report the cancellation as an error.
func (n *RDFNetwork) WithContext(ctx context.Context) *RDFNetwork {
	return &RDFNetwork{store: n.store, models: n.models, ctx: ctx}
}

// done reports whether the network's context has been cancelled.
func (n *RDFNetwork) done() bool { return n.ctx.Err() != nil }

// inScope reports whether a link row belongs to the selected models.
func (n *RDFNetwork) inScope(r reldb.Row) bool {
	return n.models == nil || n.models[r[lcModelID].Int64()]
}

// HasNode implements ndm.Graph over rdf_node$.
func (n *RDFNetwork) HasNode(node int64) bool {
	n.store.mu.RLock()
	defer n.store.mu.RUnlock()
	return n.store.nodePK.Contains(reldb.Key{reldb.Int(node)})
}

// Nodes implements ndm.Graph. The node set is snapshotted under the
// store's read lock and fn is invoked outside it, so analysis callbacks
// may freely call back into the store (read locks must not nest).
func (n *RDFNetwork) Nodes(fn func(node int64) bool) {
	n.store.mu.RLock()
	var nodes []int64
	n.store.nodes.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		nodes = append(nodes, r[0].Int64())
		return len(nodes)%cancelEvery != 0 || !n.done()
	})
	n.store.mu.RUnlock()
	n.store.met.onTraversalSteps(len(nodes))
	for _, node := range nodes {
		if n.done() || !fn(node) {
			return
		}
	}
}

// OutLinks implements ndm.Graph: links whose START_NODE_ID is node.
func (n *RDFNetwork) OutLinks(node int64, fn func(linkID, end int64, cost float64) bool) {
	n.visit(false, node, lcEndNodeID, fn)
}

// InLinks implements ndm.Graph: links whose END_NODE_ID is node.
func (n *RDFNetwork) InLinks(node int64, fn func(linkID, start int64, cost float64) bool) {
	n.visit(true, node, lcStartNodeID, fn)
}

func (n *RDFNetwork) visit(fromEnd bool, node int64, otherCol int, fn func(linkID, other int64, cost float64) bool) {
	// Collect matching links under the read lock, call fn outside it
	// (see Nodes). The index is selected inside the critical section so
	// the guarded field read is covered by the lock.
	type hop struct {
		linkID, other int64
		cost          float64
	}
	n.store.mu.RLock()
	ix := n.store.linkStart
	if fromEnd {
		ix = n.store.linkEnd
	}
	var ids []reldb.RowID
	ix.ScanPrefix(reldb.Key{reldb.Int(node)}, func(_ reldb.Key, rid reldb.RowID) bool {
		ids = append(ids, rid)
		return len(ids)%cancelEvery != 0 || !n.done()
	})
	var hops []hop
	for i, rid := range ids {
		if i%cancelEvery == 0 && n.done() {
			break
		}
		r, err := n.store.links.Get(rid)
		if err != nil || !n.inScope(r) {
			continue
		}
		hops = append(hops, hop{r[lcLinkID].Int64(), r[otherCol].Int64(), float64(r[lcCost].Int64())})
	}
	n.store.mu.RUnlock()
	n.store.met.onTraversalSteps(len(hops))
	for _, h := range hops {
		if n.done() || !fn(h.linkID, h.other, h.cost) {
			return
		}
	}
}

// NodeID resolves a term to its network node (VALUE_ID).
func (n *RDFNetwork) NodeID(t rdfterm.Term) (int64, bool) {
	n.store.mu.RLock()
	defer n.store.mu.RUnlock()
	return n.store.lookupValueIDLocked(t)
}

// NodeTerm resolves a network node back to its term.
func (n *RDFNetwork) NodeTerm(node int64) (rdfterm.Term, error) {
	return n.store.GetValue(node)
}

var _ ndm.Graph = (*RDFNetwork)(nil)

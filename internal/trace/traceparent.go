package trace

// W3C trace-context interop (https://www.w3.org/TR/trace-context/),
// the minimal slice the server needs: parse an incoming `traceparent`
// request header so an external load balancer's trace ID carries
// through, and render the outgoing form on responses. Only version 00
// is understood; anything else starts a fresh trace — per the spec,
// a malformed header is ignored, never an error.

// ParseTraceparent parses a version-00 traceparent header
// ("00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>"). ok is
// false — and the trace IDs empty — for malformed or all-zero input.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	if len(h) != 55 {
		return "", "", false
	}
	if h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	traceID, spanID = h[3:35], h[36:52]
	if !isHex(traceID) || !isHex(spanID) || !isHex(h[53:55]) {
		return "", "", false
	}
	if allZero(traceID) || allZero(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

// Traceparent renders the span's outgoing traceparent header, with the
// sampled flag set ("" for a nil span).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.rec.id + "-" + fmtSpanID(s.id) + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Command rdfload bulk-loads an N-Triples file into the RDF object store,
// folding reification quads into the streamlined DBUri representation
// (§5) — the reproduction of the paper's Java bulk-load API.
//
// The store is memory-resident; rdfload demonstrates the load pipeline and
// prints the resulting storage statistics (rows, values, nodes, reified
// statements, contexts).
//
// Usage:
//
//	rdfload -model name [-policy drop|insert|report] [-keep-orig] file.nt
//	cat file.nt | rdfload -model name
//	rdfload -model name -wal store.wal file.nt        # durable load
//	rdfload -model name -batch 4096 -workers 0 -wal store.wal file.nt
//
// With -wal, every mutation is appended to a write-ahead log before the
// command exits, and an existing log at that path is replayed first — so
// an interrupted load resumes from its last durable record instead of
// starting over. Pair with -save to checkpoint: the snapshot is written
// and the log truncated, keeping recovery (snapshot + log) small. To
// keep loading into a checkpointed store, pass the snapshot back with
// -snapshot alongside -wal.
//
// -wal-dir selects the segmented WAL instead of a single file: rotating
// segment files (-wal-segment-bytes) under an optional disk budget
// (-wal-hard-bytes). With -save the checkpoint records a segment
// watermark in the snapshot and retires the segments it covers; pass
// the same -snapshot and -wal-dir back to continue.
//
// Bulk-load fast path: -workers parses the input with parallel workers
// (0 = all CPUs), and -batch inserts triples through the store's batch
// API — one write-lock acquisition and one WAL commit per batch instead
// of per triple. -sync-every N adds WAL group commit on top: the log
// fsyncs once every N commits (a crash can lose at most the last N-1
// committed batches, but always recovers to a consistent state). The
// defaults load fast and sync on every batch; -batch 1 -workers 1
// restores the original one-triple-one-commit path.
//
// Observability: -admin ADDR serves the runtime metrics registry
// (/metrics in Prometheus text format, /healthz, /events, /debug/pprof)
// for the duration of the load, instrumenting the store and WAL at no
// cost to un-instrumented runs. -admin-linger keeps the endpoint up
// after the load finishes so the final counters can be scraped.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ntriples"
	"repro/internal/obs"
	"repro/internal/rdfxml"
	"repro/internal/reify"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdfload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdfload", flag.ContinueOnError)
	model := fs.String("model", "data", "RDF model (graph) name to load into")
	policy := fs.String("policy", "drop", "incomplete-quad policy: drop, insert, or report")
	keepOrig := fs.Bool("keep-orig", false, "store original quad-resource URIs alongside DBUris")
	save := fs.String("save", "", "write a store snapshot to this file after loading (readable by rdfquery -snapshot)")
	walPath := fs.String("wal", "", "write-ahead log file: mutations are logged durably, and an existing log is replayed before loading")
	walDir := fs.String("wal-dir", "", "segmented write-ahead log directory (rotating segments; mutually exclusive with -wal)")
	segmentBytes := fs.Int64("wal-segment-bytes", 0, "segment rotation threshold in bytes (0 = 64 MiB default; requires -wal-dir)")
	hardBytes := fs.Int64("wal-hard-bytes", 0, "hard disk budget for the WAL directory: appends past it fail with a typed disk-full error (0 disables; requires -wal-dir)")
	snapPath := fs.String("snapshot", "", "checkpoint snapshot to load before replaying the WAL (continue a store checkpointed with -save -wal)")
	format := fs.String("format", "nt", "input format: nt (N-Triples) or xml (RDF/XML)")
	base := fs.String("base", "", "base URI for resolving rdf:ID in RDF/XML input")
	batch := fs.Int("batch", 1024, "insert triples in batches of this size (1 = one insert, one WAL commit per triple)")
	workers := fs.Int("workers", 0, "parallel N-Triples parse workers (0 = all CPUs, 1 = serial)")
	syncEvery := fs.Int("sync-every", 1, "with -wal, fsync once every N commits instead of every commit (group commit)")
	traceWAL := fs.Bool("trace-wal", false, "record wal.flush span trees during a group-committed load and print the slowest flush (requires -sync-every > 1)")
	adminAddr := fs.String("admin", "", "serve /metrics, /healthz, /events, and /debug/pprof on this address (e.g. 127.0.0.1:9090) while loading")
	adminLinger := fs.Duration("admin-linger", 0, "with -admin, keep serving this long after the load finishes so the endpoint can be scraped")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1 (got %d)", *batch)
	}
	if *syncEvery < 1 {
		return fmt.Errorf("-sync-every must be >= 1 (got %d)", *syncEvery)
	}
	if *walPath != "" && *walDir != "" {
		return errors.New("-wal and -wal-dir are mutually exclusive")
	}
	if *traceWAL && (*syncEvery < 2 || (*walPath == "" && *walDir == "")) {
		return errors.New("-trace-wal requires -wal or -wal-dir with -sync-every > 1 (flush spans come from group commit)")
	}
	if (*segmentBytes > 0 || *hardBytes > 0) && *walDir == "" {
		return errors.New("-wal-segment-bytes/-wal-hard-bytes require -wal-dir")
	}

	// Admin surface: a registry plus an HTTP listener started before the
	// load so a long-running bulk load can be watched live. With no
	// -admin flag reg stays nil and every instrument hook below is a
	// nil-receiver no-op.
	var reg *obs.Registry
	if *adminAddr != "" {
		reg = obs.NewRegistry()
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("-admin %s: %w", *adminAddr, err)
		}
		srv := &http.Server{Handler: obs.NewHandler(reg, nil)}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s/\n", ln.Addr())
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	store := core.New()
	var dir *wal.Dir
	if *walDir != "" {
		// Segmented WAL: snapshot (with its segment watermark), retention
		// cleanup, and replay happen in one recovery step.
		if *snapPath != "" {
			if _, err := os.Stat(*snapPath); err != nil {
				return err
			}
		}
		var info core.RecoverInfo
		var err error
		store, dir, info, err = core.RecoverDir(*snapPath, *walDir, wal.DirOptions{
			SegmentBytes: *segmentBytes,
			Budget:       wal.Budget{HardBytes: *hardBytes},
		})
		if err != nil {
			switch {
			case errors.Is(err, core.ErrSnapshotVersion):
				return fmt.Errorf("snapshot %s was written by an incompatible format version — regenerate it with this build's -save (%v)", *snapPath, err)
			case errors.Is(err, core.ErrSnapshotCorrupt):
				return fmt.Errorf("snapshot %s is damaged and cannot be loaded (%v)", *snapPath, err)
			case errors.Is(err, wal.ErrSegmentCorrupt):
				return fmt.Errorf("WAL directory %s is damaged (a non-final segment is torn or missing): %v", *walDir, err)
			}
			return err
		}
		defer dir.Close()
		if *snapPath != "" {
			fmt.Fprintf(stdout, "loaded checkpoint snapshot %s\n", *snapPath)
		}
		if info.Applied > 0 {
			fmt.Fprintf(stdout, "replayed %d WAL records from %d segment(s) in %s\n", info.Applied, info.Segments, *walDir)
		}
		if info.Truncated {
			fmt.Fprintf(os.Stderr, "rdfload: warning: WAL had a torn tail (truncated to last valid record): %v\n", info.TailErr)
		}
	} else if *snapPath != "" {
		f, err := os.Open(*snapPath)
		if err != nil {
			return err
		}
		store, err = core.Load(f)
		f.Close()
		if err != nil {
			switch {
			case errors.Is(err, core.ErrSnapshotVersion):
				return fmt.Errorf("snapshot %s was written by an incompatible format version — regenerate it with this build's -save (%v)", *snapPath, err)
			case errors.Is(err, core.ErrSnapshotCorrupt):
				return fmt.Errorf("snapshot %s is damaged and cannot be loaded (%v)", *snapPath, err)
			}
			return err
		}
		fmt.Fprintf(stdout, "loaded checkpoint snapshot %s\n", *snapPath)
	}
	store.SetMetrics(core.NewMetrics(reg))
	var log *wal.Log
	var group *wal.GroupLog
	if *walPath != "" {
		var res wal.ScanResult
		var err error
		log, res, err = wal.OpenFile(*walPath)
		if err != nil {
			if errors.Is(err, wal.ErrNotWAL) {
				return fmt.Errorf("%s is not a WAL file (wrong path?): %v", *walPath, err)
			}
			return err
		}
		defer log.Close()
		if len(res.Records) > 0 {
			if err := store.Replay(res.Records); err != nil {
				return fmt.Errorf("replaying %s: %w", *walPath, err)
			}
			fmt.Fprintf(stdout, "replayed %d WAL records from %s\n", len(res.Records), *walPath)
		}
		if res.Truncated {
			fmt.Fprintf(os.Stderr, "rdfload: warning: WAL had a torn tail (truncated to last valid record): %v\n", res.TailErr)
		}
		// Log mutations from here on; replayed records are already durable.
		if *syncEvery > 1 {
			// Group commit: fsync once every N commits. A crash mid-load can
			// lose at most the last N-1 committed batches; the surviving log
			// prefix still replays to a consistent store.
			group = wal.Group(log, wal.GroupOptions{SyncEvery: *syncEvery})
			store.SetDurability(group)
		} else {
			store.SetDurability(log)
		}
		if reg != nil {
			m := wal.NewMetrics(reg)
			if group != nil {
				group.SetMetrics(m) // also attaches to the underlying log
			} else {
				log.SetMetrics(m)
			}
		}
	}
	if dir != nil {
		// Same durability wiring over the segmented sink: group commit
		// composes with rotation (each flushed batch lands in one segment).
		if *syncEvery > 1 {
			group = wal.GroupSink(dir, wal.GroupOptions{SyncEvery: *syncEvery})
			store.SetDurability(group)
		} else {
			store.SetDurability(dir)
		}
		if reg != nil {
			m := wal.NewMetrics(reg)
			if group != nil {
				group.SetMetrics(m) // also attaches to the underlying dir
			} else {
				dir.SetMetrics(m)
			}
		}
	}
	// -trace-wal: every group-commit flush records a wal.flush root span
	// (wal.write + wal.fsync children); retain them all (sample 1.0) in a
	// modest ring and print the slowest tree after the load.
	var flushTracer *trace.Tracer
	if *traceWAL && group != nil {
		flushTracer = trace.New(trace.Config{SlowThreshold: time.Hour, SampleRate: 1, Capacity: 1024})
		group.SetTracer(flushTracer)
	}
	if _, err := store.GetModelID(*model); err != nil {
		if _, err := store.CreateRDFModel(*model, "", ""); err != nil {
			return err
		}
	}
	loader := &reify.Loader{
		Store:            store,
		Model:            *model,
		KeepOriginalURIs: *keepOrig,
		Report:           os.Stderr,
		BatchSize:        *batch,
	}
	if *workers == 0 {
		loader.Workers = -1 // Loader: < 0 means GOMAXPROCS
	} else {
		loader.Workers = *workers
	}
	switch *policy {
	case "drop":
		loader.Policy = reify.DropIncomplete
	case "insert":
		loader.Policy = reify.InsertIncomplete
	case "report":
		loader.Policy = reify.ReportIncomplete
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	var stats reify.Stats
	var err error
	switch *format {
	case "nt":
		stats, err = loader.Load(in)
	case "xml":
		var parsed []ntriples.Triple
		parsed, err = rdfxml.Parse(in, rdfxml.Options{Base: *base})
		if err == nil {
			stats, err = loader.LoadTriples(parsed)
		}
	default:
		return fmt.Errorf("unknown format %q (want nt or xml)", *format)
	}
	if err != nil {
		return err
	}
	if group != nil {
		// Make the tail of the load durable before reporting success (and
		// before any -save checkpoint truncates the log).
		if err := group.Flush(); err != nil {
			return fmt.Errorf("flushing group-committed WAL: %w", err)
		}
	}
	triples, err := store.NumTriples(*model)
	if err != nil {
		return err
	}
	reified, err := store.ReifiedCount(*model)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "read:                 %d triples\n", stats.Read)
	fmt.Fprintf(stdout, "base inserted:        %d\n", stats.Inserted)
	fmt.Fprintf(stdout, "quads folded:         %d (4 input triples -> 1 stored row each)\n", stats.QuadsFolded)
	fmt.Fprintf(stdout, "assertions rewritten: %d\n", stats.AssertionsRewritten)
	fmt.Fprintf(stdout, "incomplete quads:     %d (%s)\n", stats.Incomplete, *policy)
	fmt.Fprintf(stdout, "stored rows:          %d in rdf_link$ (model %q)\n", triples, *model)
	fmt.Fprintf(stdout, "distinct values:      %d in rdf_value$\n", store.NumValues())
	fmt.Fprintf(stdout, "graph nodes:          %d in rdf_node$\n", store.NumNodes())
	fmt.Fprintf(stdout, "reified statements:   %d\n", reified)
	if stats.Read > 0 && stats.QuadsFolded > 0 {
		saved := 3 * stats.QuadsFolded
		fmt.Fprintf(stdout, "rows saved by DBUri reification: %d (%.0f%% of quad storage)\n",
			saved, 100*float64(stats.QuadsFolded)/float64(4*stats.QuadsFolded))
	}
	if flushTracer != nil {
		var slowest trace.TraceData
		flushes := flushTracer.Snapshot()
		for _, td := range flushes {
			if td.Duration > slowest.Duration {
				slowest = td
			}
		}
		fmt.Fprintf(stdout, "WAL flushes traced:   %d (last %d retained)\n", len(flushes), flushTracer.Len())
		if slowest.ID != "" {
			fmt.Fprintf(stdout, "slowest flush:\n")
			trace.WriteTree(stdout, slowest)
		}
	}
	if *save != "" {
		switch {
		case dir != nil:
			// Segmented checkpoint: rotate, write the snapshot with the new
			// segment number as its watermark, then retire older segments.
			if err := core.CheckpointDir(store, *save, dir); err != nil {
				return fmt.Errorf("checkpointing WAL directory: %w", err)
			}
			fmt.Fprintf(stdout, "snapshot written to %s\n", *save)
			fmt.Fprintf(stdout, "WAL %s checkpointed (stale segments retired)\n", *walDir)
		default:
			// Atomic checkpoint: tmp file + fsync + rename, so a crash
			// mid-save never clobbers an existing good snapshot.
			if err := store.SaveFile(*save); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "snapshot written to %s\n", *save)
			if log != nil {
				// Checkpoint: the snapshot now holds everything the log did,
				// so the log restarts empty.
				if err := log.Reset(); err != nil {
					return fmt.Errorf("truncating WAL after checkpoint: %w", err)
				}
				fmt.Fprintf(stdout, "WAL %s checkpointed (truncated)\n", *walPath)
			}
		}
	}
	if *adminAddr != "" && *adminLinger > 0 {
		// Keep the admin endpoint up so post-load scrapes (CI smoke,
		// one-off profiling) can read the final metrics.
		fmt.Fprintf(os.Stderr, "admin endpoint lingering %s\n", *adminLinger)
		time.Sleep(*adminLinger)
	}
	return nil
}

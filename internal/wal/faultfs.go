package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"syscall"
)

// Fault injection for crash testing. A FaultFile stands in for the WAL's
// backing file and misbehaves at a configured byte offset, modelling the
// three ways a crash interacts with an append-only log:
//
//   - FailStop: the write that would reach the offset fails atomically —
//     the process dies between appends, the file ends on a frame boundary
//     of whatever had been written.
//   - ShortWrite: the write tears mid-frame at the offset — the classic
//     torn write of a crash during write(2).
//   - CorruptByte: the byte at the offset is bit-flipped but writing
//     continues — latent media corruption that only the checksum catches.
//
// The crash-point matrix test in internal/core drives every offset of a
// recorded workload through each mode and proves recovery.

// FaultMode selects the misbehavior.
type FaultMode int

// The fault modes.
const (
	FailStop FaultMode = iota
	ShortWrite
	CorruptByte
)

// String names the mode for test labels.
func (m FaultMode) String() string {
	switch m {
	case FailStop:
		return "FailStop"
	case ShortWrite:
		return "ShortWrite"
	case CorruptByte:
		return "CorruptByte"
	default:
		return "FaultMode(?)"
	}
}

// ErrInjected is returned by a tripped FaultFile.
var ErrInjected = errors.New("wal: injected fault")

// FaultFile is an in-memory File that injects a fault at byte FailAt.
type FaultFile struct {
	// FailAt is the global byte offset (counting every byte ever written,
	// header included) at which the fault fires.
	FailAt int64
	// Mode selects what happens at FailAt.
	Mode FaultMode

	buf     bytes.Buffer
	written int64
	tripped bool
}

// Write appends p, injecting the configured fault when the write crosses
// FailAt.
func (f *FaultFile) Write(p []byte) (int, error) {
	if f.tripped {
		return 0, ErrInjected
	}
	end := f.written + int64(len(p))
	if end <= f.FailAt || f.Mode == CorruptByte {
		if f.Mode == CorruptByte && f.written <= f.FailAt && f.FailAt < end {
			// Flip one bit at the fault offset, then carry on as if the
			// write succeeded — silent corruption.
			q := append([]byte(nil), p...)
			q[f.FailAt-f.written] ^= 0x01
			p = q
		}
		f.buf.Write(p)
		f.written = end
		return len(p), nil
	}
	f.tripped = true
	switch f.Mode {
	case FailStop:
		// Nothing of this write lands.
		return 0, ErrInjected
	default: // ShortWrite
		n := int(f.FailAt - f.written)
		f.buf.Write(p[:n])
		f.written += int64(n)
		return n, ErrInjected
	}
}

// Sync fails once the fault has fired (the kernel would have no file to
// flush to), succeeds otherwise.
func (f *FaultFile) Sync() error {
	if f.tripped {
		return ErrInjected
	}
	return nil
}

// Close is a no-op so post-mortem Bytes() still works.
func (f *FaultFile) Close() error { return nil }

// Bytes returns the surviving file image — what recovery gets to read.
func (f *FaultFile) Bytes() []byte { return f.buf.Bytes() }

// Written returns the number of bytes durably written.
func (f *FaultFile) Written() int64 { return f.written }

// BufferFile is a plain in-memory File with no faults, used to record a
// golden log image in tests.
type BufferFile struct {
	bytes.Buffer
}

// Sync is a no-op for an in-memory file.
func (b *BufferFile) Sync() error { return nil }

// Close is a no-op.
func (b *BufferFile) Close() error { return nil }

// FlakyFile models a disk that misbehaves *transiently*: writes or syncs
// fail for a while and then start succeeding again — a controller reset,
// a full-then-freed filesystem, an NFS hiccup. Where FaultFile dies at
// one byte offset forever (crash modelling), a FlakyFile is the substrate
// for degraded-mode testing: the store must reject mutations cleanly
// while the fault lasts and recover once it clears.
//
// Two injection modes compose:
//
//   - counted: FailWrites(n)/FailSyncs(n)/FailWithENOSPC(n) arm the next
//     n calls to fail, after which calls succeed again ("fail N times
//     then succeed");
//   - rated: SetErrorRate(writeRate, syncRate, seed) and
//     SetNoSpaceRate(rate, seed) make each call fail with the given
//     probability, deterministically from the seed.
//
// By default a failing write is atomic (nothing lands), so the backing
// image never tears mid-frame; SetPartialWriteFraction opts into torn
// writes, where a failing write lands a prefix first — the shape a real
// ENOSPC takes when write(2) runs out of blocks partway. When inner is
// nil the FlakyFile is its own in-memory backing store; otherwise
// successful calls pass through to inner (typically an *os.File via
// OpenFileWith), so the surviving on-disk image is real.
type FlakyFile struct {
	mu    sync.Mutex
	inner File   // nil = self-backed in-memory image
	buf   []byte // in-memory image when inner == nil

	failWrites  int // remaining forced write failures
	failSyncs   int // remaining forced sync failures
	failNoSpace int // remaining forced ENOSPC write failures
	writeRate   float64
	syncRate    float64
	noSpaceRate float64
	partialFrac float64 // fraction of a failing write that lands anyway
	rng         *rand.Rand

	writeFails   int // total injected write failures (for assertions)
	syncFails    int // total injected sync failures
	noSpaceFails int // total injected ENOSPC failures
	closed       bool
}

// NewFlaky wraps inner (nil for a self-backed in-memory file) with no
// faults armed.
func NewFlaky(inner File) *FlakyFile {
	return &FlakyFile{inner: inner}
}

// FailWrites arms the next n Write calls to fail (atomically: nothing is
// written). Cumulative with any previously armed failures.
func (f *FlakyFile) FailWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites += n
}

// FailSyncs arms the next n Sync calls to fail.
func (f *FlakyFile) FailSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs += n
}

// FailWithENOSPC arms the next n Write calls to fail with an error that
// wraps syscall.ENOSPC (wal.IsNoSpace matches it) — a full filesystem,
// without filling a real disk. Combine with SetPartialWriteFraction for
// the mid-write form where some blocks land before the disk runs out.
func (f *FlakyFile) FailWithENOSPC(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNoSpace += n
}

// SetNoSpaceRate makes every Write fail with ENOSPC with the given
// probability, driven by a deterministic PRNG (seed is used only when no
// PRNG was seeded yet via SetErrorRate). A rate of 0 disables the mode.
func (f *FlakyFile) SetNoSpaceRate(rate float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noSpaceRate = rate
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(seed))
	}
}

// SetPartialWriteFraction makes injected write failures tear instead of
// failing atomically: roughly frac of the payload lands before the error
// is returned (always at least one byte short of the whole write). 0
// restores atomic failures.
func (f *FlakyFile) SetPartialWriteFraction(frac float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partialFrac = frac
}

// SetErrorRate makes every Write fail with probability writeRate and
// every Sync with probability syncRate, driven by a deterministic PRNG
// seeded with seed. Rates of 0 disable the mode.
func (f *FlakyFile) SetErrorRate(writeRate, syncRate float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeRate = writeRate
	f.syncRate = syncRate
	f.rng = rand.New(rand.NewSource(seed))
}

// InjectedFailures reports how many writes and syncs have been failed so
// far (ENOSPC failures count as write failures).
func (f *FlakyFile) InjectedFailures() (writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeFails, f.syncFails
}

// InjectedNoSpace reports how many writes were failed with ENOSPC.
func (f *FlakyFile) InjectedNoSpace() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.noSpaceFails
}

// failWriteLocked decides whether this write fails. Caller holds f.mu.
func (f *FlakyFile) failWriteLocked() bool {
	if f.failWrites > 0 {
		f.failWrites--
		return true
	}
	return f.writeRate > 0 && f.rng != nil && f.rng.Float64() < f.writeRate
}

// failNoSpaceLocked decides whether this write fails with ENOSPC.
// Caller holds f.mu.
func (f *FlakyFile) failNoSpaceLocked() bool {
	if f.failNoSpace > 0 {
		f.failNoSpace--
		return true
	}
	return f.noSpaceRate > 0 && f.rng != nil && f.rng.Float64() < f.noSpaceRate
}

// failSyncLocked decides whether this sync fails. Caller holds f.mu.
func (f *FlakyFile) failSyncLocked() bool {
	if f.failSyncs > 0 {
		f.failSyncs--
		return true
	}
	return f.syncRate > 0 && f.rng != nil && f.rng.Float64() < f.syncRate
}

// Write appends p, or fails when a fault is armed or drawn: atomically
// by default, tearing a prefix in when SetPartialWriteFraction is set.
func (f *FlakyFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("%w: write on closed file", ErrInjected)
	}
	var ferr error
	switch {
	case f.failNoSpaceLocked():
		f.noSpaceFails++
		f.writeFails++
		ferr = fmt.Errorf("%w: injected disk full: %w", ErrInjected, syscall.ENOSPC)
	case f.failWriteLocked():
		f.writeFails++
		ferr = fmt.Errorf("%w: transient write failure", ErrInjected)
	}
	if ferr != nil {
		n := 0
		if f.partialFrac > 0 && len(p) > 0 {
			n = int(float64(len(p)) * f.partialFrac)
			if n >= len(p) {
				n = len(p) - 1 // a "partial" write must actually be short
			}
		}
		if n > 0 {
			if err := f.landLocked(p[:n]); err != nil {
				return 0, err
			}
		}
		return n, ferr
	}
	if err := f.landLocked(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// landLocked writes p to the backing store. Caller holds f.mu.
func (f *FlakyFile) landLocked(p []byte) error {
	if f.inner != nil {
		n, err := f.inner.Write(p)
		if err == nil && n < len(p) {
			return io.ErrShortWrite
		}
		return err
	}
	f.buf = append(f.buf, p...)
	return nil
}

// Sync flushes, or fails when a fault is armed or drawn.
func (f *FlakyFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("%w: sync on closed file", ErrInjected)
	}
	if f.failSyncLocked() {
		f.syncFails++
		return fmt.Errorf("%w: transient sync failure", ErrInjected)
	}
	if f.inner != nil {
		return f.inner.Sync()
	}
	return nil
}

// Truncate supports checkpoint Reset: it forwards to the inner file when
// that is truncatable, and trims the in-memory image otherwise.
func (f *FlakyFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inner != nil {
		t, ok := f.inner.(truncatable)
		if !ok {
			return fmt.Errorf("wal: inner file %T does not support Truncate", f.inner)
		}
		return t.Truncate(size)
	}
	if size < 0 || size > int64(len(f.buf)) {
		return fmt.Errorf("wal: truncate to %d outside file of %d bytes", size, len(f.buf))
	}
	f.buf = f.buf[:size]
	return nil
}

// Seek supports checkpoint Reset (in-memory writes always append, so only
// the inner-file case needs a real seek).
func (f *FlakyFile) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inner != nil {
		t, ok := f.inner.(truncatable)
		if !ok {
			return 0, fmt.Errorf("wal: inner file %T does not support Seek", f.inner)
		}
		return t.Seek(offset, whence)
	}
	if whence != io.SeekStart {
		return 0, fmt.Errorf("wal: in-memory FlakyFile only supports SeekStart")
	}
	return offset, nil
}

// Close closes the file; later writes and syncs fail.
func (f *FlakyFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	if f.inner != nil {
		return f.inner.Close()
	}
	return nil
}

// Bytes returns the in-memory image (self-backed files only).
func (f *FlakyFile) Bytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.buf...)
}

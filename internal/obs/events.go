package obs

import (
	"sort"
	"sync"
	"time"
)

// Event is one discrete structured occurrence: a health transition, a
// slow query, a scrub escalation. Fields are flat string pairs so tests
// can assert on them and /events can render them without reflection.
type Event struct {
	// Seq is a monotone sequence number (1-based) over the log's lifetime;
	// gaps after eviction tell a consumer how much it missed.
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	// Scope is the emitting subsystem ("supervise", "match", "wal", ...).
	Scope string `json:"scope"`
	// Name identifies the occurrence within the scope ("transition",
	// "slow_query", ...).
	Name   string            `json:"name"`
	Fields map[string]string `json:"fields,omitempty"`
}

// EventLog is a fixed-capacity ring of recent events. Appends are
// mutex-guarded — events are discrete occurrences (transitions, slow
// queries), not per-operation records, so the lock is uncontended by
// construction. A nil EventLog is a valid no-op sink.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	next int64 // next Seq to assign; ring[(next-1) % cap] is the newest
}

// NewEventLog creates a ring holding the most recent capacity events
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]Event, 0, capacity)}
}

// Emit appends an event stamped with the current time. fields may be
// nil; the map is stored as given, so callers must not mutate it after.
func (l *EventLog) Emit(scope, name string, fields map[string]string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := Event{Seq: l.next + 1, Time: time.Now(), Scope: scope, Name: name, Fields: fields}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next%int64(cap(l.ring))] = ev
	}
	l.next++
}

// Snapshot returns the retained events oldest-first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Event(nil), l.ring...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

package core

import (
	"strings"
	"testing"

	"repro/internal/ntriples"
)

func TestExportModelRoundTrip(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m", "gov:a", "gov:q", `"lit with \"quotes\""`, a)
	s.NewTripleS("m", "_:x", "gov:p", `"25"^^xsd:int`, a)

	var buf strings.Builder
	if err := s.ExportModel("m", &buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	back, err := ntriples.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("exported %d triples, want 3", len(back))
	}
	// Re-import into a fresh store and compare counts + one lookup.
	s2 := newStoreWithModel(t, "m")
	for _, tr := range back {
		if _, err := s2.InsertTerms("m", tr.Subject, tr.Predicate, tr.Object); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s2.NumTriples("m"); n != 3 {
		t.Fatalf("reimported %d triples", n)
	}
	if _, ok, _ := s2.IsTriple("m", "gov:a", "gov:p", "gov:b", a); !ok {
		t.Fatal("triple lost in round trip")
	}
}

func TestExportModelExpandReification(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	base, _ := s.NewTripleS("m", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	if _, err := s.AssertAboutTriple("m", "gov:MI5", "gov:source", base.TID, a); err != nil {
		t.Fatal(err)
	}
	// Store now has 3 rows: base, reification, assertion.
	var buf strings.Builder
	if err := s.ExportModel("m", &buf, ExportOptions{ExpandReification: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "/ORADB/") {
		t.Fatalf("expanded export leaked DBUris:\n%s", out)
	}
	back, err := ntriples.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// base + 4 quad rows + rewritten assertion = 6.
	if len(back) != 6 {
		t.Fatalf("expanded export has %d triples, want 6:\n%s", len(back), out)
	}
	// Reload through the folding loader: should collapse back to 3 rows.
	s2 := newStoreWithModel(t, "m")
	// (use the quad members directly; reify.Loader lives above core, so
	// emulate its effect via InsertTerms + Reify on the found base)
	for _, tr := range back {
		// skip quad rows, reinsert others
		switch tr.Predicate.Value {
		case "http://www.w3.org/1999/02/22-rdf-syntax-ns#subject",
			"http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate",
			"http://www.w3.org/1999/02/22-rdf-syntax-ns#object":
			continue
		}
		if tr.Object.Value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement" {
			continue
		}
		if _, err := s2.InsertTerms("m", tr.Subject, tr.Predicate, tr.Object); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s2.NumTriples("m"); n != 2 { // base + assertion (reif dropped here)
		t.Fatalf("reloaded rows = %d", n)
	}
}

func TestExportMissingModel(t *testing.T) {
	s := New()
	if err := s.ExportModel("ghost", &strings.Builder{}, ExportOptions{}); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestModelStatistics(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	base, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m", "gov:a", "rdf:type", "gov:Thing", a)
	s.Reify("m", base.TID)
	s.AssertImplied("m", "gov:N", "gov:said", "gov:x", "gov:y2", "gov:z", a)

	stats, err := s.ModelStatistics("m")
	if err != nil {
		t.Fatal(err)
	}
	// Rows: base, rdf:type, reify(base), implied base, reify(implied),
	// assertion = 6.
	if stats.Triples != 6 {
		t.Fatalf("Triples = %d, want 6", stats.Triples)
	}
	if stats.Reified != 2 {
		t.Fatalf("Reified = %d, want 2", stats.Reified)
	}
	if stats.Indirect != 1 {
		t.Fatalf("Indirect = %d, want 1", stats.Indirect)
	}
	if stats.Direct != 5 {
		t.Fatalf("Direct = %d, want 5", stats.Direct)
	}
	if stats.ByLinkType["RDF_TYPE"] != 3 { // user rdf:type + 2 reification rows
		t.Fatalf("RDF_TYPE count = %d", stats.ByLinkType["RDF_TYPE"])
	}
	if stats.ByLinkType["STANDARD"] != 3 {
		t.Fatalf("STANDARD count = %d (%v)", stats.ByLinkType["STANDARD"], stats.ByLinkType)
	}
	if _, err := s.ModelStatistics("ghost"); err == nil {
		t.Fatal("missing model accepted")
	}
}

// Package ndm reproduces the Oracle Spatial Network Data Model layer the
// paper builds the RDF store on (§1, §4): directed logical networks stored
// in node$/link$ tables, plus the NDM analysis suite (shortest paths,
// within-cost, nearest neighbours, reachability, connected components,
// spanning trees).
//
// Analysis functions operate on the Graph interface, so they run equally
// over a standalone LogicalNetwork and over the RDF store's rdf_link$
// table — which is exactly the paper's point: the RDF graph *is* an NDM
// network, and "all the NDM functionality is exposed to RDF data".
package ndm

import (
	"fmt"

	"repro/internal/reldb"
)

// Graph is the directed-graph view NDM analysis operates on. Node and link
// IDs are int64, matching NDM's NODE_ID/LINK_ID columns.
type Graph interface {
	// HasNode reports whether the node exists.
	HasNode(node int64) bool
	// Nodes visits every node ID until fn returns false.
	Nodes(fn func(node int64) bool)
	// OutLinks visits links leaving node.
	OutLinks(node int64, fn func(linkID, end int64, cost float64) bool)
	// InLinks visits links entering node.
	InLinks(node int64, fn func(linkID, start int64, cost float64) bool)
}

// LogicalNetwork is a standalone directed logical network persisted in
// node$ and link$ tables of a reldb Database — the NDM schema (§4).
type LogicalNetwork struct {
	name  string
	nodes *reldb.Table
	links *reldb.Table

	nodePK    *reldb.Index
	linkPK    *reldb.Index
	linkStart *reldb.Index
	linkEnd   *reldb.Index

	nodeSeq *reldb.Sequence
	linkSeq *reldb.Sequence
}

// NodeSchema returns the node$ schema for a network.
func NodeSchema(network string) *reldb.Schema {
	return reldb.NewSchema(network+"_node$",
		reldb.Column{Name: "NODE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "NODE_NAME", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "ACTIVE", Kind: reldb.KindBool},
	)
}

// LinkSchema returns the link$ schema for a network.
func LinkSchema(network string) *reldb.Schema {
	return reldb.NewSchema(network+"_link$",
		reldb.Column{Name: "LINK_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "LINK_NAME", Kind: reldb.KindString, Nullable: true},
		reldb.Column{Name: "START_NODE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "END_NODE_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "COST", Kind: reldb.KindFloat},
		reldb.Column{Name: "ACTIVE", Kind: reldb.KindBool},
	)
}

// CreateLogicalNetwork creates the node$/link$ tables for a named network
// in db and returns the network handle.
func CreateLogicalNetwork(db *reldb.Database, name string) (*LogicalNetwork, error) {
	nodes, err := db.CreateTable(NodeSchema(name))
	if err != nil {
		return nil, err
	}
	links, err := db.CreateTable(LinkSchema(name))
	if err != nil {
		return nil, err
	}
	n := &LogicalNetwork{name: name, nodes: nodes, links: links}
	if n.nodePK, err = nodes.CreateIndex("node_pk", true, "NODE_ID"); err != nil {
		return nil, err
	}
	if n.linkPK, err = links.CreateIndex("link_pk", true, "LINK_ID"); err != nil {
		return nil, err
	}
	if n.linkStart, err = links.CreateIndex("link_start", false, "START_NODE_ID"); err != nil {
		return nil, err
	}
	if n.linkEnd, err = links.CreateIndex("link_end", false, "END_NODE_ID"); err != nil {
		return nil, err
	}
	if n.nodeSeq, err = db.CreateSequence(name+"_node_seq", 1); err != nil {
		return nil, err
	}
	if n.linkSeq, err = db.CreateSequence(name+"_link_seq", 1); err != nil {
		return nil, err
	}
	return n, nil
}

// Name returns the network name.
func (n *LogicalNetwork) Name() string { return n.name }

// AddNode inserts a node and returns its ID.
func (n *LogicalNetwork) AddNode(name string) (int64, error) {
	id := n.nodeSeq.Next()
	var nm reldb.Value
	if name != "" {
		nm = reldb.String_(name)
	}
	if _, err := n.nodes.Insert(reldb.Row{reldb.Int(id), nm, reldb.Bool(true)}); err != nil {
		return 0, err
	}
	return id, nil
}

// AddLink inserts a directed link from start to end with the given cost
// and returns its ID. Both endpoints must exist.
func (n *LogicalNetwork) AddLink(name string, start, end int64, cost float64) (int64, error) {
	if !n.HasNode(start) {
		return 0, fmt.Errorf("ndm: start node %d does not exist", start)
	}
	if !n.HasNode(end) {
		return 0, fmt.Errorf("ndm: end node %d does not exist", end)
	}
	if cost < 0 {
		return 0, fmt.Errorf("ndm: negative link cost %g", cost)
	}
	id := n.linkSeq.Next()
	var nm reldb.Value
	if name != "" {
		nm = reldb.String_(name)
	}
	row := reldb.Row{reldb.Int(id), nm, reldb.Int(start), reldb.Int(end), reldb.Float(cost), reldb.Bool(true)}
	if _, err := n.links.Insert(row); err != nil {
		return 0, err
	}
	return id, nil
}

// RemoveLink deletes a link by ID.
func (n *LogicalNetwork) RemoveLink(linkID int64) error {
	rid, ok := n.linkPK.LookupOne(reldb.Key{reldb.Int(linkID)})
	if !ok {
		return fmt.Errorf("%w: link %d", reldb.ErrNoSuchRow, linkID)
	}
	return n.links.Delete(rid)
}

// NumNodes and NumLinks report the network size.
func (n *LogicalNetwork) NumNodes() int { return n.nodes.Len() }

// NumLinks reports the number of links.
func (n *LogicalNetwork) NumLinks() int { return n.links.Len() }

// HasNode implements Graph.
func (n *LogicalNetwork) HasNode(node int64) bool {
	return n.nodePK.Contains(reldb.Key{reldb.Int(node)})
}

// Nodes implements Graph.
func (n *LogicalNetwork) Nodes(fn func(node int64) bool) {
	n.nodes.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		return fn(r[0].Int64())
	})
}

// OutLinks implements Graph.
func (n *LogicalNetwork) OutLinks(node int64, fn func(linkID, end int64, cost float64) bool) {
	n.visitLinks(n.linkStart, node, 3, fn)
}

// InLinks implements Graph.
func (n *LogicalNetwork) InLinks(node int64, fn func(linkID, start int64, cost float64) bool) {
	n.visitLinks(n.linkEnd, node, 2, fn)
}

// visitLinks materializes the matching row IDs first (so the index lock is
// not held while rows are fetched), then streams link rows to fn; otherCol
// is the column holding the far endpoint.
func (n *LogicalNetwork) visitLinks(ix *reldb.Index, node int64, otherCol int, fn func(linkID, other int64, cost float64) bool) {
	var ids []reldb.RowID
	ix.ScanPrefix(reldb.Key{reldb.Int(node)}, func(_ reldb.Key, id reldb.RowID) bool {
		ids = append(ids, id)
		return true
	})
	for _, id := range ids {
		r, err := n.links.Get(id)
		if err != nil {
			continue
		}
		if !fn(r[0].Int64(), r[otherCol].Int64(), r[4].Float64()) {
			return
		}
	}
}

var _ Graph = (*LogicalNetwork)(nil)

package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdfterm"
)

func assertInvariants(t *testing.T, s *Store) {
	t.Helper()
	for _, err := range s.CheckInvariants() {
		t.Error(err)
	}
}

func TestInvariantsOnHealthyStore(t *testing.T) {
	s := newStoreWithModel(t, "m1", "m2")
	a := govAliases()
	base, _ := s.NewTripleS("m1", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m2", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m1", "_:x", "rdf:type", "gov:Thing", a)
	s.Reify("m1", base.TID)
	s.AssertImplied("m1", "gov:N", "gov:said", "gov:q", "gov:r", "gov:s2", a)
	s.CreateContainer("m1", BagContainer, rdfterm.NewURI("http://m/1"), rdfterm.NewLiteral("two"))
	assertInvariants(t, s)
}

// TestQuickStoreInvariants hammers the store with random operation
// sequences (insert, duplicate insert, delete, reify, assert-implied,
// drop-model) and verifies the cross-table invariants after each run.
func TestQuickStoreInvariants(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
		models := []string{"m0", "m1", "m2"}
		for _, m := range models {
			if _, err := s.CreateRDFModel(m, "", ""); err != nil {
				return false
			}
		}
		term := func() string { return fmt.Sprintf("x:t%d", rng.Intn(12)) }
		var inserted []TripleS
		for i := 0; i < int(nops)+20; i++ {
			m := models[rng.Intn(len(models))]
			switch rng.Intn(6) {
			case 0, 1: // insert (possibly duplicate)
				ts, err := s.NewTripleS(m, term(), term(), term(), a)
				if err != nil {
					return false
				}
				inserted = append(inserted, ts)
			case 2: // delete a random known triple (may be already gone)
				if len(inserted) == 0 {
					continue
				}
				ts := inserted[rng.Intn(len(inserted))]
				tr, err := ts.GetTriple()
				if err != nil {
					continue // already fully deleted
				}
				name := models[0]
				for _, mm := range models {
					if id, err := s.GetModelID(mm); err == nil && id == ts.MID {
						name = mm
					}
				}
				_ = s.DeleteTriple(name, tr.Subject.Value, tr.Property.Value, tr.Object.Value, a)
			case 3: // reify a random known triple
				if len(inserted) == 0 {
					continue
				}
				ts := inserted[rng.Intn(len(inserted))]
				name := models[0]
				for _, mm := range models {
					if id, err := s.GetModelID(mm); err == nil && id == ts.MID {
						name = mm
					}
				}
				_, _ = s.Reify(name, ts.TID) // may fail if deleted; fine
			case 4: // implied assertion
				if _, err := s.AssertImplied(m, term(), term(), term(), term(), term(), a); err != nil {
					return false
				}
			case 5: // blank nodes
				if _, err := s.NewTripleS(m, "_:b"+fmt.Sprint(rng.Intn(4)), term(), term(), a); err != nil {
					return false
				}
			}
		}
		return len(s.CheckInvariants()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentInsertsAcrossModels runs parallel writers on different
// models with concurrent readers, then validates invariants (run under
// -race in CI).
func TestConcurrentInsertsAcrossModels(t *testing.T) {
	s := New()
	a := rdfterm.Default().With(rdfterm.Alias{Prefix: "x", Namespace: "http://x#"})
	const writers = 4
	const perWriter = 200
	for w := 0; w < writers; w++ {
		if _, err := s.CreateRDFModel(fmt.Sprintf("m%d", w), "", ""); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := fmt.Sprintf("m%d", w)
			for i := 0; i < perWriter; i++ {
				// Shared terms across writers exercise value interning races.
				_, err := s.NewTripleS(model,
					fmt.Sprintf("x:s%d", i%20),
					"x:p",
					fmt.Sprintf("x:o%d", i),
					a)
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, _, err := s.IsTriple("m0", "x:s1", "x:p", "x:o1", a); err != nil {
					errCh <- err
					return
				}
				s.NumValues()
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		n, err := s.NumTriples(fmt.Sprintf("m%d", w))
		if err != nil || n != perWriter {
			t.Fatalf("model m%d has %d triples (err %v)", w, n, err)
		}
	}
	assertInvariants(t, s)
	// Interned subjects are shared: only 20 distinct x:s values exist.
	subjects := 0
	for i := 0; i < 20; i++ {
		if _, ok := s.lookupValueIDLocked(rdfterm.NewURI(fmt.Sprintf("http://x#s%d", i))); ok {
			subjects++
		}
	}
	if subjects != 20 {
		t.Fatalf("interned subjects = %d", subjects)
	}
}

// Package load implements the parallel bulk-load pipeline: N-Triples
// parsing fans out to worker goroutines over bounded channels while a
// single batching consumer receives the parsed triples in input order.
//
// The shape follows the bulk-ingest pipelines of production triple
// stores (Cayley's quad batching, the paper's §7.3 Java bulk loader):
// parsing is the CPU-bound stage and parallelizes embarrassingly line by
// line, while insertion is serialized anyway by the store's write lock —
// so the pipeline is parse-parallel, insert-batched:
//
//	scanner ──chunks──▶ N parse workers ──parsed──▶ reorder + batch ──▶ sink
//
// Every stage propagates errors: a parse error (reported with its input
// line number), a scanner error, or a sink error cancels the pipeline,
// and the first error in input order wins deterministically.
package load

import (
	"bufio"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/ntriples"
)

// Defaults for Options zero values.
const (
	// DefaultBatchSize is the number of triples per sink call.
	DefaultBatchSize = 1024
	// DefaultChunkLines is the number of input lines handed to a parse
	// worker at a time.
	DefaultChunkLines = 256
)

// Options tune the pipeline.
type Options struct {
	// Workers is the number of parallel parse workers. 0 uses
	// GOMAXPROCS; 1 parses serially on the calling goroutine.
	Workers int
	// BatchSize is the number of triples per sink call (default
	// DefaultBatchSize).
	BatchSize int
	// ChunkLines is the number of lines per parse chunk (default
	// DefaultChunkLines). Smaller chunks spread uneven lines better;
	// larger chunks amortize channel traffic.
	ChunkLines int
}

func (o Options) workers() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) batchSize() int {
	if o.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return o.BatchSize
}

func (o Options) chunkLines() int {
	if o.ChunkLines <= 0 {
		return DefaultChunkLines
	}
	return o.ChunkLines
}

// Run streams N-Triples from r through the pipeline, delivering parsed
// triples to sink in input order, BatchSize at a time (the final batch
// may be short). The batch slice is reused between calls — sink must not
// retain it. Run returns the number of triples delivered.
func Run(r io.Reader, opts Options, sink func([]ntriples.Triple) error) (int, error) {
	if opts.workers() == 1 {
		return runSerial(r, opts.batchSize(), sink)
	}
	return runParallel(r, opts, sink)
}

// Parse reads all triples from r with parallel parse workers, preserving
// input order — the collect-everything entry point for loaders that must
// see the whole input before inserting (reification folding, §7.3).
func Parse(r io.Reader, opts Options) ([]ntriples.Triple, error) {
	var out []ntriples.Triple
	_, err := Run(r, opts, func(batch []ntriples.Triple) error {
		out = append(out, batch...)
		return nil
	})
	return out, err
}

// BulkLoad streams r straight into store.InsertBatch on model — the
// fast path for inputs without reification quads to fold. Each batch is
// one write-lock acquisition and one WAL commit point.
func BulkLoad(store *core.Store, model string, r io.Reader, opts Options) (int, error) {
	batch := make([]core.BatchTriple, 0, opts.batchSize())
	return Run(r, opts, func(ts []ntriples.Triple) error {
		batch = batch[:0]
		for _, t := range ts {
			batch = append(batch, core.BatchTriple{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object})
		}
		_, err := store.InsertBatch(model, batch)
		return err
	})
}

// runSerial is the no-goroutine path for Workers == 1.
func runSerial(r io.Reader, batchSize int, sink func([]ntriples.Triple) error) (int, error) {
	reader := ntriples.NewReader(r)
	batch := make([]ntriples.Triple, 0, batchSize)
	total := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := sink(batch); err != nil {
			return err
		}
		total += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		t, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return total, err
		}
		batch = append(batch, t)
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	return total, flush()
}

// chunk is a numbered group of raw input lines headed to a parse worker.
type chunk struct {
	seq   int
	line  int // input line number of lines[0], 1-based
	lines []string
}

// parsed is a worker's output for one chunk.
type parsed struct {
	seq     int
	triples []ntriples.Triple
	err     error
}

func runParallel(r io.Reader, opts Options, sink func([]ntriples.Triple) error) (int, error) {
	workers := opts.workers()
	batchSize := opts.batchSize()
	chunkLines := opts.chunkLines()

	// Bounded channels: the scanner can run at most ~2×workers chunks
	// ahead of the slowest worker, and workers at most one batch ahead
	// of the consumer — memory stays flat on arbitrarily large inputs.
	chunks := make(chan chunk, workers)
	results := make(chan parsed, workers)
	quit := make(chan struct{})
	var quitOnce sync.Once
	cancel := func() { quitOnce.Do(func() { close(quit) }) }
	defer cancel()

	// Stage 1: scanner. Groups lines into numbered chunks.
	var scanErr error
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		defer close(chunks)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), ntriples.MaxLineLen)
		seq, lineNo := 0, 0
		lines := make([]string, 0, chunkLines)
		send := func() bool {
			if len(lines) == 0 {
				return true
			}
			c := chunk{seq: seq, line: lineNo - len(lines) + 1, lines: lines}
			select {
			case chunks <- c:
				seq++
				lines = make([]string, 0, chunkLines)
				return true
			case <-quit:
				return false
			}
		}
		for sc.Scan() {
			lineNo++
			lines = append(lines, sc.Text())
			if len(lines) >= chunkLines {
				if !send() {
					return
				}
			}
		}
		send()
		scanErr = sc.Err()
	}()

	// Stage 2: parse workers.
	var workWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			for c := range chunks {
				p := parsed{seq: c.seq}
				ts := make([]ntriples.Triple, 0, len(c.lines))
				for i, line := range c.lines {
					t, ok, err := ntriples.ParseLine(line, c.line+i)
					if err != nil {
						p.err = err
						break
					}
					if ok {
						ts = append(ts, t)
					}
				}
				if p.err == nil {
					p.triples = ts
				}
				select {
				case results <- p:
				case <-quit:
					return
				}
			}
		}()
	}
	go func() {
		scanWG.Wait()
		workWG.Wait()
		close(results)
	}()

	// Stage 3: reorder and batch, on the calling goroutine. Chunks
	// complete out of order; they are re-sequenced before batching so
	// the sink observes input order, and an error is reported at the
	// earliest input position regardless of which worker hit it first.
	total := 0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		cancel()
	}
	pending := make(map[int]parsed)
	next := 0
	batch := make([]ntriples.Triple, 0, batchSize)
	flush := func() {
		if len(batch) == 0 || firstErr != nil {
			return
		}
		if err := sink(batch); err != nil {
			fail(err)
			return
		}
		total += len(batch)
		batch = batch[:0]
	}
	for p := range results {
		if firstErr != nil {
			continue // draining so the workers can exit
		}
		pending[p.seq] = p
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if q.err != nil {
				fail(q.err)
				break
			}
			for _, t := range q.triples {
				batch = append(batch, t)
				if len(batch) >= batchSize {
					flush()
				}
			}
			if firstErr != nil {
				break
			}
		}
	}
	if firstErr != nil {
		return total, firstErr
	}
	if scanErr != nil {
		return total, scanErr
	}
	flush()
	return total, firstErr
}

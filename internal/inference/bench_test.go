package inference

// Benchmark for the rules-index build cost (the paper's CREATE_RULES_INDEX
// set-up cost, analogous to §7.3's note about reification set-up costs).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ntriples"
	"repro/internal/uniprot"
)

func BenchmarkRulesIndexBuild10k(b *testing.B) {
	s := core.New()
	s.CreateRDFModel("up", "", "")
	uniprot.Stream(uniprot.Config{Triples: 10000, Seed: 1}, func(t ntriples.Triple, _ bool) error {
		_, err := s.InsertTerms("up", t.Subject, t.Predicate, t.Object)
		return err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCatalog(s)
		ix, err := c.CreateRulesIndex("ix", []string{"up"}, []string{RDFSRulebaseName})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("inferred %d", ix.InferredCount())
		b.StopTimer()
		c.DropRulesIndex("ix")
		b.StartTimer()
	}
}

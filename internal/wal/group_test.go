package wal

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// groupRecords is a small mixed record workload for group-commit tests.
func groupRecords() []Record {
	return []Record{
		{Type: TypeCreateModel, ModelID: 7, Name: "m"},
		{Type: TypeInternValue, ValueID: 1068, Text: "http://a", ValueType: "UR"},
		{Type: TypeInternValue, ValueID: 1069, Text: "lit", ValueType: "PL", Language: "en"},
		{Type: TypeInsertLink, LinkID: 2051, ModelID: 7, StartID: 1068, PropID: 1069,
			EndID: 1068, CanonID: 1068, LinkType: "RDF_MEMBER", Cost: 1, Context: "D"},
		{Type: TypeUpdateLink, LinkID: 2051, Cost: 2, Context: "D"},
		{Type: TypeSeqAdvance, Seq: SeqBlank, SeqValue: 3},
		{Type: TypeDeleteLink, LinkID: 2051},
	}
}

// TestGroupLogSameImage: a GroupLog must produce byte-identical log
// images to a plain Log for the same record stream.
func TestGroupLogSameImage(t *testing.T) {
	recs := groupRecords()

	plain := &BufferFile{}
	l, err := NewLog(plain, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	grouped := &BufferFile{}
	gl, err := NewLog(grouped, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(gl, GroupOptions{SyncEvery: 3})
	for _, r := range recs {
		if err := g.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), grouped.Bytes()) {
		t.Fatalf("group image (%d bytes) differs from plain image (%d bytes)",
			grouped.Len(), plain.Len())
	}
	res, err := ScanBytes(grouped.Bytes())
	if err != nil || res.Truncated {
		t.Fatalf("scan: %v (truncated=%v)", err, res.Truncated)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(res.Records), len(recs))
	}
}

// TestGroupLogBuffersUntilThreshold: commits below SyncEvery stay in
// memory; the SyncEvery-th lands everything at once.
func TestGroupLogBuffersUntilThreshold(t *testing.T) {
	f := &BufferFile{}
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 3})
	header := f.Len()

	for i := 0; i < 2; i++ {
		if err := g.Append(Record{Type: TypeDeleteLink, LinkID: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != header {
		t.Fatalf("bytes written before threshold: %d", f.Len()-header)
	}
	if got := g.Buffered(); got != 2 {
		t.Fatalf("Buffered() = %d, want 2", got)
	}
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if f.Len() == header {
		t.Fatal("threshold commit wrote nothing")
	}
	res, err := ScanBytes(f.Bytes())
	if err != nil || res.Truncated || len(res.Records) != 3 {
		t.Fatalf("scan after group flush: %v records=%d truncated=%v", err, len(res.Records), res.Truncated)
	}
	if got := g.Buffered(); got != 0 {
		t.Fatalf("Buffered() after flush = %d, want 0", got)
	}
}

// TestGroupLogIntervalFlush: with an Interval, a lone commit becomes
// durable without reaching SyncEvery.
func TestGroupLogIntervalFlush(t *testing.T) {
	f := &BufferFile{}
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 1000, Interval: 5 * time.Millisecond})
	defer g.Close()
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.Buffered() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced the pending commit")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := ScanBytes(f.Bytes())
	if err != nil || len(res.Records) != 1 {
		t.Fatalf("scan after interval flush: %v records=%d", err, len(res.Records))
	}
}

// TestGroupLogLatchesFlushError: after a failed flush the in-memory
// store is ahead of the log; every later operation must keep failing.
func TestGroupLogLatchesFlushError(t *testing.T) {
	ff := &FaultFile{FailAt: int64(len(Magic)), Mode: FailStop}
	l, err := NewLog(ff, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 2})
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatalf("buffered commit should not touch the file: %v", err)
	}
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err == nil {
		t.Fatal("flush over a dead file succeeded")
	}
	if err := g.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("error not latched on Commit: %v", err)
	}
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 3}); !errors.Is(err, ErrInjected) {
		t.Fatalf("error not latched on Append: %v", err)
	}
	if err := g.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("error not latched on Flush: %v", err)
	}
}

// TestGroupLogCloseFlushes: Close must land buffered commits before
// closing the file.
func TestGroupLogCloseFlushes(t *testing.T) {
	f := &BufferFile{}
	l, err := NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 100, Interval: time.Hour})
	if err := g.Append(Record{Type: TypeDeleteLink, LinkID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanBytes(f.Bytes())
	if err != nil || len(res.Records) != 1 {
		t.Fatalf("scan after Close: %v records=%d", err, len(res.Records))
	}
}

// Package viewcheck enforces the ReadView safety contract from
// internal/core/view.go. A ReadView closure runs with the store's read
// lock held for its whole duration, so three things must be true of it:
//
//  1. No reentrant locking: the closure must not call locking store
//     entry points — the RWMutex is not reentrant, so a nested RLock
//     (or a writer Lock) on the same store deadlocks under contention.
//     Inside the closure, only *Locked methods may touch the store type
//     that provided the view (calling ReadView again is itself such a
//     violation).
//  2. No escape: the *ReadTx is only valid while the closure runs. It
//     must not be stored in fields, globals, or outer locals, sent on a
//     channel, captured by a spawned goroutine, or smuggled out through
//     the closure's return value.
//  3. Prompt cancellation: a loop that probes the snapshot through
//     *Locked calls must poll cancellation each iteration — tickLocked,
//     or a direct ctx.Err()/ctx.Done() check — so a runaway scan
//     releases the read lock soon after a cancel or deadline. This rule
//     is package-wide, not closure-local: the streaming iterators hold
//     the ReadTx in a struct field and loop in their own methods.
//
// The pass is shape-driven, matching the contract the way the code
// spells it: a method named ReadView whose final argument is a func
// taking a *ReadTx marks the closure, and the method's receiver type is
// the store whose locking surface is then off limits. This keeps the
// fixtures self-contained and means any future store following the same
// idiom is covered automatically.
package viewcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/guard"
)

var Analyzer = &framework.Analyzer{
	Name: "viewcheck",
	Doc: "check ReadView closures for reentrant store calls, ReadTx escape, " +
		"and unpolled snapshot scan loops",
	Run: run,
	// White-box core tests poke *Locked internals single-threaded.
	SkipTestFiles: true,
}

const readTxTypeName = "ReadTx"

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if lit, storeTN, ok := readViewClosure(pass, call); ok {
					checkClosure(pass, lit, storeTN)
				}
			}
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkScanLoops(pass, body)
			}
			return true
		})
	}
	return nil
}

// readViewClosure matches `store.ReadView(ctx, func(tx *ReadTx) error
// {...})` and returns the closure literal plus the store's type name.
func readViewClosure(pass *framework.Pass, call *ast.CallExpr) (*ast.FuncLit, *types.TypeName, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ReadView" || len(call.Args) == 0 {
		return nil, nil, false
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok || lit.Type.Params == nil || len(lit.Type.Params.List) != 1 {
		return nil, nil, false
	}
	ptv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return nil, nil, false
	}
	storeTN := guard.NamedOf(ptv.Type)
	if storeTN == nil {
		return nil, nil, false
	}
	// The closure's one parameter must be the view transaction.
	param := lit.Type.Params.List[0]
	if tv, ok := pass.TypesInfo.Types[param.Type]; ok {
		if tn := guard.NamedOf(tv.Type); tn != nil && tn.Name() == readTxTypeName {
			return lit, storeTN, true
		}
	}
	return nil, nil, false
}

// checkClosure applies the reentrancy and escape rules to one closure.
func checkClosure(pass *framework.Pass, lit *ast.FuncLit, storeTN *types.TypeName) {
	var txObj *types.Var
	param := lit.Type.Params.List[0]
	if len(param.Names) == 1 {
		txObj, _ = pass.TypesInfo.Defs[param.Names[0]].(*types.Var)
	}

	// Collect nested literal ranges: their own return statements return
	// from the nested function, not from the view closure.
	var nested []*ast.FuncLit
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if nl, ok := n.(*ast.FuncLit); ok && nl != lit {
			nested = append(nested, nl)
		}
		return true
	})
	inNested := func(n ast.Node) bool {
		for _, nl := range nested {
			if n.Pos() > nl.Pos() && n.End() <= nl.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Rule 1: no locking entry points on the store type. Nested
			// literals are included — scan callbacks run under the view.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			rtv, ok := pass.TypesInfo.Types[sel.X]
			if !ok {
				return true
			}
			if tn := guard.NamedOf(rtv.Type); tn == storeTN &&
				!strings.HasSuffix(sel.Sel.Name, "Locked") {
				pass.Reportf(n.Pos(),
					"call to locking %s.%s inside a ReadView closure; the read lock is already held and the RWMutex is not reentrant — use a *Locked method on the ReadTx",
					storeTN.Name(), sel.Sel.Name)
			}

		case *ast.AssignStmt:
			if txObj == nil {
				return true
			}
			// Rule 2a: tx stored through a field/index, or into a binding
			// declared outside the closure, outlives the view. Storing a
			// *result* computed from tx is the whole point of a view
			// (`out = tx.PlanStatsLocked(mid)`), so tx buried inside a
			// call does not count — only the tx value itself escaping.
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !escapesViaResult(pass, rhs, txObj) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					obj := pass.TypesInfo.Defs[l]
					if obj == nil {
						obj = pass.TypesInfo.Uses[l]
					}
					if obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
						pass.Reportf(n.Pos(),
							"ReadTx escapes the ReadView closure: assigned to %q, which outlives the view", l.Name)
					}
				default:
					pass.Reportf(n.Pos(),
						"ReadTx escapes the ReadView closure: stored through %s, which outlives the view", guard.Render(lhs))
				}
			}

		case *ast.SendStmt:
			if txObj != nil && escapesViaResult(pass, n.Value, txObj) {
				pass.Reportf(n.Pos(), "ReadTx escapes the ReadView closure: sent on a channel")
			}

		case *ast.GoStmt:
			// Rule 2b: a goroutine outlives the closure even when spawned
			// from a nested callback.
			if txObj != nil && refersTo(pass, n.Call, txObj) {
				pass.Reportf(n.Pos(), "ReadTx escapes the ReadView closure: captured by a spawned goroutine")
			}
			return false // reported (or clean) as a whole

		case *ast.ReturnStmt:
			if txObj == nil || inNested(n) {
				return true
			}
			// Rule 2c: returning tx inside a composite value or closure
			// smuggles it past the unlock. Passing tx to a call in the
			// return expression is ordinary synchronous use and fine.
			for _, res := range n.Results {
				if escapesViaResult(pass, res, txObj) {
					pass.Reportf(n.Pos(), "ReadTx escapes the ReadView closure: returned to the caller after the lock is released")
				}
			}
		}
		return true
	})
}

// refersTo reports whether expr mentions the object anywhere.
func refersTo(pass *framework.Pass, n ast.Node, obj *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// escapesViaResult reports whether an expression carries obj itself out
// of the closure: obj as the value, obj inside a composite literal, or
// obj captured by a function literal. obj appearing only inside an
// ordinary call does not count — the callee runs synchronously and only
// its result flows out. append is the exception: it stores its arguments
// in the destination slice.
func escapesViaResult(pass *framework.Pass, res ast.Expr, obj *types.Var) bool {
	if id, ok := res.(*ast.Ident); ok {
		return pass.TypesInfo.Uses[id] == obj
	}
	found := false
	ast.Inspect(res, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "append" && len(m.Args) > 1 {
				for _, a := range m.Args[1:] {
					if refersTo(pass, a, obj) {
						found = true
					}
				}
			}
			// Otherwise synchronous use; skip the call and its args.
			return false
		case *ast.CompositeLit, *ast.FuncLit:
			if refersTo(pass, m, obj) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// checkScanLoops enforces rule 3 over one function body: any for/range
// loop whose own body (not a nested loop's, not a nested literal's)
// probes the snapshot through *Locked calls must also poll cancellation.
func checkScanLoops(pass *framework.Pass, body *ast.BlockStmt) {
	type loopInfo struct {
		loop    ast.Stmt
		probe   string
		nProbes int
		hasPoll bool
	}

	var walk func(n ast.Node, cur *loopInfo)
	report := func(li *loopInfo) {
		if li.nProbes > 0 && !li.hasPoll {
			pass.Reportf(li.loop.Pos(),
				"loop probes the snapshot via %s without polling cancellation; call tickLocked (or check the view context) each iteration",
				li.probe)
		}
	}
	walk = func(n ast.Node, cur *loopInfo) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				li := &loopInfo{loop: m.(ast.Stmt)}
				walk(m, li)
				report(li)
				return false
			case *ast.FuncLit:
				// A literal's body is its own scan context; run visits
				// every FuncLit in the file, so it is checked separately.
				return false
			case *ast.CallExpr:
				if cur == nil {
					return true
				}
				if isPoll(pass, m) {
					cur.hasPoll = true
				} else if name, ok := isProbe(pass, m); ok {
					cur.nProbes++
					if cur.probe == "" {
						cur.probe = name
					}
				}
			}
			return true
		})
	}
	walk(body, nil)
}

// isProbe matches tx.XxxLocked(...) calls on a ReadTx-typed receiver.
func isProbe(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") || sel.Sel.Name == "tickLocked" {
		return "", false
	}
	rtv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	tn := guard.NamedOf(rtv.Type)
	if tn == nil || tn.Name() != readTxTypeName {
		return "", false
	}
	return tn.Name() + "." + sel.Sel.Name, true
}

// isPoll matches cancellation checks: tickLocked (and the iterator-local
// tick helpers wrapping it), or Err/Done on a context.Context.
func isPoll(pass *framework.Pass, call *ast.CallExpr) bool {
	var name string
	var recv ast.Expr
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
		recv = f.X
	default:
		return false
	}
	if name == "tickLocked" || name == "tick" {
		return true
	}
	if (name == "Err" || name == "Done") && recv != nil {
		if rtv, ok := pass.TypesInfo.Types[recv]; ok {
			if tn := guard.NamedOf(rtv.Type); tn != nil &&
				tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

package ndm

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
)

// cancelEvery is how many search steps (heap pops / frontier visits) an
// analysis performs between context checks in the *Ctx entry points.
const cancelEvery = 256

// Path is a walk through the network: Nodes has one more element than
// Links, and Cost is the sum of link costs.
type Path struct {
	Nodes []int64
	Links []int64
	Cost  float64
}

// ErrNoPath is returned when no path exists between the requested nodes.
var ErrNoPath = fmt.Errorf("ndm: no path")

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node int64
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

type edgeTo struct {
	prev int64
	link int64
}

// ShortestPath returns a minimum-cost directed path from source to target
// (Dijkstra; link costs must be non-negative, which AddLink enforces).
func ShortestPath(g Graph, source, target int64) (Path, error) {
	//repro:vet-ignore ctxcheck compatibility wrapper for context-free callers; the serving path enters through ShortestPathCtx
	return ShortestPathCtx(context.Background(), g, source, target)
}

// ShortestPathCtx is ShortestPath with cancellation: the Dijkstra loop
// polls ctx every cancelEvery pops, so a search over a large network
// aborts promptly on cancel or deadline.
func ShortestPathCtx(ctx context.Context, g Graph, source, target int64) (Path, error) {
	if err := ctx.Err(); err != nil {
		return Path{}, fmt.Errorf("ndm: shortest path: %w", err)
	}
	if !g.HasNode(source) || !g.HasNode(target) {
		return Path{}, fmt.Errorf("%w: endpoint missing", ErrNoPath)
	}
	dist := map[int64]float64{source: 0}
	from := map[int64]edgeTo{}
	done := map[int64]bool{}
	q := &pq{{node: source, dist: 0}}
	steps := 0
	for q.Len() > 0 {
		steps++
		if steps%cancelEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Path{}, fmt.Errorf("ndm: shortest path: %w", err)
			}
		}
		cur := heap.Pop(q).(pqItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == target {
			break
		}
		g.OutLinks(cur.node, func(linkID, end int64, cost float64) bool {
			nd := cur.dist + cost
			if old, seen := dist[end]; !seen || nd < old {
				dist[end] = nd
				from[end] = edgeTo{prev: cur.node, link: linkID}
				heap.Push(q, pqItem{node: end, dist: nd})
			}
			return true
		})
	}
	if !done[target] {
		return Path{}, ErrNoPath
	}
	// Reconstruct.
	var nodes []int64
	var links []int64
	for at := target; ; {
		nodes = append(nodes, at)
		e, ok := from[at]
		if !ok {
			break
		}
		links = append(links, e.link)
		at = e.prev
	}
	reverse(nodes)
	reverse(links)
	return Path{Nodes: nodes, Links: links, Cost: dist[target]}, nil
}

func reverse(s []int64) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// NodeCost pairs a node with its cost/distance from a source.
type NodeCost struct {
	Node int64
	Cost float64
}

// WithinCost returns every node reachable from source with total path cost
// <= maxCost (excluding source itself), sorted by cost then node ID — NDM's
// "within cost" analysis.
func WithinCost(g Graph, source int64, maxCost float64) ([]NodeCost, error) {
	//repro:vet-ignore ctxcheck compatibility wrapper for context-free callers; the serving path enters through WithinCostCtx
	return WithinCostCtx(context.Background(), g, source, maxCost)
}

// WithinCostCtx is WithinCost with cancellation (see ShortestPathCtx).
func WithinCostCtx(ctx context.Context, g Graph, source int64, maxCost float64) ([]NodeCost, error) {
	dist, err := dijkstraAll(ctx, g, source, maxCost)
	if err != nil {
		return nil, err
	}
	var out []NodeCost
	for node, d := range dist {
		if node != source && d <= maxCost {
			out = append(out, NodeCost{Node: node, Cost: d})
		}
	}
	sortNodeCosts(out)
	return out, nil
}

// NearestNeighbors returns the k reachable nodes closest to source
// (excluding source), sorted by cost then node ID.
func NearestNeighbors(g Graph, source int64, k int) ([]NodeCost, error) {
	//repro:vet-ignore ctxcheck compatibility wrapper for context-free callers; the serving path enters through NearestNeighborsCtx
	return NearestNeighborsCtx(context.Background(), g, source, k)
}

// NearestNeighborsCtx is NearestNeighbors with cancellation (see
// ShortestPathCtx).
func NearestNeighborsCtx(ctx context.Context, g Graph, source int64, k int) ([]NodeCost, error) {
	dist, err := dijkstraAll(ctx, g, source, -1)
	if err != nil {
		return nil, err
	}
	var out []NodeCost
	for node, d := range dist {
		if node != source {
			out = append(out, NodeCost{Node: node, Cost: d})
		}
	}
	sortNodeCosts(out)
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func sortNodeCosts(out []NodeCost) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Node < out[j].Node
	})
}

// dijkstraAll computes distances from source; maxCost < 0 means
// unbounded. The pop loop polls ctx every cancelEvery steps.
func dijkstraAll(ctx context.Context, g Graph, source int64, maxCost float64) (map[int64]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ndm: cost analysis: %w", err)
	}
	if !g.HasNode(source) {
		return nil, fmt.Errorf("ndm: node %d does not exist", source)
	}
	dist := map[int64]float64{source: 0}
	done := map[int64]bool{}
	q := &pq{{node: source, dist: 0}}
	steps := 0
	for q.Len() > 0 {
		steps++
		if steps%cancelEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ndm: cost analysis: %w", err)
			}
		}
		cur := heap.Pop(q).(pqItem)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		g.OutLinks(cur.node, func(_, end int64, cost float64) bool {
			nd := cur.dist + cost
			if maxCost >= 0 && nd > maxCost {
				return true
			}
			if old, seen := dist[end]; !seen || nd < old {
				dist[end] = nd
				heap.Push(q, pqItem{node: end, dist: nd})
			}
			return true
		})
	}
	return dist, nil
}

// Reachable returns every node reachable from source by directed links
// within maxDepth hops (maxDepth < 0 = unbounded), excluding source,
// sorted by node ID.
func Reachable(g Graph, source int64, maxDepth int) ([]int64, error) {
	//repro:vet-ignore ctxcheck compatibility wrapper for context-free callers; the serving path enters through ReachableCtx
	return ReachableCtx(context.Background(), g, source, maxDepth)
}

// ReachableCtx is Reachable with cancellation: the BFS polls ctx every
// cancelEvery frontier visits.
func ReachableCtx(ctx context.Context, g Graph, source int64, maxDepth int) ([]int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ndm: reachability: %w", err)
	}
	if !g.HasNode(source) {
		return nil, fmt.Errorf("ndm: node %d does not exist", source)
	}
	seen := map[int64]bool{source: true}
	frontier := []int64{source}
	depth := 0
	visits := 0
	for len(frontier) > 0 && (maxDepth < 0 || depth < maxDepth) {
		var next []int64
		for _, n := range frontier {
			visits++
			if visits%cancelEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("ndm: reachability: %w", err)
				}
			}
			g.OutLinks(n, func(_, end int64, _ float64) bool {
				if !seen[end] {
					seen[end] = true
					next = append(next, end)
				}
				return true
			})
		}
		frontier = next
		depth++
	}
	var out []int64
	for n := range seen {
		if n != source {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// IsReachable reports whether target can be reached from source.
func IsReachable(g Graph, source, target int64) bool {
	if !g.HasNode(source) || !g.HasNode(target) {
		return false
	}
	if source == target {
		return true
	}
	seen := map[int64]bool{source: true}
	stack := []int64{source}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		found := false
		g.OutLinks(n, func(_, end int64, _ float64) bool {
			if end == target {
				found = true
				return false
			}
			if !seen[end] {
				seen[end] = true
				stack = append(stack, end)
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// ConnectedComponents returns the weakly connected components (treating
// links as undirected), each sorted by node ID, ordered by smallest member.
func ConnectedComponents(g Graph) [][]int64 {
	seen := map[int64]bool{}
	var comps [][]int64
	g.Nodes(func(start int64) bool {
		if seen[start] {
			return true
		}
		var comp []int64
		stack := []int64{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			visit := func(other int64) {
				if !seen[other] {
					seen[other] = true
					stack = append(stack, other)
				}
			}
			g.OutLinks(n, func(_, end int64, _ float64) bool { visit(end); return true })
			g.InLinks(n, func(_, from int64, _ float64) bool { visit(from); return true })
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
		return true
	})
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// SpanningTreeEdge is one edge of a minimum-cost spanning tree.
type SpanningTreeEdge struct {
	Link     int64
	From, To int64
	Cost     float64
}

// MinimumCostSpanningTree runs Prim's algorithm over the undirected view
// of the component containing root, returning the tree edges and total
// cost — NDM's MCST analysis.
func MinimumCostSpanningTree(g Graph, root int64) ([]SpanningTreeEdge, float64, error) {
	if !g.HasNode(root) {
		return nil, 0, fmt.Errorf("ndm: node %d does not exist", root)
	}
	inTree := map[int64]bool{root: true}
	var edges []SpanningTreeEdge
	total := 0.0
	// Candidate heap keyed by cost.
	h := &mcstHeap{}
	push := func(node int64) {
		g.OutLinks(node, func(link, end int64, cost float64) bool {
			heap.Push(h, SpanningTreeEdge{Link: link, From: node, To: end, Cost: cost})
			return true
		})
		g.InLinks(node, func(link, from int64, cost float64) bool {
			heap.Push(h, SpanningTreeEdge{Link: link, From: node, To: from, Cost: cost})
			return true
		})
	}
	push(root)
	for h.Len() > 0 {
		e := heap.Pop(h).(SpanningTreeEdge)
		if inTree[e.To] {
			continue
		}
		inTree[e.To] = true
		edges = append(edges, e)
		total += e.Cost
		push(e.To)
	}
	return edges, total, nil
}

type mcstHeap []SpanningTreeEdge

func (h mcstHeap) Len() int            { return len(h) }
func (h mcstHeap) Less(i, j int) bool  { return h[i].Cost < h[j].Cost }
func (h mcstHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mcstHeap) Push(x interface{}) { *h = append(*h, x.(SpanningTreeEdge)) }
func (h *mcstHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Degree returns (in, out) degree of a node.
func Degree(g Graph, node int64) (in, out int) {
	g.InLinks(node, func(int64, int64, float64) bool { in++; return true })
	g.OutLinks(node, func(int64, int64, float64) bool { out++; return true })
	return in, out
}

// Provenance demonstrates the paper's motivating use for reification
// (§1, §5): attaching metadata — who asserted a statement, and when — to
// the statements themselves, and then reasoning about statements by their
// provenance.
//
// The streamlined scheme makes this cheap: each reified statement costs
// one extra row, and every assertion about it is an ordinary triple whose
// object is the statement's DBUri.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdfterm"
)

func main() {
	store := core.New()
	if _, err := store.CreateRDFModel("intel", "", ""); err != nil {
		log.Fatal(err)
	}
	aliases := rdfterm.Default().With(
		rdfterm.Alias{Prefix: "gov", Namespace: "http://www.us.gov#"},
		rdfterm.Alias{Prefix: "id", Namespace: "http://www.us.id#"},
		rdfterm.Alias{Prefix: "src", Namespace: "http://www.us.sources#"},
	)

	// Facts observed directly (CONTEXT=D) with recorded sources and dates.
	type obs struct {
		s, p, o, source, date string
	}
	direct := []obs{
		{"id:JohnDoe", "gov:enteredCountry", "June-20-2000", "src:FBI", "2000-06-21"},
		{"gov:files", "gov:terrorSuspect", "id:JohnDoe", "src:MI5", "2001-02-10"},
		{"gov:files", "gov:terrorSuspect", "id:JohnDoe", "src:CIA", "2001-03-01"},
	}
	for _, d := range direct {
		ts, err := store.NewTripleS("intel", d.s, d.p, d.o, aliases)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := store.AssertAboutTriple("intel", d.source, "gov:source", ts.TID, aliases); err != nil {
			log.Fatal(err)
		}
		if _, err := store.AssertAboutTriple("intel", d.source, "gov:reportedOn", ts.TID, aliases); err != nil {
			log.Fatal(err)
		}
		_ = d.date
	}

	// Hearsay: statements that exist only because someone asserted them
	// (CONTEXT=I). "During reasoning over the database it will be
	// evaluated based on the CIA's trust in Interpol" (§5.2).
	if _, err := store.AssertImplied("intel", "src:Interpol", "gov:source",
		"gov:files", "gov:terrorSuspect", "id:JohnDoeJr", aliases); err != nil {
		log.Fatal(err)
	}
	if _, err := store.AssertImplied("intel", "src:Anonymous", "gov:source",
		"gov:files", "gov:terrorSuspect", "id:JaneRoe", aliases); err != nil {
		log.Fatal(err)
	}

	// 1. Who said the JohnDoe statement? (assertions about one triple)
	base, _, err := store.IsTriple("intel", "gov:files", "gov:terrorSuspect", "id:JohnDoe", aliases)
	if err != nil {
		log.Fatal(err)
	}
	asserts, err := store.Assertions("intel", base.TID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assertions about <gov:files gov:terrorSuspect id:JohnDoe>:")
	for _, a := range asserts {
		fmt.Printf("  %s %s R\n", aliases.Compact(a.Subject.Value), aliases.Compact(a.Property.Value))
	}

	// 2. Everything a given source has vouched for: match on the source,
	// resolve each DBUri to its base statement.
	rs, err := match.Match(store, `(src:Interpol gov:source ?stmt)`, match.Options{
		Models:  []string{"intel"},
		Aliases: aliases,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstatements sourced by src:Interpol:")
	for i := 0; i < rs.Len(); i++ {
		stmt, _ := rs.Get(i, "stmt")
		tr, err := store.ResolveDBUri(stmt.Value)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s → <%s %s %s>\n", stmt.Value,
			aliases.Compact(tr.Subject.Value),
			aliases.Compact(tr.Property.Value),
			aliases.Compact(tr.Object.Value))
	}

	// 3. Separate facts from hearsay using CONTEXT (D vs I).
	fmt.Println("\nterror suspects by evidence level:")
	suspects, err := store.Find("intel", core.Pattern{
		Subject:   core.P(rdfterm.NewURI("http://www.us.gov#files")),
		Predicate: core.P(rdfterm.NewURI("http://www.us.gov#terrorSuspect")),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, ts := range suspects {
		info, err := store.LinkInfo(ts.TID)
		if err != nil {
			log.Fatal(err)
		}
		obj, _ := ts.GetObject()
		level := "FACT (direct)"
		if info.Context == core.ContextIndirect {
			level = "HEARSAY (implied — weigh by trust in its sources)"
		}
		sources, _ := store.Assertions("intel", ts.TID)
		var names []string
		for _, s := range sources {
			if s.Property.Value == "http://www.us.gov#source" {
				names = append(names, aliases.Compact(s.Subject.Value))
			}
		}
		fmt.Printf("  %-14s %-50s sources=%v\n", aliases.Compact(obj), level, names)
	}

	// 4. Storage accounting: every reification cost exactly one row.
	stats, err := store.ModelStatistics("intel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstorage: %d rows total, %d reification rows (1 per reified statement; a quad scheme would need %d)\n",
		stats.Triples, stats.Reified, 4*stats.Reified)
}

// Package badctx violates the context-threading contract: fresh
// Background/TODO roots in a request-path package, and calls that drop a
// context the caller already holds. The test registers this package in
// ctxcheck.StrictPackages, standing in for internal/match et al.
package badctx

import (
	"context"
	"time"
)

func find(q string) int { return len(q) }

func findCtx(ctx context.Context, q string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(q)
}

type store struct{}

func (s *store) Match(q string) int { return len(q) }

func (s *store) MatchContext(ctx context.Context, q string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(q)
}

// freshRoot mints a new root although the caller handed it a context:
// the deadline below no longer descends from the request's.
func freshRoot(ctx context.Context, d time.Duration) error {
	wctx, cancel := context.WithTimeout(context.Background(), d) // want `context.Background inside a function that already has a context`
	defer cancel()
	<-wctx.Done()
	return wctx.Err()
}

// strictRoot has no context parameter, but the package is a request
// path: everything here runs downstream of a request context.
func strictRoot() context.Context {
	return context.Background() // want `context.Background in a request-path package`
}

func todoRoot() context.Context {
	return context.TODO() // want `context.TODO in a request-path package`
}

// dropsCtx holds a context and calls the variant that loses it.
func dropsCtx(ctx context.Context, q string) int {
	return find(q) // want `use findCtx so cancellation and deadlines propagate`
}

// dropsMethodCtx drops it through a method call.
func dropsMethodCtx(ctx context.Context, s *store, q string) int {
	return s.Match(q) // want `use store.MatchContext so cancellation and deadlines propagate`
}

// inClosure shows a literal inheriting the enclosing context.
func inClosure(ctx context.Context) func() int {
	return func() int {
		return find("x") // want `use findCtx so cancellation and deadlines propagate`
	}
}

// threaded is clean even here: the context flows to every callee that
// can take one.
func threaded(ctx context.Context, s *store, q string) int {
	return findCtx(ctx, q) + s.MatchContext(ctx, q)
}

// derived is the approved way to tighten a deadline: derive, don't root.
func derived(ctx context.Context, d time.Duration) error {
	wctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	<-wctx.Done()
	return wctx.Err()
}

package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// Vet tool protocol (the contract behind `go vet -vettool=...`), as
// implemented by golang.org/x/tools/go/analysis/unitchecker and re-derived
// here from cmd/go/internal/work.vetConfig. The go command drives the
// tool three ways:
//
//	tool -V=full         → print "<name> version <id>" (build cache key)
//	tool -flags          → print a JSON description of accepted flags
//	tool <unit>.cfg      → analyze one package unit described by the
//	                       JSON config, write the .vetx facts file,
//	                       exit nonzero on findings
//
// Dependencies are presented as compiled export data (PackageFile), so a
// unit check is one types.Config.Check with the stdlib gc importer — no
// source re-checking and no network.

// vetConfig mirrors the fields of cmd/go's vet config JSON that this
// implementation consumes. Unknown fields are ignored by encoding/json,
// which keeps the struct forward-compatible across toolchains.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// VetMain handles a vet-protocol invocation. It returns false when the
// arguments are not a vet-protocol call (so the caller can fall back to
// standalone mode); otherwise it runs to completion and exits.
func VetMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// The version string doubles as the tool's build-cache key;
			// bump it when analyzer behavior changes so cached clean
			// verdicts are invalidated.
			fmt.Printf("repro-vet version repro-vet-1 %s\n", vetCacheEpoch)
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags; an empty JSON list tells cmd/go so.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(vetUnit(args[0], analyzers))
		}
	}
	return false
}

// vetCacheEpoch feeds the -V=full output; see VetMain.
const vetCacheEpoch = "epoch-2"

// vetUnit analyzes one package unit and returns the process exit code.
func vetUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repro-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist even when empty, or cmd/go aborts. This
	// implementation propagates no cross-package facts, so it is always
	// empty — written first so every early exit below is safe.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
			return 1
		}
	}
	// Dependency-only visits exist to propagate facts; with none to
	// compute, they are a no-op.
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "repro-vet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &Package{Dir: cfg.Dir, Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro-vet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, Format(fset, d))
	}
	return 2
}

package rdfterm

import (
	"math"
	"math/big"
	"strconv"
	"strings"
)

// Canonical returns the canonical form of a term. For typed literals with
// a supported XSD datatype the lexical form is normalized (e.g.
// "+01"^^xsd:int → "1"^^xsd:int); everything else canonicalizes to itself.
//
// The canonical term is what the store records as CANON_END_NODE_ID (§4):
// object matching in queries is done on canonical IDs, so "01"^^xsd:int
// and "1"^^xsd:int match without lexical string equality.
func Canonical(t Term) Term {
	if t.Kind != Literal || t.Datatype == "" {
		// Language tags are case-insensitive per BCP 47; canonicalize to
		// lowercase so "EN" and "en" literals unify.
		if t.Kind == Literal && t.Language != "" {
			t.Language = strings.ToLower(t.Language)
		}
		return t
	}
	lex, ok := canonicalLexical(t.Value, t.Datatype)
	if !ok {
		return t // unsupported datatype or invalid lexical form: keep as-is
	}
	t.Value = lex
	return t
}

// canonicalLexical normalizes the lexical form for supported datatypes.
func canonicalLexical(lex, datatype string) (string, bool) {
	s := strings.TrimSpace(lex)
	switch datatype {
	case XSDInteger, XSDInt, XSDLong, XSDShort, XSDByte:
		return canonInteger(s)
	case XSDDecimal:
		return canonDecimal(s)
	case XSDFloat, XSDDouble:
		return canonFloat(s)
	case XSDBoolean:
		return canonBoolean(s)
	case XSDString:
		return lex, true // xsd:string is already canonical; no trimming
	case XSDDate, XSDTime, XSDDateTime:
		// Uppercase the date/time designators; full timezone arithmetic is
		// out of scope for the experiments.
		return strings.ToUpper(s), true
	}
	return "", false
}

func canonInteger(s string) (string, bool) {
	n, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return "", false
	}
	return n.String(), true
}

func canonDecimal(s string) (string, bool) {
	r, ok := new(big.Rat).SetString(s)
	if !ok || strings.ContainsAny(s, "eE/") {
		return "", false // xsd:decimal has no exponent form
	}
	if r.IsInt() {
		return r.Num().String() + ".0", true
	}
	// FloatString with enough digits, then trim trailing zeros.
	out := r.FloatString(32)
	out = strings.TrimRight(out, "0")
	if strings.HasSuffix(out, ".") {
		out += "0"
	}
	return out, true
}

func canonFloat(s string) (string, bool) {
	switch s {
	case "NaN":
		return "NaN", true
	case "INF", "+INF":
		return "INF", true
	case "-INF":
		return "-INF", true
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return "", false
	}
	if math.IsInf(f, 1) {
		return "INF", true
	}
	if math.IsInf(f, -1) {
		return "-INF", true
	}
	// XSD canonical form uses mantissa E exponent, e.g. 1.0E2, 1.5E-1, 0.0E0.
	mant := strconv.FormatFloat(f, 'E', -1, 64) // e.g. "1E+02", "1.5E-01"
	mantissa, exp, _ := strings.Cut(mant, "E")
	if !strings.Contains(mantissa, ".") {
		mantissa += ".0"
	}
	e, err := strconv.Atoi(exp)
	if err != nil {
		return "", false
	}
	return mantissa + "E" + strconv.Itoa(e), true
}

func canonBoolean(s string) (string, bool) {
	switch s {
	case "true", "1":
		return "true", true
	case "false", "0":
		return "false", true
	}
	return "", false
}

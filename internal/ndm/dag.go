package ndm

import (
	"fmt"
	"sort"
)

// DAG-oriented analysis: cycle detection and topological ordering. In the
// RDF setting these answer questions like "is the rdfs:subClassOf
// hierarchy well-formed?" over the store's network view.

// ErrCycle is returned by TopologicalOrder when the graph has a directed
// cycle.
var ErrCycle = fmt.Errorf("ndm: graph contains a directed cycle")

// HasCycle reports whether the directed graph contains a cycle, and if so
// returns one node on it.
func HasCycle(g Graph) (bool, int64) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int64]int{}
	var cycleNode int64
	found := false

	// Iterative DFS with an explicit stack of (node, phase).
	var visit func(start int64)
	visit = func(start int64) {
		type frame struct {
			node  int64
			succs []int64
			i     int
		}
		succs := func(n int64) []int64 {
			var out []int64
			g.OutLinks(n, func(_, end int64, _ float64) bool {
				out = append(out, end)
				return true
			})
			return out
		}
		stack := []frame{{node: start, succs: succs(start)}}
		color[start] = gray
		for len(stack) > 0 && !found {
			f := &stack[len(stack)-1]
			if f.i < len(f.succs) {
				next := f.succs[f.i]
				f.i++
				switch color[next] {
				case gray:
					found = true
					cycleNode = next
				case white:
					color[next] = gray
					stack = append(stack, frame{node: next, succs: succs(next)})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	g.Nodes(func(n int64) bool {
		if color[n] == white && !found {
			visit(n)
		}
		return !found
	})
	return found, cycleNode
}

// TopologicalOrder returns the nodes in a topological order of the
// directed graph (dependencies before dependents), or ErrCycle. Ties are
// broken by ascending node ID for determinism.
func TopologicalOrder(g Graph) ([]int64, error) {
	indeg := map[int64]int{}
	var nodes []int64
	g.Nodes(func(n int64) bool {
		nodes = append(nodes, n)
		if _, ok := indeg[n]; !ok {
			indeg[n] = 0
		}
		g.OutLinks(n, func(_, end int64, _ float64) bool {
			indeg[end]++
			return true
		})
		return true
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	// Kahn's algorithm with a sorted frontier.
	var frontier []int64
	for _, n := range nodes {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	var order []int64
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		n := frontier[0]
		frontier = frontier[1:]
		order = append(order, n)
		g.OutLinks(n, func(_, end int64, _ float64) bool {
			indeg[end]--
			if indeg[end] == 0 {
				frontier = append(frontier, end)
			}
			return true
		})
	}
	if len(order) != len(nodes) {
		return nil, ErrCycle
	}
	return order, nil
}

// Package uniprot generates a deterministic synthetic protein-catalogue
// dataset shaped like the UniProt RDF dump used in the paper's
// experiments (§7.1.1) — the substitution for the real 5M-triple corpus,
// which is not redistributable here.
//
// Why the substitution preserves the experiments: the paper's queries
// exercise (a) subject-lookup access paths returning a fixed 24-row result
// for protein P93259 (Table 1) and (b) IS_REIFIED lookups over a corpus
// with a known number of reified statements (Table 2). The generator
// plants exactly those probe entities and cardinalities:
//
//   - subject urn:lsid:uniprot.org:uniprot:P93259 with exactly 24 triples,
//   - the reified statement (P93259, rdfs:seeAlso,
//     urn:lsid:uniprot.org:smart:SM00101),
//   - a configurable count of additional reified rdfs:seeAlso statements
//     (659 at 10 k, 247 002 at 5 M — the paper's Table 2 counts).
//
// Everything else (organisms, citations, sequences, long literals, typed
// literals) exists to give the value tables realistic variety.
package uniprot

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
)

// Probe entities from the paper's experiments (Figures 10, 11).
const (
	ProbeSubject = "urn:lsid:uniprot.org:uniprot:P93259"
	ProbeSeeAlso = "urn:lsid:uniprot.org:smart:SM00101"
	// ProbeRows is the number of triples stored for ProbeSubject (the
	// paper's queries return 24 rows, Table 1).
	ProbeRows = 24
	// NonReifiedProbeObject is a seeAlso object of the probe subject whose
	// statement is guaranteed NOT reified — the "false" row of Table 2.
	NonReifiedProbeObject = "urn:lsid:uniprot.org:pfam:PF09103"
)

// Vocabulary of the generated data.
const (
	CoreNS      = "http://purl.uniprot.org/core/"
	ProteinType = CoreNS + "Protein"
	Mnemonic    = CoreNS + "mnemonic"
	Organism    = CoreNS + "organism"
	Citation    = CoreNS + "citation"
	Sequence    = CoreNS + "sequence"
	Created     = CoreNS + "created"
	Mass        = CoreNS + "mass"
	SeeAlso     = rdfterm.RDFSNS + "seeAlso"
)

// Config controls generation.
type Config struct {
	// Triples is the exact number of base triples to emit.
	Triples int
	// Reified is the number of rdfs:seeAlso statements to flag for
	// reification (the probe statement counts toward it). Clamped to the
	// number of seeAlso statements actually generated.
	Reified int
	// Seed makes the dataset reproducible.
	Seed int64
	// LongLiteralEvery inserts an over-4000-char sequence literal for every
	// n-th protein (0 disables; default 500).
	LongLiteralEvery int
}

// PaperReifiedCount returns the Table 2 reified-statement count for a
// dataset size, interpolating the paper's published endpoints (659 @ 10 k,
// 247 002 @ 5 M) linearly in the triple count for in-between sizes.
func PaperReifiedCount(triples int) int {
	switch triples {
	case 10_000:
		return 659
	case 5_000_000:
		return 247_002
	}
	// Linear interpolation between the published endpoints.
	const (
		x0, y0 = 10_000.0, 659.0
		x1, y1 = 5_000_000.0, 247_002.0
	)
	x := float64(triples)
	y := y0 + (x-x0)*(y1-y0)/(x1-x0)
	if y < 0 {
		y = 0
	}
	return int(y)
}

// Triple pairs a statement with whether the harness should reify it.
type Triple struct {
	T     ntriples.Triple
	Reify bool
}

// Stream generates the dataset, invoking fn for every triple in a
// deterministic order. It returns the number of triples flagged for
// reification.
func Stream(cfg Config, fn func(t ntriples.Triple, reify bool) error) (int, error) {
	if cfg.Triples < ProbeRows {
		return 0, fmt.Errorf("uniprot: need at least %d triples for the probe subject", ProbeRows)
	}
	if cfg.LongLiteralEvery == 0 {
		cfg.LongLiteralEvery = 500
	}
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), fn: fn}
	if err := g.run(); err != nil {
		return 0, err
	}
	return g.reified, nil
}

// Generate materializes the dataset in memory (small/medium sizes).
func Generate(cfg Config) ([]Triple, int, error) {
	var out []Triple
	n, err := Stream(cfg, func(t ntriples.Triple, reify bool) error {
		out = append(out, Triple{T: t, Reify: reify})
		return nil
	})
	return out, n, err
}

type generator struct {
	cfg     Config
	rng     *rand.Rand
	fn      func(t ntriples.Triple, reify bool) error
	emitted int
	reified int
	seeAlso int // seeAlso statements seen so far (for reify spacing)
	protein int
}

func (g *generator) run() error {
	// First the probe protein, with its exact 24 rows.
	if err := g.emitProbe(); err != nil {
		return err
	}
	for g.emitted < g.cfg.Triples {
		if err := g.emitProtein(); err != nil {
			return err
		}
	}
	return nil
}

// emit sends one triple unless the budget is exhausted.
func (g *generator) emit(sub, pred string, obj rdfterm.Term, reifiable bool) error {
	if g.emitted >= g.cfg.Triples {
		return nil
	}
	reify := false
	if reifiable {
		g.seeAlso++
		if g.reified < g.cfg.Reified {
			// Spread reifications across the corpus: flag in proportion.
			reify = true
			g.reified++
		}
	}
	g.emitted++
	return g.fn(ntriples.Triple{
		Subject:   rdfterm.NewURI(sub),
		Predicate: rdfterm.NewURI(pred),
		Object:    obj,
	}, reify)
}

func (g *generator) emitProbe() error {
	s := ProbeSubject
	lit := rdfterm.NewLiteral
	typed := rdfterm.NewTypedLiteral
	uri := rdfterm.NewURI
	rows := []struct {
		pred  string
		obj   rdfterm.Term
		reify bool
	}{
		{rdfterm.RDFType, uri(ProteinType), false},
		{Mnemonic, lit("CALM_PROBE"), false},
		{Organism, uri("urn:lsid:uniprot.org:taxonomy:3702"), false},
		{Created, typed("2000-06-20", rdfterm.XSDDate), false},
		{Mass, typed("16838", rdfterm.XSDInt), false},
		{Sequence, lit(randomSequence(g.rng, 180)), false},
		{Citation, uri("urn:lsid:uniprot.org:citations:8662204"), false},
		{Citation, uri("urn:lsid:uniprot.org:citations:15060020"), false},
		// The reified probe statement of Table 2.
		{SeeAlso, uri(ProbeSeeAlso), true},
		// The guaranteed-unreified statement (the Table 2 "false" probe).
		{SeeAlso, uri(NonReifiedProbeObject), false},
	}
	for _, r := range rows {
		if r.reify {
			// Force the probe's reification regardless of spacing.
			g.seeAlso++
			g.emitted++
			g.reified++
			if err := g.fn(ntriples.Triple{
				Subject:   rdfterm.NewURI(s),
				Predicate: rdfterm.NewURI(r.pred),
				Object:    r.obj,
			}, true); err != nil {
				return err
			}
			continue
		}
		if r.pred == SeeAlso {
			// The non-reified probe must not be flagged: bypass spacing.
			g.seeAlso++
			g.emitted++
			if err := g.fn(ntriples.Triple{
				Subject:   rdfterm.NewURI(s),
				Predicate: rdfterm.NewURI(r.pred),
				Object:    r.obj,
			}, false); err != nil {
				return err
			}
			continue
		}
		if err := g.emit(s, r.pred, r.obj, false); err != nil {
			return err
		}
	}
	// Fill to exactly ProbeRows with distinct seeAlso targets.
	i := 0
	for g.emitted < ProbeRows {
		i++
		if err := g.emit(s, SeeAlso, rdfterm.NewURI(fmt.Sprintf("urn:lsid:uniprot.org:interpro:IPR%06d", i)), true); err != nil {
			return err
		}
	}
	return nil
}

// emitProtein generates one synthetic protein record.
func (g *generator) emitProtein() error {
	g.protein++
	s := fmt.Sprintf("urn:lsid:uniprot.org:uniprot:Q%05d", g.protein)
	uri := rdfterm.NewURI
	lit := rdfterm.NewLiteral
	typed := rdfterm.NewTypedLiteral

	if err := g.emit(s, rdfterm.RDFType, uri(ProteinType), false); err != nil {
		return err
	}
	if err := g.emit(s, Mnemonic, lit(fmt.Sprintf("MN%05d_%s", g.protein, speciesCode(g.rng))), false); err != nil {
		return err
	}
	if err := g.emit(s, Organism, uri(fmt.Sprintf("urn:lsid:uniprot.org:taxonomy:%d", 1000+g.rng.Intn(40000))), false); err != nil {
		return err
	}
	if err := g.emit(s, Created, typed(randomDate(g.rng), rdfterm.XSDDate), false); err != nil {
		return err
	}
	if err := g.emit(s, Mass, typed(fmt.Sprintf("%d", 5000+g.rng.Intn(200000)), rdfterm.XSDInt), false); err != nil {
		return err
	}
	// Sequence: occasionally a long literal (> 4000 chars) to exercise the
	// PLL/LONG_VALUE path.
	seqLen := 120 + g.rng.Intn(300)
	if g.cfg.LongLiteralEvery > 0 && g.protein%g.cfg.LongLiteralEvery == 0 {
		seqLen = rdfterm.LongLiteralThreshold + 200
	}
	if err := g.emit(s, Sequence, lit(randomSequence(g.rng, seqLen)), false); err != nil {
		return err
	}
	// Citations.
	for i, n := 0, g.rng.Intn(3); i < n; i++ {
		if err := g.emit(s, Citation, uri(fmt.Sprintf("urn:lsid:uniprot.org:citations:%d", 1000000+g.rng.Intn(9000000))), false); err != nil {
			return err
		}
	}
	// Cross-references (the reifiable statements).
	dbs := []string{"smart:SM", "pfam:PF", "prosite:PS", "interpro:IPR", "embl-cds:AA"}
	for i, n := 0, 2+g.rng.Intn(6); i < n; i++ {
		db := dbs[g.rng.Intn(len(dbs))]
		obj := fmt.Sprintf("urn:lsid:uniprot.org:%s%05d", db, g.rng.Intn(90000))
		if err := g.emit(s, SeeAlso, uri(obj), g.shouldReify()); err != nil {
			return err
		}
	}
	return nil
}

// shouldReify spaces reifications evenly over the corpus: flag a seeAlso
// statement when doing so keeps the reified fraction on target.
func (g *generator) shouldReify() bool {
	if g.reified >= g.cfg.Reified {
		return false
	}
	// Remaining budget vs. remaining expected seeAlso statements: always
	// true once we must catch up; evenly spread otherwise.
	remainingTriples := g.cfg.Triples - g.emitted
	if remainingTriples <= 0 {
		return true
	}
	// ~30% of generated triples are seeAlso; estimate remaining seeAlso.
	estRemaining := float64(remainingTriples) * 0.3
	need := float64(g.cfg.Reified - g.reified)
	return g.rng.Float64() < need/maxf(need, estRemaining)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

func randomSequence(rng *rand.Rand, n int) string {
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(aminoAcids[rng.Intn(len(aminoAcids))])
	}
	return b.String()
}

func randomDate(rng *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 1990+rng.Intn(16), 1+rng.Intn(12), 1+rng.Intn(28))
}

var species = []string{"HUMAN", "MOUSE", "YEAST", "ARATH", "ECOLI", "DROME", "RAT", "BOVIN"}

func speciesCode(rng *rand.Rand) string {
	return species[rng.Intn(len(species))]
}

package core

import (
	"repro/internal/ndm"
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// RDFNetwork exposes the store's rdf_link$/rdf_node$ tables as an NDM
// directed logical network (§1, §4): nodes are VALUE_IDs of subjects and
// objects, links are triples, and link cost is the COST column. With a
// model filter the network is restricted to selected models; with none it
// spans the whole store — "analysis … across all applications in the
// database or on selected applications" (§1).
type RDFNetwork struct {
	store  *Store
	models map[int64]bool // nil = all models
}

// Network returns the NDM view of the given models (all models when none
// are named).
func (s *Store) Network(models ...string) (*RDFNetwork, error) {
	n := &RDFNetwork{store: s}
	if len(models) > 0 {
		n.models = make(map[int64]bool, len(models))
		for _, m := range models {
			id, err := s.GetModelID(m)
			if err != nil {
				return nil, err
			}
			n.models[id] = true
		}
	}
	return n, nil
}

// inScope reports whether a link row belongs to the selected models.
func (n *RDFNetwork) inScope(r reldb.Row) bool {
	return n.models == nil || n.models[r[lcModelID].Int64()]
}

// HasNode implements ndm.Graph over rdf_node$.
func (n *RDFNetwork) HasNode(node int64) bool {
	return n.store.nodePK.Contains(reldb.Key{reldb.Int(node)})
}

// Nodes implements ndm.Graph.
func (n *RDFNetwork) Nodes(fn func(node int64) bool) {
	n.store.nodes.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		return fn(r[0].Int64())
	})
}

// OutLinks implements ndm.Graph: links whose START_NODE_ID is node.
func (n *RDFNetwork) OutLinks(node int64, fn func(linkID, end int64, cost float64) bool) {
	n.visit(n.store.linkStart, node, lcEndNodeID, fn)
}

// InLinks implements ndm.Graph: links whose END_NODE_ID is node.
func (n *RDFNetwork) InLinks(node int64, fn func(linkID, start int64, cost float64) bool) {
	n.visit(n.store.linkEnd, node, lcStartNodeID, fn)
}

func (n *RDFNetwork) visit(ix *reldb.Index, node int64, otherCol int, fn func(linkID, other int64, cost float64) bool) {
	var ids []reldb.RowID
	ix.ScanPrefix(reldb.Key{reldb.Int(node)}, func(_ reldb.Key, rid reldb.RowID) bool {
		ids = append(ids, rid)
		return true
	})
	for _, rid := range ids {
		r, err := n.store.links.Get(rid)
		if err != nil || !n.inScope(r) {
			continue
		}
		if !fn(r[lcLinkID].Int64(), r[otherCol].Int64(), float64(r[lcCost].Int64())) {
			return
		}
	}
}

// NodeID resolves a term to its network node (VALUE_ID).
func (n *RDFNetwork) NodeID(t rdfterm.Term) (int64, bool) {
	return n.store.lookupValueID(t)
}

// NodeTerm resolves a network node back to its term.
func (n *RDFNetwork) NodeTerm(node int64) (rdfterm.Term, error) {
	return n.store.GetValue(node)
}

var _ ndm.Graph = (*RDFNetwork)(nil)

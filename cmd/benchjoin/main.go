// Command benchjoin measures the join engines against each other: the
// streaming iterator engine under the cost-based planner versus the
// original materializing engine under the boundness heuristic, over the
// join shapes the planner was built for — selective 3-pattern chains,
// stars, 5-pattern chains, and a selectivity inversion the static
// heuristic orders badly. Results land as JSON (BENCH_3.json).
//
// Usage:
//
//	benchjoin [-sizes 30000,1000000] [-trials 3] [-out BENCH_3.json]
//	benchjoin -check BENCH_3.json [-tolerance 0.7]
//
// -check re-runs the 3-pattern chain benchmark at the smallest size
// recorded in the baseline file and fails (exit 1) when the measured
// streaming-vs-materializing speedup drops below tolerance × the
// recorded speedup — the CI regression gate for join throughput. The
// ratio, not absolute throughput, is compared, so the gate is stable
// across machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/rdfterm"
)

const ns = "http://bench#"

type entry struct {
	Name       string  `json:"name"`
	Query      string  `json:"query"`
	Triples    int     `json:"triples"`
	Rows       int     `json:"rows"`
	Plan       string  `json:"plan"`
	MatSeconds float64 `json:"materialize_seconds"`
	StrSeconds float64 `json:"streaming_seconds"`
	MatQPS     float64 `json:"materialize_qps"`
	StrQPS     float64 `json:"streaming_qps"`
	Speedup    float64 `json:"speedup"`
}

type run struct {
	Triples int     `json:"triples"`
	Entries []entry `json:"entries"`
}

type report struct {
	Experiment string `json:"experiment"`
	Trials     int    `json:"trials"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Runs       []run  `json:"runs"`
}

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjoin:", err)
		os.Exit(1)
	}
}

func mainErr() error {
	sizes := flag.String("sizes", "1000000", "comma-separated store sizes in triples")
	trials := flag.Int("trials", 3, "timed trials per engine (best-of reported)")
	out := flag.String("out", "BENCH_3.json", "output JSON file")
	check := flag.String("check", "", "baseline JSON to regression-check against (no file written)")
	tolerance := flag.Float64("tolerance", 0.7, "minimum measured/baseline speedup ratio for -check")
	flag.Parse()

	if *check != "" {
		return checkBaseline(*check, *trials, *tolerance)
	}

	rep := report{Experiment: "join_planner", Trials: *trials, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, f := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -sizes entry %q: %w", f, err)
		}
		r, err := runSize(n, *trials)
		if err != nil {
			return err
		}
		rep.Runs = append(rep.Runs, r)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

// bench describes one (dataset, query) benchmark case.
type bench struct {
	name  string
	query string
	build func(n int) (*core.Store, error)
}

var benches = []bench{
	// The acceptance case: a selective 3-pattern chain. The cost planner
	// keeps every stage connected (type probe, then walk the chain
	// backwards); the heuristic runs the disconnected first pattern
	// second and materializes every p1 edge.
	{"chain3-selective", `(?x b:p1 ?y) (?y b:p2 ?z) (?z b:type "target")`, buildChain3},
	// A star join around one selective hub: same plan on both engines,
	// so the gap isolates the execution-engine cost (ID rows vs term-map
	// materialization) on a fanout² result.
	{"star-fanout", `(?h b:type "target") (?h b:p1 ?a) (?h b:p2 ?b)`, buildStar},
	// A longer chain: each disconnected stage the heuristic schedules
	// costs a full predicate scan on the materializing engine.
	{"chain5-selective", `(?a b:p1 ?b) (?b b:p2 ?c) (?c b:p3 ?d) (?d b:p4 ?e) (?e b:type "target")`, buildChain5},
	// Selectivity inversion: two 2-bound patterns tie under the
	// boundness heuristic and text order picks the unselective one
	// (every p2 object is the same literal); statistics pick the rare
	// type probe first.
	{"planner-inversion", `(?s b:p1 ?m) (?m b:p2 "common") (?s b:type "rare")`, buildInversion},
}

func runSize(n, trials int) (run, error) {
	r := run{Triples: n}
	for _, b := range benches {
		e, err := runBench(b, n, trials)
		if err != nil {
			return r, fmt.Errorf("%s at %d: %w", b.name, n, err)
		}
		fmt.Printf("%-18s %8d triples  rows=%-6d mat=%.4fs str=%.6fs speedup=%.1fx  plan=%s\n",
			e.Name, n, e.Rows, e.MatSeconds, e.StrSeconds, e.Speedup, e.Plan)
		r.Entries = append(r.Entries, e)
	}
	return r, nil
}

func runBench(b bench, n, trials int) (entry, error) {
	s, err := b.build(n)
	if err != nil {
		return entry{}, err
	}
	aliases := rdfterm.Default().With(rdfterm.Alias{Prefix: "b", Namespace: ns})
	strOpts := match.Options{Models: []string{"g"}, Aliases: aliases}
	matOpts := strOpts
	matOpts.Engine = match.EngineMaterialize

	// Warm-up runs double as the equality check (the differential tests
	// cover correctness exhaustively; this guards the benchmark itself
	// against measuring two different queries). The streaming warm-up
	// also builds the statistics cache so the timed trials measure
	// steady-state planning.
	want, err := match.Match(s, b.query, matOpts)
	if err != nil {
		return entry{}, err
	}
	got, err := match.Match(s, b.query, strOpts)
	if err != nil {
		return entry{}, err
	}
	if !sameRows(want, got) {
		return entry{}, fmt.Errorf("engines disagree: materialize %d rows, streaming %d rows", want.Len(), got.Len())
	}

	matSec, err := timeQuery(s, b.query, matOpts, trials, want.Len())
	if err != nil {
		return entry{}, err
	}
	strSec, err := timeQuery(s, b.query, strOpts, trials, want.Len())
	if err != nil {
		return entry{}, err
	}

	var tr match.Trace
	trOpts := strOpts
	trOpts.Trace = &tr
	if _, err := match.Match(s, b.query, trOpts); err != nil {
		return entry{}, err
	}
	plan := make([]string, len(tr.PlanOrder))
	for i, pi := range tr.PlanOrder {
		plan[i] = strconv.Itoa(pi)
	}

	return entry{
		Name:       b.name,
		Query:      b.query,
		Triples:    n,
		Rows:       want.Len(),
		Plan:       strings.Join(plan, "->") + " (" + tr.Planner + ")",
		MatSeconds: matSec,
		StrSeconds: strSec,
		MatQPS:     1 / matSec,
		StrQPS:     1 / strSec,
		Speedup:    matSec / strSec,
	}, nil
}

// timeQuery returns the best-of-trials seconds for one query.
func timeQuery(s *core.Store, query string, opts match.Options, trials, wantRows int) (float64, error) {
	best := 0.0
	for t := 0; t < trials; t++ {
		t0 := time.Now()
		rs, err := match.Match(s, query, opts)
		if err != nil {
			return 0, err
		}
		sec := time.Since(t0).Seconds()
		if rs.Len() != wantRows {
			return 0, fmt.Errorf("trial returned %d rows, want %d", rs.Len(), wantRows)
		}
		if t == 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}

func sameRows(a, b *match.ResultSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	key := func(rs *match.ResultSet) []string {
		keys := make([]string, rs.Len())
		for i := range rs.Rows {
			keys[i] = strings.Join(rs.Strings(i), "\x1f")
		}
		sort.Strings(keys)
		return keys
	}
	ka, kb := key(a), key(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// --- dataset builders -------------------------------------------------

func newStore() (*core.Store, error) {
	s := core.New()
	if _, err := s.CreateRDFModel("g", "", ""); err != nil {
		return nil, err
	}
	return s, nil
}

func uri(s string) rdfterm.Term { return rdfterm.NewURI(ns + s) }

type loader struct {
	s     *core.Store
	batch []core.BatchTriple
	err   error
}

func (l *loader) add(s, p, o rdfterm.Term) {
	if l.err != nil {
		return
	}
	l.batch = append(l.batch, core.BatchTriple{Subject: s, Predicate: p, Object: o})
	if len(l.batch) == 10000 {
		l.flush()
	}
}

func (l *loader) flush() {
	if l.err != nil || len(l.batch) == 0 {
		return
	}
	_, l.err = l.s.InsertBatch("g", l.batch)
	l.batch = l.batch[:0]
}

// buildChain3 loads n/3 chains root -p1-> mid -p2-> leaf with exactly
// one leaf typed "target" (the rest "noise") — chainStore at scale.
func buildChain3(n int) (*core.Store, error) {
	s, err := newStore()
	if err != nil {
		return nil, err
	}
	l := &loader{s: s}
	p1, p2, typ := uri("p1"), uri("p2"), uri("type")
	target, noise := rdfterm.NewLiteral("target"), rdfterm.NewLiteral("noise")
	chains := n / 3
	for i := 0; i < chains; i++ {
		l.add(uri(fmt.Sprintf("root%d", i)), p1, uri(fmt.Sprintf("mid%d", i)))
		l.add(uri(fmt.Sprintf("mid%d", i)), p2, uri(fmt.Sprintf("leaf%d", i)))
		o := noise
		if i == chains/2 {
			o = target
		}
		l.add(uri(fmt.Sprintf("leaf%d", i)), typ, o)
	}
	l.flush()
	return s, l.err
}

// buildStar loads hubs with 64 p1-spokes and 64 p2-spokes each; one hub
// is typed "target", so the query fans out 64x64 rows from one hub.
func buildStar(n int) (*core.Store, error) {
	s, err := newStore()
	if err != nil {
		return nil, err
	}
	l := &loader{s: s}
	const fan = 64
	p1, p2, typ := uri("p1"), uri("p2"), uri("type")
	target, noise := rdfterm.NewLiteral("target"), rdfterm.NewLiteral("noise")
	hubs := n / (2*fan + 1)
	if hubs < 1 {
		hubs = 1
	}
	for h := 0; h < hubs; h++ {
		hub := uri(fmt.Sprintf("hub%d", h))
		for j := 0; j < fan; j++ {
			l.add(hub, p1, uri(fmt.Sprintf("a%d_%d", h, j)))
			l.add(hub, p2, uri(fmt.Sprintf("b%d_%d", h, j)))
		}
		o := noise
		if h == hubs/2 {
			o = target
		}
		l.add(hub, typ, o)
	}
	l.flush()
	return s, l.err
}

// buildChain5 loads n/5 chains of four hops with one "target"-typed tail.
func buildChain5(n int) (*core.Store, error) {
	s, err := newStore()
	if err != nil {
		return nil, err
	}
	l := &loader{s: s}
	preds := []rdfterm.Term{uri("p1"), uri("p2"), uri("p3"), uri("p4")}
	typ := uri("type")
	target, noise := rdfterm.NewLiteral("target"), rdfterm.NewLiteral("noise")
	chains := n / 5
	for i := 0; i < chains; i++ {
		for h, p := range preds {
			l.add(uri(fmt.Sprintf("n%d_%d", h, i)), p, uri(fmt.Sprintf("n%d_%d", h+1, i)))
		}
		o := noise
		if i == chains/2 {
			o = target
		}
		l.add(uri(fmt.Sprintf("n4_%d", i)), typ, o)
	}
	l.flush()
	return s, l.err
}

// buildInversion loads n/2 pairs (s_i p1 m_i)(m_i p2 "common") — every
// p2 object the same literal — plus one (s_0 type "rare").
func buildInversion(n int) (*core.Store, error) {
	s, err := newStore()
	if err != nil {
		return nil, err
	}
	l := &loader{s: s}
	p1, p2, typ := uri("p1"), uri("p2"), uri("type")
	common, rare := rdfterm.NewLiteral("common"), rdfterm.NewLiteral("rare")
	pairs := n / 2
	for i := 0; i < pairs; i++ {
		l.add(uri(fmt.Sprintf("s%d", i)), p1, uri(fmt.Sprintf("m%d", i)))
		l.add(uri(fmt.Sprintf("m%d", i)), p2, common)
	}
	l.add(uri("s0"), typ, rare)
	l.flush()
	return s, l.err
}

// --- regression check -------------------------------------------------

// checkBaseline re-measures the chain3-selective case at the smallest
// size in the baseline and compares speedups.
func checkBaseline(path string, trials int, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	var baseEntry *entry
	for i := range base.Runs {
		for j := range base.Runs[i].Entries {
			e := &base.Runs[i].Entries[j]
			if e.Name != "chain3-selective" {
				continue
			}
			if baseEntry == nil || e.Triples < baseEntry.Triples {
				baseEntry = e
			}
		}
	}
	if baseEntry == nil {
		return fmt.Errorf("%s has no chain3-selective entry", path)
	}
	got, err := runBench(benches[0], baseEntry.Triples, trials)
	if err != nil {
		return err
	}
	floor := tolerance * baseEntry.Speedup
	fmt.Printf("chain3-selective at %d triples: measured %.1fx, baseline %.1fx, floor %.1fx\n",
		baseEntry.Triples, got.Speedup, baseEntry.Speedup, floor)
	if got.Speedup < floor {
		return fmt.Errorf("join speedup regression: measured %.1fx < %.1fx (%.0f%% of baseline %.1fx)",
			got.Speedup, floor, tolerance*100, baseEntry.Speedup)
	}
	fmt.Println("join benchmark check passed")
	return nil
}

package ntriples

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rdfterm"
)

func parseAll(t *testing.T, src string) []Triple {
	t.Helper()
	ts, err := NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", src, err)
	}
	return ts
}

func TestParseBasicTriples(t *testing.T) {
	src := `
# comment line
<http://a> <http://p> <http://b> .
<http://a> <http://p> "plain" .
<http://a> <http://p> "hello"@en-US .
<http://a> <http://p> "25"^^<http://www.w3.org/2001/XMLSchema#int> .
_:b1 <http://p> _:b2 .
`
	ts := parseAll(t, src)
	if len(ts) != 5 {
		t.Fatalf("parsed %d triples, want 5", len(ts))
	}
	if ts[0].Object != rdfterm.NewURI("http://b") {
		t.Errorf("triple 0 object = %v", ts[0].Object)
	}
	if ts[1].Object != rdfterm.NewLiteral("plain") {
		t.Errorf("triple 1 object = %v", ts[1].Object)
	}
	if ts[2].Object != rdfterm.NewLangLiteral("hello", "en-US") {
		t.Errorf("triple 2 object = %v", ts[2].Object)
	}
	if ts[3].Object != rdfterm.NewTypedLiteral("25", rdfterm.XSDInt) {
		t.Errorf("triple 3 object = %v", ts[3].Object)
	}
	if ts[4].Subject != rdfterm.NewBlank("b1") || ts[4].Object != rdfterm.NewBlank("b2") {
		t.Errorf("triple 4 = %v", ts[4])
	}
}

func TestParseEscapes(t *testing.T) {
	src := `<http://a> <http://p> "tab\there\nquote\"back\\slash" .` + "\n" +
		`<http://a> <http://p> "unicode é and \U0001F600" .` + "\n"
	ts := parseAll(t, src)
	if got := ts[0].Object.Value; got != "tab\there\nquote\"back\\slash" {
		t.Errorf("escapes = %q", got)
	}
	if got := ts[1].Object.Value; got != "unicode é and 😀" {
		t.Errorf("unicode escapes = %q", got)
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	src := "   <http://a>\t\t<http://p>   \"x\"   .   \n"
	if got := len(parseAll(t, src)); got != 1 {
		t.Fatalf("parsed %d", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://a> <http://p> <http://b>`,           // missing dot
		`<http://a> <http://p> .`,                    // missing object
		`<http://a> "lit" <http://b> .`,              // literal predicate
		`"lit" <http://p> <http://b> .`,              // literal subject
		`<http://a> _:b <http://b> .`,                // blank predicate
		`<http://a <http://p> <http://b> .`,          // unterminated URI
		`<http://a> <http://p> "unterminated .`,      // unterminated literal
		`<http://a> <http://p> "x"^^int .`,           // non-URI datatype
		`<http://a> <http://p> "x"@ .`,               // empty lang
		`<http://a> <http://p> "x" . trailing`,       // trailing garbage
		`<> <http://p> <http://b> .`,                 // empty URI
		`<http://a> <http://p> "bad\qescape" .`,      // unknown escape
		`<http://a> <http://p> "trunc\u12" .`,        // truncated \u
		`_: <http://p> <http://b> .`,                 // empty blank label
		`<http://a> <http://p> <http://b> . extra .`, // two statements per line
	}
	for _, src := range bad {
		_, err := NewReader(strings.NewReader(src)).ReadAll()
		var pe *ParseError
		if err == nil || !errors.As(err, &pe) {
			t.Errorf("input %q: err = %v, want ParseError", src, err)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	src := "<http://a> <http://p> <http://b> .\n<http://a> <http://p> .\n"
	_, err := NewReader(strings.NewReader(src)).ReadAll()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}

func TestNextEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only comments\n\n"))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want EOF", err)
	}
}

func TestRoundTrip(t *testing.T) {
	terms := []rdfterm.Term{
		rdfterm.NewURI("http://example.org/x"),
		rdfterm.NewBlank("gen-1"),
		rdfterm.NewLiteral("with \"quotes\" and\nnewlines\tand\\backslashes"),
		rdfterm.NewLangLiteral("bonjour", "fr"),
		rdfterm.NewTypedLiteral("2000-06-20", rdfterm.XSDDate),
		rdfterm.NewLiteral(strings.Repeat("long", 2000)),
	}
	var sb strings.Builder
	w := NewWriter(&sb)
	var want []Triple
	for _, obj := range terms {
		tr := Triple{
			Subject:   rdfterm.NewURI("http://s"),
			Predicate: rdfterm.NewURI("http://p"),
			Object:    obj,
		}
		want = append(want, tr)
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got := parseAll(t, sb.String())
	if len(got) != len(want) {
		t.Fatalf("round trip count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("triple %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: any triple built from generated strings survives a
// serialize→parse round trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(lex, lang8 string, pick uint8) bool {
		var obj rdfterm.Term
		switch pick % 4 {
		case 0:
			obj = rdfterm.NewLiteral(lex)
		case 1:
			// Language tags are constrained; use a fixed valid tag.
			obj = rdfterm.NewLangLiteral(lex, "en")
		case 2:
			obj = rdfterm.NewTypedLiteral(lex, rdfterm.XSDString)
		case 3:
			obj = rdfterm.NewURI("http://example.org/ok")
		}
		_ = lang8
		in := Triple{
			Subject:   rdfterm.NewURI("http://s"),
			Predicate: rdfterm.NewURI("http://p"),
			Object:    obj,
		}
		var sb strings.Builder
		w := NewWriter(&sb)
		if w.Write(in) != nil || w.Flush() != nil {
			return false
		}
		out, err := NewReader(strings.NewReader(sb.String())).ReadAll()
		return err == nil && len(out) == 1 && out[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTripleString(t *testing.T) {
	tr := Triple{
		Subject:   rdfterm.NewURI("http://s"),
		Predicate: rdfterm.NewURI("http://p"),
		Object:    rdfterm.NewLiteral("o"),
	}
	if got := tr.String(); got != `<http://s> <http://p> "o" .` {
		t.Errorf("String = %q", got)
	}
}

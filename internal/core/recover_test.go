package core

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/wal"
)

// walStore returns a fresh store logging to a fresh in-memory WAL.
func walStore(t *testing.T) (*Store, *wal.BufferFile) {
	t.Helper()
	f := &wal.BufferFile{}
	log, err := wal.NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDurability(log)
	return s, f
}

// recoverImage rebuilds a store from a snapshot (nil for none) and a WAL
// image, asserting the recovery is clean.
func recoverImage(t *testing.T, snap, img []byte) *Store {
	t.Helper()
	var snapR io.Reader
	if snap != nil {
		snapR = bytes.NewReader(snap)
	}
	s, info, err := Recover(snapR, bytes.NewReader(img))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.Truncated {
		t.Fatalf("unexpected torn tail: %v", info.TailErr)
	}
	assertInvariants(t, s)
	return s
}

// TestWALRoundTrip runs the full crash workload with logging on and
// checks that replaying the log alone reproduces the live store exactly.
func TestWALRoundTrip(t *testing.T) {
	s, f := walStore(t)
	for _, op := range walWorkload() {
		if err := op.do(s); err != nil {
			t.Fatalf("op %q: %v", op.name, err)
		}
	}
	rec := recoverImage(t, nil, f.Bytes())
	if got, want := fingerprint(t, rec), fingerprint(t, s); !bytes.Equal(got, want) {
		t.Fatal("recovered store differs from live store")
	}
	if n := rec.TotalTriples(); n != s.TotalTriples() {
		t.Fatalf("recovered %d triples, live has %d", n, s.TotalTriples())
	}
}

// TestRecoverFromCheckpoint snapshots mid-history (the checkpoint),
// truncates the log, keeps mutating, and recovers from snapshot + WAL.
func TestRecoverFromCheckpoint(t *testing.T) {
	f := &wal.BufferFile{}
	log, err := wal.NewLog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDurability(log)
	a := govAliases()

	if _, err := s.CreateRDFModel("gov", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTripleS("gov", "gov:a", "gov:p", "gov:b", a); err != nil {
		t.Fatal(err)
	}

	// Checkpoint: snapshot the store, then truncate the log. BufferFile
	// has no Truncate, so model the reset by swapping in a fresh file —
	// the same state transition Log.Reset performs on disk.
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	f2 := &wal.BufferFile{}
	log2, err := wal.NewLog(f2, true)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDurability(log2)

	// Post-checkpoint history: new work plus a delete of pre-checkpoint
	// state, so replay must patch the snapshot, not just extend it.
	if _, err := s.NewTripleS("gov", "gov:c", "gov:p", "gov:d", a); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteTriple("gov", "gov:a", "gov:p", "gov:b", a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRDFModel("late", "", ""); err != nil {
		t.Fatal(err)
	}

	rec := recoverImage(t, snap.Bytes(), f2.Bytes())
	if got, want := fingerprint(t, rec), fingerprint(t, s); !bytes.Equal(got, want) {
		t.Fatal("snapshot+WAL recovery differs from live store")
	}
	if _, ok, err := rec.IsTriple("gov", "gov:a", "gov:p", "gov:b", a); err != nil || ok {
		t.Fatalf("deleted triple visible after recovery (ok=%v, err=%v)", ok, err)
	}
	if _, ok, err := rec.IsTriple("gov", "gov:c", "gov:p", "gov:d", a); err != nil || !ok {
		t.Fatalf("post-checkpoint triple missing after recovery (ok=%v, err=%v)", ok, err)
	}
}

// TestRecoverThenContinue crashes mid-workload, recovers, attaches a new
// log, keeps going, and recovers again — the restart loop of a real
// process, twice over.
func TestRecoverThenContinue(t *testing.T) {
	ops := walWorkload()
	cutAfter := 7 // crash after the first 7 ops

	s1, f1 := walStore(t)
	for _, op := range ops[:cutAfter] {
		if err := op.do(s1); err != nil {
			t.Fatalf("op %q: %v", op.name, err)
		}
	}
	// "Crash": s1 is discarded; only the log image survives.
	s2 := recoverImage(t, nil, f1.Bytes())
	if got, want := fingerprint(t, s2), fingerprint(t, s1); !bytes.Equal(got, want) {
		t.Fatal("first recovery differs from pre-crash store")
	}

	// Continue on a fresh log paired with a checkpoint of the recovered
	// state, then crash and recover once more.
	var snap bytes.Buffer
	if err := s2.Save(&snap); err != nil {
		t.Fatal(err)
	}
	f2 := &wal.BufferFile{}
	log2, err := wal.NewLog(f2, true)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetDurability(log2)
	for _, op := range ops[cutAfter:] {
		if err := op.do(s2); err != nil {
			t.Fatalf("op %q: %v", op.name, err)
		}
	}
	s3 := recoverImage(t, snap.Bytes(), f2.Bytes())
	if got, want := fingerprint(t, s3), fingerprint(t, s2); !bytes.Equal(got, want) {
		t.Fatal("second recovery differs from live store")
	}
}

// TestLogResetCheckpointOnDisk exercises the real checkpoint sequence
// against an on-disk WAL file: write, snapshot, Reset, write more,
// reopen, recover.
func TestLogResetCheckpointOnDisk(t *testing.T) {
	path := t.TempDir() + "/store.wal"
	log, res, err := wal.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("fresh WAL has %d records", len(res.Records))
	}
	s := New()
	s.SetDurability(log)
	a := govAliases()
	if _, err := s.CreateRDFModel("gov", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTripleS("gov", "gov:a", "gov:p", "gov:b", a); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	if err := log.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTripleS("gov", "gov:c", "gov:p", "gov:d", a); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the WAL, load the snapshot, replay the tail.
	log2, res2, err := wal.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	rec, err := Load(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(res2.Records); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, rec)
	if got, want := fingerprint(t, rec), fingerprint(t, s); !bytes.Equal(got, want) {
		t.Fatal("on-disk checkpoint recovery differs from live store")
	}
}

// TestDropModelRecovery drops a model whose values are shared with a
// surviving model, and checks WAL replay reproduces the post-drop state:
// shared nodes kept, exclusive nodes gone, model catalog and view gone.
func TestDropModelRecovery(t *testing.T) {
	s, f := walStore(t)
	a := govAliases()
	for _, m := range []string{"keep", "doomed"} {
		if _, err := s.CreateRDFModel(m, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	// gov:shared is a node in both models; gov:only in "doomed" alone.
	if _, err := s.NewTripleS("keep", "gov:shared", "gov:p", "gov:x", a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTripleS("doomed", "gov:shared", "gov:p", "gov:only", a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewTripleS("doomed", "_:b", "gov:p", "gov:z", a); err != nil {
		t.Fatal(err)
	}
	if err := s.DropRDFModel("doomed"); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, s)

	rec := recoverImage(t, nil, f.Bytes())
	if got, want := fingerprint(t, rec), fingerprint(t, s); !bytes.Equal(got, want) {
		t.Fatal("post-drop recovery differs from live store")
	}
	if _, err := rec.GetModelID("doomed"); err == nil {
		t.Fatal("dropped model still resolvable after recovery")
	}
	if n, err := rec.NumTriples("keep"); err != nil || n != 1 {
		t.Fatalf("surviving model has %d triples (err %v), want 1", n, err)
	}
	// The dropped model's name is reusable on the recovered store.
	if _, err := rec.CreateRDFModel("doomed", "", ""); err != nil {
		t.Fatalf("recreating dropped model after recovery: %v", err)
	}
	assertInvariants(t, rec)
}

// TestRecoverRejectsNonWAL makes sure recovery refuses a stream that is
// not a WAL instead of misreading it.
func TestRecoverRejectsNonWAL(t *testing.T) {
	if _, _, err := Recover(nil, bytes.NewReader([]byte("GOBSNAP1 definitely not a log"))); err == nil {
		t.Fatal("recover accepted a non-WAL stream")
	}
}

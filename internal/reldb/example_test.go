package reldb_test

import (
	"fmt"
	"log"

	"repro/internal/reldb"
)

// Example builds a small schema and runs an index-nested-loop join with
// the iterator executor — the access path behind the paper's Experiment I
// flat-table query.
func Example() {
	db := reldb.NewDatabase("demo")
	people, err := db.CreateTable(reldb.NewSchema("people",
		reldb.Column{Name: "ID", Kind: reldb.KindInt},
		reldb.Column{Name: "NAME", Kind: reldb.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	pk, err := people.CreateIndex("pk", true, "ID")
	if err != nil {
		log.Fatal(err)
	}
	orders, err := db.CreateTable(reldb.NewSchema("orders",
		reldb.Column{Name: "PERSON_ID", Kind: reldb.KindInt},
		reldb.Column{Name: "ITEM", Kind: reldb.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	people.Insert(reldb.Row{reldb.Int(1), reldb.String_("ann")})
	people.Insert(reldb.Row{reldb.Int(2), reldb.String_("bob")})
	orders.Insert(reldb.Row{reldb.Int(2), reldb.String_("lamp")})
	orders.Insert(reldb.Row{reldb.Int(1), reldb.String_("desk")})

	// SELECT o.item, p.name FROM orders o JOIN people p ON p.id = o.person_id
	join := reldb.NewIndexJoin(reldb.NewTableScan(orders), people, pk, reldb.ColKey(0))
	for {
		r, ok := join.Next()
		if !ok {
			break
		}
		fmt.Printf("%s -> %s\n", r[1].Str(), r[3].Str())
	}
	// Output:
	// lamp -> bob
	// desk -> ann
}

// ExampleTable_CreateFunctionIndex shows a §7.2-style function-based
// index: rows indexed by a computed key.
func ExampleTable_CreateFunctionIndex() {
	t := reldb.NewTable(reldb.NewSchema("words",
		reldb.Column{Name: "W", Kind: reldb.KindString},
	))
	byLen, _ := t.CreateFunctionIndex("bylen", false, func(r reldb.Row) reldb.Key {
		return reldb.Key{reldb.Int(int64(len(r[0].Str())))}
	})
	for _, w := range []string{"a", "bb", "cc", "ddd"} {
		t.Insert(reldb.Row{reldb.String_(w)})
	}
	ids := byLen.Lookup(reldb.Key{reldb.Int(2)})
	fmt.Println(len(ids), "two-letter words")
	// Output:
	// 2 two-letter words
}

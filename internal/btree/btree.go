// Package btree implements a generic in-memory B-tree ordered by a
// caller-supplied comparator. It is the index structure underlying every
// secondary, unique, and function-based index in the reldb engine (the
// reproduction's stand-in for Oracle's B-tree indexes).
//
// The tree maps keys to int64 payloads (row IDs). Duplicate keys are
// supported by treating (key, payload) as the effective key, mirroring how
// non-unique database indexes append the ROWID to the key.
package btree

import "sort"

// Comparator reports the ordering of two keys: negative if a < b, zero if
// equal, positive if a > b. It must define a total order.
type Comparator[K any] func(a, b K) int

const (
	// degree is the minimum number of children of an internal node.
	// Nodes hold between degree-1 and 2*degree-1 entries.
	degree   = 32
	maxItems = 2*degree - 1
	minItems = degree - 1
)

// item is a single (key, rowID) entry.
type item[K any] struct {
	key K
	id  int64
}

type node[K any] struct {
	items    []item[K]
	children []*node[K] // nil for leaves
}

func (n *node[K]) leaf() bool { return n.children == nil }

// Tree is a B-tree of (key, id) entries ordered by the comparator and then
// by id. The zero value is not usable; call New.
type Tree[K any] struct {
	cmp  Comparator[K]
	root *node[K]
	size int
}

// New returns an empty tree ordered by cmp.
func New[K any](cmp Comparator[K]) *Tree[K] {
	return &Tree[K]{cmp: cmp, root: &node[K]{}}
}

// Len returns the number of entries in the tree.
func (t *Tree[K]) Len() int { return t.size }

// compareItems orders by key first, then by id, giving a total order over
// entries even with duplicate keys.
func (t *Tree[K]) compareItems(a, b item[K]) int {
	if c := t.cmp(a.key, b.key); c != 0 {
		return c
	}
	switch {
	case a.id < b.id:
		return -1
	case a.id > b.id:
		return 1
	}
	return 0
}

// find returns the index of the first entry in n.items that is >= it, and
// whether an exact match was found at that index.
func (t *Tree[K]) find(n *node[K], it item[K]) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool {
		return t.compareItems(n.items[i], it) >= 0
	})
	if i < len(n.items) && t.compareItems(n.items[i], it) == 0 {
		return i, true
	}
	return i, false
}

// Insert adds (key, id). It returns false if the exact (key, id) pair is
// already present, leaving the tree unchanged.
func (t *Tree[K]) Insert(key K, id int64) bool {
	it := item[K]{key: key, id: id}
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &node[K]{children: []*node[K]{old}}
		t.splitChild(t.root, 0)
	}
	if !t.insertNonFull(t.root, it) {
		return false
	}
	t.size++
	return true
}

func (t *Tree[K]) splitChild(parent *node[K], i int) {
	child := parent.children[i]
	mid := child.items[minItems]
	right := &node[K]{items: append([]item[K](nil), child.items[minItems+1:]...)}
	if !child.leaf() {
		right.children = append([]*node[K](nil), child.children[minItems+1:]...)
		child.children = child.children[:minItems+1]
	}
	child.items = child.items[:minItems]

	parent.items = append(parent.items, item[K]{})
	copy(parent.items[i+1:], parent.items[i:])
	parent.items[i] = mid
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *Tree[K]) insertNonFull(n *node[K], it item[K]) bool {
	for {
		i, found := t.find(n, it)
		if found {
			return false
		}
		if n.leaf() {
			n.items = append(n.items, item[K]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = it
			return true
		}
		if len(n.children[i].items) == maxItems {
			t.splitChild(n, i)
			if c := t.compareItems(it, n.items[i]); c == 0 {
				return false
			} else if c > 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes (key, id). It returns false if the pair was not present.
func (t *Tree[K]) Delete(key K, id int64) bool {
	it := item[K]{key: key, id: id}
	if !t.delete(t.root, it) {
		return false
	}
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	t.size--
	return true
}

func (t *Tree[K]) delete(n *node[K], it item[K]) bool {
	i, found := t.find(n, it)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor from the left subtree, then delete the
		// predecessor from there.
		child := n.children[i]
		if len(child.items) > minItems {
			pred := t.max(child)
			n.items[i] = pred
			return t.delete(child, pred)
		}
		right := n.children[i+1]
		if len(right.items) > minItems {
			succ := t.min(right)
			n.items[i] = succ
			return t.delete(right, succ)
		}
		// Merge child, separator, and right sibling, then recurse.
		t.merge(n, i)
		return t.delete(child, it)
	}
	child := n.children[i]
	if len(child.items) == minItems {
		t.rebalance(n, i)
		// Rebalancing may have moved the target; restart from n.
		return t.delete(n, it)
	}
	return t.delete(child, it)
}

// rebalance ensures n.children[i] has more than minItems entries by
// borrowing from a sibling or merging.
func (t *Tree[K]) rebalance(n *node[K], i int) {
	child := n.children[i]
	if i > 0 && len(n.children[i-1].items) > minItems {
		// Rotate right: move separator down, left sibling's max up.
		left := n.children[i-1]
		child.items = append([]item[K]{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			child.children = append([]*node[K]{left.children[len(left.children)-1]}, child.children...)
			left.children = left.children[:len(left.children)-1]
		}
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > minItems {
		// Rotate left: move separator down, right sibling's min up.
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = right.items[1:]
		if !right.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = right.children[1:]
		}
		return
	}
	if i == len(n.children)-1 {
		i--
	}
	t.merge(n, i)
}

// merge combines n.children[i], n.items[i], and n.children[i+1] into a
// single node at position i.
func (t *Tree[K]) merge(n *node[K], i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (t *Tree[K]) min(n *node[K]) item[K] {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (t *Tree[K]) max(n *node[K]) item[K] {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// Get returns the row IDs stored under key, in ascending order.
func (t *Tree[K]) Get(key K) []int64 {
	var ids []int64
	t.AscendRange(&key, &key, func(_ K, id int64) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// Contains reports whether at least one entry with the given key exists.
func (t *Tree[K]) Contains(key K) bool {
	found := false
	t.AscendRange(&key, &key, func(K, int64) bool {
		found = true
		return false
	})
	return found
}

// Visitor is called with each (key, id) entry during iteration. Returning
// false stops the iteration.
type Visitor[K any] func(key K, id int64) bool

// Ascend visits every entry in ascending order.
func (t *Tree[K]) Ascend(fn Visitor[K]) {
	t.ascend(t.root, nil, nil, fn)
}

// AscendRange visits entries with lo <= key <= hi in ascending order. A
// nil bound pointer is unbounded on that side.
func (t *Tree[K]) AscendRange(lo, hi *K, fn Visitor[K]) {
	t.ascend(t.root, lo, hi, fn)
}

func (t *Tree[K]) ascend(n *node[K], lo, hi *K, fn Visitor[K]) bool {
	start := 0
	if lo != nil {
		start = sort.Search(len(n.items), func(i int) bool {
			return t.cmp(n.items[i].key, *lo) >= 0
		})
	}
	for i := start; i <= len(n.items); i++ {
		if !n.leaf() {
			if !t.ascend(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if i == len(n.items) {
			break
		}
		if hi != nil && t.cmp(n.items[i].key, *hi) > 0 {
			return false
		}
		if !fn(n.items[i].key, n.items[i].id) {
			return false
		}
		// Entries before start are < lo; once we are iterating we no longer
		// need the lower bound for child descents to the right.
		lo = nil
	}
	return true
}

// Height returns the height of the tree (a single leaf has height 1).
// It exists for tests and diagnostics.
func (t *Tree[K]) Height() int {
	h, n := 1, t.root
	for !n.leaf() {
		h++
		n = n.children[0]
	}
	return h
}

package rdfterm

import "testing"

func govAliases() *AliasSet {
	return Default().With(
		Alias{Prefix: "gov", Namespace: "http://www.us.gov#"},
		Alias{Prefix: "id", Namespace: "http://www.us.id#"},
	)
}

func TestParseSubject(t *testing.T) {
	a := govAliases()
	cases := map[string]Term{
		"gov:files":                           NewURI("http://www.us.gov#files"),
		"<http://x/a>":                        NewURI("http://x/a"),
		"http://x/a":                          NewURI("http://x/a"),
		"_:b1":                                NewBlank("b1"),
		"urn:lsid:uniprot.org:uniprot:P93259": NewURI("urn:lsid:uniprot.org:uniprot:P93259"),
	}
	for in, want := range cases {
		got, err := ParseSubject(in, a)
		if err != nil || got != want {
			t.Errorf("ParseSubject(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", `"lit"`, "nocolonhere", "1:23"} {
		if _, err := ParseSubject(bad, a); err == nil {
			t.Errorf("ParseSubject(%q) accepted", bad)
		}
	}
}

func TestParsePredicate(t *testing.T) {
	a := govAliases()
	got, err := ParsePredicate("gov:terrorSuspect", a)
	if err != nil || got.Value != "http://www.us.gov#terrorSuspect" {
		t.Fatalf("ParsePredicate = %v, %v", got, err)
	}
	for _, bad := range []string{"", "_:b", `"lit"`, "plainword"} {
		if _, err := ParsePredicate(bad, a); err == nil {
			t.Errorf("ParsePredicate(%q) accepted", bad)
		}
	}
}

func TestParseObject(t *testing.T) {
	a := govAliases()
	cases := map[string]Term{
		"id:JohnDoe":             NewURI("http://www.us.id#JohnDoe"),
		"bombing":                NewLiteral("bombing"), // Figure 2's unquoted literal
		"June-20-2000":           NewLiteral("June-20-2000"),
		`"bombing"`:              NewLiteral("bombing"),
		`"hello"@en`:             NewLangLiteral("hello", "en"),
		`"25"^^xsd:int`:          NewTypedLiteral("25", XSDInt),
		`"25"^^<` + XSDInt + `>`: NewTypedLiteral("25", XSDInt),
		"_:node1":                NewBlank("node1"),
		`"a\"b\\c\n"`:            NewLiteral("a\"b\\c\n"),
		"<http://plain/u>":       NewURI("http://plain/u"),
	}
	for in, want := range cases {
		got, err := ParseObject(in, a)
		if err != nil || got != want {
			t.Errorf("ParseObject(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", `"unterminated`, `"x"@`, `"x"^^`, `"x"garbage`, `"a\qb"`} {
		if _, err := ParseObject(bad, a); err == nil {
			t.Errorf("ParseObject(%q) accepted", bad)
		}
	}
}

func TestParseObjectPreservesUnquotedWhitespace(t *testing.T) {
	got, err := ParseObject("Brooklyn, NY", nil)
	if err != nil || got != NewLiteral("Brooklyn, NY") {
		t.Fatalf("ParseObject = %v, %v", got, err)
	}
}

func TestParseObjectUnknownPrefixIsLiteral(t *testing.T) {
	// "xyz:abc" with no alias but scheme-shaped head parses as URI; a head
	// with illegal scheme chars falls back to literal.
	got, err := ParseObject("not a uri: really", nil)
	if err != nil || got.Kind != Literal {
		t.Fatalf("ParseObject = %v, %v", got, err)
	}
	got, err = ParseObject("mailto:someone@example.org", nil)
	if err != nil || got.Kind != URI {
		t.Fatalf("ParseObject(mailto) = %v, %v", got, err)
	}
}

package rdfxml

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
	"repro/internal/uniprot"
)

func canonTriples(ts []ntriples.Triple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

func assertRoundTrip(t *testing.T, in []ntriples.Triple) {
	t.Helper()
	var buf strings.Builder
	if err := Write(&buf, in); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Parse(strings.NewReader(buf.String()), Options{})
	if err != nil {
		t.Fatalf("Parse(Write): %v\ndoc:\n%s", err, buf.String())
	}
	a, b := canonTriples(in), canonTriples(back)
	if len(a) != len(b) {
		t.Fatalf("round trip %d -> %d triples\ndoc:\n%s", len(a), len(b), buf.String())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed triple:\n  in:  %s\n  out: %s", a[i], b[i])
		}
	}
}

func TestWriteRoundTripBasic(t *testing.T) {
	uri := rdfterm.NewURI
	in := []ntriples.Triple{
		{Subject: uri("http://a"), Predicate: uri("http://ex#p"), Object: uri("http://b")},
		{Subject: uri("http://a"), Predicate: uri("http://ex#name"), Object: rdfterm.NewLiteral("Ann & <Bob>")},
		{Subject: uri("http://a"), Predicate: uri("http://ex#age"), Object: rdfterm.NewTypedLiteral("30", rdfterm.XSDInt)},
		{Subject: uri("http://a"), Predicate: uri("http://ex#greeting"), Object: rdfterm.NewLangLiteral("hi", "en")},
		{Subject: rdfterm.NewBlank("b1"), Predicate: uri("http://other/ns/q"), Object: rdfterm.NewBlank("b2")},
	}
	assertRoundTrip(t, in)
}

func TestWriteRoundTripGeneratedCorpus(t *testing.T) {
	gen, _, err := uniprot.Generate(uniprot.Config{Triples: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]ntriples.Triple, len(gen))
	for i, g := range gen {
		in[i] = g.T
	}
	assertRoundTrip(t, in)
}

func TestWriteRejectsUnsplittablePredicate(t *testing.T) {
	in := []ntriples.Triple{{
		Subject:   rdfterm.NewURI("http://a"),
		Predicate: rdfterm.NewURI("urn:justonetoken"),
		Object:    rdfterm.NewURI("http://b"),
	}}
	if err := Write(&strings.Builder{}, in); err == nil {
		t.Fatal("unsplittable predicate accepted")
	}
	in[0].Predicate = rdfterm.NewLiteral("p")
	if err := Write(&strings.Builder{}, in); err == nil {
		t.Fatal("literal predicate accepted")
	}
	in[0].Predicate = rdfterm.NewURI("http://ex#ok")
	in[0].Subject = rdfterm.NewLiteral("s")
	if err := Write(&strings.Builder{}, in); err == nil {
		t.Fatal("literal subject accepted")
	}
}

func TestSplitPredicate(t *testing.T) {
	good := map[string][2]string{
		"http://ex#name":          {"http://ex#", "name"},
		"http://ex/path/to/local": {"http://ex/path/to/", "local"},
		rdfterm.RDFType:           {rdfterm.RDFNS, "type"},
	}
	for in, want := range good {
		ns, local, err := splitPredicate(in)
		if err != nil || ns != want[0] || local != want[1] {
			t.Errorf("splitPredicate(%q) = (%q,%q,%v)", in, ns, local, err)
		}
	}
	for _, bad := range []string{"", "nolocal", "http://ex#", "http://ex#9starts-with-digit"} {
		if _, _, err := splitPredicate(bad); err == nil {
			t.Errorf("splitPredicate(%q) accepted", bad)
		}
	}
}

func TestWriteGroupsBySubject(t *testing.T) {
	uri := rdfterm.NewURI
	in := []ntriples.Triple{
		{Subject: uri("http://a"), Predicate: uri("http://ex#p"), Object: uri("http://x")},
		{Subject: uri("http://b"), Predicate: uri("http://ex#p"), Object: uri("http://y")},
		{Subject: uri("http://a"), Predicate: uri("http://ex#q"), Object: uri("http://z")},
	}
	var buf strings.Builder
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	// One Description per subject.
	if got := strings.Count(buf.String(), "<rdf:Description"); got != 2 {
		t.Fatalf("descriptions = %d\n%s", got, buf.String())
	}
}

// Package rdfterm models RDF terms — URIs, blank nodes, and plain, typed,
// language-tagged, and long literals — along with the value-type codes,
// canonicalization, and namespace-alias machinery the paper's rdf_value$
// table relies on (§2, §4, Figure 4).
package rdfterm

import (
	"fmt"
	"strings"
)

// LongLiteralThreshold is the lexical length above which a literal is a
// "long literal" stored in the LONG_VALUE column (paper §4: "long-literals
// are text values that exceed 4000 characters").
const LongLiteralThreshold = 4000

// Kind discriminates the three RDF term categories.
type Kind uint8

// Term kinds.
const (
	URI Kind = iota + 1
	Blank
	Literal
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case URI:
		return "URI"
	case Blank:
		return "BlankNode"
	case Literal:
		return "Literal"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Term is one RDF term. The zero Term is invalid; use the constructors.
//
// For URI terms, Value is the URI text. For blank nodes, Value is the label
// without the "_:" prefix. For literals, Value is the lexical form,
// Language is the optional language tag, and Datatype is the optional
// datatype URI (Language and Datatype are mutually exclusive, as in RDF).
type Term struct {
	Kind     Kind
	Value    string
	Language string
	Datatype string
}

// NewURI returns a URI term.
func NewURI(uri string) Term { return Term{Kind: URI, Value: uri} }

// NewBlank returns a blank-node term. The label may be given with or
// without the "_:" prefix.
func NewBlank(label string) Term {
	return Term{Kind: Blank, Value: strings.TrimPrefix(label, "_:")}
}

// NewLiteral returns a plain literal.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewLangLiteral returns a plain literal with a language tag.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Language: lang}
}

// NewTypedLiteral returns a typed literal with the given datatype URI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// IsZero reports whether the term is the invalid zero value.
func (t Term) IsZero() bool { return t.Kind == 0 }

// IsLong reports whether the term is a long literal (lexical form longer
// than LongLiteralThreshold).
func (t Term) IsLong() bool {
	return t.Kind == Literal && len(t.Value) > LongLiteralThreshold
}

// ValueType codes stored in rdf_value$.VALUE_TYPE (paper §4).
const (
	VTUri              = "UR"  // URI
	VTBlank            = "BN"  // blank node
	VTPlain            = "PL"  // plain literal
	VTPlainLang        = "PL@" // plain literal with language tag
	VTTyped            = "TL"  // typed literal
	VTPlainLong        = "PLL" // plain long-literal (with or without language)
	VTTypedLong        = "TLL" // typed long-literal
	ValueTypeURI       = VTUri
	ValueTypeBlankNode = VTBlank
)

// ValueType returns the rdf_value$ VALUE_TYPE code for the term.
func (t Term) ValueType() string {
	switch t.Kind {
	case URI:
		return VTUri
	case Blank:
		return VTBlank
	case Literal:
		long := t.IsLong()
		switch {
		case t.Datatype != "" && long:
			return VTTypedLong
		case t.Datatype != "":
			return VTTyped
		case long:
			return VTPlainLong
		case t.Language != "":
			return VTPlainLang
		default:
			return VTPlain
		}
	}
	return "??"
}

// Validate checks structural invariants: non-empty URI/blank values, no
// simultaneous language tag and datatype, and kind-appropriate fields.
func (t Term) Validate() error {
	switch t.Kind {
	case URI:
		if t.Value == "" {
			return fmt.Errorf("rdfterm: empty URI")
		}
		if t.Language != "" || t.Datatype != "" {
			return fmt.Errorf("rdfterm: URI %q with literal attributes", t.Value)
		}
	case Blank:
		if t.Value == "" {
			return fmt.Errorf("rdfterm: empty blank node label")
		}
		if t.Language != "" || t.Datatype != "" {
			return fmt.Errorf("rdfterm: blank node %q with literal attributes", t.Value)
		}
	case Literal:
		if t.Language != "" && t.Datatype != "" {
			return fmt.Errorf("rdfterm: literal %q has both language and datatype", abbrev(t.Value))
		}
	default:
		return fmt.Errorf("rdfterm: invalid kind %d", t.Kind)
	}
	return nil
}

// String renders the term in N-Triples-like form for diagnostics:
// <uri>, _:label, "literal"@lang, "literal"^^<datatype>.
func (t Term) String() string {
	switch t.Kind {
	case URI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		s := `"` + abbrev(t.Value) + `"`
		if t.Language != "" {
			s += "@" + t.Language
		}
		if t.Datatype != "" {
			s += "^^<" + t.Datatype + ">"
		}
		return s
	}
	return "<invalid>"
}

// Lexical returns the user-facing text of the term: the URI, "_:"+label,
// or the literal's lexical form. This is what GET_SUBJECT / GET_PROPERTY /
// GET_OBJECT return.
func (t Term) Lexical() string {
	if t.Kind == Blank {
		return "_:" + t.Value
	}
	return t.Value
}

// Equal reports full term equality (kind, value, language, datatype).
func (t Term) Equal(o Term) bool { return t == o }

// Compare gives a total order over terms: by kind, then value, language,
// datatype. It exists so terms can key deterministic data structures.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Language, o.Language); c != 0 {
		return c
	}
	return strings.Compare(t.Datatype, o.Datatype)
}

func abbrev(s string) string {
	if len(s) > 64 {
		return s[:61] + "..."
	}
	return s
}

// Package goodwrap holds the wrapping patterns errwrapcheck must accept.
package goodwrap

import (
	"errors"
	"fmt"
)

var ErrNotFound = errors.New("not found")

// The contract: sentinels travel under %w.
func Lookup(k string) error {
	return fmt.Errorf("lookup %q: %w", k, ErrNotFound)
}

// A local error is not a sentinel; nobody matches it by identity.
func Local() error {
	err := errors.New("transient")
	return fmt.Errorf("op: %v", err)
}

// Non-error operands under %v/%s are ordinary formatting.
func Message(name string) error {
	return fmt.Errorf("bad name %s", name)
}

// Non-constant format strings cannot be analyzed and are skipped.
func Passthrough(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}

package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/rdfterm"
)

func TestDBUriRoundTrip(t *testing.T) {
	uri := DBUri(2051)
	if uri != "/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=2051]" {
		t.Fatalf("DBUri = %q", uri)
	}
	id, ok := ParseDBUri(uri)
	if !ok || id != 2051 {
		t.Fatalf("ParseDBUri = %d, %v", id, ok)
	}
	for _, bad := range []string{
		"", "http://x", "/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=]",
		"/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=abc]",
		"/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=12", // no suffix
		"/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=-5]",
	} {
		if _, ok := ParseDBUri(bad); ok {
			t.Errorf("ParseDBUri(%q) accepted", bad)
		}
	}
}

// TestReifyFigure7 reproduces Figure 7: reifying triple 2051 stores the
// single triple <DBUri, rdf:type, rdf:Statement>, and the assertion
// <gov:MI5, gov:source, R> hangs off the DBUri.
func TestReifyFigure7(t *testing.T) {
	s := newStoreWithModel(t, "cia")
	a := govAliases()
	base, err := s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := s.NumTriples("cia")

	reif, err := s.Reify("cia", base.TID)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := s.NumTriples("cia")
	if after != before+1 {
		t.Fatalf("reification added %d triples, want exactly 1", after-before)
	}
	tr, _ := reif.GetTriple()
	if tr.Subject.Value != DBUri(base.TID) {
		t.Errorf("reification subject = %v", tr.Subject)
	}
	if tr.Property.Value != rdfterm.RDFType || tr.Object.Value != rdfterm.RDFStatement {
		t.Errorf("reification triple = %v", tr)
	}
	info, _ := s.LinkInfo(reif.TID)
	if !info.ReifLink {
		t.Error("REIF_LINK != Y on reification row")
	}

	// Assertion about the reified triple.
	if _, err := s.AssertAboutTriple("cia", "gov:MI5", "gov:source", base.TID, a); err != nil {
		t.Fatal(err)
	}
	asserts, err := s.Assertions("cia", base.TID)
	if err != nil || len(asserts) != 1 {
		t.Fatalf("Assertions = %v, %v", asserts, err)
	}
	if asserts[0].Subject.Value != "http://www.us.gov#MI5" {
		t.Errorf("assertion subject = %v", asserts[0].Subject)
	}
	// The assertion row also carries REIF_LINK=Y (its object is a DBUri).
	assertTS, ok, _ := s.IsTriple("cia", "gov:MI5", "gov:source", DBUri(base.TID), a)
	if !ok {
		t.Fatal("assertion triple not found via IsTriple")
	}
	info, _ = s.LinkInfo(assertTS.TID)
	if !info.ReifLink {
		t.Error("REIF_LINK != Y on assertion row")
	}
}

func TestIsReified(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	base, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	s.NewTripleS("m", "gov:c", "gov:p", "gov:d", a)

	got, err := s.IsReified("m", "gov:a", "gov:p", "gov:b", a)
	if err != nil || got {
		t.Fatalf("IsReified before reify = %v, %v", got, err)
	}
	if _, err := s.Reify("m", base.TID); err != nil {
		t.Fatal(err)
	}
	got, err = s.IsReified("m", "gov:a", "gov:p", "gov:b", a)
	if err != nil || !got {
		t.Fatalf("IsReified after reify = %v, %v", got, err)
	}
	// Non-reified triple stays false.
	got, _ = s.IsReified("m", "gov:c", "gov:p", "gov:d", a)
	if got {
		t.Fatal("non-reified triple reported reified")
	}
	// Absent triple is false, not an error.
	got, err = s.IsReified("m", "gov:x", "gov:p", "gov:y", a)
	if err != nil || got {
		t.Fatalf("IsReified of absent triple = %v, %v", got, err)
	}
	if ok, _ := s.IsReifiedByID("m", base.TID); !ok {
		t.Fatal("IsReifiedByID false")
	}
}

func TestReifyIdempotent(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	base, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	r1, err := s.Reify("m", base.TID)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Reify("m", base.TID)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TID != r2.TID {
		t.Fatal("double reify created two rows")
	}
	if n, _ := s.ReifiedCount("m"); n != 1 {
		t.Fatalf("ReifiedCount = %d", n)
	}
}

func TestReifyMissingTriple(t *testing.T) {
	s := newStoreWithModel(t, "m")
	if _, err := s.Reify("m", 424242); !errors.Is(err, ErrNoSuchTriple) {
		t.Fatalf("Reify missing = %v", err)
	}
	if _, err := s.AssertAboutTriple("m", "gov:X", "gov:says", 424242, govAliases()); !errors.Is(err, ErrNoSuchTriple) {
		t.Fatalf("AssertAboutTriple missing = %v", err)
	}
	if _, err := s.Reify("nope", 1); !errors.Is(err, ErrNoSuchModel) {
		t.Fatalf("Reify missing model = %v", err)
	}
}

// TestAssertDirectTriple covers §5.1: asserting about a direct triple
// leaves its CONTEXT = D.
func TestAssertDirectTriple(t *testing.T) {
	s := newStoreWithModel(t, "cia")
	a := govAliases()
	base, _ := s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoe", a)
	if _, err := s.AssertAboutTriple("cia", "gov:MI5", "gov:source", base.TID, a); err != nil {
		t.Fatal(err)
	}
	info, _ := s.LinkInfo(base.TID)
	if info.Context != ContextDirect {
		t.Errorf("direct triple CONTEXT = %s", info.Context)
	}
}

// TestAssertImplied covers §5.2: the Interpol example — the base triple is
// created as an indirect statement (CONTEXT=I) and upgrades to D when
// later inserted as fact.
func TestAssertImplied(t *testing.T) {
	s := newStoreWithModel(t, "cia")
	a := govAliases()
	if _, err := s.AssertImplied("cia", "gov:Interpol", "gov:source",
		"gov:files", "gov:terrorSuspect", "id:JohnDoeJr", a); err != nil {
		t.Fatal(err)
	}
	base, ok, err := s.IsTriple("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoeJr", a)
	if err != nil || !ok {
		t.Fatalf("implied base triple missing: %v", err)
	}
	info, _ := s.LinkInfo(base.TID)
	if info.Context != ContextIndirect {
		t.Fatalf("implied base CONTEXT = %s, want I", info.Context)
	}
	// It is reified and asserted about.
	if ok, _ := s.IsReifiedByID("cia", base.TID); !ok {
		t.Fatal("implied base not reified")
	}
	asserts, _ := s.Assertions("cia", base.TID)
	if len(asserts) != 1 || asserts[0].Subject.Value != "http://www.us.gov#Interpol" {
		t.Fatalf("assertions = %v", asserts)
	}
	// Later direct insert upgrades I → D (§5.2 note).
	if _, err := s.NewTripleS("cia", "gov:files", "gov:terrorSuspect", "id:JohnDoeJr", a); err != nil {
		t.Fatal(err)
	}
	info, _ = s.LinkInfo(base.TID)
	if info.Context != ContextDirect {
		t.Fatalf("CONTEXT after direct insert = %s, want D", info.Context)
	}
}

// TestAssertImpliedExistingFact: when the base triple already exists as a
// fact, AssertImplied must not downgrade its context.
func TestAssertImpliedExistingFact(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	base, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	if _, err := s.AssertImplied("m", "gov:N", "gov:said", "gov:a", "gov:p", "gov:b", a); err != nil {
		t.Fatal(err)
	}
	info, _ := s.LinkInfo(base.TID)
	if info.Context != ContextDirect {
		t.Fatalf("CONTEXT downgraded to %s", info.Context)
	}
}

// TestReificationStorageRatio checks §7.3: the streamlined scheme stores
// one new triple per reification — 25% of the four-triple quad.
func TestReificationStorageRatio(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	const n = 40
	var tids []int64
	for i := 0; i < n; i++ {
		ts, err := s.NewTripleS("m", "gov:s"+itoa(i), "gov:p", "gov:o"+itoa(i), a)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, ts.TID)
	}
	before, _ := s.NumTriples("m")
	for _, tid := range tids {
		if _, err := s.Reify("m", tid); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := s.NumTriples("m")
	oracleRows := after - before
	quadRows := 4 * n
	if oracleRows != n {
		t.Fatalf("streamlined reification stored %d rows for %d reifications", oracleRows, n)
	}
	if ratio := float64(oracleRows) / float64(quadRows); ratio != 0.25 {
		t.Fatalf("storage ratio = %v, want 0.25", ratio)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestResolveDBUri(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	base, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	tr, err := s.ResolveDBUri(DBUri(base.TID))
	if err != nil || tr.Subject.Value != "http://www.us.gov#a" {
		t.Fatalf("ResolveDBUri = %v, %v", tr, err)
	}
	if _, err := s.ResolveDBUri("http://not-a-dburi"); err == nil {
		t.Fatal("bad DBUri resolved")
	}
	if _, err := s.ResolveDBUri(DBUri(999999)); !errors.Is(err, ErrNoSuchTriple) {
		t.Fatalf("dangling DBUri = %v", err)
	}
}

func TestReifiedStatementSurvivesInGetters(t *testing.T) {
	s := newStoreWithModel(t, "m")
	a := govAliases()
	base, _ := s.NewTripleS("m", "gov:a", "gov:p", "gov:b", a)
	reif, _ := s.Reify("m", base.TID)
	sub, err := reif.GetSubject()
	if err != nil || !strings.HasPrefix(sub, "/ORADB/") {
		t.Fatalf("reification GetSubject = %q, %v", sub, err)
	}
	// The DBUri subject resolves back to the base triple.
	got, err := s.ResolveDBUri(sub)
	if err != nil || got.Object.Value != "http://www.us.gov#b" {
		t.Fatalf("resolve = %v, %v", got, err)
	}
}

// Package reldb is a small embedded, in-memory relational engine: typed
// rows, heap tables with stable row IDs, B-tree secondary and unique
// indexes, function-based indexes, list partitioning, sequences, views, and
// an iterator-based executor.
//
// It is this reproduction's stand-in for the Oracle storage layer the paper
// builds on: the RDF central schema (rdf_value$, rdf_link$, …), the Jena1
// and Jena2 baseline schemas, and user application tables are all ordinary
// reldb tables, so every experiment compares schema designs on the same
// engine — exactly the variable the paper varies.
package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported kinds. KindNull sorts before every other value, mirroring a
// NULLS FIRST ordering.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "NUMBER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR2"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single typed cell. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // KindInt and KindBool (0/1)
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload. It panics if the value is not an
// integer, catching type-confusion bugs at the call site.
func (v Value) Int64() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("reldb: Int64 on %s value", v.kind))
	}
	return v.i
}

// Float64 returns the float payload.
func (v Value) Float64() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("reldb: Float64 on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("reldb: Str on %s value", v.kind))
	}
	return v.s
}

// BoolVal returns the boolean payload.
func (v Value) BoolVal() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("reldb: BoolVal on %s value", v.kind))
	}
	return v.i != 0
}

// String renders the value for diagnostics and table printing.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Compare orders two values. NULL < everything; across kinds the order is
// by kind tag; within a kind, natural order. It defines the total order
// used by all indexes.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.s, o.s)
	}
	return 0
}

// Equal reports value equality (same kind and payload).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Key is a composite index key: an ordered tuple of values.
type Key []Value

// Compare orders keys lexicographically. A shorter key that is a prefix of
// a longer one sorts first, which is what makes prefix range scans work.
func (k Key) Compare(o Key) int {
	n := len(k)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		a, b := k[i], o[i]
		// Fast path for the all-integer keys that dominate the RDF link
		// indexes (every hot-path key is IDs).
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			continue
		}
		if c := a.Compare(b); c != 0 {
			return c
		}
	}
	switch {
	case len(k) < len(o):
		return -1
	case len(k) > len(o):
		return 1
	}
	return 0
}

// KeyCompare adapts Key.Compare to the btree comparator signature.
func KeyCompare(a, b Key) int { return a.Compare(b) }

// String renders the key for diagnostics.
func (k Key) String() string {
	parts := make([]string, len(k))
	for i, v := range k {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Row is a tuple of values, positionally matching a table's schema.
type Row []Value

// Clone returns a copy of the row so callers can retain results across
// subsequent table mutations.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

package jena

import (
	"fmt"

	"repro/internal/rdfterm"
)

// QuadReifier is the naïve reification baseline (§5, §7.3): each
// reification stores the full four-triple reification quad
//
//	<R, rdf:type, rdf:Statement>
//	<R, rdf:subject, S>
//	<R, rdf:predicate, P>
//	<R, rdf:object, O>
//
// in the statement store. The paper's streamlined DBUri scheme needs 25%
// of this storage, and IsReified becomes a multi-join instead of a single
// row lookup.
type QuadReifier struct {
	store *Jena2Store
	model string
	seq   int64
}

// NewQuadReifier wraps a Jena2 model with quad-based reification.
func NewQuadReifier(store *Jena2Store, model string) *QuadReifier {
	return &QuadReifier{store: store, model: model}
}

// Reify stores the four-triple quad for st, returning the generated
// resource R.
func (q *QuadReifier) Reify(st Statement) (rdfterm.Term, error) {
	q.seq++
	r := rdfterm.NewURI(fmt.Sprintf("urn:quadreif:%s:%d", q.model, q.seq))
	quad := []Statement{
		{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFType), Object: rdfterm.NewURI(rdfterm.RDFStatement)},
		{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFSubject), Object: st.Subject},
		{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFPredicate), Object: st.Predicate},
		{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFObject), Object: st.Object},
	}
	for _, t := range quad {
		if err := q.store.Add(q.model, t); err != nil {
			return rdfterm.Term{}, err
		}
	}
	return r, nil
}

// IsReified answers whether st is reified under the quad scheme: find the
// resources whose rdf:subject is st.Subject, then check each also carries
// the matching rdf:predicate, rdf:object, and rdf:type rows — the
// multi-lookup the DBUri scheme avoids.
func (q *QuadReifier) IsReified(st Statement) (bool, error) {
	rdfSubject := rdfterm.NewURI(rdfterm.RDFSubject)
	candidates, err := q.store.Find(q.model, nil, &rdfSubject, &st.Subject)
	if err != nil {
		return false, err
	}
	rdfPredicate := rdfterm.NewURI(rdfterm.RDFPredicate)
	rdfObject := rdfterm.NewURI(rdfterm.RDFObject)
	rdfType := rdfterm.NewURI(rdfterm.RDFType)
	rdfStatement := rdfterm.NewURI(rdfterm.RDFStatement)
	for _, cand := range candidates {
		r := cand.Subject
		if ok, err := q.store.Contains(q.model, Statement{Subject: r, Predicate: rdfPredicate, Object: st.Predicate}); err != nil || !ok {
			if err != nil {
				return false, err
			}
			continue
		}
		if ok, err := q.store.Contains(q.model, Statement{Subject: r, Predicate: rdfObject, Object: st.Object}); err != nil || !ok {
			if err != nil {
				return false, err
			}
			continue
		}
		if ok, err := q.store.Contains(q.model, Statement{Subject: r, Predicate: rdfType, Object: rdfStatement}); err != nil || !ok {
			if err != nil {
				return false, err
			}
			continue
		}
		return true, nil
	}
	return false, nil
}

// StoredTriples returns how many statement rows the quad scheme has
// consumed for reification so far.
func (q *QuadReifier) StoredTriples() int64 { return q.seq * 4 }

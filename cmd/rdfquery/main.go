// Command rdfquery loads N-Triples data and runs an SDO_RDF_MATCH-style
// query against it (§6.1).
//
// Usage:
//
//	rdfquery -data file.nt -query '(?s ?p ?o)' [-filter '?s != "x"'] \
//	         [-alias gov=http://www.us.gov#] [-rule 'ante=>cons' ...] [-rdfs] \
//	         [-timeout 10s]
//	rdfquery -snapshot store.snap -model data -query '(?s ?p ?o)'
//	rdfquery -snapshot store.snap -wal store.wal -model data -query '(?s ?p ?o)'
//	rdfquery -data file.nt -stats
//
// Rules passed with -rule are collected into an ad-hoc rulebase, a rules
// index is built, and the query runs with inference enabled. -snapshot
// reopens a store written by rdfload -save; adding -wal replays the
// write-ahead log on top of it (crash recovery: the snapshot is the
// checkpoint, the log holds everything since; -wal alone recovers from
// the log only). -stats prints the model's storage statistics (rows,
// contexts, link types) instead of querying.
//
// Observability: -explain appends an EXPLAIN-style execution trace to
// the output (plan order, per-stage candidate counts and timings);
// -slow DURATION logs any query over the threshold with its trace;
// -admin ADDR serves the runtime metrics registry (/metrics, /healthz,
// /events, /debug/pprof) while the command runs.
//
// Exit codes: 0 success; 1 any error; 2 the -timeout deadline expired
// ("query timed out after X"); 130 the query was interrupted (Ctrl-C).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/rdfterm"
	"repro/internal/reify"
	"repro/internal/trace"
	"repro/internal/wal"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// Exit codes. A deadline kill and a Ctrl-C are different events for the
// calling script: one means "the query is too slow, tune it", the other
// "the operator gave up" — so they get distinct codes.
const (
	exitFailure     = 1   // any other error
	exitTimeout     = 2   // -timeout expired (query timed out after X)
	exitInterrupted = 130 // SIGINT, the shell convention (128 + 2)
)

// exitError carries a specific process exit code up through run().
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdfquery:", err)
		var xe *exitError
		if errors.As(err, &xe) {
			os.Exit(xe.code)
		}
		os.Exit(exitFailure)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdfquery", flag.ContinueOnError)
	data := fs.String("data", "", "N-Triples file to load (default: stdin)")
	snapshot := fs.String("snapshot", "", "store snapshot to open instead of loading N-Triples (see rdfload -save)")
	walPath := fs.String("wal", "", "write-ahead log to replay (on top of -snapshot when both are given; see rdfload -wal)")
	walDir := fs.String("wal-dir", "", "segmented write-ahead log directory to replay (see rdfload -wal-dir; mutually exclusive with -wal)")
	query := fs.String("query", "", "match query, e.g. '(?s ?p ?o)'")
	queryModel := fs.String("model", "data", "model to query when opening a snapshot")
	stats := fs.Bool("stats", false, "print model storage statistics instead of running a query")
	timeout := fs.Duration("timeout", 0, "abort the query if it runs longer than this (e.g. 500ms, 10s; 0 = no limit)")
	filter := fs.String("filter", "", "optional filter expression")
	rdfs := fs.Bool("rdfs", false, "enable the built-in RDFS rulebase")
	explain := fs.Bool("explain", false, "print the query execution trace (planner, plan order, per-stage estimated vs actual cardinalities, timings) after the rows")
	planner := fs.String("planner", "cost", "pattern ordering strategy: cost, heuristic, or naive")
	engine := fs.String("engine", "streaming", "join execution engine: streaming or materialize")
	slow := fs.Duration("slow", 0, "log queries slower than this threshold with their full trace (0 = off)")
	spans := fs.Bool("trace", false, "run the query under a span tree and print it after the rows (planner + per-stage spans)")
	adminAddr := fs.String("admin", "", "serve /metrics, /healthz, /events, and /debug/pprof on this address while the command runs")
	adminLinger := fs.Duration("admin-linger", 0, "with -admin, keep serving this long after the query finishes so the endpoint can be scraped")
	var aliases, rules multiFlag
	fs.Var(&aliases, "alias", "namespace alias prefix=namespace (repeatable)")
	fs.Var(&rules, "rule", "inference rule 'antecedent=>consequent' (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" && !*stats {
		return fmt.Errorf("-query is required (or pass -stats)")
	}
	if *walPath != "" && *walDir != "" {
		return errors.New("-wal and -wal-dir are mutually exclusive")
	}

	// Admin surface: serve the metrics registry while the command runs.
	// Deferred LIFO order means the linger sleep runs before the server
	// closes, so CI smoke checks can scrape the final counters.
	var reg *obs.Registry
	if *adminAddr != "" {
		reg = obs.NewRegistry()
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("-admin %s: %w", *adminAddr, err)
		}
		srv := &http.Server{Handler: obs.NewHandler(reg, nil)}
		go srv.Serve(ln)
		defer srv.Close()
		if *adminLinger > 0 {
			defer func() {
				fmt.Fprintf(os.Stderr, "admin endpoint lingering %s\n", *adminLinger)
				time.Sleep(*adminLinger)
			}()
		}
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s/\n", ln.Addr())
	}

	aliasSet := rdfterm.Default()
	for _, a := range aliases {
		prefix, ns, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("bad -alias %q (want prefix=namespace)", a)
		}
		al := rdfterm.Alias{Prefix: prefix, Namespace: ns}
		if err := al.Validate(); err != nil {
			return err
		}
		aliasSet = aliasSet.With(al)
	}

	var store *core.Store
	model := *queryModel
	if *snapshot != "" || *walPath != "" || *walDir != "" {
		var err error
		store, err = openDurable(*snapshot, *walPath, *walDir, stdout)
		if err != nil {
			return err
		}
		n, err := store.NumTriples(model)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d triples in model %q\n\n", n, model)
	} else {
		var in io.Reader = os.Stdin
		if *data != "" {
			f, err := os.Open(*data)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		store = core.New()
		if _, err := store.CreateRDFModel(model, "", ""); err != nil {
			return err
		}
		loader := &reify.Loader{Store: store, Model: model}
		stats, err := loader.Load(in)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded %d triples (%d reification quads folded)\n\n", stats.Read, stats.QuadsFolded)
	}
	store.SetMetrics(core.NewMetrics(reg))

	if *stats {
		st, err := store.ModelStatistics(model)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "model %q storage statistics:\n", model)
		fmt.Fprintf(stdout, "  triples (rdf_link$ rows): %d\n", st.Triples)
		fmt.Fprintf(stdout, "  reified statements:       %d\n", st.Reified)
		fmt.Fprintf(stdout, "  CONTEXT=D (direct):       %d\n", st.Direct)
		fmt.Fprintf(stdout, "  CONTEXT=I (implied):      %d\n", st.Indirect)
		for _, lt := range []string{"STANDARD", "RDF_TYPE", "RDF_MEMBER", "RDF_*"} {
			if n := st.ByLinkType[lt]; n > 0 {
				fmt.Fprintf(stdout, "  LINK_TYPE %-10s      %d\n", lt+":", n)
			}
		}
		return nil
	}

	opts := match.Options{
		Models:    []string{model},
		Aliases:   aliasSet,
		Filter:    *filter,
		Metrics:   match.NewMetrics(reg),
		SlowQuery: *slow,
	}
	switch *planner {
	case "cost":
		opts.Planner = match.PlannerCost
	case "heuristic":
		opts.Planner = match.PlannerHeuristic
	case "naive":
		opts.Planner = match.PlannerNaive
	default:
		return fmt.Errorf("bad -planner %q (want cost, heuristic, or naive)", *planner)
	}
	switch *engine {
	case "streaming":
		opts.Engine = match.EngineStreaming
	case "materialize":
		opts.Engine = match.EngineMaterialize
	default:
		return fmt.Errorf("bad -engine %q (want streaming or materialize)", *engine)
	}
	var mtrace match.Trace
	if *explain || *slow > 0 {
		opts.Trace = &mtrace
	}
	if len(rules) > 0 || *rdfs {
		cat := inference.NewCatalog(store)
		var rbNames []string
		if *rdfs {
			rbNames = append(rbNames, inference.RDFSRulebaseName)
		}
		if len(rules) > 0 {
			if _, err := cat.CreateRulebase("cli_rb"); err != nil {
				return err
			}
			var aliasList []rdfterm.Alias
			for _, p := range aliasSet.Prefixes() {
				ns, _ := aliasSet.Lookup(p)
				aliasList = append(aliasList, rdfterm.Alias{Prefix: p, Namespace: ns})
			}
			for i, r := range rules {
				ante, cons, ok := strings.Cut(r, "=>")
				if !ok {
					return fmt.Errorf("bad -rule %q (want 'antecedent=>consequent')", r)
				}
				if err := cat.AddRule("cli_rb", inference.Rule{
					Name:       fmt.Sprintf("cli_rule_%d", i+1),
					Antecedent: strings.TrimSpace(ante),
					Consequent: strings.TrimSpace(cons),
					Aliases:    aliasList,
				}); err != nil {
					return err
				}
			}
			rbNames = append(rbNames, "cli_rb")
		}
		ix, err := cat.CreateRulesIndex("cli_rix", []string{model}, rbNames)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "rules index: %d inferred triples\n\n", ix.InferredCount())
		opts.Rulebases = rbNames
		opts.Resolver = cat
	}

	// Ctrl-C cancels the query through the same context the -timeout
	// deadline uses, but the two exits are distinguishable: deadline →
	// exit 2 with a "timed out" message, SIGINT → exit 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// -trace: a one-trace tracer that retains everything (sample 1.0),
	// so the tree is printable no matter how fast the query was.
	var tracer *trace.Tracer
	var rootSpan *trace.Span
	if *spans {
		tracer = trace.New(trace.Config{SlowThreshold: time.Hour, SampleRate: 1, Capacity: 1})
		rootSpan = tracer.StartRoot("rdfquery.query")
		ctx = trace.WithSpan(ctx, rootSpan)
	}
	rs, err := match.MatchContext(ctx, store, *query, opts)
	if rootSpan != nil {
		rootSpan.SetError(err)
		rootSpan.End()
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return &exitError{code: exitTimeout,
				err: fmt.Errorf("query timed out after %v (-timeout): %w", *timeout, err)}
		case errors.Is(err, context.Canceled):
			return &exitError{code: exitInterrupted,
				err: fmt.Errorf("query interrupted: %w", err)}
		}
		return err
	}
	headers := make([]string, len(rs.Vars))
	for i, v := range rs.Vars {
		headers[i] = "?" + v
	}
	fmt.Fprintln(stdout, strings.Join(headers, "\t"))
	for i := 0; i < rs.Len(); i++ {
		fmt.Fprintln(stdout, strings.Join(rs.Strings(i), "\t"))
	}
	fmt.Fprintf(stdout, "\n%d rows\n", rs.Len())
	if *explain {
		fmt.Fprintln(stdout, "\nexplain:")
		mtrace.Format(stdout)
	}
	if rootSpan != nil {
		if td, ok := tracer.Get(rootSpan.TraceID()); ok {
			fmt.Fprintf(stdout, "\ntrace %s:\n", td.ID)
			trace.WriteTree(stdout, td)
		}
	}
	if *slow > 0 && mtrace.Total >= *slow {
		fmt.Fprintf(os.Stderr, "slow query (total %s >= -slow %s):\n", mtrace.Total.Round(time.Microsecond), *slow)
		mtrace.Format(os.Stderr)
	}
	return nil
}

// openDurable rebuilds a store from a snapshot (checkpoint) and/or a
// write-ahead log — single-file (walPath) or segmented (walDir) —
// translating the typed failure modes into actionable messages.
func openDurable(snapPath, walPath, walDir string, stdout io.Writer) (*core.Store, error) {
	if walDir != "" {
		if snapPath != "" {
			if _, err := os.Stat(snapPath); err != nil {
				return nil, err
			}
		}
		store, d, info, err := core.RecoverDir(snapPath, walDir, wal.DirOptions{})
		if err != nil {
			switch {
			case errors.Is(err, core.ErrSnapshotVersion):
				return nil, fmt.Errorf("snapshot %s was written by an incompatible format version — regenerate it with this build's rdfload -save (%v)", snapPath, err)
			case errors.Is(err, core.ErrSnapshotCorrupt):
				return nil, fmt.Errorf("snapshot %s is damaged and cannot be loaded — regenerate it with rdfload -save (%v)", snapPath, err)
			case errors.Is(err, wal.ErrSegmentCorrupt):
				return nil, fmt.Errorf("WAL directory %s is damaged (a non-final segment is torn or missing): %v", walDir, err)
			case errors.Is(err, wal.ErrNotWAL):
				return nil, fmt.Errorf("%s does not hold WAL segments — pass the directory written by rdfload -wal-dir (%v)", walDir, err)
			}
			return nil, err
		}
		d.Close() // read-only use: the query never appends
		if snapPath != "" {
			fmt.Fprintf(stdout, "recovered from snapshot %s + WAL directory %s (%d records replayed, %d segments)\n",
				snapPath, walDir, info.Applied, info.Segments)
		} else {
			fmt.Fprintf(stdout, "recovered from WAL directory %s (%d records replayed, %d segments)\n",
				walDir, info.Applied, info.Segments)
		}
		if info.Truncated {
			fmt.Fprintf(os.Stderr, "rdfquery: warning: WAL had a torn tail (recovered to the last valid record): %v\n", info.TailErr)
		}
		return store, nil
	}
	var snapR io.Reader
	if snapPath != "" {
		f, err := os.Open(snapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		snapR = f
	}
	var logR io.Reader = strings.NewReader(wal.Magic) // no log: just the header
	if walPath != "" {
		f, err := os.Open(walPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		logR = f
	}
	store, info, err := core.Recover(snapR, logR)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrSnapshotVersion):
			return nil, fmt.Errorf("snapshot %s was written by an incompatible format version — regenerate it with this build's rdfload -save (%v)", snapPath, err)
		case errors.Is(err, core.ErrSnapshotCorrupt):
			return nil, fmt.Errorf("snapshot %s is damaged and cannot be loaded — regenerate it with rdfload -save (%v)", snapPath, err)
		case errors.Is(err, wal.ErrNotWAL):
			return nil, fmt.Errorf("%s is not a WAL file — pass the log written by rdfload -wal (%v)", walPath, err)
		}
		return nil, err
	}
	switch {
	case snapPath != "" && walPath != "":
		fmt.Fprintf(stdout, "recovered from snapshot %s + WAL %s (%d records replayed)\n", snapPath, walPath, info.Applied)
	case walPath != "":
		fmt.Fprintf(stdout, "recovered from WAL %s (%d records replayed)\n", walPath, info.Applied)
	default:
		fmt.Fprintf(stdout, "opened snapshot %s\n", snapPath)
	}
	if info.Truncated {
		fmt.Fprintf(os.Stderr, "rdfquery: warning: WAL had a torn tail (recovered to the last valid record): %v\n", info.TailErr)
	}
	return store, nil
}

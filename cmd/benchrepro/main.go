// Command benchrepro regenerates every table and figure of the paper's
// evaluation (§7) on the reproduction:
//
//	-exp 1  Experiment I   — flat storage tables vs. member functions (§7.1.3)
//	-exp 2  Experiment II  — Jena2 vs. RDF storage objects (Table 1)
//	-exp 3  Experiment III — IS_REIFIED in Jena2 vs. Oracle (Table 2)
//	-exp 4  §7.3           — reification storage (streamlined vs. quad)
//	-exp 5  §7.2           — function-based indexing ablation
//	-exp 6  §3.1           — storage footprint per schema design
//	-exp all (default)     — everything
//
// Dataset sizes default to 10k and 100k triples; pass -sizes to change
// (e.g. -sizes 10000,100000,1000000,5000000 for the paper's full sweep —
// the 5M load takes several minutes and several GiB of memory).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/uniprot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchrepro", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run: 1, 2, 3, 4, 5, 6, or all")
	sizesArg := fs.String("sizes", "10000,100000", "comma-separated dataset sizes (triples)")
	seed := fs.Int64("seed", 1, "dataset generator seed")
	reifN := fs.Int("reifn", 2000, "reification count for the §7.3 storage experiment")
	systems := fs.String("systems", "both", "systems to load: both, or rdf (object store only — halves memory; skips Jena2 columns and Experiment II)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < uniprot.ProbeRows {
			return fmt.Errorf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}

	want := func(n string) bool { return *exp == "all" || *exp == n }

	fmt.Fprintf(stdout, "benchrepro: sizes=%v seed=%d (timings are means of %d warm trials, as §7.1.2)\n\n",
		sizes, *seed, bench.Trials)

	// Experiments 1, 2, 3, and 5 share per-size datasets; build each size
	// once.
	if want("1") || want("2") || want("3") || want("5") {
		var exp1 []bench.ExpIResult
		var exp2 []bench.ExpIIResult
		var exp3 []bench.ExpIIIResult
		var exp5 []bench.IndexAblationResult
		for _, n := range sizes {
			reified := uniprot.PaperReifiedCount(n)
			start := time.Now()
			oracle, err := bench.LoadOracle(n, reified, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "loaded %d triples (%d reified) into the RDF object store in %v\n",
				n, oracle.Reified, time.Since(start).Round(time.Millisecond))
			var jena2 *bench.Jena2Dataset
			if (want("2") || want("3")) && *systems == "both" {
				start = time.Now()
				if jena2, err = bench.LoadJena2(n, reified, *seed); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "loaded %d triples (%d reified) into the Jena2 baseline in %v\n",
					n, jena2.Reified, time.Since(start).Round(time.Millisecond))
			}
			if want("1") {
				r, err := bench.RunExperimentI(oracle)
				if err != nil {
					return err
				}
				exp1 = append(exp1, r)
			}
			if want("2") && jena2 != nil {
				r, err := bench.RunExperimentII(oracle, jena2)
				if err != nil {
					return err
				}
				exp2 = append(exp2, r)
			}
			if want("3") {
				var r bench.ExpIIIResult
				var err error
				if jena2 != nil {
					r, err = bench.RunExperimentIII(oracle, jena2)
				} else {
					r, err = bench.RunExperimentIIIRDFOnly(oracle)
				}
				if err != nil {
					return err
				}
				exp3 = append(exp3, r)
			}
			if want("5") {
				r, err := bench.RunIndexAblation(oracle)
				if err != nil {
					return err
				}
				exp5 = append(exp5, r)
			}
		}
		fmt.Fprintln(stdout)
		if want("1") {
			fmt.Fprintln(stdout, bench.TableExpI(exp1))
		}
		if want("2") {
			fmt.Fprintln(stdout, bench.TableExpII(exp2))
		}
		if want("3") {
			fmt.Fprintln(stdout, bench.TableExpIII(exp3))
		}
		if want("5") {
			fmt.Fprintln(stdout, bench.TableIndexAblation(exp5))
		}
	}

	if want("4") {
		r, err := bench.RunReificationStorage(*reifN, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.TableReifStorage(r))
	}

	if want("6") {
		n := sizes[0]
		results, err := bench.RunStorageComparison(n, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(storage comparison over %d triples)\n", n)
		fmt.Fprintln(stdout, bench.TableStorage(results))
	}
	return nil
}

// Package repro is a from-scratch Go reproduction of "RDF Object Type and
// Reification in the Database" (Alexander & Ravada, Oracle Corporation,
// ICDE 2006).
//
// The library implements the paper's full stack:
//
//   - internal/reldb — an embedded relational engine (heap tables, B-tree,
//     unique and function-based indexes, list partitioning, sequences,
//     views, iterator executor), standing in for the Oracle storage layer;
//   - internal/ndm — the Network Data Model (directed logical networks and
//     the NDM analysis suite);
//   - internal/core — the paper's contribution: the central RDF schema
//     (rdf_model$, rdf_value$, rdf_node$, rdf_link$, rdf_blank_node$), the
//     SDO_RDF_TRIPLE / SDO_RDF_TRIPLE_S object types, and streamlined
//     DBUri reification;
//   - internal/match and internal/inference — SDO_RDF_MATCH querying,
//     rulebases, the built-in RDFS rulebase, and rules indexes;
//   - internal/jena — the Jena1/Jena2 baseline schemas and the naïve quad
//     reification scheme the paper compares against;
//   - internal/uniprot and internal/bench — the synthetic evaluation
//     corpus and the harness regenerating every table and figure of §7.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each table/figure under `go test -bench`.
package repro

package match

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdfterm"
)

// The filter argument of SDO_RDF_MATCH is a boolean expression over the
// query's variables, evaluated on each candidate row — the engine's
// version of the paper's SQL WHERE fragment. Grammar:
//
//	expr   := orExpr
//	orExpr := andExpr { OR andExpr }
//	andExpr:= unary { AND unary }
//	unary  := NOT unary | '(' expr ')' | cmp
//	cmp    := operand op operand | LIKE '(' operand ',' string ')'
//	op     := = | != | <> | < | <= | > | >=
//	operand:= ?var | "string" | number
//
// Comparisons are numeric when both sides parse as numbers, else string
// comparisons over the terms' lexical forms. LIKE supports a trailing '%'
// wildcard (prefix match) and a leading '%' (suffix match).

// FilterExpr is a compiled filter.
type FilterExpr struct {
	root filterNode
}

// ParseFilter compiles a filter expression; an empty string yields a
// filter that accepts everything.
func ParseFilter(expr string) (*FilterExpr, error) {
	if strings.TrimSpace(expr) == "" {
		return &FilterExpr{}, nil
	}
	p := &filterParser{toks: tokenizeFilter(expr)}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("match: filter: trailing tokens at %q", p.peek())
	}
	return &FilterExpr{root: n}, nil
}

// lookupFunc resolves a variable name to its bound term. It is how the
// filter reads bindings without forcing callers to materialize a map —
// the streaming engine passes a closure over its current ID row.
type lookupFunc func(name string) (rdfterm.Term, bool)

// Eval evaluates the filter against variable bindings. Unbound variables
// referenced by the filter make the row fail (three-valued logic collapsed
// to false, as SQL WHERE does with NULL).
func (f *FilterExpr) Eval(binding map[string]rdfterm.Term) bool {
	return f.EvalFunc(func(name string) (rdfterm.Term, bool) {
		t, ok := binding[name]
		return t, ok
	})
}

// EvalFunc is Eval with a variable-lookup callback instead of a map.
func (f *FilterExpr) EvalFunc(look lookupFunc) bool {
	if f == nil || f.root == nil {
		return true
	}
	v, ok := f.root.eval(look)
	return ok && v
}

type filterNode interface {
	eval(look lookupFunc) (val, ok bool)
}

type boolNode struct {
	op   string // AND, OR, NOT
	l, r filterNode
}

func (n *boolNode) eval(look lookupFunc) (bool, bool) {
	switch n.op {
	case "NOT":
		v, ok := n.l.eval(look)
		return !v, ok
	case "AND":
		lv, lok := n.l.eval(look)
		if lok && !lv {
			return false, true // short-circuit false
		}
		rv, rok := n.r.eval(look)
		if rok && !rv {
			return false, true
		}
		return lv && rv, lok && rok
	case "OR":
		lv, lok := n.l.eval(look)
		if lok && lv {
			return true, true
		}
		rv, rok := n.r.eval(look)
		if rok && rv {
			return true, true
		}
		return lv || rv, lok && rok
	}
	return false, false
}

type operand struct {
	varName string // ?var
	lit     string // literal text (string or number)
	isNum   bool
	num     float64
}

func (o operand) value(look lookupFunc) (string, bool) {
	if o.varName != "" {
		t, ok := look(o.varName)
		if !ok {
			return "", false
		}
		return t.Lexical(), true
	}
	return o.lit, true
}

type cmpNode struct {
	op   string
	l, r operand
}

func (n *cmpNode) eval(look lookupFunc) (bool, bool) {
	ls, lok := n.l.value(look)
	rs, rok := n.r.value(look)
	if !lok || !rok {
		return false, false
	}
	if n.op == "LIKE" {
		return likeMatch(ls, rs), true
	}
	// Numeric comparison when both sides are numbers.
	lf, lerr := strconv.ParseFloat(ls, 64)
	rf, rerr := strconv.ParseFloat(rs, 64)
	var c int
	if lerr == nil && rerr == nil {
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	} else {
		c = strings.Compare(ls, rs)
	}
	switch n.op {
	case "=":
		return c == 0, true
	case "!=", "<>":
		return c != 0, true
	case "<":
		return c < 0, true
	case "<=":
		return c <= 0, true
	case ">":
		return c > 0, true
	case ">=":
		return c >= 0, true
	}
	return false, false
}

func likeMatch(s, pattern string) bool {
	switch {
	case strings.HasPrefix(pattern, "%") && strings.HasSuffix(pattern, "%") && len(pattern) >= 2:
		return strings.Contains(s, pattern[1:len(pattern)-1])
	case strings.HasSuffix(pattern, "%"):
		return strings.HasPrefix(s, pattern[:len(pattern)-1])
	case strings.HasPrefix(pattern, "%"):
		return strings.HasSuffix(s, pattern[1:])
	default:
		return s == pattern
	}
}

// --- tokenizer / parser ---

type filterParser struct {
	toks []string
	i    int
}

func (p *filterParser) eof() bool { return p.i >= len(p.toks) }

func (p *filterParser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.i]
}

func (p *filterParser) next() string {
	t := p.peek()
	p.i++
	return t
}

func tokenizeFilter(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			if j < len(s) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case strings.ContainsRune("=<>!", rune(c)):
			j := i + 1
			for j < len(s) && strings.ContainsRune("=<>!", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n(),=<>!", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func (p *filterParser) parseOr() (filterNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &boolNode{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *filterParser) parseAnd() (filterNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "AND") {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &boolNode{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *filterParser) parseUnary() (filterNode, error) {
	switch {
	case strings.EqualFold(p.peek(), "NOT"):
		p.next()
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &boolNode{op: "NOT", l: n}, nil
	case p.peek() == "(":
		p.next()
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("match: filter: expected ')'")
		}
		return n, nil
	case strings.EqualFold(p.peek(), "LIKE"):
		p.next()
		if p.next() != "(" {
			return nil, fmt.Errorf("match: filter: LIKE expects '('")
		}
		l, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if p.next() != "," {
			return nil, fmt.Errorf("match: filter: LIKE expects ','")
		}
		r, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("match: filter: LIKE expects ')'")
		}
		return &cmpNode{op: "LIKE", l: l, r: r}, nil
	default:
		return p.parseCmp()
	}
}

func (p *filterParser) parseCmp() (filterNode, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	op := p.next()
	switch op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("match: filter: unknown operator %q", op)
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &cmpNode{op: op, l: l, r: r}, nil
}

func (p *filterParser) parseOperand() (operand, error) {
	t := p.next()
	switch {
	case t == "":
		return operand{}, fmt.Errorf("match: filter: missing operand")
	case strings.HasPrefix(t, "?"):
		if len(t) == 1 {
			return operand{}, fmt.Errorf("match: filter: empty variable")
		}
		return operand{varName: t[1:]}, nil
	case strings.HasPrefix(t, `"`):
		if !strings.HasSuffix(t, `"`) || len(t) < 2 {
			return operand{}, fmt.Errorf("match: filter: unterminated string %q", t)
		}
		return operand{lit: t[1 : len(t)-1]}, nil
	default:
		f, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return operand{}, fmt.Errorf("match: filter: bad operand %q", t)
		}
		return operand{lit: t, isNum: true, num: f}, nil
	}
}

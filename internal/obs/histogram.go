package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default latency bucket upper bounds, in
// seconds: 100µs to 10s, roughly 2.5x apart — wide enough to cover an
// fsync on any disk and a multi-second join.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets are the default size bucket upper bounds (batch sizes,
// candidate counts): powers of four from 1 to 64k.
var CountBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// Histogram is a fixed-bucket histogram. Observe is lock-free (one
// atomic add per bucket plus count and sum); bucket bounds are fixed at
// creation. A nil Histogram is a valid no-op instrument.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram builds a histogram, deduplicating and sorting bounds and
// dropping a trailing +Inf (the overflow bucket is implicit).
func newHistogram(name, help string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	dst := b[:0]
	for _, v := range b {
		if math.IsInf(v, +1) || math.IsNaN(v) {
			continue
		}
		if len(dst) > 0 && dst[len(dst)-1] == v {
			continue
		}
		dst = append(dst, v)
	}
	b = dst
	return &Histogram{
		name:   name,
		help:   help,
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records one value. Bucket upper bounds are inclusive
// (Prometheus `le` semantics): a value exactly on a boundary lands in
// that boundary's bucket. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound is >= v; len(bounds) is the +Inf
	// overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds. A zero
// start is ignored — the pairing idiom is
//
//	t0 := m.startTimer()        // returns zero time when m == nil
//	...
//	m.someHist.ObserveSince(t0)
//
// so a disabled metrics struct never calls time.Now at all.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// snapshot copies the histogram's current state. count and sum are read
// first, then the buckets: a concurrent Observe can make the bucket sum
// exceed Count but never fall below it, keeping cumulative bucket counts
// monotone for scrapers.
func (h *Histogram) snapshot() HistogramSnap {
	snap := HistogramSnap{
		Name:   h.name,
		Help:   h.help,
		Bounds: h.bounds,
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
	}
	return snap
}

// HistogramSnap is a histogram's point-in-time state. Counts are
// per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf overflow
// bucket.
type HistogramSnap struct {
	Name   string
	Help   string
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Mean returns the average observed value (0 when empty).
func (h HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank. Values in the
// overflow bucket report the last finite bound (the estimate saturates).
// Returns 0 when the histogram is empty.
func (h HistogramSnap) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Command uniprotgen emits the synthetic UniProt-like N-Triples corpus
// used by the experiments (§7.1.1's substitution), optionally expanding
// the flagged reified statements into naïve reification quads so the
// output exercises cmd/rdfload's quad folding.
//
// Usage:
//
//	uniprotgen -triples 10000 > data.nt
//	uniprotgen -triples 10000 -quads | rdfload -model uniprot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ntriples"
	"repro/internal/rdfterm"
	"repro/internal/rdfxml"
	"repro/internal/uniprot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uniprotgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("uniprotgen", flag.ContinueOnError)
	triples := fs.Int("triples", 10_000, "number of base triples")
	reified := fs.Int("reified", -1, "reified statement count (-1 = the paper's Table 2 count for this size)")
	seed := fs.Int64("seed", 1, "generator seed")
	quads := fs.Bool("quads", false, "expand reified statements into naive reification quads")
	format := fs.String("format", "nt", "output format: nt (N-Triples) or xml (RDF/XML)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "nt" && *format != "xml" {
		return fmt.Errorf("unknown format %q (want nt or xml)", *format)
	}
	if *reified < 0 {
		*reified = uniprot.PaperReifiedCount(*triples)
	}
	var nt *ntriples.Writer
	var collected []ntriples.Triple
	if *format == "nt" {
		nt = ntriples.NewWriter(stdout)
	}
	emit := func(t ntriples.Triple) error {
		if nt != nil {
			return nt.Write(t)
		}
		collected = append(collected, t)
		return nil
	}
	quadSeq := 0
	n, err := uniprot.Stream(uniprot.Config{Triples: *triples, Reified: *reified, Seed: *seed},
		func(t ntriples.Triple, reify bool) error {
			if err := emit(t); err != nil {
				return err
			}
			if !reify || !*quads {
				return nil
			}
			quadSeq++
			r := rdfterm.NewBlank(fmt.Sprintf("reif%d", quadSeq))
			for _, q := range []ntriples.Triple{
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFType), Object: rdfterm.NewURI(rdfterm.RDFStatement)},
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFSubject), Object: t.Subject},
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFPredicate), Object: t.Predicate},
				{Subject: r, Predicate: rdfterm.NewURI(rdfterm.RDFObject), Object: t.Object},
			} {
				if err := emit(q); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		return err
	}
	if nt != nil {
		if err := nt.Flush(); err != nil {
			return err
		}
	} else {
		if err := rdfxml.Write(stdout, collected); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "uniprotgen: %d base triples, %d reified statements", *triples, n)
	if *quads {
		fmt.Fprintf(os.Stderr, " (%d quad triples appended)", 4*quadSeq)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

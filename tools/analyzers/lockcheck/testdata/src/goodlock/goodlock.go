// Package goodlock exercises the patterns lockcheck must accept: defer
// unlocks, manual unlock on every path, *Locked helpers, constructors on
// unshared locals, goroutines that lock for themselves, and multi-level
// receiver chains. The analyzer must stay silent on this package.
package goodlock

import "sync"

type Table struct{ n int }

func (t *Table) Insert(v int) { t.n++ }
func (t *Table) Len() int     { return t.n }

type Store struct {
	mu  sync.RWMutex
	tab *Table //repro:guarded-by mu
	seq int64  //repro:guarded-by mu
}

// New touches guarded fields on a local the caller cannot see yet.
func New() *Store {
	s := &Store{tab: &Table{}}
	s.seq = 1
	return s
}

// Len uses the canonical RLock + defer shape.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tab.Len()
}

// Insert pairs the lock manually but unlocks on every return path.
func (s *Store) Insert(v int) bool {
	s.mu.Lock()
	if v < 0 {
		s.mu.Unlock()
		return false
	}
	s.insertLocked(v)
	s.mu.Unlock()
	return true
}

// insertLocked documents the caller-holds-the-lock contract by name.
func (s *Store) insertLocked(v int) {
	s.tab.Insert(v)
	s.seq++
}

// Snapshot reads several guarded fields inside one critical section.
func (s *Store) Snapshot() (int, int64) {
	s.mu.RLock()
	n := s.tab.Len()
	seq := s.seq
	s.mu.RUnlock()
	return n, seq
}

// Refresh spawns a goroutine that acquires the lock for itself.
func (s *Store) Refresh() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.tab.Insert(0)
	}()
}

// Use calls a locking method from an unlocked context.
func Use(s *Store) {
	s.Insert(4)
}

// Collect snapshots under a manually paired lock; the early return
// inside the scan callback leaves the closure, not Collect, so it does
// not leak the lock Collect owns.
func (s *Store) Collect(limit int) []int {
	s.mu.RLock()
	var out []int
	walk(s.tab.Len(), func(v int) bool {
		if v >= limit {
			return false
		}
		out = append(out, v)
		return true
	})
	s.mu.RUnlock()
	return out
}

func walk(n int, fn func(int) bool) {
	for i := 0; i < n; i++ {
		if !fn(i) {
			return
		}
	}
}

type Network struct{ store *Store }

// Grow reaches the guarded field through a two-level chain; the lock
// state is tracked per rendered base, so n.store.mu covers n.store.tab.
func (n *Network) Grow(v int) {
	n.store.mu.Lock()
	defer n.store.mu.Unlock()
	n.store.tab.Insert(v)
}

// Package goodrelease holds the clean shapes releasecheck must accept:
// defers (direct and closure-wrapped), per-branch calls, ownership
// transfer by return, goroutine hand-off, and ticker escapes.
package goodrelease

import (
	"context"
	"time"
)

type limiter struct{}

func (l *limiter) Acquire(ctx context.Context, tenant string, weight int64) (func(), error) {
	return func() {}, nil
}

func work() error { return nil }

func doCtx(ctx context.Context) error { return ctx.Err() }

// deferClosure is the server middleware idiom: the release rides a
// deferred closure alongside other teardown.
func deferClosure(ctx context.Context, l *limiter) error {
	release, err := l.Acquire(ctx, "t", 1)
	if err != nil {
		return err
	}
	defer func() {
		release()
	}()
	return work()
}

// withTimeout is the canonical derived-context pattern.
func withTimeout(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	return doCtx(ctx)
}

// perPath calls release explicitly before every return instead of
// deferring it.
func perPath(ctx context.Context, l *limiter, fast bool) error {
	release, err := l.Acquire(ctx, "t", 1)
	if err != nil {
		return err
	}
	if fast {
		release()
		return nil
	}
	err = work()
	release()
	return err
}

// passOn returns the release to the caller: ownership moves with the
// value, the callee owes nothing.
func passOn(ctx context.Context, l *limiter) (func(), error) {
	release, err := l.Acquire(ctx, "t", 1)
	if err != nil {
		return nil, err
	}
	return release, nil
}

// handOff moves the release into a goroutine that defers it.
func handOff(ctx context.Context, l *limiter) error {
	release, err := l.Acquire(ctx, "t", 1)
	if err != nil {
		return err
	}
	go func() {
		defer release()
		_ = work()
	}()
	return nil
}

// tickerLoop stops the ticker with the standard defer directly after
// creation; the select loop reads t.C freely.
func tickerLoop(done chan struct{}) int {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	n := 0
	for {
		select {
		case <-t.C:
			n++
		case <-done:
			return n
		}
	}
}

type holder struct{ t *time.Ticker }

// escape stores the ticker in a returned struct: the holder owns the
// Stop now.
func escape() *holder {
	t := time.NewTicker(time.Second)
	return &holder{t: t}
}

// panics may leave the obligation live on the panic path; deferred
// cleanup is the panic story and the path is exempt.
func panics(ctx context.Context, l *limiter, bad bool) error {
	release, err := l.Acquire(ctx, "t", 1)
	if err != nil {
		return err
	}
	if bad {
		panic("bad state")
	}
	release()
	return nil
}

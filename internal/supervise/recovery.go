package supervise

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Recovery. After a durability fault the in-memory store is AHEAD of the
// broken log and authoritative: every acknowledged mutation is in memory,
// so recovery is NOT a replay — it is re-establishing a durable baseline
// for what memory already holds. Each attempt reopens the WAL file,
// checkpoints the current memory image atomically (core.SaveFile: tmp +
// fsync + rename + dir fsync), and truncates the fresh log. One
// acknowledged-durability wart is inherent here: a mutation whose WAL
// append failed was rejected to its caller but may have partially applied
// in memory; re-baselining persists it. That errs on the side of keeping
// data (at-least-once), never losing acknowledged commits.
//
// Corruption recovery (scrubber violations) is different: memory is the
// suspect, disk is the authority. The attempt re-verifies memory and, if
// the damage is confirmed, rebuilds the store from snapshot + WAL replay
// and swaps it in — acknowledged mutations are in the WAL, so the rebuilt
// image contains them.

// recoverLoop waits for a fault and drives the retry schedule.
func (sv *Supervisor) recoverLoop() {
	defer sv.wg.Done()
	for {
		select {
		case <-sv.stop:
			return
		case <-sv.wake:
		}
		sv.runRecovery()
	}
}

// runRecovery retries recovery with capped exponential backoff and
// jitter until it succeeds, the attempt budget runs out (→Failed), or
// the supervisor closes. Disk-pressure episodes are exempt from the
// attempt budget: running out of space is an environmental condition
// that clears when space is freed (an automatic checkpoint, an operator
// deleting files), so the loop keeps retrying at the capped cadence and
// the store returns to Healthy on its own — never Failed.
func (sv *Supervisor) runRecovery() {
	b := sv.cfg.Backoff
	delay := b.Initial
	sv.mu.Lock()
	rootCause := sv.rootCause
	sv.mu.Unlock()
	for attempt := 1; ; attempt++ {
		if sv.stopped() {
			return
		}
		sv.transition(Recovering, nil, attempt)
		// Each attempt is a force-retained background root span:
		// recoveries are rare and always worth a postmortem, so they
		// never compete with request traces for the sampler's budget.
		sp := sv.cfg.Tracer.StartRoot("supervise.recovery")
		sp.Force()
		sp.SetInt("attempt", int64(attempt))
		err := sv.attemptRecovery(trace.WithSpan(context.Background(), sp))
		sp.SetError(err)
		sp.End()
		if err == nil {
			sv.transition(Healthy, nil, attempt)
			return
		}
		disk := wal.IsNoSpace(err) || wal.IsNoSpace(rootCause)
		if !disk && b.MaxAttempts > 0 && attempt >= b.MaxAttempts {
			sv.transition(Failed, fmt.Errorf("supervise: recovery attempt %d/%d: %w", attempt, b.MaxAttempts, err), attempt)
			return
		}
		to := Degraded
		if disk {
			to = DegradedDisk
		}
		sv.transition(to, fmt.Errorf("supervise: recovery attempt %d: %w", attempt, err), attempt)
		select {
		case <-sv.stop:
			return
		case <-time.After(sv.jitter(delay)):
		}
		delay = time.Duration(float64(delay) * b.Multiplier)
		if delay > b.Max {
			delay = b.Max
		}
	}
}

// jitter randomizes a delay by ±Backoff.Jitter. Recovery-loop goroutine
// only (sv.rng is not locked).
func (sv *Supervisor) jitter(d time.Duration) time.Duration {
	j := sv.cfg.Backoff.Jitter
	if j <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 + j*(2*sv.rng.Float64()-1)))
}

// attemptRecovery runs one recovery attempt with mutations excluded.
// Fault classification reads rootCause, not reason: reason is rewritten
// with each failed attempt's error, and classifying from it would let a
// transient attempt failure (e.g. a refused WAL reopen) flip a
// corruption fault into a durability fault on the next attempt —
// rebaseline() would then checkpoint the known-corrupt memory image
// over the good snapshot.
func (sv *Supervisor) attemptRecovery(ctx context.Context) error {
	sv.opMu.Lock()
	defer sv.opMu.Unlock()
	sv.mu.Lock()
	st, oldLog, oldDir, rootCause := sv.store, sv.log, sv.dir, sv.rootCause
	sv.mu.Unlock()

	var scrubErr *ScrubError
	if errors.As(rootCause, &scrubErr) {
		return sv.recoverFromCorruption(st, oldLog, oldDir)
	}
	return sv.rebaseline(ctx, st, oldLog, oldDir)
}

// rebaseline re-establishes durability for the authoritative in-memory
// image: close the broken log, reopen the WAL, checkpoint memory, and
// reclaim the old log's space (truncation for a single file; rotate +
// watermark + segment retention for a directory — which is also what
// frees disk in a DegradedDisk episode). Called with opMu held
// exclusively.
func (sv *Supervisor) rebaseline(ctx context.Context, st *core.Store, oldLog *wal.Log, oldDir *wal.Dir) error {
	if sv.cfg.WALDir != "" {
		sv.closeOldDir(oldDir)
		dir, _, err := sv.cfg.OpenDir(sv.cfg.WALDir, 0, sv.cfg.Segment)
		if err != nil {
			return fmt.Errorf("reopening WAL dir: %w", err)
		}
		dir.SetMetrics(sv.walMet)
		if err := core.CheckpointDirCtx(ctx, st, sv.cfg.SnapshotPath, dir); err != nil {
			dir.Close()
			return fmt.Errorf("re-baselining: %w", err)
		}
		st.SetDurability(dir)
		sv.mu.Lock()
		sv.dir = dir
		sv.mu.Unlock()
		sv.noteCheckpoint()
		return nil
	}
	sv.closeOldLog(oldLog)
	log, _, err := sv.cfg.OpenWAL(sv.cfg.WALPath)
	if err != nil {
		return fmt.Errorf("reopening WAL: %w", err)
	}
	log.SetMetrics(sv.walMet)
	if err := core.CheckpointCtx(ctx, st, sv.cfg.SnapshotPath, log); err != nil {
		log.Close()
		return fmt.Errorf("re-baselining: %w", err)
	}
	st.SetDurability(log)
	sv.mu.Lock()
	sv.log = log
	sv.mu.Unlock()
	sv.noteCheckpoint()
	return nil
}

// recoverFromCorruption handles a scrubber-confirmed invariant failure:
// re-verify memory (the scrub may predate a fix), and rebuild from disk
// when the damage is real. Called with opMu held exclusively.
func (sv *Supervisor) recoverFromCorruption(st *core.Store, oldLog *wal.Log, oldDir *wal.Dir) error {
	if len(sv.cfg.Verify(st)) == 0 {
		// Memory verifies clean now; keep it and its log.
		return nil
	}
	if sv.cfg.WALDir != "" {
		sv.closeOldDir(oldDir)
		fresh, dir, _, err := core.RecoverDirWith(sv.cfg.SnapshotPath, sv.cfg.WALDir, sv.cfg.Segment, sv.cfg.OpenDir)
		if err != nil {
			return fmt.Errorf("rebuilding from disk: %w", err)
		}
		if errs := sv.cfg.Verify(fresh); len(errs) > 0 {
			dir.Close()
			return fmt.Errorf("disk image fails verification too: %w", errs[0])
		}
		dir.SetMetrics(sv.walMet)
		fresh.SetDurability(dir)
		sv.mu.Lock()
		sv.store, sv.dir = fresh, dir
		sv.mu.Unlock()
		return nil
	}
	sv.closeOldLog(oldLog)
	fresh, log, _, err := core.RecoverFilesWith(sv.cfg.SnapshotPath, sv.cfg.WALPath, sv.cfg.OpenWAL)
	if err != nil {
		return fmt.Errorf("rebuilding from disk: %w", err)
	}
	if errs := sv.cfg.Verify(fresh); len(errs) > 0 {
		log.Close()
		return fmt.Errorf("disk image fails verification too: %w", errs[0])
	}
	log.SetMetrics(sv.walMet)
	fresh.SetDurability(log)
	sv.mu.Lock()
	sv.store, sv.log = fresh, log
	sv.mu.Unlock()
	return nil
}

// closeOldLog detaches and closes the failed log, tolerating errors (the
// sink is already known broken) and repeated attempts (sv.log nils out).
func (sv *Supervisor) closeOldLog(oldLog *wal.Log) {
	if oldLog == nil {
		return
	}
	oldLog.Close()
	sv.mu.Lock()
	if sv.log == oldLog {
		sv.log = nil
	}
	sv.mu.Unlock()
}

// closeOldDir is closeOldLog for the segmented WAL.
func (sv *Supervisor) closeOldDir(oldDir *wal.Dir) {
	if oldDir == nil {
		return
	}
	oldDir.Close()
	sv.mu.Lock()
	if sv.dir == oldDir {
		sv.dir = nil
	}
	sv.mu.Unlock()
}

// ScrubError is the structured report a failing background sweep
// escalates with: the full ScrubReport rides along for diagnostics.
type ScrubError struct {
	Report core.ScrubReport
}

// Error summarizes the violations.
func (e *ScrubError) Error() string {
	n := len(e.Report.Violations)
	msg := fmt.Sprintf("supervise: scrub found %d invariant violation(s) across %d links", n, e.Report.Links)
	if n > 0 {
		msg += ": " + e.Report.Violations[0].Error()
		if n > 1 {
			msg += fmt.Sprintf(" (and %d more)", n-1)
		}
	}
	return msg
}

// scrubLoop periodically sweeps invariants and statistics in bounded
// slices, escalating violations.
func (sv *Supervisor) scrubLoop() {
	defer sv.wg.Done()
	t := time.NewTicker(sv.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-sv.stop:
			return
		case <-t.C:
		}
		if sv.State() != Healthy {
			continue // recovery owns the store right now
		}
		t0 := sv.met.startTimer()
		sp := sv.cfg.Tracer.StartRoot("supervise.scrub")
		rep, err := sv.cfg.Scrub(trace.WithSpan(sv.scrubCtx, sp), sv.Store(), sv.cfg.ScrubSlice)
		sp.SetInt("links", int64(rep.Links))
		sp.SetInt("violations", int64(len(rep.Violations)))
		if err != nil {
			sp.SetError(err)
			sp.End()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				continue // sweep cancelled at shutdown
			}
			// A sweep that failed for any other reason (an injected Scrub
			// hook hitting real I/O trouble, say) means the store could
			// not be verified — escalate rather than silently retrying.
			sv.met.onScrubError(err)
			sv.degrade(fmt.Errorf("supervise: scrub failed: %w", err))
			continue
		}
		if len(rep.Violations) > 0 {
			// A violating sweep is a corruption postmortem in the making:
			// force-retain it alongside the recovery spans it triggers.
			sp.Force()
			sp.SetError(&ScrubError{Report: rep})
		}
		sp.End()
		sv.met.onScrub(t0, rep)
		sv.noteScrub(rep)
		if len(rep.Violations) > 0 {
			sv.degrade(&ScrubError{Report: rep})
		}
	}
}

// noteScrub records a completed sweep for Health.
func (sv *Supervisor) noteScrub(rep core.ScrubReport) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.scrubs++
	sv.lastScrub = rep
}

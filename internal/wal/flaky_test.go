package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestFlakyFileCountedFaults: FailWrites(n)/FailSyncs(n) fail exactly the
// next n calls and then succeed, with failing writes landing nothing.
func TestFlakyFileCountedFaults(t *testing.T) {
	f := NewFlaky(nil)
	if _, err := f.Write([]byte("ok1")); err != nil {
		t.Fatalf("unarmed write failed: %v", err)
	}
	f.FailWrites(2)
	for i := 0; i < 2; i++ {
		if n, err := f.Write([]byte("lost")); !errors.Is(err, ErrInjected) || n != 0 {
			t.Fatalf("armed write %d: n=%d err=%v, want 0, ErrInjected", i, n, err)
		}
	}
	if _, err := f.Write([]byte("ok2")); err != nil {
		t.Fatalf("write after faults drained: %v", err)
	}
	if got := string(f.Bytes()); got != "ok1ok2" {
		t.Fatalf("image %q, want %q (failed writes must land nothing)", got, "ok1ok2")
	}

	f.FailSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync: %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after fault drained: %v", err)
	}
	w, s := f.InjectedFailures()
	if w != 2 || s != 1 {
		t.Fatalf("InjectedFailures = (%d,%d), want (2,1)", w, s)
	}
}

// TestFlakyFileErrorRate: the rated mode fails a deterministic subset of
// calls; successes still append, failures never do.
func TestFlakyFileErrorRate(t *testing.T) {
	f := NewFlaky(nil)
	f.SetErrorRate(0.5, 0, 42)
	var ok int
	for i := 0; i < 200; i++ {
		if _, err := f.Write([]byte("x")); err == nil {
			ok++
		} else if !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	fails, _ := f.InjectedFailures()
	if ok+fails != 200 {
		t.Fatalf("ok %d + fails %d != 200", ok, fails)
	}
	if ok == 0 || fails == 0 {
		t.Fatalf("rate 0.5 produced ok=%d fails=%d; both should occur", ok, fails)
	}
	if len(f.Bytes()) != ok {
		t.Fatalf("image holds %d bytes, %d writes succeeded", len(f.Bytes()), ok)
	}
}

// TestFlakyFileWrapsRealFile: through OpenFileWith, injected failures
// leave the on-disk image a valid WAL holding exactly the acknowledged
// records.
func TestFlakyFileWrapsRealFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flaky.wal")
	var ff *FlakyFile
	log, _, err := OpenFileWith(path, func(f File) File {
		ff = NewFlaky(f)
		return ff
	})
	if err != nil {
		t.Fatal(err)
	}
	good := Record{Type: TypeInternValue, ValueID: 1068, Text: "http://a", ValueType: "UR"}
	if err := log.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := log.Commit(); err != nil {
		t.Fatal(err)
	}
	ff.FailWrites(1)
	if err := log.Append(Record{Type: TypeInternValue, ValueID: 1069, Text: "lost", ValueType: "UR"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("append through armed fault: %v, want ErrInjected", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scan(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("atomic write failure must not tear the log: %v", res.TailErr)
	}
	if len(res.Records) != 1 || res.Records[0].Text != "http://a" {
		t.Fatalf("disk holds %d records %+v, want just the acknowledged one", len(res.Records), res.Records)
	}
}

// TestGroupLogReopen: a latched flush error rejects every later operation
// with the original error — including operations racing the failure —
// until Reopen clears the latch, after which the group commits again.
func TestGroupLogReopen(t *testing.T) {
	ff := NewFlaky(nil)
	l, err := NewLog(ff, true)
	if err != nil {
		t.Fatal(err)
	}
	g := Group(l, GroupOptions{SyncEvery: 1})
	rec := Record{Type: TypeInternValue, ValueID: 1068, Text: "http://a", ValueType: "UR"}
	if err := g.Append(rec); err != nil {
		t.Fatal(err)
	}
	ff.FailWrites(1)
	first := g.Commit()
	if !errors.Is(first, ErrInjected) {
		t.Fatalf("commit through armed fault: %v, want ErrInjected", first)
	}

	// Pre-Reopen waiters: every operation issued while the latch is set
	// must see the original flush error, not success and not a new one.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				errs[i] = g.Append(rec)
			} else {
				errs[i] = g.Commit()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("pre-Reopen op %d: err = %v, want the latched flush error", i, err)
		}
		if err.Error() != first.Error() {
			t.Fatalf("pre-Reopen op %d: %q, want the original %q", i, err, first)
		}
	}
	if g.Err() == nil {
		t.Fatal("latch not visible through Err()")
	}

	// Recovery: restart the log (checkpoint stands in for the snapshot the
	// real supervisor writes first), then clear the latch.
	ff2 := NewFlaky(nil)
	l2, err := NewLog(ff2, true)
	if err != nil {
		t.Fatal(err)
	}
	g.Reopen(l2)
	if g.Err() != nil {
		t.Fatalf("latch survives Reopen: %v", g.Err())
	}
	if err := g.Append(rec); err != nil {
		t.Fatalf("append after Reopen: %v", err)
	}
	if err := g.Commit(); err != nil {
		t.Fatalf("commit after Reopen: %v", err)
	}
	res, err := Scan(bytes.NewReader(ff2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("reopened log holds %d records, want 1 (stale pre-fault buffer must be discarded)", len(res.Records))
	}
}

// TestFlakyFileENOSPC: FailWithENOSPC fails exactly the next n writes
// with an error in the ENOSPC family (IsNoSpace matches), atomically by
// default, then recovers.
func TestFlakyFileENOSPC(t *testing.T) {
	f := NewFlaky(nil)
	f.FailWithENOSPC(2)
	for i := 0; i < 2; i++ {
		n, err := f.Write([]byte("doomed"))
		if err == nil || n != 0 {
			t.Fatalf("armed ENOSPC write %d: n=%d err=%v", i, n, err)
		}
		if !IsNoSpace(err) {
			t.Fatalf("IsNoSpace(%v) = false", err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("ENOSPC injection lost ErrInjected: %v", err)
		}
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after ENOSPC burst: %v", err)
	}
	if got := f.InjectedNoSpace(); got != 2 {
		t.Errorf("InjectedNoSpace = %d, want 2", got)
	}
	if w, _ := f.InjectedFailures(); w != 2 {
		t.Errorf("ENOSPC failures not counted as write failures: %d", w)
	}
	if !bytes.Equal(f.Bytes(), []byte("ok")) {
		t.Errorf("image = %q, want only the successful write", f.Bytes())
	}
}

// TestFlakyFileNoSpaceRate: rated ENOSPC injection is deterministic from
// the seed and fails roughly the requested fraction.
func TestFlakyFileNoSpaceRate(t *testing.T) {
	run := func() (fails int, image []byte) {
		f := NewFlaky(nil)
		f.SetNoSpaceRate(0.5, 42)
		for i := 0; i < 200; i++ {
			if _, err := f.Write([]byte{byte(i)}); err != nil && !IsNoSpace(err) {
				t.Fatalf("write %d: non-ENOSPC error %v", i, err)
			}
		}
		return f.InjectedNoSpace(), f.Bytes()
	}
	fails1, img1 := run()
	fails2, img2 := run()
	if fails1 != fails2 || !bytes.Equal(img1, img2) {
		t.Fatalf("same seed diverged: %d vs %d failures", fails1, fails2)
	}
	if fails1 < 50 || fails1 > 150 {
		t.Errorf("rate 0.5 over 200 writes failed %d times", fails1)
	}
}

// TestFlakyFilePartialWrite: SetPartialWriteFraction turns failing writes
// into torn ones — a prefix lands, but always at least one byte short.
func TestFlakyFilePartialWrite(t *testing.T) {
	f := NewFlaky(nil)
	f.SetPartialWriteFraction(0.5)
	f.FailWithENOSPC(1)
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if err == nil || !IsNoSpace(err) {
		t.Fatalf("torn ENOSPC write: n=%d err=%v", n, err)
	}
	if n != 5 {
		t.Errorf("landed %d bytes of 10 at fraction 0.5, want 5", n)
	}
	if !bytes.Equal(f.Bytes(), payload[:n]) {
		t.Errorf("image %q does not match the reported prefix", f.Bytes())
	}

	// Even fraction 1.0 must stay short of the full write.
	f2 := NewFlaky(nil)
	f2.SetPartialWriteFraction(1.0)
	f2.FailWrites(1)
	n, err = f2.Write(payload)
	if err == nil {
		t.Fatal("armed write succeeded")
	}
	if n >= len(payload) {
		t.Errorf("partial write landed the whole payload (n=%d)", n)
	}

	// A torn frame is exactly what recovery truncates: write a valid log
	// through a tearing file and prove the scan survives.
	f3 := NewFlaky(nil)
	l, err := NewLog(f3, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeDeleteLink, LinkID: 1}); err != nil {
		t.Fatal(err)
	}
	f3.SetPartialWriteFraction(0.4)
	f3.FailWithENOSPC(1)
	if err := l.Append(Record{Type: TypeDeleteLink, LinkID: 2}); err == nil {
		t.Fatal("torn append reported success")
	}
	res, err := ScanBytes(f3.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("torn frame not detected by scan")
	}
	if len(res.Records) != 1 || res.Records[0].LinkID != 1 {
		t.Fatalf("surviving prefix = %+v", res.Records)
	}
}

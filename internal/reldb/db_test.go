package reldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDatabaseAccessors(t *testing.T) {
	db := NewDatabase("MDSYS")
	if db.Name() != "MDSYS" {
		t.Fatalf("Name = %q", db.Name())
	}
	schema := NewSchema("pt",
		Column{Name: "P", Kind: KindInt},
		Column{Name: "V", Kind: KindString},
	)
	pt, err := db.CreatePartitionedTable(schema, "P")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Insert(Row{Int(1), String_("x")}); err != nil {
		t.Fatal(err)
	}
	if got := pt.PartitionLen(1); got != 1 {
		t.Fatalf("PartitionLen = %d", got)
	}
	if schema.NumColumns() != 2 {
		t.Fatalf("NumColumns = %d", schema.NumColumns())
	}
	if schema.Table() != "pt" {
		t.Fatalf("Table = %q", schema.Table())
	}
	if _, err := db.CreateSequence("s", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateSequence("s", 1); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("dup sequence: %v", err)
	}
	seq, err := db.Sequence("s")
	if err != nil || seq.Next() != 1 {
		t.Fatalf("Sequence = %v, %v", seq, err)
	}
	if _, err := db.Sequence("ghost"); err == nil {
		t.Fatal("missing sequence found")
	}
	v, err := db.CreateView("v", pt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "v" {
		t.Fatalf("view Name = %q", v.Name())
	}
	// Unfiltered, unprojected view passes rows through.
	if v.Len() != 1 {
		t.Fatalf("view Len = %d", v.Len())
	}
	if err := db.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropView("v"); err == nil {
		t.Fatal("double drop view accepted")
	}
}

func TestIndexAccessors(t *testing.T) {
	tb := NewTable(NewSchema("t",
		Column{Name: "A", Kind: KindInt},
	))
	ix, _ := tb.CreateIndex("uq", true, "A")
	if ix.Name() != "uq" || !ix.Unique() {
		t.Fatal("index accessors wrong")
	}
	if tb.Name() != "t" {
		t.Fatalf("table Name = %q", tb.Name())
	}
	tb.Insert(Row{Int(7)})
	id, ok := ix.LookupOne(Key{Int(7)})
	if !ok {
		t.Fatal("LookupOne missed")
	}
	r, _ := tb.Get(id)
	if r[0].Int64() != 7 {
		t.Fatalf("row = %v", r)
	}
	if _, ok := ix.LookupOne(Key{Int(8)}); ok {
		t.Fatal("LookupOne found ghost")
	}
	if !ix.Contains(Key{Int(7)}) || ix.Contains(Key{Int(8)}) {
		t.Fatal("Contains wrong")
	}
}

func TestIndexPrefixIterator(t *testing.T) {
	tb := NewTable(NewSchema("t",
		Column{Name: "A", Kind: KindInt},
		Column{Name: "B", Kind: KindInt},
	))
	ix, _ := tb.CreateIndex("ab", false, "A", "B")
	for i := int64(0); i < 12; i++ {
		tb.Insert(Row{Int(i % 3), Int(i)})
	}
	it := NewIndexPrefix(tb, ix, Key{Int(1)})
	rows := Collect(it)
	if len(rows) != 4 {
		t.Fatalf("prefix rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[0].Int64() != 1 {
			t.Fatalf("leaked row %v", r)
		}
	}
}

func TestValueEqualAndStringCoverage(t *testing.T) {
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) || Int(3).Equal(String_("3")) {
		t.Fatal("Equal wrong")
	}
	for _, v := range []Value{Null(), Int(1), Float(2.5), String_("s"), Bool(true), Bool(false)} {
		if v.String() == "" {
			t.Fatalf("String empty for %#v", v)
		}
	}
}

// TestConcurrentTableAccess exercises parallel writers and readers on one
// table (run with -race).
func TestConcurrentTableAccess(t *testing.T) {
	tb := NewTable(NewSchema("t",
		Column{Name: "A", Kind: KindInt},
		Column{Name: "B", Kind: KindString},
	))
	ix, _ := tb.CreateIndex("a", false, "A")
	var wg sync.WaitGroup
	const writers, perWriter = 4, 250
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := tb.Insert(Row{Int(int64(i % 10)), String_(fmt.Sprintf("w%d-%d", w, i))}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				ix.Lookup(Key{Int(int64(i % 10))})
				tb.Len()
				tb.Scan(func(_ RowID, _ Row) bool { return false })
			}
		}()
	}
	wg.Wait()
	if tb.Len() != writers*perWriter {
		t.Fatalf("Len = %d", tb.Len())
	}
	if ix.Len() != writers*perWriter {
		t.Fatalf("index Len = %d", ix.Len())
	}
}

func TestSequenceAdvanceTo(t *testing.T) {
	s := NewSequence(10)
	s.AdvanceTo(100)
	if got := s.Next(); got != 100 {
		t.Fatalf("Next after AdvanceTo = %d", got)
	}
	s.AdvanceTo(50) // never backwards
	if got := s.Next(); got != 101 {
		t.Fatalf("Next after backwards AdvanceTo = %d", got)
	}
}

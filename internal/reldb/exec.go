package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Iterator is a pull-based row stream. Next returns the next row and true,
// or (nil, false) when exhausted. Rows returned by an iterator are safe to
// retain (operators copy when needed).
type Iterator interface {
	Next() (Row, bool)
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []Row {
	var out []Row
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Count drains an iterator, returning the number of rows.
func Count(it Iterator) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// --- scans ---

type sliceIter struct {
	rows []Row
	i    int
}

func (s *sliceIter) Next() (Row, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// NewSliceIter returns an iterator over a fixed row slice.
func NewSliceIter(rows []Row) Iterator { return &sliceIter{rows: rows} }

// rowFetchIter lazily fetches rows for a pre-materialized ID list. The ID
// list is snapshotted at construction; rows deleted afterwards are skipped.
type rowFetchIter struct {
	t   *Table
	ids []RowID
	i   int
}

func (f *rowFetchIter) Next() (Row, bool) {
	for f.i < len(f.ids) {
		id := f.ids[f.i]
		f.i++
		f.t.mu.RLock()
		r, err := f.t.getLocked(id)
		if err == nil {
			out := r.Clone()
			f.t.mu.RUnlock()
			return out, true
		}
		f.t.mu.RUnlock()
	}
	return nil, false
}

// NewTableScan returns a full-table scan.
func NewTableScan(t *Table) Iterator {
	var ids []RowID
	t.Scan(func(id RowID, _ Row) bool { ids = append(ids, id); return true })
	return &rowFetchIter{t: t, ids: ids}
}

// NewPartitionScan returns a partition-pruned scan.
func NewPartitionScan(t *Table, part int64) (Iterator, error) {
	var ids []RowID
	if err := t.ScanPartition(part, func(id RowID, _ Row) bool { ids = append(ids, id); return true }); err != nil {
		return nil, err
	}
	return &rowFetchIter{t: t, ids: ids}, nil
}

// NewIndexEq returns an index equality scan: all rows whose index key is
// exactly key.
func NewIndexEq(t *Table, ix *Index, key Key) Iterator {
	return &rowFetchIter{t: t, ids: ix.Lookup(key)}
}

// NewIndexPrefix returns an index prefix scan: all rows whose index key
// starts with prefix, in key order.
func NewIndexPrefix(t *Table, ix *Index, prefix Key) Iterator {
	var ids []RowID
	ix.ScanPrefix(prefix, func(_ Key, id RowID) bool { ids = append(ids, id); return true })
	return &rowFetchIter{t: t, ids: ids}
}

// NewIndexRange returns an index range scan over lo <= key <= hi (nil
// bounds unbounded).
func NewIndexRange(t *Table, ix *Index, lo, hi Key) Iterator {
	var ids []RowID
	ix.Scan(lo, hi, func(_ Key, id RowID) bool { ids = append(ids, id); return true })
	return &rowFetchIter{t: t, ids: ids}
}

// --- operators ---

type filterIter struct {
	in   Iterator
	pred func(Row) bool
}

func (f *filterIter) Next() (Row, bool) {
	for {
		r, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(r) {
			return r, true
		}
	}
}

// NewFilter returns rows of in for which pred is true.
func NewFilter(in Iterator, pred func(Row) bool) Iterator {
	return &filterIter{in: in, pred: pred}
}

type projectIter struct {
	in   Iterator
	cols []int
}

func (p *projectIter) Next() (Row, bool) {
	r, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	out := make(Row, len(p.cols))
	for i, c := range p.cols {
		out[i] = r[c]
	}
	return out, true
}

// NewProject keeps only the given column positions, in order.
func NewProject(in Iterator, cols ...int) Iterator {
	return &projectIter{in: in, cols: cols}
}

type limitIter struct {
	in   Iterator
	left int
}

func (l *limitIter) Next() (Row, bool) {
	if l.left <= 0 {
		return nil, false
	}
	l.left--
	return l.in.Next()
}

// NewLimit stops after n rows.
func NewLimit(in Iterator, n int) Iterator { return &limitIter{in: in, left: n} }

// --- joins ---

// indexJoinIter is an index nested-loop join: for each outer row, probe an
// index on the inner table and emit outer ++ inner. This is the access path
// behind the paper's Experiment I "flat storage tables" query (rdf_link$
// joined three ways to rdf_value$ on VALUE_ID).
type indexJoinIter struct {
	outer   Iterator
	inner   *Table
	ix      *Index
	keyFn   func(Row) Key
	cur     Row
	matches []RowID
	mi      int
}

func (j *indexJoinIter) Next() (Row, bool) {
	for {
		for j.mi < len(j.matches) {
			id := j.matches[j.mi]
			j.mi++
			inner, err := j.inner.Get(id)
			if err != nil {
				continue
			}
			out := make(Row, 0, len(j.cur)+len(inner))
			out = append(out, j.cur...)
			out = append(out, inner...)
			return out, true
		}
		r, ok := j.outer.Next()
		if !ok {
			return nil, false
		}
		j.cur = r
		j.matches = j.ix.Lookup(j.keyFn(r))
		j.mi = 0
	}
}

// NewIndexJoin joins outer rows to inner-table rows found by probing ix
// with keyFn(outerRow). Output rows are the concatenation outer ++ inner.
func NewIndexJoin(outer Iterator, inner *Table, ix *Index, keyFn func(Row) Key) Iterator {
	return &indexJoinIter{outer: outer, inner: inner, ix: ix, keyFn: keyFn}
}

// encodeKey produces a collision-free string encoding of a key for hash
// join buckets (length-prefixed so ("ab","c") != ("a","bc")).
func encodeKey(k Key) string {
	var b strings.Builder
	for _, v := range k {
		s := v.String()
		b.WriteString(strconv.Itoa(int(v.Kind())))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

type hashJoinIter struct {
	probe   Iterator
	probeFn func(Row) Key
	buckets map[string][]Row
	cur     Row
	matches []Row
	mi      int
}

func (j *hashJoinIter) Next() (Row, bool) {
	for {
		for j.mi < len(j.matches) {
			b := j.matches[j.mi]
			j.mi++
			out := make(Row, 0, len(j.cur)+len(b))
			out = append(out, j.cur...)
			out = append(out, b...)
			return out, true
		}
		r, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		j.cur = r
		j.matches = j.buckets[encodeKey(j.probeFn(r))]
		j.mi = 0
	}
}

// NewHashJoin builds a hash table over build (keyed by buildFn) and probes
// it with probe rows (keyed by probeFn). Output rows are probe ++ build.
func NewHashJoin(probe Iterator, probeFn func(Row) Key, build Iterator, buildFn func(Row) Key) Iterator {
	buckets := make(map[string][]Row)
	for {
		r, ok := build.Next()
		if !ok {
			break
		}
		k := encodeKey(buildFn(r))
		buckets[k] = append(buckets[k], r)
	}
	return &hashJoinIter{probe: probe, probeFn: probeFn, buckets: buckets}
}

// ColKey returns a key function extracting the given row positions — a
// convenience for building join keys.
func ColKey(positions ...int) func(Row) Key {
	return func(r Row) Key {
		k := make(Key, len(positions))
		for i, p := range positions {
			k[i] = r[p]
		}
		return k
	}
}

// FormatRows renders rows as an aligned text table with the given headers;
// used by the CLI tools and examples to print paper-style result tables.
func FormatRows(headers []string, rows []Row) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	for ri, r := range rows {
		cells[ri] = make([]string, len(headers))
		for ci := range headers {
			s := ""
			if ci < len(r) {
				s = r[ci].String()
			}
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	dashes := make([]string, len(headers))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	writeRow(dashes)
	for _, r := range cells {
		writeRow(r)
	}
	return b.String()
}

package bench

import (
	"repro/internal/core"
	"repro/internal/jena"
	"repro/internal/ntriples"
	"repro/internal/reldb"
	"repro/internal/uniprot"
)

// Storage comparison (§3.1): Jena1's normalized design stores each text
// value once but pays a three-way join per find; Jena2 denormalizes text
// into the statement table ("Jena2 thereby consumes more storage space
// than Jena1"); the paper's central schema interns values once globally
// AND keeps single-table-probe reads. This experiment loads the same
// corpus into all three designs and counts stored text bytes and rows.

// StorageResult summarizes one design's footprint.
type StorageResult struct {
	Design    string
	TextBytes int64 // bytes of value/statement text stored
	Rows      int   // total rows across the design's tables
}

// RunStorageComparison loads `triples` synthetic triples into each design
// and measures footprints.
func RunStorageComparison(triples int, seed int64) ([]StorageResult, error) {
	var stream []ntriples.Triple
	if _, err := uniprot.Stream(uniprot.Config{Triples: triples, Seed: seed},
		func(t ntriples.Triple, _ bool) error {
			stream = append(stream, t)
			return nil
		}); err != nil {
		return nil, err
	}

	// Oracle-style central schema.
	st := core.New()
	if _, err := st.CreateRDFModel("m", "", ""); err != nil {
		return nil, err
	}
	for _, t := range stream {
		if _, err := st.InsertTerms("m", t.Subject, t.Predicate, t.Object); err != nil {
			return nil, err
		}
	}
	oracleText := tableTextBytes(st.Database().MustTable(core.TableValue))
	oracleRows := st.Database().MustTable(core.TableValue).Len() +
		st.Database().MustTable(core.TableLink).Len() +
		st.Database().MustTable(core.TableNode).Len()

	// Jena1 normalized.
	j1 := jena.NewJena1Store()
	for _, t := range stream {
		if err := j1.Add(jena.Statement{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object}); err != nil {
			return nil, err
		}
	}
	j1Text := j1.TextBytes()
	res, lits := j1.ValueCounts()
	j1Rows := j1.Len() + res + lits

	// Jena2 denormalized.
	j2 := jena.NewJena2Store()
	if err := j2.CreateModel("m"); err != nil {
		return nil, err
	}
	for _, t := range stream {
		if err := j2.Add("m", jena.Statement{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object}); err != nil {
			return nil, err
		}
	}
	j2Text, err := j2.TextBytes("m")
	if err != nil {
		return nil, err
	}
	j2Rows, err := j2.Len("m")
	if err != nil {
		return nil, err
	}

	return []StorageResult{
		{Design: "RDF objects (central rdf_value$)", TextBytes: oracleText, Rows: oracleRows},
		{Design: "Jena1 (normalized)", TextBytes: j1Text, Rows: j1Rows},
		{Design: "Jena2 (denormalized)", TextBytes: j2Text, Rows: j2Rows},
	}, nil
}

// tableTextBytes sums the lengths of all string cells of a table.
func tableTextBytes(t *reldb.Table) int64 {
	var total int64
	t.Scan(func(_ reldb.RowID, r reldb.Row) bool {
		for _, v := range r {
			if v.Kind() == reldb.KindString {
				total += int64(len(v.Str()))
			}
		}
		return true
	})
	return total
}

// TableStorage renders the storage comparison.
func TableStorage(results []StorageResult) *Table {
	t := &Table{
		Title:   "§3.1 Storage comparison: text bytes and rows per design (same corpus)",
		Headers: []string{"Design", "Text bytes", "Rows"},
	}
	for _, r := range results {
		t.Add(r.Design, fmtInt64(r.TextBytes), fmtInt64(int64(r.Rows)))
	}
	return t
}

func fmtInt64(n int64) string {
	// Group digits for readability: 1234567 -> 1,234,567.
	if n < 0 {
		return "-" + fmtInt64(-n)
	}
	s := ""
	for n >= 1000 {
		s = "," + pad3(n%1000) + s
		n /= 1000
	}
	return itoa(n) + s
}

func pad3(n int64) string {
	d := itoa(n)
	for len(d) < 3 {
		d = "0" + d
	}
	return d
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

package reify

import (
	"strings"
	"testing"

	"repro/internal/ntriples"

	"repro/internal/core"
	"repro/internal/rdfterm"
)

func newLoader(t *testing.T, policy IncompletePolicy) (*Loader, *core.Store) {
	t.Helper()
	s := core.New()
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	return &Loader{Store: s, Model: "m", Policy: policy}, s
}

const quadInput = `
<http://gov/files> <http://gov/terrorSuspect> <http://id/JohnDoe> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://gov/files> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate> <http://gov/terrorSuspect> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#object> <http://id/JohnDoe> .
<http://gov/MI5> <http://gov/source> _:r1 .
`

func TestLoadFoldsCompleteQuad(t *testing.T) {
	l, s := newLoader(t, DropIncomplete)
	stats, err := l.Load(strings.NewReader(quadInput))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Read != 6 {
		t.Fatalf("Read = %d", stats.Read)
	}
	if stats.QuadsFolded != 1 {
		t.Fatalf("QuadsFolded = %d", stats.QuadsFolded)
	}
	if stats.AssertionsRewritten != 1 {
		t.Fatalf("AssertionsRewritten = %d", stats.AssertionsRewritten)
	}
	// Store contents: base triple + reification row + assertion = 3 rows
	// (vs 6 input lines — the quad collapsed to one row).
	n, _ := s.NumTriples("m")
	if n != 3 {
		t.Fatalf("stored triples = %d, want 3", n)
	}
	// The base triple is reified and CONTEXT=D (it was asserted directly).
	ts, ok, _ := s.IsTriple("m", "http://gov/files", "http://gov/terrorSuspect", "http://id/JohnDoe", nil)
	if !ok {
		t.Fatal("base triple missing")
	}
	if reified, _ := s.IsReifiedByID("m", ts.TID); !reified {
		t.Fatal("base triple not reified")
	}
	info, _ := s.LinkInfo(ts.TID)
	if info.Context != core.ContextDirect {
		t.Fatalf("CONTEXT = %s, want D", info.Context)
	}
	// The MI5 assertion points at the DBUri.
	asserts, _ := s.Assertions("m", ts.TID)
	if len(asserts) != 1 || asserts[0].Subject.Value != "http://gov/MI5" {
		t.Fatalf("assertions = %v", asserts)
	}
}

func TestLoadImpliedBase(t *testing.T) {
	// Quad without the base triple asserted directly: base gets CONTEXT=I.
	input := strings.ReplaceAll(quadInput, "<http://gov/files> <http://gov/terrorSuspect> <http://id/JohnDoe> .\n", "")
	l, s := newLoader(t, DropIncomplete)
	stats, err := l.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuadsFolded != 1 {
		t.Fatalf("QuadsFolded = %d", stats.QuadsFolded)
	}
	ts, ok, _ := s.IsTriple("m", "http://gov/files", "http://gov/terrorSuspect", "http://id/JohnDoe", nil)
	if !ok {
		t.Fatal("implied base missing")
	}
	info, _ := s.LinkInfo(ts.TID)
	if info.Context != core.ContextIndirect {
		t.Fatalf("CONTEXT = %s, want I", info.Context)
	}
}

func TestLoadIncompleteDrop(t *testing.T) {
	input := `
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://gov/files> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate> <http://gov/p> .
<http://a> <http://p> <http://b> .
`
	l, s := newLoader(t, DropIncomplete)
	stats, err := l.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incomplete != 1 {
		t.Fatalf("Incomplete = %d", stats.Incomplete)
	}
	n, _ := s.NumTriples("m")
	if n != 1 { // only <a p b>
		t.Fatalf("stored = %d, want 1", n)
	}
}

func TestLoadIncompleteInsert(t *testing.T) {
	input := `
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://gov/files> .
<http://a> <http://p> <http://b> .
`
	l, s := newLoader(t, InsertIncomplete)
	stats, err := l.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incomplete != 1 {
		t.Fatalf("Incomplete = %d", stats.Incomplete)
	}
	n, _ := s.NumTriples("m")
	if n != 2 { // partial quad row stored verbatim
		t.Fatalf("stored = %d, want 2", n)
	}
}

func TestLoadIncompleteReport(t *testing.T) {
	input := `
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://gov/files> .
_:r1 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement> .
`
	var report strings.Builder
	l, s := newLoader(t, ReportIncomplete)
	l.Report = &report
	stats, err := l.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	_ = stats
	if n, _ := s.NumTriples("m"); n != 0 {
		t.Fatalf("stored = %d, want 0", n)
	}
	if !strings.Contains(report.String(), "rdf-syntax-ns#subject") {
		t.Fatalf("report = %q", report.String())
	}
}

func TestLoadKeepOriginalURIs(t *testing.T) {
	l, s := newLoader(t, DropIncomplete)
	l.KeepOriginalURIs = true
	if _, err := l.Load(strings.NewReader(quadInput)); err != nil {
		t.Fatal(err)
	}
	orig := rdfterm.NewURI(OrigResourceProperty)
	found, err := s.Find("m", core.Pattern{Predicate: &orig})
	if err != nil || len(found) != 1 {
		t.Fatalf("origResource rows = %d, %v", len(found), err)
	}
	sub, _ := found[0].GetSubject()
	if _, ok := core.ParseDBUri(sub); !ok {
		t.Fatalf("origResource subject = %q", sub)
	}
}

func TestLoadURIQuadResource(t *testing.T) {
	// Quad resource as URI (not blank node).
	input := `
<http://reif/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement> .
<http://reif/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://s> .
<http://reif/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate> <http://p> .
<http://reif/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#object> "lit" .
`
	l, s := newLoader(t, DropIncomplete)
	stats, err := l.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuadsFolded != 1 {
		t.Fatalf("QuadsFolded = %d", stats.QuadsFolded)
	}
	if got, _ := s.IsReified("m", "http://s", "http://p", `"lit"`, nil); !got {
		t.Fatal("literal-object quad not reified")
	}
}

func TestLoadPlainTriplesOnly(t *testing.T) {
	input := `
<http://a> <http://p> <http://b> .
<http://a> <http://p> "x" .
`
	l, s := newLoader(t, DropIncomplete)
	stats, err := l.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuadsFolded != 0 || stats.Inserted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if n, _ := s.NumTriples("m"); n != 2 {
		t.Fatalf("stored = %d", n)
	}
}

func TestLoaderValidation(t *testing.T) {
	l := &Loader{}
	if _, err := l.Load(strings.NewReader("")); err == nil {
		t.Fatal("empty loader accepted")
	}
	l2, _ := newLoader(t, DropIncomplete)
	if _, err := l2.Load(strings.NewReader("garbage line\n")); err == nil {
		t.Fatal("parse error not propagated")
	}
}

// rdf:type with non-Statement object is NOT a quad member.
func TestTypeTripleNotQuad(t *testing.T) {
	input := `
<http://x> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://some/Class> .
`
	l, s := newLoader(t, DropIncomplete)
	stats, err := l.Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.QuadsFolded != 0 || stats.Incomplete != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if n, _ := s.NumTriples("m"); n != 1 {
		t.Fatalf("stored = %d", n)
	}
}

func TestLoadTriplesParsedBatch(t *testing.T) {
	l, s := newLoader(t, DropIncomplete)
	triples, err := ntriples.NewReader(strings.NewReader(quadInput)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := l.LoadTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Read != 6 || stats.QuadsFolded != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if n, _ := s.NumTriples("m"); n != 3 {
		t.Fatalf("stored = %d", n)
	}
}

package wal

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
)

// Group commit: a bulk load that fsyncs once per triple is bounded by
// disk flush latency, not bandwidth. A GroupLog sits between the store
// and a Log, buffering framed records in memory and acknowledging
// commits without syncing; every SyncEvery commits (or every Interval,
// whichever comes first) the buffered frames are written and fsynced in
// one batch.
//
// The durability contract weakens in exactly one documented way: a crash
// may lose up to the last SyncEvery-1 committed mutations. What survives
// is still a prefix of the record stream in commit order, so recovery
// replays to a consistent state — the crash-point matrix property is
// preserved, only the freshness of the surviving prefix changes.

// GroupOptions configure a GroupLog.
type GroupOptions struct {
	// SyncEvery is the number of Commit calls between fsyncs. 0 or 1
	// syncs on every commit (no grouping).
	SyncEvery int
	// Interval, when positive, bounds how long a committed record may
	// stay buffered: a background flusher syncs at least this often.
	Interval time.Duration
}

// Sink is a group-commit target: a *Log (single file) or a *Dir
// (segmented). The interface is satisfiable only inside this package —
// group commit composes with the WAL's own framing, not arbitrary
// writers.
type Sink interface {
	// writeRaw lands already-framed bytes; the sink may rotate segments
	// before (never inside) the batch.
	writeRaw(b []byte) error
	Commit() error
	Close() error
	SetMetrics(m *Metrics)
}

// GroupLog wraps a Sink with group commit. It satisfies the same
// Append/Commit contract as Log (core.Durability), so the store cannot
// tell the difference. Close flushes and closes the underlying sink.
type GroupLog struct {
	log  Sink
	opts GroupOptions

	mu      sync.Mutex
	buf     []byte         // framed records not yet written to the file
	pending int            // commits since the last sync
	err     error          // first flush failure, latched: the log is behind memory
	met     *Metrics       // nil when instrumentation is disabled
	tracer  *trace.Tracer  // nil when tracing is disabled

	stop chan struct{} // closes the interval flusher
	done chan struct{}
}

// SetMetrics attaches instrumentation to the group layer and the
// underlying Log (the Log records fsync latency; the group layer records
// appends, flush batching, and the buffered-commit gauge). Call before
// the GroupLog is shared.
func (g *GroupLog) SetMetrics(m *Metrics) {
	g.mu.Lock()
	g.met = m
	g.mu.Unlock()
	g.log.SetMetrics(m)
}

// SetTracer attaches a span tracer: every flush records a background
// "wal.flush" root span with "wal.write" and "wal.fsync" children, so
// the tail sampler retains slow or failed flushes — the group-commit
// half of a slow insert that the request span alone cannot see. Call
// before the GroupLog is shared; nil disables (the default) and the
// flush path then never touches the tracer or the clock for spans.
func (g *GroupLog) SetTracer(tr *trace.Tracer) {
	g.mu.Lock()
	g.tracer = tr
	g.mu.Unlock()
}

// Group wraps l with group commit. With an Interval, a background
// goroutine flushes periodically; call Close (or Flush + stopping use)
// before discarding the GroupLog.
func Group(l *Log, opts GroupOptions) *GroupLog {
	return GroupSink(l, opts)
}

// GroupSink is Group for any Sink — in particular a segmented *Dir,
// where each flushed batch lands in one segment (the Dir rotates between
// batches, so group commit and segment handoff compose without the
// GroupLog knowing).
func GroupSink(s Sink, opts GroupOptions) *GroupLog {
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	g := &GroupLog{log: s, opts: opts}
	if opts.Interval > 0 {
		g.stop = make(chan struct{})
		g.done = make(chan struct{})
		go g.flushLoop()
	}
	return g
}

// flushLoop syncs buffered commits at least every Interval.
func (g *GroupLog) flushLoop() {
	defer close(g.done)
	t := time.NewTicker(g.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.mu.Lock()
			if g.pending > 0 && g.err == nil {
				g.flushLocked()
			}
			g.mu.Unlock()
		}
	}
}

// Append frames the record into the in-memory buffer. Nothing reaches
// the file until the next flush, so Append cannot tear the on-disk log.
func (g *GroupLog) Append(r Record) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	before := len(g.buf)
	g.buf = appendFrame(g.buf, &r)
	g.met.onAppend(len(g.buf) - before)
	return nil
}

// Commit marks a commit boundary. Every SyncEvery-th commit flushes the
// buffer and fsyncs; in between, the commit is acknowledged from memory.
func (g *GroupLog) Commit() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	g.pending++
	if g.pending >= g.opts.SyncEvery {
		return g.flushLocked()
	}
	g.met.setBuffered(g.pending)
	return nil
}

// Flush writes and fsyncs everything buffered, regardless of SyncEvery.
// Call it before checkpointing (snapshot + Reset) and before exit.
func (g *GroupLog) Flush() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	if g.pending == 0 && len(g.buf) == 0 {
		return nil
	}
	return g.flushLocked()
}

// flushLocked writes the buffered frames in one Write and syncs. A
// failure is latched: the in-memory store is ahead of the log from that
// point on, and every later Append/Commit reports it. Caller holds g.mu.
func (g *GroupLog) flushLocked() error {
	sp := g.tracer.StartRoot("wal.flush") // nil tracer → nil span, no clock read
	defer sp.End()
	sp.SetInt("records", int64(g.pending))
	sp.SetInt("bytes", int64(len(g.buf)))
	var phaseStart time.Time
	if sp != nil {
		phaseStart = time.Now()
	}
	if len(g.buf) > 0 {
		if err := g.log.writeRaw(g.buf); err != nil {
			g.err = fmt.Errorf("wal: group flush: %w", err)
			g.met.onGroupFlushError()
			sp.AddCompleted("wal.write", phaseStart, spanSince(sp, phaseStart), nil, true)
			sp.SetError(g.err)
			return g.err
		}
		g.buf = g.buf[:0]
	}
	if sp != nil {
		now := time.Now()
		sp.AddCompleted("wal.write", phaseStart, now.Sub(phaseStart), nil, false)
		phaseStart = now
	}
	if err := g.log.Commit(); err != nil {
		g.err = err
		g.met.onGroupFlushError()
		sp.AddCompleted("wal.fsync", phaseStart, spanSince(sp, phaseStart), nil, true)
		sp.SetError(err)
		return g.err
	}
	sp.AddCompleted("wal.fsync", phaseStart, spanSince(sp, phaseStart), nil, false)
	g.met.onGroupFlush(g.pending)
	g.pending = 0
	return nil
}

// spanSince is time.Since gated on a span being present, so the
// untraced flush path never reads the clock for spans.
func spanSince(sp *trace.Span, t time.Time) time.Duration {
	if sp == nil {
		return 0
	}
	return time.Since(t)
}

// Err returns the latched flush error, if any: non-nil means the
// in-memory store is ahead of the log and every Append/Commit is being
// rejected with this error.
func (g *GroupLog) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Reopen clears a latched flush error and rebinds the GroupLog to l
// (nil keeps the current Log), discarding any frames still buffered from
// before the fault. It is the recovery path's reset: once a flush has
// failed, the in-memory store is ahead of the log, and the only sound way
// forward is to checkpoint the store into a snapshot and restart the log
// — after which the stale buffer describes state the snapshot already
// holds. Callers must therefore checkpoint (snapshot + log reset/reopen)
// BEFORE calling Reopen; calling it without a checkpoint silently drops
// the buffered commits from durability.
//
// Appends and commits that failed before Reopen keep the error they were
// given — Reopen only unlatches future operations.
func (g *GroupLog) Reopen(l *Log) {
	if l == nil {
		g.ReopenSink(nil)
		return
	}
	g.ReopenSink(l)
}

// ReopenSink is Reopen for any Sink (nil keeps the current one); see
// Reopen for the checkpoint-first contract.
func (g *GroupLog) ReopenSink(s Sink) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s != nil {
		g.log = s
	}
	g.err = nil
	g.buf = g.buf[:0]
	g.pending = 0
}

// Buffered reports the number of commits currently held in memory —
// the most a crash right now could lose.
func (g *GroupLog) Buffered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pending
}

// Close stops the interval flusher, flushes outstanding commits, and
// closes the underlying Log.
func (g *GroupLog) Close() error {
	if g.stop != nil {
		close(g.stop)
		<-g.done
		g.stop = nil
	}
	flushErr := g.Flush()
	if err := g.log.Close(); err != nil {
		return err
	}
	return flushErr
}

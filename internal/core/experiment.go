package core

import (
	"repro/internal/rdfterm"
	"repro/internal/reldb"
)

// FlatQueryBySubject is Experiment I's "query using storage tables"
// (Figure 9): the equivalent of
//
//	SELECT a.value_name, b.value_name, c.value_name
//	FROM rdf_value$ a, rdf_value$ b, rdf_value$ c, rdf_link$ d
//	WHERE d.model_id = :m
//	  AND a.value_id = d.start_node_id
//	  AND b.value_id = d.p_value_id
//	  AND c.value_id = d.end_node_id
//	  AND a.value_name = :subject
//
// executed as an explicit plan over the storage tables: an index lookup on
// rdf_value$ for the subject text, an index prefix scan on rdf_link$
// (MODEL_ID, START_NODE_ID), and two index-nested-loop joins back to
// rdf_value$ — the three-way join the member functions hide.
func (s *Store) FlatQueryBySubject(model, subject string) ([]Triple, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mid, err := s.getModelIDLocked(model)
	if err != nil {
		return nil, err
	}
	// rdf_value$ a: find the subject's VALUE_ID by text.
	subjIter := reldb.NewIndexEq(s.values, s.valueText, termKey(rdfterm.NewURI(subject)))
	subjRows := reldb.Collect(subjIter)
	if len(subjRows) == 0 {
		return nil, nil
	}
	sid := subjRows[0][vcValueID]

	// rdf_link$ d: partition-pruned prefix scan on (MODEL_ID, START_NODE_ID).
	linkIter := reldb.NewIndexPrefix(s.links, s.linkMSPO, reldb.Key{reldb.Int(mid), sid})

	// d ⋈ rdf_value$ b ON b.value_id = d.p_value_id
	joinP := reldb.NewIndexJoin(linkIter, s.values, s.valuePK, reldb.ColKey(lcPValueID))
	// … ⋈ rdf_value$ c ON c.value_id = d.end_node_id
	linkWidth := s.links.Schema().NumColumns()
	valueWidth := s.values.Schema().NumColumns()
	joinO := reldb.NewIndexJoin(joinP, s.values, s.valuePK, reldb.ColKey(lcEndNodeID))

	var out []Triple
	for {
		r, ok := joinO.Next()
		if !ok {
			return out, nil
		}
		// Row layout: link columns ++ predicate value row ++ object value row.
		pRow := r[linkWidth : linkWidth+valueWidth]
		oRow := r[linkWidth+valueWidth:]
		out = append(out, Triple{
			Subject:  rowToTerm(subjRows[0]),
			Property: rowToTerm(pRow),
			Object:   rowToTerm(oRow),
		})
	}
}

// UnindexedQueryBySubject runs the Experiment II query WITHOUT the §7.2
// function-based index: a full scan of the application table calling
// GET_SUBJECT() per row. It exists for the indexing ablation (§7.2 notes
// that indexes were required to attain the reported times).
func (a *ApplicationTable) UnindexedQueryBySubject(subject string) ([]Triple, error) {
	var out []Triple
	var scanErr error
	a.Scan(func(_ reldb.RowID, _ []reldb.Value, ts TripleS) bool {
		sub, err := ts.GetSubject()
		if err != nil {
			scanErr = err
			return false
		}
		if sub != subject {
			return true
		}
		tr, err := ts.GetTriple()
		if err != nil {
			scanErr = err
			return false
		}
		out = append(out, tr)
		return true
	})
	return out, scanErr
}

package bench

// Load-path benchmarks: the cost of bulk inserting into the central
// schema with all indexes maintained (the §7.3 "set-up cost" analogue),
// across the per-triple and batched fast paths, with and without a WAL.
// CI runs these once each (-bench=Load -benchtime=1x) as a smoke test.

import (
	"sync"
	"testing"
)

func BenchmarkLoadOracle20k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := LoadOracle(20000, 500, 1); err != nil {
			b.Fatal(err)
		}
	}
}

var benchCorpus struct {
	once sync.Once
	doc  string
	err  error
}

func benchDoc(b *testing.B) string {
	benchCorpus.once.Do(func() {
		benchCorpus.doc, benchCorpus.err = GenerateNT(20000, 1)
	})
	if benchCorpus.err != nil {
		b.Fatal(benchCorpus.err)
	}
	return benchCorpus.doc
}

func benchLoad(b *testing.B, cfg LoadConfig) {
	doc := benchDoc(b)
	cfg.Triples = 20000
	cfg.Trials = 1
	dir := b.TempDir()
	b.ResetTimer()
	var tps float64
	for i := 0; i < b.N; i++ {
		res, err := MeasureLoad(cfg, doc, dir)
		if err != nil {
			b.Fatal(err)
		}
		tps = res.TriplesPerSec
	}
	b.ReportMetric(tps, "triples/s")
}

func BenchmarkLoadPerTriple20k(b *testing.B) {
	benchLoad(b, LoadConfig{Batch: 1, Workers: 1})
}

func BenchmarkLoadBatched20k(b *testing.B) {
	benchLoad(b, LoadConfig{Batch: 1024, Workers: -1})
}

func BenchmarkLoadPerTripleWAL20k(b *testing.B) {
	benchLoad(b, LoadConfig{WAL: true, Batch: 1, Workers: 1, SyncEvery: 1})
}

func BenchmarkLoadBatchedWAL20k(b *testing.B) {
	benchLoad(b, LoadConfig{WAL: true, Batch: 1024, Workers: -1, SyncEvery: 8})
}

package match

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// EXPLAIN-style tracing for Match. A Trace records what the heuristic
// planner chose and what each join stage actually did — inputs,
// candidates scanned, outputs, wall time — so "why is this query slow"
// is answerable without re-running it under a profiler. The same
// per-stage numbers feed the match metrics and the slow-query event
// log; all three share one gate in MatchContext, and when none is
// requested the join loop never calls time.Now.

// StageTrace records one executed join stage (one triple pattern).
type StageTrace struct {
	// Index is the pattern's position in the query text (0-based);
	// stages appear in execution order, which the planner may permute.
	Index int
	// Pattern is the pattern's text, e.g. "?s <urn:p> ?o".
	Pattern string
	// InBindings is the number of partial bindings entering the stage.
	InBindings int
	// Candidates is the number of triples the store returned across all
	// input bindings and scoped models, before unification.
	Candidates int
	// OutBindings is the number of extended bindings leaving the stage.
	OutBindings int
	// EstRows is the planner's estimated OutBindings for the stage, or
	// -1 when the active planner does not estimate (heuristic/naive).
	// Comparing it against OutBindings shows where the cost model was
	// wrong.
	EstRows  float64
	Duration time.Duration
}

// Trace is the execution record of one Match call. Pass an empty Trace
// via Options.Trace to collect it.
type Trace struct {
	Query string
	// PlanOrder holds pattern indexes in execution order.
	PlanOrder []int
	// Planner names the strategy that chose the order: "cost",
	// "heuristic", or "naive".
	Planner string
	Stages  []StageTrace
	// Rows is the final row count after filter, distinct, and order-by.
	Rows  int
	Total time.Duration
	// TraceID correlates this query with its request trace when the call
	// ran under a span (see internal/trace); "" otherwise. It rides the
	// slow-query event, so an operator can jump from the event log
	// straight to /debug/traces/{id}.
	TraceID string
}

// Format renders the trace, one stage per line:
//
//	plan: 1 -> 0 -> 2
//	stage 1: #1 ?x <urn:type> <urn:T>  in=1 candidates=40 out=40  312µs
//	...
//	total 1.8ms, 12 rows
func (t *Trace) Format(w io.Writer) {
	if len(t.PlanOrder) > 0 {
		parts := make([]string, len(t.PlanOrder))
		for i, pi := range t.PlanOrder {
			parts[i] = strconv.Itoa(pi)
		}
		if t.Planner != "" {
			fmt.Fprintf(w, "plan: %s (%s)\n", strings.Join(parts, " -> "), t.Planner)
		} else {
			fmt.Fprintf(w, "plan: %s\n", strings.Join(parts, " -> "))
		}
	}
	for i, st := range t.Stages {
		est := ""
		if st.EstRows >= 0 {
			est = fmt.Sprintf(" est=%s", formatEst(st.EstRows))
		}
		fmt.Fprintf(w, "stage %d: #%d %s  in=%d candidates=%d out=%d%s  %s\n",
			i+1, st.Index, st.Pattern, st.InBindings, st.Candidates, st.OutBindings, est,
			st.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "total %s, %d rows\n", t.Total.Round(time.Microsecond), t.Rows)
}

// summary flattens the trace into flat string fields for the slow-query
// event log.
func (t *Trace) summary() map[string]string {
	plan := make([]string, len(t.PlanOrder))
	for i, pi := range t.PlanOrder {
		plan[i] = strconv.Itoa(pi)
	}
	stages := make([]string, len(t.Stages))
	for i, st := range t.Stages {
		est := ""
		if st.EstRows >= 0 {
			est = " est=" + formatEst(st.EstRows)
		}
		stages[i] = fmt.Sprintf("#%d in=%d cand=%d out=%d%s %s",
			st.Index, st.InBindings, st.Candidates, st.OutBindings, est,
			st.Duration.Round(time.Microsecond))
	}
	m := map[string]string{
		"query":   t.Query,
		"plan":    strings.Join(plan, ","),
		"planner": t.Planner,
		"stages":  strings.Join(stages, "; "),
		"rows":    strconv.Itoa(t.Rows),
		"total":   t.Total.Round(time.Microsecond).String(),
	}
	if t.TraceID != "" {
		m["trace_id"] = t.TraceID
	}
	return m
}

// attachSpan records the completed query on the request's span as a
// pre-measured subtree: one "match.query" child carrying the plan and
// row counts, with one child per executed join stage reusing the
// EXPLAIN counters (in/candidates/out/est) as attributes. Pre-measured
// (AddCompleted) rather than live because the streaming engine
// interleaves stages — per-stage wall time is only known after the
// run, so stage start offsets here are synthesized cumulatively and
// only the durations are exact.
func (t *Trace) attachSpan(sp *trace.Span, start time.Time) {
	if sp == nil {
		return
	}
	plan := make([]string, len(t.PlanOrder))
	for i, pi := range t.PlanOrder {
		plan[i] = strconv.Itoa(pi)
	}
	q := sp.AddCompleted("match.query", start, t.Total, map[string]string{
		"planner": t.Planner,
		"plan":    strings.Join(plan, ","),
		"rows":    strconv.Itoa(t.Rows),
	}, false)
	stageStart := start
	for i := range t.Stages {
		st := &t.Stages[i]
		attrs := map[string]string{
			"pattern":    st.Pattern,
			"in":         strconv.Itoa(st.InBindings),
			"candidates": strconv.Itoa(st.Candidates),
			"out":        strconv.Itoa(st.OutBindings),
		}
		if st.EstRows >= 0 {
			attrs["est"] = formatEst(st.EstRows)
		}
		q.AddCompleted(fmt.Sprintf("match.stage %d: #%d", i+1, st.Index), stageStart, st.Duration, attrs, false)
		stageStart = stageStart.Add(st.Duration)
	}
}

// formatEst renders a cardinality estimate compactly: integers without a
// fraction, small fractional estimates with one decimal.
func formatEst(v float64) string {
	if v >= 10 || v == float64(int64(v)) {
		return strconv.FormatInt(int64(v+0.5), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// Metrics instruments Match against an obs registry. A nil *Metrics
// disables instrumentation (and, absent a Trace or slow-query
// threshold, stage timing entirely).
type Metrics struct {
	queries   *obs.Counter
	queryDur  *obs.Histogram
	stageDur  *obs.Histogram
	stageCand *obs.Histogram
	slow      *obs.Counter
	events    *obs.EventLog
}

// NewMetrics registers the match metric families on reg. Returns nil
// when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		queries:   reg.Counter("match_queries_total", "Match calls executed"),
		queryDur:  reg.Histogram("match_query_seconds", "Match end-to-end latency", obs.DurationBuckets),
		stageDur:  reg.Histogram("match_stage_seconds", "per-stage join latency", obs.DurationBuckets),
		stageCand: reg.Histogram("match_stage_candidates", "candidate triples scanned per join stage", obs.CountBuckets),
		slow:      reg.Counter("match_slow_queries_total", "queries over the slow-query threshold"),
		events:    reg.Events(),
	}
}

// onQuery records a completed query and its stages.
func (m *Metrics) onQuery(t *Trace) {
	if m == nil {
		return
	}
	m.queries.Inc()
	m.queryDur.Observe(t.Total.Seconds())
	for _, st := range t.Stages {
		m.stageDur.Observe(st.Duration.Seconds())
		m.stageCand.Observe(float64(st.Candidates))
	}
}

// onSlowQuery records a threshold crossing and emits the structured
// slow-query event.
func (m *Metrics) onSlowQuery(t *Trace) {
	if m == nil {
		return
	}
	m.slow.Inc()
	m.events.Emit("match", "slow_query", t.summary())
}

package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFor parses src, finds the function named name, and builds its CFG.
func buildFor(t *testing.T, src, name string) (*token.FileSet, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, BuildCFG(fd.Body)
		}
	}
	t.Fatalf("no function %q in fixture", name)
	return nil, nil
}

// reachable collects the block indexes reachable from entry.
func reachable(c *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(c.Entry)
	return seen
}

func TestCFGIfElseEdgesCarryCondition(t *testing.T) {
	src := `package p
func f(err error) int {
	if err != nil {
		return 1
	}
	return 0
}`
	_, cfg := buildFor(t, src, "f")
	// Exactly one block must carry a true-edge and a false-edge annotated
	// with the same condition expression.
	var cond *Block
	for _, b := range cfg.Blocks {
		var pos, neg bool
		for _, e := range b.Succs {
			if e.Cond != nil && !e.Negated {
				pos = true
			}
			if e.Cond != nil && e.Negated {
				neg = true
			}
		}
		if pos && neg {
			cond = b
		}
	}
	if cond == nil {
		t.Fatalf("no block with paired true/false condition edges")
	}
	if !reachable(cfg)[cfg.Exit.Index] {
		t.Fatalf("exit not reachable from entry")
	}
}

func TestCFGRangeBodyNotInHead(t *testing.T) {
	src := `package p
func f(xs []int) (n int) {
	for _, x := range xs {
		n += x
	}
	return n
}`
	_, cfg := buildFor(t, src, "f")
	// The body assignment must live in a block distinct from the one that
	// can skip straight past the loop: an empty range runs the body zero
	// times, so no block may both contain the body statement and lie on
	// every entry→exit path.
	var bodyBlk *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
				bodyBlk = b
			}
		}
	}
	if bodyBlk == nil {
		t.Fatalf("loop body statement not placed in any block")
	}
	// There must exist an entry→exit path avoiding bodyBlk.
	seen := map[int]bool{bodyBlk.Index: true}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == cfg.Exit {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	if !walk(cfg.Entry) {
		t.Fatalf("no zero-iteration path around the range body")
	}
}

func TestCFGReturnAndPanicTerminate(t *testing.T) {
	src := `package p
func f(x int) int {
	if x < 0 {
		panic("negative")
	}
	if x == 0 {
		return 0
	}
	return x + 1
}`
	_, cfg := buildFor(t, src, "f")
	returns, panics := 0, 0
	for _, b := range cfg.Blocks {
		switch b.Term.(type) {
		case *ast.ReturnStmt:
			returns++
		case *ast.CallExpr:
			panics++
		}
		if b.Term != nil {
			if len(b.Succs) != 1 || b.Succs[0].To != cfg.Exit {
				t.Errorf("terminator block %d does not jump straight to exit", b.Index)
			}
		}
	}
	if returns != 2 || panics != 1 {
		t.Fatalf("got %d return blocks and %d panic blocks, want 2 and 1", returns, panics)
	}
}

func TestCFGLabeledBreakLeavesOuterLoop(t *testing.T) {
	src := `package p
func f(xs []int) int {
outer:
	for _, x := range xs {
		for {
			if x > 3 {
				break outer
			}
			x++
		}
	}
	return 1
}`
	_, cfg := buildFor(t, src, "f")
	// The function must terminate: the return block is reachable, which
	// requires the labeled break to exit the outer loop (an unlabeled
	// break would leave only the inner for{} and spin).
	var retBlk *Block
	for _, b := range cfg.Blocks {
		if _, ok := b.Term.(*ast.ReturnStmt); ok {
			retBlk = b
		}
	}
	if retBlk == nil {
		t.Fatalf("no return block")
	}
	if !reachable(cfg)[retBlk.Index] {
		t.Fatalf("return unreachable: labeled break did not resolve to the outer loop")
	}
}

func TestCFGSwitchDefaultAndFallthrough(t *testing.T) {
	src := `package p
func f(x int) int {
	n := 0
	switch x {
	case 1:
		n = 1
		fallthrough
	case 2:
		n += 2
	default:
		n = 9
	}
	return n
}`
	_, cfg := buildFor(t, src, "f")
	r := reachable(cfg)
	// Every clause body must be reachable, and the fallthrough must link
	// clause 1 into clause 2's block (so n+=2 has two predecessors).
	var addBlk *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
				addBlk = b
			}
		}
	}
	if addBlk == nil || !r[addBlk.Index] {
		t.Fatalf("fallthrough target clause unreachable")
	}
	preds := 0
	for _, b := range cfg.Blocks {
		for _, e := range b.Succs {
			if e.To == addBlk {
				preds++
			}
		}
	}
	if preds < 2 {
		t.Fatalf("fallthrough clause has %d predecessors, want >= 2 (head + fallthrough)", preds)
	}
}

func TestCFGInspectSkipsFuncLitBodies(t *testing.T) {
	src := `package p
func f() {
	g := func() { inner() }
	g()
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	sawLit, sawInner := false, false
	Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			sawLit = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "inner" {
			sawInner = true
		}
		return true
	})
	if !sawLit {
		t.Fatalf("Inspect must visit the FuncLit node itself")
	}
	if sawInner {
		t.Fatalf("Inspect descended into the FuncLit body")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rdfterm"
)

// testStore loads a tiny model: a chain a→b→c plus a literal, enough to
// exercise every endpoint.
func testStore(t testing.TB) *core.Store {
	t.Helper()
	s := core.New()
	if _, err := s.CreateRDFModel("m", "", ""); err != nil {
		t.Fatal(err)
	}
	u := func(n string) rdfterm.Term { return rdfterm.NewURI("http://x#" + n) }
	batch := []core.BatchTriple{
		{Subject: u("a"), Predicate: u("p"), Object: u("b")},
		{Subject: u("b"), Predicate: u("p"), Object: u("c")},
		{Subject: u("a"), Predicate: u("name"), Object: rdfterm.NewLiteral("alice")},
	}
	if _, err := s.InsertBatch("m", batch); err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer builds a server over testStore with optional config
// tweaks applied before New.
func newTestServer(t testing.TB, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Backend:       StoreBackend{S: testStore(t)},
		DefaultModels: []string{"m"},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do runs one request through the handler and returns the recorder.
func do(t testing.TB, h http.Handler, method, target string, body any, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, target, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// errCode decodes the typed error envelope.
func errCode(t testing.TB, rr *httptest.ResponseRecorder) string {
	t.Helper()
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil {
		t.Fatalf("error envelope: %v (body %q)", err, rr.Body.String())
	}
	return env.Error.Code
}

func wantStatus(t testing.TB, rr *httptest.ResponseRecorder, status int) {
	t.Helper()
	if rr.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", rr.Code, status, rr.Body.String())
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rr := do(t, s.Handler(), "POST", "/query", map[string]any{
		"query": "(?s <http://x#p> ?o)", "order_by": []string{"s"},
	}, nil)
	wantStatus(t, rr, 200)
	var resp queryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || len(resp.Rows) != 2 {
		t.Fatalf("count = %d rows = %d, want 2/2", resp.Count, len(resp.Rows))
	}
	if resp.Rows[0][0] != "<http://x#a>" {
		t.Fatalf("first subject = %q, want <http://x#a>", resp.Rows[0][0])
	}
	if resp.Truncated {
		t.Fatal("unexpected truncation")
	}
}

func TestQueryTrace(t *testing.T) {
	s := newTestServer(t, nil)
	rr := do(t, s.Handler(), "POST", "/query", map[string]any{
		"query": "(?s <http://x#p> ?o)", "trace": true,
	}, nil)
	wantStatus(t, rr, 200)
	var resp queryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || len(resp.Trace.Stages) != 1 {
		t.Fatalf("trace = %+v, want 1 stage", resp.Trace)
	}
}

func TestQueryErrors(t *testing.T) {
	s := newTestServer(t, nil)
	for _, tc := range []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"bad syntax", map[string]any{"query": "(?s"}, 400, CodeBadRequest},
		{"empty", map[string]any{}, 400, CodeBadRequest},
		{"unknown field", map[string]any{"query": "(?s ?p ?o)", "nope": 1}, 400, CodeBadRequest},
		{"unknown model", map[string]any{"query": "(?s ?p ?o)", "models": []string{"ghost"}}, 404, CodeUnknownModel},
	} {
		rr := do(t, s.Handler(), "POST", "/query", tc.body, nil)
		if rr.Code != tc.status || errCode(t, rr) != tc.code {
			t.Fatalf("%s: status %d code %q, want %d %q (body %s)",
				tc.name, rr.Code, errCode(t, rr), tc.status, tc.code, rr.Body.String())
		}
	}
}

func TestQueryNoDefaultModels(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.DefaultModels = nil })
	rr := do(t, s.Handler(), "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, nil)
	wantStatus(t, rr, 400)
}

func TestFindEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rr := do(t, s.Handler(), "GET", "/find?s=%3Chttp%3A%2F%2Fx%23a%3E", nil, nil)
	wantStatus(t, rr, 200)
	var resp findResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 {
		t.Fatalf("count = %d, want 2 (body %s)", resp.Count, rr.Body.String())
	}
	// Bad term syntax is the client's problem.
	rr = do(t, s.Handler(), "GET", "/find?s=%3Cnot", nil, nil)
	wantStatus(t, rr, 400)
}

func TestTraverseEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rr := do(t, s.Handler(), "POST", "/traverse", map[string]any{
		"op": "shortest_path", "source": "<http://x#a>", "target": "<http://x#c>",
	}, nil)
	wantStatus(t, rr, 200)
	var resp traverseResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Found || len(resp.Path) != 3 {
		t.Fatalf("found = %v path = %v, want a 3-node path", resp.Found, resp.Path)
	}

	rr = do(t, s.Handler(), "POST", "/traverse", map[string]any{
		"op": "reachable", "source": "<http://x#a>",
	}, nil)
	wantStatus(t, rr, 200)
	resp = traverseResponse{}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Count < 2 {
		t.Fatalf("reachable = %+v, want at least b and c", resp)
	}

	// No path between disconnected nodes is found:false, not an error.
	rr = do(t, s.Handler(), "POST", "/traverse", map[string]any{
		"op": "shortest_path", "source": "<http://x#c>", "target": "<http://x#a>",
	}, nil)
	wantStatus(t, rr, 200)
	resp = traverseResponse{}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Found {
		t.Fatal("reverse path reported found on a directed chain")
	}

	rr = do(t, s.Handler(), "POST", "/traverse", map[string]any{
		"op": "warp", "source": "<http://x#a>",
	}, nil)
	wantStatus(t, rr, 400)
}

func TestInsertEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rr := do(t, s.Handler(), "POST", "/insert", map[string]any{
		"model": "m",
		"triples": []map[string]string{
			{"s": "<http://x#c>", "p": "<http://x#p>", "o": "<http://x#d>"},
		},
	}, nil)
	wantStatus(t, rr, 200)
	var resp insertResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != 1 {
		t.Fatalf("inserted = %d, want 1", resp.Inserted)
	}
	// The write is visible to the read surface.
	rr = do(t, s.Handler(), "GET", "/find?s=%3Chttp%3A%2F%2Fx%23c%3E", nil, nil)
	wantStatus(t, rr, 200)
	if !strings.Contains(rr.Body.String(), "http://x#d") {
		t.Fatalf("inserted triple not visible: %s", rr.Body.String())
	}
}

func TestInsertBatchCap(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBatch = 2 })
	triples := make([]map[string]string, 3)
	for i := range triples {
		triples[i] = map[string]string{
			"s": fmt.Sprintf("<http://x#s%d>", i), "p": "<http://x#p>", "o": "<http://x#o>",
		}
	}
	rr := do(t, s.Handler(), "POST", "/insert", map[string]any{"model": "m", "triples": triples}, nil)
	wantStatus(t, rr, 413)
	if errCode(t, rr) != CodeBudget {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeBudget)
	}
}

func TestRowLimitTruncates(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxRows = 1 })
	rr := do(t, s.Handler(), "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, nil)
	wantStatus(t, rr, 200)
	var resp queryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || !resp.Truncated {
		t.Fatalf("count = %d truncated = %v, want 1/true", resp.Count, resp.Truncated)
	}
	// A client limit above the server cap clamps silently.
	rr = do(t, s.Handler(), "POST", "/query", map[string]any{"query": "(?s ?p ?o)", "limit": 50}, nil)
	var resp2 queryResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Count != 1 {
		t.Fatalf("clamped count = %d, want 1", resp2.Count)
	}
}

func TestBindingsBudget(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBindings = 1 })
	rr := do(t, s.Handler(), "POST", "/query", map[string]any{
		"query": "(?s <http://x#p> ?o) (?o <http://x#p> ?x)",
	}, nil)
	wantStatus(t, rr, 413)
	if errCode(t, rr) != CodeBudget {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeBudget)
	}
}

func TestResultByteBudget(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxResultBytes = 16 })
	rr := do(t, s.Handler(), "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, nil)
	wantStatus(t, rr, 413)
	if errCode(t, rr) != CodeBudget {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeBudget)
	}
}

func TestBadTimeout(t *testing.T) {
	s := newTestServer(t, nil)
	for _, q := range []string{"timeout=banana", "timeout=-1s", "timeout=0"} {
		rr := do(t, s.Handler(), "POST", "/query?"+q, map[string]any{"query": "(?s ?p ?o)"}, nil)
		wantStatus(t, rr, 400)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInflight = 1; c.MaxQueue = -1 })
	release, err := s.lim.TryAcquire("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rr := do(t, s.Handler(), "GET", "/find", nil, nil)
	wantStatus(t, rr, 429)
	if errCode(t, rr) != CodeQueueFull {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeQueueFull)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestAdmissionWaitTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInflight = 1; c.QueueWait = 20 * time.Millisecond })
	release, err := s.lim.TryAcquire("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rr := do(t, s.Handler(), "GET", "/find", nil, nil)
	wantStatus(t, rr, 429)
	if errCode(t, rr) != CodeWaitTimeout {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeWaitTimeout)
	}
}

func TestAdmissionTenantLimit(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.TenantCap = 1 })
	release, err := s.lim.TryAcquire("noisy", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rr := do(t, s.Handler(), "GET", "/find", nil, map[string]string{"X-Tenant": "noisy"})
	wantStatus(t, rr, 429)
	if errCode(t, rr) != CodeTenantLimit {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeTenantLimit)
	}
	// Another tenant is unaffected.
	rr = do(t, s.Handler(), "GET", "/find", nil, map[string]string{"X-Tenant": "quiet"})
	wantStatus(t, rr, 200)
}

func TestIndexAndNotFound(t *testing.T) {
	s := newTestServer(t, nil)
	rr := do(t, s.Handler(), "GET", "/", nil, nil)
	wantStatus(t, rr, 200)
	rr = do(t, s.Handler(), "GET", "/nope", nil, nil)
	wantStatus(t, rr, 404)
}

func TestHealthzAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, func(c *Config) { c.Registry = reg })
	rr := do(t, s.Handler(), "GET", "/healthz", nil, nil)
	wantStatus(t, rr, 200)

	// One admitted request, then the server series show up on the admin
	// metrics surface.
	do(t, s.Handler(), "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, nil)
	rr = do(t, s.Handler(), "GET", "/debug/metrics", nil, nil)
	wantStatus(t, rr, 200)
	for _, series := range []string{"server_admitted_total", "server_responses_2xx_total", "server_query_seconds"} {
		if !strings.Contains(rr.Body.String(), series) {
			t.Fatalf("metrics output missing %s", series)
		}
	}
}

// testEndpointMux mounts a white-box endpoint through the full
// middleware chain next to the real routes.
func testEndpointMux(s *Server, name string, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("POST /"+name, s.wrap(endpoint{name: name, weight: 1, handle: h}))
	return mux
}

func TestPanicRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, func(c *Config) { c.Registry = reg })
	h := testEndpointMux(s, "boom", func(context.Context, http.ResponseWriter, *http.Request) error {
		panic("kaboom")
	})
	rr := do(t, h, "POST", "/boom", nil, nil)
	wantStatus(t, rr, 500)
	if errCode(t, rr) != CodeInternal {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeInternal)
	}
	// The server survives and keeps serving.
	rr = do(t, h, "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, nil)
	wantStatus(t, rr, 200)
	rr = do(t, h, "GET", "/debug/metrics", nil, nil)
	if !strings.Contains(rr.Body.String(), "server_panics_recovered_total 1") {
		t.Fatal("recovered panic not counted")
	}
}

func TestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, nil)
	h := testEndpointMux(s, "sleep", func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		<-ctx.Done()
		return ctx.Err()
	})
	start := time.Now()
	rr := do(t, h, "POST", "/sleep?timeout=30ms", nil, nil)
	wantStatus(t, rr, 504)
	if errCode(t, rr) != CodeDeadline {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeDeadline)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("deadline did not bound the request")
	}
}

func TestInsertDeadlineBeforeMutate(t *testing.T) {
	s := newTestServer(t, nil)
	rr := do(t, s.Handler(), "POST", "/insert?timeout=1ns", map[string]any{
		"model": "m",
		"triples": []map[string]string{
			{"s": "<http://x#z>", "p": "<http://x#p>", "o": "<http://x#z2>"},
		},
	}, nil)
	wantStatus(t, rr, 504)
}

func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.DrainGrace = 30 * time.Millisecond })
	h := testEndpointMux(s, "sleep", func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
		<-ctx.Done()
		return ctx.Err()
	})
	ts := httptest.NewUnstartedServer(h)
	ts.Config.BaseContext = func(net.Listener) context.Context { return s.baseCtx }
	ts.Start()
	defer ts.Close()

	// An in-flight request waiting on its context is cancelled by drain
	// and answered with 503 shutting_down, within the grace window.
	type result struct {
		status int
		code   string
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/sleep", "application/json", nil)
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		json.Unmarshal(body, &env)
		done <- result{status: resp.StatusCode, code: env.Error.Code}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var sdErr error
	go func() { defer wg.Done(); sdErr = s.Shutdown(sctx) }()

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("in-flight request failed transport-level: %v", r.err)
		}
		if r.status != 503 || r.code != CodeShuttingDown {
			t.Fatalf("drained request = %d %q, want 503 %q", r.status, r.code, CodeShuttingDown)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request hung through shutdown")
	}

	// New requests are rejected while draining.
	rr := do(t, h, "POST", "/query", map[string]any{"query": "(?s ?p ?o)"}, nil)
	wantStatus(t, rr, 503)
	if errCode(t, rr) != CodeShuttingDown {
		t.Fatalf("code = %q, want %q", errCode(t, rr), CodeShuttingDown)
	}
	if got := rr.Header().Get("Retry-After"); got == "" {
		t.Fatal("shutting_down without Retry-After")
	}
	rr = do(t, h, "GET", "/healthz", nil, nil)
	wantStatus(t, rr, 503)

	wg.Wait()
	if sdErr != nil && !strings.Contains(sdErr.Error(), "closed") {
		t.Fatalf("shutdown: %v", sdErr)
	}
}
